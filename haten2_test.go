package haten2_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	haten2 "github.com/haten2/haten2"
	"github.com/haten2/haten2/internal/gen"
)

func smallTensor() *haten2.Tensor {
	// An exactly rank-1 tensor: x(i,j,k) = a(i)b(j)c(k) with positive
	// factors, so a rank-1 PARAFAC must fit it perfectly.
	a := []float64{1, 2, 3}
	b := []float64{2, 1}
	c := []float64{1, 3}
	x := haten2.NewTensor(3, 2, 2)
	for i := int64(0); i < 3; i++ {
		for j := int64(0); j < 2; j++ {
			for k := int64(0); k < 2; k++ {
				x.Append(a[i]*b[j]*c[k], i, j, k)
			}
		}
	}
	x.Coalesce()
	return x
}

func TestTensorBasics(t *testing.T) {
	x := haten2.NewTensor(4, 5, 6)
	x.Append(2, 1, 2, 3)
	x.Append(3, 1, 2, 3)
	x.Coalesce()
	if x.NNZ() != 1 || x.At(1, 2, 3) != 5 {
		t.Fatalf("coalesce: nnz=%d at=%v", x.NNZ(), x.At(1, 2, 3))
	}
	i, j, k := x.Dims()
	if i != 4 || j != 5 || k != 6 {
		t.Fatalf("dims %d %d %d", i, j, k)
	}
	if math.Abs(x.Norm()-5) > 1e-12 {
		t.Fatalf("norm %v", x.Norm())
	}
}

func TestTensorIO(t *testing.T) {
	x := smallTensor()
	var buf bytes.Buffer
	if err := x.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := haten2.ReadTensor(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NNZ() != x.NNZ() {
		t.Fatalf("round trip nnz %d vs %d", back.NNZ(), x.NNZ())
	}
	if _, err := haten2.ReadTensor(strings.NewReader("0 0 1\n")); err == nil {
		t.Fatal("2-way input accepted")
	}
}

func TestParafacEndToEnd(t *testing.T) {
	x := smallTensor()
	c := haten2.NewCluster(haten2.ClusterConfig{Machines: 4})
	res, err := haten2.Parafac(c, x, 1, haten2.Options{Variant: haten2.DRI, MaxIters: 25, Seed: 1, TrackFit: true, Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if fit := res.Fit(x); fit < 0.999 {
		t.Fatalf("rank-1 fit %v", fit)
	}
	if res.Factors[0].Rows() != 3 || res.Factors[0].Cols() != 1 {
		t.Fatalf("factor shape %dx%d", res.Factors[0].Rows(), res.Factors[0].Cols())
	}
	// Predict must reproduce an entry closely.
	if p := res.Predict(2, 0, 1); math.Abs(p-x.At(2, 0, 1)) > 0.05*math.Abs(x.At(2, 0, 1)) {
		t.Fatalf("predict %v want %v", p, x.At(2, 0, 1))
	}
	st := c.Stats()
	if st.Jobs == 0 || st.ShuffleRecords == 0 || st.SimSeconds <= 0 {
		t.Fatalf("no accounting: %+v", st)
	}
}

func TestTuckerEndToEnd(t *testing.T) {
	x := smallTensor()
	c := haten2.NewCluster(haten2.ClusterConfig{Machines: 4})
	res, err := haten2.Tucker(c, x, [3]int{1, 1, 1}, haten2.Options{Variant: haten2.DRI, MaxIters: 15, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if fit := res.Fit(x); fit < 0.999 {
		t.Fatalf("tucker fit %v (core norms %v)", fit, res.CoreNorms)
	}
	p, q, r := res.Core.Dims()
	if p != 1 || q != 1 || r != 1 {
		t.Fatalf("core dims %d %d %d", p, q, r)
	}
	if res.Core.Norm() <= 0 {
		t.Fatal("empty core")
	}
}

func TestAllVariantsThroughPublicAPI(t *testing.T) {
	x := haten2.WrapTensor(gen.Random(5, [3]int64{6, 6, 6}, 25).Clone())
	for _, v := range []haten2.Variant{haten2.Naive, haten2.DNN, haten2.DRN, haten2.DRI} {
		c := haten2.NewCluster(haten2.ClusterConfig{Machines: 2})
		if _, err := haten2.Parafac(c, x, 2, haten2.Options{Variant: v, MaxIters: 2, Seed: 3}); err != nil {
			t.Fatalf("variant %v: %v", v, err)
		}
	}
}

func TestVariantNames(t *testing.T) {
	for _, v := range []haten2.Variant{haten2.Naive, haten2.DNN, haten2.DRN, haten2.DRI} {
		got, err := haten2.ParseVariant(v.String())
		if err != nil || got != v {
			t.Fatalf("round trip %v", v)
		}
	}
}

func TestNonnegativeParafacPublic(t *testing.T) {
	x := smallTensor()
	c := haten2.NewCluster(haten2.ClusterConfig{Machines: 2})
	res, err := haten2.NonnegativeParafac(c, x, 1, haten2.Options{Variant: haten2.DRI, MaxIters: 20, Seed: 2, TrackFit: true})
	if err != nil {
		t.Fatal(err)
	}
	for m := 0; m < 3; m++ {
		f := res.Factors[m]
		for i := 0; i < f.Rows(); i++ {
			for j := 0; j < f.Cols(); j++ {
				if f.At(i, j) < 0 {
					t.Fatalf("negative factor entry at mode %d", m)
				}
			}
		}
	}
}

func TestMaskedParafacPublic(t *testing.T) {
	x := smallTensor()
	c := haten2.NewCluster(haten2.ClusterConfig{Machines: 2})
	missing := [][3]int64{{0, 0, 0}}
	res, err := haten2.MaskedParafac(c, x, missing, 1, haten2.Options{Variant: haten2.DRI, MaxIters: 25, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	truth := x.At(0, 0, 0)
	if pred := res.Predict(0, 0, 0); math.Abs(pred-truth) > 0.1*truth {
		t.Fatalf("held-out prediction %v want %v", pred, truth)
	}
}

func TestResourceLimitSurfacesThroughAPI(t *testing.T) {
	x := haten2.WrapTensor(gen.Random(6, [3]int64{40, 40, 40}, 50).Clone())
	c := haten2.NewCluster(haten2.ClusterConfig{Machines: 2, MaxShuffleRecords: 10_000})
	// Naive's broadcast charge (IJK = 64000) must exceed the cap.
	if _, err := haten2.Parafac(c, x, 2, haten2.Options{Variant: haten2.Naive, MaxIters: 1}); err == nil {
		t.Fatal("naive should fail on a capped cluster")
	}
	// DRI stays within it.
	c2 := haten2.NewCluster(haten2.ClusterConfig{Machines: 2, MaxShuffleRecords: 10_000})
	if _, err := haten2.Parafac(c2, x, 2, haten2.Options{Variant: haten2.DRI, MaxIters: 1}); err != nil {
		t.Fatalf("DRI failed: %v", err)
	}
}

func TestRowTotals(t *testing.T) {
	x := smallTensor()
	c := haten2.NewCluster(haten2.ClusterConfig{Machines: 1})
	res, err := haten2.Parafac(c, x, 1, haten2.Options{Variant: haten2.DRI, MaxIters: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	totals := res.Factors[0].RowTotals()
	if len(totals) != 3 {
		t.Fatalf("totals %v", totals)
	}
	for i, tv := range totals {
		if tv < 0 {
			t.Fatalf("negative total at %d", i)
		}
	}
	col := res.Factors[0].Col(0)
	if len(col) != 3 {
		t.Fatalf("col %v", col)
	}
}

func TestStatsResetKeepsWorking(t *testing.T) {
	x := smallTensor()
	c := haten2.NewCluster(haten2.ClusterConfig{Machines: 2})
	if _, err := haten2.Parafac(c, x, 1, haten2.Options{Variant: haten2.DRI, MaxIters: 1}); err != nil {
		t.Fatal(err)
	}
	c.ResetStats()
	if c.Stats().Jobs != 0 {
		t.Fatal("stats not reset")
	}
	if _, err := haten2.Parafac(c, x, 1, haten2.Options{Variant: haten2.DRI, MaxIters: 1}); err != nil {
		t.Fatalf("cluster unusable after reset: %v", err)
	}
}

func TestEntriesIteration(t *testing.T) {
	x := smallTensor()
	count := 0
	var sum float64
	x.Entries(func(i, j, k int64, v float64) bool {
		count++
		sum += v
		return true
	})
	if count != x.NNZ() {
		t.Fatalf("visited %d of %d", count, x.NNZ())
	}
	// Early stop.
	count = 0
	x.Entries(func(i, j, k int64, v float64) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestUnwrapAccessors(t *testing.T) {
	x := smallTensor()
	if x.Unwrap().NNZ() != x.NNZ() {
		t.Fatal("Unwrap tensor mismatch")
	}
	c := haten2.NewCluster(haten2.ClusterConfig{Machines: 2})
	if c.Unwrap().Machines() != 2 {
		t.Fatal("Unwrap cluster mismatch")
	}
}

func TestTensorNAccessors(t *testing.T) {
	x, err := haten2.NewTensorN(2, 3, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	x.Append(2, 1, 2, 3, 4)
	x.Append(3, 1, 2, 3, 4)
	x.Coalesce()
	if x.NNZ() != 1 || x.At(1, 2, 3, 4) != 5 {
		t.Fatalf("nnz=%d at=%v", x.NNZ(), x.At(1, 2, 3, 4))
	}
	if x.Norm() != 5 {
		t.Fatalf("norm %v", x.Norm())
	}
	if _, err := haten2.WrapTensorN(x.Unwrap()); err == nil {
		t.Log("") // WrapTensorN of order-4 is fine
	}
}

func TestSplitHoldoutThroughAPI(t *testing.T) {
	x := smallTensor()
	train, held, vals := haten2.SplitHoldout(x, 0.25, 3)
	if train.NNZ()+len(held) != x.NNZ() {
		t.Fatalf("split lost entries: %d + %d != %d", train.NNZ(), len(held), x.NNZ())
	}
	// Completing the held-out entries from the training tensor works
	// end to end for the exactly rank-1 input.
	c := haten2.NewCluster(haten2.ClusterConfig{Machines: 2})
	res, err := haten2.MaskedParafac(c, train, held, 1, haten2.Options{Variant: haten2.DRI, MaxIters: 30, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range held {
		pred := res.Predict(h[0], h[1], h[2])
		if d := pred - vals[i]; d > 0.2*vals[i] || d < -0.2*vals[i] {
			t.Fatalf("held-out %v predicted %v want %v", h, pred, vals[i])
		}
	}
}
