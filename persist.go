package haten2

// Model persistence: decompositions of big tensors are expensive, so
// results can be written to a stream and reloaded later with full
// Fit/Predict capability. The format is a line-oriented text format
// (stable, diffable, and byte-exact for float64 via %g round-tripping
// with strconv.ParseFloat).

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/haten2/haten2/internal/matrix"
	"github.com/haten2/haten2/internal/tensor"
)

const (
	parafacMagic = "haten2-parafac-v1"
	tuckerMagic  = "haten2-tucker-v1"
)

func writeMatrix(w *bufio.Writer, m *matrix.Matrix) error {
	if _, err := fmt.Fprintf(w, "matrix %d %d\n", m.Rows, m.Cols); err != nil {
		return err
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			if j > 0 {
				if err := w.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := w.WriteString(strconv.FormatFloat(v, 'g', -1, 64)); err != nil {
				return err
			}
		}
		if err := w.WriteByte('\n'); err != nil {
			return err
		}
	}
	return nil
}

type lineReader struct {
	sc   *bufio.Scanner
	line int
}

func newLineReader(r io.Reader) *lineReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	return &lineReader{sc: sc}
}

func (lr *lineReader) next() (string, error) {
	for lr.sc.Scan() {
		lr.line++
		s := strings.TrimSpace(lr.sc.Text())
		if s != "" {
			return s, nil
		}
	}
	if err := lr.sc.Err(); err != nil {
		return "", err
	}
	return "", fmt.Errorf("haten2: unexpected end of model data at line %d", lr.line)
}

func (lr *lineReader) floats(n int) ([]float64, error) {
	line, err := lr.next()
	if err != nil {
		return nil, err
	}
	fields := strings.Fields(line)
	if len(fields) != n {
		return nil, fmt.Errorf("haten2: line %d: want %d values, got %d", lr.line, n, len(fields))
	}
	out := make([]float64, n)
	for i, f := range fields {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("haten2: line %d: %v", lr.line, err)
		}
		out[i] = v
	}
	return out, nil
}

func (lr *lineReader) readMatrix() (*matrix.Matrix, error) {
	header, err := lr.next()
	if err != nil {
		return nil, err
	}
	var rows, cols int
	if _, err := fmt.Sscanf(header, "matrix %d %d", &rows, &cols); err != nil {
		return nil, fmt.Errorf("haten2: line %d: bad matrix header %q", lr.line, header)
	}
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("haten2: line %d: negative matrix shape", lr.line)
	}
	m := matrix.New(rows, cols)
	for i := 0; i < rows; i++ {
		vals, err := lr.floats(cols)
		if err != nil {
			return nil, err
		}
		copy(m.Row(i), vals)
	}
	return m, nil
}

// Save writes the PARAFAC model so it can be reloaded with LoadParafac.
func (r *ParafacResult) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, parafacMagic)
	fmt.Fprintf(bw, "rank %d\n", len(r.Lambda))
	for i, v := range r.Lambda {
		if i > 0 {
			bw.WriteByte(' ')
		}
		bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	}
	bw.WriteByte('\n')
	for _, f := range r.model.Factors {
		if err := writeMatrix(bw, f); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadParafac reloads a model written by ParafacResult.Save. Iteration
// metadata (Iters, Fits) is not persisted; the factors and weights are.
func LoadParafac(rd io.Reader) (*ParafacResult, error) {
	lr := newLineReader(rd)
	magic, err := lr.next()
	if err != nil {
		return nil, err
	}
	if magic != parafacMagic {
		return nil, fmt.Errorf("haten2: not a PARAFAC model (got %q)", magic)
	}
	header, err := lr.next()
	if err != nil {
		return nil, err
	}
	var rank int
	if _, err := fmt.Sscanf(header, "rank %d", &rank); err != nil || rank <= 0 {
		return nil, fmt.Errorf("haten2: bad rank header %q", header)
	}
	lambda, err := lr.floats(rank)
	if err != nil {
		return nil, err
	}
	model := &tensor.Kruskal{Lambda: lambda}
	for m := 0; m < 3; m++ {
		f, err := lr.readMatrix()
		if err != nil {
			return nil, err
		}
		if f.Cols != rank {
			return nil, fmt.Errorf("haten2: factor %d has %d columns, want rank %d", m, f.Cols, rank)
		}
		model.Factors = append(model.Factors, f)
	}
	return wrapParafac2(model), nil
}

func wrapParafac2(model *tensor.Kruskal) *ParafacResult {
	return &ParafacResult{
		Lambda: model.Lambda,
		Factors: [3]*Matrix{
			{m: model.Factors[0]},
			{m: model.Factors[1]},
			{m: model.Factors[2]},
		},
		model: model,
	}
}

// Save writes the Tucker model so it can be reloaded with LoadTucker.
func (r *TuckerResult) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, tuckerMagic)
	p, q, rr := r.Core.Dims()
	fmt.Fprintf(bw, "core %d %d %d\n", p, q, rr)
	for _, v := range r.model.Core.Data {
		bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		bw.WriteByte('\n')
	}
	for _, f := range r.model.Factors {
		if err := writeMatrix(bw, f); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadTucker reloads a model written by TuckerResult.Save.
func LoadTucker(rd io.Reader) (*TuckerResult, error) {
	lr := newLineReader(rd)
	magic, err := lr.next()
	if err != nil {
		return nil, err
	}
	if magic != tuckerMagic {
		return nil, fmt.Errorf("haten2: not a Tucker model (got %q)", magic)
	}
	header, err := lr.next()
	if err != nil {
		return nil, err
	}
	var p, q, r int64
	if _, err := fmt.Sscanf(header, "core %d %d %d", &p, &q, &r); err != nil || p <= 0 || q <= 0 || r <= 0 {
		return nil, fmt.Errorf("haten2: bad core header %q", header)
	}
	g := tensor.NewDense(p, q, r)
	for i := range g.Data {
		vals, err := lr.floats(1)
		if err != nil {
			return nil, err
		}
		g.Data[i] = vals[0]
	}
	model := &tensor.TuckerModel{Core: g}
	for m := 0; m < 3; m++ {
		f, err := lr.readMatrix()
		if err != nil {
			return nil, err
		}
		model.Factors = append(model.Factors, f)
	}
	dims := []int64{p, q, r}
	for m, f := range model.Factors {
		if int64(f.Cols) != dims[m] {
			return nil, fmt.Errorf("haten2: factor %d has %d columns, core mode has %d", m, f.Cols, dims[m])
		}
	}
	return &TuckerResult{
		Core: &CoreTensor{g: g},
		Factors: [3]*Matrix{
			{m: model.Factors[0]},
			{m: model.Factors[1]},
			{m: model.Factors[2]},
		},
		model: model,
	}, nil
}
