package haten2_test

import (
	"math"
	"testing"

	haten2 "github.com/haten2/haten2"
)

// rank1Tensor4 builds an exactly rank-1 4-way tensor.
func rank1Tensor4(t *testing.T) *haten2.TensorN {
	t.Helper()
	a := []float64{1, 2}
	b := []float64{3, 1}
	c := []float64{1, 2, 1}
	d := []float64{2, 1}
	x, err := haten2.NewTensorN(2, 2, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 2; i++ {
		for j := int64(0); j < 2; j++ {
			for k := int64(0); k < 3; k++ {
				for l := int64(0); l < 2; l++ {
					x.Append(a[i]*b[j]*c[k]*d[l], i, j, k, l)
				}
			}
		}
	}
	x.Coalesce()
	return x
}

func TestNewTensorNValidation(t *testing.T) {
	if _, err := haten2.NewTensorN(2, 2); err == nil {
		t.Fatal("order 2 accepted")
	}
	if _, err := haten2.NewTensorN(2, 2, 2, 2, 2); err == nil {
		t.Fatal("order 5 accepted")
	}
	x, err := haten2.NewTensorN(3, 4, 5, 6)
	if err != nil {
		t.Fatal(err)
	}
	if x.Order() != 4 {
		t.Fatalf("order %d", x.Order())
	}
	d := x.Dims()
	if d[3] != 6 {
		t.Fatalf("dims %v", d)
	}
}

func TestParafacN4WayEndToEnd(t *testing.T) {
	x := rank1Tensor4(t)
	c := haten2.NewCluster(haten2.ClusterConfig{Machines: 4})
	res, err := haten2.ParafacN(c, x, 1, haten2.Options{MaxIters: 20, Seed: 1, TrackFit: true, Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if fit := res.Fit(x); fit < 0.999 {
		t.Fatalf("4-way rank-1 fit %v", fit)
	}
	if len(res.Factors) != 4 {
		t.Fatalf("%d factors", len(res.Factors))
	}
	want := x.At(1, 0, 2, 1)
	if got := res.Predict(1, 0, 2, 1); math.Abs(got-want) > 0.05*math.Abs(want) {
		t.Fatalf("predict %v want %v", got, want)
	}
	// 4-way jobs ran on the cluster.
	if c.Stats().Jobs == 0 {
		t.Fatal("no jobs recorded")
	}
}

func TestTuckerN4WayEndToEnd(t *testing.T) {
	x := rank1Tensor4(t)
	c := haten2.NewCluster(haten2.ClusterConfig{Machines: 4})
	res, err := haten2.TuckerN(c, x, []int{1, 1, 1, 1}, haten2.Options{MaxIters: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if fit := res.Fit(x); fit < 0.999 {
		t.Fatalf("4-way Tucker fit %v (norms %v)", fit, res.CoreNorms)
	}
	if len(res.CoreDims) != 4 {
		t.Fatalf("core dims %v", res.CoreDims)
	}
	if res.CoreAt(0, 0, 0, 0) == 0 {
		t.Fatal("empty core")
	}
}

func TestParafacNOn3Way(t *testing.T) {
	// The N-way API accepts order 3 too and must agree with the 3-way
	// result quality.
	x, err := haten2.NewTensorN(3, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	a := []float64{1, 2, 3}
	b := []float64{2, 1}
	cv := []float64{1, 3}
	for i := int64(0); i < 3; i++ {
		for j := int64(0); j < 2; j++ {
			for k := int64(0); k < 2; k++ {
				x.Append(a[i]*b[j]*cv[k], i, j, k)
			}
		}
	}
	x.Coalesce()
	c := haten2.NewCluster(haten2.ClusterConfig{Machines: 2})
	res, err := haten2.ParafacN(c, x, 1, haten2.Options{MaxIters: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if fit := res.Fit(x); fit < 0.999 {
		t.Fatalf("3-way via N API fit %v", fit)
	}
}
