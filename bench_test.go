// Benchmarks regenerating every table and figure of the paper's
// evaluation (run with `go test -bench=. -benchmem`), plus
// micro-benchmarks of the bottleneck operators. Each experiment
// benchmark reports the simulated cluster seconds of its workload as a
// custom metric alongside wall time; the printable reports themselves
// come from `go run ./cmd/haten2bench`.
package haten2_test

import (
	"math/rand"
	"testing"

	haten2 "github.com/haten2/haten2"
	"github.com/haten2/haten2/internal/bench"
	"github.com/haten2/haten2/internal/core"
	"github.com/haten2/haten2/internal/gen"
	"github.com/haten2/haten2/internal/matrix"
	"github.com/haten2/haten2/internal/mr"
	"github.com/haten2/haten2/internal/tensor"
)

var benchCfg = bench.Config{Seed: 42}

// benchReport runs one experiment per iteration, failing the benchmark
// on error. The row count is reported so regressions in experiment
// coverage are visible.
func benchReport(b *testing.B, f func(bench.Config) (*bench.Report, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rep, err := f(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Rows) == 0 {
			b.Fatal("empty report")
		}
		b.ReportMetric(float64(len(rep.Rows)), "rows")
	}
}

// --- one benchmark per table ------------------------------------------

func BenchmarkTable2FeatureMatrix(b *testing.B) {
	benchReport(b, func(bench.Config) (*bench.Report, error) { return bench.Table2(), nil })
}

func BenchmarkTable3TuckerCosts(b *testing.B) { benchReport(b, bench.Table3) }

func BenchmarkTable4ParafacCosts(b *testing.B) { benchReport(b, bench.Table4) }

func BenchmarkTable5Datasets(b *testing.B) {
	benchReport(b, func(c bench.Config) (*bench.Report, error) { return bench.Table5(c), nil })
}

func BenchmarkTable6ParafacDiscovery(b *testing.B) { benchReport(b, bench.Table6) }

func BenchmarkTable7TuckerGroups(b *testing.B) { benchReport(b, bench.Table7) }

func BenchmarkTable8TuckerConcepts(b *testing.B) { benchReport(b, bench.Table8) }

// --- one benchmark per figure -----------------------------------------

func BenchmarkFig1aTuckerDataScalability(b *testing.B) { benchReport(b, bench.Fig1a) }

func BenchmarkFig1bTuckerDensity(b *testing.B) { benchReport(b, bench.Fig1b) }

func BenchmarkFig1cTuckerCoreSize(b *testing.B) { benchReport(b, bench.Fig1c) }

func BenchmarkFig7aParafacDataScalability(b *testing.B) { benchReport(b, bench.Fig7a) }

func BenchmarkFig7bParafacDensity(b *testing.B) { benchReport(b, bench.Fig7b) }

func BenchmarkFig7cParafacRank(b *testing.B) { benchReport(b, bench.Fig7c) }

func BenchmarkFig8MachineScalability(b *testing.B) { benchReport(b, bench.Fig8) }

func BenchmarkAblationIdeas(b *testing.B) { benchReport(b, bench.Ablation) }

// --- operator micro-benchmarks -----------------------------------------

func benchTensor(nnz int) *tensor.Tensor {
	return gen.Random(7, [3]int64{2000, 2000, 2000}, nnz)
}

// BenchmarkContractVariants times one distributed Tucker contraction
// 𝒳×₂Bᵀ×₃Cᵀ per variant on a fixed workload — the per-plan cost that
// Tables III/IV summarize.
func BenchmarkContractVariants(b *testing.B) {
	x := benchTensor(20000)
	for _, v := range core.Variants {
		if v == core.Naive {
			continue // naive needs IJK-scale resources by design
		}
		b.Run(v.String(), func(b *testing.B) {
			c := mr.NewCluster(mr.Config{Machines: 8})
			s, err := core.Stage(c, "X", x)
			if err != nil {
				b.Fatal(err)
			}
			u1 := matrix.Random(2000, 5, randSrc(1))
			u2 := matrix.Random(2000, 5, randSrc(2))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.TuckerContract(s, 0, u1, u2, core.Variant(v)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMTTKRP times the in-memory kernel used by the baseline.
func BenchmarkMTTKRP(b *testing.B) {
	x := benchTensor(50000)
	factors := []*matrix.Matrix{
		matrix.Random(2000, 10, randSrc(3)),
		matrix.Random(2000, 10, randSrc(4)),
		matrix.Random(2000, 10, randSrc(5)),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MTTKRP(x, factors, 0)
	}
}

// BenchmarkParafacIterationDRI times one full distributed ALS iteration
// end to end through the public API.
func BenchmarkParafacIterationDRI(b *testing.B) {
	x := haten2.WrapTensor(benchTensor(20000))
	for i := 0; i < b.N; i++ {
		c := haten2.NewCluster(haten2.ClusterConfig{Machines: 8})
		if _, err := haten2.Parafac(c, x, 5, haten2.Options{Variant: haten2.DRI, MaxIters: 1, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTuckerIterationDRI is the Tucker counterpart.
func BenchmarkTuckerIterationDRI(b *testing.B) {
	x := haten2.WrapTensor(benchTensor(20000))
	for i := 0; i < b.N; i++ {
		c := haten2.NewCluster(haten2.ClusterConfig{Machines: 8})
		if _, err := haten2.Tucker(c, x, [3]int{5, 5, 5}, haten2.Options{Variant: haten2.DRI, MaxIters: 1, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoalesce times the sparse tensor's canonicalization.
func BenchmarkCoalesce(b *testing.B) {
	base := benchTensor(100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := base.Clone()
		c.Coalesce()
	}
}

func randSrc(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
