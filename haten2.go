// Package haten2 is a Go implementation of HaTen2 (Jeon, Papalexakis,
// Kang, Faloutsos: "HaTen2: Billion-scale Tensor Decompositions",
// ICDE 2015): scalable Tucker and PARAFAC tensor decomposition as
// MapReduce job plans that minimize intermediate data, disk accesses,
// and job count.
//
// The package runs the paper's exact map/reduce algorithms on an
// embedded, deterministic cluster simulator with full cost accounting
// (shuffled records and bytes, DFS traffic, job counts, and a calibrated
// simulated running time), so both the decompositions themselves and the
// paper's scalability experiments are reproducible on a single machine.
//
// # Quick start
//
//	x := haten2.NewTensor(1000, 1000, 1000)
//	x.Append(1.0, 3, 141, 59)
//	// ... add more entries, then:
//	cluster := haten2.NewCluster(haten2.ClusterConfig{Machines: 40})
//	res, err := haten2.Parafac(cluster, x, 10, haten2.Options{Variant: haten2.DRI})
//
// Four job plans are available (Table II of the paper): Naive, DNN, DRN,
// and DRI. DRI — the paper's "just HaTen2" — is the recommended method.
package haten2

import (
	"fmt"
	"io"

	"github.com/haten2/haten2/internal/core"
	"github.com/haten2/haten2/internal/gen"
	"github.com/haten2/haten2/internal/matrix"
	"github.com/haten2/haten2/internal/mr"
	"github.com/haten2/haten2/internal/tensor"
)

// Variant selects the HaTen2 job plan (Table II).
type Variant int

// The four job plans, in increasing refinement order.
const (
	// Naive runs one broadcast-style job per n-mode vector product.
	Naive Variant = iota
	// DNN decouples products into Hadamard-and-Merge steps.
	DNN
	// DRN removes inter-product dependencies via CrossMerge and
	// PairwiseMerge.
	DRN
	// DRI integrates all Hadamard products into one IMHP job; a whole
	// contraction takes two jobs. This is the recommended method.
	DRI
)

// String returns the paper's name for the variant.
func (v Variant) String() string { return core.Variant(v).String() }

// ParseVariant converts "Naive", "DNN", "DRN", or "DRI" to a Variant.
func ParseVariant(s string) (Variant, error) {
	cv, err := core.ParseVariant(s)
	return Variant(cv), err
}

// Tensor is a sparse 3-way tensor in coordinate format.
type Tensor struct {
	t *tensor.Tensor
}

// NewTensor returns an empty I×J×K sparse tensor.
func NewTensor(i, j, k int64) *Tensor {
	return &Tensor{t: tensor.New(i, j, k)}
}

// Append adds a nonzero entry; duplicate coordinates are summed on the
// next Coalesce (decompositions coalesce automatically).
func (x *Tensor) Append(v float64, i, j, k int64) { x.t.Append(v, i, j, k) }

// Coalesce sorts entries, sums duplicates, and drops zeros.
func (x *Tensor) Coalesce() { x.t.Coalesce() }

// NNZ returns the number of stored entries.
func (x *Tensor) NNZ() int { return x.t.NNZ() }

// Dims returns the mode sizes (I, J, K).
func (x *Tensor) Dims() (int64, int64, int64) {
	d := x.t.Dims()
	return d[0], d[1], d[2]
}

// At returns the value at (i, j, k), or 0 if absent. The tensor must be
// coalesced first.
func (x *Tensor) At(i, j, k int64) float64 { return x.t.At(i, j, k) }

// Norm returns the Frobenius norm.
func (x *Tensor) Norm() float64 { return x.t.Norm() }

// Entries calls fn for every stored entry in storage order, stopping
// early if fn returns false.
func (x *Tensor) Entries(fn func(i, j, k int64, v float64) bool) {
	for p := 0; p < x.t.NNZ(); p++ {
		idx := x.t.Index(p)
		if !fn(idx[0], idx[1], idx[2], x.t.Value(p)) {
			return
		}
	}
}

// Write writes the tensor in the plain-text coordinate format
// ("# tensor I J K" header, then "i j k value" lines).
func (x *Tensor) Write(w io.Writer) error { return tensor.WriteCOO(w, x.t) }

// ReadTensor parses the format produced by Write. Inputs without a
// shape header get their shape inferred from the largest indices. The
// input must be 3-way.
func ReadTensor(r io.Reader) (*Tensor, error) {
	t, err := tensor.ReadCOO(r)
	if err != nil {
		return nil, err
	}
	if t.Order() != 3 {
		return nil, fmt.Errorf("haten2: want a 3-way tensor, got order %d", t.Order())
	}
	return &Tensor{t: t}, nil
}

// WrapTensor adopts an internal tensor; it is used by the experiment
// harness and the examples' generators.
func WrapTensor(t *tensor.Tensor) *Tensor { return &Tensor{t: t} }

// Unwrap exposes the internal representation to sibling packages.
func (x *Tensor) Unwrap() *tensor.Tensor { return x.t }

// Matrix is a read-only view of a factor matrix.
type Matrix struct {
	m *matrix.Matrix
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.m.Rows }

// Cols returns the number of columns (components).
func (m *Matrix) Cols() int { return m.m.Cols }

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.m.At(i, j) }

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 { return m.m.Col(j) }

// Unwrap exposes the internal representation to sibling packages (the
// serving layer builds its shard views over it).
func (m *Matrix) Unwrap() *matrix.Matrix { return m.m }

// RowTotals returns the per-row sums of absolute values across columns,
// the normalizer the paper's discovery pipeline uses before ranking
// entities within a component.
func (m *Matrix) RowTotals() []float64 {
	out := make([]float64, m.m.Rows)
	for i := 0; i < m.m.Rows; i++ {
		var s float64
		for _, v := range m.m.Row(i) {
			if v < 0 {
				s -= v
			} else {
				s += v
			}
		}
		out[i] = s
	}
	return out
}

// ClusterConfig describes the simulated Hadoop cluster.
type ClusterConfig struct {
	// Machines is the cluster size (the paper uses 10–40). Zero means 1.
	Machines int
	// SlotsPerMachine is the concurrent task count per machine
	// (default 4, the paper's quad-core nodes).
	SlotsPerMachine int
	// MaxShuffleRecords caps any single job's shuffle; a job exceeding
	// it fails like an out-of-memory Hadoop job. Zero means unlimited.
	MaxShuffleRecords int64
}

// Cluster is a simulated MapReduce cluster with cost accounting.
type Cluster struct {
	c *mr.Cluster
}

// NewCluster creates a cluster.
func NewCluster(cfg ClusterConfig) *Cluster {
	return &Cluster{c: mr.NewCluster(mr.Config{
		Machines:          cfg.Machines,
		SlotsPerMachine:   cfg.SlotsPerMachine,
		MaxShuffleRecords: cfg.MaxShuffleRecords,
	})}
}

// Stats summarizes everything the cluster has executed.
type Stats struct {
	// Jobs is the number of MapReduce jobs run.
	Jobs int
	// ShuffleRecords and ShuffleBytes total the intermediate data moved
	// through all shuffles.
	ShuffleRecords, ShuffleBytes int64
	// MaxShuffleRecords is the largest single-job shuffle — the paper's
	// "max intermediate data".
	MaxShuffleRecords int64
	// SimSeconds is the modeled cluster running time.
	SimSeconds float64
}

// Stats returns a snapshot of the cluster counters.
func (c *Cluster) Stats() Stats {
	t := c.c.Totals()
	return Stats{
		Jobs:              t.Jobs,
		ShuffleRecords:    t.ShuffleRecords,
		ShuffleBytes:      t.ShuffleBytes,
		MaxShuffleRecords: t.MaxShuffleRecords,
		SimSeconds:        t.SimSeconds,
	}
}

// ResetStats zeroes the counters (staged data is kept).
func (c *Cluster) ResetStats() { c.c.ResetCounters() }

// Unwrap exposes the internal cluster to sibling packages.
func (c *Cluster) Unwrap() *mr.Cluster { return c.c }

// Options configures a decomposition run.
type Options struct {
	// Variant selects the job plan; DRI is recommended. (The zero value
	// is Naive, matching the paper's presentation order.)
	Variant Variant
	// MaxIters bounds ALS iterations; zero means 20.
	MaxIters int
	// Tol is the convergence threshold; zero means 1e-4.
	Tol float64
	// Seed makes factor initialization reproducible.
	Seed int64
	// TrackFit records per-iteration fit (needed for early stopping in
	// PARAFAC; costs one pass over the nonzeros per iteration).
	TrackFit bool
}

func (o Options) internal() core.Options {
	return core.Options{
		Variant:  core.Variant(o.Variant),
		MaxIters: o.MaxIters,
		Tol:      o.Tol,
		Seed:     o.Seed,
		TrackFit: o.TrackFit,
	}
}

// ParafacResult is a rank-R PARAFAC decomposition
// 𝒳 ≈ Σ_r λ_r a_r∘b_r∘c_r.
type ParafacResult struct {
	// Lambda holds the component weights.
	Lambda []float64
	// Factors holds the three unit-column factor matrices (I×R, J×R,
	// K×R).
	Factors [3]*Matrix
	// Iters is the number of ALS iterations run.
	Iters int
	// Fits holds per-iteration fits when Options.TrackFit was set.
	Fits []float64
	// Converged reports early stopping.
	Converged bool

	model *tensor.Kruskal
}

// Fit returns 1 − ‖𝒳−𝒳̂‖_F/‖𝒳‖_F for the given tensor.
func (r *ParafacResult) Fit(x *Tensor) float64 { return r.model.Fit(x.t) }

// Predict evaluates the model at one coordinate.
func (r *ParafacResult) Predict(i, j, k int64) float64 { return r.model.At(i, j, k) }

func wrapParafac(res *core.ParafacResult) *ParafacResult {
	return &ParafacResult{
		Lambda: res.Model.Lambda,
		Factors: [3]*Matrix{
			{m: res.Model.Factors[0]},
			{m: res.Model.Factors[1]},
			{m: res.Model.Factors[2]},
		},
		Iters:     res.Iters,
		Fits:      res.Fits,
		Converged: res.Converged,
		model:     res.Model,
	}
}

// Parafac runs the distributed PARAFAC-ALS of Algorithm 1 on the
// cluster.
func Parafac(c *Cluster, x *Tensor, rank int, opt Options) (*ParafacResult, error) {
	res, err := core.ParafacALS(c.c, x.t, rank, opt.internal())
	if err != nil {
		return nil, err
	}
	return wrapParafac(res), nil
}

// NonnegativeParafac runs the multiplicative-update nonnegative PARAFAC
// (the paper's stated future work) with the bottleneck products computed
// on the cluster.
func NonnegativeParafac(c *Cluster, x *Tensor, rank int, opt Options) (*ParafacResult, error) {
	res, err := core.NonnegativeParafac(c.c, x.t, rank, opt.internal())
	if err != nil {
		return nil, err
	}
	return wrapParafac(res), nil
}

// MaskedParafac decomposes x treating the listed coordinates as missing
// (EM imputation; the paper's other stated future work). Each missing
// coordinate is a (i, j, k) triple.
func MaskedParafac(c *Cluster, x *Tensor, missing [][3]int64, rank int, opt Options) (*ParafacResult, error) {
	res, err := core.MaskedParafacALS(c.c, x.t, missing, rank, opt.internal())
	if err != nil {
		return nil, err
	}
	return wrapParafac(res), nil
}

// CoreTensor is the dense P×Q×R core of a Tucker decomposition.
type CoreTensor struct {
	g *tensor.Dense
}

// Dims returns (P, Q, R).
func (g *CoreTensor) Dims() (int64, int64, int64) {
	d := g.g.Dims()
	return d[0], d[1], d[2]
}

// At returns 𝒢(p, q, r).
func (g *CoreTensor) At(p, q, r int64) float64 { return g.g.At(p, q, r) }

// Norm returns ‖𝒢‖_F.
func (g *CoreTensor) Norm() float64 { return g.g.Norm() }

// Unwrap exposes the internal representation to sibling packages.
func (g *CoreTensor) Unwrap() *tensor.Dense { return g.g }

// TuckerResult is a Tucker decomposition 𝒳 ≈ 𝒢 ×₁A ×₂B ×₃C with
// orthonormal factors.
type TuckerResult struct {
	// Core is the dense core tensor.
	Core *CoreTensor
	// Factors holds the three orthonormal factor matrices.
	Factors [3]*Matrix
	// Iters is the number of ALS iterations run.
	Iters int
	// CoreNorms tracks ‖𝒢‖_F per iteration (the stopping criterion).
	CoreNorms []float64
	// Fits holds per-iteration fits when Options.TrackFit was set.
	Fits []float64
	// Converged reports early stopping.
	Converged bool

	model *tensor.TuckerModel
}

// Fit returns 1 − ‖𝒳−𝒳̂‖_F/‖𝒳‖_F for the given tensor.
func (r *TuckerResult) Fit(x *Tensor) float64 { return r.model.Fit(x.t) }

// Predict evaluates the model at one coordinate.
func (r *TuckerResult) Predict(i, j, k int64) float64 { return r.model.At(i, j, k) }

// Tucker runs the distributed Tucker-ALS of Algorithm 2 on the cluster
// with the desired core shape.
func Tucker(c *Cluster, x *Tensor, core3 [3]int, opt Options) (*TuckerResult, error) {
	res, err := core.TuckerALS(c.c, x.t, core3, opt.internal())
	if err != nil {
		return nil, err
	}
	return &TuckerResult{
		Core: &CoreTensor{g: res.Model.Core},
		Factors: [3]*Matrix{
			{m: res.Model.Factors[0]},
			{m: res.Model.Factors[1]},
			{m: res.Model.Factors[2]},
		},
		Iters:     res.Iters,
		CoreNorms: res.CoreNorms,
		Fits:      res.Fits,
		Converged: res.Converged,
		model:     res.Model,
	}, nil
}

// SplitHoldout partitions a tensor's entries into a training tensor and
// a held-out set (coordinates plus true values), the input shape
// MaskedParafac expects for completion and cross-validation. frac is
// the held-out fraction in (0, 1); the split is seeded.
func SplitHoldout(x *Tensor, frac float64, seed int64) (train *Tensor, held [][3]int64, values []float64) {
	t, held, values := gen.SplitHoldout(x.t, frac, seed)
	return &Tensor{t: t}, held, values
}

// ResumeParafac continues a PARAFAC decomposition from a previous
// result (possibly reloaded with LoadParafac) for up to opt.MaxIters
// further iterations — the checkpoint/resume pattern for long
// decompositions. The rank is taken from the previous model.
func ResumeParafac(c *Cluster, x *Tensor, prev *ParafacResult, opt Options) (*ParafacResult, error) {
	iopt := opt.internal()
	iopt.WarmStart = prev.model
	res, err := core.ParafacALS(c.c, x.t, len(prev.Lambda), iopt)
	if err != nil {
		return nil, err
	}
	return wrapParafac(res), nil
}
