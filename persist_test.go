package haten2_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	haten2 "github.com/haten2/haten2"
)

func TestParafacSaveLoadRoundTrip(t *testing.T) {
	x := smallTensor()
	c := haten2.NewCluster(haten2.ClusterConfig{Machines: 2})
	res, err := haten2.Parafac(c, x, 1, haten2.Options{Variant: haten2.DRI, MaxIters: 15, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := haten2.LoadParafac(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// λ and factors must be bit-identical.
	for i, v := range res.Lambda {
		if back.Lambda[i] != v {
			t.Fatalf("lambda[%d] %v != %v", i, back.Lambda[i], v)
		}
	}
	for m := 0; m < 3; m++ {
		a, b := res.Factors[m], back.Factors[m]
		if a.Rows() != b.Rows() || a.Cols() != b.Cols() {
			t.Fatalf("factor %d shape mismatch", m)
		}
		for i := 0; i < a.Rows(); i++ {
			for j := 0; j < a.Cols(); j++ {
				if a.At(i, j) != b.At(i, j) {
					t.Fatalf("factor %d entry (%d,%d) differs", m, i, j)
				}
			}
		}
	}
	// The reloaded model predicts and fits identically.
	if math.Abs(back.Fit(x)-res.Fit(x)) > 1e-15 {
		t.Fatal("fit differs after reload")
	}
	if back.Predict(1, 1, 1) != res.Predict(1, 1, 1) {
		t.Fatal("prediction differs after reload")
	}
}

func TestTuckerSaveLoadRoundTrip(t *testing.T) {
	x := smallTensor()
	c := haten2.NewCluster(haten2.ClusterConfig{Machines: 2})
	res, err := haten2.Tucker(c, x, [3]int{1, 2, 1}, haten2.Options{Variant: haten2.DRI, MaxIters: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := haten2.LoadTucker(&buf)
	if err != nil {
		t.Fatal(err)
	}
	p1, q1, r1 := res.Core.Dims()
	p2, q2, r2 := back.Core.Dims()
	if p1 != p2 || q1 != q2 || r1 != r2 {
		t.Fatalf("core dims differ: %d%d%d vs %d%d%d", p1, q1, r1, p2, q2, r2)
	}
	if back.Core.At(0, 1, 0) != res.Core.At(0, 1, 0) {
		t.Fatal("core entry differs")
	}
	if math.Abs(back.Fit(x)-res.Fit(x)) > 1e-15 {
		t.Fatal("fit differs after reload")
	}
	if back.Predict(2, 1, 0) != res.Predict(2, 1, 0) {
		t.Fatal("prediction differs after reload")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"not-a-model\n",
		"haten2-parafac-v1\nrank 0\n",
		"haten2-parafac-v1\nrank 2\n1.0\n", // wrong lambda arity
		"haten2-tucker-v1\ncore 0 1 1\n",
		"haten2-parafac-v1\nrank 1\n1\nmatrix 2 2\n1 2\n",         // truncated matrix
		"haten2-parafac-v1\nrank 1\n1\nmatrix 1 2\n1 2\n",         // factor cols != rank
		"haten2-tucker-v1\ncore 1 1 1\n1\nmatrix 2 2\n1 2\n3 4\n", // factor cols != core dim
	}
	for i, in := range cases {
		if _, err := haten2.LoadParafac(strings.NewReader(in)); err == nil {
			if _, err2 := haten2.LoadTucker(strings.NewReader(in)); err2 == nil {
				t.Fatalf("case %d: garbage accepted by both loaders", i)
			}
		}
	}
	// Cross-format: a Tucker file must be rejected by LoadParafac.
	x := smallTensor()
	c := haten2.NewCluster(haten2.ClusterConfig{Machines: 1})
	res, err := haten2.Tucker(c, x, [3]int{1, 1, 1}, haten2.Options{Variant: haten2.DRI, MaxIters: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := haten2.LoadParafac(&buf); err == nil {
		t.Fatal("LoadParafac accepted a Tucker file")
	}
}

func TestSaveLoadResumeWorkflow(t *testing.T) {
	// The full checkpoint story: run a few iterations, save, reload,
	// resume, and confirm the fit keeps improving from where it left off.
	x := smallTensor()
	c := haten2.NewCluster(haten2.ClusterConfig{Machines: 2})
	first, err := haten2.Parafac(c, x, 1, haten2.Options{Variant: haten2.DRI, MaxIters: 2, Seed: 1, TrackFit: true, Tol: 1e-15})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := first.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := haten2.LoadParafac(&buf)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := haten2.ResumeParafac(c, x, loaded, haten2.Options{Variant: haten2.DRI, MaxIters: 20, TrackFit: true, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Fit(x) < first.Fit(x)-1e-6 {
		t.Fatalf("resume regressed: %v -> %v", first.Fit(x), resumed.Fit(x))
	}
	if resumed.Fit(x) < 0.999 {
		t.Fatalf("resumed run did not finish the job: fit %v", resumed.Fit(x))
	}
}
