// Network-intrusion analysis: the paper's motivating introduction
// example. Connection logs (source-ip, target-ip, port) are decomposed
// with nonnegative PARAFAC; one component captures the benign traffic on
// common service ports, and another isolates the planted port scan —
// its source factor concentrates on the attacker IPs.
//
// Run with:
//
//	go run ./examples/networkintrusion
package main

import (
	"fmt"
	"log"
	"sort"

	haten2 "github.com/haten2/haten2"
	"github.com/haten2/haten2/internal/gen"
)

func main() {
	logs := gen.NewIntrusion(gen.IntrusionConfig{
		Seed:        5,
		Sources:     60,
		Targets:     60,
		Ports:       40,
		Background:  800,
		ScanSources: 3,
		ScanTargets: 12,
		ScanPorts:   15,
	})
	x := haten2.WrapTensor(logs.Tensor)
	i, j, k := x.Dims()
	fmt.Printf("connection log: %d sources × %d targets × %d ports, %d distinct flows\n",
		i, j, k, x.NNZ())
	fmt.Printf("planted attackers: %v\n\n", labels(logs, "source", logs.ScanSources))

	cluster := haten2.NewCluster(haten2.ClusterConfig{Machines: 10})
	const rank = 2
	res, err := haten2.NonnegativeParafac(cluster, x, rank, haten2.Options{
		Variant: haten2.DRI, MaxIters: 60, Seed: 4, TrackFit: true, Tol: 1e-8,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("nonnegative PARAFAC rank %d: fit %.3f after %d iterations\n\n", rank, res.Fit(x), res.Iters)

	// Score each component by how many distinct ports it loads on: the
	// scan component spreads across many ports, benign traffic on few.
	scanComp := 0
	bestSpread := -1.0
	for r := 0; r < rank; r++ {
		spread := entropyish(res.Factors[2].Col(r))
		fmt.Printf("component %d port-spread score %.2f\n", r+1, spread)
		if spread > bestSpread {
			bestSpread, scanComp = spread, r
		}
	}

	fmt.Printf("\ncomponent %d flagged as the scan; top sources by factor weight:\n", scanComp+1)
	top := topK(res.Factors[0].Col(scanComp), 5)
	hits := 0
	planted := map[int64]bool{}
	for _, s := range logs.ScanSources {
		planted[s] = true
	}
	for _, idx := range top {
		tag := ""
		if planted[idx] {
			tag = "  <-- planted attacker"
			hits++
		}
		fmt.Printf("  %s%s\n", logs.Label("source", idx), tag)
	}
	fmt.Printf("\nrecovered %d of %d planted attackers in the top %d\n", hits, len(logs.ScanSources), len(top))
	if hits < len(logs.ScanSources) {
		fmt.Println("(increase iterations or rank to sharpen the separation)")
	}
}

func labels(g *gen.Intrusion, kind string, ids []int64) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = g.Label(kind, id)
	}
	return out
}

// entropyish counts the effective number of active entries in a
// nonnegative vector (participation ratio).
func entropyish(v []float64) float64 {
	var s1, s2 float64
	for _, x := range v {
		s1 += x
		s2 += x * x
	}
	if s2 == 0 {
		return 0
	}
	return s1 * s1 / s2
}

func topK(v []float64, k int) []int64 {
	idx := make([]int64, len(v))
	for i := range idx {
		idx[i] = int64(i)
	}
	sort.Slice(idx, func(a, b int) bool { return v[idx[a]] > v[idx[b]] })
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}
