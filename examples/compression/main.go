// Tensor compression with Tucker: the use case the paper names Tucker
// "more appropriate for" (Section I). A structured measurement tensor is
// compressed into cores of decreasing size; the example prints the
// storage ratio against the reconstruction fit at each size, and
// demonstrates completing missing measurements with MaskedParafac.
//
// Run with:
//
//	go run ./examples/compression
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	haten2 "github.com/haten2/haten2"
)

func main() {
	// A fully-observed sensors × locations × hours measurement tensor
	// with low-rank structure: a few latent daily patterns drive every
	// sensor, so the data compresses well.
	const sensors, locations, hours = 30, 25, 24
	rng := rand.New(rand.NewSource(2))
	patterns := 3
	sens := randm(rng, sensors, patterns)
	loc := randm(rng, locations, patterns)
	day := make([][]float64, hours)
	for h := range day {
		day[h] = make([]float64, patterns)
		for p := range day[h] {
			day[h][p] = 1 + math.Sin(2*math.Pi*float64(h)/24+float64(p))
		}
	}
	x := haten2.NewTensor(sensors, locations, hours)
	for i := int64(0); i < sensors; i++ {
		for j := int64(0); j < locations; j++ {
			for k := int64(0); k < hours; k++ {
				var v float64
				for p := 0; p < patterns; p++ {
					v += sens[i][p] * loc[j][p] * day[k][p]
				}
				x.Append(v, i, j, k)
			}
		}
	}
	x.Coalesce()
	rawCells := int64(x.NNZ()) * 4 // i, j, k, value per entry
	fmt.Printf("measurements: %d nonzeros (%d stored values in COO)\n\n", x.NNZ(), rawCells)

	cluster := haten2.NewCluster(haten2.ClusterConfig{Machines: 10})
	fmt.Println("core size   stored values   compression   fit")
	for _, c := range []int{6, 4, 3, 2} {
		res, err := haten2.Tucker(cluster, x, [3]int{c, c, c}, haten2.Options{
			Variant: haten2.DRI, MaxIters: 8, Seed: 9, Tol: 1e-8,
		})
		if err != nil {
			log.Fatal(err)
		}
		stored := int64(c*c*c) + int64(c)*(sensors+locations+hours)
		fmt.Printf("%d³          %8d        %6.1fx     %.4f\n",
			c, stored, float64(rawCells)/float64(stored), res.Fit(x))
	}

	// Completion: hide 5% of the measurements and recover them.
	var missing [][3]int64
	var truth []float64
	n := 0
	x.Entries(func(i, j, k int64, v float64) bool {
		if n%20 == 0 {
			missing = append(missing, [3]int64{i, j, k})
			truth = append(truth, v)
		}
		n++
		return true
	})
	res, err := haten2.MaskedParafac(cluster, x, missing, patterns, haten2.Options{
		Variant: haten2.DRI, MaxIters: 40, Seed: 9, TrackFit: true, Tol: 1e-9,
	})
	if err != nil {
		log.Fatal(err)
	}
	var se, norm float64
	for i, idx := range missing {
		d := res.Predict(idx[0], idx[1], idx[2]) - truth[i]
		se += d * d
		norm += truth[i] * truth[i]
	}
	fmt.Printf("\ncompletion: %d held-out measurements recovered with %.1f%% relative error\n",
		len(missing), 100*math.Sqrt(se/norm))
}

func randm(rng *rand.Rand, n, p int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, p)
		for j := range out[i] {
			out[i][j] = 0.2 + rng.Float64()
		}
	}
	return out
}
