// Quickstart: build a small sparse tensor, decompose it with PARAFAC
// and Tucker on a simulated 10-machine cluster, and inspect the results.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	haten2 "github.com/haten2/haten2"
)

func main() {
	// Build a 100×80×60 tensor that is exactly rank 2: two sparse
	// "communities", each the outer product of three sparse loading
	// vectors — the structure tensor decompositions exist to find.
	rng := rand.New(rand.NewSource(1))
	a := [2][]float64{sparseVec(rng, 100, 12), sparseVec(rng, 100, 12)}
	b := [2][]float64{sparseVec(rng, 80, 12), sparseVec(rng, 80, 12)}
	c := [2][]float64{sparseVec(rng, 60, 10), sparseVec(rng, 60, 10)}
	weights := []float64{5, 3}
	x := haten2.NewTensor(100, 80, 60)
	for i := int64(0); i < 100; i++ {
		for j := int64(0); j < 80; j++ {
			for k := int64(0); k < 60; k++ {
				var v float64
				for r := 0; r < 2; r++ {
					v += weights[r] * a[r][i] * b[r][j] * c[r][k]
				}
				if v != 0 {
					x.Append(v, i, j, k)
				}
			}
		}
	}
	x.Coalesce()
	fmt.Printf("input: 100x80x60 tensor with %d nonzeros\n\n", x.NNZ())

	// A simulated 10-machine cluster. All of the paper's job plans are
	// available; DRI is the recommended one.
	cluster := haten2.NewCluster(haten2.ClusterConfig{Machines: 10})

	// PARAFAC: factor the tensor into rank-2 components.
	pres, err := haten2.Parafac(cluster, x, 2, haten2.Options{
		Variant:  haten2.DRI,
		MaxIters: 30,
		Seed:     7,
		TrackFit: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PARAFAC rank 2: fit %.4f after %d iterations\n", pres.Fit(x), pres.Iters)
	fmt.Printf("component weights λ = %.3g, %.3g\n", pres.Lambda[0], pres.Lambda[1])
	fmt.Printf("factor A is %dx%d\n\n", pres.Factors[0].Rows(), pres.Factors[0].Cols())

	// Tucker: compress into a 3×3×3 core.
	tres, err := haten2.Tucker(cluster, x, [3]int{3, 3, 3}, haten2.Options{
		Variant:  haten2.DRI,
		MaxIters: 20,
		Seed:     7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Tucker 3x3x3: fit %.4f, core norm %.3f\n\n", tres.Fit(x), tres.Core.Norm())

	// The cluster accounted for every job the two decompositions ran.
	st := cluster.Stats()
	fmt.Printf("cluster totals: %d MapReduce jobs, %d records shuffled, %.0fs simulated\n",
		st.Jobs, st.ShuffleRecords, st.SimSeconds)
}

// sparseVec returns a length-n vector with k random positive entries.
func sparseVec(rng *rand.Rand, n, k int) []float64 {
	v := make([]float64, n)
	for placed := 0; placed < k; {
		i := rng.Intn(n)
		if v[i] == 0 {
			v[i] = 0.5 + rng.Float64()
			placed++
		}
	}
	return v
}
