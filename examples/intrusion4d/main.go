// 4-way intrusion analysis: the paper's motivating example verbatim —
// (source-ip, target-ip, port-number, timestamp) connection logs. A
// 4-way PARAFAC decomposition separates the diurnal benign traffic from
// a planted port scan, and the temporal factor localizes *when* the
// attack happened — information the 3-way projection loses.
//
// Run with:
//
//	go run ./examples/intrusion4d
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	haten2 "github.com/haten2/haten2"
	"github.com/haten2/haten2/internal/gen"
)

func main() {
	logs := gen.NewIntrusion4D(gen.IntrusionConfig{
		Seed:        6,
		Sources:     50,
		Targets:     50,
		Ports:       30,
		Background:  900,
		ScanSources: 3,
		ScanTargets: 10,
		ScanPorts:   15,
	}, 24)
	x, err := haten2.WrapTensorN(logs.Tensor)
	if err != nil {
		log.Fatal(err)
	}
	d := x.Dims()
	fmt.Printf("4-way log: %d sources × %d targets × %d ports × %d hours, %d flows\n",
		d[0], d[1], d[2], d[3], x.NNZ())
	fmt.Printf("planted attack window: hours %d–%d\n\n", logs.ScanWindow[0], logs.ScanWindow[1]-1)

	cluster := haten2.NewCluster(haten2.ClusterConfig{Machines: 10})
	const rank = 2
	res, err := haten2.ParafacN(cluster, x, rank, haten2.Options{
		MaxIters: 50, Seed: 8, TrackFit: true, Tol: 1e-8,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("4-way PARAFAC rank %d: fit %.3f after %d iterations\n\n", rank, res.Fit(x), res.Iters)

	// The scan component is the one whose temporal factor is most
	// concentrated (benign traffic covers the whole day).
	timeFactor := res.Factors[3]
	scanComp, bestConc := 0, -1.0
	for r := 0; r < rank; r++ {
		conc := concentration(timeFactor.Col(r))
		fmt.Printf("component %d temporal concentration %.2f\n", r+1, conc)
		if conc > bestConc {
			bestConc, scanComp = conc, r
		}
	}

	// When did it happen? Top hours of the flagged component.
	hours := topK(timeFactor.Col(scanComp), 3)
	fmt.Printf("\ncomponent %d flagged; its activity peaks at hours %v\n", scanComp+1, hours)
	inWindow := 0
	for _, h := range hours {
		if h >= logs.ScanWindow[0] && h < logs.ScanWindow[1] {
			inWindow++
		}
	}
	fmt.Printf("%d of %d peak hours fall inside the planted attack window\n\n", inWindow, len(hours))

	// Who did it? Top sources of the flagged component.
	srcs := topK(res.Factors[0].Col(scanComp), 4)
	planted := map[int64]bool{}
	for _, s := range logs.ScanSources {
		planted[s] = true
	}
	var names []string
	hits := 0
	for _, s := range srcs {
		n := fmt.Sprintf("10.0.0.%d", s)
		if planted[s] {
			n += "*"
			hits++
		}
		names = append(names, n)
	}
	fmt.Printf("top sources: %s (* = planted attacker)\n", strings.Join(names, ", "))
	fmt.Printf("recovered %d of %d attackers\n", hits, len(logs.ScanSources))
}

// concentration is the inverse participation ratio normalized to [0,1]:
// 1 means all mass on one hour.
func concentration(v []float64) float64 {
	var s1, s2 float64
	for _, x := range v {
		if x < 0 {
			x = -x
		}
		s1 += x
		s2 += x * x
	}
	if s1 == 0 {
		return 0
	}
	return s2 / (s1 * s1) * float64(len(v))
}

func topK(v []float64, k int) []int64 {
	idx := make([]int64, len(v))
	for i := range idx {
		idx[i] = int64(i)
	}
	sort.Slice(idx, func(a, b int) bool { return v[idx[a]] > v[idx[b]] })
	if k > len(idx) {
		k = len(idx)
	}
	out := append([]int64(nil), idx[:k]...)
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}
