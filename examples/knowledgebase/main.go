// Knowledge-base concept discovery: the paper's headline application
// (Section IV-C). A Freebase-music-style (subject, object, predicate)
// tensor is preprocessed with the paper's pipeline (scarce-predicate
// filtering + TF-IDF-style reweighting), decomposed with HaTen2-PARAFAC
// and HaTen2-Tucker, and the top entities of each component are printed
// — the structure of Tables VI and VII.
//
// Run with:
//
//	go run ./examples/knowledgebase
package main

import (
	"fmt"
	"log"

	haten2 "github.com/haten2/haten2"
	"github.com/haten2/haten2/internal/gen"
	"github.com/haten2/haten2/internal/serve"
)

func main() {
	// Generate the Freebase-music stand-in: six planted concepts plus
	// crawl noise, then the paper's preprocessing.
	kb := gen.NewKB(gen.KBConfig{
		Seed:               11,
		Theme:              "music",
		ConceptNames:       gen.FreebaseMusicNames,
		EntitiesPerConcept: 10,
		TriplesPerConcept:  300,
		NoiseTriples:       150,
	})
	kb = kb.FilterScarcePredicates(1)
	x := haten2.WrapTensor(kb.Tensor())
	i, j, k := x.Dims()
	fmt.Printf("knowledge base: %d subjects × %d objects × %d predicates, %d weighted facts\n\n",
		i, j, k, x.NNZ())

	cluster := haten2.NewCluster(haten2.ClusterConfig{Machines: 40})
	rank := len(kb.Concepts)

	// --- PARAFAC: diagonal concepts (Table VI structure) --------------
	pres, err := haten2.Parafac(cluster, x, rank, haten2.Options{
		Variant: haten2.DRI, MaxIters: 40, Seed: 3, TrackFit: true, Tol: 1e-7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PARAFAC rank %d (fit %.3f):\n", rank, pres.Fit(x))
	for r := 0; r < rank; r++ {
		fmt.Printf("  concept %d:\n", r+1)
		fmt.Printf("    subjects:  %v\n", serve.TopEntities(kb.Subjects, pres.Factors[0].Col(r), pres.Factors[0].RowTotals(), 3))
		fmt.Printf("    objects:   %v\n", serve.TopEntities(kb.Objects, pres.Factors[1].Col(r), pres.Factors[1].RowTotals(), 3))
		fmt.Printf("    relations: %v\n", serve.TopEntities(kb.Predicates, pres.Factors[2].Col(r), pres.Factors[2].RowTotals(), 3))
	}

	// --- Tucker: overlapping groups coupled by the core (Table VII/VIII)
	tres, err := haten2.Tucker(cluster, x, [3]int{rank, rank, rank}, haten2.Options{
		Variant: haten2.DRI, MaxIters: 25, Seed: 3, Tol: 1e-9,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nTucker %dx%dx%d (fit %.3f): strongest core interactions\n", rank, rank, rank, tres.Fit(x))
	// Find the three largest core entries; each couples a subject group,
	// an object group, and a relation group — Tucker's advantage over
	// PARAFAC's strictly diagonal coupling.
	type cell struct {
		p, q, r int64
		v       float64
	}
	var best []cell
	for p := int64(0); p < int64(rank); p++ {
		for q := int64(0); q < int64(rank); q++ {
			for r := int64(0); r < int64(rank); r++ {
				v := tres.Core.At(p, q, r)
				if v < 0 {
					v = -v
				}
				best = append(best, cell{p, q, r, v})
			}
		}
	}
	for i := 0; i < 3; i++ {
		// Selection by repeated max keeps the example dependency-free.
		mi := i
		for j := i; j < len(best); j++ {
			if best[j].v > best[mi].v {
				mi = j
			}
		}
		best[i], best[mi] = best[mi], best[i]
		c := best[i]
		fmt.Printf("  (S%d, O%d, R%d) weight %.2f\n", c.p+1, c.q+1, c.r+1, c.v)
		fmt.Printf("    subjects:  %v\n", serve.TopEntities(kb.Subjects, tres.Factors[0].Col(int(c.p)), tres.Factors[0].RowTotals(), 3))
		fmt.Printf("    objects:   %v\n", serve.TopEntities(kb.Objects, tres.Factors[1].Col(int(c.q)), tres.Factors[1].RowTotals(), 3))
		fmt.Printf("    relations: %v\n", serve.TopEntities(kb.Predicates, tres.Factors[2].Col(int(c.r)), tres.Factors[2].RowTotals(), 3))
	}
}
