// Command haten2lint runs the project's determinism-invariant
// static-analysis suite (package internal/lint) over the module.
//
// Usage:
//
//	haten2lint [-json] [-list] [packages]
//
// Packages are directory patterns relative to the current directory;
// "./..." (the default) analyzes the whole module, "./internal/mr"
// just that package. Test files are never analyzed.
//
// Exit codes: 0 when clean, 1 when findings were reported, 2 when the
// module failed to load or type-check.
//
// Findings are suppressed line-by-line with
//
//	//haten2:allow <check> <reason>
//
// on, or directly above, the offending statement (an allow on a func
// declaration covers the whole function). Run with -json for
// machine-readable output, or -list for one line per check — name,
// whether it is flow-sensitive or syntactic, and the invariant it
// enforces.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/haten2/haten2/internal/lint"
)

func main() {
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "haten2lint:", err)
		os.Exit(2)
	}
	os.Exit(run(os.Args[1:], wd, os.Stdout, os.Stderr))
}

// jsonReport is the -json output shape.
type jsonReport struct {
	Findings []lint.Diagnostic `json:"findings"`
	Count    int               `json:"count"`
}

func run(args []string, dir string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("haten2lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as JSON")
	list := fs.Bool("list", false, "list the suite's checks and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			sensitivity := "syntactic"
			if a.Flow {
				sensitivity = "flow-sensitive"
			}
			fmt.Fprintf(stdout, "%-14s %-14s %s\n", a.Name, sensitivity, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := moduleRoot(dir)
	if err != nil {
		fmt.Fprintln(stderr, "haten2lint:", err)
		return 2
	}
	pkgs, err := lint.Load(root)
	if err != nil {
		fmt.Fprintln(stderr, "haten2lint:", err)
		return 2
	}
	selected, err := selectPackages(pkgs, dir, patterns)
	if err != nil {
		fmt.Fprintln(stderr, "haten2lint:", err)
		return 2
	}
	diags := lint.RunSuite(selected, analyzers)
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonReport{Findings: diags, Count: len(diags)}); err != nil {
			fmt.Fprintln(stderr, "haten2lint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// moduleRoot walks up from dir to the nearest directory holding go.mod.
func moduleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found in or above %s", dir)
		}
		d = parent
	}
}

// selectPackages filters the loaded module down to the packages the
// directory patterns name: "<dir>/..." selects a subtree, anything else
// exactly one directory.
func selectPackages(pkgs []*lint.Package, dir string, patterns []string) ([]*lint.Package, error) {
	var out []*lint.Package
	seen := make(map[string]bool)
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "" {
				pat = "."
			}
		} else if pat == "..." {
			recursive, pat = true, "."
		}
		base, err := filepath.Abs(filepath.Join(dir, pat))
		if err != nil {
			return nil, err
		}
		matched := false
		for _, p := range pkgs {
			ok := p.Dir == base
			if recursive && !ok {
				ok = strings.HasPrefix(p.Dir, base+string(filepath.Separator)) || p.Dir == base
			}
			if !ok {
				continue
			}
			matched = true
			if !seen[p.PkgPath] {
				seen[p.PkgPath] = true
				out = append(out, p)
			}
		}
		if !matched {
			return nil, fmt.Errorf("pattern %q matched no packages", pat)
		}
	}
	return out, nil
}
