package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/haten2/haten2/internal/lint"
)

// writeModule materializes a throwaway module for the CLI to analyze.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, content := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const cleanSrc = `package clean

func Sum(xs []int) int {
	n := 0
	for _, v := range xs {
		n += v
	}
	return n
}
`

const dirtySrc = `package dirty

import "time"

func Stamp() time.Time { return time.Now() }
`

func TestExitCodeCleanModule(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":   "module example.test/clean\n\ngo 1.22\n",
		"clean.go": cleanSrc,
	})
	var out, errBuf bytes.Buffer
	if code := run(nil, dir, &out, &errBuf); code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errBuf.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean run printed findings: %q", out.String())
	}
}

func TestExitCodeFindings(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":   "module example.test/dirty\n\ngo 1.22\n",
		"dirty.go": dirtySrc,
	})
	var out, errBuf bytes.Buffer
	if code := run(nil, dir, &out, &errBuf); code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout: %s\nstderr: %s", code, out.String(), errBuf.String())
	}
	if !strings.Contains(out.String(), "[wallclock]") {
		t.Errorf("findings output missing [wallclock]: %q", out.String())
	}
}

func TestExitCodeLoadError(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":    "module example.test/broken\n\ngo 1.22\n",
		"broken.go": "package broken\n\nfunc f() int { return \"not an int\" }\n",
	})
	var out, errBuf bytes.Buffer
	if code := run(nil, dir, &out, &errBuf); code != 2 {
		t.Fatalf("exit = %d, want 2\nstdout: %s\nstderr: %s", code, out.String(), errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "type-checking") {
		t.Errorf("stderr missing type-check failure: %q", errBuf.String())
	}
}

func TestJSONOutput(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":   "module example.test/dirty\n\ngo 1.22\n",
		"dirty.go": dirtySrc,
	})
	var out, errBuf bytes.Buffer
	if code := run([]string{"-json"}, dir, &out, &errBuf); code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr: %s", code, errBuf.String())
	}
	var rep jsonReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if rep.Count != 1 || len(rep.Findings) != 1 {
		t.Fatalf("count = %d, findings = %d, want 1 and 1", rep.Count, len(rep.Findings))
	}
	f := rep.Findings[0]
	if f.Check != "wallclock" || filepath.Base(f.File) != "dirty.go" || f.Line != 5 {
		t.Errorf("finding = %+v, want wallclock at dirty.go:5", f)
	}
}

func TestListFlag(t *testing.T) {
	var out, errBuf bytes.Buffer
	// -list never loads the module, so it must succeed even from a
	// directory with no go.mod.
	if code := run([]string{"-list"}, t.TempDir(), &out, &errBuf); code != 0 {
		t.Fatalf("exit = %d, want 0\nstderr: %s", code, errBuf.String())
	}
	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	analyzers := lint.Analyzers()
	if len(lines) != len(analyzers) {
		t.Fatalf("-list printed %d lines, want %d:\n%s", len(lines), len(analyzers), out.String())
	}
	for i, a := range analyzers {
		sensitivity := "syntactic"
		if a.Flow {
			sensitivity = "flow-sensitive"
		}
		line := lines[i]
		if !strings.HasPrefix(line, a.Name) {
			t.Errorf("-list line %d = %q, want it to start with %s", i, line, a.Name)
		}
		for _, part := range []string{sensitivity, a.Doc} {
			if !strings.Contains(line, part) {
				t.Errorf("-list line for %s = %q, missing %q", a.Name, line, part)
			}
		}
	}
	// The suite must advertise both kinds, or the column is dead weight.
	if !strings.Contains(out.String(), "flow-sensitive") || !strings.Contains(out.String(), "syntactic") {
		t.Errorf("-list output missing a sensitivity kind:\n%s", out.String())
	}
}

func TestBadPattern(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":   "module example.test/clean\n\ngo 1.22\n",
		"clean.go": cleanSrc,
	})
	var out, errBuf bytes.Buffer
	if code := run([]string{"./nosuchdir"}, dir, &out, &errBuf); code != 2 {
		t.Fatalf("exit = %d, want 2\nstderr: %s", code, errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "matched no packages") {
		t.Errorf("stderr missing pattern error: %q", errBuf.String())
	}
}
