package main

import (
	"io"
	"testing"
)

func TestParseDims(t *testing.T) {
	d, err := parseDims("10x20x30")
	if err != nil || d != [3]int64{10, 20, 30} {
		t.Fatalf("parseDims: %v %v", d, err)
	}
	for _, bad := range []string{"10x20", "ax20x30", "0x20x30"} {
		if _, err := parseDims(bad); err == nil {
			t.Fatalf("parseDims accepted %q", bad)
		}
	}
}

func TestRunKinds(t *testing.T) {
	// run writes to stdout; we only check error paths and that the
	// generators execute (output volume is tested in internal/gen).
	for _, kind := range []string{"random", "freebase", "nell", "intrusion", "intrusion4d"} {
		if err := run(io.Discard, kind, "20x20x20", 30, 1); err != nil {
			t.Fatalf("kind %s: %v", kind, err)
		}
	}
	if err := run(io.Discard, "bogus", "20x20x20", 30, 1); err == nil {
		t.Fatal("bogus kind accepted")
	}
	if err := run(io.Discard, "random", "bad", 30, 1); err == nil {
		t.Fatal("bad dims accepted")
	}
}
