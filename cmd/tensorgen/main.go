// Command tensorgen generates the synthetic datasets of the HaTen2
// evaluation in coordinate format on stdout.
//
// Usage:
//
//	tensorgen -kind random -dims 1000x1000x1000 -nnz 10000 > random.coo
//	tensorgen -kind freebase -seed 7 > music.coo
//	tensorgen -kind nell > nell.coo
//	tensorgen -kind intrusion > logs.coo
//	tensorgen -kind intrusion4d > logs4.coo
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"github.com/haten2/haten2/internal/gen"
	"github.com/haten2/haten2/internal/tensor"
)

func main() {
	var (
		kind = flag.String("kind", "random", "dataset: random, freebase, nell, intrusion, intrusion4d")
		dims = flag.String("dims", "1000x1000x1000", "shape IxJxK (random only)")
		nnz  = flag.Int("nnz", 10000, "number of nonzeros (random only)")
		seed = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()
	if err := run(os.Stdout, *kind, *dims, *nnz, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "tensorgen:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, kind, dims string, nnz int, seed int64) error {
	var x *tensor.Tensor
	switch kind {
	case "random":
		d, err := parseDims(dims)
		if err != nil {
			return err
		}
		x = gen.Random(seed, d, nnz)
	case "freebase":
		kb := gen.NewKB(gen.KBConfig{
			Seed: seed, Theme: "music", ConceptNames: gen.FreebaseMusicNames,
			EntitiesPerConcept: 12, TriplesPerConcept: 400, NoiseTriples: 200,
		}).FilterScarcePredicates(1)
		x = kb.Tensor()
		if err := printVocab(w, kb); err != nil {
			return err
		}
	case "nell":
		kb := gen.NewKB(gen.KBConfig{
			Seed: seed, Theme: "nell", ConceptNames: gen.NELLNames,
			EntitiesPerConcept: 20, TriplesPerConcept: 600, NoiseTriples: 300,
		}).FilterScarcePredicates(1)
		x = kb.Tensor()
		if err := printVocab(w, kb); err != nil {
			return err
		}
	case "intrusion":
		g := gen.NewIntrusion(gen.IntrusionConfig{Seed: seed})
		x = g.Tensor
	case "intrusion4d":
		g := gen.NewIntrusion4D(gen.IntrusionConfig{Seed: seed}, 24)
		x = g.Tensor
	default:
		return fmt.Errorf("unknown kind %q", kind)
	}
	return tensor.WriteCOO(w, x)
}

func parseDims(s string) ([3]int64, error) {
	parts := strings.Split(strings.ToLower(s), "x")
	if len(parts) != 3 {
		return [3]int64{}, fmt.Errorf("dims must be IxJxK, got %q", s)
	}
	var out [3]int64
	for i, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil || v <= 0 {
			return out, fmt.Errorf("bad dimension %q", p)
		}
		out[i] = v
	}
	return out, nil
}

// printVocab emits the entity labels as comments so downstream analysis
// can name the discovered concepts.
func printVocab(w io.Writer, kb *gen.KB) error {
	for i, s := range kb.Subjects {
		if _, err := fmt.Fprintf(w, "# subject %d %s\n", i, s); err != nil {
			return err
		}
	}
	for i, s := range kb.Objects {
		if _, err := fmt.Fprintf(w, "# object %d %s\n", i, s); err != nil {
			return err
		}
	}
	for i, s := range kb.Predicates {
		if _, err := fmt.Fprintf(w, "# predicate %d %s\n", i, s); err != nil {
			return err
		}
	}
	return nil
}
