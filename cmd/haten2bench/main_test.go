package main

import "testing"

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("nope", false, 1, false, nil); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunSingleExperiment(t *testing.T) {
	// table2 is static and instant; this exercises the registry and
	// printing path end to end.
	if err := run("table2", false, 1, false, nil); err != nil {
		t.Fatal(err)
	}
	if err := run("table2, table5", false, 1, true, nil); err != nil {
		t.Fatal(err)
	}
}
