package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("nope", false, 1, "inproc", false, nil, nil); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunSingleExperiment(t *testing.T) {
	// table2 is static and instant; this exercises the registry and
	// printing path end to end.
	if err := run("table2", false, 1, "inproc", false, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := run("table2, table5", false, 1, "inproc", true, nil, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProfiledWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	if err := profiled(cpu, mem, func() error {
		return run("table2", false, 1, "inproc", false, nil, nil)
	}); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s: empty profile", p)
		}
	}
}

func TestProfiledPropagatesRunError(t *testing.T) {
	cpu := filepath.Join(t.TempDir(), "cpu.pprof")
	err := profiled(cpu, "", func() error {
		return run("nope", false, 1, "inproc", false, nil, nil)
	})
	if err == nil {
		t.Fatal("experiment error swallowed by the profiling wrapper")
	}
}
