// Command haten2bench regenerates the tables and figures of the HaTen2
// paper's evaluation section on the embedded cluster simulator.
//
// Usage:
//
//	haten2bench                  # run everything
//	haten2bench -exp fig1a       # one experiment
//	haten2bench -exp table3,fig8 # a subset
//	haten2bench -full            # larger sweeps
//	haten2bench -json            # machine-readable output
//	haten2bench -exp mr -mrout BENCH_mr.json  # engine wall-clock sweep
//	haten2bench -exp faults -faultsout BENCH_faults.json  # fault overhead
//
// Experiment ids: table2 table3 table4 table5 table6 table7 table8
// fig1a fig1b fig1c fig7a fig7b fig7c fig8 nell ablation combiner mr
// faults.
//
// The mr experiment measures real host wall-clock (not simulated time)
// of the MapReduce engine across a GOMAXPROCS sweep; -mrout additionally
// writes its report to the named JSON file (BENCH_mr.json by
// convention) so the speedup is recorded per machine. The faults
// experiment measures the simulated-time overhead of task retries,
// speculative execution, and checkpoint-resume against a fault-free
// baseline, verifying outputs stay bit-identical; -faultsout writes its
// report to the named JSON file (BENCH_faults.json by convention).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/haten2/haten2/internal/bench"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		full      = flag.Bool("full", false, "run the larger sweeps")
		seed      = flag.Int64("seed", 42, "data generation seed")
		jsonOut   = flag.Bool("json", false, "emit reports as JSON instead of tables")
		mrOut     = flag.String("mrout", "", "also write the mr experiment's report to this JSON file")
		faultsOut = flag.String("faultsout", "", "also write the faults experiment's report to this JSON file")
	)
	flag.Parse()
	outs := map[string]string{}
	if *mrOut != "" {
		outs["mr"] = *mrOut
	}
	if *faultsOut != "" {
		outs["faults"] = *faultsOut
	}
	if err := run(*exp, *full, *seed, *jsonOut, outs); err != nil {
		fmt.Fprintln(os.Stderr, "haten2bench:", err)
		os.Exit(1)
	}
}

// run executes the selected experiments; outs maps an experiment id to
// a file its JSON report is additionally written to.
func run(exp string, full bool, seed int64, jsonOut bool, outs map[string]string) error {
	cfg := bench.Config{Full: full, Seed: seed}
	type runner func(bench.Config) (*bench.Report, error)
	registry := map[string]runner{
		"table2":   func(bench.Config) (*bench.Report, error) { return bench.Table2(), nil },
		"table3":   bench.Table3,
		"table4":   bench.Table4,
		"table5":   func(c bench.Config) (*bench.Report, error) { return bench.Table5(c), nil },
		"table6":   bench.Table6,
		"table7":   bench.Table7,
		"table8":   bench.Table8,
		"fig1a":    bench.Fig1a,
		"fig1b":    bench.Fig1b,
		"fig1c":    bench.Fig1c,
		"fig7a":    bench.Fig7a,
		"fig7b":    bench.Fig7b,
		"fig7c":    bench.Fig7c,
		"fig8":     bench.Fig8,
		"ablation": bench.Ablation,
		"combiner": bench.CombinerAblation,
		"nell":     bench.TableNELL,
		"mr":       bench.MRBench,
		"faults":   bench.Faults,
	}
	order := []string{
		"table2", "table3", "table4", "table5",
		"fig1a", "fig1b", "fig1c", "fig7a", "fig7b", "fig7c", "fig8",
		"table6", "table7", "table8", "nell", "ablation", "combiner",
		"mr", "faults",
	}
	var ids []string
	if exp == "all" {
		ids = order
	} else {
		for _, id := range strings.Split(exp, ",") {
			id = strings.TrimSpace(id)
			if _, ok := registry[id]; !ok {
				return fmt.Errorf("unknown experiment %q (known: %s)", id, strings.Join(order, " "))
			}
			ids = append(ids, id)
		}
	}
	for _, id := range ids {
		start := time.Now()
		rep, err := registry[id](cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		if jsonOut {
			b, err := rep.JSON()
			if err != nil {
				return err
			}
			fmt.Println(string(b))
		} else {
			rep.Print(os.Stdout)
			fmt.Printf("(%s regenerated in %.1fs wall time)\n\n", id, time.Since(start).Seconds())
		}
		if out := outs[id]; out != "" {
			b, err := rep.JSON()
			if err != nil {
				return err
			}
			if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
				return fmt.Errorf("writing %s: %w", out, err)
			}
		}
	}
	return nil
}
