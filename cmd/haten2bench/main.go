// Command haten2bench regenerates the tables and figures of the HaTen2
// paper's evaluation section on the embedded cluster simulator.
//
// Usage:
//
//	haten2bench                  # run everything
//	haten2bench -exp fig1a       # one experiment
//	haten2bench -exp table3,fig8 # a subset
//	haten2bench -full            # larger sweeps
//	haten2bench -json            # machine-readable output
//	haten2bench -exp mr -mrout BENCH_mr.json  # engine wall-clock sweep
//	haten2bench -exp mr -backend=proc        # also sweep the multi-process backend
//	haten2bench -exp faults -faultsout BENCH_faults.json  # fault overhead
//	haten2bench -exp shuffle -shuffleout BENCH_shuffle.json  # codec A/B
//	haten2bench -exp storage -storageout BENCH_storage.json  # DFS durability
//	haten2bench -exp serve -serveout BENCH_serve.json  # factor-serving load
//	haten2bench -exp mr -cpuprofile cpu.pprof -memprofile mem.pprof
//
// Experiment ids: table2 table3 table4 table5 table6 table7 table8
// fig1a fig1b fig1c fig7a fig7b fig7c fig8 nell ablation combiner mr
// faults shuffle storage serve.
//
// The mr experiment measures real host wall-clock (not simulated time)
// of the MapReduce engine across a GOMAXPROCS sweep; -mrout additionally
// writes its report to the named JSON file (BENCH_mr.json by
// convention) so the speedup is recorded per machine. With
// -backend=proc the sweep additionally runs through the multi-process
// socket backend (internal/mrproc) — shuffle partitions and staged
// files round-tripping through spawned worker processes — and records
// those rows alongside the in-process ones; job counters must match
// bit-for-bit (DESIGN.md §3i). The faults
// experiment measures the simulated-time overhead of task retries,
// speculative execution, and checkpoint-resume against a fault-free
// baseline, verifying outputs stay bit-identical; -faultsout writes its
// report to the named JSON file (BENCH_faults.json by convention). The
// shuffle experiment compares the fixed-width and columnar shuffle
// codecs on one PARAFAC-DRI iteration — byte counts, per-record wire
// cost, and output bit-identity; -shuffleout writes its report to the
// named JSON file (BENCH_shuffle.json by convention). The storage
// experiment measures the simulated-time overhead of checksum
// failover, read-repair, and checkpoint-restart after data loss under
// seeded corruption/loss plans, verifying factors stay bit-identical;
// -storageout writes its report to the named JSON file
// (BENCH_storage.json by convention). The serve experiment drives a
// Zipf-skewed closed-loop load of simulated users against the
// factor-serving layer (DESIGN.md §3h) across shard counts and cache
// sizes, reporting sustained QPS, p50/p99 latency, cache hit rate, and
// batch occupancy against the naive unsharded scorer, and fails
// outright if any leg's rankings diverge from the single-threaded
// baseline scorer; -serveout writes its report to the named JSON file
// (BENCH_serve.json by convention).
//
// -trace writes one Chrome trace_event JSON file (simulated time,
// DESIGN.md §3e) covering every cluster the selected experiments
// create, and -tracesummary prints the aggregated per-job table after
// they finish.
//
// -cpuprofile writes a pprof CPU profile covering the selected
// experiments, and -memprofile writes a heap profile taken after they
// finish (post-GC, so it shows retained memory — the pools — rather
// than transient garbage). Both feed `go tool pprof`, making perf work
// on the engine measurable without ad-hoc harnesses.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"github.com/haten2/haten2/internal/bench"
	"github.com/haten2/haten2/internal/mrproc"
	"github.com/haten2/haten2/internal/obs"
)

func main() {
	// A copy of this binary spawned by the proc backend is a worker, not
	// a bench run; divert it before flag parsing touches anything.
	mrproc.MaybeWorker()
	var (
		exp        = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		full       = flag.Bool("full", false, "run the larger sweeps")
		backend    = flag.String("backend", "inproc", "execution backend for experiments that support one: inproc, or proc to also sweep the multi-process socket engine")
		seed       = flag.Int64("seed", 42, "data generation seed")
		jsonOut    = flag.Bool("json", false, "emit reports as JSON instead of tables")
		mrOut      = flag.String("mrout", "", "also write the mr experiment's report to this JSON file")
		faultsOut  = flag.String("faultsout", "", "also write the faults experiment's report to this JSON file")
		shuffleOut = flag.String("shuffleout", "", "also write the shuffle experiment's report to this JSON file")
		storageOut = flag.String("storageout", "", "also write the storage experiment's report to this JSON file")
		serveOut   = flag.String("serveout", "", "also write the serve experiment's report to this JSON file")
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile of the selected experiments to this file")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile (taken after the experiments) to this file")
		trace      = flag.String("trace", "", "write a Chrome trace_event JSON file (simulated time) covering the selected experiments to this path")
		traceSum   = flag.Bool("tracesummary", false, "print the per-job plan summary table after the experiments")
	)
	flag.Parse()
	outs := map[string]string{}
	if *mrOut != "" {
		outs["mr"] = *mrOut
	}
	if *faultsOut != "" {
		outs["faults"] = *faultsOut
	}
	if *shuffleOut != "" {
		outs["shuffle"] = *shuffleOut
	}
	if *storageOut != "" {
		outs["storage"] = *storageOut
	}
	if *serveOut != "" {
		outs["serve"] = *serveOut
	}
	var tr *obs.Tracer
	if *trace != "" || *traceSum {
		tr = obs.NewTracer()
	}
	err := profiled(*cpuProfile, *memProfile, func() error {
		return run(*exp, *full, *seed, *backend, *jsonOut, outs, tr)
	})
	if err == nil {
		err = exportTrace(tr, *trace, *traceSum)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "haten2bench:", err)
		os.Exit(1)
	}
}

// exportTrace writes the harness-wide trace file and/or prints the
// plan-summary table once the selected experiments have run.
func exportTrace(tr *obs.Tracer, path string, summary bool) error {
	if tr == nil {
		return nil
	}
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := tr.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if summary {
		return tr.WriteSummary(os.Stdout)
	}
	return nil
}

// profiled runs fn under the requested pprof profiles. The CPU profile
// covers exactly fn; the heap profile is taken after fn returns, behind
// a forced GC, so it reports retained memory (the engine's pools and
// hints) rather than collectible garbage.
func profiled(cpuProfile, memProfile string, fn func() error) error {
	if cpuProfile != "" {
		f, err := os.Create(cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("starting CPU profile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if err := fn(); err != nil {
		return err
	}
	if memProfile != "" {
		f, err := os.Create(memProfile)
		if err != nil {
			return err
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("writing heap profile: %w", err)
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// run executes the selected experiments; outs maps an experiment id to
// a file its JSON report is additionally written to, and tr (when
// non-nil) traces every cluster the experiments create.
func run(exp string, full bool, seed int64, backend string, jsonOut bool, outs map[string]string, tr *obs.Tracer) error {
	cfg := bench.Config{Full: full, Seed: seed, Tracer: tr, Backend: backend}
	type runner func(bench.Config) (*bench.Report, error)
	registry := map[string]runner{
		"table2":   func(bench.Config) (*bench.Report, error) { return bench.Table2(), nil },
		"table3":   bench.Table3,
		"table4":   bench.Table4,
		"table5":   func(c bench.Config) (*bench.Report, error) { return bench.Table5(c), nil },
		"table6":   bench.Table6,
		"table7":   bench.Table7,
		"table8":   bench.Table8,
		"fig1a":    bench.Fig1a,
		"fig1b":    bench.Fig1b,
		"fig1c":    bench.Fig1c,
		"fig7a":    bench.Fig7a,
		"fig7b":    bench.Fig7b,
		"fig7c":    bench.Fig7c,
		"fig8":     bench.Fig8,
		"ablation": bench.Ablation,
		"combiner": bench.CombinerAblation,
		"nell":     bench.TableNELL,
		"mr":       bench.MRBench,
		"faults":   bench.Faults,
		"shuffle":  bench.ShuffleBench,
		"storage":  bench.Storage,
		"serve":    bench.ServeBench,
	}
	order := []string{
		"table2", "table3", "table4", "table5",
		"fig1a", "fig1b", "fig1c", "fig7a", "fig7b", "fig7c", "fig8",
		"table6", "table7", "table8", "nell", "ablation", "combiner",
		"mr", "faults", "shuffle", "storage", "serve",
	}
	var ids []string
	if exp == "all" {
		ids = order
	} else {
		for _, id := range strings.Split(exp, ",") {
			id = strings.TrimSpace(id)
			if _, ok := registry[id]; !ok {
				return fmt.Errorf("unknown experiment %q (known: %s)", id, strings.Join(order, " "))
			}
			ids = append(ids, id)
		}
	}
	for _, id := range ids {
		start := time.Now()
		rep, err := registry[id](cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		if jsonOut {
			b, err := rep.JSON()
			if err != nil {
				return err
			}
			fmt.Println(string(b))
		} else {
			rep.Print(os.Stdout)
			fmt.Printf("(%s regenerated in %.1fs wall time)\n\n", id, time.Since(start).Seconds())
		}
		if out := outs[id]; out != "" {
			b, err := rep.JSON()
			if err != nil {
				return err
			}
			if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
				return fmt.Errorf("writing %s: %w", out, err)
			}
		}
	}
	return nil
}
