package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/haten2/haten2/internal/gen"
	"github.com/haten2/haten2/internal/tensor"
)

// writeKBFile emits a KB tensor with vocab comments, as tensorgen does.
func writeKBFile(t *testing.T) string {
	t.Helper()
	kb := gen.NewKB(gen.KBConfig{
		Seed: 3, Theme: "music", ConceptNames: []string{"alpha", "beta"},
		EntitiesPerConcept: 8, TriplesPerConcept: 120, NoiseTriples: 20,
	})
	path := filepath.Join(t.TempDir(), "kb.coo")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i, s := range kb.Subjects {
		fmt.Fprintf(f, "# subject %d %s\n", i, s)
	}
	for i, s := range kb.Objects {
		fmt.Fprintf(f, "# object %d %s\n", i, s)
	}
	for i, s := range kb.Predicates {
		fmt.Fprintf(f, "# predicate %d %s\n", i, s)
	}
	if err := tensor.WriteCOO(f, kb.Tensor()); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestConceptMinerParafac(t *testing.T) {
	path := writeKBFile(t)
	var out strings.Builder
	if err := run(&out, path, "parafac", 2, 3, 8, 25, 1); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	// Both planted concepts must surface in the printed labels.
	for _, want := range []string{"concept 1:", "concept 2:", "music/"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
	// Each concept's top subjects should be from one planted block.
	for _, block := range []string{"alpha", "beta"} {
		if !strings.Contains(s, "music/"+block) {
			t.Fatalf("planted block %q not discovered:\n%s", block, s)
		}
	}
}

func TestConceptMinerTucker(t *testing.T) {
	path := writeKBFile(t)
	var out strings.Builder
	if err := run(&out, path, "tucker", 2, 2, 8, 15, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Tucker 2³") {
		t.Fatalf("output: %s", out.String())
	}
}

func TestConceptMinerErrors(t *testing.T) {
	path := writeKBFile(t)
	if err := run(io.Discard, "", "parafac", 2, 3, 2, 2, 1); err == nil {
		t.Fatal("missing -in accepted")
	}
	if err := run(io.Discard, path, "bogus", 2, 3, 2, 2, 1); err == nil {
		t.Fatal("bogus method accepted")
	}
	if err := run(io.Discard, "/does/not/exist", "parafac", 2, 3, 2, 2, 1); err == nil {
		t.Fatal("missing file accepted")
	}
	// 4-way input rejected.
	fourway := filepath.Join(t.TempDir(), "x4.coo")
	f, _ := os.Create(fourway)
	fmt.Fprintln(f, "0 0 0 0 1")
	f.Close()
	if err := run(io.Discard, fourway, "parafac", 2, 3, 2, 2, 1); err == nil {
		t.Fatal("4-way input accepted")
	}
}
