// Command conceptminer runs the paper's §IV-C concept-discovery pipeline
// end to end on a knowledge-base tensor file: decompose with
// HaTen2-PARAFAC (or Tucker), normalize, and print the top entities of
// every discovered concept. Entity labels are read from the "# subject/
// object/predicate <id> <label>" comments that `tensorgen -kind
// freebase|nell` emits alongside the tensor (parsed by
// gen.ReadLabeledCOO); the ranking itself goes through the same
// serve.TopEntities kernel the serving layer uses, so the CLI and the
// server can never disagree about what the top entities of a concept
// are.
//
// Usage:
//
//	tensorgen -kind freebase > music.coo
//	conceptminer -in music.coo -rank 6 -topk 3
//	conceptminer -in music.coo -method tucker -rank 6
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	haten2 "github.com/haten2/haten2"
	"github.com/haten2/haten2/internal/gen"
	"github.com/haten2/haten2/internal/serve"
)

func main() {
	var (
		in       = flag.String("in", "", "input tensor file with vocab comments; required")
		method   = flag.String("method", "parafac", "decomposition: parafac or tucker")
		rank     = flag.Int("rank", 6, "number of concepts (rank / core dimension)")
		topk     = flag.Int("topk", 3, "entities to print per concept")
		machines = flag.Int("machines", 40, "simulated cluster size")
		iters    = flag.Int("iters", 40, "maximum ALS iterations")
		seed     = flag.Int64("seed", 0, "factor initialization seed")
	)
	flag.Parse()
	if err := run(os.Stdout, *in, *method, *rank, *topk, *machines, *iters, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "conceptminer:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, in, method string, rank, topk, machines, iters int, seed int64) error {
	if in == "" {
		return fmt.Errorf("-in is required")
	}
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	raw, v, err := gen.ReadLabeledCOO(f)
	if err != nil {
		return err
	}
	if raw.Order() != 3 {
		return fmt.Errorf("concept mining needs a 3-way (subject, object, predicate) tensor, got order %d", raw.Order())
	}
	x := haten2.WrapTensor(raw)
	i, j, k := x.Dims()
	fmt.Fprintf(w, "knowledge base: %d subjects × %d objects × %d predicates, %d facts\n\n", i, j, k, x.NNZ())

	cluster := haten2.NewCluster(haten2.ClusterConfig{Machines: machines})
	opt := haten2.Options{Variant: haten2.DRI, MaxIters: iters, Seed: seed, TrackFit: true, Tol: 1e-7}

	var factors [3]*haten2.Matrix
	switch method {
	case "parafac":
		res, err := haten2.Parafac(cluster, x, rank, opt)
		if err != nil {
			return err
		}
		factors = res.Factors
		fmt.Fprintf(w, "PARAFAC rank %d: fit %.3f after %d iterations\n", rank, res.Fit(x), res.Iters)
	case "tucker":
		res, err := haten2.Tucker(cluster, x, [3]int{rank, rank, rank}, opt)
		if err != nil {
			return err
		}
		factors = res.Factors
		fmt.Fprintf(w, "Tucker %d³: fit %.3f after %d iterations\n", rank, res.Fit(x), res.Iters)
	default:
		return fmt.Errorf("unknown method %q (want parafac or tucker)", method)
	}

	modeNames := []string{"subjects", "objects", "predicates"}
	for r := 0; r < rank; r++ {
		fmt.Fprintf(w, "\nconcept %d:\n", r+1)
		for m := 0; m < 3; m++ {
			fm := factors[m]
			labels := serve.TopEntities(v.Labels(m, fm.Rows()), fm.Col(r), fm.RowTotals(), topk)
			fmt.Fprintf(w, "  %-10s %s\n", modeNames[m]+":", strings.Join(labels, ", "))
		}
	}
	return nil
}
