package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	haten2 "github.com/haten2/haten2"
	"github.com/haten2/haten2/internal/gen"
	"github.com/haten2/haten2/internal/tensor"
)

// writeTensorFile stages a generated tensor into a temp file.
func writeTensorFile(t *testing.T, x *tensor.Tensor) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "x.coo")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tensor.WriteCOO(f, x); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func baseConfig(in string) cliConfig {
	return cliConfig{
		in: in, method: "parafac", rank: 2, coreStr: "2x2x2",
		variantStr: "DRI", machines: 4, iters: 3, tol: 1e-4, quiet: true,
	}
}

func TestRunParafac3Way(t *testing.T) {
	in := writeTensorFile(t, gen.Random(1, [3]int64{10, 10, 10}, 40))
	cfg := baseConfig(in)
	cfg.factorsDir = filepath.Join(t.TempDir(), "facs")
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"A.tsv", "B.tsv", "C.tsv"} {
		if _, err := os.Stat(filepath.Join(cfg.factorsDir, name)); err != nil {
			t.Fatalf("factor %s missing: %v", name, err)
		}
	}
}

func TestRunTuckerWithModelSave(t *testing.T) {
	in := writeTensorFile(t, gen.Random(2, [3]int64{8, 8, 8}, 30))
	cfg := baseConfig(in)
	cfg.method = "tucker"
	cfg.modelPath = filepath.Join(t.TempDir(), "model.txt")
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	mf, err := os.Open(cfg.modelPath)
	if err != nil {
		t.Fatal(err)
	}
	defer mf.Close()
	if _, err := haten2.LoadTucker(mf); err != nil {
		t.Fatalf("saved model does not load: %v", err)
	}
}

func TestRunNonnegative(t *testing.T) {
	in := writeTensorFile(t, gen.Random(3, [3]int64{8, 8, 8}, 30))
	cfg := baseConfig(in)
	cfg.method = "nonnegative"
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRun4Way(t *testing.T) {
	logs := gen.NewIntrusion4D(gen.IntrusionConfig{Seed: 4, Background: 100}, 12)
	in := writeTensorFile(t, logs.Tensor)
	cfg := baseConfig(in)
	cfg.factorsDir = filepath.Join(t.TempDir(), "facs")
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(cfg.factorsDir, "D.tsv")); err != nil {
		t.Fatal("4-way run should write a D factor")
	}
	// 4-way Tucker too.
	cfg2 := baseConfig(in)
	cfg2.method = "tucker"
	cfg2.coreStr = "2x2x2x2"
	if err := run(cfg2); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	in := writeTensorFile(t, gen.Random(5, [3]int64{6, 6, 6}, 10))
	cases := []cliConfig{
		{}, // missing -in
		func() cliConfig { c := baseConfig(in); c.method = "bogus"; return c }(),
		func() cliConfig { c := baseConfig(in); c.variantStr = "bogus"; return c }(),
		func() cliConfig { c := baseConfig(in); c.method = "tucker"; c.coreStr = "axb"; return c }(),
		func() cliConfig { c := baseConfig(in); c.in = "/does/not/exist"; return c }(),
	}
	for i, cfg := range cases {
		if err := run(cfg); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
	// 4-way with -model must be rejected.
	logs := gen.NewIntrusion4D(gen.IntrusionConfig{Seed: 4, Background: 50}, 8)
	in4 := writeTensorFile(t, logs.Tensor)
	cfg := baseConfig(in4)
	cfg.modelPath = filepath.Join(t.TempDir(), "m.txt")
	if err := run(cfg); err == nil || !strings.Contains(err.Error(), "3-way") {
		t.Fatalf("4-way model save should be rejected, got %v", err)
	}
}

func TestParseCore(t *testing.T) {
	if c, err := parseCore("3x4x5", 3); err != nil || c[2] != 5 {
		t.Fatalf("parseCore: %v %v", c, err)
	}
	for _, bad := range []string{"3x4", "ax4x5", "0x4x5", "3x4x5x6"} {
		if _, err := parseCore(bad, 3); err == nil {
			t.Fatalf("parseCore accepted %q", bad)
		}
	}
}
