// Command haten2 decomposes a sparse tensor from a coordinate-format
// file using the HaTen2 distributed algorithms on the embedded cluster
// simulator.
//
// Usage:
//
//	haten2 -method parafac -rank 10 -variant DRI -in tensor.coo
//	haten2 -method tucker -core 5x5x5 -variant DRI -in tensor.coo -factors out/
//	haten2 -method parafac -rank 5 -in fourway.coo          # 4-way input works too
//	haten2 -method parafac -rank 10 -in tensor.coo -model m.txt
//	haten2 -method parafac -rank 10 -in tensor.coo -trace run.trace.json -tracesummary
//	haten2 -method parafac -rank 10 -in tensor.coo -backend proc   # multi-process data plane
//
// -backend selects the execution backend: inproc (default) keeps the
// whole run in this process; proc spawns worker processes that serve
// shuffle partitions and staged files over local sockets (DESIGN.md
// §3i). Factor outputs are bit-identical across backends.
//
// -trace writes a Chrome trace_event JSON file of the run in simulated
// time (load it in chrome://tracing or Perfetto); -tracesummary prints
// a per-job-plan summary table. Traces are byte-identical across runs
// and GOMAXPROCS settings (DESIGN.md §3e).
//
// The input format is one entry per line, "i j k [l] value" (0-based),
// with an optional "# tensor I J K [L]" header; order-3 and order-4
// tensors are supported (4-way runs always use the DRI plan). Factor
// matrices are written as TSV when -factors is given; 3-way models can
// be saved with -model and reloaded with haten2.LoadParafac/LoadTucker.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	haten2 "github.com/haten2/haten2"
	"github.com/haten2/haten2/internal/mr"
	"github.com/haten2/haten2/internal/mrproc"
	"github.com/haten2/haten2/internal/obs"
	"github.com/haten2/haten2/internal/tensor"
)

func main() {
	// A copy of this binary spawned by the proc backend is a worker;
	// divert it before flag parsing.
	mrproc.MaybeWorker()
	var (
		in       = flag.String("in", "", "input tensor file (coordinate format); required")
		method   = flag.String("method", "parafac", "decomposition: parafac, tucker, nonnegative")
		rank     = flag.Int("rank", 10, "rank R for parafac/nonnegative")
		coreStr  = flag.String("core", "10x10x10", "core shape PxQxR (or PxQxRxS for 4-way) for tucker")
		variant  = flag.String("variant", "DRI", "job plan: Naive, DNN, DRN, DRI (3-way only; 4-way always uses DRI)")
		machines = flag.Int("machines", 40, "simulated cluster size")
		iters    = flag.Int("iters", 20, "maximum ALS iterations")
		tol      = flag.Float64("tol", 1e-4, "convergence tolerance")
		seed     = flag.Int64("seed", 0, "factor initialization seed")
		factors  = flag.String("factors", "", "directory to write factor matrices (TSV)")
		model    = flag.String("model", "", "file to save the model to (3-way only)")
		trace    = flag.String("trace", "", "write a Chrome trace_event JSON file of the run (simulated time) to this path")
		traceSum = flag.Bool("tracesummary", false, "print the per-job plan summary table after the run")
		backend  = flag.String("backend", "inproc", "execution backend: inproc (the in-process engine) or proc (multi-process socket workers)")
		quiet    = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()
	cfg := cliConfig{
		in: *in, method: *method, rank: *rank, coreStr: *coreStr,
		variantStr: *variant, machines: *machines, iters: *iters,
		tol: *tol, seed: *seed, factorsDir: *factors, modelPath: *model,
		tracePath: *trace, traceSummary: *traceSum, quiet: *quiet,
		backend: *backend,
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "haten2:", err)
		os.Exit(1)
	}
}

type cliConfig struct {
	in, method, coreStr, variantStr, factorsDir, modelPath string
	tracePath, backend                                     string
	rank, machines, iters                                  int
	tol                                                    float64
	seed                                                   int64
	traceSummary, quiet                                    bool
}

// newBackend resolves -backend: nil for the in-process engine, a
// running mrproc master (spawned worker processes) for proc. The caller
// installs it on the cluster and closes it after the run.
func (cfg cliConfig) newBackend() (mr.Backend, error) {
	switch cfg.backend {
	case "", "inproc":
		return nil, nil
	case "proc":
		return mrproc.New(mrproc.Options{Workers: 2})
	default:
		return nil, fmt.Errorf("unknown backend %q (want inproc or proc)", cfg.backend)
	}
}

// installBackend wires the selected backend into the cluster and
// returns the teardown that drains its workers.
func installBackend(cfg cliConfig, cluster *haten2.Cluster) (func(), error) {
	b, err := cfg.newBackend()
	if err != nil || b == nil {
		return func() {}, err
	}
	cluster.Unwrap().SetBackend(b)
	if !cfg.quiet {
		fmt.Printf("backend: %s\n", b.Name())
	}
	return func() {
		if err := b.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "haten2: backend close:", err)
		}
	}, nil
}

// tracer returns a fresh tracer attached to the cluster when tracing
// was requested, else nil (the engine's nil check keeps the untraced
// path free).
func (cfg cliConfig) tracer(cluster *haten2.Cluster) *obs.Tracer {
	if cfg.tracePath == "" && !cfg.traceSummary {
		return nil
	}
	tr := obs.NewTracer()
	cluster.Unwrap().SetTracer(tr)
	return tr
}

// writeTrace exports what the run traced: a Chrome trace_event file
// for -trace, and the plan-summary table on stdout for -tracesummary.
func writeTrace(cfg cliConfig, tr *obs.Tracer) error {
	if tr == nil {
		return nil
	}
	if cfg.tracePath != "" {
		f, err := os.Create(cfg.tracePath)
		if err != nil {
			return err
		}
		if err := tr.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		if !cfg.quiet {
			fmt.Printf("trace written to %s\n", cfg.tracePath)
		}
	}
	if cfg.traceSummary {
		if err := tr.WriteSummary(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

func run(cfg cliConfig) error {
	if cfg.in == "" {
		return fmt.Errorf("-in is required")
	}
	f, err := os.Open(cfg.in)
	if err != nil {
		return err
	}
	defer f.Close()
	raw, err := tensor.ReadCOO(f)
	if err != nil {
		return err
	}
	switch raw.Order() {
	case 3:
		return run3(cfg, raw)
	case 4:
		return run4(cfg, raw)
	default:
		return fmt.Errorf("unsupported tensor order %d (want 3 or 4)", raw.Order())
	}
}

func run3(cfg cliConfig, raw *tensor.Tensor) error {
	x := haten2.WrapTensor(raw)
	variant, err := haten2.ParseVariant(cfg.variantStr)
	if err != nil {
		return err
	}
	cluster := haten2.NewCluster(haten2.ClusterConfig{Machines: cfg.machines})
	teardown, err := installBackend(cfg, cluster)
	if err != nil {
		return err
	}
	defer teardown()
	tr := cfg.tracer(cluster)
	opt := haten2.Options{
		Variant: variant, MaxIters: cfg.iters, Tol: cfg.tol, Seed: cfg.seed, TrackFit: true,
	}
	i, j, k := x.Dims()
	if !cfg.quiet {
		fmt.Printf("tensor %dx%dx%d, %d nonzeros; %s on %d machines (%s plan)\n",
			i, j, k, x.NNZ(), cfg.method, cfg.machines, variant)
	}

	var facs []*haten2.Matrix
	var save func(f *os.File) error
	switch cfg.method {
	case "parafac", "nonnegative":
		runFn := haten2.Parafac
		if cfg.method == "nonnegative" {
			runFn = haten2.NonnegativeParafac
		}
		res, err := runFn(cluster, x, cfg.rank, opt)
		if err != nil {
			return err
		}
		facs = res.Factors[:]
		save = func(f *os.File) error { return res.Save(f) }
		if !cfg.quiet {
			fmt.Printf("done: %d iterations, fit %.4f, λ = %s\n", res.Iters, res.Fit(x), fmtVec(res.Lambda))
		}
	case "tucker":
		core, err := parseCore(cfg.coreStr, 3)
		if err != nil {
			return err
		}
		res, err := haten2.Tucker(cluster, x, [3]int{core[0], core[1], core[2]}, opt)
		if err != nil {
			return err
		}
		facs = res.Factors[:]
		save = func(f *os.File) error { return res.Save(f) }
		if !cfg.quiet {
			fmt.Printf("done: %d iterations, fit %.4f, ‖G‖ %.4f\n", res.Iters, res.Fit(x), res.Core.Norm())
		}
	default:
		return fmt.Errorf("unknown method %q (want parafac, tucker, or nonnegative)", cfg.method)
	}

	if !cfg.quiet {
		st := cluster.Stats()
		fmt.Printf("cluster: %d jobs, %d shuffled records (max %d in one job), simulated time %.1fs\n",
			st.Jobs, st.ShuffleRecords, st.MaxShuffleRecords, st.SimSeconds)
	}
	if err := writeTrace(cfg, tr); err != nil {
		return err
	}
	if cfg.modelPath != "" {
		mf, err := os.Create(cfg.modelPath)
		if err != nil {
			return err
		}
		if err := save(mf); err != nil {
			mf.Close()
			return err
		}
		if err := mf.Close(); err != nil {
			return err
		}
		if !cfg.quiet {
			fmt.Printf("model saved to %s\n", cfg.modelPath)
		}
	}
	return writeFactors(cfg, facs)
}

func run4(cfg cliConfig, raw *tensor.Tensor) error {
	x, err := haten2.WrapTensorN(raw)
	if err != nil {
		return err
	}
	if cfg.modelPath != "" {
		return fmt.Errorf("-model is supported for 3-way tensors only")
	}
	cluster := haten2.NewCluster(haten2.ClusterConfig{Machines: cfg.machines})
	teardown, err := installBackend(cfg, cluster)
	if err != nil {
		return err
	}
	defer teardown()
	tr := cfg.tracer(cluster)
	opt := haten2.Options{MaxIters: cfg.iters, Tol: cfg.tol, Seed: cfg.seed, TrackFit: true}
	d := x.Dims()
	if !cfg.quiet {
		fmt.Printf("tensor %dx%dx%dx%d, %d nonzeros; 4-way %s on %d machines (DRI plan)\n",
			d[0], d[1], d[2], d[3], x.NNZ(), cfg.method, cfg.machines)
	}
	var facs []*haten2.Matrix
	switch cfg.method {
	case "parafac":
		res, err := haten2.ParafacN(cluster, x, cfg.rank, opt)
		if err != nil {
			return err
		}
		facs = res.Factors
		if !cfg.quiet {
			fmt.Printf("done: %d iterations, fit %.4f, λ = %s\n", res.Iters, res.Fit(x), fmtVec(res.Lambda))
		}
	case "tucker":
		core, err := parseCore(cfg.coreStr, 4)
		if err != nil {
			return err
		}
		res, err := haten2.TuckerN(cluster, x, core, opt)
		if err != nil {
			return err
		}
		facs = res.Factors
		if !cfg.quiet {
			fmt.Printf("done: %d iterations, fit %.4f\n", res.Iters, res.Fit(x))
		}
	default:
		return fmt.Errorf("4-way supports methods parafac and tucker, got %q", cfg.method)
	}
	if !cfg.quiet {
		st := cluster.Stats()
		fmt.Printf("cluster: %d jobs, %d shuffled records, simulated time %.1fs\n",
			st.Jobs, st.ShuffleRecords, st.SimSeconds)
	}
	if err := writeTrace(cfg, tr); err != nil {
		return err
	}
	return writeFactors(cfg, facs)
}

func writeFactors(cfg cliConfig, facs []*haten2.Matrix) error {
	if cfg.factorsDir == "" {
		return nil
	}
	if err := os.MkdirAll(cfg.factorsDir, 0o755); err != nil {
		return err
	}
	names := []string{"A.tsv", "B.tsv", "C.tsv", "D.tsv"}
	for m, fac := range facs {
		if err := writeFactor(filepath.Join(cfg.factorsDir, names[m]), fac); err != nil {
			return err
		}
	}
	if !cfg.quiet {
		fmt.Printf("factors written to %s\n", cfg.factorsDir)
	}
	return nil
}

func parseCore(s string, want int) ([]int, error) {
	parts := strings.Split(strings.ToLower(s), "x")
	if len(parts) != want {
		return nil, fmt.Errorf("core shape must have %d dimensions, got %q", want, s)
	}
	out := make([]int, want)
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad core dimension %q", p)
		}
		out[i] = v
	}
	return out, nil
}

func fmtVec(v []float64) string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprintf("%.3g", x)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

func writeFactor(path string, m *haten2.Matrix) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			if j > 0 {
				if _, err := fmt.Fprint(f, "\t"); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(f, "%g", m.At(i, j)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(f); err != nil {
			return err
		}
	}
	return nil
}
