// Command haten2worker is a standalone mrproc worker process: it dials
// a proc-backend master, registers, and serves shuffle partitions and
// mirrored DFS files from memory until the master drains it.
//
// The proc backend normally spawns workers by re-execing whatever
// binary the master runs in (see mrproc.MaybeWorker); this command
// exists for running workers explicitly — a prebuilt worker binary via
// mrproc.Options.Command, or by hand against a known master address:
//
//	haten2worker -master 127.0.0.1:43521 -id 0
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/haten2/haten2/internal/mrproc"
)

func main() {
	mrproc.MaybeWorker() // spawn-environment path; never returns when set
	master := flag.String("master", "", "master registration address (host:port)")
	id := flag.Int("id", 0, "worker id to register as")
	flag.Parse()
	if *master == "" {
		fmt.Fprintln(os.Stderr, "haten2worker: -master is required (or spawn via the proc backend's environment hook)")
		os.Exit(2)
	}
	if err := mrproc.RunWorker(*master, *id); err != nil {
		fmt.Fprintf(os.Stderr, "haten2worker: %v\n", err)
		os.Exit(1)
	}
}
