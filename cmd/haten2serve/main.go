// Command haten2serve serves top-k queries over decomposed factor
// matrices — the paper's applications (triple completion and concept
// discovery over a knowledge base, §IV-C) as an interactive service
// backed by the sharded/batched/cached engine of internal/serve
// (DESIGN.md §3h).
//
// The model comes either from a persisted decomposition (-model, a
// file written by ParafacResult.Save or TuckerResult.Save; the format
// is sniffed) or by decomposing a labeled COO tensor in-process
// (-in, as emitted by tensorgen). With -in, entity labels from the
// file's vocabulary comments decorate the output.
//
// Queries are read as commands, one per line, from stdin:
//
//	objects <subject> <predicate> [k]   rank objects completing the triple
//	members <component> [k]             top entities of one concept
//	membership <entity> [k]             top concepts of one entity
//	stats                               traffic counters
//	quit
//
// Usage:
//
//	tensorgen -kind freebase > music.coo
//	haten2serve -in music.coo -rank 6
//	haten2serve -model factors.h2 -shards 8 -cache 4096
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	haten2 "github.com/haten2/haten2"
	"github.com/haten2/haten2/internal/gen"
	"github.com/haten2/haten2/internal/matrix"
	"github.com/haten2/haten2/internal/serve"
)

type options struct {
	model    string
	in       string
	method   string
	rank     int
	iters    int
	seed     int64
	machines int

	shards int
	cache  int
	batch  int
	topk   int
}

func main() {
	var o options
	flag.StringVar(&o.model, "model", "", "persisted model file (ParafacResult.Save / TuckerResult.Save)")
	flag.StringVar(&o.in, "in", "", "labeled COO tensor to decompose and serve")
	flag.StringVar(&o.method, "method", "parafac", "decomposition for -in: parafac or tucker")
	flag.IntVar(&o.rank, "rank", 6, "rank / core dimension for -in")
	flag.IntVar(&o.iters, "iters", 40, "maximum ALS iterations for -in")
	flag.Int64Var(&o.seed, "seed", 0, "factor initialization seed for -in")
	flag.IntVar(&o.machines, "machines", 40, "simulated cluster size for -in")
	flag.IntVar(&o.shards, "shards", 4, "row shards of the object factor")
	flag.IntVar(&o.cache, "cache", 1024, "per-stripe LRU capacity (0 disables)")
	flag.IntVar(&o.batch, "batch", 32, "max queries per dispatch batch")
	flag.IntVar(&o.topk, "topk", 5, "default k when a command omits it")
	flag.Parse()
	if err := run(os.Stdout, os.Stdin, o); err != nil {
		fmt.Fprintln(os.Stderr, "haten2serve:", err)
		os.Exit(1)
	}
}

// loadModel builds the serving model from whichever source was given.
// It returns the model plus per-mode labels (nil without -in).
func loadModel(o options) (*serve.Model, *gen.Vocab, error) {
	switch {
	case o.model != "" && o.in != "":
		return nil, nil, fmt.Errorf("-model and -in are mutually exclusive")
	case o.model != "":
		m, err := loadPersisted(o.model)
		return m, nil, err
	case o.in != "":
		return decompose(o)
	default:
		return nil, nil, fmt.Errorf("one of -model or -in is required")
	}
}

// loadPersisted sniffs the persistence magic and loads either model
// kind into serving layout.
func loadPersisted(path string) (*serve.Model, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	first := strings.TrimSpace(strings.SplitN(string(data), "\n", 2)[0])
	switch {
	case strings.HasPrefix(first, "haten2-parafac"):
		res, err := haten2.LoadParafac(strings.NewReader(string(data)))
		if err != nil {
			return nil, err
		}
		return serve.NewParafacModel(res.Lambda, unwrap3(res.Factors))
	case strings.HasPrefix(first, "haten2-tucker"):
		res, err := haten2.LoadTucker(strings.NewReader(string(data)))
		if err != nil {
			return nil, err
		}
		return serve.NewTuckerModel(res.Core.Unwrap(), unwrap3(res.Factors))
	default:
		return nil, fmt.Errorf("%s: unrecognized model header %q", path, first)
	}
}

func unwrap3(f [3]*haten2.Matrix) [3]*matrix.Matrix {
	return [3]*matrix.Matrix{f[0].Unwrap(), f[1].Unwrap(), f[2].Unwrap()}
}

// decompose runs the full pipeline on a labeled tensor file.
func decompose(o options) (*serve.Model, *gen.Vocab, error) {
	f, err := os.Open(o.in)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	raw, v, err := gen.ReadLabeledCOO(f)
	if err != nil {
		return nil, nil, err
	}
	if raw.Order() != 3 {
		return nil, nil, fmt.Errorf("serving needs a 3-way (subject, object, predicate) tensor, got order %d", raw.Order())
	}
	x := haten2.WrapTensor(raw)
	cluster := haten2.NewCluster(haten2.ClusterConfig{Machines: o.machines})
	opt := haten2.Options{Variant: haten2.DRI, MaxIters: o.iters, Seed: o.seed, TrackFit: true, Tol: 1e-7}
	switch o.method {
	case "parafac":
		res, err := haten2.Parafac(cluster, x, o.rank, opt)
		if err != nil {
			return nil, nil, err
		}
		m, err := serve.NewParafacModel(res.Lambda, unwrap3(res.Factors))
		return m, v, err
	case "tucker":
		res, err := haten2.Tucker(cluster, x, [3]int{o.rank, o.rank, o.rank}, opt)
		if err != nil {
			return nil, nil, err
		}
		m, err := serve.NewTuckerModel(res.Core.Unwrap(), unwrap3(res.Factors))
		return m, v, err
	default:
		return nil, nil, fmt.Errorf("unknown method %q (want parafac or tucker)", o.method)
	}
}

func run(w io.Writer, r io.Reader, o options) error {
	model, vocab, err := loadModel(o)
	if err != nil {
		return err
	}
	srv, err := serve.New(model, serve.Config{
		Shards:    o.shards,
		CacheSize: o.cache,
		NoCache:   o.cache == 0,
		MaxBatch:  o.batch,
	})
	if err != nil {
		return err
	}
	defer srv.Close()

	st := srv.Stats()
	fmt.Fprintf(w, "serving %d subjects × %d objects × %d predicates, %d components; %d shards, cache %d/stripe, batch ≤ %d\n",
		model.Factor(0).Rows, model.Objects(), model.Factor(2).Rows, model.Components(),
		st.Shards, st.CacheSize, st.MaxBatch)

	label := func(mode int, id int64) string {
		if vocab == nil {
			return fmt.Sprintf("#%d", id)
		}
		return vocab.Label(mode, id)
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<22)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		cmd := fields[0]
		args := fields[1:]
		switch cmd {
		case "quit", "exit":
			return nil
		case "help":
			fmt.Fprintln(w, "commands: objects <subject> <predicate> [k] · members <component> [k] · membership <entity> [k] · stats · quit")
		case "stats":
			s := srv.Stats()
			fmt.Fprintf(w, "queries %d · hits %d (%.1f%%) · misses %d · coalesced %d · batches %d (mean occupancy %.2f)\n",
				s.Queries, s.CacheHits, 100*s.HitRate(), s.CacheMisses, s.Coalesced, s.Batches, s.BatchOccupancy())
		case "objects":
			ids, k, err := parseArgs(args, 2, o.topk)
			if err != nil {
				fmt.Fprintln(w, "error:", err)
				continue
			}
			res, err := srv.TopKObjects(ids[0], ids[1], k, nil)
			if err != nil {
				fmt.Fprintln(w, "error:", err)
				continue
			}
			fmt.Fprintf(w, "(%s, %s) →\n", label(0, ids[0]), label(2, ids[1]))
			for i, m := range res {
				fmt.Fprintf(w, "  %2d. %-30s %.6g\n", i+1, label(1, m.Index), m.Score)
			}
		case "members":
			ids, k, err := parseArgs(args, 1, o.topk)
			if err != nil {
				fmt.Fprintln(w, "error:", err)
				continue
			}
			res, err := srv.ConceptMembers(int(ids[0]), k, nil)
			if err != nil {
				fmt.Fprintln(w, "error:", err)
				continue
			}
			fmt.Fprintf(w, "concept %d →\n", ids[0])
			for i, m := range res {
				fmt.Fprintf(w, "  %2d. %-30s %.6g\n", i+1, label(1, m.Index), m.Score)
			}
		case "membership":
			ids, k, err := parseArgs(args, 1, o.topk)
			if err != nil {
				fmt.Fprintln(w, "error:", err)
				continue
			}
			res, err := srv.Membership(ids[0], k, nil)
			if err != nil {
				fmt.Fprintln(w, "error:", err)
				continue
			}
			fmt.Fprintf(w, "%s →\n", label(1, ids[0]))
			for i, m := range res {
				fmt.Fprintf(w, "  %2d. concept %-3d %.6g\n", i+1, m.Index, m.Score)
			}
		default:
			fmt.Fprintf(w, "unknown command %q (try help)\n", cmd)
		}
	}
	return sc.Err()
}

// parseArgs parses n required int64 ids plus an optional trailing k.
func parseArgs(args []string, n, defaultK int) ([]int64, int, error) {
	if len(args) < n || len(args) > n+1 {
		return nil, 0, fmt.Errorf("want %d ids and an optional k, got %d args", n, len(args))
	}
	ids := make([]int64, n)
	for i := 0; i < n; i++ {
		v, err := strconv.ParseInt(args[i], 10, 64)
		if err != nil {
			return nil, 0, fmt.Errorf("bad id %q", args[i])
		}
		ids[i] = v
	}
	k := defaultK
	if len(args) == n+1 {
		v, err := strconv.Atoi(args[n])
		if err != nil || v < 0 {
			return nil, 0, fmt.Errorf("bad k %q", args[n])
		}
		k = v
	}
	return ids, k, nil
}
