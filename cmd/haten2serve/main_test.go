package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	haten2 "github.com/haten2/haten2"
	"github.com/haten2/haten2/internal/gen"
	"github.com/haten2/haten2/internal/tensor"
)

func writeKBFile(t *testing.T) string {
	t.Helper()
	kb := gen.NewKB(gen.KBConfig{
		Seed: 3, Theme: "music", ConceptNames: []string{"alpha", "beta"},
		EntitiesPerConcept: 8, TriplesPerConcept: 120, NoiseTriples: 20,
	})
	path := filepath.Join(t.TempDir(), "kb.coo")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i, s := range kb.Subjects {
		fmt.Fprintf(f, "# subject %d %s\n", i, s)
	}
	for i, s := range kb.Objects {
		fmt.Fprintf(f, "# object %d %s\n", i, s)
	}
	for i, s := range kb.Predicates {
		fmt.Fprintf(f, "# predicate %d %s\n", i, s)
	}
	if err := tensor.WriteCOO(f, kb.Tensor()); err != nil {
		t.Fatal(err)
	}
	return path
}

func defaults() options {
	return options{
		method: "parafac", rank: 2, iters: 20, machines: 8,
		shards: 4, cache: 64, batch: 8, topk: 3,
	}
}

func TestServeFromTensorFile(t *testing.T) {
	o := defaults()
	o.in = writeKBFile(t)
	script := strings.Join([]string{
		"objects 0 0 3",
		"members 0",
		"members 1 4",
		"membership 2",
		"stats",
		"", // blank lines are skipped
		"help",
		"bogus-command",
		"objects 0", // wrong arity
		"objects x y",
		"quit",
	}, "\n")
	var out strings.Builder
	if err := run(&out, strings.NewReader(script), o); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"serving", "shards", "music/", "concept 0 →", "concept 1 →",
		"queries", "occupancy", "commands:", "unknown command",
		"error:", "→",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}

// TestServeFromPersistedModels covers both persisted formats through
// the magic-sniffing loader.
func TestServeFromPersistedModels(t *testing.T) {
	path := writeKBFile(t)
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	raw, _, err := gen.ReadLabeledCOO(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	x := haten2.WrapTensor(raw)
	cluster := haten2.NewCluster(haten2.ClusterConfig{Machines: 4})
	opt := haten2.Options{Variant: haten2.DRI, MaxIters: 10, Seed: 1}

	pres, err := haten2.Parafac(cluster, x, 2, opt)
	if err != nil {
		t.Fatal(err)
	}
	ppath := filepath.Join(t.TempDir(), "model.parafac")
	pf, _ := os.Create(ppath)
	if err := pres.Save(pf); err != nil {
		t.Fatal(err)
	}
	pf.Close()

	tres, err := haten2.Tucker(cluster, x, [3]int{2, 2, 2}, opt)
	if err != nil {
		t.Fatal(err)
	}
	tpath := filepath.Join(t.TempDir(), "model.tucker")
	tf, _ := os.Create(tpath)
	if err := tres.Save(tf); err != nil {
		t.Fatal(err)
	}
	tf.Close()

	for _, mpath := range []string{ppath, tpath} {
		o := defaults()
		o.model = mpath
		var out strings.Builder
		if err := run(&out, strings.NewReader("objects 0 0 2\nstats\nquit\n"), o); err != nil {
			t.Fatalf("%s: %v", mpath, err)
		}
		// No vocabulary with -model: ids print as #id.
		if !strings.Contains(out.String(), "#") {
			t.Fatalf("%s: expected #id labels:\n%s", mpath, out.String())
		}
	}
}

func TestServeErrors(t *testing.T) {
	o := defaults()
	if err := run(io.Discard, strings.NewReader(""), o); err == nil {
		t.Fatal("no input source accepted")
	}
	o.model = "/does/not/exist"
	if err := run(io.Discard, strings.NewReader(""), o); err == nil {
		t.Fatal("missing model file accepted")
	}
	o.in = "also-set"
	if err := run(io.Discard, strings.NewReader(""), o); err == nil {
		t.Fatal("-model with -in accepted")
	}

	bad := filepath.Join(t.TempDir(), "bad.model")
	os.WriteFile(bad, []byte("not-a-model\n"), 0o644)
	o = defaults()
	o.model = bad
	if err := run(io.Discard, strings.NewReader(""), o); err == nil {
		t.Fatal("bad magic accepted")
	}

	o = defaults()
	o.in = writeKBFile(t)
	o.method = "bogus"
	if err := run(io.Discard, strings.NewReader(""), o); err == nil {
		t.Fatal("bogus method accepted")
	}
}
