package haten2_test

import (
	"fmt"

	haten2 "github.com/haten2/haten2"
)

// rank1Example builds the exactly rank-1 tensor x(i,j,k) = a(i)b(j)c(k)
// used by the examples.
func rank1Example() *haten2.Tensor {
	a := []float64{1, 2, 3}
	b := []float64{2, 1}
	c := []float64{1, 3}
	x := haten2.NewTensor(3, 2, 2)
	for i := int64(0); i < 3; i++ {
		for j := int64(0); j < 2; j++ {
			for k := int64(0); k < 2; k++ {
				x.Append(a[i]*b[j]*c[k], i, j, k)
			}
		}
	}
	x.Coalesce()
	return x
}

// ExampleParafac decomposes a rank-1 tensor and reports the fit.
func ExampleParafac() {
	x := rank1Example()
	cluster := haten2.NewCluster(haten2.ClusterConfig{Machines: 4})
	res, err := haten2.Parafac(cluster, x, 1, haten2.Options{
		Variant:  haten2.DRI,
		MaxIters: 20,
		Seed:     1,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("fit %.3f with %d component(s)\n", res.Fit(x), len(res.Lambda))
	// Output:
	// fit 1.000 with 1 component(s)
}

// ExampleTucker compresses the same tensor into a 1×1×1 core.
func ExampleTucker() {
	x := rank1Example()
	cluster := haten2.NewCluster(haten2.ClusterConfig{Machines: 4})
	res, err := haten2.Tucker(cluster, x, [3]int{1, 1, 1}, haten2.Options{
		Variant:  haten2.DRI,
		MaxIters: 10,
		Seed:     1,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	p, q, r := res.Core.Dims()
	fmt.Printf("core %dx%dx%d, fit %.3f\n", p, q, r, res.Fit(x))
	// Output:
	// core 1x1x1, fit 1.000
}

// ExampleCluster_Stats shows the cost accounting every decomposition
// leaves behind.
func ExampleCluster_Stats() {
	x := rank1Example()
	cluster := haten2.NewCluster(haten2.ClusterConfig{Machines: 4})
	if _, err := haten2.Parafac(cluster, x, 1, haten2.Options{Variant: haten2.DRI, MaxIters: 2, Seed: 1}); err != nil {
		fmt.Println("error:", err)
		return
	}
	st := cluster.Stats()
	// DRI runs exactly 2 jobs per mode update: 3 modes × 2 iterations.
	fmt.Printf("%d jobs\n", st.Jobs)
	// Output:
	// 12 jobs
}

// ExampleParseVariant converts plan names from configuration strings.
func ExampleParseVariant() {
	v, err := haten2.ParseVariant("DRI")
	fmt.Println(v, err)
	_, err = haten2.ParseVariant("unknown")
	fmt.Println(err != nil)
	// Output:
	// DRI <nil>
	// true
}

// ExampleVariant_String lists the four job plans of Table II.
func ExampleVariant_String() {
	for _, v := range []haten2.Variant{haten2.Naive, haten2.DNN, haten2.DRN, haten2.DRI} {
		fmt.Println(v)
	}
	// Output:
	// Naive
	// DNN
	// DRN
	// DRI
}
