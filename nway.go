package haten2

import (
	"fmt"

	"github.com/haten2/haten2/internal/core"
	"github.com/haten2/haten2/internal/tensor"
)

// TensorN is a sparse tensor of order 3 or 4 — the order of the paper's
// motivating example, (source-ip, target-ip, port-number, timestamp)
// intrusion logs. The paper defines its decompositions and operators
// for general N; the distributed plans here implement orders 3 and 4.
type TensorN struct {
	t *tensor.Tensor
}

// NewTensorN returns an empty sparse tensor with the given mode sizes
// (3 or 4 of them).
func NewTensorN(dims ...int64) (*TensorN, error) {
	if len(dims) < 3 || len(dims) > 4 {
		return nil, fmt.Errorf("haten2: TensorN supports orders 3 and 4, got %d dims", len(dims))
	}
	return &TensorN{t: tensor.New(dims...)}, nil
}

// Append adds a nonzero entry at the given coordinates (one per mode).
func (x *TensorN) Append(v float64, coords ...int64) { x.t.Append(v, coords...) }

// Coalesce sorts entries, sums duplicates, and drops zeros.
func (x *TensorN) Coalesce() { x.t.Coalesce() }

// NNZ returns the number of stored entries.
func (x *TensorN) NNZ() int { return x.t.NNZ() }

// Order returns the number of modes.
func (x *TensorN) Order() int { return x.t.Order() }

// Dims returns the mode sizes.
func (x *TensorN) Dims() []int64 { return x.t.Dims() }

// At returns the value at the given coordinates (coalesce first).
func (x *TensorN) At(coords ...int64) float64 { return x.t.At(coords...) }

// Norm returns the Frobenius norm.
func (x *TensorN) Norm() float64 { return x.t.Norm() }

// Unwrap exposes the internal representation to sibling packages.
func (x *TensorN) Unwrap() *tensor.Tensor { return x.t }

// WrapTensorN adopts an internal tensor of order 3 or 4.
func WrapTensorN(t *tensor.Tensor) (*TensorN, error) {
	if t.Order() < 3 || t.Order() > 4 {
		return nil, fmt.Errorf("haten2: TensorN supports orders 3 and 4, got %d", t.Order())
	}
	return &TensorN{t: t}, nil
}

// ParafacResultN is an N-way PARAFAC decomposition.
type ParafacResultN struct {
	// Lambda holds the component weights.
	Lambda []float64
	// Factors holds one unit-column factor matrix per mode.
	Factors []*Matrix
	// Iters is the number of ALS iterations run.
	Iters int
	// Fits holds per-iteration fits when tracked.
	Fits []float64
	// Converged reports early stopping.
	Converged bool

	model *tensor.Kruskal
}

// Fit returns 1 − ‖𝒳−𝒳̂‖_F/‖𝒳‖_F.
func (r *ParafacResultN) Fit(x *TensorN) float64 { return r.model.Fit(x.t) }

// Predict evaluates the model at one coordinate.
func (r *ParafacResultN) Predict(coords ...int64) float64 { return r.model.At(coords...) }

// ParafacN runs N-way distributed PARAFAC-ALS with the DRI plan.
// (Options.Variant is ignored: the N-way generalization implements the
// recommended plan only.)
func ParafacN(c *Cluster, x *TensorN, rank int, opt Options) (*ParafacResultN, error) {
	iopt := opt.internal()
	iopt.Variant = core.DRI
	res, err := core.ParafacALSN(c.c, x.t, rank, iopt)
	if err != nil {
		return nil, err
	}
	out := &ParafacResultN{
		Lambda:    res.Model.Lambda,
		Iters:     res.Iters,
		Fits:      res.Fits,
		Converged: res.Converged,
		model:     res.Model,
	}
	for _, f := range res.Model.Factors {
		out.Factors = append(out.Factors, &Matrix{m: f})
	}
	return out, nil
}

// TuckerResultN is an N-way Tucker decomposition.
type TuckerResultN struct {
	// CoreAt evaluates the dense core tensor at the given coordinates.
	// CoreDims gives its shape.
	CoreDims  []int64
	Factors   []*Matrix
	Iters     int
	CoreNorms []float64
	Converged bool

	model *tensor.TuckerModel
}

// CoreAt returns 𝒢 at the given core coordinates.
func (r *TuckerResultN) CoreAt(coords ...int64) float64 { return r.model.Core.At(coords...) }

// Fit returns 1 − ‖𝒳−𝒳̂‖_F/‖𝒳‖_F.
func (r *TuckerResultN) Fit(x *TensorN) float64 { return r.model.Fit(x.t) }

// Predict evaluates the model at one coordinate.
func (r *TuckerResultN) Predict(coords ...int64) float64 { return r.model.At(coords...) }

// TuckerN runs N-way distributed Tucker-ALS with the DRI plan; core
// gives the desired core shape, one entry per mode.
func TuckerN(c *Cluster, x *TensorN, core3 []int, opt Options) (*TuckerResultN, error) {
	iopt := opt.internal()
	iopt.Variant = core.DRI
	res, err := core.TuckerALSN(c.c, x.t, core3, iopt)
	if err != nil {
		return nil, err
	}
	out := &TuckerResultN{
		CoreDims:  res.Model.Core.Dims(),
		Iters:     res.Iters,
		CoreNorms: res.CoreNorms,
		Converged: res.Converged,
		model:     res.Model,
	}
	for _, f := range res.Model.Factors {
		out.Factors = append(out.Factors, &Matrix{m: f})
	}
	return out, nil
}
