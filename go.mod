module github.com/haten2/haten2

go 1.22
