package bench

import (
	"errors"
	"fmt"

	"github.com/haten2/haten2/internal/baseline"
	"github.com/haten2/haten2/internal/core"
	"github.com/haten2/haten2/internal/gen"
	"github.com/haten2/haten2/internal/matrix"
	"github.com/haten2/haten2/internal/mr"
	"github.com/haten2/haten2/internal/tensor"
)

// Experiment scale constants. The paper runs dims 10³–10⁸ on 40
// machines; the in-process sweeps are scaled so the largest real shuffle
// stays in the low millions of records, and the cluster's shuffle cap
// and the Toolbox's memory budget are scaled alongside so every failure
// boundary (o.o.m point) falls inside the sweep, preserving the figures'
// shapes.
const (
	shuffleCap     = 3_000_000  // records per job before "o.o.m" (quick sweeps)
	shuffleCapFull = 10_000_000 // the -full sweeps reach one decade further
	toolboxBudget  = 4 << 20    // bytes of single-machine RAM
	benchMachines  = 40         // the paper's cluster size
)

// oom is the cell the paper's figures use for failed runs.
const oom = "o.o.m"

// newBenchCluster builds the simulated 40-machine cluster. The shuffle
// cap scales with the sweep size so the failure boundaries stay inside
// the axes in both modes.
func newBenchCluster(machines int) *mr.Cluster {
	return newBenchClusterCfg(Config{}, machines)
}

func newBenchClusterCfg(cfg Config, machines int) *mr.Cluster {
	cap := int64(shuffleCap)
	if cfg.Full {
		cap = shuffleCapFull
	}
	c := mr.NewCluster(mr.Config{
		Machines:          machines,
		SlotsPerMachine:   4,
		MaxShuffleRecords: cap,
	})
	c.SetTracer(cfg.Tracer)
	return c
}

// runTucker runs one Tucker-ALS iteration with the given variant and
// returns the simulated seconds, or ok=false on resource exhaustion.
func runTucker(cfg Config, x *tensor.Tensor, coreDim int, v core.Variant, machines int) (sim float64, ok bool, err error) {
	c := newBenchClusterCfg(cfg, machines)
	_, err = core.TuckerALS(c, x, [3]int{coreDim, coreDim, coreDim},
		core.Options{Variant: v, MaxIters: 1, Seed: 7})
	var re *mr.ErrResourceExhausted
	if errors.As(err, &re) {
		return c.Totals().SimSeconds, false, nil
	}
	if err != nil {
		return 0, false, err
	}
	return c.Totals().SimSeconds, true, nil
}

// runParafac is runTucker's PARAFAC counterpart.
func runParafac(cfg Config, x *tensor.Tensor, rank int, v core.Variant, machines int) (sim float64, ok bool, err error) {
	c := newBenchClusterCfg(cfg, machines)
	_, err = core.ParafacALS(c, x, rank, core.Options{Variant: v, MaxIters: 1, Seed: 7})
	var re *mr.ErrResourceExhausted
	if errors.As(err, &re) {
		return c.Totals().SimSeconds, false, nil
	}
	if err != nil {
		return 0, false, err
	}
	return c.Totals().SimSeconds, true, nil
}

// runToolboxTucker runs the single-machine baseline, reporting modeled
// seconds or o.o.m.
func runToolboxTucker(x *tensor.Tensor, coreDim int) (sim float64, ok bool, err error) {
	tb := baseline.New(baseline.Config{MemoryBudget: toolboxBudget})
	res, err := tb.TuckerALS(x, [3]int{coreDim, coreDim, coreDim}, baseline.Options{MaxIters: 1, Seed: 7})
	var oomErr *baseline.ErrOutOfMemory
	if errors.As(err, &oomErr) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, err
	}
	return res.ModeledSeconds, true, nil
}

func runToolboxParafac(x *tensor.Tensor, rank int) (sim float64, ok bool, err error) {
	tb := baseline.New(baseline.Config{MemoryBudget: toolboxBudget})
	res, err := tb.ParafacALS(x, rank, baseline.Options{MaxIters: 1, Seed: 7})
	var oomErr *baseline.ErrOutOfMemory
	if errors.As(err, &oomErr) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, err
	}
	return res.ModeledSeconds, true, nil
}

// methodCell renders a (time, ok) pair.
func methodCell(sim float64, ok bool) string {
	if !ok {
		return oom
	}
	return seconds(sim)
}

// dimSweep returns the Fig 1(a)/7(a) x-axis.
func dimSweep(cfg Config) []int64 {
	if cfg.Full {
		return []int64{40, 200, 1000, 5000, 20000, 50000}
	}
	return []int64{40, 200, 1000, 5000, 20000}
}

// Fig1a regenerates Figure 1(a): Tucker running time vs. dimensionality
// I=J=K with nnz = 10·I and a 5³ core (the paper's 10³ core scaled with
// the sweep), comparing the Tensor Toolbox and all HaTen2 variants.
func Fig1a(cfg Config) (*Report, error) {
	return figDataScalability(cfg, "fig1a",
		"Tucker: time vs dimensionality (nnz = 10·I, core 5³)", true)
}

// Fig7a regenerates Figure 7(a), the PARAFAC counterpart (rank 5).
func Fig7a(cfg Config) (*Report, error) {
	return figDataScalability(cfg, "fig7a",
		"PARAFAC: time vs dimensionality (nnz = 10·I, rank 5)", false)
}

func figDataScalability(cfg Config, id, title string, tucker bool) (*Report, error) {
	const k = 5 // core dim / rank
	rep := &Report{
		ID:      id,
		Title:   title,
		Headers: []string{"I=J=K", "nnz", "Toolbox", "Naive", "DNN", "DRN", "DRI"},
	}
	type outcome struct {
		lastOK int64
	}
	last := map[string]*outcome{}
	for _, m := range rep.Headers[2:] {
		last[m] = &outcome{lastOK: -1}
	}
	for _, dim := range dimSweep(cfg) {
		x := gen.Random(cfg.Seed+dim, [3]int64{dim, dim, dim}, int(dim*10))
		row := []string{count(dim), count(x.NNZ())}
		var sim float64
		var ok bool
		var err error
		if tucker {
			sim, ok, err = runToolboxTucker(x, k)
		} else {
			sim, ok, err = runToolboxParafac(x, k)
		}
		if err != nil {
			return nil, err
		}
		row = append(row, methodCell(sim, ok))
		if ok {
			last["Toolbox"].lastOK = dim
		}
		for _, v := range core.Variants {
			if tucker {
				sim, ok, err = runTucker(cfg, x, k, v, benchMachines)
			} else {
				sim, ok, err = runParafac(cfg, x, k, v, benchMachines)
			}
			if err != nil {
				return nil, err
			}
			row = append(row, methodCell(sim, ok))
			if ok {
				last[v.String()].lastOK = dim
			}
		}
		rep.Rows = append(rep.Rows, row)
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("largest completed I: Toolbox=%d Naive=%d DNN=%d DRN=%d DRI=%d",
			last["Toolbox"].lastOK, last["Naive"].lastOK, last["DNN"].lastOK,
			last["DRN"].lastOK, last["DRI"].lastOK))
	if last["DRI"].lastOK >= last["DRN"].lastOK &&
		last["DRN"].lastOK > last["DNN"].lastOK &&
		last["DNN"].lastOK > last["Naive"].lastOK &&
		last["DRI"].lastOK > last["Toolbox"].lastOK {
		rep.Notes = append(rep.Notes, "failure ordering matches the paper: Naive < DNN < DRN ≤ DRI, Toolbox < DRI")
	}
	return rep, nil
}

// densitySweep returns the Fig 1(b)/7(b) x-axis.
func densitySweep(cfg Config) []float64 {
	if cfg.Full {
		return []float64{1e-5, 1e-4, 1e-3, 1e-2, 3e-2}
	}
	return []float64{1e-5, 1e-4, 1e-3, 1e-2}
}

// Fig1b regenerates Figure 1(b): Tucker running time vs. density at
// fixed dimensionality. Naive is omitted, as in the paper ("HATEN2-Naive
// cannot process even a 10⁴ scale tensor").
func Fig1b(cfg Config) (*Report, error) {
	return figDensity(cfg, "fig1b", "Tucker: time vs density (I=J=K=300, core 5³)", true)
}

// Fig7b regenerates Figure 7(b), the PARAFAC counterpart.
func Fig7b(cfg Config) (*Report, error) {
	return figDensity(cfg, "fig7b", "PARAFAC: time vs density (I=J=K=300, rank 5)", false)
}

func figDensity(cfg Config, id, title string, tucker bool) (*Report, error) {
	const dim = 300
	const k = 5
	rep := &Report{
		ID:      id,
		Title:   title,
		Headers: []string{"density", "nnz", "Toolbox", "DNN", "DRN", "DRI"},
	}
	lastDNN, lastDRI := -1.0, -1.0
	for _, d := range densitySweep(cfg) {
		x := gen.RandomWithDensity(cfg.Seed+int64(1/d), dim, d)
		row := []string{fmt.Sprintf("%.0e", d), count(x.NNZ())}
		var sim float64
		var ok bool
		var err error
		if tucker {
			sim, ok, err = runToolboxTucker(x, k)
		} else {
			sim, ok, err = runToolboxParafac(x, k)
		}
		if err != nil {
			return nil, err
		}
		row = append(row, methodCell(sim, ok))
		for _, v := range []core.Variant{core.DNN, core.DRN, core.DRI} {
			if tucker {
				sim, ok, err = runTucker(cfg, x, k, v, benchMachines)
			} else {
				sim, ok, err = runParafac(cfg, x, k, v, benchMachines)
			}
			if err != nil {
				return nil, err
			}
			row = append(row, methodCell(sim, ok))
			if ok && v == core.DNN {
				lastDNN = d
			}
			if ok && v == core.DRI {
				lastDRI = d
			}
		}
		rep.Rows = append(rep.Rows, row)
	}
	if lastDRI > lastDNN {
		rep.Notes = append(rep.Notes,
			fmt.Sprintf("DRI analyzes denser data than DNN (DNN up to %.0e, DRI up to %.0e), matching the paper's 10× claim", lastDNN, lastDRI))
	}
	return rep, nil
}

// coreSweep returns the Fig 1(c)/7(c) x-axis (the paper uses 10–80).
func coreSweep(cfg Config) []int {
	if cfg.Full {
		return []int{2, 4, 8, 16, 24}
	}
	return []int{2, 4, 8, 16}
}

// Fig1c regenerates Figure 1(c): Tucker running time vs. core size.
func Fig1c(cfg Config) (*Report, error) {
	return figCore(cfg, "fig1c", "Tucker: time vs core size (I=J=K=300, nnz=3000)", true)
}

// Fig7c regenerates Figure 7(c): PARAFAC running time vs. rank.
func Fig7c(cfg Config) (*Report, error) {
	return figCore(cfg, "fig7c", "PARAFAC: time vs rank (I=J=K=300, nnz=3000)", false)
}

func figCore(cfg Config, id, title string, tucker bool) (*Report, error) {
	x := gen.Random(cfg.Seed+99, [3]int64{300, 300, 300}, 3000)
	rep := &Report{
		ID:      id,
		Title:   title,
		Headers: []string{"core/rank", "Toolbox", "DNN", "DRN", "DRI"},
	}
	bestAtMax := ""
	var bestTime float64
	for _, k := range coreSweep(cfg) {
		row := []string{count(k)}
		var sim float64
		var ok bool
		var err error
		if tucker {
			sim, ok, err = runToolboxTucker(x, k)
		} else {
			sim, ok, err = runToolboxParafac(x, k)
		}
		if err != nil {
			return nil, err
		}
		row = append(row, methodCell(sim, ok))
		for _, v := range []core.Variant{core.DNN, core.DRN, core.DRI} {
			if tucker {
				sim, ok, err = runTucker(cfg, x, k, v, benchMachines)
			} else {
				sim, ok, err = runParafac(cfg, x, k, v, benchMachines)
			}
			if err != nil {
				return nil, err
			}
			row = append(row, methodCell(sim, ok))
			if k == coreSweep(cfg)[len(coreSweep(cfg))-1] && ok {
				if bestAtMax == "" || sim < bestTime {
					bestAtMax, bestTime = v.String(), sim
				}
			}
		}
		rep.Rows = append(rep.Rows, row)
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf("fastest HaTen2 variant at the largest core: %s", bestAtMax))
	return rep, nil
}

// Fig8 regenerates Figure 8: machine scalability of DRI on the NELL
// workload (26M×26M×48M, 144M nnz). The job plan is executed for real
// on a scaled NELL stand-in to measure its per-job record and byte
// counters; those counters — which grow linearly in nnz for the DRI
// plan — are then scaled to the paper's nnz and priced by the cost
// model at each machine count. Reported is the scale-up T10/TM.
func Fig8(cfg Config) (*Report, error) {
	dims := [3]int64{13000, 13000, 24000}
	nnz := 72000
	const paperNNZ = 144_000_000
	if cfg.Full {
		dims = [3]int64{26000, 26000, 48000}
		nnz = 144000
	}
	scale := float64(paperNNZ) / float64(nnz)
	x := gen.Random(cfg.Seed+8, dims, nnz)

	// timeAt executes one DRI iteration for real, then prices the
	// nnz-scaled job log on m machines.
	timeAt := func(tucker bool, m int) (float64, error) {
		c := newBenchCluster(m)
		var err error
		if tucker {
			_, err = core.TuckerALS(c, x, [3]int{5, 5, 5}, core.Options{Variant: core.DRI, MaxIters: 1, Seed: 7})
		} else {
			_, err = core.ParafacALS(c, x, 5, core.Options{Variant: core.DRI, MaxIters: 1, Seed: 7})
		}
		if err != nil {
			return 0, fmt.Errorf("bench: fig8 at M=%d: %w", m, err)
		}
		cost := mr.DefaultCostModel()
		var total float64
		for _, job := range c.Jobs() {
			scaled := mr.JobStats{
				InputRecords:   int64(float64(job.InputRecords) * scale),
				InputBytes:     int64(float64(job.InputBytes) * scale),
				ShuffleRecords: int64(float64(job.ShuffleRecords) * scale),
				ShuffleBytes:   int64(float64(job.ShuffleBytes) * scale),
				OutputRecords:  int64(float64(job.OutputRecords) * scale),
				OutputBytes:    int64(float64(job.OutputBytes) * scale),
			}
			total += cost.JobTime(m, scaled)
		}
		return total, nil
	}

	rep := &Report{
		ID:      "fig8",
		Title:   "Machine scalability of HaTen2-DRI (NELL workload): scale-up T10/TM",
		Headers: []string{"machines", "Tucker T_M", "Tucker T10/TM", "PARAFAC T_M", "PARAFAC T10/TM"},
	}
	machines := []int{10, 20, 30, 40}
	var t10Tucker, t10Parafac float64
	var scaleups []float64
	for _, m := range machines {
		simT, err := timeAt(true, m)
		if err != nil {
			return nil, err
		}
		simP, err := timeAt(false, m)
		if err != nil {
			return nil, err
		}
		if m == 10 {
			t10Tucker, t10Parafac = simT, simP
		}
		su := t10Tucker / simT
		scaleups = append(scaleups, su)
		rep.Rows = append(rep.Rows, []string{
			count(m), seconds(simT), fmt.Sprintf("%.2f", su),
			seconds(simP), fmt.Sprintf("%.2f", t10Parafac/simP),
		})
	}
	// Verify the paper's shape: monotone increase that flattens.
	monotone := true
	for i := 1; i < len(scaleups); i++ {
		if scaleups[i] < scaleups[i-1]-1e-9 {
			monotone = false
		}
	}
	gainEarly := scaleups[1] - scaleups[0]
	gainLate := scaleups[len(scaleups)-1] - scaleups[len(scaleups)-2]
	if monotone && gainLate < gainEarly {
		rep.Notes = append(rep.Notes, "speedup grows monotonically and flattens with more machines, matching Fig. 8")
	}
	return rep, nil
}

// Ablation isolates the contribution of each of the paper's three ideas
// (decoupling, dependency removal, job integration) by comparing
// consecutive variants on one fixed workload — the design-choice benches
// DESIGN.md calls out.
func Ablation(cfg Config) (*Report, error) {
	x := gen.Random(cfg.Seed+77, [3]int64{1000, 1000, 1000}, 10000)
	rep := &Report{
		ID:      "ablation",
		Title:   "Per-idea ablation on a fixed workload (Tucker, core 5³, one iteration)",
		Headers: []string{"variant", "jobs", "max shuffle records", "DFS bytes read", "sim time"},
	}
	type point struct {
		jobs int
		sim  float64
	}
	var pts []point
	for _, v := range core.Variants {
		c := newBenchCluster(benchMachines)
		s, err := core.Stage(c, "X", x)
		if err != nil {
			return nil, err
		}
		u1 := matrix.Random(1000, 5, randFor(cfg.Seed))
		u2 := matrix.Random(1000, 5, randFor(cfg.Seed+1))
		c.FS().ResetStats()
		if _, err := core.TuckerContract(s, 0, u1, u2, v); err != nil {
			rep.Rows = append(rep.Rows, []string{v.String(), oom, oom, oom, oom})
			continue
		}
		t := c.Totals()
		rep.Rows = append(rep.Rows, []string{
			v.String(), count(t.Jobs), count(t.MaxShuffleRecords),
			count(c.FS().Stats().BytesRead), seconds(t.SimSeconds),
		})
		pts = append(pts, point{t.Jobs, t.SimSeconds})
	}
	if n := len(pts); n >= 2 && pts[n-1].sim < pts[0].sim {
		rep.Notes = append(rep.Notes, "each added idea reduces simulated time on this workload")
	}
	return rep, nil
}

// CombinerAblation measures what a Hadoop combiner would buy on a
// Collapse-style aggregation (the DNN merge step): map tasks pre-sum
// records sharing a (fiber, column) key before the shuffle. The paper's
// implementation does not use combiners (Tables III/IV are reproduced
// without them); this experiment quantifies the headroom.
func CombinerAblation(cfg Config) (*Report, error) {
	// A collapse workload: nnz·Q Hadamard records, with duplication per
	// fiber key coming from the contracted mode.
	x := gen.Random(cfg.Seed+55, [3]int64{200, 50, 200}, 40000)
	const q = 5
	rep := &Report{
		ID:      "combiner",
		Title:   "Combiner ablation on a Collapse-style aggregation (extension)",
		Headers: []string{"combiner", "shuffle records", "shuffle bytes", "sim time"},
	}
	type rec struct {
		I, K int64
		Col  int32
		Val  float64
	}
	run := func(withCombiner bool) (mr.JobStats, error) {
		c := newBenchCluster(benchMachines)
		var items []rec
		for p := 0; p < x.NNZ(); p++ {
			idx := x.Index(p)
			for col := int32(0); col < q; col++ {
				items = append(items, rec{I: idx[0], K: idx[2], Col: col, Val: x.Value(p)})
			}
		}
		if err := mr.WriteFile(c, "H", items, func(rec) int64 { return 36 }); err != nil {
			return mr.JobStats{}, err
		}
		job := mr.Job[[3]int64, float64, float64]{
			Name: "collapse-like",
			Inputs: []mr.Input[[3]int64, float64]{
				mr.MapInput("H", func(e rec, emit func([3]int64, float64)) {
					emit([3]int64{e.I, e.K, int64(e.Col)}, e.Val)
				}),
			},
			Reduce: func(k [3]int64, vs []float64, emit func(float64)) {
				var s float64
				for _, v := range vs {
					s += v
				}
				emit(s)
			},
			Partition: mr.HashTriple,
			KVSize:    func([3]int64, float64) int64 { return 32 },
		}
		if withCombiner {
			job.Combine = func(k [3]int64, vs []float64) []float64 {
				var s float64
				for _, v := range vs {
					s += v
				}
				return []float64{s}
			}
		}
		_, st, err := mr.Run(c, job)
		return st, err
	}
	var rows []mr.JobStats
	for _, with := range []bool{false, true} {
		st, err := run(with)
		if err != nil {
			return nil, err
		}
		rows = append(rows, st)
		label := "no"
		if with {
			label = "yes"
		}
		rep.Rows = append(rep.Rows, []string{label, count(st.ShuffleRecords), count(st.ShuffleBytes), seconds(st.SimSeconds)})
	}
	if rows[1].ShuffleRecords < rows[0].ShuffleRecords {
		saving := 1 - float64(rows[1].ShuffleRecords)/float64(rows[0].ShuffleRecords)
		rep.Notes = append(rep.Notes, fmt.Sprintf("combiner removes %.0f%% of the shuffle on this workload", saving*100))
	}
	return rep, nil
}
