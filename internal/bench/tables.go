package bench

import (
	"fmt"
	"math/rand"

	"github.com/haten2/haten2/internal/core"
	"github.com/haten2/haten2/internal/gen"
	"github.com/haten2/haten2/internal/matrix"
)

func randFor(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func yesNo(b bool) string {
	if b {
		return "Yes"
	}
	return "No"
}

// Table2 regenerates Table II, the feature matrix of all methods.
func Table2() *Report {
	rep := &Report{
		ID:      "table2",
		Title:   "Comparison of all methods (Table II)",
		Headers: []string{"Method", "Distributed?", "Decoupling (D)", "Remove deps (R)", "Integrate jobs (I)"},
	}
	rep.Rows = append(rep.Rows, []string{"Tensor Toolbox", "No", "No", "No", "No"})
	for _, v := range core.Variants {
		f := v.Features()
		name := "HaTen2-" + v.String()
		if v == core.DRI {
			name += " (or just HaTen2)"
		}
		rep.Rows = append(rep.Rows, []string{
			name, yesNo(f.Distributed), yesNo(f.DecoupledSteps),
			yesNo(f.RemovedDependency), yesNo(f.IntegratedJobs),
		})
	}
	return rep
}

// Table3 regenerates Table III: for one Tucker contraction
// 𝒳×₂Bᵀ×₃Cᵀ, each variant's measured job count and measured max
// intermediate data, against the paper's analytic formulas.
func Table3(cfg Config) (*Report, error) {
	return costTable(cfg, true)
}

// Table4 regenerates Table IV, the PARAFAC counterpart for 𝒳₍₁₎(C⊙B).
func Table4(cfg Config) (*Report, error) {
	return costTable(cfg, false)
}

func costTable(cfg Config, tucker bool) (*Report, error) {
	// Small enough that even Naive's nnz+IJK broadcast fits the cluster
	// cap — the point here is measuring the plans' costs, not killing
	// them (the figures cover failures).
	dims := [3]int64{50, 50, 50}
	nnz := 500
	const q, r = 5, 5
	x := gen.Random(cfg.Seed+3, dims, nnz)
	id, title := "table4", "PARAFAC cost summary for X(1)(C⊙B) (Table IV)"
	if tucker {
		id, title = "table3", "Tucker cost summary for X ×2 Bᵀ ×3 Cᵀ (Table III)"
	}
	rep := &Report{
		ID:    id,
		Title: title,
		Headers: []string{"Method", "measured jobs", "analytic jobs",
			"measured max intermediate (records)", "analytic bound (records)"},
	}
	for _, v := range core.Variants {
		c := newBenchCluster(benchMachines)
		s, err := core.Stage(c, "X", x)
		if err != nil {
			return nil, err
		}
		u1 := matrix.Random(int(dims[1]), q, randFor(cfg.Seed+10))
		u2 := matrix.Random(int(dims[2]), r, randFor(cfg.Seed+11))
		if tucker {
			_, err = core.TuckerContract(s, 0, u1, u2, v)
		} else {
			_, err = core.ParafacContract(s, 0, u1, u2, v)
		}
		if err != nil {
			return nil, err
		}
		t := c.Totals()
		var analyticJobs int
		var bound int64
		if tucker {
			analyticJobs = v.TuckerJobs(q, r)
			bound = v.TuckerIntermediate(int64(x.NNZ()), dims[0], dims[1], dims[2], q, r)
		} else {
			analyticJobs = v.ParafacJobs(r)
			bound = v.ParafacIntermediate(int64(x.NNZ()), dims[0], dims[1], dims[2], r)
		}
		rep.Rows = append(rep.Rows, []string{
			"HaTen2-" + v.String(), count(t.Jobs), count(analyticJobs),
			count(t.MaxShuffleRecords), count(bound),
		})
		if t.Jobs != analyticJobs {
			rep.Notes = append(rep.Notes,
				fmt.Sprintf("MISMATCH: %s measured %d jobs, formula says %d", v, t.Jobs, analyticJobs))
		}
	}
	if len(rep.Notes) == 0 {
		rep.Notes = append(rep.Notes, "measured job counts equal the paper's formulas for all variants")
	}
	return rep, nil
}

// Table5 regenerates Table V, the dataset summary, for the stand-in
// datasets this reproduction generates.
func Table5(cfg Config) *Report {
	rep := &Report{
		ID:      "table5",
		Title:   "Summary of tensor data (Table V; offline stand-ins, scaled)",
		Headers: []string{"dataset", "I", "J", "K", "nnz", "paper's original"},
	}
	fb := gen.NewKB(gen.KBConfig{
		Seed: cfg.Seed, Theme: "music", ConceptNames: gen.FreebaseMusicNames,
		EntitiesPerConcept: 40, TriplesPerConcept: 1500, NoiseTriples: 900,
	})
	fbT := fb.Tensor()
	nell := gen.NewKB(gen.KBConfig{
		Seed: cfg.Seed + 1, Theme: "nell", ConceptNames: gen.NELLNames,
		EntitiesPerConcept: 60, TriplesPerConcept: 2500, NoiseTriples: 1200,
	})
	nellT := nell.Tensor()
	rnd := gen.Random(cfg.Seed+2, [3]int64{100000, 100000, 100000}, 1000000)
	for _, e := range []struct {
		info gen.DatasetInfo
		orig string
	}{
		{gen.Describe("Freebase-music (stand-in)", fbT), "23M×23M×0.1K, 99M nnz"},
		{gen.Describe("NELL (stand-in)", nellT), "26M×26M×48M, 144M nnz"},
		{gen.Describe("Random", rnd), "10³–10⁸ dims, 10⁴–10¹⁰ nnz"},
	} {
		rep.Rows = append(rep.Rows, []string{
			e.info.Name, gen.Human(e.info.I), gen.Human(e.info.J), gen.Human(e.info.K),
			gen.Human(e.info.NNZ), e.orig,
		})
	}
	return rep
}
