// Package bench regenerates every table and figure of the paper's
// evaluation (Section IV) on the simulated cluster: the cost summaries
// (Tables III, IV), the dataset summary (Table V), the data-scalability
// figures (1a–c for Tucker, 7a–c for PARAFAC), machine scalability
// (Figure 8), and the discovery tables on the knowledge-base stand-in
// (Tables VI–VIII). Each experiment returns a Report that prints the
// same rows/series the paper shows.
//
// Absolute numbers come from the simulator's calibrated cost model and
// therefore do not match the paper's testbed; the shapes — which method
// wins, where each fails, how speedup flattens — are the reproduction
// target (see EXPERIMENTS.md).
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"github.com/haten2/haten2/internal/obs"
)

// Report is one regenerated table or figure.
type Report struct {
	// ID is the experiment identifier ("table3", "fig1a", ...).
	ID string
	// Title describes the experiment as the paper captions it.
	Title string
	// Headers labels the columns.
	Headers []string
	// Rows holds the data; "o.o.m" marks resource-exhausted points just
	// as the paper's figures do.
	Rows [][]string
	// Notes carries observations the harness verified (orderings,
	// crossovers) for EXPERIMENTS.md.
	Notes []string
}

// Print renders the report as an aligned text table.
func (r *Report) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Headers))
	for i, h := range r.Headers {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			width := 0
			if i < len(widths) {
				width = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", width, c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(r.Headers)
	sep := make([]string, len(r.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Config controls the experiment scale.
type Config struct {
	// Full enlarges the sweeps (minutes instead of seconds).
	Full bool
	// Seed drives all data generation.
	Seed int64
	// Tracer, when non-nil, is attached to every cluster the
	// experiments create, so one trace file covers a whole harness run
	// (haten2bench's -trace flag).
	Tracer *obs.Tracer
	// Backend selects the execution backend for experiments that
	// support one (currently mr): "" or "inproc" measures only the
	// in-process engine; "proc" additionally sweeps the multi-process
	// socket backend (internal/mrproc) and reports its rows alongside
	// the in-process ones (haten2bench's -backend flag).
	Backend string
}

// seconds renders a simulated duration with adaptive precision.
func seconds(s float64) string {
	switch {
	case s < 0.1:
		return fmt.Sprintf("%.3fs", s)
	case s < 10:
		return fmt.Sprintf("%.2fs", s)
	default:
		return fmt.Sprintf("%.1fs", s)
	}
}

// count renders an integer cell.
func count[T ~int | ~int64](n T) string { return fmt.Sprintf("%d", int64(n)) }

// JSON renders the report as a machine-readable object (used by
// haten2bench -json for downstream plotting).
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(struct {
		ID      string     `json:"id"`
		Title   string     `json:"title"`
		Headers []string   `json:"headers"`
		Rows    [][]string `json:"rows"`
		Notes   []string   `json:"notes,omitempty"`
	}{r.ID, r.Title, r.Headers, r.Rows, r.Notes}, "", "  ")
}
