package bench

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/haten2/haten2/internal/core"
	"github.com/haten2/haten2/internal/gen"
	"github.com/haten2/haten2/internal/matrix"
	"github.com/haten2/haten2/internal/mr"
)

// ShuffleBench compares the two shuffle wire formats — the fixed-width
// per-record codec the repo used before shuffle v2 and the columnar
// varint-delta block codec — on one full PARAFAC-DRI iteration. The
// experiment behind BENCH_shuffle.json verifies the codec switch's
// whole contract in one table: identical record counts, strictly fewer
// bytes under columnar, and bit-identical numerical output.
func ShuffleBench(cfg Config) (*Report, error) {
	dim, nnz := int64(200), 200_000
	if cfg.Full {
		dim, nnz = 300, 1_000_000
	}
	const rank = 4
	x := gen.Random(cfg.Seed, [3]int64{dim, dim, dim}, nnz)
	other := [3][2]int{{1, 2}, {0, 2}, {0, 1}}

	type outcome struct {
		wall    time.Duration
		records int64
		bytes   int64
		results [3]*matrix.Matrix
	}
	run := func(codec core.Codec) (outcome, error) {
		c := mr.NewCluster(mr.Config{Machines: 8, SlotsPerMachine: 4})
		c.SetTracer(cfg.Tracer)
		s, err := core.Stage(c, "X", x)
		if err != nil {
			return outcome{}, err
		}
		s.SetCodec(codec)
		rng := rand.New(rand.NewSource(cfg.Seed))
		var factors [3]*matrix.Matrix
		for m := 0; m < 3; m++ {
			factors[m] = matrix.Random(int(dim), rank, rng)
		}
		c.ResetCounters()
		var out outcome
		start := time.Now()
		for n := 0; n < 3; n++ {
			o := other[n]
			y, err := core.ParafacContract(s, n, factors[o[0]], factors[o[1]], core.DRI)
			if err != nil {
				return outcome{}, err
			}
			out.results[n] = y
		}
		out.wall = time.Since(start)
		t := c.Totals()
		out.records, out.bytes = t.ShuffleRecords, t.ShuffleBytes
		return out, nil
	}

	fixed, err := run(core.CodecFixed)
	if err != nil {
		return nil, err
	}
	columnar, err := run(core.CodecColumnar)
	if err != nil {
		return nil, err
	}

	rep := &Report{
		ID: "shuffle",
		Title: fmt.Sprintf("shuffle wire formats, one PARAFAC-DRI iteration (%s nnz, rank %d)",
			gen.Human(int64(nnz)), rank),
		Headers: []string{"codec", "shuffle-records", "shuffle-bytes", "bytes/record", "vs fixed", "wall"},
	}
	row := func(name string, o outcome) []string {
		return []string{
			name,
			count(int(o.records)),
			count(int(o.bytes)),
			fmt.Sprintf("%.2f", float64(o.bytes)/float64(o.records)),
			fmt.Sprintf("%.1f%%", 100*float64(o.bytes)/float64(fixed.bytes)),
			fmt.Sprintf("%.3fs", o.wall.Seconds()),
		}
	}
	rep.Rows = append(rep.Rows, row("fixed", fixed), row("columnar", columnar))

	if columnar.records != fixed.records {
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"CODEC VIOLATION: record counts differ (fixed %d, columnar %d) — accounting leaked into the plan",
			fixed.records, columnar.records))
	}
	if columnar.bytes >= fixed.bytes {
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"CODEC VIOLATION: columnar shuffle bytes %d not strictly below fixed %d",
			columnar.bytes, fixed.bytes))
	} else {
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"columnar moves %.1f%% fewer shuffle bytes on identical record counts",
			100*(1-float64(columnar.bytes)/float64(fixed.bytes))))
	}
	identical := true
	for n := 0; n < 3 && identical; n++ {
		a, b := fixed.results[n], columnar.results[n]
		if a.Rows != b.Rows || a.Cols != b.Cols {
			identical = false
			break
		}
		for i := range a.Data {
			if math.Float64bits(a.Data[i]) != math.Float64bits(b.Data[i]) {
				identical = false
				break
			}
		}
	}
	if identical {
		rep.Notes = append(rep.Notes, "contraction outputs are bit-identical under both codecs")
	} else {
		rep.Notes = append(rep.Notes, "CODEC VIOLATION: contraction outputs differ between codecs")
	}
	return rep, nil
}
