package bench

import (
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"sort"
	"time"

	"github.com/haten2/haten2/internal/core"
	"github.com/haten2/haten2/internal/gen"
	"github.com/haten2/haten2/internal/matrix"
	"github.com/haten2/haten2/internal/mr"
	"github.com/haten2/haten2/internal/mrproc"
)

// MRBench measures the real wall-clock time of one full PARAFAC-DRI
// iteration (all three mode contractions) across a GOMAXPROCS sweep —
// the engine-parallelism experiment behind BENCH_mr.json. Unlike every
// other experiment in this package, the quantity of interest is host
// wall time, not simulated seconds: the simulated cost model is a pure
// function of the job counters and is reported once as a cross-check
// that real parallelism leaves it untouched.
//
// The run at each GOMAXPROCS setting also re-verifies the engine's
// determinism guarantee: the per-job counters must be bit-identical
// across all settings. With Config.Backend set to "proc" the sweep runs
// a second time through the multi-process socket backend — every
// shuffle partition and staged file round-tripping through real worker
// processes — and those rows must reproduce the in-process counters
// exactly (the standing invariant: backends may change wall-clock and
// transport statistics, never output bytes).
func MRBench(cfg Config) (*Report, error) {
	dim, nnz := int64(200), 200_000
	if cfg.Full {
		dim, nnz = 300, 1_000_000
	}
	const rank = 4
	x := gen.Random(cfg.Seed, [3]int64{dim, dim, dim}, nnz)
	other := [3][2]int{{1, 2}, {0, 2}, {0, 1}}

	type backendCase struct {
		name    string
		factory func() (mr.Backend, error)
	}
	backends := []backendCase{{"inproc", nil}}
	switch cfg.Backend {
	case "", "inproc":
	case "proc":
		backends = append(backends, backendCase{"proc", func() (mr.Backend, error) {
			return mrproc.New(mrproc.Options{Workers: 2})
		}})
	default:
		return nil, fmt.Errorf("bench: unknown backend %q (want inproc or proc)", cfg.Backend)
	}

	type outcome struct {
		wall    time.Duration
		sim     float64
		allocs  uint64
		shuffle int64
		jobs    []mr.JobStats
	}
	run := func(procs int, newBackend func() (mr.Backend, error)) (outcome, error) {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
		// No shuffle cap: DRI's PairwiseMerge legitimately moves
		// 2·nnz·R records per contraction.
		c := mr.NewCluster(mr.Config{Machines: 8, SlotsPerMachine: 4})
		c.SetTracer(cfg.Tracer)
		if newBackend != nil {
			b, err := newBackend()
			if err != nil {
				return outcome{}, err
			}
			defer b.Close()
			c.SetBackend(b)
		}
		s, err := core.Stage(c, "X", x)
		if err != nil {
			return outcome{}, err
		}
		rng := rand.New(rand.NewSource(cfg.Seed))
		var factors [3]*matrix.Matrix
		for m := 0; m < 3; m++ {
			factors[m] = matrix.Random(int(dim), rank, rng)
		}
		iteration := func() error {
			for n := 0; n < 3; n++ {
				o := other[n]
				if _, err := core.ParafacContract(s, n, factors[o[0]], factors[o[1]], core.DRI); err != nil {
					return err
				}
			}
			return nil
		}
		// One untimed warm-up iteration so every setting is measured
		// with the cluster's shuffle hints populated (steady-state ALS
		// behavior) and the allocator warm.
		if err := iteration(); err != nil {
			return outcome{}, err
		}
		c.ResetCounters()
		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		if err := iteration(); err != nil {
			return outcome{}, err
		}
		wall := time.Since(start)
		runtime.ReadMemStats(&ms1)
		jobs := c.Jobs()
		// Staged factor files get fresh temp names each iteration
		// (embedded in some job names); blank them so the comparison
		// covers exactly the counters.
		for i := range jobs {
			jobs[i].Name = ""
		}
		return outcome{
			wall:    wall,
			sim:     c.Totals().SimSeconds,
			allocs:  ms1.Mallocs - ms0.Mallocs,
			shuffle: c.Totals().ShuffleBytes,
			jobs:    jobs,
		}, nil
	}

	procs := procSweep()
	rep := &Report{
		ID:    "mr",
		Title: fmt.Sprintf("engine wall-clock, one PARAFAC-DRI iteration (%s nnz, rank %d)", gen.Human(int64(nnz)), rank),
		Headers: []string{
			"backend", "GOMAXPROCS", "wall", "speedup", "allocs/op", "shuffle-bytes", "sim-time", "counters",
		},
	}
	// The determinism baseline is the very first run (in-process,
	// lowest GOMAXPROCS); every other row — including every proc-backend
	// row — must reproduce its counters. Speedup is reported per backend
	// against that backend's own first setting.
	var base outcome
	for bi, bk := range backends {
		var bkBase outcome
		for i, p := range procs {
			out, err := run(p, bk.factory)
			if err != nil {
				return nil, err
			}
			if i == 0 {
				bkBase = out
				if bi == 0 {
					base = out
				}
			}
			identical := reflect.DeepEqual(base.jobs, out.jobs) && base.sim == out.sim
			det := "identical"
			if !identical {
				det = "DIVERGED"
				rep.Notes = append(rep.Notes, fmt.Sprintf("DETERMINISM VIOLATION at backend=%s GOMAXPROCS=%d: job counters differ from the in-process GOMAXPROCS=%d baseline", bk.name, p, procs[0]))
			}
			rep.Rows = append(rep.Rows, []string{
				bk.name,
				count(p),
				fmt.Sprintf("%.3fs", out.wall.Seconds()),
				fmt.Sprintf("%.2fx", bkBase.wall.Seconds()/out.wall.Seconds()),
				count(int(out.allocs)),
				count(int(out.shuffle)),
				seconds(out.sim),
				det,
			})
		}
	}
	if len(backends) > 1 {
		rep.Notes = append(rep.Notes,
			"proc rows run the same iteration through the multi-process socket backend (2 worker processes, loopback TCP); their counters must match the in-process rows bit-for-bit")
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("host has %d CPU core(s); wall-clock speedup is bounded by physical cores, simulated time is invariant by construction", runtime.NumCPU()),
	)
	if runtime.NumCPU() < 4 {
		rep.Notes = append(rep.Notes,
			"the ≥2x speedup acceptance criterion applies on hosts with ≥4 cores; rerun `haten2bench -exp mr` there (or `go test -run - -bench ParafacDRIIteration -cpu 1,4 ./internal/mr`)")
	}
	return rep, nil
}

// procSweep returns the GOMAXPROCS settings to measure: 1, 2, 4, and
// all cores, clamped to the host's CPU count and deduplicated.
func procSweep() []int {
	n := runtime.NumCPU()
	set := map[int]bool{1: true}
	for _, p := range []int{2, 4, n} {
		if p >= 1 && p <= n {
			set[p] = true
		}
	}
	ps := make([]int, 0, len(set))
	for p := range set {
		ps = append(ps, p)
	}
	sort.Ints(ps)
	return ps
}
