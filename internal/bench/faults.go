package bench

import (
	"errors"
	"fmt"
	"math"

	"github.com/haten2/haten2/internal/core"
	"github.com/haten2/haten2/internal/gen"
	"github.com/haten2/haten2/internal/mr"
	"github.com/haten2/haten2/internal/tensor"
)

// Faults measures the simulated-time overhead of the engine's
// fault-recovery machinery — task retries, speculative execution, and
// checkpoint-based restart — against a fault-free baseline, and verifies
// on every row the subsystem's standing invariant: faults change
// simulated time and the recovery counters, never outputs. The final
// scenario kills the cluster mid-run and resumes from checkpoints on a
// fresh cluster sharing the DFS, charging both clusters' time.
//
// This is the BENCH_faults.json experiment (`haten2bench -exp faults
// -faultsout BENCH_faults.json`).
func Faults(cfg Config) (*Report, error) {
	dim, nnz := int64(100), 50_000
	iters := 3
	if cfg.Full {
		dim, nnz = 200, 400_000
		iters = 5
	}
	const rank = 3
	x := gen.Random(cfg.Seed, [3]int64{dim, dim, dim}, nnz)
	opt := core.Options{Variant: core.DRI, MaxIters: iters, Tol: 1e-12, Seed: cfg.Seed}

	// The bench's map tasks run well under a second of simulated time, so
	// with the default 30s SpeculativeDelay no straggler would ever lag
	// long enough to earn a backup attempt. Lower the delay so the
	// speculation path is exercised at this scale.
	cost := mr.DefaultCostModel()
	cost.SpeculativeDelay = 1e-3
	clusterCfg := mr.Config{Machines: 8, SlotsPerMachine: 4, Cost: cost}

	newCluster := func(plan *mr.FaultPlan) *mr.Cluster {
		c := mr.NewCluster(clusterCfg)
		c.SetTracer(cfg.Tracer)
		c.InstallFaultPlan(plan)
		return c
	}

	scenarios := []struct {
		label string
		plan  *mr.FaultPlan
	}{
		{"fault-free", nil},
		{"fail 5%", &mr.FaultPlan{Seed: cfg.Seed, FailureRate: 0.05, MaxAttempts: 64}},
		{"fail 15%", &mr.FaultPlan{Seed: cfg.Seed, FailureRate: 0.15, MaxAttempts: 64}},
		{"fail 30%", &mr.FaultPlan{Seed: cfg.Seed, FailureRate: 0.30, MaxAttempts: 64}},
		{"straggle 20%", &mr.FaultPlan{Seed: cfg.Seed, StragglerRate: 0.20}},
		{"straggle 20% no-spec", &mr.FaultPlan{Seed: cfg.Seed, StragglerRate: 0.20, DisableSpeculation: true}},
		{"fail 15% + straggle 20%", &mr.FaultPlan{Seed: cfg.Seed, FailureRate: 0.15, StragglerRate: 0.20, MaxAttempts: 64}},
	}

	rep := &Report{
		ID: "faults",
		Title: fmt.Sprintf("fault-recovery overhead, PARAFAC-DRI %d iterations (%s nnz, rank %d)",
			iters, gen.Human(int64(nnz)), rank),
		Headers: []string{
			"scenario", "sim-time", "overhead", "retries", "spec(wins)", "wasted-recs", "penalty", "outputs",
		},
	}

	var baseModel *tensor.Kruskal
	var baseSim float64
	row := func(label string, tot mr.Totals, model *tensor.Kruskal) {
		outputs := "identical"
		if !kruskalBitsEqual(baseModel, model) {
			outputs = "DIVERGED"
			rep.Notes = append(rep.Notes,
				fmt.Sprintf("DETERMINISM VIOLATION: scenario %q changed the decomposition output", label))
		}
		rep.Rows = append(rep.Rows, []string{
			label,
			seconds(tot.SimSeconds),
			fmt.Sprintf("%.2fx", tot.SimSeconds/baseSim),
			count(tot.TaskRetries),
			fmt.Sprintf("%d(%d)", tot.SpeculativeTasks, tot.SpeculativeWins),
			count(tot.WastedRecords),
			seconds(tot.PenaltySeconds),
			outputs,
		})
	}

	for _, sc := range scenarios {
		c := newCluster(sc.plan)
		res, err := core.ParafacALS(c, x, rank, opt)
		if err != nil {
			return nil, fmt.Errorf("scenario %q: %w", sc.label, err)
		}
		if baseModel == nil {
			baseModel, baseSim = res.Model, c.Totals().SimSeconds
		}
		row(sc.label, c.Totals(), res.Model)
	}

	// Kill + checkpoint resume: the cluster dies mid-run under a faulty
	// plan; a fresh cluster on the surviving DFS resumes from the last
	// checkpoint. Both clusters' simulated time is charged — the price of
	// the lost partial iteration plus recovery.
	ckOpt := opt
	ckOpt.Checkpoint = "bench/faults/parafac"
	c1 := newCluster(&mr.FaultPlan{Seed: cfg.Seed, FailureRate: 0.15, MaxAttempts: 64, KillAfterJobs: 10})
	_, err := core.ParafacALS(c1, x, rank, ckOpt)
	var killed *mr.ErrClusterKilled
	if !errors.As(err, &killed) {
		return nil, fmt.Errorf("kill scenario: want ErrClusterKilled, got %w", err)
	}
	c2 := mr.NewClusterWithFS(clusterCfg, c1.FS())
	c2.SetTracer(cfg.Tracer)
	c2.InstallFaultPlan(&mr.FaultPlan{Seed: cfg.Seed + 1, FailureRate: 0.15, MaxAttempts: 64})
	res, err := core.ParafacALS(c2, x, rank, ckOpt)
	if err != nil {
		return nil, fmt.Errorf("resume after kill: %w", err)
	}
	var tot mr.Totals
	t1, t2 := c1.Totals(), c2.Totals()
	tot.SimSeconds = t1.SimSeconds + t2.SimSeconds
	tot.TaskRetries = t1.TaskRetries + t2.TaskRetries
	tot.SpeculativeTasks = t1.SpeculativeTasks + t2.SpeculativeTasks
	tot.SpeculativeWins = t1.SpeculativeWins + t2.SpeculativeWins
	tot.WastedRecords = t1.WastedRecords + t2.WastedRecords
	tot.PenaltySeconds = t1.PenaltySeconds + t2.PenaltySeconds
	row("fail 15% + kill/resume", tot, res.Model)

	rep.Notes = append(rep.Notes,
		"every scenario must report outputs=identical: fault decisions are pure hashes applied in a post-pass, so they can change time and counters but never results",
		fmt.Sprintf("SpeculativeDelay lowered to %.0fms for this bench so sub-second tasks can trigger backups", cost.SpeculativeDelay*1000),
		"kill/resume charges both clusters: the killed run's completed iterations plus the resumed run from the last checkpoint",
	)
	return rep, nil
}

// kruskalBitsEqual compares two PARAFAC models bit-for-bit.
func kruskalBitsEqual(a, b *tensor.Kruskal) bool {
	if a == nil || b == nil || len(a.Lambda) != len(b.Lambda) || len(a.Factors) != len(b.Factors) {
		return a == b
	}
	for r := range a.Lambda {
		if math.Float64bits(a.Lambda[r]) != math.Float64bits(b.Lambda[r]) {
			return false
		}
	}
	for m := range a.Factors {
		fa, fb := a.Factors[m], b.Factors[m]
		if fa.Rows != fb.Rows || fa.Cols != fb.Cols {
			return false
		}
		for i := range fa.Data {
			if math.Float64bits(fa.Data[i]) != math.Float64bits(fb.Data[i]) {
				return false
			}
		}
	}
	return true
}
