package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

var quick = Config{Seed: 42}

func TestTable2Shape(t *testing.T) {
	rep := Table2()
	if len(rep.Rows) != 5 {
		t.Fatalf("%d rows", len(rep.Rows))
	}
	// DRI row claims all three ideas.
	dri := rep.Rows[4]
	for _, cell := range dri[1:] {
		if cell != "Yes" {
			t.Fatalf("DRI row %v", dri)
		}
	}
	// Toolbox claims none.
	for _, cell := range rep.Rows[0][1:] {
		if cell != "No" {
			t.Fatalf("toolbox row %v", rep.Rows[0])
		}
	}
}

func TestTable3JobCountsMatchFormulas(t *testing.T) {
	rep, err := Table3(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Rows {
		if row[1] != row[2] {
			t.Fatalf("measured jobs %s != analytic %s for %s", row[1], row[2], row[0])
		}
		measured, _ := strconv.ParseInt(row[3], 10, 64)
		bound, _ := strconv.ParseInt(row[4], 10, 64)
		if measured > bound {
			t.Fatalf("%s exceeded its intermediate-data bound: %d > %d", row[0], measured, bound)
		}
	}
}

func TestTable4JobCountsMatchFormulas(t *testing.T) {
	rep, err := Table4(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Rows {
		if row[1] != row[2] {
			t.Fatalf("measured jobs %s != analytic %s for %s", row[1], row[2], row[0])
		}
	}
}

func TestTable5ListsAllDatasets(t *testing.T) {
	rep := Table5(quick)
	if len(rep.Rows) != 3 {
		t.Fatalf("%d datasets", len(rep.Rows))
	}
	names := rep.Rows[0][0] + rep.Rows[1][0] + rep.Rows[2][0]
	for _, want := range []string{"Freebase", "NELL", "Random"} {
		if !strings.Contains(names, want) {
			t.Fatalf("missing %s in %q", want, names)
		}
	}
}

func TestFig8SpeedupShape(t *testing.T) {
	rep, err := Fig8(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("%d rows", len(rep.Rows))
	}
	var sus []float64
	for _, row := range rep.Rows {
		su, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		sus = append(sus, su)
	}
	// Monotone increasing, sublinear, flattening.
	for i := 1; i < len(sus); i++ {
		if sus[i] <= sus[i-1] {
			t.Fatalf("speedup not increasing: %v", sus)
		}
	}
	if sus[3] >= 4.0 {
		t.Fatalf("speedup at 40 machines should be sublinear: %v", sus)
	}
	if (sus[3] - sus[2]) >= (sus[1] - sus[0]) {
		t.Fatalf("speedup should flatten: %v", sus)
	}
}

func TestFig1cDRIWinsAtLargeCore(t *testing.T) {
	rep, err := Fig1c(quick)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range rep.Notes {
		if strings.Contains(n, "DRI") {
			found = true
		}
	}
	if !found {
		t.Fatalf("DRI should be fastest at the largest core; notes: %v", rep.Notes)
	}
	// DNN/DRN times grow with core size while DRI stays near-flat: the
	// last row's DNN must exceed its first row's.
	parse := func(s string) float64 {
		f, _ := strconv.ParseFloat(strings.TrimSuffix(s, "s"), 64)
		return f
	}
	first, last := rep.Rows[0], rep.Rows[len(rep.Rows)-1]
	if parse(last[2]) <= parse(first[2]) {
		t.Fatalf("DNN time should grow with core size: %v → %v", first[2], last[2])
	}
	driGrowth := parse(last[4]) / parse(first[4])
	dnnGrowth := parse(last[2]) / parse(first[2])
	if driGrowth >= dnnGrowth {
		t.Fatalf("DRI (×%.2f) should scale better than DNN (×%.2f)", driGrowth, dnnGrowth)
	}
}

func TestTable6RecoversPlantedConcepts(t *testing.T) {
	rep, err := Table6(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Mean purity note must report a high value.
	ok := false
	for _, n := range rep.Notes {
		if strings.HasPrefix(n, "mean top-") {
			fields := strings.Fields(n)
			v, err := strconv.ParseFloat(fields[4], 64)
			if err != nil {
				t.Fatalf("bad purity note %q", n)
			}
			if v < 0.8 {
				t.Fatalf("mean purity %v too low for planted data", v)
			}
			ok = true
		}
	}
	if !ok {
		t.Fatalf("no purity note: %v", rep.Notes)
	}
}

func TestTable7And8Consistency(t *testing.T) {
	rep7, err := Table7(quick)
	if err != nil {
		t.Fatal(err)
	}
	// 6 concepts × 3 modes of groups.
	if len(rep7.Rows) != 18 {
		t.Fatalf("table7 rows %d", len(rep7.Rows))
	}
	rep8, err := Table8(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep8.Rows) != 3 {
		t.Fatalf("table8 rows %d", len(rep8.Rows))
	}
	// Each table8 concept references valid groups.
	for _, row := range rep8.Rows {
		if !strings.HasPrefix(row[1], "(S") {
			t.Fatalf("bad group cell %q", row[1])
		}
	}
}

func TestAblationOrdering(t *testing.T) {
	rep, err := Ablation(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("rows %d", len(rep.Rows))
	}
	// Naive must have exhausted resources on a 1000³ tensor.
	if rep.Rows[0][1] != oom {
		t.Fatalf("naive should o.o.m: %v", rep.Rows[0])
	}
	// DRI runs the fewest jobs.
	if rep.Rows[3][1] != "2" {
		t.Fatalf("DRI jobs %v", rep.Rows[3])
	}
}

func TestReportPrint(t *testing.T) {
	rep := &Report{
		ID:      "x",
		Title:   "t",
		Headers: []string{"a", "bb"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   []string{"hello"},
	}
	var buf bytes.Buffer
	rep.Print(&buf)
	out := buf.String()
	for _, want := range []string{"== x: t ==", "a    bb", "333", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestFigDataScalabilityOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute sweep")
	}
	rep, err := Fig1a(quick)
	if err != nil {
		t.Fatal(err)
	}
	ok := false
	for _, n := range rep.Notes {
		if strings.Contains(n, "failure ordering matches the paper") {
			ok = true
		}
	}
	if !ok {
		t.Fatalf("ordering note missing: %v", rep.Notes)
	}
}

func TestCombinerAblationSavesShuffle(t *testing.T) {
	rep, err := CombinerAblation(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows %d", len(rep.Rows))
	}
	without, _ := strconv.ParseInt(rep.Rows[0][1], 10, 64)
	with, _ := strconv.ParseInt(rep.Rows[1][1], 10, 64)
	if with >= without {
		t.Fatalf("combiner should cut shuffle: %d vs %d", with, without)
	}
}

func TestTableNELLRecoversConcepts(t *testing.T) {
	rep, err := TableNELL(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 { // four NELL concepts
		t.Fatalf("rows %d", len(rep.Rows))
	}
	for _, n := range rep.Notes {
		if strings.HasPrefix(n, "mean top-") {
			v, err := strconv.ParseFloat(strings.Fields(n)[3], 64)
			if err != nil {
				t.Fatalf("bad note %q", n)
			}
			if v < 0.8 {
				t.Fatalf("NELL purity %v", v)
			}
			return
		}
	}
	t.Fatal("no purity note")
}

func TestReportJSON(t *testing.T) {
	rep := Table2()
	b, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	for _, want := range []string{`"id": "table2"`, `"headers"`, `"rows"`, "HaTen2-DRI"} {
		if !strings.Contains(s, want) {
			t.Fatalf("JSON missing %q:\n%s", want, s)
		}
	}
}
