package bench

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"github.com/haten2/haten2/internal/baseline"
	"github.com/haten2/haten2/internal/gen"
	"github.com/haten2/haten2/internal/matrix"
	"github.com/haten2/haten2/internal/serve"
)

// serveUsers is the simulated user population. Each user maps
// deterministically to one (subject, predicate) query, and traffic
// picks users from a Zipf distribution — a few celebrities dominate,
// a long tail of millions appears once or twice, which is exactly the
// regime the serving layer's caches are designed for.
const serveUsers = 3_000_000

// serveLoad is one measured closed-loop run against a query function.
type serveLoad struct {
	wall      time.Duration
	latencies []time.Duration // one per request, order unspecified
}

func (l *serveLoad) qps() float64 {
	if l.wall <= 0 {
		return 0
	}
	return float64(len(l.latencies)) / l.wall.Seconds()
}

// percentile returns the p-th latency percentile (sorts in place).
func (l *serveLoad) percentile(p float64) time.Duration {
	if len(l.latencies) == 0 {
		return 0
	}
	sort.Slice(l.latencies, func(i, j int) bool { return l.latencies[i] < l.latencies[j] })
	i := int(p * float64(len(l.latencies)-1))
	return l.latencies[i]
}

// userQuery maps a user id to its query via splitmix64 so the mapping
// is stateless and seeded: millions of distinct users project onto the
// (subject × predicate) query space with Zipf-weighted popularity.
func userQuery(user uint64, subjects, predicates int64) (int64, int64) {
	z := user + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z % uint64(subjects)), int64((z >> 32) % uint64(predicates))
}

// closedLoop drives requests clients in lockstep, each issuing its
// share of total queries back to back (a closed loop: the next request
// is issued only when the previous answer arrives). Per-request
// latency is recorded into preallocated buffers so measurement itself
// does not allocate on the hot path.
func closedLoop(seed int64, clients, total int, subjects, predicates int64, k int,
	query func(s, p int64, k int, dst []serve.Result) ([]serve.Result, error)) (*serveLoad, error) {

	per := total / clients
	lats := make([][]time.Duration, clients)
	errs := make([]error, clients)
	for c := range lats {
		lats[c] = make([]time.Duration, 0, per)
	}
	var wg sync.WaitGroup
	wg.Add(clients)
	start := time.Now()
	for c := 0; c < clients; c++ {
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(c)*7919))
			zipf := rand.NewZipf(rng, 1.2, 1, serveUsers-1)
			dst := make([]serve.Result, 0, k)
			for i := 0; i < per; i++ {
				s, p := userQuery(zipf.Uint64(), subjects, predicates)
				t0 := time.Now()
				var err error
				dst, err = query(s, p, k, dst)
				lats[c] = append(lats[c], time.Since(t0))
				if err != nil {
					errs[c] = err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	load := &serveLoad{wall: time.Since(start)}
	for c := range lats {
		if errs[c] != nil {
			return nil, errs[c]
		}
		load.latencies = append(load.latencies, lats[c]...)
	}
	return load, nil
}

// verifyRankings checks a sample of queries bit-for-bit against the
// single-threaded baseline scorer — the CI smoke turns any divergence
// between the sharded/batched/cached path and the reference into a
// hard failure, not a table footnote.
func verifyRankings(srv *serve.Server, lambda []float64, factors [3]*matrix.Matrix,
	seed int64, samples int, subjects, predicates int64, k int) error {

	rng := rand.New(rand.NewSource(seed))
	var dst []serve.Result
	for i := 0; i < samples; i++ {
		s, p := int64(rng.Intn(int(subjects))), int64(rng.Intn(int(predicates)))
		var err error
		dst, err = srv.TopKObjects(s, p, k, dst)
		if err != nil {
			return err
		}
		want := baseline.ParafacTopKObjects(lambda, factors, s, p, k)
		if len(dst) != len(want) {
			return fmt.Errorf("query (%d,%d): served %d results, baseline %d", s, p, len(dst), len(want))
		}
		for r := range dst {
			if dst[r].Index != want[r].Index ||
				math.Float64bits(dst[r].Score) != math.Float64bits(want[r].Score) {
				return fmt.Errorf("query (%d,%d) rank %d: served (%d, %x), baseline (%d, %x)",
					s, p, r, dst[r].Index, math.Float64bits(dst[r].Score),
					want[r].Index, math.Float64bits(want[r].Score))
			}
		}
	}
	return nil
}

// ServeBench is the factor-serving load benchmark behind
// BENCH_serve.json: a Zipf-skewed closed-loop load of simulated users
// against the sharded/batched/cached serving layer, swept over shard
// counts and cache sizes, against the naive unsharded scorer (full
// sort, fresh allocations, no cache, no batching) as the baseline.
// Every leg's rankings are verified bit-identical to the baseline
// scorer; a mismatch fails the experiment.
func ServeBench(cfg Config) (*Report, error) {
	subjects, objects, predicates := int64(2_000), int64(8_192), int64(64)
	rank := 16
	servedReqs, naiveReqs := 40_000, 4_000
	if cfg.Full {
		objects, rank = 32_768, 24
		servedReqs, naiveReqs = 200_000, 8_000
	}
	const (
		k       = 10
		clients = 8
	)

	rng := rand.New(rand.NewSource(cfg.Seed + 12))
	factors := [3]*matrix.Matrix{
		matrix.Random(int(subjects), rank, rng),
		matrix.Random(int(objects), rank, rng),
		matrix.Random(int(predicates), rank, rng),
	}
	lambda := make([]float64, rank)
	for r := range lambda {
		lambda[r] = 0.5 + rng.Float64()*3
	}
	model, err := serve.NewParafacModel(lambda, factors)
	if err != nil {
		return nil, err
	}

	rep := &Report{
		ID: "serve",
		Title: fmt.Sprintf("factor serving under Zipf load: %s users onto %d×%d×%d rank-%d, top-%d, %d closed-loop clients",
			gen.Human(serveUsers), subjects, objects, predicates, rank, k, clients),
		Headers: []string{"config", "queries", "QPS", "p50", "p99", "hit-rate", "batch-occ", "vs naive", "rankings"},
	}

	// Naive leg: the pre-serving-layer answer — every query scores the
	// full object universe, sorts it, and allocates as it goes.
	naive, err := closedLoop(cfg.Seed+100, clients, naiveReqs, subjects, predicates, k,
		func(s, p int64, kk int, dst []serve.Result) ([]serve.Result, error) {
			res := baseline.ParafacTopKObjects(lambda, factors, s, p, kk)
			dst = dst[:0]
			for _, r := range res {
				dst = append(dst, serve.Result{Index: r.Index, Score: r.Score})
			}
			return dst, nil
		})
	if err != nil {
		return nil, err
	}
	naiveQPS := naive.qps()
	naiveP99 := naive.percentile(0.99)
	rep.Rows = append(rep.Rows, []string{
		"naive unsharded", count(naiveReqs), fmt.Sprintf("%.0f", naiveQPS),
		fmtLatency(naive.percentile(0.50)), fmtLatency(naiveP99),
		"-", "-", "1.00x", "reference",
	})

	legs := []struct {
		name   string
		shards int
		cache  int
	}{
		{"shards=1 cache=1024", 1, 1024},
		{"shards=4 cache=0", 4, 0},
		{"shards=4 cache=256", 4, 256},
		{"shards=4 cache=1024", 4, 1024},
		{"shards=16 cache=1024", 16, 1024},
	}
	var bestQPS float64
	var bestP99 time.Duration
	for _, leg := range legs {
		srv, err := serve.New(model, serve.Config{
			Shards:    leg.shards,
			CacheSize: leg.cache,
			NoCache:   leg.cache == 0,
			MaxBatch:  32,
		})
		if err != nil {
			return nil, err
		}
		load, err := closedLoop(cfg.Seed+100, clients, servedReqs, subjects, predicates, k, srv.TopKObjects)
		if err != nil {
			srv.Close()
			return nil, err
		}
		verdict := "identical"
		if err := verifyRankings(srv, lambda, factors, cfg.Seed+200, 64, subjects, predicates, k); err != nil {
			srv.Close()
			return nil, fmt.Errorf("serve leg %q diverged from baseline: %w", leg.name, err)
		}
		st := srv.Stats()
		srv.Close()
		qps := load.qps()
		p99 := load.percentile(0.99)
		hit := "off"
		if leg.cache > 0 {
			hit = fmt.Sprintf("%.1f%%", 100*st.HitRate())
		}
		if qps > bestQPS {
			bestQPS, bestP99 = qps, p99
		}
		rep.Rows = append(rep.Rows, []string{
			leg.name, count(servedReqs), fmt.Sprintf("%.0f", qps),
			fmtLatency(load.percentile(0.50)), fmtLatency(p99),
			hit, fmt.Sprintf("%.2f", st.BatchOccupancy()),
			fmt.Sprintf("%.2fx", qps/naiveQPS), verdict,
		})
	}

	speedup := bestQPS / naiveQPS
	note := fmt.Sprintf("best served leg sustains %.1fx the naive scorer's QPS (p99 %s vs naive %s)",
		speedup, fmtLatency(bestP99), fmtLatency(naiveP99))
	if speedup < 5 || bestP99 > naiveP99 {
		note += " — VIOLATION: want ≥ 5x at equal or better p99"
	}
	rep.Notes = append(rep.Notes, note)
	rep.Notes = append(rep.Notes,
		"rankings on every leg verified bit-identical to the single-threaded baseline scorer (64-query sample per leg)")
	return rep, nil
}

// fmtLatency renders a latency with adaptive precision.
func fmtLatency(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	default:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	}
}
