package bench

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"github.com/haten2/haten2/internal/core"
	"github.com/haten2/haten2/internal/gen"
	"github.com/haten2/haten2/internal/matrix"
	"github.com/haten2/haten2/internal/serve"
	"github.com/haten2/haten2/internal/tensor"
)

// discoveryKB builds the Freebase-music stand-in with the paper's §IV-C
// preprocessing applied: scarce-predicate filtering, then TF-IDF-style
// reweighting (inside Tensor()).
func discoveryKB(cfg Config) (*gen.KB, *tensor.Tensor) {
	kb := gen.NewKB(gen.KBConfig{
		Seed:               cfg.Seed + 6,
		Theme:              "music",
		ConceptNames:       gen.FreebaseMusicNames,
		EntitiesPerConcept: 12,
		TriplesPerConcept:  400,
		NoiseTriples:       200,
	})
	kb = kb.FilterScarcePredicates(1)
	return kb, kb.Tensor()
}

// conceptOf maps entity ids to their planted concept index.
func conceptOf(kb *gen.KB, pick func(gen.Concept) []int64) map[int64]int {
	out := map[int64]int{}
	for ci, con := range kb.Concepts {
		for _, id := range pick(con) {
			out[id] = ci
		}
	}
	return out
}

// rowTotals computes per-row absolute sums of a factor matrix — the
// §IV-C normalization before ranking entities.
func rowTotals(m *matrix.Matrix) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		var s float64
		for _, v := range m.Row(i) {
			s += math.Abs(v)
		}
		out[i] = s
	}
	return out
}

// topIdx returns the indexes of the k largest normalized column scores,
// via the serving layer's selection kernel so the discovery tables and
// the server share one ranking (and one tie-break).
func topIdx(m *matrix.Matrix, col int, totals []float64, k int) []int64 {
	top, _ := serve.ColumnTopK(nil, m, col, totals, k, nil)
	out := make([]int64, len(top))
	for i, r := range top {
		out[i] = r.Index
	}
	return out
}

// majorityConcept returns the most common planted concept among ids and
// its share (the purity of the discovered group).
func majorityConcept(ids []int64, concept map[int64]int) (int, float64) {
	counts := map[int]int{}
	for _, id := range ids {
		if c, ok := concept[id]; ok {
			counts[c]++
		}
	}
	best, bestN := -1, 0
	for c, n := range counts {
		if n > bestN || (n == bestN && c < best) {
			best, bestN = c, n
		}
	}
	if len(ids) == 0 {
		return -1, 0
	}
	return best, float64(bestN) / float64(len(ids))
}

func shortNames(labels []string, ids []int64) string {
	parts := make([]string, len(ids))
	for i, id := range ids {
		l := labels[id]
		if cut := strings.LastIndex(l, "/"); cut >= 0 {
			l = l[cut+1:]
		}
		parts[i] = l
	}
	return strings.Join(parts, ", ")
}

// Table6 regenerates Table VI: concept discovery with HaTen2-PARAFAC on
// the Freebase-music stand-in. Because the data is generated from
// planted concepts, the harness also verifies recovery: each component's
// top entities must come predominantly from one planted concept.
func Table6(cfg Config) (*Report, error) {
	kb, x := discoveryKB(cfg)
	rank := len(kb.Concepts)
	c := newBenchCluster(benchMachines)
	res, err := core.ParafacALS(c, x, rank, core.Options{
		Variant: core.DRI, MaxIters: 40, Seed: cfg.Seed + 61, TrackFit: true, Tol: 1e-7,
	})
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:      "table6",
		Title:   "Concept discovery with HaTen2-PARAFAC on Freebase-music stand-in (Table VI)",
		Headers: []string{"component", "matched concept", "purity", "top subjects", "top objects", "top relations"},
	}
	subjOf := conceptOf(kb, func(c gen.Concept) []int64 { return c.Subjects })
	const k = 3
	sub, obj, rel := res.Model.Factors[0], res.Model.Factors[1], res.Model.Factors[2]
	subT, objT, relT := rowTotals(sub), rowTotals(obj), rowTotals(rel)
	var totalPurity float64
	for r := 0; r < rank; r++ {
		topS := topIdx(sub, r, subT, k)
		topO := topIdx(obj, r, objT, k)
		topR := topIdx(rel, r, relT, k)
		ci, purity := majorityConcept(topS, subjOf)
		name := "?"
		if ci >= 0 {
			name = kb.Concepts[ci].Name
		}
		totalPurity += purity
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("Concept%d", r+1), name, fmt.Sprintf("%.2f", purity),
			shortNames(kb.Subjects, topS), shortNames(kb.Objects, topO), shortNames(kb.Predicates, topR),
		})
	}
	avg := totalPurity / float64(rank)
	rep.Notes = append(rep.Notes, fmt.Sprintf("mean top-%d subject purity %.2f (1.00 = perfect planted-concept recovery)", k, avg))
	if fits := res.Fits; len(fits) > 0 {
		rep.Notes = append(rep.Notes, fmt.Sprintf("final fit %.3f after %d iterations", fits[len(fits)-1], res.Iters))
	}
	return rep, nil
}

// tuckerDiscovery runs the shared Tucker decomposition for Tables VII
// and VIII.
func tuckerDiscovery(cfg Config) (*gen.KB, *core.TuckerResult, error) {
	kb, x := discoveryKB(cfg)
	c := newBenchCluster(benchMachines)
	dim := len(kb.Concepts)
	res, err := core.TuckerALS(c, x, [3]int{dim, dim, dim}, core.Options{
		Variant: core.DRI, MaxIters: 25, Seed: cfg.Seed + 71, Tol: 1e-9,
	})
	if err != nil {
		return nil, nil, err
	}
	return kb, res, nil
}

// Table7 regenerates Table VII: the factor groups HaTen2-Tucker finds
// per mode on the Freebase-music stand-in.
func Table7(cfg Config) (*Report, error) {
	kb, res, err := tuckerDiscovery(cfg)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:      "table7",
		Title:   "Discovered factor groups with HaTen2-Tucker (Table VII)",
		Headers: []string{"group", "top entities"},
	}
	const k = 3
	modes := []struct {
		tag    string
		labels []string
	}{
		{"S", kb.Subjects}, {"O", kb.Objects}, {"R", kb.Predicates},
	}
	for m, md := range modes {
		f := res.Model.Factors[m]
		totals := rowTotals(f)
		for colIdx := 0; colIdx < f.Cols; colIdx++ {
			top := topIdx(f, colIdx, totals, k)
			rep.Rows = append(rep.Rows, []string{
				fmt.Sprintf("%s%d", md.tag, colIdx+1),
				shortNames(md.labels, top),
			})
		}
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf("final ‖G‖ %.3f after %d iterations", res.CoreNorms[len(res.CoreNorms)-1], res.Iters))
	return rep, nil
}

// Table8 regenerates Table VIII: Tucker concepts formed by the largest
// core-tensor entries, each combining a subject, object, and relation
// group — the "possibly overlapping groups" structure the paper
// highlights over PARAFAC's diagonal coupling.
func Table8(cfg Config) (*Report, error) {
	kb, res, err := tuckerDiscovery(cfg)
	if err != nil {
		return nil, err
	}
	g := res.Model.Core
	d := g.Dims()
	type ce struct {
		p, q, r int64
		v       float64
	}
	var cells []ce
	for p := int64(0); p < d[0]; p++ {
		for q := int64(0); q < d[1]; q++ {
			for r := int64(0); r < d[2]; r++ {
				cells = append(cells, ce{p, q, r, math.Abs(g.At(p, q, r))})
			}
		}
	}
	// Equal |g| cells are ordered by coordinate so the table is a
	// deterministic function of the core, like every other top-k path.
	sort.Slice(cells, func(a, b int) bool {
		if cells[a].v != cells[b].v {
			return cells[a].v > cells[b].v
		}
		if cells[a].p != cells[b].p {
			return cells[a].p < cells[b].p
		}
		if cells[a].q != cells[b].q {
			return cells[a].q < cells[b].q
		}
		return cells[a].r < cells[b].r
	})
	rep := &Report{
		ID:      "table8",
		Title:   "Tucker concepts from the largest core entries (Table VIII)",
		Headers: []string{"concept", "groups", "top subjects", "top objects", "top relations"},
	}
	const k = 3
	sub, obj, rel := res.Model.Factors[0], res.Model.Factors[1], res.Model.Factors[2]
	subT, objT, relT := rowTotals(sub), rowTotals(obj), rowTotals(rel)
	n := 3
	if len(cells) < n {
		n = len(cells)
	}
	for i := 0; i < n; i++ {
		c := cells[i]
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("Concept%d", i+1),
			fmt.Sprintf("(S%d,O%d,R%d) |g|=%.2f", c.p+1, c.q+1, c.r+1, c.v),
			shortNames(kb.Subjects, topIdx(sub, int(c.p), subT, k)),
			shortNames(kb.Objects, topIdx(obj, int(c.q), objT, k)),
			shortNames(kb.Predicates, topIdx(rel, int(c.r), relT, k)),
		})
	}
	return rep, nil
}

// All runs every experiment in paper order.
func All(cfg Config) ([]*Report, error) {
	var reports []*Report
	reports = append(reports, Table2())
	for _, f := range []func(Config) (*Report, error){Table3, Table4} {
		r, err := f(cfg)
		if err != nil {
			return nil, err
		}
		reports = append(reports, r)
	}
	reports = append(reports, Table5(cfg))
	for _, f := range []func(Config) (*Report, error){
		Fig1a, Fig1b, Fig1c, Fig7a, Fig7b, Fig7c, Fig8,
		Table6, Table7, Table8, TableNELL, Ablation, CombinerAblation,
	} {
		r, err := f(cfg)
		if err != nil {
			return nil, err
		}
		reports = append(reports, r)
	}
	return reports, nil
}

// TableNELL runs the concept-discovery pipeline on the NELL stand-in —
// the paper presents these results in its supplementary material
// ("more results on the NELL data is in [8]").
func TableNELL(cfg Config) (*Report, error) {
	kb := gen.NewKB(gen.KBConfig{
		Seed:               cfg.Seed + 9,
		Theme:              "nell",
		ConceptNames:       gen.NELLNames,
		EntitiesPerConcept: 12,
		TriplesPerConcept:  400,
		NoiseTriples:       150,
	}).FilterScarcePredicates(1)
	x := kb.Tensor()
	rank := len(kb.Concepts)
	c := newBenchCluster(benchMachines)
	res, err := core.ParafacALS(c, x, rank, core.Options{
		Variant: core.DRI, MaxIters: 40, Seed: cfg.Seed + 91, TrackFit: true, Tol: 1e-7,
	})
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:      "nell",
		Title:   "Concept discovery with HaTen2-PARAFAC on NELL stand-in (supplementary material)",
		Headers: []string{"component", "matched concept", "purity", "top noun phrases", "top contexts"},
	}
	subjOf := conceptOf(kb, func(c gen.Concept) []int64 { return c.Subjects })
	const k = 3
	sub, rel := res.Model.Factors[0], res.Model.Factors[2]
	subT, relT := rowTotals(sub), rowTotals(rel)
	var totalPurity float64
	for r := 0; r < rank; r++ {
		topS := topIdx(sub, r, subT, k)
		topR := topIdx(rel, r, relT, k)
		ci, purity := majorityConcept(topS, subjOf)
		name := "?"
		if ci >= 0 {
			name = kb.Concepts[ci].Name
		}
		totalPurity += purity
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("Concept%d", r+1), name, fmt.Sprintf("%.2f", purity),
			shortNames(kb.Subjects, topS), shortNames(kb.Predicates, topR),
		})
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf("mean top-%d purity %.2f", k, totalPurity/float64(rank)))
	return rep, nil
}
