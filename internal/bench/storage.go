package bench

import (
	"errors"
	"fmt"

	"github.com/haten2/haten2/internal/core"
	"github.com/haten2/haten2/internal/dfs"
	"github.com/haten2/haten2/internal/gen"
	"github.com/haten2/haten2/internal/mr"
	"github.com/haten2/haten2/internal/tensor"
)

// Storage measures the simulated-time overhead of the DFS durability
// machinery — checksum verification, replica failover past corrupt
// copies, read-repair back to the target replication factor, and
// checkpoint-restart after unrecoverable data loss — against a clean
// replication-3 baseline, verifying on every row the subsystem's
// standing invariant: storage faults change simulated time and the
// recovery counters, never factor bytes.
//
// This is the BENCH_storage.json experiment (`haten2bench -exp storage
// -storageout BENCH_storage.json`).
func Storage(cfg Config) (*Report, error) {
	dim, nnz := int64(100), 50_000
	iters := 3
	if cfg.Full {
		dim, nnz = 200, 400_000
		iters = 5
	}
	const rank = 3
	x := gen.Random(cfg.Seed, [3]int64{dim, dim, dim}, nnz)
	opt := core.Options{Variant: core.DRI, MaxIters: iters, Tol: 1e-12, Seed: cfg.Seed}

	// 256 KiB blocks instead of the 64 MiB default so the megabyte-scale
	// bench files span many blocks — the unit corruption and placement
	// act on.
	const blockSize = 256 << 10
	clusterCfg := mr.Config{Machines: 8, SlotsPerMachine: 4}
	newCluster := func(repl int, plan *mr.FaultPlan) *mr.Cluster {
		c := mr.NewClusterWithFS(clusterCfg,
			dfs.New(dfs.Options{BlockSize: blockSize, Replication: repl, Machines: clusterCfg.Machines}))
		c.SetTracer(cfg.Tracer)
		c.InstallFaultPlan(plan)
		return c
	}

	scenarios := []struct {
		label string
		repl  int
		plan  func(seed int64) *mr.FaultPlan
	}{
		{"repl 3 clean", 3, nil},
		{"repl 1 clean", 1, nil},
		{"repl 3 corrupt 5%", 3, func(s int64) *mr.FaultPlan {
			return &mr.FaultPlan{Seed: s, BlockCorruptRate: 0.05}
		}},
		{"repl 3 corrupt 10% + loss 5%", 3, func(s int64) *mr.FaultPlan {
			return &mr.FaultPlan{Seed: s, BlockCorruptRate: 0.10, ReplicaLossRate: 0.05}
		}},
		// At these rates a 3-way replicated block loses all copies often
		// enough that runs rarely finish; 5-way replication absorbs the
		// same fault pressure (survival odds per block rise from ~97.8% to
		// ~99.8%), which is exactly the durability-for-storage trade
		// HDFS's dfs.replication knob buys.
		{"repl 5 corrupt 20% + loss 10%", 5, func(s int64) *mr.FaultPlan {
			return &mr.FaultPlan{Seed: s, BlockCorruptRate: 0.20, ReplicaLossRate: 0.10}
		}},
	}

	rep := &Report{
		ID: "storage",
		Title: fmt.Sprintf("storage-failure recovery overhead, PARAFAC-DRI %d iterations (%s nnz, rank %d, %d KiB blocks)",
			iters, gen.Human(int64(nnz)), rank, blockSize>>10),
		Headers: []string{
			"scenario", "sim-time", "overhead", "corrupt", "lost", "failover-B", "scrub-B", "storage-time", "outputs",
		},
	}

	var baseModel *tensor.Kruskal
	var baseSim float64
	row := func(label string, tot mr.Totals, model *tensor.Kruskal) {
		outputs := "identical"
		if !kruskalBitsEqual(baseModel, model) {
			outputs = "DIVERGED"
			rep.Notes = append(rep.Notes,
				fmt.Sprintf("DETERMINISM VIOLATION: scenario %q changed the decomposition output", label))
		}
		rep.Rows = append(rep.Rows, []string{
			label,
			seconds(tot.SimSeconds),
			fmt.Sprintf("%.2fx", tot.SimSeconds/baseSim),
			count(tot.CorruptBlocks),
			count(tot.LostReplicas),
			count(tot.FailoverBytes),
			count(tot.ScrubBytes),
			seconds(tot.StorageSeconds),
			outputs,
		})
	}

	for _, sc := range scenarios {
		// Aggressive plans can leave a block with no good replica; data
		// loss is a legitimate outcome, so scan a few seeds for a run the
		// cluster survives and note how many died.
		var lost int
		for s := cfg.Seed; ; s++ {
			if s >= cfg.Seed+20 {
				return nil, fmt.Errorf("scenario %q: 20 consecutive seeds all hit data loss", sc.label)
			}
			var plan *mr.FaultPlan
			if sc.plan != nil {
				plan = sc.plan(s)
			}
			c := newCluster(sc.repl, plan)
			res, err := core.ParafacALS(c, x, rank, opt)
			if err != nil {
				var dl *dfs.ErrDataLoss
				if errors.As(err, &dl) {
					lost++
					continue
				}
				return nil, fmt.Errorf("scenario %q: %w", sc.label, err)
			}
			if baseModel == nil {
				baseModel, baseSim = res.Model, c.Totals().SimSeconds
			}
			row(sc.label, c.Totals(), res.Model)
			break
		}
		if lost > 0 {
			rep.Notes = append(rep.Notes,
				fmt.Sprintf("scenario %q: %d seed(s) hit unrecoverable data loss before one survived", sc.label, lost))
		}
	}

	// Data loss + checkpoint restart: at replication 1 a corrupt block
	// has no surviving sibling, the run dies with *dfs.ErrDataLoss, and a
	// fresh cluster resumes from the last checkpoint on the repaired
	// volume (faults cleared). Both clusters' simulated time is charged.
	ckOpt := opt
	ckOpt.Checkpoint = "bench/storage/parafac"
	var c1 *mr.Cluster
	for s := cfg.Seed; ; s++ {
		if s >= cfg.Seed+40 {
			return nil, fmt.Errorf("data-loss scenario: no seed under %d died after a committed checkpoint", 40)
		}
		c := newCluster(1, &mr.FaultPlan{Seed: s, BlockCorruptRate: 0.002})
		_, err := core.ParafacALS(c, x, rank, ckOpt)
		var dl *dfs.ErrDataLoss
		if err == nil || !errors.As(err, &dl) {
			if err == nil {
				continue // survived; need a doomed run
			}
			return nil, fmt.Errorf("data-loss scenario: %w", err)
		}
		c1 = c
		break
	}
	c2 := mr.NewClusterWithFS(clusterCfg, c1.FS())
	c2.SetTracer(cfg.Tracer)
	c2.InstallFaultPlan(&mr.FaultPlan{}) // clears the storage plan: volume repaired
	res, err := core.ParafacALS(c2, x, rank, ckOpt)
	if err != nil {
		return nil, fmt.Errorf("resume after data loss: %w", err)
	}
	var tot mr.Totals
	t1, t2 := c1.Totals(), c2.Totals()
	tot.SimSeconds = t1.SimSeconds + t2.SimSeconds
	tot.StorageSeconds = t1.StorageSeconds + t2.StorageSeconds
	// Counters come from the shared FS, which also sees the fatal
	// driver-level read that killed the first cluster between jobs.
	fst := c2.FS().Stats()
	tot.CorruptBlocks = fst.CorruptBlocks
	tot.LostReplicas = fst.LostReplicas
	tot.FailoverBytes = fst.FailoverBytes
	tot.ScrubBytes = fst.ScrubBytes
	row("repl 1 data loss + ckpt resume", tot, res.Model)

	rep.Notes = append(rep.Notes,
		"every scenario must report outputs=identical: corruption and loss are pure hash decisions on replica metadata, so they can change time and counters but never factor bytes",
		"failover-B counts re-read bytes past corrupt copies; scrub-B counts read-repair traffic restoring the target replication factor",
		"data loss + resume charges both clusters: the doomed run's completed iterations plus the restart from the last checkpoint",
	)
	return rep, nil
}
