package obs_test

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"github.com/haten2/haten2/internal/core"
	"github.com/haten2/haten2/internal/dfs"
	"github.com/haten2/haten2/internal/gen"
	"github.com/haten2/haten2/internal/mr"
	"github.com/haten2/haten2/internal/obs"
)

var update = flag.Bool("update", false, "rewrite the golden trace fixtures in testdata/")

// goldenRun executes a small 2-iteration ALS run on a fresh cluster
// with a tracer attached and returns the Chrome trace bytes. Every
// input is pinned (seed, tensor shape, cluster size, iteration count),
// so the bytes are a complete fingerprint of the engine's scheduling,
// cost attribution, and plan structure for that method/variant.
func goldenRun(t *testing.T, method string, v core.Variant) []byte {
	t.Helper()
	x := gen.Random(11, [3]int64{6, 6, 6}, 24)
	c := mr.NewCluster(mr.Config{Machines: 2, SlotsPerMachine: 2})
	tr := obs.NewTracer()
	c.SetTracer(tr)
	opt := core.Options{Variant: v, MaxIters: 2, Tol: 1e-12, Seed: 7}
	var err error
	switch method {
	case "parafac":
		_, err = core.ParafacALS(c, x, 2, opt)
	case "tucker":
		_, err = core.TuckerALS(c, x, [3]int{2, 2, 2}, opt)
	default:
		t.Fatalf("unknown method %q", method)
	}
	if err != nil {
		t.Fatalf("%s/%v: %v", method, v, err)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func goldenPath(method string, v core.Variant) string {
	return filepath.Join("testdata", fmt.Sprintf("%s-%s.trace.json", method, strings.ToLower(v.String())))
}

// TestGoldenTraces pins the full trace of every method x variant pair
// byte-for-byte. A diff here means the engine's simulated schedule or
// the planner's job structure changed — either intentionally (rerun
// with -update and review the diff) or as a determinism regression.
func TestGoldenTraces(t *testing.T) {
	for _, method := range []string{"parafac", "tucker"} {
		for _, v := range []core.Variant{core.Naive, core.DNN, core.DRN, core.DRI} {
			method, v := method, v
			t.Run(fmt.Sprintf("%s-%v", method, v), func(t *testing.T) {
				got := goldenRun(t, method, v)
				path := goldenPath(method, v)
				if *update {
					if err := os.WriteFile(path, got, 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("%v (run `go test ./internal/obs -run Golden -update` to create)", err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("trace differs from %s (%d vs %d bytes); rerun with -update if the change is intentional",
						path, len(got), len(want))
				}
			})
		}
	}
}

// goldenStorageRun is goldenRun on a tiny-block, replication-3 DFS
// under a pinned corruption/loss plan (seed 1 survives: every bad
// replica has a good sibling to fail over to). The trace gains
// "failover" and "scrub" phases whose durations come from the
// deterministic storage counters.
func goldenStorageRun(t *testing.T) []byte {
	t.Helper()
	x := gen.Random(11, [3]int64{6, 6, 6}, 24)
	c := mr.NewClusterWithFS(mr.Config{Machines: 2, SlotsPerMachine: 2},
		dfs.New(dfs.Options{BlockSize: 256, Replication: 3, Machines: 3}))
	c.InstallFaultPlan(&mr.FaultPlan{Seed: 1, BlockCorruptRate: 0.1, ReplicaLossRate: 0.05})
	tr := obs.NewTracer()
	c.SetTracer(tr)
	_, err := core.ParafacALS(c, x, 2, core.Options{Variant: core.DRI, MaxIters: 2, Tol: 1e-12, Seed: 7})
	if err != nil {
		t.Fatalf("storage golden run: %v", err)
	}
	if tot := c.Totals(); tot.CorruptBlocks == 0 || tot.LostReplicas == 0 {
		t.Fatalf("pinned storage plan injected nothing: %+v", tot)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGoldenTraceStorage pins the PARAFAC-DRI trace under the seeded
// storage fault plan byte-for-byte, including the failover and scrub
// spans, across GOMAXPROCS settings: replica failover and read-repair
// are charged from pure hash decisions, so host scheduling owes them
// nothing.
func TestGoldenTraceStorage(t *testing.T) {
	got := goldenStorageRun(t)
	if !bytes.Contains(got, []byte(`"failover"`)) || !bytes.Contains(got, []byte(`"scrub"`)) {
		t.Fatal("storage trace lacks failover/scrub phases")
	}
	path := filepath.Join("testdata", "parafac-dri-storage.trace.json")
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/obs -run Golden -update` to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("storage trace differs from %s (%d vs %d bytes); rerun with -update if intentional",
			path, len(got), len(want))
	}
	for _, procs := range []int{1, 4, 16} {
		func() {
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
			if again := goldenStorageRun(t); !bytes.Equal(again, want) {
				t.Fatalf("GOMAXPROCS=%d: storage trace differs from golden", procs)
			}
		}()
	}
}

// TestGoldenTraceAcrossProcs is the headline acceptance check: the
// 2-iteration PARAFAC-DRI Chrome trace must be byte-identical across
// GOMAXPROCS settings and across repeated runs, and must match the
// checked-in golden. Simulated time owes nothing to host scheduling.
func TestGoldenTraceAcrossProcs(t *testing.T) {
	want, err := os.ReadFile(goldenPath("parafac", core.DRI))
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/obs -run Golden -update` first)", err)
	}
	for _, procs := range []int{1, 4, 16} {
		for rep := 0; rep < 2; rep++ {
			func() {
				defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
				got := goldenRun(t, "parafac", core.DRI)
				if !bytes.Equal(got, want) {
					t.Fatalf("GOMAXPROCS=%d rep=%d: trace differs from golden", procs, rep)
				}
			}()
		}
	}
}
