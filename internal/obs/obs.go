// Package obs is the deterministic tracing and metrics layer of the
// simulator. A Tracer records a tree of spans — ALS runs, iterations,
// plan stages, MapReduce jobs, and map/shuffle/reduce phases — stamped
// with *simulated* time from the engine's cost model, never the wall
// clock. Because every timestamp is derived from the deterministic
// counters of section 3 of DESIGN.md and spans are recorded in
// submission order, an exported trace is byte-identical across runs and
// GOMAXPROCS settings, which lets golden trace files serve as tier-1
// fixtures pinning the job plan, phase ordering, and counter
// attribution of every algorithm variant.
package obs

import "sync"

// Counter is one named integer measurement attached to a span (records
// shuffled, bytes read, retries, ...). Counters are kept as an ordered
// slice, not a map, so exporters emit them in a fixed order.
type Counter struct {
	Key string
	Val int64
}

// Span is one node of the trace tree. Start and Dur are simulated
// seconds since the start of the trace.
type Span struct {
	// ID is the 1-based span identifier; Parent is the ID of the
	// enclosing span, or 0 for roots.
	ID     int
	Parent int
	// Kind classifies the span ("run", "iter", "mode", "plan", "stage",
	// "job", "phase"); Name identifies it within its kind.
	Kind string
	Name string
	// Start and Dur are in simulated seconds.
	Start    float64
	Dur      float64
	Counters []Counter
}

// Tracer accumulates spans on a simulated clock. The zero value is
// ready to use, and all methods are safe on a nil receiver (they do
// nothing), so instrumented code needs no "is tracing on?" branches
// beyond a nil check the caller already paid for.
//
// The clock advances only through Emit: a leaf span carries its own
// simulated duration (computed by the engine's cost model), and an
// enclosing Begin/End span spans exactly the clock its children
// advanced. Methods are serialized by a mutex, but — like the fault
// plan's job sequence — deterministic span *order* assumes spans are
// submitted in a deterministic order, which holds because drivers run
// job chains sequentially.
type Tracer struct {
	mu    sync.Mutex
	clock float64
	spans []Span
	stack []int // open span IDs, innermost last
}

// NewTracer returns an empty tracer with its clock at zero.
func NewTracer() *Tracer { return &Tracer{} }

// Begin opens a span enclosing every span recorded until the matching
// End. It returns the span's ID (0 on a nil tracer).
func (t *Tracer) Begin(kind, name string) int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	id := len(t.spans) + 1
	t.spans = append(t.spans, Span{
		ID:     id,
		Parent: t.top(),
		Kind:   kind,
		Name:   name,
		Start:  t.clock,
		Dur:    -1, // open; set by End
	})
	t.stack = append(t.stack, id)
	return id
}

// End closes the span opened by Begin, setting its duration to the
// simulated time its children advanced and attaching cs. Inner spans
// still open are closed too (error paths abandon them); ending an
// unknown or already-closed ID is a no-op.
func (t *Tracer) End(id int, cs ...Counter) {
	if t == nil || id == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	at := -1
	for i := len(t.stack) - 1; i >= 0; i-- {
		if t.stack[i] == id {
			at = i
			break
		}
	}
	if at < 0 {
		return
	}
	for _, open := range t.stack[at:] {
		sp := &t.spans[open-1]
		sp.Dur = t.clock - sp.Start
	}
	t.stack = t.stack[:at]
	sp := &t.spans[id-1]
	sp.Counters = append(sp.Counters, cs...)
}

// Emit records a leaf span of the given simulated duration under the
// innermost open span and advances the clock by dur. This is the only
// way simulated time passes.
func (t *Tracer) Emit(kind, name string, dur float64, cs ...Counter) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	id := len(t.spans) + 1
	t.spans = append(t.spans, Span{
		ID:       id,
		Parent:   t.top(),
		Kind:     kind,
		Name:     name,
		Start:    t.clock,
		Dur:      dur,
		Counters: cs,
	})
	t.clock += dur
}

// top returns the innermost open span ID, or 0. Callers hold t.mu.
func (t *Tracer) top() int {
	if len(t.stack) == 0 {
		return 0
	}
	return t.stack[len(t.stack)-1]
}

// Clock returns the simulated seconds accumulated so far.
func (t *Tracer) Clock() float64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.clock
}

// Spans returns a copy of the recorded spans in submission order. Open
// spans have Dur == -1.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Reset discards all spans and rewinds the clock to zero, keeping the
// span buffer's capacity for the next run.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.clock = 0
	t.spans = t.spans[:0]
	t.stack = t.stack[:0]
}

// counter returns the value of the named counter on s, or 0.
func counter(s Span, key string) int64 {
	for _, c := range s.Counters {
		if c.Key == key {
			return c.Val
		}
	}
	return 0
}
