package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestSpanNesting(t *testing.T) {
	tr := NewTracer()
	run := tr.Begin("run", "r")
	iter := tr.Begin("iter", "i0")
	tr.Emit("job", "j1", 2.5, Counter{Key: "recs", Val: 10})
	tr.Emit("job", "j2", 1.5)
	tr.End(iter)
	tr.End(run, Counter{Key: "total", Val: 2})
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("want 4 spans, got %d", len(spans))
	}
	if spans[0].Parent != 0 || spans[1].Parent != spans[0].ID ||
		spans[2].Parent != spans[1].ID || spans[3].Parent != spans[1].ID {
		t.Fatalf("wrong parents: %+v", spans)
	}
	if got := tr.Clock(); got != 4.0 {
		t.Fatalf("clock: want 4.0, got %g", got)
	}
	if spans[0].Dur != 4.0 || spans[1].Dur != 4.0 {
		t.Fatalf("enclosing spans should cover their children's time: %+v", spans[:2])
	}
	if spans[2].Start != 0 || spans[3].Start != 2.5 {
		t.Fatalf("leaf starts should tile the clock: %+v", spans[2:])
	}
	if counter(spans[3], "total") != 0 || counter(spans[0], "total") != 2 {
		t.Fatal("End counters attached to the wrong span")
	}
	if counter(spans[2], "recs") != 10 || counter(spans[2], "absent") != 0 {
		t.Fatal("counter lookup wrong")
	}
}

func TestEndClosesAbandonedChildren(t *testing.T) {
	tr := NewTracer()
	outer := tr.Begin("run", "r")
	tr.Begin("iter", "abandoned") // error path never ends it
	tr.Emit("job", "j", 1.0)
	tr.End(outer)
	spans := tr.Spans()
	if spans[1].Dur != 1.0 {
		t.Fatalf("abandoned child should be closed by the outer End, got dur %g", spans[1].Dur)
	}
	// Ending an already-closed or unknown ID is a no-op.
	tr.End(outer)
	tr.End(999)
	if got := len(tr.Spans()); got != 3 {
		t.Fatalf("no-op Ends must not add spans, got %d", got)
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	id := tr.Begin("run", "r")
	tr.End(id)
	tr.Emit("job", "j", 1.0)
	tr.Reset()
	if tr.Clock() != 0 || tr.Spans() != nil {
		t.Fatal("nil tracer should observe nothing")
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "[]\n" {
		t.Fatalf("nil tracer should export an empty array, got %q", buf.String())
	}
}

func TestReset(t *testing.T) {
	tr := NewTracer()
	tr.Emit("job", "j", 3.0)
	tr.Reset()
	if tr.Clock() != 0 || len(tr.Spans()) != 0 {
		t.Fatal("Reset should rewind the tracer")
	}
	tr.Emit("job", "k", 1.0)
	if s := tr.Spans(); len(s) != 1 || s[0].ID != 1 || s[0].Start != 0 {
		t.Fatalf("tracer unusable after Reset: %+v", s)
	}
}

func TestChromeTraceFormat(t *testing.T) {
	tr := NewTracer()
	id := tr.Begin("run", `quo"te\`)
	tr.Emit("job", "j\x01", 0.5, Counter{Key: "recs", Val: 7})
	tr.End(id)
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "[\n") || !strings.HasSuffix(out, "\n]\n") {
		t.Fatalf("not a JSON array: %q", out)
	}
	for _, want := range []string{
		`{"name":"quo\"te\\","cat":"run","ph":"X","ts":0,"dur":500000,"pid":1,"tid":1,"args":{"id":1,"parent":0}}`,
		`{"name":"j\u0001","cat":"job","ph":"X","ts":0,"dur":500000,"pid":1,"tid":1,"args":{"id":2,"parent":1,"recs":7}}`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %s in:\n%s", want, out)
		}
	}
	// Repeated exports are byte-identical.
	var buf2 bytes.Buffer
	if err := tr.WriteChromeTrace(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("repeated exports differ")
	}
}

func TestDurationsTile(t *testing.T) {
	// Sibling phases with awkward fractional durations must tile the
	// parent exactly in integer microseconds (ends are rounded, not
	// durations, so rounding never accumulates).
	tr := NewTracer()
	id := tr.Begin("job", "j")
	tr.Emit("phase", "a", 1.0000004)
	tr.Emit("phase", "b", 1.0000004)
	tr.Emit("phase", "c", 1.0000004)
	tr.End(id)
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	spans := tr.Spans()
	sum := int64(0)
	for _, s := range spans[1:] {
		sum += usec(s.Start+s.Dur) - usec(s.Start)
	}
	if parent := usec(spans[0].Start+spans[0].Dur) - usec(spans[0].Start); parent != sum {
		t.Fatalf("phases (%dus) do not tile the job (%dus)", sum, parent)
	}
}

func TestWriteSummary(t *testing.T) {
	tr := NewTracer()
	for i := 0; i < 2; i++ {
		id := tr.Begin("job", "imhp(X,1,2)")
		tr.Emit("phase", "map", 10)
		tr.End(id,
			Counter{Key: "shuffle.records", Val: 100},
			Counter{Key: "shuffle.bytes", Val: 2 << 20},
			Counter{Key: "input.bytes", Val: 1 << 20},
			Counter{Key: "output.bytes", Val: 1 << 19},
			Counter{Key: "retries", Val: 1},
		)
	}
	id := tr.Begin("job", "merge")
	tr.Emit("phase", "map", 5)
	tr.End(id, Counter{Key: "shuffle.records", Val: 7})
	tr.End(tr.Begin("run", "ignored-kind"))
	var buf bytes.Buffer
	if err := tr.WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("want header + 2 job rows + total, got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "imhp(X,1,2)") || !strings.HasPrefix(lines[2], "merge") {
		t.Fatalf("rows out of first-seen order:\n%s", out)
	}
	for _, want := range []string{"200", "4.00", "20.00", "2", "207"} {
		// 2 runs x 100 shuffle recs, 2x2MB shuffle, 2x10s sim, 2
		// retries, 207 total records.
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}
