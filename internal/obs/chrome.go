package obs

import (
	"io"
	"math"
	"strconv"
	"sync"
)

// bufPool recycles the byte buffers the exporters render into, so a
// driver exporting a trace every iteration (or the golden tests
// exporting hundreds) allocates the buffer once. The poolreturn lint
// check enforces that every getBuf is paired with a putBuf.
var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 1<<16); return &b }}

func getBuf() *[]byte {
	b := bufPool.Get().(*[]byte)
	*b = (*b)[:0]
	return b
}

func putBuf(b *[]byte) { bufPool.Put(b) }

// WriteChromeTrace writes the spans as Chrome trace_event JSON (the
// format chrome://tracing and Perfetto load): one complete ("ph":"X")
// event per span, one event per line, timestamps in integer simulated
// microseconds. The output is rendered with no maps and no
// floating-point formatting, so it is byte-identical for identical
// span sequences — the property the golden trace fixtures pin.
//
// Span nesting is conveyed twice: structurally, by the id/parent pair
// in each event's args (what the golden diffs read), and temporally,
// by duration containment on the single emitted thread (what the
// trace viewers render).
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, "[]\n")
		return err
	}
	t.mu.Lock()
	spans := t.spans
	buf := getBuf()
	b := *buf
	b = append(b, '[', '\n')
	for i, s := range spans {
		if i > 0 {
			b = append(b, ',', '\n')
		}
		b = appendEvent(b, s)
	}
	b = append(b, '\n', ']', '\n')
	*buf = b
	t.mu.Unlock()
	_, err := w.Write(*buf)
	putBuf(buf)
	return err
}

// appendEvent renders one span as a trace_event object.
func appendEvent(b []byte, s Span) []byte {
	ts := usec(s.Start)
	dur := int64(0)
	if s.Dur > 0 {
		// Render the end, not the duration, so sibling phases tile the
		// parent exactly despite rounding.
		dur = usec(s.Start+s.Dur) - ts
	}
	b = append(b, `{"name":`...)
	b = appendJSONString(b, s.Name)
	b = append(b, `,"cat":`...)
	b = appendJSONString(b, s.Kind)
	b = append(b, `,"ph":"X","ts":`...)
	b = strconv.AppendInt(b, ts, 10)
	b = append(b, `,"dur":`...)
	b = strconv.AppendInt(b, dur, 10)
	b = append(b, `,"pid":1,"tid":1,"args":{"id":`...)
	b = strconv.AppendInt(b, int64(s.ID), 10)
	b = append(b, `,"parent":`...)
	b = strconv.AppendInt(b, int64(s.Parent), 10)
	for _, c := range s.Counters {
		b = append(b, ',')
		b = appendJSONString(b, c.Key)
		b = append(b, ':')
		b = strconv.AppendInt(b, c.Val, 10)
	}
	b = append(b, '}', '}')
	return b
}

// usec converts simulated seconds to integer microseconds.
func usec(sec float64) int64 { return int64(math.Round(sec * 1e6)) }

// appendJSONString appends s as a JSON string literal. Span names are
// plain ASCII identifiers and file names, but escape defensively so an
// odd job name can never corrupt the JSON.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b = append(b, '\\', c)
		case c < 0x20:
			const hex = "0123456789abcdef"
			b = append(b, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
		default:
			b = append(b, c)
		}
	}
	return append(b, '"')
}
