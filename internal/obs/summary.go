package obs

import (
	"fmt"
	"io"
)

// summaryRow aggregates the job spans sharing one job name.
type summaryRow struct {
	name    string
	jobs    int64
	sim     float64
	shufRec int64
	shufMB  float64
	inMB    float64
	outMB   float64
	retries int64
	waste   int64
}

// WriteSummary writes the compact plan-summary table: one row per
// distinct job name in first-seen order (which, for an ALS run, reads
// as the plan: stage, contract, merge, repeated per mode and
// iteration), aggregated over every execution of that job, plus a
// totals row. Counter keys are the ones the engine attaches to its
// "job" spans (see internal/mr).
func (t *Tracer) WriteSummary(w io.Writer) error {
	rows := []*summaryRow{}
	index := map[string]*summaryRow{}
	total := &summaryRow{name: "total"}
	nameW := len("job")
	for _, s := range t.Spans() {
		if s.Kind != "job" {
			continue
		}
		r := index[s.Name]
		if r == nil {
			r = &summaryRow{name: s.Name}
			index[s.Name] = r
			rows = append(rows, r)
			if len(s.Name) > nameW {
				nameW = len(s.Name)
			}
		}
		for _, dst := range [2]*summaryRow{r, total} {
			dst.jobs++
			dst.sim += s.Dur
			dst.shufRec += counter(s, "shuffle.records")
			dst.shufMB += float64(counter(s, "shuffle.bytes")) / (1 << 20)
			dst.inMB += float64(counter(s, "input.bytes")) / (1 << 20)
			dst.outMB += float64(counter(s, "output.bytes")) / (1 << 20)
			dst.retries += counter(s, "retries")
			dst.waste += counter(s, "waste.records")
		}
	}
	if _, err := fmt.Fprintf(w, "%-*s  %5s  %10s  %12s  %9s  %9s  %9s  %7s  %10s\n",
		nameW, "job", "jobs", "sim(s)", "shuf.recs", "shuf.MB", "in.MB", "out.MB", "retries", "waste.recs"); err != nil {
		return err
	}
	for _, r := range append(rows, total) {
		if _, err := fmt.Fprintf(w, "%-*s  %5d  %10.2f  %12d  %9.2f  %9.2f  %9.2f  %7d  %10d\n",
			nameW, r.name, r.jobs, r.sim, r.shufRec, r.shufMB, r.inMB, r.outMB, r.retries, r.waste); err != nil {
			return err
		}
	}
	return nil
}
