package tensor

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteCOO writes t in the plain-text coordinate format HaTen2's Hadoop
// implementation used: one entry per line, whitespace-separated 0-based
// indices followed by the value. A header line records the shape:
//
//	# tensor <d1> <d2> ... <dN>
//	i j k v
func WriteCOO(w io.Writer, t *Tensor) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# tensor"); err != nil {
		return err
	}
	for _, d := range t.dims {
		if _, err := fmt.Fprintf(bw, " %d", d); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(bw); err != nil {
		return err
	}
	o := t.Order()
	for p := 0; p < t.NNZ(); p++ {
		idx := t.idx[p*o : (p+1)*o]
		for _, c := range idx {
			if _, err := fmt.Fprintf(bw, "%d ", c); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(bw, "%g\n", t.val[p]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCOO parses the format written by WriteCOO. Lines that are empty or
// start with '#' (other than the shape header) are skipped. If no shape
// header is present, the shape is inferred as max-index+1 per mode.
func ReadCOO(r io.Reader) (*Tensor, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var dims []int64
	var rows [][]int64
	var vals []float64
	order := -1
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(strings.TrimPrefix(line, "#"))
			if len(fields) >= 2 && fields[0] == "tensor" {
				dims = dims[:0]
				for _, f := range fields[1:] {
					d, err := strconv.ParseInt(f, 10, 64)
					if err != nil {
						return nil, fmt.Errorf("tensor: line %d: bad shape header: %v", lineNo, err)
					}
					if d <= 0 {
						return nil, fmt.Errorf("tensor: line %d: nonpositive dimension %d in shape header", lineNo, d)
					}
					dims = append(dims, d)
				}
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("tensor: line %d: want at least one index and a value, got %q", lineNo, line)
		}
		if order == -1 {
			order = len(fields) - 1
		} else if len(fields)-1 != order {
			return nil, fmt.Errorf("tensor: line %d: inconsistent order %d (want %d)", lineNo, len(fields)-1, order)
		}
		coords := make([]int64, order)
		for m := 0; m < order; m++ {
			c, err := strconv.ParseInt(fields[m], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("tensor: line %d: bad index %q: %v", lineNo, fields[m], err)
			}
			if c < 0 {
				return nil, fmt.Errorf("tensor: line %d: negative index %d", lineNo, c)
			}
			coords[m] = c
		}
		v, err := strconv.ParseFloat(fields[order], 64)
		if err != nil {
			return nil, fmt.Errorf("tensor: line %d: bad value %q: %v", lineNo, fields[order], err)
		}
		rows = append(rows, coords)
		vals = append(vals, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if order == -1 && dims == nil {
		return nil, fmt.Errorf("tensor: empty input with no shape header")
	}
	if dims == nil {
		dims = make([]int64, order)
		for _, coords := range rows {
			for m, c := range coords {
				if c+1 > dims[m] {
					dims[m] = c + 1
				}
			}
		}
	}
	if order != -1 && len(dims) != order {
		return nil, fmt.Errorf("tensor: header declares order %d but entries have order %d", len(dims), order)
	}
	t := New(dims...)
	for i, coords := range rows {
		for m, c := range coords {
			if c >= dims[m] {
				return nil, fmt.Errorf("tensor: index %d exceeds declared dim %d on mode %d", c, dims[m], m)
			}
		}
		t.Append(vals[i], coords...)
	}
	t.Coalesce()
	return t, nil
}
