// Package tensor implements sparse N-way tensors in coordinate (COO)
// format together with the multilinear operations HaTen2 builds on:
// Collapse, the n-mode vector/matrix products and their Hadamard
// ("decoupled") forms, matricization, and MTTKRP.
//
// Indices are int64 so the types describe billion-scale tensors faithfully
// even though the in-process simulator works on scaled-down instances.
// Storage is struct-of-arrays with a flat index slice (stride = Order) to
// keep per-entry overhead at Order×8+8 bytes with no per-entry allocation.
package tensor

import (
	"fmt"
	"math"
	"sort"
)

// Tensor is a sparse N-way tensor in coordinate format.
// The zero value is unusable; create tensors with New.
type Tensor struct {
	dims []int64
	// idx stores entry coordinates back to back:
	// entry p occupies idx[p*order : (p+1)*order].
	idx []int64
	val []float64
}

// New returns an empty sparse tensor with the given mode sizes.
// It panics if no dims are given or any dim is nonpositive.
func New(dims ...int64) *Tensor {
	if len(dims) == 0 {
		panic("tensor: New requires at least one mode")
	}
	for i, d := range dims {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: mode %d has nonpositive size %d", i, d))
		}
	}
	ds := make([]int64, len(dims))
	copy(ds, dims)
	return &Tensor{dims: ds}
}

// Order returns the number of modes (ways) of the tensor.
func (t *Tensor) Order() int { return len(t.dims) }

// Dims returns a copy of the mode sizes.
func (t *Tensor) Dims() []int64 {
	out := make([]int64, len(t.dims))
	copy(out, t.dims)
	return out
}

// Dim returns the size of mode n.
func (t *Tensor) Dim(n int) int64 { return t.dims[n] }

// NNZ returns the number of stored entries. After Coalesce this is the
// number of distinct nonzero coordinates, i.e. nnz(𝒳) in the paper.
func (t *Tensor) NNZ() int { return len(t.val) }

// Append adds an entry at the given coordinates. Duplicates are permitted
// and are summed by Coalesce. It panics on arity or bounds violations.
func (t *Tensor) Append(v float64, coords ...int64) {
	if len(coords) != len(t.dims) {
		panic(fmt.Sprintf("tensor: Append got %d coords for order-%d tensor", len(coords), len(t.dims)))
	}
	for m, c := range coords {
		if c < 0 || c >= t.dims[m] {
			panic(fmt.Sprintf("tensor: coordinate %d out of range [0,%d) on mode %d", c, t.dims[m], m))
		}
	}
	t.idx = append(t.idx, coords...)
	t.val = append(t.val, v)
}

// Index returns the coordinates of entry p as a slice aliasing internal
// storage; callers must not mutate it.
func (t *Tensor) Index(p int) []int64 {
	o := len(t.dims)
	return t.idx[p*o : (p+1)*o : (p+1)*o]
}

// Value returns the value of entry p.
func (t *Tensor) Value(p int) float64 { return t.val[p] }

// SetValue overwrites the value of entry p.
func (t *Tensor) SetValue(p int, v float64) { t.val[p] = v }

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := New(t.dims...)
	c.idx = append([]int64(nil), t.idx...)
	c.val = append([]float64(nil), t.val...)
	return c
}

// Bin returns bin(𝒳): a tensor of the same shape whose stored entries are
// all 1 (stored zeros are dropped first by coalescing).
func (t *Tensor) Bin() *Tensor {
	c := t.Clone()
	c.Coalesce()
	for i := range c.val {
		c.val[i] = 1
	}
	return c
}

// less compares the coordinates of entries p and q lexicographically.
func (t *Tensor) less(p, q int) bool {
	o := len(t.dims)
	a := t.idx[p*o : (p+1)*o]
	b := t.idx[q*o : (q+1)*o]
	for m := 0; m < o; m++ {
		if a[m] != b[m] {
			return a[m] < b[m]
		}
	}
	return false
}

func (t *Tensor) sameIndex(p, q int) bool {
	o := len(t.dims)
	a := t.idx[p*o : (p+1)*o]
	b := t.idx[q*o : (q+1)*o]
	for m := 0; m < o; m++ {
		if a[m] != b[m] {
			return false
		}
	}
	return true
}

// Sort orders the entries lexicographically by coordinates.
func (t *Tensor) Sort() {
	o := len(t.dims)
	perm := make([]int, len(t.val))
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool { return t.less(perm[a], perm[b]) })
	nidx := make([]int64, len(t.idx))
	nval := make([]float64, len(t.val))
	for dst, src := range perm {
		copy(nidx[dst*o:(dst+1)*o], t.idx[src*o:(src+1)*o])
		nval[dst] = t.val[src]
	}
	t.idx, t.val = nidx, nval
}

// Coalesce sorts the entries, sums duplicates, and drops explicit zeros.
// After Coalesce the tensor is in canonical form: sorted, unique, nonzero.
func (t *Tensor) Coalesce() {
	if len(t.val) == 0 {
		return
	}
	t.Sort()
	o := len(t.dims)
	w := 0 // write cursor
	for r := 0; r < len(t.val); {
		sum := t.val[r]
		r2 := r + 1
		for r2 < len(t.val) && t.sameIndex(r, r2) {
			sum += t.val[r2]
			r2++
		}
		if sum != 0 {
			copy(t.idx[w*o:(w+1)*o], t.idx[r*o:(r+1)*o])
			t.val[w] = sum
			w++
		}
		r = r2
	}
	t.idx = t.idx[:w*o]
	t.val = t.val[:w]
}

// At returns the value at the given coordinates, or 0 if absent.
// The tensor must be coalesced; At performs a binary search.
func (t *Tensor) At(coords ...int64) float64 {
	o := len(t.dims)
	if len(coords) != o {
		panic("tensor: At arity mismatch")
	}
	n := len(t.val)
	p := sort.Search(n, func(p int) bool {
		a := t.idx[p*o : (p+1)*o]
		for m := 0; m < o; m++ {
			if a[m] != coords[m] {
				return a[m] >= coords[m]
			}
		}
		return true
	})
	if p < n {
		a := t.idx[p*o : (p+1)*o]
		match := true
		for m := 0; m < o; m++ {
			if a[m] != coords[m] {
				match = false
				break
			}
		}
		if match {
			return t.val[p]
		}
	}
	return 0
}

// Norm returns the Frobenius norm ‖𝒳‖_F. The tensor should be coalesced
// if duplicate coordinates may be present.
func (t *Tensor) Norm() float64 {
	var ss float64
	for _, v := range t.val {
		ss += v * v
	}
	return math.Sqrt(ss)
}

// InnerProduct returns ⟨a, b⟩ = Σ a(i…)·b(i…) for two tensors of identical
// shape. Both are coalesced as a side effect.
func InnerProduct(a, b *Tensor) float64 {
	if !sameDims(a.dims, b.dims) {
		panic("tensor: InnerProduct shape mismatch")
	}
	a.Coalesce()
	b.Coalesce()
	o := len(a.dims)
	var s float64
	i, j := 0, 0
	for i < len(a.val) && j < len(b.val) {
		cmp := compareIdx(a.idx[i*o:(i+1)*o], b.idx[j*o:(j+1)*o])
		switch {
		case cmp < 0:
			i++
		case cmp > 0:
			j++
		default:
			s += a.val[i] * b.val[j]
			i++
			j++
		}
	}
	return s
}

// Equal reports whether a and b have the same shape and the same entries
// within tolerance tol. Both tensors are coalesced as a side effect.
func Equal(a, b *Tensor, tol float64) bool {
	if !sameDims(a.dims, b.dims) {
		return false
	}
	a.Coalesce()
	b.Coalesce()
	o := len(a.dims)
	i, j := 0, 0
	for i < len(a.val) || j < len(b.val) {
		switch {
		case i >= len(a.val):
			if math.Abs(b.val[j]) > tol {
				return false
			}
			j++
		case j >= len(b.val):
			if math.Abs(a.val[i]) > tol {
				return false
			}
			i++
		default:
			cmp := compareIdx(a.idx[i*o:(i+1)*o], b.idx[j*o:(j+1)*o])
			switch {
			case cmp < 0:
				if math.Abs(a.val[i]) > tol {
					return false
				}
				i++
			case cmp > 0:
				if math.Abs(b.val[j]) > tol {
					return false
				}
				j++
			default:
				if math.Abs(a.val[i]-b.val[j]) > tol {
					return false
				}
				i++
				j++
			}
		}
	}
	return true
}

// Density returns nnz/(Π dims) for a coalesced tensor, using float64
// arithmetic so billion-scale shapes do not overflow.
func (t *Tensor) Density() float64 {
	total := 1.0
	for _, d := range t.dims {
		total *= float64(d)
	}
	if total == 0 {
		return 0
	}
	return float64(t.NNZ()) / total
}

// String summarizes the tensor shape and occupancy.
func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor%v nnz=%d", t.dims, t.NNZ())
}

func sameDims(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func compareIdx(a, b []int64) int {
	for m := range a {
		if a[m] != b[m] {
			if a[m] < b[m] {
				return -1
			}
			return 1
		}
	}
	return 0
}
