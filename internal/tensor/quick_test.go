package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/haten2/haten2/internal/matrix"
)

func qcfg(seed int64) *quick.Config {
	return &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(seed))}
}

// drawTensor builds a random 3-way tensor with small dims for property
// tests; duplicate coordinates are allowed and coalesced.
func drawTensor(rng *rand.Rand) *Tensor {
	dims := []int64{1 + rng.Int63n(5), 1 + rng.Int63n(5), 1 + rng.Int63n(5)}
	t := New(dims...)
	nnz := rng.Intn(20)
	for e := 0; e < nnz; e++ {
		t.Append(rng.NormFloat64(), rng.Int63n(dims[0]), rng.Int63n(dims[1]), rng.Int63n(dims[2]))
	}
	t.Coalesce()
	return t
}

func drawVec(rng *rand.Rand, n int64) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func TestQuickDecouplingIdentity(t *testing.T) {
	// Paper §III-B2: 𝒳 ×̄ₙ v == Collapse(𝒳 ∗̄ₙ v)ₙ on every mode.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := drawTensor(rng)
		for n := 0; n < 3; n++ {
			v := drawVec(rng, x.Dim(n))
			direct := ModeVectorProduct(x, n, v)
			decoupled := Collapse(ModeVectorHadamard(x, n, v), n)
			if !Equal(direct, decoupled, 1e-10) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, qcfg(21)); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMatrixHadamardSlicesAreVectorHadamards(t *testing.T) {
	// Definition 5: (𝒳 ∗ₙ U)_{…q} == 𝒳 ∗̄ₙ u_q.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := drawTensor(rng)
		n := rng.Intn(3)
		q := 1 + rng.Intn(3)
		u := matrix.Random(q, int(x.Dim(n)), rng)
		h := ModeMatrixHadamard(x, n, u)
		for r := 0; r < q; r++ {
			ref := ModeVectorHadamard(x, n, u.Row(r))
			ref.Coalesce()
			for p := 0; p < ref.NNZ(); p++ {
				idx := ref.Index(p)
				coords := append(append([]int64{}, idx...), int64(r))
				hv := h.Clone()
				hv.Coalesce()
				if math.Abs(hv.At(coords...)-ref.Value(p)) > 1e-10 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, qcfg(22)); err != nil {
		t.Fatal(err)
	}
}

func TestQuickModeProductMatchesMatricization(t *testing.T) {
	// 𝒴 = 𝒳 ×ₙ U ⇔ Y₍ₙ₎ = U·X₍ₙ₎.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := drawTensor(rng)
		n := rng.Intn(3)
		q := 1 + rng.Intn(4)
		u := matrix.Random(q, int(x.Dim(n)), rng)
		y := ModeMatrixProduct(x, n, u)
		left := Matricize(y, n)
		right := matrix.Mul(u, Matricize(x, n))
		return left.Equal(right, 1e-9)
	}
	if err := quick.Check(f, qcfg(23)); err != nil {
		t.Fatal(err)
	}
}

func TestQuickModeProductsCommute(t *testing.T) {
	// (𝒳 ×₁U) ×₂V == (𝒳 ×₂V) ×₁U for distinct modes — the property that
	// lets HaTen2-DRN remove the sequential dependency.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := drawTensor(rng)
		u := matrix.Random(1+rng.Intn(3), int(x.Dim(1)), rng)
		v := matrix.Random(1+rng.Intn(3), int(x.Dim(2)), rng)
		a := ModeMatrixProduct(ModeMatrixProduct(x, 1, u), 2, v)
		b := ModeMatrixProduct(ModeMatrixProduct(x, 2, v), 1, u)
		return Equal(a, b, 1e-9)
	}
	if err := quick.Check(f, qcfg(24)); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCoalesceIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := drawTensor(rng)
		before := x.Clone()
		x.Coalesce()
		return Equal(before, x, 0)
	}
	if err := quick.Check(f, qcfg(25)); err != nil {
		t.Fatal(err)
	}
}

func TestQuickInnerProductNormConsistency(t *testing.T) {
	// ⟨𝒳,𝒳⟩ == ‖𝒳‖².
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := drawTensor(rng)
		n := x.Norm()
		return math.Abs(InnerProduct(x, x.Clone())-n*n) < 1e-9*math.Max(1, n*n)
	}
	if err := quick.Check(f, qcfg(26)); err != nil {
		t.Fatal(err)
	}
}

func TestQuickKruskalFitPerfectModel(t *testing.T) {
	// A tensor generated exactly from a Kruskal model must have fit ≈ 1.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := []int64{2 + rng.Int63n(3), 2 + rng.Int63n(3), 2 + rng.Int63n(3)}
		r := 1 + rng.Intn(2)
		k := &Kruskal{Lambda: make([]float64, r)}
		for m := 0; m < 3; m++ {
			f := matrix.Random(int(dims[m]), r, rng)
			norms := f.NormalizeColumns()
			_ = norms
			k.Factors = append(k.Factors, f)
		}
		for i := range k.Lambda {
			k.Lambda[i] = 1 + rng.Float64()
		}
		x := k.Full(dims...).ToSparse()
		// The residual is computed by cancellation of O(‖𝒳‖²) terms, so
		// the achievable fit is limited by √ε relative error.
		return k.Fit(x) > 1-1e-5
	}
	if err := quick.Check(f, qcfg(27)); err != nil {
		t.Fatal(err)
	}
}

func TestQuickKruskalNormSquaredMatchesFull(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := []int64{2, 3, 2}
		r := 1 + rng.Intn(3)
		k := &Kruskal{Lambda: make([]float64, r)}
		for m := 0; m < 3; m++ {
			k.Factors = append(k.Factors, matrix.Random(int(dims[m]), r, rng))
		}
		for i := range k.Lambda {
			k.Lambda[i] = rng.NormFloat64()
		}
		full := k.Full(dims...)
		n := full.Norm()
		return math.Abs(k.NormSquared()-n*n) < 1e-8*math.Max(1, n*n)
	}
	if err := quick.Check(f, qcfg(28)); err != nil {
		t.Fatal(err)
	}
}

func TestQuickLemma3NNZEstimate(t *testing.T) {
	// Appendix A: for sparse 𝒳 and dense B, nnz(𝒳 ×₂ B) ≈ nnz(𝒳)·Q, and
	// never exceeds it.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := []int64{6, 6, 6}
		x := New(dims...)
		for e := 0; e < 8; e++ {
			x.Append(1+rng.Float64(), rng.Int63n(6), rng.Int63n(6), rng.Int63n(6))
		}
		x.Coalesce()
		q := 1 + rng.Intn(4)
		b := matrix.New(q, 6)
		for i := range b.Data {
			b.Data[i] = 1 + rng.Float64() // fully dense, positive: no cancellation
		}
		y := ModeMatrixProduct(x, 1, b)
		upper := x.NNZ() * q
		return y.NNZ() <= upper
	}
	if err := quick.Check(f, qcfg(29)); err != nil {
		t.Fatal(err)
	}
}
