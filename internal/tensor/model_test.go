package tensor

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"github.com/haten2/haten2/internal/matrix"
)

// exactTucker builds a tensor that equals a known Tucker model.
func exactTucker(rng *rand.Rand) (*Tensor, *TuckerModel) {
	g := NewDense(2, 2, 2)
	for i := range g.Data {
		g.Data[i] = rng.NormFloat64()
	}
	var facs []*matrix.Matrix
	for _, d := range []int{5, 4, 3} {
		q, _ := matrix.QR(matrix.Random(d, 2, rng))
		facs = append(facs, q)
	}
	model := &TuckerModel{Core: g, Factors: facs}
	x := New(5, 4, 3)
	for i := int64(0); i < 5; i++ {
		for j := int64(0); j < 4; j++ {
			for k := int64(0); k < 3; k++ {
				if v := model.At(i, j, k); v != 0 {
					x.Append(v, i, j, k)
				}
			}
		}
	}
	x.Coalesce()
	return x, model
}

func TestTuckerModelAtAgainstExpansion(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	_, model := exactTucker(rng)
	// Reference: explicit Σ g(p,q,r)·A(i,p)B(j,q)C(k,r).
	for i := int64(0); i < 5; i++ {
		for j := int64(0); j < 4; j++ {
			for k := int64(0); k < 3; k++ {
				var want float64
				for p := int64(0); p < 2; p++ {
					for q := int64(0); q < 2; q++ {
						for r := int64(0); r < 2; r++ {
							want += model.Core.At(p, q, r) *
								model.Factors[0].At(int(i), int(p)) *
								model.Factors[1].At(int(j), int(q)) *
								model.Factors[2].At(int(k), int(r))
						}
					}
				}
				if got := model.At(i, j, k); math.Abs(got-want) > 1e-12 {
					t.Fatalf("At(%d,%d,%d)=%v want %v", i, j, k, got, want)
				}
			}
		}
	}
}

func TestTuckerModelFitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	x, model := exactTucker(rng)
	if fit := model.Fit(x); fit < 1-1e-6 {
		t.Fatalf("exact model fit %v", fit)
	}
	// InnerWith equals ‖X‖² for an exact model.
	n := x.Norm()
	if iw := model.InnerWith(x); math.Abs(iw-n*n) > 1e-8*math.Max(1, n*n) {
		t.Fatalf("inner %v want %v", iw, n*n)
	}
}

func TestTuckerModelFitZeroTensor(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	_, model := exactTucker(rng)
	empty := New(5, 4, 3)
	if fit := model.Fit(empty); fit != 0 {
		t.Fatalf("fit of empty tensor = %v", fit)
	}
}

func TestModelStrings(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	x, model := exactTucker(rng)
	if s := model.String(); !strings.Contains(s, "Tucker") {
		t.Fatalf("TuckerModel.String = %q", s)
	}
	if s := x.String(); !strings.Contains(s, "nnz=") {
		t.Fatalf("Tensor.String = %q", s)
	}
	d := NewDense(2, 2)
	if s := d.String(); !strings.Contains(s, "Dense") {
		t.Fatalf("Dense.String = %q", s)
	}
}

func TestSetValue(t *testing.T) {
	x := New(2, 2)
	x.Append(1, 0, 0)
	x.SetValue(0, 9)
	if x.Value(0) != 9 {
		t.Fatalf("SetValue: %v", x.Value(0))
	}
}

func TestEqualShapeMismatch(t *testing.T) {
	a := New(2, 2)
	b := New(2, 3)
	if Equal(a, b, 1) {
		t.Fatal("different shapes reported Equal")
	}
	c := New(2, 2, 2)
	if Equal(a, c, 1) {
		t.Fatal("different orders reported Equal")
	}
}

func TestKruskalAtArity(t *testing.T) {
	k := &Kruskal{Lambda: []float64{1}, Factors: []*matrix.Matrix{
		matrix.Identity(2), matrix.Identity(2), matrix.Identity(2),
	}}
	defer func() {
		if recover() == nil {
			t.Fatal("wrong arity accepted")
		}
	}()
	k.At(0, 0)
}
