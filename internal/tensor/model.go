package tensor

import (
	"fmt"
	"math"

	"github.com/haten2/haten2/internal/matrix"
)

// Kruskal is a rank-R PARAFAC (CP) model: 𝒳 ≈ Σ_r λ_r a_r⁽¹⁾∘…∘a_r⁽ᴺ⁾.
// Factors[m] has shape I_m×R with unit-norm columns; Lambda carries the
// component weights extracted by column normalization (Algorithm 1).
type Kruskal struct {
	Lambda  []float64
	Factors []*matrix.Matrix
}

// Rank returns the number of components R.
func (k *Kruskal) Rank() int { return len(k.Lambda) }

// At evaluates the model at the given coordinates.
func (k *Kruskal) At(coords ...int64) float64 {
	if len(coords) != len(k.Factors) {
		panic("tensor: Kruskal.At arity mismatch")
	}
	var s float64
	for r, lam := range k.Lambda {
		p := lam
		for m, f := range k.Factors {
			p *= f.At(int(coords[m]), r)
		}
		s += p
	}
	return s
}

// NormSquared returns ‖𝒳̂‖²_F using the Gram identity
// ‖[λ; A⁽¹⁾…A⁽ᴺ⁾]‖² = λᵀ (∗_m A⁽ᵐ⁾ᵀA⁽ᵐ⁾) λ,
// which avoids materializing the full tensor.
func (k *Kruskal) NormSquared() float64 {
	r := k.Rank()
	if r == 0 {
		return 0
	}
	g := matrix.New(r, r)
	for i := 0; i < r; i++ {
		for j := 0; j < r; j++ {
			g.Set(i, j, 1)
		}
	}
	for _, f := range k.Factors {
		g = matrix.Hadamard(g, matrix.Gram(f))
	}
	var s float64
	for i := 0; i < r; i++ {
		for j := 0; j < r; j++ {
			s += k.Lambda[i] * g.At(i, j) * k.Lambda[j]
		}
	}
	return s
}

// InnerWith returns ⟨𝒳, 𝒳̂⟩ evaluated only at the nonzeros of 𝒳.
func (k *Kruskal) InnerWith(x *Tensor) float64 {
	o := x.Order()
	if len(k.Factors) != o {
		panic("tensor: Kruskal.InnerWith order mismatch")
	}
	var s float64
	prod := make([]float64, k.Rank())
	for p := 0; p < x.NNZ(); p++ {
		idx := x.Index(p)
		copy(prod, k.Lambda)
		for m, f := range k.Factors {
			row := f.Row(int(idx[m]))
			for r := range prod {
				prod[r] *= row[r]
			}
		}
		var v float64
		for _, pv := range prod {
			v += pv
		}
		s += x.Value(p) * v
	}
	return s
}

// Fit returns the model fit 1 − ‖𝒳−𝒳̂‖_F/‖𝒳‖_F, computed without
// materializing 𝒳̂ via ‖𝒳−𝒳̂‖² = ‖𝒳‖² − 2⟨𝒳,𝒳̂⟩ + ‖𝒳̂‖².
func (k *Kruskal) Fit(x *Tensor) float64 {
	xn := x.Norm()
	if xn == 0 {
		return 0
	}
	res := xn*xn - 2*k.InnerWith(x) + k.NormSquared()
	if res < 0 {
		res = 0 // numerical round-off
	}
	return 1 - math.Sqrt(res)/xn
}

// Full materializes the model as a dense tensor (small shapes only).
func (k *Kruskal) Full(dims ...int64) *Dense {
	if len(dims) != len(k.Factors) {
		panic("tensor: Kruskal.Full arity mismatch")
	}
	d := NewDense(dims...)
	coords := make([]int64, len(dims))
	var fill func(m int)
	fill = func(m int) {
		if m == len(dims) {
			d.Set(k.At(coords...), coords...)
			return
		}
		for c := int64(0); c < dims[m]; c++ {
			coords[m] = c
			fill(m + 1)
		}
	}
	fill(0)
	return d
}

// TuckerModel is a Tucker decomposition 𝒳 ≈ 𝒢 ×₁A⁽¹⁾ ×₂A⁽²⁾ … ×_N A⁽ᴺ⁾
// with a dense core 𝒢 and column-orthonormal factor matrices.
type TuckerModel struct {
	Core    *Dense
	Factors []*matrix.Matrix
}

// At evaluates the model at the given coordinates:
// Σ_{p…} 𝒢(p…)·Π_m A⁽ᵐ⁾(i_m, p_m).
func (t *TuckerModel) At(coords ...int64) float64 {
	o := len(t.Factors)
	if len(coords) != o {
		panic("tensor: TuckerModel.At arity mismatch")
	}
	cd := t.Core.Dims()
	core := make([]int64, o)
	var rec func(m int, w float64) float64
	rec = func(m int, w float64) float64 {
		if m == o {
			return w * t.Core.At(core...)
		}
		var s float64
		for p := int64(0); p < cd[m]; p++ {
			f := t.Factors[m].At(int(coords[m]), int(p))
			if f == 0 {
				continue
			}
			core[m] = p
			s += rec(m+1, w*f)
		}
		return s
	}
	return rec(0, 1)
}

// InnerWith returns ⟨𝒳, 𝒳̂⟩ evaluated at the nonzeros of 𝒳.
func (t *TuckerModel) InnerWith(x *Tensor) float64 {
	var s float64
	for p := 0; p < x.NNZ(); p++ {
		s += x.Value(p) * t.At(x.Index(p)...)
	}
	return s
}

// Fit returns 1 − ‖𝒳−𝒳̂‖_F/‖𝒳‖_F. For orthonormal factors
// ‖𝒳̂‖_F = ‖𝒢‖_F, which this uses.
func (t *TuckerModel) Fit(x *Tensor) float64 {
	xn := x.Norm()
	if xn == 0 {
		return 0
	}
	gn := t.Core.Norm()
	res := xn*xn - 2*t.InnerWith(x) + gn*gn
	if res < 0 {
		res = 0
	}
	return 1 - math.Sqrt(res)/xn
}

// String summarizes the model shapes.
func (t *TuckerModel) String() string {
	return fmt.Sprintf("Tucker core=%v factors=%d", t.Core.Dims(), len(t.Factors))
}
