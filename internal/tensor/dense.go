package tensor

import (
	"fmt"
	"math"
)

// Dense is a small dense N-way tensor, used for Tucker core tensors
// (at most 80×80×80 in the paper's evaluation) and for exhaustive
// reference checks in tests. Entries are stored in a flat slice with
// mode-0 varying slowest (row-major generalization).
type Dense struct {
	dims []int64
	Data []float64
}

// NewDense returns a zero dense tensor with the given mode sizes.
// It panics if the total size is unreasonably large (>2^27 entries),
// which would indicate a misuse for data that should stay sparse.
func NewDense(dims ...int64) *Dense {
	if len(dims) == 0 {
		panic("tensor: NewDense requires at least one mode")
	}
	total := int64(1)
	for i, d := range dims {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: dense mode %d has nonpositive size %d", i, d))
		}
		total *= d
		if total > 1<<27 {
			panic(fmt.Sprintf("tensor: NewDense%v too large to materialize", dims))
		}
	}
	ds := make([]int64, len(dims))
	copy(ds, dims)
	return &Dense{dims: ds, Data: make([]float64, total)}
}

// Order returns the number of modes.
func (d *Dense) Order() int { return len(d.dims) }

// Dims returns a copy of the mode sizes.
func (d *Dense) Dims() []int64 {
	out := make([]int64, len(d.dims))
	copy(out, d.dims)
	return out
}

// Dim returns the size of mode n.
func (d *Dense) Dim(n int) int64 { return d.dims[n] }

func (d *Dense) offset(coords []int64) int64 {
	if len(coords) != len(d.dims) {
		panic("tensor: dense coordinate arity mismatch")
	}
	var off int64
	for m, c := range coords {
		if c < 0 || c >= d.dims[m] {
			panic(fmt.Sprintf("tensor: dense coordinate %d out of range [0,%d) on mode %d", c, d.dims[m], m))
		}
		off = off*d.dims[m] + c
	}
	return off
}

// At returns the entry at the given coordinates.
func (d *Dense) At(coords ...int64) float64 { return d.Data[d.offset(coords)] }

// Set assigns the entry at the given coordinates.
func (d *Dense) Set(v float64, coords ...int64) { d.Data[d.offset(coords)] = v }

// Add accumulates v into the entry at the given coordinates.
func (d *Dense) Add(v float64, coords ...int64) { d.Data[d.offset(coords)] += v }

// Norm returns the Frobenius norm.
func (d *Dense) Norm() float64 {
	var ss float64
	for _, v := range d.Data {
		ss += v * v
	}
	return math.Sqrt(ss)
}

// ToSparse converts d to a coalesced sparse tensor, dropping zeros.
func (d *Dense) ToSparse() *Tensor {
	t := New(d.dims...)
	coords := make([]int64, len(d.dims))
	for i, v := range d.Data {
		if v == 0 {
			continue
		}
		lin := int64(i)
		for m := len(d.dims) - 1; m >= 0; m-- {
			coords[m] = lin % d.dims[m]
			lin /= d.dims[m]
		}
		t.Append(v, coords...)
	}
	t.Coalesce()
	return t
}

// FromSparse materializes a sparse tensor densely. Duplicate coordinates
// are summed. It panics for shapes too large to hold (see NewDense).
func FromSparse(t *Tensor) *Dense {
	d := NewDense(t.dims...)
	o := t.Order()
	for p, v := range t.val {
		d.Data[d.offset(t.idx[p*o:(p+1)*o])] += v
	}
	return d
}

// String summarizes the dense tensor.
func (d *Dense) String() string {
	return fmt.Sprintf("Dense%v", d.dims)
}
