package tensor

import (
	"fmt"

	"github.com/haten2/haten2/internal/matrix"
)

// ModeVectorHadamard returns 𝒳 ∗̄ₙ v (Definition 1): a tensor of the same
// shape whose entry at (i₁…iₙ…i_N) is x·v[iₙ]. It panics if len(v) does
// not match mode n.
func ModeVectorHadamard(t *Tensor, n int, v []float64) *Tensor {
	if int64(len(v)) != t.dims[n] {
		panic(fmt.Sprintf("tensor: ModeVectorHadamard vector length %d != dim %d of mode %d", len(v), t.dims[n], n))
	}
	out := New(t.dims...)
	o := t.Order()
	out.idx = append([]int64(nil), t.idx...)
	out.val = make([]float64, len(t.val))
	for p, x := range t.val {
		out.val[p] = x * v[t.idx[p*o+n]]
	}
	return out
}

// Collapse returns Collapse(𝒳)ₙ (Definition 2): the order-(N−1) tensor
// obtained by summing all entries across mode n. It panics for order-1
// tensors (the result would be a scalar; use SumAll for that).
func Collapse(t *Tensor, n int) *Tensor {
	o := t.Order()
	if o < 2 {
		panic("tensor: Collapse requires order >= 2; use SumAll for scalars")
	}
	dims := make([]int64, 0, o-1)
	for m, d := range t.dims {
		if m != n {
			dims = append(dims, d)
		}
	}
	out := New(dims...)
	out.idx = make([]int64, 0, len(t.val)*(o-1))
	out.val = make([]float64, 0, len(t.val))
	coords := make([]int64, o-1)
	for p, x := range t.val {
		src := t.idx[p*o : (p+1)*o]
		w := 0
		for m, c := range src {
			if m != n {
				coords[w] = c
				w++
			}
		}
		out.idx = append(out.idx, coords...)
		out.val = append(out.val, x)
	}
	out.Coalesce()
	return out
}

// SumAll returns the sum of all entries.
func SumAll(t *Tensor) float64 {
	var s float64
	for _, v := range t.val {
		s += v
	}
	return s
}

// ModeVectorProduct returns 𝒳 ×̄ₙ v, the n-mode vector product: mode n is
// contracted against v, producing an order-(N−1) tensor. HaTen2-DNN's
// decoupling identity 𝒳 ×̄ₙ v == Collapse(𝒳 ∗̄ₙ v)ₙ is verified against
// this implementation in the property tests.
func ModeVectorProduct(t *Tensor, n int, v []float64) *Tensor {
	return Collapse(ModeVectorHadamard(t, n, v), n)
}

// ModeMatrixHadamard returns 𝒳 ∗ₙ U (Definition 5) where U is Q×Iₙ: an
// order-(N+1) tensor whose (i₁…i_N, q) entry is x·U(q, iₙ). The new mode
// of size Q is appended last, matching the paper's definition.
func ModeMatrixHadamard(t *Tensor, n int, u *matrix.Matrix) *Tensor {
	if int64(u.Cols) != t.dims[n] {
		panic(fmt.Sprintf("tensor: ModeMatrixHadamard matrix cols %d != dim %d of mode %d", u.Cols, t.dims[n], n))
	}
	o := t.Order()
	dims := append(t.Dims(), int64(u.Rows))
	out := New(dims...)
	q := u.Rows
	out.idx = make([]int64, 0, len(t.val)*q*(o+1))
	out.val = make([]float64, 0, len(t.val)*q)
	for p, x := range t.val {
		src := t.idx[p*o : (p+1)*o]
		in := src[n]
		for r := 0; r < q; r++ {
			uv := u.At(r, int(in))
			if uv == 0 {
				continue
			}
			out.idx = append(out.idx, src...)
			out.idx = append(out.idx, int64(r))
			out.val = append(out.val, x*uv)
		}
	}
	return out
}

// ModeMatrixProduct returns 𝒴 = 𝒳 ×ₙ U where U is Q×Iₙ: mode n of size Iₙ
// is replaced by a mode of size Q with
// 𝒴(i₁…q…i_N) = Σ_{iₙ} 𝒳(i₁…iₙ…i_N)·U(q, iₙ).
// This is the in-memory reference for the distributed plans; it
// materializes at most nnz(𝒳)·Q intermediate entries (Lemma 3).
func ModeMatrixProduct(t *Tensor, n int, u *matrix.Matrix) *Tensor {
	if int64(u.Cols) != t.dims[n] {
		panic(fmt.Sprintf("tensor: ModeMatrixProduct matrix cols %d != dim %d of mode %d", u.Cols, t.dims[n], n))
	}
	o := t.Order()
	dims := t.Dims()
	dims[n] = int64(u.Rows)
	out := New(dims...)
	q := u.Rows
	out.idx = make([]int64, 0, len(t.val)*q)
	out.val = make([]float64, 0, len(t.val)*q)
	coords := make([]int64, o)
	for p, x := range t.val {
		src := t.idx[p*o : (p+1)*o]
		copy(coords, src)
		in := src[n]
		for r := 0; r < q; r++ {
			uv := u.At(r, int(in))
			if uv == 0 {
				continue
			}
			coords[n] = int64(r)
			out.idx = append(out.idx, coords...)
			out.val = append(out.val, x*uv)
		}
	}
	out.Coalesce()
	return out
}

// Matricize returns the mode-n matricization 𝒳₍ₙ₎ as a dense matrix of
// shape Iₙ × Π_{m≠n} I_m, using the standard (Kolda) column ordering:
// column index j = Σ_{m≠n} i_m · Π_{k<m, k≠n} I_k.
// Intended for tensors whose matricized shape is small enough to hold
// densely (e.g. the Tucker intermediate 𝒴 of shape I×Q×R).
func Matricize(t *Tensor, n int) *matrix.Matrix {
	o := t.Order()
	rows := t.dims[n]
	cols := int64(1)
	strides := make([]int64, o)
	for m := 0; m < o; m++ {
		if m == n {
			continue
		}
		strides[m] = cols
		cols *= t.dims[m]
	}
	if rows*cols > 1<<28 {
		panic(fmt.Sprintf("tensor: Matricize would materialize %d×%d dense entries", rows, cols))
	}
	out := matrix.New(int(rows), int(cols))
	for p, x := range t.val {
		src := t.idx[p*o : (p+1)*o]
		var col int64
		for m, c := range src {
			if m != n {
				col += c * strides[m]
			}
		}
		out.Data[src[n]*cols+col] += x
	}
	return out
}

// MTTKRP computes the matricized-tensor-times-Khatri-Rao-product
// M = 𝒳₍ₙ₎ (⊙_{m≠n, reverse order} A⁽ᵐ⁾), the kernel of PARAFAC-ALS:
// M(iₙ, r) = Σ_{entries} x · Π_{m≠n} A⁽ᵐ⁾(i_m, r).
// factors must hold one I_m×R matrix per mode; factors[n] is ignored.
// The result has shape Iₙ×R.
func MTTKRP(t *Tensor, factors []*matrix.Matrix, n int) *matrix.Matrix {
	o := t.Order()
	if len(factors) != o {
		panic(fmt.Sprintf("tensor: MTTKRP got %d factors for order-%d tensor", len(factors), o))
	}
	r := factors[(n+1)%o].Cols
	for m, f := range factors {
		if m == n {
			continue
		}
		if f.Cols != r || int64(f.Rows) != t.dims[m] {
			panic(fmt.Sprintf("tensor: MTTKRP factor %d has shape %dx%d, want %dx%d", m, f.Rows, f.Cols, t.dims[m], r))
		}
	}
	out := matrix.New(int(t.dims[n]), r)
	prod := make([]float64, r)
	for p, x := range t.val {
		src := t.idx[p*o : (p+1)*o]
		for c := range prod {
			prod[c] = x
		}
		for m := 0; m < o; m++ {
			if m == n {
				continue
			}
			row := factors[m].Row(int(src[m]))
			for c := range prod {
				prod[c] *= row[c]
			}
		}
		dst := out.Row(int(src[n]))
		for c, v := range prod {
			dst[c] += v
		}
	}
	return out
}

// Scale multiplies every entry by s in place and returns t.
func (t *Tensor) Scale(s float64) *Tensor {
	for i := range t.val {
		t.val[i] *= s
	}
	return t
}

// Add returns a + b for same-shape tensors (entries summed coordinatewise).
func Add(a, b *Tensor) *Tensor {
	if !sameDims(a.dims, b.dims) {
		panic("tensor: Add shape mismatch")
	}
	out := a.Clone()
	out.idx = append(out.idx, b.idx...)
	out.val = append(out.val, b.val...)
	out.Coalesce()
	return out
}
