package tensor

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"github.com/haten2/haten2/internal/matrix"
)

// small3 builds the running example tensor used across tests:
// a 2×3×2 tensor with a handful of entries.
func small3() *Tensor {
	t := New(2, 3, 2)
	t.Append(1, 0, 0, 0)
	t.Append(2, 0, 1, 1)
	t.Append(3, 1, 2, 0)
	t.Append(4, 1, 0, 1)
	t.Coalesce()
	return t
}

func TestNewValidation(t *testing.T) {
	for _, dims := range [][]int64{{}, {0}, {2, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("New(%v) did not panic", dims)
				}
			}()
			New(dims...)
		}()
	}
}

func TestAppendAndAccessors(t *testing.T) {
	x := small3()
	if x.Order() != 3 || x.NNZ() != 4 {
		t.Fatalf("order=%d nnz=%d", x.Order(), x.NNZ())
	}
	if x.Dim(1) != 3 {
		t.Fatalf("Dim(1)=%d", x.Dim(1))
	}
	d := x.Dims()
	d[0] = 99 // must be a copy
	if x.Dim(0) != 2 {
		t.Fatal("Dims leaked internal storage")
	}
}

func TestAppendBounds(t *testing.T) {
	x := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Append did not panic")
		}
	}()
	x.Append(1, 2, 0)
}

func TestAppendArity(t *testing.T) {
	x := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-arity Append did not panic")
		}
	}()
	x.Append(1, 0)
}

func TestCoalesceSumsAndDrops(t *testing.T) {
	x := New(2, 2)
	x.Append(1, 0, 0)
	x.Append(2, 0, 0) // duplicate: summed
	x.Append(5, 1, 1)
	x.Append(-5, 1, 1) // cancels: dropped
	x.Append(0, 0, 1)  // explicit zero: dropped
	x.Coalesce()
	if x.NNZ() != 1 {
		t.Fatalf("nnz=%d want 1", x.NNZ())
	}
	if x.At(0, 0) != 3 {
		t.Fatalf("At(0,0)=%v", x.At(0, 0))
	}
	if x.At(1, 1) != 0 || x.At(0, 1) != 0 {
		t.Fatal("dropped entries still visible")
	}
}

func TestAtOnMissing(t *testing.T) {
	x := small3()
	if x.At(1, 1, 1) != 0 {
		t.Fatal("missing coordinate should read 0")
	}
	if x.At(1, 2, 0) != 3 {
		t.Fatalf("At(1,2,0)=%v", x.At(1, 2, 0))
	}
}

func TestBin(t *testing.T) {
	x := New(2, 2)
	x.Append(-7, 0, 0)
	x.Append(3, 1, 0)
	x.Append(0, 1, 1)
	b := x.Bin()
	if b.NNZ() != 2 {
		t.Fatalf("bin nnz=%d", b.NNZ())
	}
	if b.At(0, 0) != 1 || b.At(1, 0) != 1 {
		t.Fatal("bin entries not 1")
	}
	// Original untouched.
	if x.At(0, 0) == 1 {
		t.Fatal("Bin mutated the receiver")
	}
}

func TestNormAndDensity(t *testing.T) {
	x := New(10, 10)
	x.Append(3, 0, 0)
	x.Append(4, 9, 9)
	if math.Abs(x.Norm()-5) > 1e-12 {
		t.Fatalf("norm=%v", x.Norm())
	}
	if math.Abs(x.Density()-0.02) > 1e-12 {
		t.Fatalf("density=%v", x.Density())
	}
}

func TestInnerProduct(t *testing.T) {
	a := New(2, 2)
	a.Append(2, 0, 0)
	a.Append(3, 1, 1)
	b := New(2, 2)
	b.Append(5, 0, 0)
	b.Append(7, 0, 1) // no partner in a
	if got := InnerProduct(a, b); got != 10 {
		t.Fatalf("inner=%v", got)
	}
}

func TestEqual(t *testing.T) {
	a := small3()
	b := small3()
	if !Equal(a, b, 0) {
		t.Fatal("identical tensors not Equal")
	}
	b.Append(1e-9, 0, 2, 1)
	b.Coalesce()
	if !Equal(a, b, 1e-6) {
		t.Fatal("tolerance not applied to unmatched entry")
	}
	if Equal(a, b, 1e-12) {
		t.Fatal("tensors differ beyond tol but Equal")
	}
}

func TestCollapse(t *testing.T) {
	x := small3()
	c := Collapse(x, 1) // sum over mode 1 → shape 2×2
	if c.Order() != 2 || c.Dim(0) != 2 || c.Dim(1) != 2 {
		t.Fatalf("collapse shape %v", c.Dims())
	}
	// (0,·,0): entry value 1; (0,·,1): 2; (1,·,0): 3; (1,·,1): 4.
	want := [][]float64{{1, 2}, {3, 4}}
	for i := int64(0); i < 2; i++ {
		for k := int64(0); k < 2; k++ {
			if c.At(i, k) != want[i][k] {
				t.Fatalf("collapse(%d,%d)=%v want %v", i, k, c.At(i, k), want[i][k])
			}
		}
	}
}

func TestCollapseMerges(t *testing.T) {
	x := New(2, 2, 2)
	x.Append(1, 0, 0, 0)
	x.Append(2, 0, 1, 0) // same (i,k) after collapsing mode 1
	c := Collapse(x, 1)
	if c.NNZ() != 1 || c.At(0, 0) != 3 {
		t.Fatalf("collapse merge: nnz=%d val=%v", c.NNZ(), c.At(0, 0))
	}
}

func TestModeVectorHadamard(t *testing.T) {
	x := small3()
	v := []float64{10, 100, 1000}
	h := ModeVectorHadamard(x, 1, v)
	if h.At(0, 0, 0) != 10 || h.At(1, 2, 0) != 3000 {
		t.Fatalf("hadamard values wrong: %v %v", h.At(0, 0, 0), h.At(1, 2, 0))
	}
	if h.Order() != 3 {
		t.Fatal("hadamard changed order")
	}
}

func TestModeVectorProductEqualsDecoupled(t *testing.T) {
	// The HaTen2-DNN decoupling: 𝒳 ×̄ₙ v == Collapse(𝒳 ∗̄ₙ v)ₙ.
	x := small3()
	v := []float64{1, 2, 3}
	direct := ModeVectorProduct(x, 1, v)
	decoupled := Collapse(ModeVectorHadamard(x, 1, v), 1)
	if !Equal(direct, decoupled, 1e-12) {
		t.Fatal("decoupling identity violated")
	}
}

func TestModeMatrixHadamardShape(t *testing.T) {
	x := small3()
	u := matrix.FromRows([][]float64{{1, 0, 2}, {0, 1, 0}}) // 2×3 = Q×J
	h := ModeMatrixHadamard(x, 1, u)
	if h.Order() != 4 || h.Dim(3) != 2 {
		t.Fatalf("shape %v", h.Dims())
	}
	// Entry (1,2,0) has j=2: q=0 gives 3·2=6, q=1 gives 3·0 (skipped).
	if h.At(1, 2, 0, 0) != 6 {
		t.Fatalf("h(1,2,0,0)=%v", h.At(1, 2, 0, 0))
	}
	if h.At(1, 2, 0, 1) != 0 {
		t.Fatalf("h(1,2,0,1)=%v", h.At(1, 2, 0, 1))
	}
}

func TestModeMatrixProductAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	x := randomTensor(rng, []int64{4, 5, 3}, 10)
	u := matrix.Random(2, 5, rng) // Q×J: contract mode 1
	y := ModeMatrixProduct(x, 1, u)
	if y.Dim(1) != 2 {
		t.Fatalf("result dims %v", y.Dims())
	}
	// Dense reference.
	xd := FromSparse(x)
	for i := int64(0); i < 4; i++ {
		for q := int64(0); q < 2; q++ {
			for k := int64(0); k < 3; k++ {
				var want float64
				for j := int64(0); j < 5; j++ {
					want += xd.At(i, j, k) * u.At(int(q), int(j))
				}
				if math.Abs(y.At(i, q, k)-want) > 1e-10 {
					t.Fatalf("y(%d,%d,%d)=%v want %v", i, q, k, y.At(i, q, k), want)
				}
			}
		}
	}
}

func TestMatricize(t *testing.T) {
	x := small3()
	m1 := Matricize(x, 0) // 2×6
	if m1.Rows != 2 || m1.Cols != 6 {
		t.Fatalf("matricize shape %dx%d", m1.Rows, m1.Cols)
	}
	// Kolda ordering: col = j + k*J for mode-0 matricization of I×J×K.
	// Entry (1,2,0)=3 → row 1, col 2+0*3=2.
	if m1.At(1, 2) != 3 {
		t.Fatalf("m1(1,2)=%v", m1.At(1, 2))
	}
	// Entry (0,1,1)=2 → row 0, col 1+1*3=4.
	if m1.At(0, 4) != 2 {
		t.Fatalf("m1(0,4)=%v", m1.At(0, 4))
	}
}

func TestMatricizeNormPreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := randomTensor(rng, []int64{5, 4, 3}, 20)
	for n := 0; n < 3; n++ {
		m := Matricize(x, n)
		if math.Abs(m.Norm()-x.Norm()) > 1e-10 {
			t.Fatalf("mode-%d matricization changed the norm", n)
		}
	}
}

func TestMTTKRPAgainstMatricizedKhatriRao(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := randomTensor(rng, []int64{4, 3, 5}, 15)
	a := matrix.Random(4, 2, rng)
	b := matrix.Random(3, 2, rng)
	c := matrix.Random(5, 2, rng)
	factors := []*matrix.Matrix{a, b, c}
	// Reference: X₍₁₎ (C ⊙ B); Kolda column ordering puts the later mode
	// on the left of the Khatri-Rao product.
	ref := matrix.Mul(Matricize(x, 0), matrix.KhatriRao(c, b))
	got := MTTKRP(x, factors, 0)
	if !got.Equal(ref, 1e-10) {
		t.Fatal("MTTKRP != X₍₁₎(C⊙B)")
	}
	// Mode 1: X₍₂₎ (C ⊙ A).
	ref2 := matrix.Mul(Matricize(x, 1), matrix.KhatriRao(c, a))
	if !MTTKRP(x, factors, 1).Equal(ref2, 1e-10) {
		t.Fatal("MTTKRP mode 1 != X₍₂₎(C⊙A)")
	}
}

func TestAddAndScale(t *testing.T) {
	a := New(2, 2)
	a.Append(1, 0, 0)
	b := New(2, 2)
	b.Append(2, 0, 0)
	b.Append(5, 1, 1)
	s := Add(a, b)
	if s.At(0, 0) != 3 || s.At(1, 1) != 5 {
		t.Fatalf("Add wrong: %v %v", s.At(0, 0), s.At(1, 1))
	}
	s.Scale(2)
	if s.At(0, 0) != 6 {
		t.Fatal("Scale wrong")
	}
}

func TestSumAll(t *testing.T) {
	x := small3()
	if SumAll(x) != 10 {
		t.Fatalf("SumAll=%v", SumAll(x))
	}
}

func TestDenseRoundTrip(t *testing.T) {
	x := small3()
	d := FromSparse(x)
	back := d.ToSparse()
	if !Equal(x, back, 0) {
		t.Fatal("dense round trip lost entries")
	}
	if math.Abs(d.Norm()-x.Norm()) > 1e-12 {
		t.Fatal("dense norm differs")
	}
}

func TestDenseAccessors(t *testing.T) {
	d := NewDense(2, 3)
	d.Set(5, 1, 2)
	d.Add(2, 1, 2)
	if d.At(1, 2) != 7 {
		t.Fatalf("dense At=%v", d.At(1, 2))
	}
	if d.Order() != 2 || d.Dim(1) != 3 {
		t.Fatal("dense shape accessors wrong")
	}
}

func TestIORoundTrip(t *testing.T) {
	x := small3()
	var buf bytes.Buffer
	if err := WriteCOO(&buf, x); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCOO(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(x, back, 0) {
		t.Fatal("COO round trip mismatch")
	}
	if back.Dim(1) != 3 {
		t.Fatalf("shape header lost: %v", back.Dims())
	}
}

func TestReadCOOInfersShape(t *testing.T) {
	in := "0 0 0 1.5\n2 1 3 -2\n"
	x, err := ReadCOO(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{3, 2, 4}
	for m, d := range x.Dims() {
		if d != want[m] {
			t.Fatalf("inferred dims %v", x.Dims())
		}
	}
	if x.At(2, 1, 3) != -2 {
		t.Fatal("values lost")
	}
}

func TestReadCOOErrors(t *testing.T) {
	cases := []string{
		"",                      // empty, no header
		"0 a 0 1\n",             // bad index
		"0 0 0 x\n",             // bad value
		"0 0 1\n0 0 0 1\n",      // inconsistent order
		"# tensor 2 2\n5 0 1\n", // index out of declared range
	}
	for i, in := range cases {
		if _, err := ReadCOO(strings.NewReader(in)); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

// randomTensor draws nnz entries at distinct uniform coordinates.
func randomTensor(rng *rand.Rand, dims []int64, nnz int) *Tensor {
	t := New(dims...)
	seen := map[string]bool{}
	coords := make([]int64, len(dims))
	for len(seen) < nnz {
		key := ""
		for m, d := range dims {
			coords[m] = rng.Int63n(d)
			key += string(rune(coords[m])) + ","
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		t.Append(rng.NormFloat64(), coords...)
	}
	t.Coalesce()
	return t
}
