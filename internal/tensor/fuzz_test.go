package tensor

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCOO exercises the text parser on arbitrary input: it must
// never panic, and every tensor it accepts must round-trip through
// WriteCOO/ReadCOO unchanged.
func FuzzReadCOO(f *testing.F) {
	seeds := []string{
		"",
		"# tensor 2 3 4\n0 1 2 1.5\n",
		"0 0 0 1\n1 1 1 -2\n",
		"# tensor 2 2\n0 1 3.25\n",
		"# comment\n0 0 0 0 0 7\n",
		"0 0 0 1e308\n",
		"# tensor 1\n0 1\n",
		"a b c d\n",
		"# tensor -1 2 2\n",
		"9999999999999999999999 0 0 1\n",
		"0 0 0 nan\n",
		"0 0 0 1\n0 0 1\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		x, err := ReadCOO(strings.NewReader(in))
		if err != nil {
			return // rejection is fine; panics are not
		}
		var buf bytes.Buffer
		if err := WriteCOO(&buf, x); err != nil {
			t.Fatalf("accepted tensor failed to serialize: %v", err)
		}
		back, err := ReadCOO(&buf)
		if err != nil {
			t.Fatalf("serialized tensor failed to parse: %v", err)
		}
		if back.Order() != x.Order() || back.NNZ() != x.NNZ() {
			t.Fatalf("round trip changed shape: %v/%d vs %v/%d",
				back.Dims(), back.NNZ(), x.Dims(), x.NNZ())
		}
	})
}
