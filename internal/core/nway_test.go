package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/haten2/haten2/internal/matrix"
	"github.com/haten2/haten2/internal/tensor"
)

func random4Way(rng *rand.Rand, dims [4]int64, nnz int) *tensor.Tensor {
	t := tensor.New(dims[0], dims[1], dims[2], dims[3])
	for e := 0; e < nnz; e++ {
		t.Append(1+rng.Float64(), rng.Int63n(dims[0]), rng.Int63n(dims[1]), rng.Int63n(dims[2]), rng.Int63n(dims[3]))
	}
	t.Coalesce()
	return t
}

func TestStageNValidation(t *testing.T) {
	c := testCluster()
	x2 := tensor.New(2, 2)
	x2.Append(1, 0, 0)
	if _, err := StageN(c, "X", x2); err == nil {
		t.Fatal("order 2 accepted")
	}
	x5 := tensor.New(2, 2, 2, 2, 2)
	x5.Append(1, 0, 0, 0, 0, 0)
	if _, err := StageN(c, "X", x5); err == nil {
		t.Fatal("order 5 accepted")
	}
}

// TestContractN4WayParafacMatchesMTTKRP checks the 4-way PairwiseMerge
// path against the in-memory N-way MTTKRP.
func TestContractN4WayParafacMatchesMTTKRP(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	dims := [4]int64{4, 5, 3, 4}
	x := random4Way(rng, dims, 30)
	const rank = 3
	factors := make([]*matrix.Matrix, 4)
	for m := range factors {
		factors[m] = matrix.Random(int(dims[m]), rank, rng)
	}
	c := testCluster()
	s, err := StageN(c, "X4", x)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 4; n++ {
		modes := otherModesN(4, n)
		others := make([]*matrix.Matrix, len(modes))
		for i, m := range modes {
			others[i] = factors[m]
		}
		ys, err := s.contractN(n, others, true)
		if err != nil {
			t.Fatalf("mode %d: %v", n, err)
		}
		got := matrix.New(int(dims[n]), rank)
		for _, e := range ys {
			r := int(e.Cols[0])
			got.Set(int(e.I), r, got.At(int(e.I), r)+e.Val)
		}
		want := tensor.MTTKRP(x, factors, n)
		if !got.Equal(want, 1e-9) {
			t.Fatalf("mode %d: 4-way MTTKRP mismatch", n)
		}
	}
}

// TestContractN4WayTuckerMatchesReference checks the 4-way CrossMerge
// path against chained in-memory n-mode products.
func TestContractN4WayTuckerMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	dims := [4]int64{4, 4, 3, 3}
	x := random4Way(rng, dims, 25)
	core := []int{2, 3, 2, 2}
	factors := make([]*matrix.Matrix, 4)
	for m := range factors {
		factors[m] = matrix.Random(int(dims[m]), core[m], rng)
	}
	c := testCluster()
	s, err := StageN(c, "X4t", x)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 4; n++ {
		modes := otherModesN(4, n)
		others := make([]*matrix.Matrix, len(modes))
		for i, m := range modes {
			others[i] = factors[m]
		}
		ys, err := s.contractN(n, others, false)
		if err != nil {
			t.Fatalf("mode %d: %v", n, err)
		}
		// Reference: contract every other mode in sequence.
		ref := x
		for i := len(modes) - 1; i >= 0; i-- {
			ref = tensor.ModeMatrixProduct(ref, modes[i], factors[modes[i]].T())
		}
		// Compare entrywise.
		got := map[[4]int64]float64{}
		for _, e := range ys {
			var key [4]int64
			key[n] = e.I
			for i, m := range modes {
				key[m] = int64(e.Cols[i])
			}
			got[key] += e.Val
		}
		for p := 0; p < ref.NNZ(); p++ {
			idx := ref.Index(p)
			var key [4]int64
			copy(key[:], idx)
			if math.Abs(got[key]-ref.Value(p)) > 1e-9 {
				t.Fatalf("mode %d: mismatch at %v: got %v want %v", n, key, got[key], ref.Value(p))
			}
			delete(got, key)
		}
		for key, v := range got {
			if math.Abs(v) > 1e-9 {
				t.Fatalf("mode %d: spurious entry at %v: %v", n, key, v)
			}
		}
	}
}

// TestContractN3WayAgreesWith3WayPlan cross-checks the generalized plan
// against the specialized 3-way DRI implementation.
func TestContractN3WayAgreesWith3WayPlan(t *testing.T) {
	rng := rand.New(rand.NewSource(203))
	x := randomSparse(rng, [3]int64{5, 6, 4}, 25)
	u1 := matrix.Random(6, 3, rng)
	u2 := matrix.Random(4, 3, rng)

	c1 := testCluster()
	s1, _ := Stage(c1, "X3", x)
	want, err := ParafacContract(s1, 0, u1, u2, DRI)
	if err != nil {
		t.Fatal(err)
	}

	c2 := testCluster()
	s2, err := StageN(c2, "X3n", x)
	if err != nil {
		t.Fatal(err)
	}
	ys, err := s2.contractN(0, []*matrix.Matrix{u1, u2}, true)
	if err != nil {
		t.Fatal(err)
	}
	got := matrix.New(5, 3)
	for _, e := range ys {
		r := int(e.Cols[0])
		got.Set(int(e.I), r, got.At(int(e.I), r)+e.Val)
	}
	if !got.Equal(want, 1e-9) {
		t.Fatal("N-way plan disagrees with 3-way plan")
	}
}

func TestParafacALSN4WayRecoversRank1(t *testing.T) {
	// An exactly rank-1 4-way tensor from positive factors.
	rng := rand.New(rand.NewSource(204))
	dims := []int64{4, 3, 4, 3}
	vecs := make([][]float64, 4)
	for m := range vecs {
		vecs[m] = make([]float64, dims[m])
		for i := range vecs[m] {
			vecs[m][i] = 0.5 + rng.Float64()
		}
	}
	x := tensor.New(dims...)
	var rec func(m int, coords []int64, v float64)
	rec = func(m int, coords []int64, v float64) {
		if m == 4 {
			x.Append(v, coords...)
			return
		}
		for i := int64(0); i < dims[m]; i++ {
			rec(m+1, append(coords, i), v*vecs[m][i])
		}
	}
	rec(0, nil, 1)
	x.Coalesce()
	c := testCluster()
	res, err := ParafacALSN(c, x, 1, Options{Variant: DRI, MaxIters: 20, Seed: 1, TrackFit: true, Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if fit := res.Model.Fit(x); fit < 0.999 {
		t.Fatalf("4-way rank-1 fit %v (fits %v)", fit, res.Fits)
	}
}

func TestTuckerALSN4Way(t *testing.T) {
	rng := rand.New(rand.NewSource(205))
	x := random4Way(rng, [4]int64{6, 5, 4, 3}, 40)
	c := testCluster()
	res, err := TuckerALSN(c, x, []int{2, 2, 2, 2}, Options{Variant: DRI, MaxIters: 6, Seed: 2, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	// Core norms non-decreasing and bounded by ‖X‖.
	for i := 1; i < len(res.CoreNorms); i++ {
		if res.CoreNorms[i] < res.CoreNorms[i-1]-1e-8 {
			t.Fatalf("‖G‖ decreased: %v", res.CoreNorms)
		}
	}
	if last := res.CoreNorms[len(res.CoreNorms)-1]; last > x.Norm()+1e-8 {
		t.Fatalf("‖G‖=%v exceeds ‖X‖=%v", last, x.Norm())
	}
	// Orthonormal factors.
	for m, f := range res.Model.Factors {
		if !matrix.Gram(f).Equal(matrix.Identity(f.Cols), 1e-8) {
			t.Fatalf("factor %d not orthonormal", m)
		}
	}
	// The model evaluates without NaNs.
	if v := res.Model.At(0, 0, 0, 0); math.IsNaN(v) {
		t.Fatal("NaN in model")
	}
}

func TestTuckerALSNValidation(t *testing.T) {
	c := testCluster()
	x := tensor.New(3, 3, 3, 3)
	x.Append(1, 0, 0, 0, 0)
	if _, err := TuckerALSN(c, x, []int{2, 2, 2}, Options{}); err == nil {
		t.Fatal("wrong core arity accepted")
	}
	if _, err := TuckerALSN(c, x, []int{2, 2, 2, 9}, Options{}); err == nil {
		t.Fatal("oversized core accepted")
	}
	if _, err := ParafacALSN(c, x, 0, Options{}); err == nil {
		t.Fatal("rank 0 accepted")
	}
}

// TestQuickNWayParafacMatchesMTTKRP randomizes order (3 or 4), shapes,
// and mode.
func TestQuickNWayParafacMatchesMTTKRP(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		order := 3 + rng.Intn(2)
		dims := make([]int64, order)
		for m := range dims {
			dims[m] = 2 + rng.Int63n(4)
		}
		x := tensor.New(dims...)
		coords := make([]int64, order)
		for e := 0; e < 4+rng.Intn(15); e++ {
			for m := range coords {
				coords[m] = rng.Int63n(dims[m])
			}
			x.Append(rng.NormFloat64(), coords...)
		}
		x.Coalesce()
		if x.NNZ() == 0 {
			return true
		}
		rank := 1 + rng.Intn(3)
		factors := make([]*matrix.Matrix, order)
		for m := range factors {
			factors[m] = matrix.Random(int(dims[m]), rank, rng)
		}
		n := rng.Intn(order)
		modes := otherModesN(order, n)
		others := make([]*matrix.Matrix, len(modes))
		for i, m := range modes {
			others[i] = factors[m]
		}
		c := testCluster()
		s, err := StageN(c, "Xq", x)
		if err != nil {
			return false
		}
		ys, err := s.contractN(n, others, true)
		if err != nil {
			return false
		}
		got := matrix.New(int(dims[n]), rank)
		for _, e := range ys {
			r := int(e.Cols[0])
			got.Set(int(e.I), r, got.At(int(e.I), r)+e.Val)
		}
		return got.Equal(tensor.MTTKRP(x, factors, n), 1e-9)
	}
	if err := quick.Check(f, qcfg(206)); err != nil {
		t.Fatal(err)
	}
}
