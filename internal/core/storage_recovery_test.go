package core

import (
	"errors"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"github.com/haten2/haten2/internal/dfs"
	"github.com/haten2/haten2/internal/mr"
)

// storageTestCluster builds a cluster whose DFS uses tiny blocks and
// the given replication factor, so even small decomposition inputs
// span many blocks and replica copies — the surface the storage fault
// model acts on.
func storageTestCluster(repl int) *mr.Cluster {
	return mr.NewClusterWithFS(mr.Config{Machines: 4, SlotsPerMachine: 2},
		dfs.New(dfs.Options{BlockSize: 256, Replication: repl, Machines: 4}))
}

// TestStorageReplicationSweepBitIdentical pins the acceptance
// invariant that the durability layer is invisible to the numerics: a
// PARAFAC run gives byte-for-byte the same model at replication 1, 2,
// and 3 (tiny 256-byte blocks) as on the default DFS (64 MiB blocks,
// replication 3). CI legs can select a single factor via
// HATEN2_STORAGE_REPL; locally the whole sweep runs.
func TestStorageReplicationSweepBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	x := randomSparse(rng, [3]int64{12, 10, 8}, 80)
	opt := Options{Variant: DRI, MaxIters: 5, Tol: 1e-12, Seed: 17}

	ref, err := ParafacALS(testCluster(), x, 3, opt)
	if err != nil {
		t.Fatal(err)
	}

	repls := []int{1, 2, 3}
	if v := os.Getenv("HATEN2_STORAGE_REPL"); v != "" {
		r, err := strconv.Atoi(v)
		if err != nil || r < 1 {
			t.Fatalf("bad HATEN2_STORAGE_REPL %q: %v", v, err)
		}
		repls = []int{r}
	}
	for _, repl := range repls {
		got, err := ParafacALS(storageTestCluster(repl), x, 3, opt)
		if err != nil {
			t.Fatalf("replication %d: %v", repl, err)
		}
		assertKruskalBitsEqual(t, ref.Model, got.Model)
	}
}

// TestStorageFaultySweepBitIdentical runs the same decomposition under
// seeded corruption and replica-loss plans at replication 3: whenever
// enough replicas survive for the run to finish, the model must be
// byte-identical to the fault-free reference — storage faults move
// time and counters, never factor bytes.
func TestStorageFaultySweepBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	x := randomSparse(rng, [3]int64{12, 10, 8}, 80)
	opt := Options{Variant: DRI, MaxIters: 5, Tol: 1e-12, Seed: 17}

	ref, err := ParafacALS(storageTestCluster(3), x, 3, opt)
	if err != nil {
		t.Fatal(err)
	}

	found := false
	for s := int64(0); s < 50 && !found; s++ {
		c := storageTestCluster(3)
		c.InstallFaultPlan(&mr.FaultPlan{Seed: s, BlockCorruptRate: 0.1, ReplicaLossRate: 0.05})
		got, err := ParafacALS(c, x, 3, opt)
		if err != nil {
			var dl *dfs.ErrDataLoss
			if !errors.As(err, &dl) {
				t.Fatalf("seed %d: unexpected error class: %v", s, err)
			}
			continue // every replica of some block was bad; covered below
		}
		tot := c.Totals()
		if tot.CorruptBlocks == 0 && tot.LostReplicas == 0 {
			continue // plan touched nothing this seed; not a real exercise
		}
		assertKruskalBitsEqual(t, ref.Model, got.Model)
		if tot.FailoverBytes+tot.ScrubBytes == 0 {
			t.Fatalf("seed %d: faults detected but no recovery traffic charged: %+v", s, tot)
		}
		if tot.StorageSeconds <= 0 {
			t.Fatalf("seed %d: recovery traffic charged no simulated time", s)
		}
		found = true
	}
	if !found {
		t.Fatal("no seed under 50 exercised corruption or loss without data loss")
	}
}

// TestStorageDataLossCheckpointResume is the end-to-end acceptance
// scenario for unrecoverable storage failure: at replication 1 a
// corrupt block has no surviving replica, the run dies with a typed
// *dfs.ErrDataLoss, and the driver resumes from its last checkpoint on
// the same DFS (faults cleared, as after an operator restored the
// volume) to a model byte-identical to an uninterrupted run.
func TestStorageDataLossCheckpointResume(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := randomSparse(rng, [3]int64{12, 10, 8}, 80)
	opt := Options{Variant: DRI, MaxIters: 6, Tol: 1e-12, Seed: 17, TrackFit: true}

	ref, err := ParafacALS(testCluster(), x, 3, opt)
	if err != nil {
		t.Fatal(err)
	}

	opt.Checkpoint = "models/storage"
	var survivor *mr.Cluster
	var lossErr error
	for s := int64(0); s < 60; s++ {
		c := storageTestCluster(1)
		c.InstallFaultPlan(&mr.FaultPlan{Seed: s, BlockCorruptRate: 0.02})
		_, err := ParafacALS(c, x, 3, opt)
		if err == nil {
			continue // clean run; try another seed below
		}
		var dl *dfs.ErrDataLoss
		if !errors.As(err, &dl) {
			t.Fatalf("seed %d: unexpected error class: %v", s, err)
		}
		if _, it, ckErr := loadParafacCheckpoint(c, opt.Checkpoint); ckErr == nil && it > 0 {
			survivor, lossErr = c, err
			break
		}
		// Data loss before the first checkpoint committed; try again.
	}
	if survivor == nil {
		t.Fatal("no seed under 60 lost data after a committed checkpoint")
	}
	var ec *dfs.ErrCorrupt
	if !errors.As(lossErr, &ec) {
		t.Fatalf("data loss does not unwrap to the corrupt replica: %v", lossErr)
	}
	// The FS-level stats (not job totals: the fatal read may be a
	// driver-level ReadFile between jobs) record the detection.
	if st := survivor.FS().Stats(); st.CorruptBlocks == 0 {
		t.Fatalf("data loss without a detected corrupt block: %+v", st)
	}

	// Resume on the surviving DFS with the faults cleared (zero rates
	// uninstall the storage plan; previously corrupt blocks read clean).
	c2 := mr.NewClusterWithFS(mr.Config{Machines: 4, SlotsPerMachine: 2}, survivor.FS())
	c2.InstallFaultPlan(&mr.FaultPlan{})
	resumed, err := ParafacALS(c2, x, 3, opt)
	if err != nil {
		t.Fatal(err)
	}
	assertKruskalBitsEqual(t, ref.Model, resumed.Model)
	if resumed.Iters != ref.Iters {
		t.Fatalf("resumed run iterated %d times, reference %d", resumed.Iters, ref.Iters)
	}
}
