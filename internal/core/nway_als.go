package core

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/haten2/haten2/internal/matrix"
	"github.com/haten2/haten2/internal/mr"
	"github.com/haten2/haten2/internal/tensor"
)

// ParafacResultN is the outcome of an N-way PARAFAC run.
type ParafacResultN struct {
	Model     *tensor.Kruskal
	Iters     int
	Fits      []float64
	Converged bool
}

// ParafacALSN runs N-way PARAFAC-ALS (the paper's §II-B1 N-way
// formulation) with every bottleneck product computed by the
// distributed DRI plan. Orders 3 and 4 are supported.
func ParafacALSN(c *mr.Cluster, x *tensor.Tensor, rank int, opt Options) (*ParafacResultN, error) {
	if rank <= 0 {
		return nil, fmt.Errorf("core: rank must be positive, got %d", rank)
	}
	opt = opt.withDefaults()
	defer installBackend(c, opt)()
	s, err := StageN(c, tmpName(c, "parafacN", "X"), x)
	if err != nil {
		return nil, err
	}
	defer s.cleanupN([]string{s.Name})
	s.SetCodec(opt.Codec)
	tr := c.Tracer()
	defer tr.End(tr.Begin("run", "parafacN-als/DRI"))

	order := len(s.Dims)
	rng := rand.New(rand.NewSource(opt.Seed))
	factors := make([]*matrix.Matrix, order)
	for m := 0; m < order; m++ {
		factors[m] = matrix.Random(int(s.Dims[m]), rank, rng)
	}
	lambda := make([]float64, rank)
	for r := range lambda {
		lambda[r] = 1
	}
	res := &ParafacResultN{}
	prevFit := math.Inf(-1)
	for it := 0; it < opt.MaxIters; it++ {
		iterSpan := tr.Begin("iter", fmt.Sprintf("iter%02d", it))
		for n := 0; n < order; n++ {
			modeSpan := tr.Begin("mode", fmt.Sprintf("mode%d", n))
			modes := otherModesN(order, n)
			others := make([]*matrix.Matrix, len(modes))
			for i, m := range modes {
				others[i] = factors[m]
			}
			ys, err := s.contractN(n, others, true)
			if err != nil {
				return nil, err
			}
			y := matrix.New(int(s.Dims[n]), rank)
			for _, e := range ys {
				r := int(e.Cols[0])
				y.Set(int(e.I), r, y.At(int(e.I), r)+e.Val)
			}
			gram := matrix.New(rank, rank)
			for i := range gram.Data {
				gram.Data[i] = 1
			}
			for _, o := range others {
				gram = matrix.Hadamard(gram, matrix.Gram(o))
			}
			a := matrix.Mul(y, matrix.PseudoInverse(gram))
			norms := a.NormalizeColumns()
			for r, nv := range norms {
				if nv == 0 {
					for i := 0; i < a.Rows; i++ {
						a.Set(i, r, rng.Float64())
					}
					a.NormalizeColumns()
					nv = 1
				}
				lambda[r] = nv
			}
			factors[n] = a
			tr.End(modeSpan)
		}
		res.Iters = it + 1
		tr.End(iterSpan)
		if opt.TrackFit {
			model := &tensor.Kruskal{Lambda: append([]float64(nil), lambda...), Factors: factors}
			fit := model.Fit(x)
			res.Fits = append(res.Fits, fit)
			if d := fit - prevFit; d >= 0 && d < opt.Tol {
				res.Converged = true
				break
			}
			prevFit = fit
		}
	}
	res.Model = &tensor.Kruskal{Lambda: lambda, Factors: factors}
	return res, nil
}

// TuckerResultN is the outcome of an N-way Tucker run.
type TuckerResultN struct {
	Model     *tensor.TuckerModel
	Iters     int
	CoreNorms []float64
	Converged bool
}

// TuckerALSN runs N-way Tucker-ALS with the DRI plan. core gives the
// desired core shape, one entry per mode. Orders 3 and 4 are supported.
func TuckerALSN(c *mr.Cluster, x *tensor.Tensor, core []int, opt Options) (*TuckerResultN, error) {
	order := x.Order()
	if len(core) != order {
		return nil, fmt.Errorf("core: TuckerALSN wants %d core dims, got %d", order, len(core))
	}
	for m, p := range core {
		if p <= 0 || int64(p) > x.Dim(m) {
			return nil, fmt.Errorf("core: invalid core dimension %d for mode %d", p, m)
		}
	}
	opt = opt.withDefaults()
	defer installBackend(c, opt)()
	s, err := StageN(c, tmpName(c, "tuckerN", "X"), x)
	if err != nil {
		return nil, err
	}
	defer s.cleanupN([]string{s.Name})
	s.SetCodec(opt.Codec)
	tr := c.Tracer()
	defer tr.End(tr.Begin("run", "tuckerN-als/DRI"))

	rng := rand.New(rand.NewSource(opt.Seed))
	factors := make([]*matrix.Matrix, order)
	for m := 0; m < order; m++ {
		q, _ := matrix.QR(matrix.Random(int(s.Dims[m]), core[m], rng))
		factors[m] = q
	}
	res := &TuckerResultN{}
	prevNorm := 0.0
	var lastY []NYEntry
	lastModes := otherModesN(order, order-1)
	for it := 0; it < opt.MaxIters; it++ {
		iterSpan := tr.Begin("iter", fmt.Sprintf("iter%02d", it))
		for n := 0; n < order; n++ {
			modeSpan := tr.Begin("mode", fmt.Sprintf("mode%d", n))
			modes := otherModesN(order, n)
			others := make([]*matrix.Matrix, len(modes))
			cols := 1
			for i, m := range modes {
				others[i] = factors[m]
				cols *= core[m]
			}
			ys, err := s.contractN(n, others, false)
			if err != nil {
				return nil, err
			}
			// Matricize 𝒴 with the multiplied modes flattened.
			ym := matrix.New(int(s.Dims[n]), cols)
			for _, e := range ys {
				col := 0
				for i := range modes {
					col = col*core[modes[i]] + int(e.Cols[i])
				}
				ym.Set(int(e.I), col, e.Val)
			}
			factors[n] = matrix.LeadingLeftSingularVectors(ym, core[n])
			if n == order-1 {
				lastY = ys
			}
			tr.End(modeSpan)
		}
		// 𝒢 ← 𝒴 ×_N A⁽ᴺ⁾ᵀ from the final mode's contraction.
		coreDims := make([]int64, order)
		for m := range coreDims {
			coreDims[m] = int64(core[m])
		}
		g := tensor.NewDense(coreDims...)
		last := factors[order-1]
		coords := make([]int64, order)
		for _, e := range lastY {
			for i, m := range lastModes {
				coords[m] = int64(e.Cols[i])
			}
			for r := 0; r < core[order-1]; r++ {
				cv := last.At(int(e.I), r)
				if cv == 0 {
					continue
				}
				coords[order-1] = int64(r)
				g.Add(e.Val*cv, coords...)
			}
		}
		norm := g.Norm()
		res.CoreNorms = append(res.CoreNorms, norm)
		res.Iters = it + 1
		res.Model = &tensor.TuckerModel{Core: g, Factors: append([]*matrix.Matrix(nil), factors...)}
		tr.End(iterSpan)
		if it > 0 && norm-prevNorm < opt.Tol*math.Max(1, prevNorm) {
			res.Converged = true
			break
		}
		prevNorm = norm
	}
	return res, nil
}
