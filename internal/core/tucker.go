package core

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/haten2/haten2/internal/matrix"
	"github.com/haten2/haten2/internal/mr"
	"github.com/haten2/haten2/internal/tensor"
)

// TuckerResult is the outcome of a Tucker-ALS run.
type TuckerResult struct {
	// Model holds the core tensor and orthonormal factor matrices.
	Model *tensor.TuckerModel
	// Iters is the number of completed outer iterations.
	Iters int
	// CoreNorms holds ‖𝒢‖_F after each iteration — the quantity whose
	// stagnation is Algorithm 2's stopping criterion.
	CoreNorms []float64
	// Fits holds per-iteration fits when Options.TrackFit is set.
	Fits []float64
	// Converged reports whether ‖𝒢‖ stagnated before MaxIters.
	Converged bool
}

// TuckerALS runs the 3-way Tucker-ALS of Algorithm 2 with the bottleneck
// 𝒳 ×_{m1} U1ᵀ ×_{m2} U2ᵀ computed on the cluster by the selected
// HaTen2 plan. core gives the desired core tensor shape (P, Q, R); the
// factor update (P leading left singular vectors of Y₍ₙ₎) runs locally
// because Y₍ₙ₎ is an Iₙ×(Q·R) matrix with a tiny second dimension.
func TuckerALS(c *mr.Cluster, x *tensor.Tensor, core [3]int, opt Options) (*TuckerResult, error) {
	for m, p := range core {
		if p <= 0 {
			return nil, fmt.Errorf("core: core dimension %d is %d, must be positive", m, p)
		}
		if int64(p) > x.Dim(m) {
			return nil, fmt.Errorf("core: core dimension %d (%d) exceeds tensor dim %d", m, p, x.Dim(m))
		}
	}
	opt = opt.withDefaults()
	defer installBackend(c, opt)()
	s, err := Stage(c, tmpName(c, "tucker", "X"), x)
	if err != nil {
		return nil, err
	}
	defer s.cleanup([]string{s.Name})
	return tuckerALSStaged(s, x, core, opt)
}

func tuckerALSStaged(s *Staged, x *tensor.Tensor, core [3]int, opt Options) (*TuckerResult, error) {
	s.SetCodec(opt.Codec)
	tr := s.cluster.Tracer()
	defer tr.End(tr.Begin("run", "tucker-als/"+opt.Variant.String()))
	rng := rand.New(rand.NewSource(opt.Seed))
	// Initialize all factors as random orthonormal frames (Algorithm 2
	// initializes B and C; mode-0 is overwritten by the first update).
	factors := make([]*matrix.Matrix, 3)
	for m := 0; m < 3; m++ {
		q, _ := matrix.QR(matrix.Random(int(s.Dims[m]), core[m], rng))
		factors[m] = q
	}
	res := &TuckerResult{}
	var lastY []YEntry
	prevNorm := 0.0
	startIter := 0
	if opt.Checkpoint != "" {
		ck, ckIter, err := loadTuckerCheckpoint(s.cluster, opt.Checkpoint)
		if err != nil {
			return nil, err
		}
		if ck != nil {
			for m := range factors {
				if len(ck.factors) != 3 || ck.factors[m].Cols != core[m] {
					return nil, fmt.Errorf("core: checkpoint %q does not match core shape %v",
						opt.Checkpoint, core)
				}
			}
			for m := range factors {
				factors[m] = ck.factors[m].Clone()
			}
			res.CoreNorms = append([]float64(nil), ck.coreNorms...)
			res.Fits = append([]float64(nil), ck.fits...)
			res.Iters = ckIter
			res.Model = &tensor.TuckerModel{Core: cloneDense(ck.core), Factors: cloneMatrices(ck.factors)}
			prevNorm = ck.prevNorm
			startIter = ckIter
			if ck.converged {
				res.Converged = true
				return res, nil
			}
		}
	}
	for it := startIter; it < opt.MaxIters; it++ {
		iterSpan := tr.Begin("iter", fmt.Sprintf("iter%02d", it))
		for n := 0; n < 3; n++ {
			modeSpan := tr.Begin("mode", fmt.Sprintf("mode%d", n))
			m1, m2 := otherModes(n)
			ys, err := TuckerContract(s, n, factors[m1], factors[m2], opt.Variant)
			if err != nil {
				return nil, err
			}
			// A⁽ⁿ⁾ ← leading core[n] left singular vectors of Y₍ₙ₎.
			// Y₍ₙ₎ is Iₙ × (core[m1]·core[m2]); the column layout does
			// not affect the left singular vectors.
			ym := matrix.New(int(s.Dims[n]), core[m1]*core[m2])
			for _, y := range ys {
				ym.Set(int(y.I), int(y.Q)*core[m2]+int(y.R), y.Val)
			}
			factors[n] = matrix.LeadingLeftSingularVectors(ym, core[n])
			if n == 2 {
				lastY = ys
			}
			tr.End(modeSpan)
		}
		// 𝒢 ← 𝒴 ×₃ Cᵀ (Algorithm 2 line 9): the last contraction built
		// 𝒴 = 𝒳 ×₁Aᵀ ×₂Bᵀ with entries (k, p, q); contract mode 3
		// against the freshly updated C.
		g := tensor.NewDense(int64(core[0]), int64(core[1]), int64(core[2]))
		cf := factors[2]
		for _, y := range lastY {
			for r := 0; r < core[2]; r++ {
				cv := cf.At(int(y.I), r)
				if cv == 0 {
					continue
				}
				g.Add(y.Val*cv, int64(y.Q), int64(y.R), int64(r))
			}
		}
		norm := g.Norm()
		res.CoreNorms = append(res.CoreNorms, norm)
		res.Iters = it + 1
		res.Model = &tensor.TuckerModel{Core: g, Factors: append([]*matrix.Matrix(nil), factors...)}
		if opt.TrackFit {
			res.Fits = append(res.Fits, res.Model.Fit(x))
		}
		// Stop when ‖𝒢‖ ceases to increase (Algorithm 2 line 10).
		converged := it > 0 && norm-prevNorm < opt.Tol*math.Max(1, prevNorm)
		if !converged {
			prevNorm = norm
		}
		if opt.Checkpoint != "" {
			if err := saveTuckerCheckpoint(s.cluster, opt.Checkpoint, it+1,
				factors, g, res.CoreNorms, res.Fits, prevNorm, converged); err != nil {
				return nil, err
			}
		}
		tr.End(iterSpan)
		if converged {
			res.Converged = true
			break
		}
	}
	return res, nil
}
