package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/haten2/haten2/internal/matrix"
	"github.com/haten2/haten2/internal/mr"
	"github.com/haten2/haten2/internal/tensor"
)

func qcfg(seed int64) *quick.Config {
	return &quick.Config{MaxCount: 12, Rand: rand.New(rand.NewSource(seed))}
}

// TestQuickTuckerPlansMatchReference is the repository's central
// property test: for random sparse tensors, random factor shapes, every
// mode and every variant, the distributed contraction must equal the
// in-memory n-mode product chain.
func TestQuickTuckerPlansMatchReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := [3]int64{2 + rng.Int63n(5), 2 + rng.Int63n(5), 2 + rng.Int63n(5)}
		x := randomSparse(rng, dims, 3+rng.Intn(20))
		if x.NNZ() == 0 {
			return true
		}
		n := rng.Intn(3)
		m1, m2 := otherModes(n)
		u1 := matrix.Random(int(dims[m1]), 1+rng.Intn(3), rng)
		u2 := matrix.Random(int(dims[m2]), 1+rng.Intn(3), rng)
		want := tuckerReference(x, n, u1, u2)
		c := mr.NewCluster(mr.Config{Machines: 1 + rng.Intn(6)})
		s, err := Stage(c, "X", x)
		if err != nil {
			return false
		}
		v := Variants[rng.Intn(len(Variants))]
		ys, err := TuckerContract(s, n, u1, u2, v)
		if err != nil {
			return false
		}
		got := yEntriesToTensor(ys, n, dims[n], u1.Cols, u2.Cols)
		return tensor.Equal(got, want, 1e-9)
	}
	if err := quick.Check(f, qcfg(101)); err != nil {
		t.Fatal(err)
	}
}

// TestQuickParafacPlansMatchMTTKRP is the PARAFAC counterpart (Lemma 2
// across all variants).
func TestQuickParafacPlansMatchMTTKRP(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := [3]int64{2 + rng.Int63n(5), 2 + rng.Int63n(5), 2 + rng.Int63n(5)}
		x := randomSparse(rng, dims, 3+rng.Intn(20))
		if x.NNZ() == 0 {
			return true
		}
		rank := 1 + rng.Intn(3)
		factors := []*matrix.Matrix{
			matrix.Random(int(dims[0]), rank, rng),
			matrix.Random(int(dims[1]), rank, rng),
			matrix.Random(int(dims[2]), rank, rng),
		}
		n := rng.Intn(3)
		m1, m2 := otherModes(n)
		c := mr.NewCluster(mr.Config{Machines: 1 + rng.Intn(6)})
		s, err := Stage(c, "X", x)
		if err != nil {
			return false
		}
		v := Variants[rng.Intn(len(Variants))]
		got, err := ParafacContract(s, n, factors[m1], factors[m2], v)
		if err != nil {
			return false
		}
		want := tensor.MTTKRP(x, factors, n)
		return got.Equal(want, 1e-9)
	}
	if err := quick.Check(f, qcfg(102)); err != nil {
		t.Fatal(err)
	}
}

// TestQuickJobCountFormulas checks Tables III/IV's job-count column on
// random shapes.
func TestQuickJobCountFormulas(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := randomSparse(rng, [3]int64{4, 4, 4}, 8)
		q := 1 + rng.Intn(3)
		r := 1 + rng.Intn(3)
		v := Variants[rng.Intn(len(Variants))]
		c := testCluster()
		s, err := Stage(c, "X", x)
		if err != nil {
			return false
		}
		u1 := matrix.Random(4, q, rng)
		u2 := matrix.Random(4, r, rng)
		if _, err := TuckerContract(s, 0, u1, u2, v); err != nil {
			return false
		}
		if c.Totals().Jobs != v.TuckerJobs(q, r) {
			return false
		}
		// PARAFAC requires equal ranks.
		c2 := testCluster()
		s2, err := Stage(c2, "X", x)
		if err != nil {
			return false
		}
		u2r := matrix.Random(4, q, rng)
		if _, err := ParafacContract(s2, 0, u1, u2r, v); err != nil {
			return false
		}
		return c2.Totals().Jobs == v.ParafacJobs(q)
	}
	if err := quick.Check(f, qcfg(103)); err != nil {
		t.Fatal(err)
	}
}

// TestQuickIntermediateBounds checks that measured per-job shuffle never
// exceeds the analytic intermediate-data bounds (up to the vector/matrix
// side inputs, which the formulas omit).
func TestQuickIntermediateBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := [3]int64{5 + rng.Int63n(5), 5 + rng.Int63n(5), 5 + rng.Int63n(5)}
		x := randomSparse(rng, dims, 10+rng.Intn(20))
		q := 1 + rng.Intn(3)
		r := 1 + rng.Intn(3)
		v := Variants[rng.Intn(len(Variants))]
		c := testCluster()
		s, err := Stage(c, "X", x)
		if err != nil {
			return false
		}
		u1 := matrix.Random(int(dims[1]), q, rng)
		u2 := matrix.Random(int(dims[2]), r, rng)
		if _, err := TuckerContract(s, 0, u1, u2, v); err != nil {
			return false
		}
		bound := v.TuckerIntermediate(int64(x.NNZ()), dims[0], dims[1], dims[2], q, r)
		// Allow the matrix side inputs (≤ (J+K)·max(q,r) cells) on top of
		// the tensor-data bound.
		slack := (dims[1] + dims[2]) * int64(q+r)
		return c.Totals().MaxShuffleRecords <= bound+slack
	}
	if err := quick.Check(f, qcfg(104)); err != nil {
		t.Fatal(err)
	}
}

func TestParafacRankExceedingDims(t *testing.T) {
	// Rank larger than every mode size: pseudo-inverse handles the rank
	// deficiency and the run must not produce NaNs.
	rng := rand.New(rand.NewSource(105))
	x := randomSparse(rng, [3]int64{3, 3, 3}, 6)
	c := testCluster()
	res, err := ParafacALS(c, x, 5, Options{Variant: DRI, MaxIters: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, lam := range res.Model.Lambda {
		if math.IsNaN(lam) || math.IsInf(lam, 0) {
			t.Fatalf("bad lambda %v", res.Model.Lambda)
		}
	}
	for _, f := range res.Model.Factors {
		for _, v := range f.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatal("NaN/Inf in factors")
			}
		}
	}
}

func TestSingleEntryTensor(t *testing.T) {
	x := tensor.New(4, 4, 4)
	x.Append(3, 1, 2, 3)
	x.Coalesce()
	c := testCluster()
	res, err := ParafacALS(c, x, 1, Options{Variant: DRI, MaxIters: 5, Seed: 1, TrackFit: true})
	if err != nil {
		t.Fatal(err)
	}
	// A single entry is exactly rank 1.
	if fit := res.Model.Fit(x); fit < 0.999 {
		t.Fatalf("fit %v on single-entry tensor", fit)
	}
}

func TestTuckerOnBinaryTensor(t *testing.T) {
	// bin(𝒳) == 𝒳 for a 0/1 tensor: 𝒯′ and 𝒯″ both come from the same
	// values; exercise the DRI path on it.
	rng := rand.New(rand.NewSource(106))
	x := tensor.New(6, 6, 6)
	for i := 0; i < 25; i++ {
		x.Append(1, rng.Int63n(6), rng.Int63n(6), rng.Int63n(6))
	}
	x.Coalesce()
	c := testCluster()
	if _, err := TuckerALS(c, x, [3]int{2, 2, 2}, Options{Variant: DRI, MaxIters: 3, Seed: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestStagedFiberKeysCached(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	x := randomSparse(rng, [3]int64{5, 5, 5}, 12)
	c := testCluster()
	s, err := Stage(c, "X", x)
	if err != nil {
		t.Fatal(err)
	}
	f1, err := s.fiberKeys(1)
	if err != nil {
		t.Fatal(err)
	}
	reads := c.FS().Stats().RecordsRead
	f2, err := s.fiberKeys(1)
	if err != nil {
		t.Fatal(err)
	}
	if c.FS().Stats().RecordsRead != reads {
		t.Fatal("second fiberKeys call re-read the file")
	}
	if len(f1) != len(f2) {
		t.Fatal("cache returned different keys")
	}
	// Distinctness.
	seen := map[[2]int64]bool{}
	for _, k := range f1 {
		if seen[k] {
			t.Fatal("duplicate fiber key")
		}
		seen[k] = true
	}
}
