package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/haten2/haten2/internal/baseline"
	"github.com/haten2/haten2/internal/matrix"
	"github.com/haten2/haten2/internal/mr"
	"github.com/haten2/haten2/internal/tensor"
)

func qcfg(seed int64) *quick.Config {
	return &quick.Config{MaxCount: 12, Rand: rand.New(rand.NewSource(seed))}
}

// TestQuickTuckerPlansMatchReference is the repository's central
// property test: for random sparse tensors, random factor shapes, every
// mode and every variant, the distributed contraction must equal the
// in-memory n-mode product chain.
func TestQuickTuckerPlansMatchReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := [3]int64{2 + rng.Int63n(5), 2 + rng.Int63n(5), 2 + rng.Int63n(5)}
		x := randomSparse(rng, dims, 3+rng.Intn(20))
		if x.NNZ() == 0 {
			return true
		}
		n := rng.Intn(3)
		m1, m2 := otherModes(n)
		u1 := matrix.Random(int(dims[m1]), 1+rng.Intn(3), rng)
		u2 := matrix.Random(int(dims[m2]), 1+rng.Intn(3), rng)
		want := tuckerReference(x, n, u1, u2)
		c := mr.NewCluster(mr.Config{Machines: 1 + rng.Intn(6)})
		s, err := Stage(c, "X", x)
		if err != nil {
			return false
		}
		v := Variants[rng.Intn(len(Variants))]
		ys, err := TuckerContract(s, n, u1, u2, v)
		if err != nil {
			return false
		}
		got := yEntriesToTensor(ys, n, dims[n], u1.Cols, u2.Cols)
		return tensor.Equal(got, want, 1e-9)
	}
	if err := quick.Check(f, qcfg(101)); err != nil {
		t.Fatal(err)
	}
}

// TestQuickParafacPlansMatchMTTKRP is the PARAFAC counterpart (Lemma 2
// across all variants).
func TestQuickParafacPlansMatchMTTKRP(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := [3]int64{2 + rng.Int63n(5), 2 + rng.Int63n(5), 2 + rng.Int63n(5)}
		x := randomSparse(rng, dims, 3+rng.Intn(20))
		if x.NNZ() == 0 {
			return true
		}
		rank := 1 + rng.Intn(3)
		factors := []*matrix.Matrix{
			matrix.Random(int(dims[0]), rank, rng),
			matrix.Random(int(dims[1]), rank, rng),
			matrix.Random(int(dims[2]), rank, rng),
		}
		n := rng.Intn(3)
		m1, m2 := otherModes(n)
		c := mr.NewCluster(mr.Config{Machines: 1 + rng.Intn(6)})
		s, err := Stage(c, "X", x)
		if err != nil {
			return false
		}
		v := Variants[rng.Intn(len(Variants))]
		got, err := ParafacContract(s, n, factors[m1], factors[m2], v)
		if err != nil {
			return false
		}
		want := tensor.MTTKRP(x, factors, n)
		return got.Equal(want, 1e-9)
	}
	if err := quick.Check(f, qcfg(102)); err != nil {
		t.Fatal(err)
	}
}

// TestQuickJobCountFormulas checks Tables III/IV's job-count column on
// random shapes.
func TestQuickJobCountFormulas(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := randomSparse(rng, [3]int64{4, 4, 4}, 8)
		q := 1 + rng.Intn(3)
		r := 1 + rng.Intn(3)
		v := Variants[rng.Intn(len(Variants))]
		c := testCluster()
		s, err := Stage(c, "X", x)
		if err != nil {
			return false
		}
		u1 := matrix.Random(4, q, rng)
		u2 := matrix.Random(4, r, rng)
		if _, err := TuckerContract(s, 0, u1, u2, v); err != nil {
			return false
		}
		if c.Totals().Jobs != v.TuckerJobs(q, r) {
			return false
		}
		// PARAFAC requires equal ranks.
		c2 := testCluster()
		s2, err := Stage(c2, "X", x)
		if err != nil {
			return false
		}
		u2r := matrix.Random(4, q, rng)
		if _, err := ParafacContract(s2, 0, u1, u2r, v); err != nil {
			return false
		}
		return c2.Totals().Jobs == v.ParafacJobs(q)
	}
	if err := quick.Check(f, qcfg(103)); err != nil {
		t.Fatal(err)
	}
}

// TestQuickIntermediateBounds checks that measured per-job shuffle never
// exceeds the analytic intermediate-data bounds (up to the vector/matrix
// side inputs, which the formulas omit).
func TestQuickIntermediateBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := [3]int64{5 + rng.Int63n(5), 5 + rng.Int63n(5), 5 + rng.Int63n(5)}
		x := randomSparse(rng, dims, 10+rng.Intn(20))
		q := 1 + rng.Intn(3)
		r := 1 + rng.Intn(3)
		v := Variants[rng.Intn(len(Variants))]
		c := testCluster()
		s, err := Stage(c, "X", x)
		if err != nil {
			return false
		}
		u1 := matrix.Random(int(dims[1]), q, rng)
		u2 := matrix.Random(int(dims[2]), r, rng)
		if _, err := TuckerContract(s, 0, u1, u2, v); err != nil {
			return false
		}
		bound := v.TuckerIntermediate(int64(x.NNZ()), dims[0], dims[1], dims[2], q, r)
		// Allow the matrix side inputs (≤ (J+K)·max(q,r) cells) on top of
		// the tensor-data bound.
		slack := (dims[1] + dims[2]) * int64(q+r)
		return c.Totals().MaxShuffleRecords <= bound+slack
	}
	if err := quick.Check(f, qcfg(104)); err != nil {
		t.Fatal(err)
	}
}

func TestParafacRankExceedingDims(t *testing.T) {
	// Rank larger than every mode size: pseudo-inverse handles the rank
	// deficiency and the run must not produce NaNs.
	rng := rand.New(rand.NewSource(105))
	x := randomSparse(rng, [3]int64{3, 3, 3}, 6)
	c := testCluster()
	res, err := ParafacALS(c, x, 5, Options{Variant: DRI, MaxIters: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, lam := range res.Model.Lambda {
		if math.IsNaN(lam) || math.IsInf(lam, 0) {
			t.Fatalf("bad lambda %v", res.Model.Lambda)
		}
	}
	for _, f := range res.Model.Factors {
		for _, v := range f.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatal("NaN/Inf in factors")
			}
		}
	}
}

func TestSingleEntryTensor(t *testing.T) {
	x := tensor.New(4, 4, 4)
	x.Append(3, 1, 2, 3)
	x.Coalesce()
	c := testCluster()
	res, err := ParafacALS(c, x, 1, Options{Variant: DRI, MaxIters: 5, Seed: 1, TrackFit: true})
	if err != nil {
		t.Fatal(err)
	}
	// A single entry is exactly rank 1.
	if fit := res.Model.Fit(x); fit < 0.999 {
		t.Fatalf("fit %v on single-entry tensor", fit)
	}
}

func TestTuckerOnBinaryTensor(t *testing.T) {
	// bin(𝒳) == 𝒳 for a 0/1 tensor: 𝒯′ and 𝒯″ both come from the same
	// values; exercise the DRI path on it.
	rng := rand.New(rand.NewSource(106))
	x := tensor.New(6, 6, 6)
	for i := 0; i < 25; i++ {
		x.Append(1, rng.Int63n(6), rng.Int63n(6), rng.Int63n(6))
	}
	x.Coalesce()
	c := testCluster()
	if _, err := TuckerALS(c, x, [3]int{2, 2, 2}, Options{Variant: DRI, MaxIters: 3, Seed: 1}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickParafacMatchesBaselineToolbox is the differential sweep
// against the single-machine reference: the distributed ALS and the
// in-memory Toolbox start from the same seeded init and run the same
// algorithm, so after a fixed number of iterations their models must
// reconstruct the same tensor (summation order differs between the
// shuffle and the in-memory MTTKRP, hence the tolerance).
func TestQuickParafacMatchesBaselineToolbox(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := [3]int64{3 + rng.Int63n(3), 3 + rng.Int63n(3), 3 + rng.Int63n(3)}
		x := randomSparse(rng, dims, 6+rng.Intn(15))
		if x.NNZ() == 0 {
			return true
		}
		rank := 1 + rng.Intn(2)
		v := Variants[rng.Intn(len(Variants))]
		opt := Options{Variant: v, MaxIters: 2, Tol: 1e-12, Seed: seed}
		got, err := ParafacALS(testCluster(), x, rank, opt)
		if err != nil {
			t.Logf("distributed: %v", err)
			return false
		}
		tb := baseline.New(baseline.Config{})
		want, err := tb.ParafacALS(x, rank, baseline.Options{MaxIters: 2, Tol: 1e-12, Seed: seed})
		if err != nil {
			t.Logf("baseline: %v", err)
			return false
		}
		if got.Iters != want.Iters {
			t.Logf("iters %d vs %d", got.Iters, want.Iters)
			return false
		}
		for r := range got.Model.Lambda {
			if d := math.Abs(got.Model.Lambda[r] - want.Model.Lambda[r]); d > 1e-6*max1(want.Model.Lambda[r]) {
				t.Logf("lambda[%d]: %g vs %g", r, got.Model.Lambda[r], want.Model.Lambda[r])
				return false
			}
		}
		return modelsReconstructAlike(got.Model.At, want.Model.At, dims, 1e-6)
	}
	if err := quick.Check(f, qcfg(108)); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTuckerMatchesBaselineToolbox is the Tucker half of the
// differential sweep: distributed HOOI against the in-memory MET-style
// reference, same seed, same iteration budget.
func TestQuickTuckerMatchesBaselineToolbox(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := [3]int64{3 + rng.Int63n(3), 3 + rng.Int63n(3), 3 + rng.Int63n(3)}
		x := randomSparse(rng, dims, 6+rng.Intn(15))
		if x.NNZ() == 0 {
			return true
		}
		v := Variants[rng.Intn(len(Variants))]
		opt := Options{Variant: v, MaxIters: 2, Tol: 1e-12, Seed: seed}
		got, err := TuckerALS(testCluster(), x, [3]int{2, 2, 2}, opt)
		if err != nil {
			t.Logf("distributed: %v", err)
			return false
		}
		tb := baseline.New(baseline.Config{})
		want, err := tb.TuckerALS(x, [3]int{2, 2, 2}, baseline.Options{MaxIters: 2, Tol: 1e-12, Seed: seed})
		if err != nil {
			t.Logf("baseline: %v", err)
			return false
		}
		return modelsReconstructAlike(got.Model.At, want.Model.At, dims, 1e-6)
	}
	if err := quick.Check(f, qcfg(109)); err != nil {
		t.Fatal(err)
	}
}

// modelsReconstructAlike compares two reconstructions entrywise over
// the full (small) index space, with an absolute-plus-relative bound.
func modelsReconstructAlike(got, want func(...int64) float64, dims [3]int64, tol float64) bool {
	for i := int64(0); i < dims[0]; i++ {
		for j := int64(0); j < dims[1]; j++ {
			for k := int64(0); k < dims[2]; k++ {
				g, w := got(i, j, k), want(i, j, k)
				if math.Abs(g-w) > tol*max1(math.Abs(w)) {
					return false
				}
			}
		}
	}
	return true
}

func max1(v float64) float64 {
	if v < 1 {
		return 1
	}
	return v
}

// TestQuickParafacScaleEquivariant is a metamorphic check: scaling the
// tensor by a power of two shifts only floating-point exponents, so the
// decomposition of α·𝒳 must have bit-identical factors and exactly
// α-scaled weights — through the full MapReduce pipeline.
func TestQuickParafacScaleEquivariant(t *testing.T) {
	const alpha = 4.0
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := [3]int64{3 + rng.Int63n(3), 3 + rng.Int63n(3), 3 + rng.Int63n(3)}
		x := randomSparse(rng, dims, 6+rng.Intn(15))
		if x.NNZ() == 0 {
			return true
		}
		xs := x.Clone()
		for p := 0; p < xs.NNZ(); p++ {
			xs.SetValue(p, xs.Value(p)*alpha)
		}
		v := Variants[rng.Intn(len(Variants))]
		opt := Options{Variant: v, MaxIters: 2, Tol: 1e-12, Seed: seed}
		rank := 1 + rng.Intn(2)
		base, err := ParafacALS(testCluster(), x, rank, opt)
		if err != nil {
			return false
		}
		scaled, err := ParafacALS(testCluster(), xs, rank, opt)
		if err != nil {
			return false
		}
		for r := range base.Model.Lambda {
			if scaled.Model.Lambda[r] != alpha*base.Model.Lambda[r] {
				t.Logf("lambda[%d]: %g vs %g·%g", r, scaled.Model.Lambda[r], alpha, base.Model.Lambda[r])
				return false
			}
		}
		for m := range base.Model.Factors {
			fb, fs := base.Model.Factors[m], scaled.Model.Factors[m]
			for i := range fb.Data {
				if math.Float64bits(fb.Data[i]) != math.Float64bits(fs.Data[i]) {
					t.Logf("factor %d entry %d: %x vs %x", m, i,
						math.Float64bits(fb.Data[i]), math.Float64bits(fs.Data[i]))
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, qcfg(110)); err != nil {
		t.Fatal(err)
	}
}

// TestQuickParafacModePermutationEquivariant is the second metamorphic
// check: relabeling the mode-0 indices by a permutation must permute
// the mode-0 factor rows and leave the other factors and the weights
// unchanged. The first full ALS sweep overwrites every factor, so after
// it the result owes nothing to the (unpermuted) mode-0 init; summation
// order inside reduce groups does change, hence the tolerance.
func TestQuickParafacModePermutationEquivariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d0 := 3 + rng.Int63n(3)
		dims := [3]int64{d0, 3 + rng.Int63n(3), 3 + rng.Int63n(3)}
		x := randomSparse(rng, dims, 6+rng.Intn(15))
		if x.NNZ() == 0 {
			return true
		}
		perm := rng.Perm(int(d0))
		xp := tensor.New(dims[0], dims[1], dims[2])
		for p := 0; p < x.NNZ(); p++ {
			idx := x.Index(p)
			xp.Append(x.Value(p), int64(perm[idx[0]]), idx[1], idx[2])
		}
		xp.Coalesce()
		v := Variants[rng.Intn(len(Variants))]
		opt := Options{Variant: v, MaxIters: 2, Tol: 1e-12, Seed: seed}
		rank := 1 + rng.Intn(2)
		base, err := ParafacALS(testCluster(), x, rank, opt)
		if err != nil {
			return false
		}
		permuted, err := ParafacALS(testCluster(), xp, rank, opt)
		if err != nil {
			return false
		}
		const tol = 1e-6
		for r := range base.Model.Lambda {
			if math.Abs(permuted.Model.Lambda[r]-base.Model.Lambda[r]) > tol*max1(base.Model.Lambda[r]) {
				return false
			}
		}
		a0, a0p := base.Model.Factors[0], permuted.Model.Factors[0]
		for i := 0; i < a0.Rows; i++ {
			for c := 0; c < a0.Cols; c++ {
				if math.Abs(a0p.At(perm[i], c)-a0.At(i, c)) > tol {
					return false
				}
			}
		}
		for m := 1; m < 3; m++ {
			fb, fp := base.Model.Factors[m], permuted.Model.Factors[m]
			for i := range fb.Data {
				if math.Abs(fp.Data[i]-fb.Data[i]) > tol {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, qcfg(111)); err != nil {
		t.Fatal(err)
	}
}

func TestStagedFiberKeysCached(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	x := randomSparse(rng, [3]int64{5, 5, 5}, 12)
	c := testCluster()
	s, err := Stage(c, "X", x)
	if err != nil {
		t.Fatal(err)
	}
	f1, err := s.fiberKeys(1)
	if err != nil {
		t.Fatal(err)
	}
	reads := c.FS().Stats().RecordsRead
	f2, err := s.fiberKeys(1)
	if err != nil {
		t.Fatal(err)
	}
	if c.FS().Stats().RecordsRead != reads {
		t.Fatal("second fiberKeys call re-read the file")
	}
	if len(f1) != len(f2) {
		t.Fatal("cache returned different keys")
	}
	// Distinctness.
	seen := map[[2]int64]bool{}
	for _, k := range f1 {
		if seen[k] {
			t.Fatal("duplicate fiber key")
		}
		seen[k] = true
	}
}
