package core

// Columnar block encodings — the shuffle-v2 wire format. Where codec.go
// encodes records one at a time at fixed width, this codec encodes a
// whole block (a DFS file, or one map task's per-reducer shuffle
// partition) as contiguous columns:
//
//	block   := crc32c || uvarint(count) || column …
//	crc32c  := 4-byte little-endian CRC-32C (Castagnoli) over the rest
//	           of the block (count through the last value byte) — the
//	           per-block checksum HDFS keeps beside every block, so a
//	           flipped bit is a decode error, never a silent wrong
//	           record
//	indexes := zigzag-varint delta per record, one column per index
//	           coordinate (delta against the previous record in the
//	           same column; the first record deltas against zero)
//	tags    := one raw byte per record (provenance / side columns)
//	cols    := zigzag-varint delta per record (factor column indexes)
//	values  := 8-byte little-endian IEEE-754 float64 per record
//
// Tensor files are coalesced (sorted lexicographically by coordinate),
// so index columns are non-decreasing and the deltas are tiny — most
// encode in one byte instead of eight. Delta encoding stays *correct*
// on unsorted sequences (shuffle partitions arrive in emission order):
// it merely compresses less when locality is poor, and the engine
// charges whatever the real encoding costs.
//
// The fixed-width codec in codec.go remains the documented fallback
// (select it with Options.Codec = CodecFixed); its per-record size
// constants still back the DFS accounting in records.go.
//
// Every encoder here has a matching incremental sizer with the
// invariant len(Append*Block(nil, recs)) == blockHeaderSize(n) +
// Σ pair/record sizes — the colcodec tests and FuzzColumnarRoundTrip
// pin both directions, and the mr engine charges shuffle bytes through
// the sizers (mr.BlockSizer), so the cost model can never drift from
// the declared wire format.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"math/bits"

	"github.com/haten2/haten2/internal/mr"
)

// Codec selects the wire format jobs use for shuffle accounting.
type Codec uint8

const (
	// CodecColumnar is the default: varint-delta column blocks.
	CodecColumnar Codec = iota
	// CodecFixed is the fixed-width per-record fallback of codec.go.
	CodecFixed
)

func (c Codec) String() string {
	switch c {
	case CodecColumnar:
		return "columnar"
	case CodecFixed:
		return "fixed"
	}
	return fmt.Sprintf("Codec(%d)", uint8(c))
}

// zigzag maps a signed delta to an unsigned varint-friendly value
// (0→0, -1→1, 1→2, …), so small negative deltas stay small.
func zigzag(d int64) uint64 {
	return uint64(d<<1) ^ uint64(d>>63)
}

func unzigzag(u uint64) int64 {
	return int64(u>>1) ^ -int64(u&1)
}

// varintLen is the encoded length of x as a uvarint (1..10 bytes).
func varintLen(x uint64) int64 {
	return int64((bits.Len64(x|1) + 6) / 7)
}

// blockHeaderSize is the header charge for a block of n records: the
// 4-byte CRC-32C field plus the record-count uvarint.
func blockHeaderSize(n int) int64 {
	return crcSize + varintLen(uint64(n))
}

// crcSize is the width of the per-block CRC-32C field.
const crcSize = 4

// crcTable is the Castagnoli polynomial — what HDFS's per-block
// checksums (and most storage systems since) use.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// beginBlock reserves a block's CRC field in dst, returning the offset
// the matching sealBlock fills it at.
func beginBlock(dst []byte) ([]byte, int) {
	return append(dst, 0, 0, 0, 0), len(dst)
}

// sealBlock checksums everything appended since beginBlock and writes
// it into the reserved field.
func sealBlock(dst []byte, at int) []byte {
	binary.LittleEndian.PutUint32(dst[at:], crc32.Checksum(dst[at+crcSize:], crcTable))
	return dst
}

// openBlock splits a block's stored CRC from its body.
func openBlock(src []byte) (stored uint32, body []byte, err error) {
	if len(src) < crcSize {
		return 0, src, fmt.Errorf("core: columnar block shorter than its checksum field")
	}
	return binary.LittleEndian.Uint32(src), src[crcSize:], nil
}

// verifyBlock checks the stored CRC against the region a structural
// decode consumed (body minus the trailing rest). Verification runs
// after the structural pass so the consumed region is known — blocks
// allow trailing bytes — but before any decoded record is returned.
func verifyBlock(stored uint32, body, rest []byte) error {
	if crc32.Checksum(body[:len(body)-len(rest)], crcTable) != stored {
		return fmt.Errorf("core: columnar block checksum mismatch")
	}
	return nil
}

// readUvarint decodes one uvarint with explicit error reporting. The
// decoders are strict: an over-long (non-canonical) encoding is
// rejected, which keeps decode ∘ encode the identity on every accepted
// block — the property FuzzColumnarRoundTrip pins and the cost model's
// sizers assume.
func readUvarint(src []byte) (uint64, []byte, error) {
	u, n := binary.Uvarint(src)
	if n <= 0 {
		return 0, src, fmt.Errorf("core: bad uvarint in columnar block")
	}
	if int64(n) != varintLen(u) {
		return 0, src, fmt.Errorf("core: non-canonical uvarint in columnar block")
	}
	return u, src[n:], nil
}

// readCount reads a block's record-count header. Counts are bounded by
// the remaining input (every record costs at least one byte per
// column), which also rejects counts that would overflow int.
func readCount(src []byte) (int, []byte, error) {
	count, rest, err := readUvarint(src)
	if err != nil {
		return 0, src, err
	}
	if count > uint64(len(rest)) {
		return 0, src, fmt.Errorf("core: short columnar block: %d records in %d bytes", count, len(rest))
	}
	return int(count), rest, nil
}

// int32Checked narrows a decoded column value, surfacing the first
// out-of-range value through errp (a strict decoder cannot truncate:
// the truncated value would re-encode to different bytes).
func int32Checked(v int64, errp *error) int32 {
	if (v > math.MaxInt32 || v < math.MinInt32) && *errp == nil {
		*errp = fmt.Errorf("core: column index %d out of int32 range", v)
	}
	return int32(v)
}

// appendDeltaColumn writes one zigzag-delta index column; get returns
// record i's value for this column.
func appendDeltaColumn(dst []byte, n int, get func(i int) int64) []byte {
	prev := int64(0)
	for i := 0; i < n; i++ {
		v := get(i)
		dst = binary.AppendUvarint(dst, zigzag(v-prev))
		prev = v
	}
	return dst
}

// decodeDeltaColumn reads one zigzag-delta column, handing record i's
// value to set.
func decodeDeltaColumn(src []byte, n int, set func(i int, v int64)) ([]byte, error) {
	prev := int64(0)
	for i := 0; i < n; i++ {
		u, rest, err := readUvarint(src)
		if err != nil {
			return src, err
		}
		src = rest
		prev += unzigzag(u)
		set(i, prev)
	}
	return src, nil
}

// --- Entry blocks (tensor files) --------------------------------------

// AppendEntryBlock appends the columnar encoding of entries to dst:
// three delta-encoded index columns followed by the value column. Its
// length is exactly EntryBlockSize(entries).
func AppendEntryBlock(dst []byte, entries []Entry) []byte {
	dst, at := beginBlock(dst)
	dst = binary.AppendUvarint(dst, uint64(len(entries)))
	for m := 0; m < 3; m++ {
		dst = appendDeltaColumn(dst, len(entries), func(i int) int64 { return entries[i].Idx[m] })
	}
	for _, e := range entries {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(e.Val))
	}
	return sealBlock(dst, at)
}

// DecodeEntryBlock parses one block written by AppendEntryBlock,
// returning the decoded entries and any trailing bytes. The block's
// CRC is verified before any record is returned.
func DecodeEntryBlock(src []byte) ([]Entry, []byte, error) {
	stored, body, err := openBlock(src)
	if err != nil {
		return nil, src, err
	}
	n, cur, err := readCount(body)
	if err != nil {
		return nil, src, err
	}
	out := make([]Entry, n)
	for m := 0; m < 3; m++ {
		cur, err = decodeDeltaColumn(cur, n, func(i int, v int64) { out[i].Idx[m] = v })
		if err != nil {
			return nil, src, err
		}
	}
	if len(cur) < n*8 {
		return nil, src, fmt.Errorf("core: short Entry block value column: %d bytes for %d records", len(cur), n)
	}
	for i := range out {
		out[i].Val = math.Float64frombits(binary.LittleEndian.Uint64(cur[i*8:]))
	}
	rest := cur[n*8:]
	if err := verifyBlock(stored, body, rest); err != nil {
		return nil, src, err
	}
	return out, rest, nil
}

// entryDeltaSize is the incremental size of e appended after prev
// (zero Entry for the block's first record).
func entryDeltaSize(prev, e Entry) int64 {
	return varintLen(zigzag(e.Idx[0]-prev.Idx[0])) +
		varintLen(zigzag(e.Idx[1]-prev.Idx[1])) +
		varintLen(zigzag(e.Idx[2]-prev.Idx[2])) + 8
}

// EntryBlockSize is the exact encoded size of AppendEntryBlock(nil,
// entries), computed incrementally without encoding.
func EntryBlockSize(entries []Entry) int64 {
	n := blockHeaderSize(len(entries))
	var prev Entry
	for _, e := range entries {
		n += entryDeltaSize(prev, e)
		prev = e
	}
	return n
}

// --- MatEntry blocks (factor matrices) --------------------------------

// AppendMatEntryBlock appends the columnar encoding of cells: row and
// col delta columns, then values. Length is MatEntryBlockSize(cells).
func AppendMatEntryBlock(dst []byte, cells []MatEntry) []byte {
	dst, at := beginBlock(dst)
	dst = binary.AppendUvarint(dst, uint64(len(cells)))
	dst = appendDeltaColumn(dst, len(cells), func(i int) int64 { return cells[i].Row })
	dst = appendDeltaColumn(dst, len(cells), func(i int) int64 { return int64(cells[i].Col) })
	for _, c := range cells {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(c.Val))
	}
	return sealBlock(dst, at)
}

// DecodeMatEntryBlock parses one block written by AppendMatEntryBlock.
func DecodeMatEntryBlock(src []byte) ([]MatEntry, []byte, error) {
	stored, body, err := openBlock(src)
	if err != nil {
		return nil, src, err
	}
	n, cur, err := readCount(body)
	if err != nil {
		return nil, src, err
	}
	out := make([]MatEntry, n)
	cur, err = decodeDeltaColumn(cur, n, func(i int, v int64) { out[i].Row = v })
	if err != nil {
		return nil, src, err
	}
	var rangeErr error
	cur, err = decodeDeltaColumn(cur, n, func(i int, v int64) { out[i].Col = int32Checked(v, &rangeErr) })
	if err == nil {
		err = rangeErr
	}
	if err != nil {
		return nil, src, err
	}
	if len(cur) < n*8 {
		return nil, src, fmt.Errorf("core: short MatEntry block value column: %d bytes for %d records", len(cur), n)
	}
	for i := range out {
		out[i].Val = math.Float64frombits(binary.LittleEndian.Uint64(cur[i*8:]))
	}
	rest := cur[n*8:]
	if err := verifyBlock(stored, body, rest); err != nil {
		return nil, src, err
	}
	return out, rest, nil
}

func matEntryDeltaSize(prev, c MatEntry) int64 {
	return varintLen(zigzag(c.Row-prev.Row)) +
		varintLen(zigzag(int64(c.Col)-int64(prev.Col))) + 8
}

// MatEntryBlockSize is the exact encoded size of AppendMatEntryBlock.
func MatEntryBlockSize(cells []MatEntry) int64 {
	n := blockHeaderSize(len(cells))
	var prev MatEntry
	for _, c := range cells {
		n += matEntryDeltaSize(prev, c)
		prev = c
	}
	return n
}

// --- sval shuffle blocks (the 3-way plan jobs) ------------------------

// svalPairSize is the incremental encoded size of pair (k, v) appended
// to a shuffle block whose previous pair is (pk, pv) — mr.BlockSizer's
// Pair contract, with the first pair sized against zero values. The
// layout per record: three key delta columns, one tag byte, three
// index delta columns, one column delta, and the 8-byte value.
func svalPairSize(pk [3]int64, pv sval, k [3]int64, v sval) int64 {
	return varintLen(zigzag(k[0]-pk[0])) +
		varintLen(zigzag(k[1]-pk[1])) +
		varintLen(zigzag(k[2]-pk[2])) +
		1 +
		varintLen(zigzag(v.idx[0]-pv.idx[0])) +
		varintLen(zigzag(v.idx[1]-pv.idx[1])) +
		varintLen(zigzag(v.idx[2]-pv.idx[2])) +
		varintLen(zigzag(int64(v.col)-int64(pv.col))) +
		8
}

// appendSValBlock encodes one shuffle partition block: parallel keys
// and vals slices (len(keys) == len(vals)). Length is exactly
// blockHeaderSize(n) + Σ svalPairSize over consecutive pairs.
func appendSValBlock(dst []byte, keys [][3]int64, vals []sval) []byte {
	n := len(keys)
	dst, at := beginBlock(dst)
	dst = binary.AppendUvarint(dst, uint64(n))
	for m := 0; m < 3; m++ {
		dst = appendDeltaColumn(dst, n, func(i int) int64 { return keys[i][m] })
	}
	for _, v := range vals {
		dst = append(dst, v.tag)
	}
	for m := 0; m < 3; m++ {
		dst = appendDeltaColumn(dst, n, func(i int) int64 { return vals[i].idx[m] })
	}
	dst = appendDeltaColumn(dst, n, func(i int) int64 { return int64(vals[i].col) })
	for _, v := range vals {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.val))
	}
	return sealBlock(dst, at)
}

// decodeSValBlock parses one block written by appendSValBlock.
func decodeSValBlock(src []byte) (keys [][3]int64, vals []sval, rest []byte, err error) {
	stored, body, err := openBlock(src)
	if err != nil {
		return nil, nil, src, err
	}
	n, cur, err := readCount(body)
	if err != nil {
		return nil, nil, src, err
	}
	keys = make([][3]int64, n)
	vals = make([]sval, n)
	for m := 0; m < 3; m++ {
		cur, err = decodeDeltaColumn(cur, n, func(i int, v int64) { keys[i][m] = v })
		if err != nil {
			return nil, nil, src, err
		}
	}
	if len(cur) < n {
		return nil, nil, src, fmt.Errorf("core: short sval block tag column")
	}
	for i := 0; i < n; i++ {
		vals[i].tag = cur[i]
	}
	cur = cur[n:]
	for m := 0; m < 3; m++ {
		cur, err = decodeDeltaColumn(cur, n, func(i int, v int64) { vals[i].idx[m] = v })
		if err != nil {
			return nil, nil, src, err
		}
	}
	var rangeErr error
	cur, err = decodeDeltaColumn(cur, n, func(i int, v int64) { vals[i].col = int32Checked(v, &rangeErr) })
	if err == nil {
		err = rangeErr
	}
	if err != nil {
		return nil, nil, src, err
	}
	if len(cur) < n*8 {
		return nil, nil, src, fmt.Errorf("core: short sval block value column")
	}
	for i := 0; i < n; i++ {
		vals[i].val = math.Float64frombits(binary.LittleEndian.Uint64(cur[i*8:]))
	}
	rest = cur[n*8:]
	if err := verifyBlock(stored, body, rest); err != nil {
		return nil, nil, src, err
	}
	return keys, vals, rest, nil
}

// --- nsval shuffle blocks (the N-way plan jobs) -----------------------

// nsvalPairSize is svalPairSize's N-way counterpart: two key delta
// columns, one side byte, maxOrder index delta columns, one column
// delta, and the value.
func nsvalPairSize(pk [2]int64, pv nsval, k [2]int64, v nsval) int64 {
	n := varintLen(zigzag(k[0]-pk[0])) +
		varintLen(zigzag(k[1]-pk[1])) +
		1 +
		varintLen(zigzag(int64(v.col)-int64(pv.col))) +
		8
	for m := 0; m < maxOrder; m++ {
		n += varintLen(zigzag(v.idx[m] - pv.idx[m]))
	}
	return n
}

// appendNSValBlock encodes one N-way shuffle partition block.
func appendNSValBlock(dst []byte, keys [][2]int64, vals []nsval) []byte {
	n := len(keys)
	dst, at := beginBlock(dst)
	dst = binary.AppendUvarint(dst, uint64(n))
	for m := 0; m < 2; m++ {
		dst = appendDeltaColumn(dst, n, func(i int) int64 { return keys[i][m] })
	}
	for _, v := range vals {
		b := byte(0)
		if v.isMat {
			b = 1
		}
		dst = append(dst, b)
	}
	for m := 0; m < maxOrder; m++ {
		dst = appendDeltaColumn(dst, n, func(i int) int64 { return vals[i].idx[m] })
	}
	dst = appendDeltaColumn(dst, n, func(i int) int64 { return int64(vals[i].col) })
	for _, v := range vals {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.val))
	}
	return sealBlock(dst, at)
}

// decodeNSValBlock parses one block written by appendNSValBlock.
func decodeNSValBlock(src []byte) (keys [][2]int64, vals []nsval, rest []byte, err error) {
	stored, body, err := openBlock(src)
	if err != nil {
		return nil, nil, src, err
	}
	n, cur, err := readCount(body)
	if err != nil {
		return nil, nil, src, err
	}
	keys = make([][2]int64, n)
	vals = make([]nsval, n)
	for m := 0; m < 2; m++ {
		cur, err = decodeDeltaColumn(cur, n, func(i int, v int64) { keys[i][m] = v })
		if err != nil {
			return nil, nil, src, err
		}
	}
	if len(cur) < n {
		return nil, nil, src, fmt.Errorf("core: short nsval block side column")
	}
	for i := 0; i < n; i++ {
		if cur[i] > 1 {
			return nil, nil, src, fmt.Errorf("core: bad nsval side byte %d", cur[i])
		}
		vals[i].isMat = cur[i] != 0
	}
	cur = cur[n:]
	for m := 0; m < maxOrder; m++ {
		cur, err = decodeDeltaColumn(cur, n, func(i int, v int64) { vals[i].idx[m] = v })
		if err != nil {
			return nil, nil, src, err
		}
	}
	var rangeErr error
	cur, err = decodeDeltaColumn(cur, n, func(i int, v int64) { vals[i].col = int32Checked(v, &rangeErr) })
	if err == nil {
		err = rangeErr
	}
	if err != nil {
		return nil, nil, src, err
	}
	if len(cur) < n*8 {
		return nil, nil, src, fmt.Errorf("core: short nsval block value column")
	}
	for i := 0; i < n; i++ {
		vals[i].val = math.Float64frombits(binary.LittleEndian.Uint64(cur[i*8:]))
	}
	rest = cur[n*8:]
	if err := verifyBlock(stored, body, rest); err != nil {
		return nil, nil, src, err
	}
	return keys, vals, rest, nil
}

// Shared sizer instances: one per shuffle pair shape, so every job of
// an ALS run reuses the same mr.BlockSizer value (no per-job allocs).
var (
	svalColumnarSizer  = &mr.BlockSizer[[3]int64, sval]{Pair: svalPairSize, Header: blockHeaderSize}
	nsvalColumnarSizer = &mr.BlockSizer[[2]int64, nsval]{Pair: nsvalPairSize, Header: blockHeaderSize}
)

// svalAccounting applies the selected codec to a 3-way plan job:
// columnar block accounting by default, fixed-width KVSize as the
// fallback.
func svalAccounting[O any](j *mr.Job[[3]int64, sval, O], codec Codec) {
	if codec == CodecFixed {
		j.KVSize = svalSize
	} else {
		j.BlockKV = svalColumnarSizer
	}
}

// nsvalAccounting is svalAccounting for the N-way jobs.
func nsvalAccounting[O any](j *mr.Job[[2]int64, nsval, O], codec Codec) {
	if codec == CodecFixed {
		j.KVSize = nsvalSize
	} else {
		j.BlockKV = nsvalColumnarSizer
	}
}
