package core

import (
	"math"
	"math/rand"
	"testing"

	"github.com/haten2/haten2/internal/matrix"
	"github.com/haten2/haten2/internal/mr"
	"github.com/haten2/haten2/internal/tensor"
)

func testCluster() *mr.Cluster {
	return mr.NewCluster(mr.Config{Machines: 4, SlotsPerMachine: 2})
}

func randomSparse(rng *rand.Rand, dims [3]int64, nnz int) *tensor.Tensor {
	t := tensor.New(dims[0], dims[1], dims[2])
	for e := 0; e < nnz; e++ {
		t.Append(1+rng.Float64(), rng.Int63n(dims[0]), rng.Int63n(dims[1]), rng.Int63n(dims[2]))
	}
	t.Coalesce()
	return t
}

// tuckerReference computes 𝒳 ×_{m1} U1ᵀ ×_{m2} U2ᵀ in memory.
func tuckerReference(x *tensor.Tensor, n int, u1, u2 *matrix.Matrix) *tensor.Tensor {
	m1, m2 := otherModes(n)
	t := tensor.ModeMatrixProduct(x, m1, u1.T())
	return tensor.ModeMatrixProduct(t, m2, u2.T())
}

// yEntriesToTensor assembles merge output into a 3-way tensor shaped
// I_n×Q×R in the (n, m1, m2) mode positions for comparison with the
// reference.
func yEntriesToTensor(ys []YEntry, n int, dimN int64, q, r int) *tensor.Tensor {
	m1, m2 := otherModes(n)
	var dims [3]int64
	dims[n], dims[m1], dims[m2] = dimN, int64(q), int64(r)
	t := tensor.New(dims[0], dims[1], dims[2])
	for _, y := range ys {
		var idx [3]int64
		idx[n], idx[m1], idx[m2] = y.I, int64(y.Q), int64(y.R)
		t.Append(y.Val, idx[0], idx[1], idx[2])
	}
	t.Coalesce()
	return t
}

func TestTuckerContractAllVariantsAllModes(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	x := randomSparse(rng, [3]int64{6, 5, 4}, 25)
	c := testCluster()
	s, err := Stage(c, "X", x)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 3; n++ {
		m1, m2 := otherModes(n)
		u1 := matrix.Random(int(x.Dim(m1)), 3, rng)
		u2 := matrix.Random(int(x.Dim(m2)), 2, rng)
		want := tuckerReference(x, n, u1, u2)
		for _, v := range Variants {
			ys, err := TuckerContract(s, n, u1, u2, v)
			if err != nil {
				t.Fatalf("mode %d variant %v: %v", n, v, err)
			}
			got := yEntriesToTensor(ys, n, x.Dim(n), 3, 2)
			if !tensor.Equal(got, want, 1e-9) {
				t.Fatalf("mode %d variant %v: contraction mismatch", n, v)
			}
		}
	}
}

func TestParafacContractAllVariantsAllModes(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	x := randomSparse(rng, [3]int64{5, 6, 4}, 30)
	c := testCluster()
	s, err := Stage(c, "Xp", x)
	if err != nil {
		t.Fatal(err)
	}
	const rank = 3
	factors := []*matrix.Matrix{
		matrix.Random(5, rank, rng),
		matrix.Random(6, rank, rng),
		matrix.Random(4, rank, rng),
	}
	for n := 0; n < 3; n++ {
		m1, m2 := otherModes(n)
		want := tensor.MTTKRP(x, factors, n)
		for _, v := range Variants {
			got, err := ParafacContract(s, n, factors[m1], factors[m2], v)
			if err != nil {
				t.Fatalf("mode %d variant %v: %v", n, v, err)
			}
			if !got.Equal(want, 1e-9) {
				t.Fatalf("mode %d variant %v: MTTKRP mismatch\ngot  %v\nwant %v", n, v, got, want)
			}
		}
	}
}

func TestTuckerJobCountsMatchTableIII(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	x := randomSparse(rng, [3]int64{5, 5, 5}, 20)
	q, r := 3, 2
	for _, v := range Variants {
		c := testCluster()
		s, err := Stage(c, "X", x)
		if err != nil {
			t.Fatal(err)
		}
		u1 := matrix.Random(5, q, rng)
		u2 := matrix.Random(5, r, rng)
		before := c.Totals().Jobs
		if _, err := TuckerContract(s, 0, u1, u2, v); err != nil {
			t.Fatal(err)
		}
		got := c.Totals().Jobs - before
		if want := v.TuckerJobs(q, r); got != want {
			t.Errorf("variant %v: %d jobs, Table III says %d", v, got, want)
		}
	}
}

func TestParafacJobCountsMatchTableIV(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	x := randomSparse(rng, [3]int64{5, 5, 5}, 20)
	const rank = 3
	for _, v := range Variants {
		c := testCluster()
		s, err := Stage(c, "X", x)
		if err != nil {
			t.Fatal(err)
		}
		u1 := matrix.Random(5, rank, rng)
		u2 := matrix.Random(5, rank, rng)
		before := c.Totals().Jobs
		if _, err := ParafacContract(s, 0, u1, u2, v); err != nil {
			t.Fatal(err)
		}
		got := c.Totals().Jobs - before
		if want := v.ParafacJobs(rank); got != want {
			t.Errorf("variant %v: %d jobs, Table IV says %d", v, got, want)
		}
	}
}

func TestIntermediateDataOrdering(t *testing.T) {
	// Table III's qualitative claim: Naive shuffles the most intermediate
	// data, DNN less, DRN/DRI the least (for sparse tensors).
	rng := rand.New(rand.NewSource(35))
	x := randomSparse(rng, [3]int64{20, 20, 20}, 60)
	q, r := 5, 5
	max := map[Variant]int64{}
	for _, v := range Variants {
		c := testCluster()
		s, err := Stage(c, "X", x)
		if err != nil {
			t.Fatal(err)
		}
		u1 := matrix.Random(20, q, rng)
		u2 := matrix.Random(20, r, rng)
		if _, err := TuckerContract(s, 0, u1, u2, v); err != nil {
			t.Fatal(err)
		}
		max[v] = c.Totals().MaxShuffleRecords
	}
	if !(max[Naive] > max[DNN] && max[DNN] > max[DRN]) {
		t.Fatalf("intermediate-data ordering violated: %v", max)
	}
}

func TestNaiveChargesBroadcast(t *testing.T) {
	// The Naive plan must charge the nnz+IJK broadcast blow-up even
	// though phantom records are not materialized.
	rng := rand.New(rand.NewSource(36))
	dims := [3]int64{30, 30, 30}
	x := randomSparse(rng, dims, 10)
	c := testCluster()
	s, err := Stage(c, "X", x)
	if err != nil {
		t.Fatal(err)
	}
	u1 := matrix.Random(30, 1, rng)
	u2 := matrix.Random(30, 1, rng)
	if _, err := TuckerContract(s, 0, u1, u2, DRI); err != nil {
		t.Fatal(err)
	}
	driMax := c.Totals().MaxShuffleRecords
	c.ResetCounters()
	if _, err := TuckerContract(s, 0, u1, u2, Naive); err != nil {
		t.Fatal(err)
	}
	naiveMax := c.Totals().MaxShuffleRecords
	// IJK = 27000 dominates nnz=10; the first broadcast job alone must
	// charge at least I·K·nnz(b) = 900·30 records.
	if naiveMax < 900*30 {
		t.Fatalf("naive max shuffle %d does not reflect the broadcast", naiveMax)
	}
	if naiveMax <= driMax {
		t.Fatalf("naive (%d) should dwarf DRI (%d)", naiveMax, driMax)
	}
}

func TestResourceExhaustionKillsNaiveFirst(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	dims := [3]int64{50, 50, 50}
	x := randomSparse(rng, dims, 40)
	cfg := mr.Config{Machines: 4, MaxShuffleRecords: 50_000}
	c := mr.NewCluster(cfg)
	s, err := Stage(c, "X", x)
	if err != nil {
		t.Fatal(err)
	}
	u1 := matrix.Random(50, 3, rng)
	u2 := matrix.Random(50, 3, rng)
	if _, err := TuckerContract(s, 0, u1, u2, Naive); err == nil {
		t.Fatal("naive should exhaust a 50k-record cluster on a 50³ tensor (IJK=125000)")
	}
	if _, err := TuckerContract(s, 0, u1, u2, DRI); err != nil {
		t.Fatalf("DRI should survive: %v", err)
	}
}

func TestStageRejectsNon3Way(t *testing.T) {
	c := testCluster()
	x := tensor.New(2, 2)
	x.Append(1, 0, 0)
	if _, err := Stage(c, "X", x); err == nil {
		t.Fatal("2-way tensor accepted")
	}
}

func TestContractValidatesShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(38))
	x := randomSparse(rng, [3]int64{4, 4, 4}, 10)
	c := testCluster()
	s, _ := Stage(c, "X", x)
	bad := matrix.Random(7, 2, rng) // wrong row count
	ok := matrix.Random(4, 2, rng)
	if _, err := TuckerContract(s, 0, bad, ok, DRI); err == nil {
		t.Fatal("shape mismatch accepted")
	}
	if _, err := ParafacContract(s, 0, ok, matrix.Random(4, 3, rng), DRI); err == nil {
		t.Fatal("rank mismatch accepted")
	}
}

func TestVariantStringAndParse(t *testing.T) {
	for _, v := range Variants {
		got, err := ParseVariant(v.String())
		if err != nil || got != v {
			t.Fatalf("round trip failed for %v", v)
		}
	}
	if _, err := ParseVariant("bogus"); err == nil {
		t.Fatal("bogus variant parsed")
	}
	if Variant(99).String() == "" {
		t.Fatal("unknown variant has empty string")
	}
}

func TestFeaturesTableII(t *testing.T) {
	f := Naive.Features()
	if f.DecoupledSteps || f.RemovedDependency || f.IntegratedJobs || !f.Distributed {
		t.Fatalf("Naive features %+v", f)
	}
	f = DRI.Features()
	if !(f.DecoupledSteps && f.RemovedDependency && f.IntegratedJobs && f.Distributed) {
		t.Fatalf("DRI features %+v", f)
	}
	if DRN.Features().IntegratedJobs {
		t.Fatal("DRN should not integrate jobs")
	}
	if !DNN.Features().DecoupledSteps {
		t.Fatal("DNN should decouple steps")
	}
}

func TestAnalyticIntermediateFormulas(t *testing.T) {
	nnz, i, j, k := int64(100), int64(10), int64(20), int64(30)
	if got := Naive.TuckerIntermediate(nnz, i, j, k, 5, 6); got != 100+6000 {
		t.Fatalf("naive tucker intermediate %d", got)
	}
	if got := DNN.TuckerIntermediate(nnz, i, j, k, 5, 6); got != 100*30 {
		t.Fatalf("dnn tucker intermediate %d", got)
	}
	if got := DRI.TuckerIntermediate(nnz, i, j, k, 5, 6); got != 100*11 {
		t.Fatalf("dri tucker intermediate %d", got)
	}
	if got := DNN.ParafacIntermediate(nnz, i, j, k, 5); got != 100+20 {
		t.Fatalf("dnn parafac intermediate %d", got)
	}
	if got := DRN.ParafacIntermediate(nnz, i, j, k, 5); got != 1000 {
		t.Fatalf("drn parafac intermediate %d", got)
	}
}

// TestLemma1CrossMerge verifies Lemma 1 end to end on the MR path:
// CrossMerge(𝒯′,𝒯″) with 𝒯′=𝒳∗₂bq, 𝒯″=bin(𝒳)∗₃cr equals 𝒳×₂Bᵀ×₃Cᵀ.
func TestLemma1CrossMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(39))
	for trial := 0; trial < 5; trial++ {
		x := randomSparse(rng, [3]int64{4, 5, 6}, 12+trial*3)
		c := testCluster()
		s, _ := Stage(c, "X", x)
		u1 := matrix.Random(5, 2, rng)
		u2 := matrix.Random(6, 3, rng)
		ys, err := TuckerContract(s, 0, u1, u2, DRN)
		if err != nil {
			t.Fatal(err)
		}
		got := yEntriesToTensor(ys, 0, 4, 2, 3)
		want := tuckerReference(x, 0, u1, u2)
		if !tensor.Equal(got, want, 1e-9) {
			t.Fatalf("trial %d: Lemma 1 violated", trial)
		}
	}
}

// TestLemma2PairwiseMerge verifies Lemma 2 end to end on the MR path.
func TestLemma2PairwiseMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	for trial := 0; trial < 5; trial++ {
		x := randomSparse(rng, [3]int64{4, 5, 6}, 12+trial*3)
		c := testCluster()
		s, _ := Stage(c, "X", x)
		factors := []*matrix.Matrix{
			matrix.Random(4, 2, rng),
			matrix.Random(5, 2, rng),
			matrix.Random(6, 2, rng),
		}
		got, err := ParafacContract(s, 0, factors[1], factors[2], DRN)
		if err != nil {
			t.Fatal(err)
		}
		want := tensor.MTTKRP(x, factors, 0)
		if !got.Equal(want, 1e-9) {
			t.Fatalf("trial %d: Lemma 2 violated", trial)
		}
	}
}

func TestDRIReadsInputOnce(t *testing.T) {
	// §III-B4: DRI reads 𝒳 from the DFS once per contraction; DRN reads
	// it Q+R times. Compare DFS read traffic attributable to the tensor.
	rng := rand.New(rand.NewSource(41))
	x := randomSparse(rng, [3]int64{10, 10, 10}, 50)
	q, r := 4, 4

	readBytes := func(v Variant) int64 {
		c := testCluster()
		s, _ := Stage(c, "X", x)
		u1 := matrix.Random(10, q, rng)
		u2 := matrix.Random(10, r, rng)
		c.FS().ResetStats()
		if _, err := TuckerContract(s, 0, u1, u2, v); err != nil {
			t.Fatal(err)
		}
		return c.FS().Stats().BytesRead
	}
	dri := readBytes(DRI)
	drn := readBytes(DRN)
	if drn <= dri {
		t.Fatalf("DRN should read more from DFS than DRI: drn=%d dri=%d", drn, dri)
	}
}

func TestDeterministicContract(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	x := randomSparse(rng, [3]int64{6, 6, 6}, 30)
	u1 := matrix.Random(6, 3, rng)
	u2 := matrix.Random(6, 3, rng)
	run := func(machines int) *matrix.Matrix {
		c := mr.NewCluster(mr.Config{Machines: machines})
		s, _ := Stage(c, "X", x)
		m, err := ParafacContract(s, 0, u1, u2, DRI)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	// Same cluster size twice must be bit-identical.
	if !run(2).Equal(run(2), 0) {
		t.Fatal("same configuration not deterministic")
	}
	// Different split counts change float summation order; results must
	// still agree to round-off.
	a := run(2)
	b := run(9)
	if !a.Equal(b, 1e-9*math.Max(1, a.MaxAbs())) {
		t.Fatal("results differ across cluster sizes beyond round-off")
	}
}
