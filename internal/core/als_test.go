package core

import (
	"math"
	"math/rand"
	"testing"

	"github.com/haten2/haten2/internal/matrix"
	"github.com/haten2/haten2/internal/tensor"
)

// plantedKruskal builds a tensor from a known rank-R nonnegative model
// so ALS has an exact solution to find.
func plantedKruskal(rng *rand.Rand, dims [3]int64, rank int) (*tensor.Tensor, *tensor.Kruskal) {
	k := &tensor.Kruskal{Lambda: make([]float64, rank)}
	for m := 0; m < 3; m++ {
		f := matrix.Random(int(dims[m]), rank, rng)
		f.NormalizeColumns()
		k.Factors = append(k.Factors, f)
	}
	for r := range k.Lambda {
		k.Lambda[r] = 2 + rng.Float64()
	}
	return k.Full(dims[0], dims[1], dims[2]).ToSparse(), k
}

func TestParafacALSRecoversPlantedModel(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	x, _ := plantedKruskal(rng, [3]int64{8, 7, 6}, 2)
	c := testCluster()
	res, err := ParafacALS(c, x, 2, Options{Variant: DRI, MaxIters: 400, Seed: 1, TrackFit: true, Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	fit := res.Model.Fit(x)
	if fit < 0.999 {
		t.Fatalf("fit %v after %d iters; fits: %v", fit, res.Iters, res.Fits)
	}
}

func TestParafacALSVariantsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	x, _ := plantedKruskal(rng, [3]int64{6, 5, 4}, 2)
	var models []*tensor.Kruskal
	for _, v := range Variants {
		c := testCluster()
		res, err := ParafacALS(c, x, 2, Options{Variant: v, MaxIters: 5, Seed: 7})
		if err != nil {
			t.Fatalf("variant %v: %v", v, err)
		}
		models = append(models, res.Model)
	}
	// Same seed and iteration count ⇒ all variants walk the same ALS
	// trajectory: λ must agree to round-off.
	for i := 1; i < len(models); i++ {
		for r := range models[0].Lambda {
			a, b := models[0].Lambda[r], models[i].Lambda[r]
			if math.Abs(a-b) > 1e-6*math.Max(1, math.Abs(a)) {
				t.Fatalf("variant %v λ[%d]=%v differs from Naive's %v", Variants[i], r, b, a)
			}
		}
	}
}

func TestParafacALSFitMonotonicallyImproves(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	x, _ := plantedKruskal(rng, [3]int64{7, 7, 7}, 3)
	c := testCluster()
	res, err := ParafacALS(c, x, 3, Options{Variant: DRI, MaxIters: 10, Seed: 3, TrackFit: true, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Fits); i++ {
		if res.Fits[i] < res.Fits[i-1]-1e-8 {
			t.Fatalf("fit decreased at iter %d: %v", i, res.Fits)
		}
	}
}

func TestParafacALSConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	x, _ := plantedKruskal(rng, [3]int64{6, 6, 6}, 1)
	c := testCluster()
	res, err := ParafacALS(c, x, 1, Options{Variant: DRI, MaxIters: 50, Seed: 5, TrackFit: true, Tol: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("rank-1 exact problem did not converge in %d iters", res.Iters)
	}
	if res.Iters >= 50 {
		t.Fatal("convergence flag set but all iterations used")
	}
}

func TestParafacALSValidation(t *testing.T) {
	c := testCluster()
	x := tensor.New(2, 2, 2)
	x.Append(1, 0, 0, 0)
	if _, err := ParafacALS(c, x, 0, Options{}); err == nil {
		t.Fatal("rank 0 accepted")
	}
}

func TestTuckerALSReconstructsLowRankTensor(t *testing.T) {
	// Build a tensor that is exactly Tucker-[2,2,2] and verify the fit.
	rng := rand.New(rand.NewSource(55))
	g := tensor.NewDense(2, 2, 2)
	for i := range g.Data {
		g.Data[i] = rng.NormFloat64()
	}
	var facs []*matrix.Matrix
	for _, d := range []int{6, 5, 4} {
		q, _ := matrix.QR(matrix.Random(d, 2, rng))
		facs = append(facs, q)
	}
	ref := &tensor.TuckerModel{Core: g, Factors: facs}
	x := tensor.New(6, 5, 4)
	for i := int64(0); i < 6; i++ {
		for j := int64(0); j < 5; j++ {
			for k := int64(0); k < 4; k++ {
				if v := ref.At(i, j, k); v != 0 {
					x.Append(v, i, j, k)
				}
			}
		}
	}
	x.Coalesce()
	c := testCluster()
	res, err := TuckerALS(c, x, [3]int{2, 2, 2}, Options{Variant: DRI, MaxIters: 30, Seed: 2, Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if fit := res.Model.Fit(x); fit < 0.999 {
		t.Fatalf("fit %v; core norms %v", fit, res.CoreNorms)
	}
	// Factors must be orthonormal frames.
	for m, f := range res.Model.Factors {
		if !matrix.Gram(f).Equal(matrix.Identity(f.Cols), 1e-8) {
			t.Fatalf("factor %d not orthonormal", m)
		}
	}
}

func TestTuckerALSCoreNormNonDecreasing(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	x := randomSparse(rng, [3]int64{8, 8, 8}, 60)
	c := testCluster()
	res, err := TuckerALS(c, x, [3]int{3, 3, 3}, Options{Variant: DRI, MaxIters: 8, Seed: 4, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.CoreNorms); i++ {
		if res.CoreNorms[i] < res.CoreNorms[i-1]-1e-8 {
			t.Fatalf("‖G‖ decreased: %v", res.CoreNorms)
		}
	}
	// ‖G‖ can never exceed ‖X‖ (orthonormal projections).
	if last := res.CoreNorms[len(res.CoreNorms)-1]; last > x.Norm()+1e-8 {
		t.Fatalf("‖G‖=%v exceeds ‖X‖=%v", last, x.Norm())
	}
}

func TestTuckerALSVariantsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	x := randomSparse(rng, [3]int64{6, 5, 4}, 30)
	var norms []float64
	for _, v := range Variants {
		c := testCluster()
		res, err := TuckerALS(c, x, [3]int{2, 2, 2}, Options{Variant: v, MaxIters: 4, Seed: 9, Tol: 1e-12})
		if err != nil {
			t.Fatalf("variant %v: %v", v, err)
		}
		norms = append(norms, res.CoreNorms[len(res.CoreNorms)-1])
	}
	for i := 1; i < len(norms); i++ {
		if math.Abs(norms[i]-norms[0]) > 1e-6*math.Max(1, norms[0]) {
			t.Fatalf("variant %v final ‖G‖=%v differs from Naive's %v", Variants[i], norms[i], norms[0])
		}
	}
}

func TestTuckerALSValidation(t *testing.T) {
	c := testCluster()
	x := tensor.New(3, 3, 3)
	x.Append(1, 0, 0, 0)
	if _, err := TuckerALS(c, x, [3]int{0, 2, 2}, Options{}); err == nil {
		t.Fatal("zero core dim accepted")
	}
	if _, err := TuckerALS(c, x, [3]int{2, 2, 5}, Options{}); err == nil {
		t.Fatal("core dim larger than tensor dim accepted")
	}
}

func TestNonnegativeParafacStaysNonnegative(t *testing.T) {
	rng := rand.New(rand.NewSource(58))
	x, _ := plantedKruskal(rng, [3]int64{6, 6, 6}, 2)
	c := testCluster()
	res, err := NonnegativeParafac(c, x, 2, Options{Variant: DRI, MaxIters: 15, Seed: 6, TrackFit: true, Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	for m, f := range res.Model.Factors {
		for _, v := range f.Data {
			if v < 0 {
				t.Fatalf("factor %d has negative entry %v", m, v)
			}
		}
	}
	if fit := res.Model.Fit(x); fit < 0.9 {
		t.Fatalf("nonnegative fit %v too low (fits %v)", fit, res.Fits)
	}
}

func TestNonnegativeParafacRejectsNegativeInput(t *testing.T) {
	c := testCluster()
	x := tensor.New(2, 2, 2)
	x.Append(-1, 0, 0, 0)
	if _, err := NonnegativeParafac(c, x, 1, Options{}); err == nil {
		t.Fatal("negative tensor accepted")
	}
}

func TestMaskedParafacRecoversHeldOutEntries(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	x, _ := plantedKruskal(rng, [3]int64{7, 6, 5}, 2)
	// Hold out 10% of the nonzeros.
	var missing [][3]int64
	for p := 0; p < x.NNZ(); p += 10 {
		idx := x.Index(p)
		missing = append(missing, [3]int64{idx[0], idx[1], idx[2]})
	}
	c := testCluster()
	res, err := MaskedParafacALS(c, x, missing, 2, Options{Variant: DRI, MaxIters: 120, Seed: 8, TrackFit: true, Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	// The model must predict the held-out values accurately.
	var se, norm float64
	for _, idx := range missing {
		truth := x.At(idx[0], idx[1], idx[2])
		pred := res.Model.At(idx[0], idx[1], idx[2])
		se += (truth - pred) * (truth - pred)
		norm += truth * truth
	}
	if rel := math.Sqrt(se / norm); rel > 0.05 {
		t.Fatalf("held-out relative error %v (fits %v)", rel, res.Fits)
	}
}

func TestParafacConvergesWithoutFitTracking(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	x, _ := plantedKruskal(rng, [3]int64{6, 6, 6}, 1)
	c := testCluster()
	res, err := ParafacALS(c, x, 1, Options{Variant: DRI, MaxIters: 60, Seed: 5, Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("rank-1 problem did not converge via λ criterion in %d iters", res.Iters)
	}
	if res.Iters >= 60 {
		t.Fatal("flag set but all iterations used")
	}
	if fit := res.Model.Fit(x); fit < 0.99 {
		t.Fatalf("fit %v at λ convergence", fit)
	}
}

func TestParafacWarmStartContinuesImproving(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	x, _ := plantedKruskal(rng, [3]int64{8, 7, 6}, 2)
	c := testCluster()
	first, err := ParafacALS(c, x, 2, Options{Variant: DRI, MaxIters: 5, Seed: 1, TrackFit: true, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	fitAfter5 := first.Fits[len(first.Fits)-1]
	resumed, err := ParafacALS(c, x, 2, Options{
		Variant: DRI, MaxIters: 5, Seed: 99, TrackFit: true, Tol: 1e-12,
		WarmStart: first.Model,
	})
	if err != nil {
		t.Fatal(err)
	}
	fitAfter10 := resumed.Fits[len(resumed.Fits)-1]
	if fitAfter10 < fitAfter5-1e-9 {
		t.Fatalf("resumed fit %v regressed below %v", fitAfter10, fitAfter5)
	}
	// The resumed run must start near the handed-over fit, not from a
	// random model: its first-iteration fit must beat a cold first
	// iteration.
	cold, err := ParafacALS(c, x, 2, Options{Variant: DRI, MaxIters: 1, Seed: 99, TrackFit: true, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Fits[0] <= cold.Fits[0] {
		t.Fatalf("warm start (%v) no better than cold start (%v)", resumed.Fits[0], cold.Fits[0])
	}
}

func TestParafacWarmStartValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	x, _ := plantedKruskal(rng, [3]int64{6, 6, 6}, 2)
	c := testCluster()
	first, err := ParafacALS(c, x, 2, Options{Variant: DRI, MaxIters: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Wrong rank.
	if _, err := ParafacALS(c, x, 3, Options{Variant: DRI, MaxIters: 1, WarmStart: first.Model}); err == nil {
		t.Fatal("rank mismatch accepted")
	}
	// Wrong shape.
	y, _ := plantedKruskal(rng, [3]int64{5, 6, 6}, 2)
	if _, err := ParafacALS(c, y, 2, Options{Variant: DRI, MaxIters: 1, WarmStart: first.Model}); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}
