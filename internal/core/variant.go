package core

import "fmt"

// Variant selects which HaTen2 job plan executes the bottleneck
// contraction (Table II of the paper).
type Variant int

const (
	// Naive runs one broadcast-style job per n-mode vector product —
	// the straightforward port of MET/Tensor-Toolbox to MapReduce
	// (Algorithms 3 and 4). Intermediate data: nnz(𝒳)+IJK.
	Naive Variant = iota
	// DNN decouples each product into an n-mode vector Hadamard product
	// followed by Collapse (Algorithms 5 and 6).
	DNN
	// DRN removes the dependency between the two factor-matrix products
	// by merging with CrossMerge/PairwiseMerge (Algorithms 7 and 8).
	DRN
	// DRI additionally integrates all Hadamard products into the single
	// IMHP job; the whole contraction takes exactly two jobs
	// (Algorithms 9 and 10). This is "just HaTen2", the recommended
	// method.
	DRI
)

// Variants lists all job plans in increasing refinement order.
var Variants = []Variant{Naive, DNN, DRN, DRI}

// String returns the paper's name for the variant.
func (v Variant) String() string {
	switch v {
	case Naive:
		return "Naive"
	case DNN:
		return "DNN"
	case DRN:
		return "DRN"
	case DRI:
		return "DRI"
	}
	return fmt.Sprintf("Variant(%d)", int(v))
}

// ParseVariant converts a name (case-sensitive, as printed by String)
// back to a Variant.
func ParseVariant(s string) (Variant, error) {
	for _, v := range Variants {
		if v.String() == s {
			return v, nil
		}
	}
	return 0, fmt.Errorf("core: unknown variant %q (want Naive, DNN, DRN, or DRI)", s)
}

// Features reports which of the paper's three ideas a variant applies —
// the rows of Table II.
type Features struct {
	Distributed       bool // all HaTen2 variants run on the cluster
	DecoupledSteps    bool // §III-B2: Hadamard-and-Merge
	RemovedDependency bool // §III-B3: CrossMerge/PairwiseMerge
	IntegratedJobs    bool // §III-B4: IMHP
}

// Features returns the variant's row of Table II.
func (v Variant) Features() Features {
	return Features{
		Distributed:       true,
		DecoupledSteps:    v >= DNN,
		RemovedDependency: v >= DRN,
		IntegratedJobs:    v >= DRI,
	}
}

// TuckerJobs returns the number of MapReduce jobs the variant needs for
// one Tucker contraction 𝒳 ×₂Bᵀ ×₃Cᵀ with core sizes Q and R — the
// "Total Jobs" column of Table III.
func (v Variant) TuckerJobs(q, r int) int {
	switch v {
	case Naive:
		return q + r
	case DNN:
		return q + r + 2
	case DRN:
		return q + r + 1
	default:
		return 2
	}
}

// ParafacJobs returns the number of MapReduce jobs the variant needs for
// one PARAFAC contraction 𝒳₍₁₎(C⊙B) with rank R — the "Total Jobs"
// column of Table IV.
func (v Variant) ParafacJobs(r int) int {
	switch v {
	case Naive:
		return 2 * r
	case DNN:
		return 4 * r
	case DRN:
		return 2*r + 1
	default:
		return 2
	}
}

// TuckerIntermediate returns the analytic "Max. Intermediate Data"
// column of Table III in records, given the tensor statistics.
func (v Variant) TuckerIntermediate(nnz, i, j, k int64, q, r int) int64 {
	switch v {
	case Naive:
		return nnz + i*j*k
	case DNN:
		return nnz * int64(q) * int64(r)
	default: // DRN and DRI share the nnz(Q+R) bound
		return nnz * int64(q+r)
	}
}

// ParafacIntermediate returns the analytic "Max. Intermediate Data"
// column of Table IV in records.
func (v Variant) ParafacIntermediate(nnz, i, j, k int64, r int) int64 {
	switch v {
	case Naive:
		return nnz + i*j*k
	case DNN:
		return nnz + j
	default: // DRN and DRI share the 2·nnz·R bound
		return 2 * nnz * int64(r)
	}
}
