package core

import (
	"fmt"
	"math/rand"

	"github.com/haten2/haten2/internal/matrix"
	"github.com/haten2/haten2/internal/mr"
	"github.com/haten2/haten2/internal/tensor"
)

// This file implements the extensions the paper names as future work
// (§VI): nonnegative tensor decomposition and decomposition with missing
// values. Both reuse the HaTen2 job plans for their bottleneck products,
// demonstrating the framework-extension point §III-B4 advertises.

// NonnegativeParafac runs a rank-R nonnegative PARAFAC decomposition
// using Lee–Seung style multiplicative updates:
//
//	A ← A ∗ (𝒳₍ₙ₎(C⊙B)) ⊘ (A·(CᵀC ∗ BᵀB))
//
// The numerator is the same bottleneck contraction as PARAFAC-ALS and is
// computed on the cluster with the selected variant; the denominator is
// a local I×R product. Factors stay elementwise nonnegative, making the
// components interpretable as soft cluster memberships.
func NonnegativeParafac(c *mr.Cluster, x *tensor.Tensor, rank int, opt Options) (*ParafacResult, error) {
	if rank <= 0 {
		return nil, fmt.Errorf("core: rank must be positive, got %d", rank)
	}
	for p := 0; p < x.NNZ(); p++ {
		if x.Value(p) < 0 {
			return nil, fmt.Errorf("core: NonnegativeParafac requires a nonnegative tensor; entry %d is %g", p, x.Value(p))
		}
	}
	opt = opt.withDefaults()
	defer installBackend(c, opt)()
	s, err := Stage(c, tmpName(c, "nnparafac", "X"), x)
	if err != nil {
		return nil, err
	}
	defer s.cleanup([]string{s.Name})

	rng := rand.New(rand.NewSource(opt.Seed))
	factors := make([]*matrix.Matrix, 3)
	for m := 0; m < 3; m++ {
		f := matrix.Random(int(s.Dims[m]), rank, rng)
		for i := range f.Data {
			f.Data[i] += 0.1 // bound away from zero: multiplicative updates cannot leave 0
		}
		factors[m] = f
	}
	res := &ParafacResult{}
	const eps = 1e-12
	prevFit := -1.0
	for it := 0; it < opt.MaxIters; it++ {
		for n := 0; n < 3; n++ {
			m1, m2 := otherModes(n)
			num, err := ParafacContract(s, n, factors[m1], factors[m2], opt.Variant)
			if err != nil {
				return nil, err
			}
			gram := matrix.Hadamard(matrix.Gram(factors[m1]), matrix.Gram(factors[m2]))
			den := matrix.Mul(factors[n], gram)
			f := factors[n]
			for i := range f.Data {
				f.Data[i] *= num.Data[i] / (den.Data[i] + eps)
			}
		}
		res.Iters = it + 1
		if opt.TrackFit {
			model := kruskalFromRaw(factors)
			fit := model.Fit(x)
			res.Fits = append(res.Fits, fit)
			if it > 0 && fit-prevFit < opt.Tol {
				res.Converged = true
				break
			}
			prevFit = fit
		}
	}
	res.Model = kruskalFromRaw(factors)
	return res, nil
}

// kruskalFromRaw converts unnormalized factors into the λ + unit-column
// convention without mutating the inputs.
func kruskalFromRaw(factors []*matrix.Matrix) *tensor.Kruskal {
	k := &tensor.Kruskal{}
	rank := factors[0].Cols
	lambda := make([]float64, rank)
	for r := range lambda {
		lambda[r] = 1
	}
	for _, f := range factors {
		cp := f.Clone()
		for r, n := range cp.NormalizeColumns() {
			lambda[r] *= n
		}
		k.Factors = append(k.Factors, cp)
	}
	k.Lambda = lambda
	return k
}

// MaskedParafacALS decomposes a tensor whose values at the given
// coordinates are unknown (held out or genuinely missing), using
// EM-style imputation: each outer iteration fills the missing cells with
// the current model's predictions, then runs one distributed ALS sweep
// over the completed tensor. The missing set must be sparse (it is
// materialized); this matches the common use cases of cross-validation
// holdouts and known-corrupt measurements.
//
// The returned model's Fits (when tracked) are computed against the
// observed entries only.
func MaskedParafacALS(c *mr.Cluster, x *tensor.Tensor, missing [][3]int64, rank int, opt Options) (*ParafacResult, error) {
	if rank <= 0 {
		return nil, fmt.Errorf("core: rank must be positive, got %d", rank)
	}
	opt = opt.withDefaults()
	defer installBackend(c, opt)()
	// Strip any observed values at missing coordinates.
	missSet := make(map[[3]int64]struct{}, len(missing))
	for _, idx := range missing {
		missSet[idx] = struct{}{}
	}
	observed := tensor.New(x.Dims()...)
	for p := 0; p < x.NNZ(); p++ {
		idx := x.Index(p)
		key := [3]int64{idx[0], idx[1], idx[2]}
		if _, gone := missSet[key]; !gone {
			observed.Append(x.Value(p), idx[0], idx[1], idx[2])
		}
	}
	observed.Coalesce()

	// Factors persist across EM iterations (warm start); only the
	// tensor's imputed entries change.
	rng := rand.New(rand.NewSource(opt.Seed))
	factors := make([]*matrix.Matrix, 3)
	dims := observed.Dims()
	for m := 0; m < 3; m++ {
		factors[m] = matrix.Random(int(dims[m]), rank, rng)
	}
	lambda := make([]float64, rank)
	for r := range lambda {
		lambda[r] = 1
	}
	res := &ParafacResult{}
	model := &tensor.Kruskal{Lambda: lambda, Factors: factors}
	for it := 0; it < opt.MaxIters; it++ {
		// E step: complete the tensor with model predictions at the
		// missing coordinates (zero on the first pass).
		work := observed.Clone()
		if it > 0 {
			for idx := range missSet {
				if v := model.At(idx[0], idx[1], idx[2]); v != 0 {
					work.Append(v, idx[0], idx[1], idx[2])
				}
			}
			work.Coalesce()
		}
		// M step: one distributed ALS sweep over the completed tensor.
		s, err := Stage(c, tmpName(c, "maskedparafac", "X"), work)
		if err != nil {
			return nil, err
		}
		err = parafacSweep(s, factors, lambda, rng, opt.Variant)
		s.cleanup([]string{s.Name})
		if err != nil {
			return nil, err
		}
		model = &tensor.Kruskal{Lambda: lambda, Factors: factors}
		res.Iters = it + 1
		if opt.TrackFit {
			res.Fits = append(res.Fits, model.Fit(observed))
			// Stop only on a small *improvement*; transient decreases
			// (possible while imputations settle) keep EM running.
			if n := len(res.Fits); n > 1 {
				if d := res.Fits[n-1] - res.Fits[n-2]; d >= 0 && d < opt.Tol {
					res.Converged = true
					break
				}
			}
		}
	}
	res.Model = model
	return res, nil
}
