package core

import (
	"fmt"

	"github.com/haten2/haten2/internal/matrix"
	"github.com/haten2/haten2/internal/mr"
)

// tmpName names a temporary DFS file. The sequence number comes from
// the cluster, not a process global, so the file names — and with them
// the job names and the exported traces — of a run on a fresh cluster
// are reproducible no matter what ran earlier in the process.
func tmpName(c *mr.Cluster, base, kind string) string {
	return fmt.Sprintf("%s.tmp%d.%s", base, c.NextTmp(), kind)
}

// cleanup deletes temporary DFS files, ignoring absent ones.
func (s *Staged) cleanup(files []string) {
	for _, f := range files {
		if s.cluster.FS().Exists(f) {
			// Exists-guarded, so ErrNotExist (Delete's only error) is
			// impossible; this defer-path has no caller to report to.
			//haten2:allow errcheck-io best-effort temp cleanup, Delete can only return ErrNotExist and the file was just checked
			_ = s.cluster.FS().Delete(f)
		}
	}
}

// TuckerContract computes the Tucker-ALS bottleneck
//
//	𝒴 ← 𝒳 ×_{m1} U1ᵀ ×_{m2} U2ᵀ
//
// for the factor update of mode n (lines 3, 5, 7 of Algorithm 2), where
// m1 < m2 are the other two modes and U1 ∈ ℝ^{I_{m1}×Q1}, U2 ∈ ℝ^{I_{m2}×Q2}
// are their current factors. The entries of the I_n×Q1×Q2 result are
// returned; the plan (and therefore the job count and intermediate data)
// is chosen by the variant.
func TuckerContract(s *Staged, n int, u1, u2 *matrix.Matrix, v Variant) ([]YEntry, error) {
	m1, m2 := otherModes(n)
	if int64(u1.Rows) != s.Dims[m1] || int64(u2.Rows) != s.Dims[m2] {
		return nil, fmt.Errorf("core: TuckerContract factor shapes %dx%d/%dx%d do not match tensor dims %v (mode %d)",
			u1.Rows, u1.Cols, u2.Rows, u2.Cols, s.Dims, n)
	}
	switch v {
	case Naive:
		return s.tuckerNaive(n, u1, u2)
	case DNN:
		return s.tuckerDNN(n, u1, u2)
	case DRN:
		return s.tuckerDRN(n, u1, u2)
	case DRI:
		return s.tuckerDRI(n, u1, u2)
	}
	return nil, fmt.Errorf("core: unknown variant %v", v)
}

// ParafacContract computes the PARAFAC-ALS bottleneck
//
//	𝒴 ← 𝒳₍ₙ₎ (U2 ⊙ U1)
//
// for the factor update of mode n (lines 3, 5, 7 of Algorithm 1), where
// U1, U2 are the factors of the other two modes (both with R columns;
// U2 is the later mode, matching the Khatri-Rao order C⊙B for n=0).
// The I_n×R result is returned as a dense matrix.
func ParafacContract(s *Staged, n int, u1, u2 *matrix.Matrix, v Variant) (*matrix.Matrix, error) {
	m1, m2 := otherModes(n)
	if int64(u1.Rows) != s.Dims[m1] || int64(u2.Rows) != s.Dims[m2] {
		return nil, fmt.Errorf("core: ParafacContract factor shapes %dx%d/%dx%d do not match tensor dims %v (mode %d)",
			u1.Rows, u1.Cols, u2.Rows, u2.Cols, s.Dims, n)
	}
	if u1.Cols != u2.Cols {
		return nil, fmt.Errorf("core: ParafacContract rank mismatch %d vs %d", u1.Cols, u2.Cols)
	}
	var ys []YEntry
	var err error
	switch v {
	case Naive:
		ys, err = s.parafacNaive(n, u1, u2)
	case DNN:
		ys, err = s.parafacDNN(n, u1, u2)
	case DRN:
		ys, err = s.parafacDRN(n, u1, u2)
	case DRI:
		ys, err = s.parafacDRI(n, u1, u2)
	default:
		return nil, fmt.Errorf("core: unknown variant %v", v)
	}
	if err != nil {
		return nil, err
	}
	m := matrix.New(int(s.Dims[n]), u1.Cols)
	for _, y := range ys {
		m.Set(int(y.I), int(y.R), m.At(int(y.I), int(y.R))+y.Val)
	}
	return m, nil
}

// --- Tucker plans -----------------------------------------------------

// tuckerNaive: Algorithm 3. Q1 broadcast jobs build 𝒯 = 𝒳 ×_{m1} U1ᵀ one
// column at a time, then Q2 broadcast jobs contract 𝒯 with U2.
func (s *Staged) tuckerNaive(n int, u1, u2 *matrix.Matrix) ([]YEntry, error) {
	tr := s.cluster.Tracer()
	defer tr.End(tr.Begin("plan", "tucker-naive"))
	m1, m2 := otherModes(n)
	fibers1, err := s.fiberKeys(m1)
	if err != nil {
		return nil, err
	}
	vecFile := tmpName(s.cluster, s.Name, "vec")
	var tFiles []string
	var tEntries []Entry
	defer func() { s.cleanup(append(tFiles, vecFile)) }()
	for q := 0; q < u1.Cols; q++ {
		if err := stageColumn(s.cluster, vecFile, u1, q); err != nil {
			return nil, err
		}
		tf := tmpName(s.cluster, s.Name, fmt.Sprintf("T%d", q))
		tFiles = append(tFiles, tf)
		out, err := naiveContract(s.cluster, s.codec, []string{s.Name}, s.Dims, m1, vecFile, int64(u1.Rows), int64(q), fibers1, tf)
		if err != nil {
			return nil, err
		}
		tEntries = append(tEntries, out...)
	}
	// Fibers of 𝒯 for the second round of broadcasts.
	tDims := s.Dims
	tDims[m1] = int64(u1.Cols)
	a, b := otherModes(m2)
	seen := make(map[[2]int64]struct{})
	var fibers2 [][2]int64
	for _, e := range tEntries {
		k := [2]int64{e.Idx[a], e.Idx[b]}
		if _, ok := seen[k]; !ok {
			seen[k] = struct{}{}
			fibers2 = append(fibers2, k)
		}
	}
	var ys []YEntry
	var yFiles []string
	defer func() { s.cleanup(yFiles) }()
	for r := 0; r < u2.Cols; r++ {
		if err := stageColumn(s.cluster, vecFile, u2, r); err != nil {
			return nil, err
		}
		yf := tmpName(s.cluster, s.Name, fmt.Sprintf("Y%d", r))
		yFiles = append(yFiles, yf)
		out, err := naiveContract(s.cluster, s.codec, tFiles, tDims, m2, vecFile, int64(u2.Rows), int64(r), fibers2, yf)
		if err != nil {
			return nil, err
		}
		for _, e := range out {
			ys = append(ys, YEntry{I: e.Idx[n], Q: int32(e.Idx[m1]), R: int32(e.Idx[m2]), Val: e.Val})
		}
	}
	return ys, nil
}

// tuckerDNN: Algorithm 5. Q1 Hadamard jobs + one Collapse build 𝒯, then
// Q2 Hadamard jobs + one Collapse build 𝒴: Q+R+2 jobs, nnz·Q1·Q2 max
// intermediate (the second Collapse input).
func (s *Staged) tuckerDNN(n int, u1, u2 *matrix.Matrix) ([]YEntry, error) {
	tr := s.cluster.Tracer()
	defer tr.End(tr.Begin("plan", "tucker-dnn"))
	m1, m2 := otherModes(n)
	vecFile := tmpName(s.cluster, s.Name, "vec")
	var hFiles []string
	defer func() { s.cleanup(append(hFiles, vecFile)) }()
	for q := 0; q < u1.Cols; q++ {
		if err := stageColumn(s.cluster, vecFile, u1, q); err != nil {
			return nil, err
		}
		hf := tmpName(s.cluster, s.Name, fmt.Sprintf("H%d", q))
		hFiles = append(hFiles, hf)
		if err := hadamardVec(s.cluster, s.codec, s.Name, m1, int32(q), vecFile, false, hf); err != nil {
			return nil, err
		}
	}
	tFile := tmpName(s.cluster, s.Name, "T")
	hFiles = append(hFiles, tFile)
	if _, err := collapse(s.cluster, s.codec, hFiles[:len(hFiles)-1], m1, tFile); err != nil {
		return nil, err
	}
	var h2Files []string
	defer func() { s.cleanup(h2Files) }()
	for r := 0; r < u2.Cols; r++ {
		if err := stageColumn(s.cluster, vecFile, u2, r); err != nil {
			return nil, err
		}
		hf := tmpName(s.cluster, s.Name, fmt.Sprintf("H2_%d", r))
		h2Files = append(h2Files, hf)
		if err := hadamardVec(s.cluster, s.codec, tFile, m2, int32(r), vecFile, false, hf); err != nil {
			return nil, err
		}
	}
	yFile := tmpName(s.cluster, s.Name, "Y")
	h2Files = append(h2Files, yFile)
	out, err := collapse(s.cluster, s.codec, h2Files[:len(h2Files)-1], m2, yFile)
	if err != nil {
		return nil, err
	}
	ys := make([]YEntry, len(out))
	for i, e := range out {
		ys[i] = YEntry{I: e.Idx[n], Q: int32(e.Idx[m1]), R: int32(e.Idx[m2]), Val: e.Val}
	}
	return ys, nil
}

// tuckerDRN: Algorithm 7. Q1+Q2 independent Hadamard jobs build 𝒯′ and
// 𝒯″ directly from 𝒳 (no sequential dependency), then one CrossMerge:
// Q+R+1 jobs, nnz·(Q1+Q2) max intermediate.
func (s *Staged) tuckerDRN(n int, u1, u2 *matrix.Matrix) ([]YEntry, error) {
	tr := s.cluster.Tracer()
	defer tr.End(tr.Begin("plan", "tucker-drn"))
	t1Files, t2Files, vecFile, err := s.drnHadamards(n, u1, u2)
	defer func() {
		s.cleanup(t1Files)
		s.cleanup(t2Files)
		s.cleanup([]string{vecFile})
	}()
	if err != nil {
		return nil, err
	}
	mg := tr.Begin("stage", "cross-merge")
	defer tr.End(mg)
	return crossMerge(s.cluster, s.codec, t1Files, t2Files, n)
}

// tuckerDRI: Algorithm 9. One IMHP job + one CrossMerge: 2 jobs.
func (s *Staged) tuckerDRI(n int, u1, u2 *matrix.Matrix) ([]YEntry, error) {
	tr := s.cluster.Tracer()
	defer tr.End(tr.Begin("plan", "tucker-dri"))
	t1File, t2File, extra, err := s.driIMHP(n, u1, u2)
	defer func() { s.cleanup(append(extra, t1File, t2File)) }()
	if err != nil {
		return nil, err
	}
	mg := tr.Begin("stage", "cross-merge")
	defer tr.End(mg)
	return crossMerge(s.cluster, s.codec, []string{t1File}, []string{t2File}, n)
}

// --- PARAFAC plans ----------------------------------------------------

// parafacNaive: Algorithm 4. Per component r: one broadcast job for
// 𝒯ᵣ = 𝒳 ×̄_{m1} b_r and one for 𝒴ᵣ = 𝒯ᵣ ×̄_{m2} c_r: 2R jobs.
func (s *Staged) parafacNaive(n int, u1, u2 *matrix.Matrix) ([]YEntry, error) {
	tr := s.cluster.Tracer()
	defer tr.End(tr.Begin("plan", "parafac-naive"))
	m1, m2 := otherModes(n)
	fibers1, err := s.fiberKeys(m1)
	if err != nil {
		return nil, err
	}
	tDims := s.Dims
	tDims[m1] = int64(u1.Cols)
	vecFile := tmpName(s.cluster, s.Name, "vec")
	var tmp []string
	defer func() { s.cleanup(append(tmp, vecFile)) }()
	var ys []YEntry
	for r := 0; r < u1.Cols; r++ {
		if err := stageColumn(s.cluster, vecFile, u1, r); err != nil {
			return nil, err
		}
		tf := tmpName(s.cluster, s.Name, fmt.Sprintf("T%d", r))
		tmp = append(tmp, tf)
		tOut, err := naiveContract(s.cluster, s.codec, []string{s.Name}, s.Dims, m1, vecFile, int64(u1.Rows), int64(r), fibers1, tf)
		if err != nil {
			return nil, err
		}
		a, b := otherModes(m2)
		seen := make(map[[2]int64]struct{})
		var fibers2 [][2]int64
		for _, e := range tOut {
			k := [2]int64{e.Idx[a], e.Idx[b]}
			if _, ok := seen[k]; !ok {
				seen[k] = struct{}{}
				fibers2 = append(fibers2, k)
			}
		}
		if err := stageColumn(s.cluster, vecFile, u2, r); err != nil {
			return nil, err
		}
		yf := tmpName(s.cluster, s.Name, fmt.Sprintf("Y%d", r))
		tmp = append(tmp, yf)
		yOut, err := naiveContract(s.cluster, s.codec, []string{tf}, tDims, m2, vecFile, int64(u2.Rows), int64(r), fibers2, yf)
		if err != nil {
			return nil, err
		}
		for _, e := range yOut {
			ys = append(ys, YEntry{I: e.Idx[n], Q: int32(r), R: int32(r), Val: e.Val})
		}
	}
	return ys, nil
}

// parafacDNN: Algorithm 6. Per component r: Hadamard + Collapse with b_r,
// then Hadamard + Collapse with c_r: 4R jobs, nnz+J max intermediate.
func (s *Staged) parafacDNN(n int, u1, u2 *matrix.Matrix) ([]YEntry, error) {
	tr := s.cluster.Tracer()
	defer tr.End(tr.Begin("plan", "parafac-dnn"))
	m1, m2 := otherModes(n)
	vecFile := tmpName(s.cluster, s.Name, "vec")
	var tmp []string
	defer func() { s.cleanup(append(tmp, vecFile)) }()
	var ys []YEntry
	for r := 0; r < u1.Cols; r++ {
		if err := stageColumn(s.cluster, vecFile, u1, r); err != nil {
			return nil, err
		}
		hf := tmpName(s.cluster, s.Name, fmt.Sprintf("H%d", r))
		tmp = append(tmp, hf)
		if err := hadamardVec(s.cluster, s.codec, s.Name, m1, int32(r), vecFile, false, hf); err != nil {
			return nil, err
		}
		tf := tmpName(s.cluster, s.Name, fmt.Sprintf("T%d", r))
		tmp = append(tmp, tf)
		if _, err := collapse(s.cluster, s.codec, []string{hf}, m1, tf); err != nil {
			return nil, err
		}
		if err := stageColumn(s.cluster, vecFile, u2, r); err != nil {
			return nil, err
		}
		h2 := tmpName(s.cluster, s.Name, fmt.Sprintf("H2_%d", r))
		tmp = append(tmp, h2)
		if err := hadamardVec(s.cluster, s.codec, tf, m2, int32(r), vecFile, false, h2); err != nil {
			return nil, err
		}
		yf := tmpName(s.cluster, s.Name, fmt.Sprintf("Y%d", r))
		tmp = append(tmp, yf)
		out, err := collapse(s.cluster, s.codec, []string{h2}, m2, yf)
		if err != nil {
			return nil, err
		}
		for _, e := range out {
			ys = append(ys, YEntry{I: e.Idx[n], Q: int32(r), R: int32(r), Val: e.Val})
		}
	}
	return ys, nil
}

// parafacDRN: Algorithm 8. 2R independent Hadamard jobs build ℱ′ and 𝒯″
// from 𝒳, then one PairwiseMerge: 2R+1 jobs, 2·nnz·R max intermediate.
func (s *Staged) parafacDRN(n int, u1, u2 *matrix.Matrix) ([]YEntry, error) {
	tr := s.cluster.Tracer()
	defer tr.End(tr.Begin("plan", "parafac-drn"))
	t1Files, t2Files, vecFile, err := s.drnHadamards(n, u1, u2)
	defer func() {
		s.cleanup(t1Files)
		s.cleanup(t2Files)
		s.cleanup([]string{vecFile})
	}()
	if err != nil {
		return nil, err
	}
	mg := tr.Begin("stage", "pairwise-merge")
	defer tr.End(mg)
	return pairwiseMerge(s.cluster, s.codec, t1Files, t2Files, n)
}

// parafacDRI: Algorithm 10. One IMHP job + one PairwiseMerge: 2 jobs.
func (s *Staged) parafacDRI(n int, u1, u2 *matrix.Matrix) ([]YEntry, error) {
	tr := s.cluster.Tracer()
	defer tr.End(tr.Begin("plan", "parafac-dri"))
	t1File, t2File, extra, err := s.driIMHP(n, u1, u2)
	defer func() { s.cleanup(append(extra, t1File, t2File)) }()
	if err != nil {
		return nil, err
	}
	mg := tr.Begin("stage", "pairwise-merge")
	defer tr.End(mg)
	return pairwiseMerge(s.cluster, s.codec, []string{t1File}, []string{t2File}, n)
}

// --- shared plan fragments ---------------------------------------------

// drnHadamards runs the DRN variants' independent per-column Hadamard
// jobs: 𝒯′_q = 𝒳 ∗̄_{m1} u1_q for every column of U1 and
// 𝒯″_r = bin(𝒳) ∗̄_{m2} u2_r for every column of U2.
func (s *Staged) drnHadamards(n int, u1, u2 *matrix.Matrix) (t1Files, t2Files []string, vecFile string, err error) {
	tr := s.cluster.Tracer()
	defer tr.End(tr.Begin("stage", "hadamards"))
	m1, m2 := otherModes(n)
	vecFile = tmpName(s.cluster, s.Name, "vec")
	for q := 0; q < u1.Cols; q++ {
		if err = stageColumn(s.cluster, vecFile, u1, q); err != nil {
			return
		}
		tf := tmpName(s.cluster, s.Name, fmt.Sprintf("T1_%d", q))
		t1Files = append(t1Files, tf)
		if err = hadamardVec(s.cluster, s.codec, s.Name, m1, int32(q), vecFile, false, tf); err != nil {
			return
		}
	}
	for r := 0; r < u2.Cols; r++ {
		if err = stageColumn(s.cluster, vecFile, u2, r); err != nil {
			return
		}
		tf := tmpName(s.cluster, s.Name, fmt.Sprintf("T2_%d", r))
		t2Files = append(t2Files, tf)
		if err = hadamardVec(s.cluster, s.codec, s.Name, m2, int32(r), vecFile, true, tf); err != nil {
			return
		}
	}
	return
}

// driIMHP stages both factor matrices and runs the single integrated
// IMHP job, returning the 𝒯′ and 𝒯″ files.
func (s *Staged) driIMHP(n int, u1, u2 *matrix.Matrix) (t1File, t2File string, extra []string, err error) {
	tr := s.cluster.Tracer()
	m1, m2 := otherModes(n)
	sf := tr.Begin("stage", "stage-factors")
	bFile := tmpName(s.cluster, s.Name, "B")
	cFile := tmpName(s.cluster, s.Name, "C")
	extra = []string{bFile, cFile}
	if err = stageMatrix(s.cluster, bFile, u1); err != nil {
		tr.End(sf)
		return
	}
	if err = stageMatrix(s.cluster, cFile, u2); err != nil {
		tr.End(sf)
		return
	}
	tr.End(sf)
	im := tr.Begin("stage", "imhp")
	defer tr.End(im)
	t1File = tmpName(s.cluster, s.Name, "T1")
	t2File = tmpName(s.cluster, s.Name, "T2")
	err = imhp(s.cluster, s.codec, s.Name, m1, bFile, m2, cFile, t1File, t2File)
	return
}
