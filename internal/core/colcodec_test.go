package core

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"github.com/haten2/haten2/internal/gen"
	"github.com/haten2/haten2/internal/matrix"
	"github.com/haten2/haten2/internal/mr"
	"github.com/haten2/haten2/internal/tensor"
)

// The columnar codec's load-bearing invariant is that the incremental
// sizers charge exactly the bytes the encoders produce: the mr engine
// accounts shuffle volume through BlockSizer without ever materializing
// a block, so any drift between sizer and encoder silently corrupts the
// cost model (simulated time, resource limits, the paper's Tables
// III/IV). The tests here pin both directions — sizer == len(encoding),
// and decode ∘ encode == identity — on structured, adversarial, and
// fuzzed inputs, plus the end-to-end form: the bytes a job is charged
// equal the length of the blocks its shuffle would have written.

// randEntries builds n entries with a controllable index spread. Sorted
// sequences exercise the tiny-delta fast path; unsorted ones (shuffle
// emission order) exercise sign flips and wide deltas.
func randEntries(rng *rand.Rand, n int, span int64, sorted bool) []Entry {
	out := make([]Entry, n)
	for i := range out {
		out[i] = Entry{
			Idx: [3]int64{rng.Int63n(2*span+1) - span, rng.Int63n(2*span+1) - span, rng.Int63n(2*span+1) - span},
			Val: rng.NormFloat64(),
		}
	}
	if sorted {
		sortEntries(out)
	}
	return out
}

func sortEntries(es []Entry) {
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && lessIdx(es[j].Idx, es[j-1].Idx); j-- {
			es[j], es[j-1] = es[j-1], es[j]
		}
	}
}

func lessIdx(a, b [3]int64) bool {
	for m := 0; m < 3; m++ {
		if a[m] != b[m] {
			return a[m] < b[m]
		}
	}
	return false
}

func TestEntryBlockSizerMatchesEncoder(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := [][]Entry{
		nil,
		{},
		{{Idx: [3]int64{0, 0, 0}, Val: 0}},
		{{Idx: [3]int64{math.MaxInt64, math.MinInt64, -1}, Val: math.NaN()}},
		randEntries(rng, 1000, 50, true),
		randEntries(rng, 1000, 50, false),
		randEntries(rng, 257, math.MaxInt64/2, false),
	}
	for ci, es := range cases {
		enc := AppendEntryBlock(nil, es)
		if got, want := int64(len(enc)), EntryBlockSize(es); got != want {
			t.Fatalf("case %d: encoded %d bytes, sizer declared %d", ci, got, want)
		}
		dec, rest, err := DecodeEntryBlock(enc)
		if err != nil {
			t.Fatalf("case %d: decode: %v", ci, err)
		}
		if len(rest) != 0 {
			t.Fatalf("case %d: %d trailing bytes", ci, len(rest))
		}
		if len(dec) != len(es) {
			t.Fatalf("case %d: decoded %d records, want %d", ci, len(dec), len(es))
		}
		for i := range es {
			if dec[i].Idx != es[i].Idx || math.Float64bits(dec[i].Val) != math.Float64bits(es[i].Val) {
				t.Fatalf("case %d record %d: got %+v want %+v", ci, i, dec[i], es[i])
			}
		}
	}
}

func TestMatEntryBlockSizerMatchesEncoder(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var cells []MatEntry
	for i := 0; i < 500; i++ {
		cells = append(cells, MatEntry{
			Row: rng.Int63n(1 << 40), Col: int32(rng.Intn(1 << 20)), Val: rng.NormFloat64(),
		})
	}
	for _, cs := range [][]MatEntry{nil, cells[:1], cells} {
		enc := AppendMatEntryBlock(nil, cs)
		if got, want := int64(len(enc)), MatEntryBlockSize(cs); got != want {
			t.Fatalf("encoded %d bytes, sizer declared %d", got, want)
		}
		dec, rest, err := DecodeMatEntryBlock(enc)
		if err != nil || len(rest) != 0 {
			t.Fatalf("decode: %v, %d trailing", err, len(rest))
		}
		for i := range cs {
			if dec[i] != cs[i] {
				t.Fatalf("record %d: got %+v want %+v", i, dec[i], cs[i])
			}
		}
	}
}

// incrementalBlockSize folds a BlockSizer the way the engine does: each
// pair sized against its predecessor, the first against zero values,
// plus the header.
func svalIncrementalSize(keys [][3]int64, vals []sval) int64 {
	var n int64
	var pk [3]int64
	var pv sval
	for i := range keys {
		n += svalPairSize(pk, pv, keys[i], vals[i])
		pk, pv = keys[i], vals[i]
	}
	return n + blockHeaderSize(len(keys))
}

func TestSValBlockSizerMatchesEncoder(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var keys [][3]int64
	var vals []sval
	for i := 0; i < 800; i++ {
		keys = append(keys, [3]int64{rng.Int63n(1000), rng.Int63n(1000), 0})
		vals = append(vals, sval{
			tag: uint8(rng.Intn(4)),
			idx: [3]int64{rng.Int63n(1000), rng.Int63n(1000), rng.Int63n(1000)},
			col: int32(rng.Intn(64)),
			val: rng.NormFloat64(),
		})
	}
	for _, n := range []int{0, 1, 800} {
		enc := appendSValBlock(nil, keys[:n], vals[:n])
		if got, want := int64(len(enc)), svalIncrementalSize(keys[:n], vals[:n]); got != want {
			t.Fatalf("n=%d: encoded %d bytes, incremental sizer declared %d", n, got, want)
		}
		dk, dv, rest, err := decodeSValBlock(enc)
		if err != nil || len(rest) != 0 {
			t.Fatalf("n=%d: decode: %v, %d trailing", n, err, len(rest))
		}
		for i := 0; i < n; i++ {
			if dk[i] != keys[i] || dv[i] != vals[i] {
				t.Fatalf("n=%d record %d: got (%v,%+v) want (%v,%+v)", n, i, dk[i], dv[i], keys[i], vals[i])
			}
		}
	}
}

func TestNSValBlockSizerMatchesEncoder(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var keys [][2]int64
	var vals []nsval
	for i := 0; i < 800; i++ {
		keys = append(keys, [2]int64{rng.Int63n(1000), rng.Int63n(5)})
		var idx [maxOrder]int64
		for m := range idx {
			idx[m] = rng.Int63n(1000)
		}
		vals = append(vals, nsval{
			isMat: rng.Intn(2) == 1,
			idx:   idx,
			col:   int32(rng.Intn(64)),
			val:   rng.NormFloat64(),
		})
	}
	var want int64
	var pk [2]int64
	var pv nsval
	for i := range keys {
		want += nsvalPairSize(pk, pv, keys[i], vals[i])
		pk, pv = keys[i], vals[i]
	}
	want += blockHeaderSize(len(keys))
	enc := appendNSValBlock(nil, keys, vals)
	if got := int64(len(enc)); got != want {
		t.Fatalf("encoded %d bytes, incremental sizer declared %d", got, want)
	}
	dk, dv, rest, err := decodeNSValBlock(enc)
	if err != nil || len(rest) != 0 {
		t.Fatalf("decode: %v, %d trailing", err, len(rest))
	}
	for i := range keys {
		if dk[i] != keys[i] || dv[i] != vals[i] {
			t.Fatalf("record %d: got (%v,%+v) want (%v,%+v)", i, dk[i], dv[i], keys[i], vals[i])
		}
	}
}

// TestColumnarChargeMatchesEncodedBytes is the end-to-end form of the
// sizer invariant: run a real shuffle through the engine with a
// recording BlockSizer, reconstruct every per-partition block the
// accounting walk declared, encode each with the real encoder, and
// require the job's ShuffleBytes to equal the summed encoded lengths
// exactly. A single-worker cluster serializes the map tasks so the
// recorder sees each bucket's Pair calls contiguously (the engine walks
// one bucket at a time: n Pair calls, then Header(n)).
func TestColumnarChargeMatchesEncodedBytes(t *testing.T) {
	c := mr.NewCluster(mr.Config{Machines: 1, SlotsPerMachine: 1})
	rng := rand.New(rand.NewSource(5))
	entries := randEntries(rng, 2000, 400, true)
	if err := mr.WriteFile(c, "in", entries, entrySize); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var curK [][3]int64
	var curV []sval
	var encodedTotal int64
	rec := &mr.BlockSizer[[3]int64, sval]{
		Pair: func(pk [3]int64, pv sval, k [3]int64, v sval) int64 {
			mu.Lock()
			curK = append(curK, k)
			curV = append(curV, v)
			mu.Unlock()
			return svalPairSize(pk, pv, k, v)
		},
		Header: func(n int) int64 {
			mu.Lock()
			defer mu.Unlock()
			if n != len(curK) {
				t.Errorf("block declared %d records, recorder saw %d", n, len(curK))
			}
			encodedTotal += int64(len(appendSValBlock(nil, curK, curV)))
			curK, curV = curK[:0], curV[:0]
			return blockHeaderSize(n)
		},
	}

	job := mr.Job[[3]int64, sval, YEntry]{
		Name: "charge-invariant",
		Inputs: []mr.Input[[3]int64, sval]{mr.MapInput("in", func(e Entry, emit func([3]int64, sval)) {
			emit([3]int64{e.Idx[0], e.Idx[1], 0}, sval{tag: tagTensor, idx: e.Idx, val: e.Val})
		})},
		Reduce: func(k [3]int64, vs []sval, emit func(YEntry)) {
			var s float64
			for _, v := range vs {
				s += v.val
			}
			emit(YEntry{I: k[0], Val: s})
		},
		Partition: mr.HashTriple,
		BlockKV:   rec,
		OutSize:   yEntrySize,
	}
	_, st, err := mr.Run(c, job)
	if err != nil {
		t.Fatal(err)
	}
	if st.ShuffleBytes != encodedTotal {
		t.Fatalf("engine charged %d shuffle bytes, real encodings total %d", st.ShuffleBytes, encodedTotal)
	}
	if st.ShuffleRecords != int64(len(entries)) {
		t.Fatalf("shuffle records %d, want %d", st.ShuffleRecords, len(entries))
	}
	// And the whole point of the codec: the columnar charge must be
	// strictly below the fixed-width charge for the same shuffle.
	fixed := int64(len(entries)) * svalSize([3]int64{}, sval{})
	if encodedTotal >= fixed {
		t.Fatalf("columnar charge %d not below fixed-width charge %d", encodedTotal, fixed)
	}
}

// TestCodecShuffleBytesDecrease pins the acceptance criterion that
// switching a full plan from fixed-width to columnar accounting
// strictly decreases shuffle bytes while leaving record counts — and
// every output byte — untouched.
func TestCodecShuffleBytesDecrease(t *testing.T) {
	run := func(codec Codec) (*ParafacResult, mr.Totals) {
		c := mr.NewCluster(mr.Config{Machines: 2, SlotsPerMachine: 2})
		x := smallTestTensor(t)
		res, err := ParafacALS(c, x, 3, Options{Variant: DRI, MaxIters: 3, Seed: 11, Codec: codec})
		if err != nil {
			t.Fatal(err)
		}
		return res, c.Totals()
	}
	colRes, colTot := run(CodecColumnar)
	fixRes, fixTot := run(CodecFixed)
	if colTot.ShuffleRecords != fixTot.ShuffleRecords {
		t.Fatalf("codec changed shuffle records: columnar %d, fixed %d", colTot.ShuffleRecords, fixTot.ShuffleRecords)
	}
	if colTot.ShuffleBytes >= fixTot.ShuffleBytes {
		t.Fatalf("columnar shuffle bytes %d not strictly below fixed %d", colTot.ShuffleBytes, fixTot.ShuffleBytes)
	}
	assertSameParafac(t, colRes, fixRes)
}

// TestCodecFactorBitIdentity is the correctness half of the codec
// switch: accounting must never leak into arithmetic, so both codecs
// produce bit-identical factors.
func TestCodecFactorBitIdentity(t *testing.T) {
	x := smallTestTensor(t)
	var results []*ParafacResult
	var tuckers []*TuckerResult
	for _, codec := range []Codec{CodecColumnar, CodecFixed} {
		c := mr.NewCluster(mr.Config{Machines: 2, SlotsPerMachine: 2})
		res, err := ParafacALS(c, x, 2, Options{Variant: DRI, MaxIters: 2, Seed: 7, Codec: codec})
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
		tc := mr.NewCluster(mr.Config{Machines: 2, SlotsPerMachine: 2})
		tres, err := TuckerALS(tc, x, [3]int{2, 2, 2}, Options{Variant: DRI, MaxIters: 2, Seed: 7, Codec: codec})
		if err != nil {
			t.Fatal(err)
		}
		tuckers = append(tuckers, tres)
	}
	assertSameParafac(t, results[0], results[1])
	for m := range tuckers[0].Model.Factors {
		assertSameMatrix(t, tuckers[0].Model.Factors[m], tuckers[1].Model.Factors[m])
	}
	g0, g1 := tuckers[0].Model.Core.Data, tuckers[1].Model.Core.Data
	if len(g0) != len(g1) {
		t.Fatalf("core sizes differ")
	}
	for i := range g0 {
		if math.Float64bits(g0[i]) != math.Float64bits(g1[i]) {
			t.Fatalf("core entry %d differs between codecs", i)
		}
	}
}

func smallTestTensor(t *testing.T) *tensor.Tensor {
	t.Helper()
	return gen.Random(42, [3]int64{8, 8, 8}, 120)
}

func assertSameParafac(t *testing.T, a, b *ParafacResult) {
	t.Helper()
	if len(a.Model.Lambda) != len(b.Model.Lambda) {
		t.Fatalf("lambda lengths differ: %d vs %d", len(a.Model.Lambda), len(b.Model.Lambda))
	}
	for i := range a.Model.Lambda {
		if math.Float64bits(a.Model.Lambda[i]) != math.Float64bits(b.Model.Lambda[i]) {
			t.Fatalf("lambda[%d] differs: %v vs %v", i, a.Model.Lambda[i], b.Model.Lambda[i])
		}
	}
	for m := range a.Model.Factors {
		assertSameMatrix(t, a.Model.Factors[m], b.Model.Factors[m])
	}
}

func assertSameMatrix(t *testing.T, a, b *matrix.Matrix) {
	t.Helper()
	if a.Rows != b.Rows || a.Cols != b.Cols {
		t.Fatalf("matrix shapes differ: %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	for i := range a.Data {
		if math.Float64bits(a.Data[i]) != math.Float64bits(b.Data[i]) {
			t.Fatalf("matrix cell %d differs: %v vs %v", i, a.Data[i], b.Data[i])
		}
	}
}

// FuzzColumnarRoundTrip drives the columnar block codecs from both
// directions. Forward: deterministically expand the fuzz bytes into a
// record batch, then require len(encoding) == declared size and
// decode ∘ encode == identity (bit-level on float payloads, so NaN
// boxing survives). Backward: attempt to decode the raw fuzz bytes as a
// block; whenever the decoder accepts a prefix, re-encoding the decoded
// records must reproduce that prefix byte-for-byte.
func FuzzColumnarRoundTrip(f *testing.F) {
	f.Add(uint8(0), []byte{})
	f.Add(uint8(1), []byte{0})
	f.Add(uint8(2), []byte{3, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add(uint8(3), AppendEntryBlock(nil, []Entry{
		{Idx: [3]int64{1, 2, 3}, Val: 4.5},
		{Idx: [3]int64{-9, 0, 1 << 40}, Val: math.Inf(-1)},
	}))
	f.Add(uint8(0), AppendMatEntryBlock(nil, []MatEntry{{Row: 5, Col: -1, Val: math.NaN()}}))
	f.Fuzz(func(t *testing.T, kind uint8, data []byte) {
		// Forward: data → records → encode → size check → decode.
		rng := rand.New(rand.NewSource(int64(len(data))))
		take := func(i int) int64 {
			if i < len(data) {
				return int64(int8(data[i]))*1099511627776 + rng.Int63n(1000)
			}
			return rng.Int63n(1000) - 500
		}
		n := int(kind % 17)
		switch kind % 4 {
		case 0:
			es := make([]Entry, n)
			for i := range es {
				es[i] = Entry{Idx: [3]int64{take(3 * i), take(3*i + 1), take(3*i + 2)}, Val: rng.NormFloat64()}
			}
			enc := AppendEntryBlock(nil, es)
			if int64(len(enc)) != EntryBlockSize(es) {
				t.Fatalf("Entry: encoded %d, declared %d", len(enc), EntryBlockSize(es))
			}
			dec, rest, err := DecodeEntryBlock(enc)
			if err != nil || len(rest) != 0 || len(dec) != n {
				t.Fatalf("Entry round trip: %v, %d trailing, %d records", err, len(rest), len(dec))
			}
			for i := range es {
				if dec[i].Idx != es[i].Idx || math.Float64bits(dec[i].Val) != math.Float64bits(es[i].Val) {
					t.Fatalf("Entry %d: %+v != %+v", i, dec[i], es[i])
				}
			}
		case 1:
			cs := make([]MatEntry, n)
			for i := range cs {
				cs[i] = MatEntry{Row: take(2 * i), Col: int32(take(2*i + 1)), Val: rng.NormFloat64()}
			}
			enc := AppendMatEntryBlock(nil, cs)
			if int64(len(enc)) != MatEntryBlockSize(cs) {
				t.Fatalf("MatEntry: encoded %d, declared %d", len(enc), MatEntryBlockSize(cs))
			}
			dec, rest, err := DecodeMatEntryBlock(enc)
			if err != nil || len(rest) != 0 || len(dec) != n {
				t.Fatalf("MatEntry round trip: %v, %d trailing, %d records", err, len(rest), len(dec))
			}
			for i := range cs {
				if dec[i].Row != cs[i].Row || dec[i].Col != cs[i].Col ||
					math.Float64bits(dec[i].Val) != math.Float64bits(cs[i].Val) {
					t.Fatalf("MatEntry %d: %+v != %+v", i, dec[i], cs[i])
				}
			}
		case 2:
			keys := make([][3]int64, n)
			vals := make([]sval, n)
			for i := range keys {
				keys[i] = [3]int64{take(6 * i), take(6*i + 1), take(6*i + 2)}
				vals[i] = sval{
					tag: uint8(take(6*i + 3)),
					idx: [3]int64{take(6*i + 4), take(6*i + 5), rng.Int63n(100)},
					col: int32(rng.Intn(256)),
					val: rng.NormFloat64(),
				}
			}
			enc := appendSValBlock(nil, keys, vals)
			if int64(len(enc)) != svalIncrementalSize(keys, vals) {
				t.Fatalf("sval: encoded %d, declared %d", len(enc), svalIncrementalSize(keys, vals))
			}
			dk, dv, rest, err := decodeSValBlock(enc)
			if err != nil || len(rest) != 0 {
				t.Fatalf("sval round trip: %v, %d trailing", err, len(rest))
			}
			for i := range keys {
				if dk[i] != keys[i] || dv[i].tag != vals[i].tag || dv[i].idx != vals[i].idx ||
					dv[i].col != vals[i].col || math.Float64bits(dv[i].val) != math.Float64bits(vals[i].val) {
					t.Fatalf("sval %d: (%v,%+v) != (%v,%+v)", i, dk[i], dv[i], keys[i], vals[i])
				}
			}
		case 3:
			keys := make([][2]int64, n)
			vals := make([]nsval, n)
			for i := range keys {
				keys[i] = [2]int64{take(4 * i), take(4*i + 1)}
				var idx [maxOrder]int64
				for m := range idx {
					idx[m] = take(4*i + 2 + m)
				}
				vals[i] = nsval{isMat: rng.Intn(2) == 1, idx: idx, col: int32(rng.Intn(256)), val: rng.NormFloat64()}
			}
			enc := appendNSValBlock(nil, keys, vals)
			dk, dv, rest, err := decodeNSValBlock(enc)
			if err != nil || len(rest) != 0 {
				t.Fatalf("nsval round trip: %v, %d trailing", err, len(rest))
			}
			for i := range keys {
				if dk[i] != keys[i] || dv[i].isMat != vals[i].isMat || dv[i].idx != vals[i].idx ||
					dv[i].col != vals[i].col || math.Float64bits(dv[i].val) != math.Float64bits(vals[i].val) {
					t.Fatalf("nsval %d mismatch", i)
				}
			}
		}

		// Backward: arbitrary bytes through the decoders. Acceptance is
		// rare (the count header must be plausible), but whenever a
		// decoder accepts, re-encoding must reproduce the consumed
		// prefix exactly.
		if es, rest, err := DecodeEntryBlock(data); err == nil {
			reenc := AppendEntryBlock(nil, es)
			if consumed := len(data) - len(rest); len(reenc) != consumed || string(reenc) != string(data[:consumed]) {
				t.Fatalf("Entry decoder accepted %d bytes but re-encode differs", consumed)
			}
		}
		if cs, rest, err := DecodeMatEntryBlock(data); err == nil {
			reenc := AppendMatEntryBlock(nil, cs)
			if consumed := len(data) - len(rest); len(reenc) != consumed || string(reenc) != string(data[:consumed]) {
				t.Fatalf("MatEntry decoder accepted %d bytes but re-encode differs", consumed)
			}
		}
	})
}
