package core

// Binary record encodings. The cluster simulator accounts DFS and
// shuffle traffic using the *Bytes size constants in records.go; this
// codec is the concrete on-disk format those constants describe
// (little-endian fixed-width fields, the layout the Hadoop
// implementation's Writables would use). The tests assert that every
// encoded record's length equals its accounting constant, so the cost
// model can never drift from the declared format.

import (
	"encoding/binary"
	"fmt"
	"math"
)

// EncodeEntry appends the binary form of e to dst and returns the
// extended slice. Encoded length is exactly entryBytes.
func EncodeEntry(dst []byte, e Entry) []byte {
	for _, c := range e.Idx {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(c))
	}
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(e.Val))
}

// DecodeEntry reads one Entry from the front of src, returning it and
// the remaining bytes.
func DecodeEntry(src []byte) (Entry, []byte, error) {
	if len(src) < entryBytes {
		return Entry{}, src, fmt.Errorf("core: short Entry: %d bytes", len(src))
	}
	var e Entry
	for m := range e.Idx {
		e.Idx[m] = int64(binary.LittleEndian.Uint64(src[m*8:]))
	}
	e.Val = math.Float64frombits(binary.LittleEndian.Uint64(src[24:]))
	return e, src[entryBytes:], nil
}

// EncodeMatEntry appends the binary form of c (length matEntryBytes).
func EncodeMatEntry(dst []byte, c MatEntry) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, uint64(c.Row))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(c.Col))
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(c.Val))
}

// DecodeMatEntry reads one MatEntry from the front of src.
func DecodeMatEntry(src []byte) (MatEntry, []byte, error) {
	if len(src) < matEntryBytes {
		return MatEntry{}, src, fmt.Errorf("core: short MatEntry: %d bytes", len(src))
	}
	c := MatEntry{
		Row: int64(binary.LittleEndian.Uint64(src)),
		Col: int32(binary.LittleEndian.Uint32(src[8:])),
		Val: math.Float64frombits(binary.LittleEndian.Uint64(src[12:])),
	}
	return c, src[matEntryBytes:], nil
}

// EncodeHEntry appends the binary form of h (length hEntryBytes).
func EncodeHEntry(dst []byte, h HEntry) []byte {
	for _, c := range h.Idx {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(c))
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(h.Col))
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(h.Val))
}

// DecodeHEntry reads one HEntry from the front of src.
func DecodeHEntry(src []byte) (HEntry, []byte, error) {
	if len(src) < hEntryBytes {
		return HEntry{}, src, fmt.Errorf("core: short HEntry: %d bytes", len(src))
	}
	var h HEntry
	for m := range h.Idx {
		h.Idx[m] = int64(binary.LittleEndian.Uint64(src[m*8:]))
	}
	h.Col = int32(binary.LittleEndian.Uint32(src[24:]))
	h.Val = math.Float64frombits(binary.LittleEndian.Uint64(src[28:]))
	return h, src[hEntryBytes:], nil
}

// EncodeYEntry appends the binary form of y (length yEntryBytes).
func EncodeYEntry(dst []byte, y YEntry) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, uint64(y.I))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(y.Q))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(y.R))
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(y.Val))
}

// DecodeYEntry reads one YEntry from the front of src.
func DecodeYEntry(src []byte) (YEntry, []byte, error) {
	if len(src) < yEntryBytes {
		return YEntry{}, src, fmt.Errorf("core: short YEntry: %d bytes", len(src))
	}
	y := YEntry{
		I:   int64(binary.LittleEndian.Uint64(src)),
		Q:   int32(binary.LittleEndian.Uint32(src[8:])),
		R:   int32(binary.LittleEndian.Uint32(src[12:])),
		Val: math.Float64frombits(binary.LittleEndian.Uint64(src[16:])),
	}
	return y, src[yEntryBytes:], nil
}

// EncodeTensorFile serializes a slice of entries back to back — the
// block payload format the DFS accounting assumes.
func EncodeTensorFile(entries []Entry) []byte {
	out := make([]byte, 0, len(entries)*entryBytes)
	for _, e := range entries {
		out = EncodeEntry(out, e)
	}
	return out
}

// DecodeTensorFile parses a buffer written by EncodeTensorFile.
func DecodeTensorFile(src []byte) ([]Entry, error) {
	if len(src)%entryBytes != 0 {
		return nil, fmt.Errorf("core: tensor file length %d is not a multiple of %d", len(src), entryBytes)
	}
	out := make([]Entry, 0, len(src)/entryBytes)
	for len(src) > 0 {
		var e Entry
		var err error
		e, src, err = DecodeEntry(src)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}
