package core

// N-way support. The paper defines PARAFAC, Tucker, and all five
// operator definitions for N-way tensors (§II, Definitions 1–5) but
// spells out the MapReduce jobs for the 3-way case only. This file
// generalizes the recommended DRI plan (IMHP + merge) to order-4
// tensors — the order of the paper's motivating example, (source-ip,
// target-ip, port-number, timestamp) intrusion logs. The structure
// extends mechanically to higher orders; 4 is the fixed record width
// used for shuffle keys and coordinate matching.

import (
	"fmt"

	"github.com/haten2/haten2/internal/matrix"
	"github.com/haten2/haten2/internal/mr"
	"github.com/haten2/haten2/internal/tensor"
)

// maxOrder is the largest tensor order the distributed N-way plan
// supports.
const maxOrder = 4

// NEntry is one nonzero of an order-N tensor (N ≤ maxOrder) staged on
// the DFS; only the first N coordinates are meaningful.
type NEntry struct {
	Idx [maxOrder]int64
	Val float64
}

// NHEntry is an N-way Hadamard intermediate: the original coordinate
// plus the factor column index and which factor (side) produced it.
type NHEntry struct {
	Idx  [maxOrder]int64
	Side int8 // 0-based position among the N-1 multiplied modes
	Col  int32
	Val  float64
}

// NYEntry is one entry of an N-way contraction result: the mode-n
// coordinate plus one column index per multiplied mode.
type NYEntry struct {
	I    int64
	Cols [maxOrder - 1]int32
	Val  float64
}

const (
	nEntryBytes  = maxOrder*8 + 8
	nhEntryBytes = maxOrder*8 + 1 + 4 + 8
	nyEntryBytes = 8 + (maxOrder-1)*4 + 8
)

// Hoisted size callbacks, shared by every N-way job (see the 3-way
// counterparts in records.go).
func nEntrySize(NEntry) int64   { return nEntryBytes }
func nhEntrySize(NHEntry) int64 { return nhEntryBytes }
func nyEntrySize(NYEntry) int64 { return nyEntryBytes }

// StagedN is an order-N tensor staged on a cluster's DFS.
type StagedN struct {
	Name    string
	Dims    []int64
	NNZ     int64
	cluster *mr.Cluster
	// codec selects the shuffle wire format of the jobs run against this
	// tensor (CodecColumnar unless overridden via SetCodec).
	codec Codec
}

// SetCodec selects the shuffle codec for subsequent jobs. The codec
// only changes byte accounting, never results.
func (s *StagedN) SetCodec(c Codec) { s.codec = c }

// StageN writes a coalesced tensor of order 3 or 4 to the cluster DFS.
func StageN(c *mr.Cluster, name string, x *tensor.Tensor) (*StagedN, error) {
	o := x.Order()
	if o < 3 || o > maxOrder {
		return nil, fmt.Errorf("core: StageN supports orders 3..%d, got %d", maxOrder, o)
	}
	x.Coalesce()
	entries := make([]NEntry, x.NNZ())
	for p := range entries {
		idx := x.Index(p)
		var e NEntry
		copy(e.Idx[:], idx)
		e.Val = x.Value(p)
		entries[p] = e
	}
	if err := mr.WriteFile(c, name, entries, nEntrySize); err != nil {
		return nil, err
	}
	return &StagedN{Name: name, Dims: x.Dims(), NNZ: int64(x.NNZ()), cluster: c}, nil
}

// nsval is the shuffle value of the N-way jobs.
type nsval struct {
	isMat bool
	idx   [maxOrder]int64
	col   int32
	val   float64
}

func nsvalSize(_ [2]int64, v nsval) int64 {
	if v.isMat {
		return matEntryBytes
	}
	return nhEntryBytes
}

// imhpN is the N-way IMHP job: in a single pass over 𝒳 it computes
// 𝒯⁽⁰⁾ = 𝒳 ∗_{m₀} U₀ᵀ and 𝒯⁽ˢ⁾ = bin(𝒳) ∗_{mₛ} Uₛᵀ for s ≥ 1, where
// modes lists the N−1 modes being multiplied and matFiles their staged
// factors. Results are written per side to outFiles.
func imhpN(c *mr.Cluster, codec Codec, xFile string, modes []int, matFiles, outFiles []string) error {
	inputs := []mr.Input[[2]int64, nsval]{
		mr.MapInput(xFile, func(e NEntry, emit func([2]int64, nsval)) {
			for s, m := range modes {
				v := e.Val
				if s > 0 {
					v = 1 // bin(𝒳) for all but the first side
				}
				emit([2]int64{int64(s), e.Idx[m]}, nsval{idx: e.Idx, val: v})
			}
		}),
	}
	for s, f := range matFiles {
		side := int64(s)
		inputs = append(inputs, mr.MapInput(f, func(cell MatEntry, emit func([2]int64, nsval)) {
			emit([2]int64{side, cell.Row}, nsval{isMat: true, col: cell.Col, val: cell.Val})
		}))
	}
	job := mr.Job[[2]int64, nsval, NHEntry]{
		Name:   fmt.Sprintf("imhpN(%s)", xFile),
		Inputs: inputs,
		Reduce: func(key [2]int64, vals []nsval, emit func(NHEntry)) {
			side := int8(key[0])
			var row []MatEntry
			for _, v := range vals {
				if v.isMat {
					row = append(row, MatEntry{Col: v.col, Val: v.val})
				}
			}
			for _, v := range vals {
				if v.isMat {
					continue
				}
				for _, cell := range row {
					if cell.Val == 0 {
						continue
					}
					emit(NHEntry{Idx: v.idx, Side: side, Col: cell.Col, Val: v.val * cell.Val})
				}
			}
		},
		Partition: mr.HashPair,
		OutSize:   nhEntrySize,
	}
	nsvalAccounting(&job, codec)
	out, _, err := mr.Run(c, job)
	if err != nil {
		return err
	}
	// MultipleOutputs: one file per side.
	bySide := make([][]NHEntry, len(modes))
	for _, h := range out {
		bySide[h.Side] = append(bySide[h.Side], h)
	}
	for s, f := range outFiles {
		if err := mr.WriteFile(c, f, bySide[s], nhEntrySize); err != nil {
			return err
		}
	}
	return nil
}

// crossMergeN is the N-way CrossMerge (Definition 3): reducers receive
// every side's Hadamard records for one mode-n slice and cross all
// column combinations:
// 𝒴(i, q₀…q_{N-2}) = Σ_idx Π_s 𝒯⁽ˢ⁾(idx, q_s).
func crossMergeN(c *mr.Cluster, codec Codec, files []string, n, sides int) ([]NYEntry, error) {
	// Files arrive one per side; the side index is packed into the high
	// bits of the column (columns are ≤ 80 in the paper, far below the
	// 16-bit boundary).
	inputs := make([]mr.Input[[2]int64, nsval], len(files))
	for s := range files {
		side := int32(s)
		inputs[s] = mr.MapInput(files[s], func(h NHEntry, emit func([2]int64, nsval)) {
			emit([2]int64{h.Idx[n], 0}, nsval{idx: h.Idx, col: side<<16 | h.Col, val: h.Val})
		})
	}
	job := mr.Job[[2]int64, nsval, NYEntry]{
		Name:   fmt.Sprintf("crossMergeN(mode=%d)", n),
		Inputs: inputs,
		Reduce: func(key [2]int64, vals []nsval, emit func(NYEntry)) {
			type cv struct {
				col int32
				val float64
			}
			// Per original coordinate, per side: the (col, val) pairs.
			// Coordinates and column cells are walked in first-seen order
			// (vals order is fixed by the engine), never in map order, so
			// summation and emission order are identical on every run.
			bySide := make(map[[maxOrder]int64][][]cv)
			var idxOrder [][maxOrder]int64
			for _, v := range vals {
				side := int(v.col >> 16)
				col := v.col & 0xffff
				lists, ok := bySide[v.idx]
				if !ok {
					lists = make([][]cv, sides)
					idxOrder = append(idxOrder, v.idx)
				}
				lists[side] = append(lists[side], cv{col, v.val})
				bySide[v.idx] = lists
			}
			acc := make(map[[maxOrder - 1]int32]float64)
			var accOrder [][maxOrder - 1]int32
			var cols [maxOrder - 1]int32
			var walk func(idxLists [][]cv, s int, prod float64)
			walk = func(idxLists [][]cv, s int, prod float64) {
				if s == sides {
					if _, seen := acc[cols]; !seen {
						accOrder = append(accOrder, cols)
					}
					acc[cols] += prod
					return
				}
				for _, e := range idxLists[s] {
					cols[s] = e.col
					walk(idxLists, s+1, prod*e.val)
				}
			}
			for _, idx := range idxOrder {
				lists := bySide[idx]
				complete := true
				for s := 0; s < sides; s++ {
					if len(lists[s]) == 0 {
						complete = false
						break
					}
				}
				if complete {
					walk(lists, 0, 1)
				}
			}
			for _, qc := range accOrder {
				if v := acc[qc]; v != 0 {
					emit(NYEntry{I: key[0], Cols: qc, Val: v})
				}
			}
		},
		Partition: mr.HashPair,
		OutSize:   nyEntrySize,
	}
	nsvalAccounting(&job, codec)
	out, _, err := mr.Run(c, job)
	return out, err
}

// pairwiseMergeN is the N-way PairwiseMerge (Definition 4): all sides
// share the column index r, and reducers multiply one record per side
// per coordinate: 𝒴(i, r) = Σ_idx Π_s 𝒯⁽ˢ⁾(idx, r).
func pairwiseMergeN(c *mr.Cluster, codec Codec, files []string, n, sides int) ([]NYEntry, error) {
	inputs := make([]mr.Input[[2]int64, nsval], len(files))
	for s := range files {
		side := int8(s)
		inputs[s] = mr.MapInput(files[s], func(h NHEntry, emit func([2]int64, nsval)) {
			emit([2]int64{h.Idx[n], int64(h.Col)}, nsval{idx: h.Idx, col: int32(side), val: h.Val})
		})
	}
	job := mr.Job[[2]int64, nsval, NYEntry]{
		Name:   fmt.Sprintf("pairwiseMergeN(mode=%d)", n),
		Inputs: inputs,
		Reduce: func(key [2]int64, vals []nsval, emit func(NYEntry)) {
			// Coordinates are summed in first-seen order (vals order is
			// fixed by the engine), never in map order, keeping the
			// floating-point total identical on every run.
			prod := make(map[[maxOrder]int64][]float64)
			var idxOrder [][maxOrder]int64
			for _, v := range vals {
				p, ok := prod[v.idx]
				if !ok {
					p = make([]float64, sides)
					prod[v.idx] = p
					idxOrder = append(idxOrder, v.idx)
				}
				p[v.col] += v.val
			}
			var sum float64
			for _, idx := range idxOrder {
				p := prod[idx]
				term := 1.0
				for s := 0; s < sides; s++ {
					term *= p[s]
				}
				sum += term
			}
			if sum == 0 {
				return
			}
			var cols [maxOrder - 1]int32
			for s := 0; s < sides; s++ {
				cols[s] = int32(key[1])
			}
			emit(NYEntry{I: key[0], Cols: cols, Val: sum})
		},
		Partition: mr.HashPair,
		OutSize:   nyEntrySize,
	}
	nsvalAccounting(&job, codec)
	out, _, err := mr.Run(c, job)
	return out, err
}

// otherModesN returns the modes ≠ n in ascending order.
func otherModesN(order, n int) []int {
	out := make([]int, 0, order-1)
	for m := 0; m < order; m++ {
		if m != n {
			out = append(out, m)
		}
	}
	return out
}

// contractN runs the DRI plan (IMHP + merge) for one mode update on an
// N-way tensor. factors lists one matrix per multiplied mode, ordered
// by ascending mode; pairwise selects PairwiseMerge (PARAFAC) over
// CrossMerge (Tucker).
func (s *StagedN) contractN(n int, factors []*matrix.Matrix, pairwise bool) ([]NYEntry, error) {
	modes := otherModesN(len(s.Dims), n)
	if len(factors) != len(modes) {
		return nil, fmt.Errorf("core: contractN wants %d factors, got %d", len(modes), len(factors))
	}
	var matFiles, outFiles []string
	var tmp []string
	defer func() { s.cleanupN(tmp) }()
	for i, f := range factors {
		if int64(f.Rows) != s.Dims[modes[i]] {
			return nil, fmt.Errorf("core: contractN factor %d has %d rows, mode %d has size %d", i, f.Rows, modes[i], s.Dims[modes[i]])
		}
		if f.Cols >= 1<<16 {
			// The merge jobs pack the side index into the high bits of
			// the column (the paper's ranks are ≤ 80).
			return nil, fmt.Errorf("core: contractN supports at most %d columns per factor, got %d", 1<<16-1, f.Cols)
		}
		mf := tmpName(s.cluster, s.Name, fmt.Sprintf("U%d", i))
		if err := stageMatrix(s.cluster, mf, f); err != nil {
			return nil, err
		}
		matFiles = append(matFiles, mf)
		of := tmpName(s.cluster, s.Name, fmt.Sprintf("T%d", i))
		outFiles = append(outFiles, of)
		tmp = append(tmp, mf, of)
	}
	if err := imhpN(s.cluster, s.codec, s.Name, modes, matFiles, outFiles); err != nil {
		return nil, err
	}
	if pairwise {
		return pairwiseMergeN(s.cluster, s.codec, outFiles, n, len(modes))
	}
	return crossMergeN(s.cluster, s.codec, outFiles, n, len(modes))
}

func (s *StagedN) cleanupN(files []string) {
	for _, f := range files {
		if s.cluster.FS().Exists(f) {
			// Exists-guarded, so ErrNotExist (Delete's only error) is
			// impossible; this defer-path has no caller to report to.
			//haten2:allow errcheck-io best-effort temp cleanup, Delete can only return ErrNotExist and the file was just checked
			_ = s.cluster.FS().Delete(f)
		}
	}
}
