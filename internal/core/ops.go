package core

import (
	"fmt"
	"sync"

	"github.com/haten2/haten2/internal/mr"
)

// pairScratchPool recycles the 𝒯″-side accumulator map the
// PairwiseMerge reducer needs per key (see pairwiseMerge). Pooled
// because the reducer runs once per distinct (coordinate, r) key and
// per-call maps dominated the plan's allocation profile.
var pairScratchPool = sync.Pool{New: func() any { return make(map[[3]int64]float64) }}

// shuffle size of one sval, by provenance: tensor-derived records carry
// a full coordinate (paper's ⟨i,j,k,v⟩ tuples); matrix cells are small.
func svalSize(_ [3]int64, v sval) int64 {
	if v.tag == tagMat {
		return matEntryBytes
	}
	return hEntryBytes
}

// naiveContract is the HaTen2-Naive building block: one n-mode vector
// product 𝒳 ×̄_m v as a single broadcast-style MapReduce job (the inner
// loop of Algorithms 3 and 4). Tensor entries are shuffled on their
// fiber key (the coordinates of the modes ≠ m), and the factor vector is
// copied to every fiber key — the paper's nnz(𝒳)+IJK intermediate-data
// blow-up. The simulator materializes vector copies only for fibers that
// actually exist and charges the remainder via ExtraShuffleRecords, so
// cost accounting (and resource exhaustion) matches the faithful plan.
//
// The result entries are written to outFile with outIdx in mode m's
// position, so Q single-column results assemble into the 3-way
// intermediate 𝒯 without a separate job.
func naiveContract(c *mr.Cluster, codec Codec, inFiles []string, dims [3]int64, m int, vecFile string, vecLen int64, outIdx int64, fibers [][2]int64, outFile string) ([]Entry, error) {
	m1, m2 := otherModes(m)
	// Faithful plan: the vector is copied to all dims[m1]·dims[m2] fiber
	// keys; we emit len(fibers)·vecLen of those copies for real.
	phantomKeys := dims[m1]*dims[m2] - int64(len(fibers))
	if phantomKeys < 0 {
		phantomKeys = 0
	}
	inputs := make([]mr.Input[[3]int64, sval], 0, len(inFiles)+1)
	for _, f := range inFiles {
		inputs = append(inputs, mr.MapInput(f, func(e Entry, emit func([3]int64, sval)) {
			emit([3]int64{e.Idx[m1], e.Idx[m2], 0}, sval{tag: tagTensor, idx: e.Idx, val: e.Val})
		}))
	}
	inputs = append(inputs, mr.MapInput(vecFile, func(cell MatEntry, emit func([3]int64, sval)) {
		for _, f := range fibers {
			emit([3]int64{f[0], f[1], 0}, sval{tag: tagMat, idx: [3]int64{cell.Row, 0, 0}, val: cell.Val})
		}
	}))
	job := mr.Job[[3]int64, sval, Entry]{
		Name:   fmt.Sprintf("naive-contract(mode=%d)", m),
		Inputs: inputs,
		Reduce: func(key [3]int64, vals []sval, emit func(Entry)) {
			// Inner product of the mode-m fiber with the vector.
			vec := make(map[int64]float64)
			for _, v := range vals {
				if v.tag == tagMat {
					vec[v.idx[0]] = v.val
				}
			}
			var sum float64
			for _, v := range vals {
				if v.tag == tagTensor {
					sum += v.val * vec[v.idx[m]]
				}
			}
			if sum == 0 {
				return
			}
			var idx [3]int64
			idx[m1], idx[m2], idx[m] = key[0], key[1], outIdx
			emit(Entry{Idx: idx, Val: sum})
		},
		Partition:           mr.HashTriple,
		OutSize:             entrySize,
		Output:              outFile,
		ExtraShuffleRecords: phantomKeys * vecLen,
		// Phantom copies are never materialized, so they have no real
		// encoding; they stay priced at the fixed MatEntry width under
		// both codecs (only genuinely encoded records get codec-priced).
		ExtraShuffleBytes: phantomKeys * vecLen * matEntryBytes,
	}
	svalAccounting(&job, codec)
	out, _, err := mr.Run(c, job)
	return out, err
}

// hadamardVec is the decoupled multiplication step of Hadamard-and-Merge
// (§III-B2): 𝒳 ∗̄_m v as one job. Tensor entries are shuffled on their
// mode-m coordinate alone — nnz(𝒳)+len(v) intermediate records instead
// of the Naive broadcast — and each is multiplied by the matching vector
// element. With bin set, tensor values are replaced by 1 first
// (bin(𝒳) ∗̄_m v, the 𝒯″ side of Lemmas 1 and 2).
// The result is an order-4 HEntry file carrying colIdx as the new mode.
func hadamardVec(c *mr.Cluster, codec Codec, inFile string, m int, colIdx int32, vecFile string, bin bool, outFile string) error {
	job := mr.Job[[3]int64, sval, HEntry]{
		Name: fmt.Sprintf("hadamard(%s,mode=%d,col=%d)", inFile, m, colIdx),
		Inputs: []mr.Input[[3]int64, sval]{
			mr.MapInput(inFile, func(e Entry, emit func([3]int64, sval)) {
				v := e.Val
				if bin {
					v = 1
				}
				emit([3]int64{e.Idx[m], 0, 0}, sval{tag: tagTensor, idx: e.Idx, val: v})
			}),
			mr.MapInput(vecFile, func(cell MatEntry, emit func([3]int64, sval)) {
				emit([3]int64{cell.Row, 0, 0}, sval{tag: tagMat, val: cell.Val})
			}),
		},
		Reduce: func(key [3]int64, vals []sval, emit func(HEntry)) {
			var vec float64
			for _, v := range vals {
				if v.tag == tagMat {
					vec = v.val
				}
			}
			if vec == 0 {
				return
			}
			for _, v := range vals {
				if v.tag == tagTensor {
					emit(HEntry{Idx: v.idx, Col: colIdx, Val: v.val * vec})
				}
			}
		},
		Partition: mr.HashTriple,
		OutSize:   hEntrySize,
		Output:    outFile,
	}
	svalAccounting(&job, codec)
	_, _, err := mr.Run(c, job)
	return err
}

// collapse is the merge step of Hadamard-and-Merge (Definition 2):
// Collapse(𝒯′)_m sums the HEntry inputs across mode m, grouping on the
// remaining coordinates plus the Hadamard column. The column index takes
// mode m's place in the output, so Collapse(𝒳 ∗₂ Bᵀ)₂ yields the 3-way
// 𝒯 = 𝒳 ×₂ Bᵀ directly.
func collapse(c *mr.Cluster, codec Codec, inFiles []string, m int, outFile string) ([]Entry, error) {
	m1, m2 := otherModes(m)
	inputs := make([]mr.Input[[3]int64, sval], len(inFiles))
	for i, f := range inFiles {
		inputs[i] = mr.MapInput(f, func(h HEntry, emit func([3]int64, sval)) {
			emit([3]int64{h.Idx[m1], h.Idx[m2], int64(h.Col)}, sval{tag: tagTensor, val: h.Val})
		})
	}
	job := mr.Job[[3]int64, sval, Entry]{
		Name:   fmt.Sprintf("collapse(mode=%d)", m),
		Inputs: inputs,
		Reduce: func(key [3]int64, vals []sval, emit func(Entry)) {
			var sum float64
			for _, v := range vals {
				sum += v.val
			}
			if sum == 0 {
				return
			}
			var idx [3]int64
			idx[m1], idx[m2], idx[m] = key[0], key[1], key[2]
			emit(Entry{Idx: idx, Val: sum})
		},
		Partition: mr.HashTriple,
		OutSize:   entrySize,
		Output:    outFile,
	}
	svalAccounting(&job, codec)
	out, _, err := mr.Run(c, job)
	return out, err
}

// taggedH is an IMHP output record: which side (𝒯′ or 𝒯″) it belongs to
// plus the Hadamard entry itself.
type taggedH struct {
	side uint8 // 1 for 𝒯′, 2 for 𝒯″
	h    HEntry
}

func taggedHSize(taggedH) int64 { return hEntryBytes }

// imhp is HaTen2-DRI's integrated job (§III-B4): it computes both
// 𝒯′ = 𝒳 ∗_{m1} Bᵀ and 𝒯″ = bin(𝒳) ∗_{m2} Cᵀ in a single MapReduce job
// that reads 𝒳 from the DFS once. The mapper emits every tensor entry
// under two keys (its m1 coordinate, tagged for B, and its m2
// coordinate, tagged for C); reducers hold one factor row — O(Q) extra
// memory, the deliberate memory-for-jobs trade the paper makes — and
// multiply it against their fiber. The two result tensors are written to
// t1File and t2File (MultipleOutputs in the Hadoop implementation).
func imhp(c *mr.Cluster, codec Codec, xFile string, m1 int, bFile string, m2 int, cFile string, t1File, t2File string) error {
	job := mr.Job[[3]int64, sval, taggedH]{
		Name: fmt.Sprintf("imhp(%s,%d,%d)", xFile, m1, m2),
		Inputs: []mr.Input[[3]int64, sval]{
			mr.MapInput(xFile, func(e Entry, emit func([3]int64, sval)) {
				emit([3]int64{1, e.Idx[m1], 0}, sval{tag: tagT1, idx: e.Idx, val: e.Val})
				emit([3]int64{2, e.Idx[m2], 0}, sval{tag: tagT2, idx: e.Idx, val: 1})
			}),
			mr.MapInput(bFile, func(cell MatEntry, emit func([3]int64, sval)) {
				emit([3]int64{1, cell.Row, 0}, sval{tag: tagMat, col: cell.Col, val: cell.Val})
			}),
			mr.MapInput(cFile, func(cell MatEntry, emit func([3]int64, sval)) {
				emit([3]int64{2, cell.Row, 0}, sval{tag: tagMat, col: cell.Col, val: cell.Val})
			}),
		},
		Reduce: func(key [3]int64, vals []sval, emit func(taggedH)) {
			side := uint8(key[0])
			// One factor row: O(Q) memory per reducer (vs. O(1) for the
			// per-column DRN jobs — the trade §III-B4 argues is cheap).
			var row []MatEntry
			for _, v := range vals {
				if v.tag == tagMat {
					row = append(row, MatEntry{Col: v.col, Val: v.val})
				}
			}
			for _, v := range vals {
				if v.tag == tagMat {
					continue
				}
				for _, cell := range row {
					if cell.Val == 0 {
						continue
					}
					emit(taggedH{side: side, h: HEntry{Idx: v.idx, Col: cell.Col, Val: v.val * cell.Val}})
				}
			}
		},
		Partition: mr.HashTriple,
		OutSize:   taggedHSize,
	}
	svalAccounting(&job, codec)
	out, _, err := mr.Run(c, job)
	if err != nil {
		return err
	}
	// MultipleOutputs: split the tagged stream into the two intermediate
	// files the merge job consumes. The stream holds nnz·Q + nnz·R
	// entries, so count sides first and size both halves exactly.
	n1 := 0
	for _, o := range out {
		if o.side == 1 {
			n1++
		}
	}
	t1 := mr.Acquire[HEntry](n1)
	t2 := mr.Acquire[HEntry](len(out) - n1)
	for _, o := range out {
		if o.side == 1 {
			t1 = append(t1, o.h)
		} else {
			t2 = append(t2, o.h)
		}
	}
	mr.Recycle(out)
	if err := mr.WriteFileOwned(c, t1File, t1, hEntrySize); err != nil {
		mr.Recycle(t2) // t2 never reaches its write on this path
		return err
	}
	return mr.WriteFileOwned(c, t2File, t2, hEntrySize)
}

// crossMerge is CrossMerge(𝒯′, 𝒯″)₍ₙ₎ (Definition 3), the final step of
// HaTen2-Tucker-DRN/DRI: 𝒴(i,q,r) = Σ_{j,k} 𝒯′(i,j,k,q)·𝒯″(i,j,k,r).
// Both intermediates are shuffled on their mode-n coordinate —
// nnz(𝒳)(Q+R) records, the Table III bound — and each reducer holds one
// tensor slice (nnz(𝒳ᵢ::)(Q+R) memory) and forms all Q·R combinations
// locally.
func crossMerge(c *mr.Cluster, codec Codec, t1Files, t2Files []string, n int) ([]YEntry, error) {
	mapSide := func(tag uint8) func(h HEntry, emit func([3]int64, sval)) {
		return func(h HEntry, emit func([3]int64, sval)) {
			emit([3]int64{h.Idx[n], 0, 0}, sval{tag: tag, idx: h.Idx, col: h.Col, val: h.Val})
		}
	}
	job := mr.Job[[3]int64, sval, YEntry]{
		Name:   fmt.Sprintf("crossmerge(mode=%d)", n),
		Inputs: sideInputs(t1Files, t2Files, mapSide),
		Reduce: func(key [3]int64, vals []sval, emit func(YEntry)) {
			// Match 𝒯′ and 𝒯″ records on their original (i,j,k)
			// coordinate, then cross the q and r columns.
			type cv struct {
				col int32
				val float64
			}
			// Coordinates and (q, r) cells are walked in first-seen order
			// (vals order is fixed by the engine), never in map order, so
			// each cell's floating-point summation order — and the
			// emission order — is identical on every run.
			t1 := make(map[[3]int64][]cv)
			t2 := make(map[[3]int64][]cv)
			var idxOrder [][3]int64
			for _, v := range vals {
				if v.tag == tagT1 {
					if _, ok := t1[v.idx]; !ok {
						idxOrder = append(idxOrder, v.idx)
					}
					t1[v.idx] = append(t1[v.idx], cv{v.col, v.val})
				} else {
					t2[v.idx] = append(t2[v.idx], cv{v.col, v.val})
				}
			}
			acc := make(map[[2]int32]float64)
			var accOrder [][2]int32
			for _, idx := range idxOrder {
				rs, ok := t2[idx]
				if !ok {
					continue
				}
				for _, qv := range t1[idx] {
					for _, rv := range rs {
						qr := [2]int32{qv.col, rv.col}
						if _, seen := acc[qr]; !seen {
							accOrder = append(accOrder, qr)
						}
						acc[qr] += qv.val * rv.val
					}
				}
			}
			for _, qr := range accOrder {
				if v := acc[qr]; v != 0 {
					emit(YEntry{I: key[0], Q: qr[0], R: qr[1], Val: v})
				}
			}
		},
		Partition: mr.HashTriple,
		OutSize:   yEntrySize,
	}
	svalAccounting(&job, codec)
	out, _, err := mr.Run(c, job)
	return out, err
}

// pairwiseMerge is PairwiseMerge(𝒯′, 𝒯″)₍ₙ₎ (Definition 4), the final
// step of HaTen2-PARAFAC-DRN/DRI: 𝒴(i,r) = Σ_{j,k} 𝒯′(i,j,k,r)·𝒯″(i,j,k,r).
// Records are shuffled on (mode-n coordinate, r) — 2·nnz(𝒳)·R records,
// the Table IV bound — and reducers pair the two sides on their original
// coordinate.
func pairwiseMerge(c *mr.Cluster, codec Codec, t1Files, t2Files []string, n int) ([]YEntry, error) {
	mapSide := func(tag uint8) func(h HEntry, emit func([3]int64, sval)) {
		return func(h HEntry, emit func([3]int64, sval)) {
			emit([3]int64{h.Idx[n], int64(h.Col), 0}, sval{tag: tag, idx: h.Idx, val: h.Val})
		}
	}
	job := mr.Job[[3]int64, sval, YEntry]{
		Name:   fmt.Sprintf("pairwisemerge(mode=%d)", n),
		Inputs: sideInputs(t1Files, t2Files, mapSide),
		Reduce: func(key [3]int64, vals []sval, emit func(YEntry)) {
			// One scratch map per in-flight reduce call, recycled via the
			// pool: this reducer runs once per (coordinate, r) key —
			// millions of calls per ALS iteration — and a fresh map per
			// call was the plan's dominant allocation.
			t2 := pairScratchPool.Get().(map[[3]int64]float64)
			defer func() { clear(t2); pairScratchPool.Put(t2) }()
			for _, v := range vals {
				if v.tag == tagT2 {
					t2[v.idx] += v.val
				}
			}
			var sum float64
			for _, v := range vals {
				if v.tag == tagT1 {
					sum += v.val * t2[v.idx]
				}
			}
			if sum == 0 {
				return
			}
			r := int32(key[1])
			emit(YEntry{I: key[0], Q: r, R: r, Val: sum})
		},
		Partition: mr.HashTriple,
		OutSize:   yEntrySize,
	}
	svalAccounting(&job, codec)
	out, _, err := mr.Run(c, job)
	return out, err
}

// sideInputs builds the merge-job input list: every 𝒯′ file mapped with
// the tagT1 mapper and every 𝒯″ file with the tagT2 mapper.
func sideInputs(t1Files, t2Files []string, mapSide func(uint8) func(h HEntry, emit func([3]int64, sval))) []mr.Input[[3]int64, sval] {
	inputs := make([]mr.Input[[3]int64, sval], 0, len(t1Files)+len(t2Files))
	for _, f := range t1Files {
		inputs = append(inputs, mr.MapInput(f, mapSide(tagT1)))
	}
	for _, f := range t2Files {
		inputs = append(inputs, mr.MapInput(f, mapSide(tagT2)))
	}
	return inputs
}
