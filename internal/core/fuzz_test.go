package core

import (
	"bytes"
	"testing"
)

// FuzzCodecRoundTrip checks the binary record codecs on arbitrary
// bytes: whenever a decoder accepts a prefix of the input, re-encoding
// the decoded record must reproduce that prefix byte-for-byte (the
// formats have no redundancy, so decode∘encode is the identity on
// valid prefixes — including NaN payloads and negative indices), and
// the remainder must be exactly the unconsumed suffix. The first fuzz
// argument selects which record type to exercise.
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add(uint8(0), []byte{})
	f.Add(uint8(0), make([]byte, entryBytes))
	f.Add(uint8(1), make([]byte, matEntryBytes+3))
	f.Add(uint8(2), make([]byte, hEntryBytes))
	f.Add(uint8(3), make([]byte, yEntryBytes))
	f.Add(uint8(4), EncodeTensorFile([]Entry{
		{Idx: [3]int64{1, 2, 3}, Val: 4.5},
		{Idx: [3]int64{-1, 0, 9}, Val: -0.0},
	}))
	f.Fuzz(func(t *testing.T, kind uint8, data []byte) {
		check := func(size int, reenc []byte, rest []byte, err error) {
			if err != nil {
				if len(data) >= size {
					t.Fatalf("decoder rejected %d bytes (need %d): %v", len(data), size, err)
				}
				return
			}
			if len(data) < size {
				t.Fatalf("decoder accepted %d bytes, needs %d", len(data), size)
			}
			if !bytes.Equal(reenc, data[:size]) {
				t.Fatalf("re-encode mismatch:\n% x\nvs\n% x", reenc, data[:size])
			}
			if !bytes.Equal(rest, data[size:]) {
				t.Fatal("decoder consumed the wrong suffix")
			}
		}
		switch kind % 5 {
		case 0:
			e, rest, err := DecodeEntry(data)
			var reenc []byte
			if err == nil {
				reenc = EncodeEntry(nil, e)
			}
			check(entryBytes, reenc, rest, err)
		case 1:
			m, rest, err := DecodeMatEntry(data)
			var reenc []byte
			if err == nil {
				reenc = EncodeMatEntry(nil, m)
			}
			check(matEntryBytes, reenc, rest, err)
		case 2:
			h, rest, err := DecodeHEntry(data)
			var reenc []byte
			if err == nil {
				reenc = EncodeHEntry(nil, h)
			}
			check(hEntryBytes, reenc, rest, err)
		case 3:
			y, rest, err := DecodeYEntry(data)
			var reenc []byte
			if err == nil {
				reenc = EncodeYEntry(nil, y)
			}
			check(yEntryBytes, reenc, rest, err)
		case 4:
			entries, err := DecodeTensorFile(data)
			if err != nil {
				if len(data)%entryBytes == 0 {
					t.Fatalf("file decoder rejected aligned input: %v", err)
				}
				return
			}
			if got := EncodeTensorFile(entries); !bytes.Equal(got, data) {
				t.Fatalf("tensor file round trip changed bytes: %d vs %d", len(got), len(data))
			}
		}
	})
}
