package core

import (
	"bytes"
	"testing"
)

// FuzzBlockChecksum pins the tamper-detection contract of the columnar
// block format: flipping any single byte of a sealed block — header,
// count, column data, or the crc32c field itself — must make the
// decoder return an error. A silent wrong decode would let a corrupt
// DFS replica masquerade as data, which is exactly what the storage
// failure model's read-path verification relies on never happening.
// The fuzz inputs choose the codec, the records (expanded
// deterministically from data), the mutated offset, and the xor mask.
func FuzzBlockChecksum(f *testing.F) {
	f.Add(uint8(0), uint16(0), uint8(0xff), []byte{})
	f.Add(uint8(1), uint16(4), uint8(1), []byte("corrupt me"))
	f.Add(uint8(2), uint16(9), uint8(0x80), []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(uint8(3), uint16(2), uint8(7), []byte("replica"))
	f.Add(uint8(4), uint16(31), uint8(0x10), []byte("0123456789abcdef0123456789abcdef"))
	f.Fuzz(func(t *testing.T, kind uint8, pos uint16, delta uint8, data []byte) {
		if delta == 0 {
			delta = 1 // xor 0 is not a mutation
		}
		n := int(kind) % 9
		take := func(i int) int64 {
			if i < len(data) {
				return int64(int8(data[i]))*131 + int64(i)
			}
			return int64(i*7%101) - 50
		}
		var enc []byte
		decode := func([]byte) error { return nil }
		switch kind % 4 {
		case 0:
			es := make([]Entry, n)
			for i := range es {
				es[i] = Entry{Idx: [3]int64{take(3 * i), take(3*i + 1), take(3*i + 2)}, Val: float64(take(4*i)) / 3}
			}
			enc = AppendEntryBlock(nil, es)
			decode = func(b []byte) error { _, _, err := DecodeEntryBlock(b); return err }
		case 1:
			cs := make([]MatEntry, n)
			for i := range cs {
				cs[i] = MatEntry{Row: take(2 * i), Col: int32(take(2*i+1) % 1000), Val: float64(take(i))}
			}
			enc = AppendMatEntryBlock(nil, cs)
			decode = func(b []byte) error { _, _, err := DecodeMatEntryBlock(b); return err }
		case 2:
			keys := make([][3]int64, n)
			vals := make([]sval, n)
			for i := range keys {
				keys[i] = [3]int64{take(6 * i), take(6*i + 1), take(6*i + 2)}
				vals[i] = sval{
					tag: uint8(take(6*i + 3)),
					idx: [3]int64{take(6*i + 4), take(6*i + 5), int64(i)},
					col: int32(i % 7),
					val: float64(take(i)) / 7,
				}
			}
			enc = appendSValBlock(nil, keys, vals)
			decode = func(b []byte) error { _, _, _, err := decodeSValBlock(b); return err }
		case 3:
			keys := make([][2]int64, n)
			vals := make([]nsval, n)
			for i := range keys {
				keys[i] = [2]int64{take(4 * i), take(4*i + 1)}
				vals[i] = nsval{
					isMat: i%2 == 0,
					idx:   [maxOrder]int64{take(4*i + 2), take(4*i + 3), int64(i)},
					col:   int32(i % 5),
					val:   float64(take(i)) / 11,
				}
			}
			enc = appendNSValBlock(nil, keys, vals)
			decode = func(b []byte) error { _, _, _, err := decodeNSValBlock(b); return err }
		}
		if err := decode(enc); err != nil {
			t.Fatalf("pristine block rejected: %v", err)
		}
		i := int(pos) % len(enc) // every block has ≥5 bytes (crc + count)
		enc[i] ^= delta
		if err := decode(enc); err == nil {
			t.Fatalf("single-byte mutation at offset %d (xor %#02x) of a %d-record kind-%d block decoded silently",
				i, delta, n, kind%4)
		}
	})
}

// FuzzCodecRoundTrip checks the binary record codecs on arbitrary
// bytes: whenever a decoder accepts a prefix of the input, re-encoding
// the decoded record must reproduce that prefix byte-for-byte (the
// formats have no redundancy, so decode∘encode is the identity on
// valid prefixes — including NaN payloads and negative indices), and
// the remainder must be exactly the unconsumed suffix. The first fuzz
// argument selects which record type to exercise.
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add(uint8(0), []byte{})
	f.Add(uint8(0), make([]byte, entryBytes))
	f.Add(uint8(1), make([]byte, matEntryBytes+3))
	f.Add(uint8(2), make([]byte, hEntryBytes))
	f.Add(uint8(3), make([]byte, yEntryBytes))
	f.Add(uint8(4), EncodeTensorFile([]Entry{
		{Idx: [3]int64{1, 2, 3}, Val: 4.5},
		{Idx: [3]int64{-1, 0, 9}, Val: -0.0},
	}))
	f.Fuzz(func(t *testing.T, kind uint8, data []byte) {
		check := func(size int, reenc []byte, rest []byte, err error) {
			if err != nil {
				if len(data) >= size {
					t.Fatalf("decoder rejected %d bytes (need %d): %v", len(data), size, err)
				}
				return
			}
			if len(data) < size {
				t.Fatalf("decoder accepted %d bytes, needs %d", len(data), size)
			}
			if !bytes.Equal(reenc, data[:size]) {
				t.Fatalf("re-encode mismatch:\n% x\nvs\n% x", reenc, data[:size])
			}
			if !bytes.Equal(rest, data[size:]) {
				t.Fatal("decoder consumed the wrong suffix")
			}
		}
		switch kind % 5 {
		case 0:
			e, rest, err := DecodeEntry(data)
			var reenc []byte
			if err == nil {
				reenc = EncodeEntry(nil, e)
			}
			check(entryBytes, reenc, rest, err)
		case 1:
			m, rest, err := DecodeMatEntry(data)
			var reenc []byte
			if err == nil {
				reenc = EncodeMatEntry(nil, m)
			}
			check(matEntryBytes, reenc, rest, err)
		case 2:
			h, rest, err := DecodeHEntry(data)
			var reenc []byte
			if err == nil {
				reenc = EncodeHEntry(nil, h)
			}
			check(hEntryBytes, reenc, rest, err)
		case 3:
			y, rest, err := DecodeYEntry(data)
			var reenc []byte
			if err == nil {
				reenc = EncodeYEntry(nil, y)
			}
			check(yEntryBytes, reenc, rest, err)
		case 4:
			entries, err := DecodeTensorFile(data)
			if err != nil {
				if len(data)%entryBytes == 0 {
					t.Fatalf("file decoder rejected aligned input: %v", err)
				}
				return
			}
			if got := EncodeTensorFile(entries); !bytes.Equal(got, data) {
				t.Fatalf("tensor file round trip changed bytes: %d vs %d", len(got), len(data))
			}
		}
	})
}
