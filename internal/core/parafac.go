package core

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/haten2/haten2/internal/matrix"
	"github.com/haten2/haten2/internal/mr"
	"github.com/haten2/haten2/internal/tensor"
)

// Options configures an ALS decomposition run.
type Options struct {
	// Variant selects the job plan; the recommended method is DRI
	// ("just HaTen2"). The zero value is Naive — callers almost always
	// want to set this.
	Variant Variant
	// MaxIters bounds the outer ALS iterations (paper notation T).
	// Zero means 20.
	MaxIters int
	// Tol is the convergence threshold: PARAFAC stops when the fit
	// improves by less than Tol, Tucker when ‖𝒢‖ increases by less than
	// Tol relatively (Algorithm 2 line 10). Zero means 1e-4.
	Tol float64
	// Seed makes the random factor initialization reproducible.
	Seed int64
	// TrackFit records the model fit after every iteration in the
	// result. It costs one pass over the nonzeros per iteration and is
	// required for fit-based early stopping in PARAFAC (without it,
	// PARAFAC stops on component-weight stabilization instead).
	TrackFit bool
	// WarmStart, when non-nil, resumes iteration from a previous
	// PARAFAC model instead of a random initialization — the pattern
	// for continuing a long decomposition in a later session. The
	// model's rank must match.
	WarmStart *tensor.Kruskal
	// Checkpoint, when non-empty, is a DFS base path under which the
	// driver persists its complete iteration state after every outer
	// iteration (atomic commit, older checkpoints pruned), and from
	// which a fresh run resumes if a checkpoint exists. A run killed
	// mid-iteration — e.g. by a FaultPlan's KillAfterJobs — can be
	// restarted on a new cluster sharing the same FS
	// (mr.NewClusterWithFS) and converges to the bit-identical result.
	Checkpoint string
	// Codec selects the shuffle wire format for every job of the run:
	// CodecColumnar (the default, varint-delta column blocks) or
	// CodecFixed (the per-record fallback). It affects byte accounting
	// only — factor outputs are bit-identical under both.
	Codec Codec
	// Backend, when non-nil, selects the execution backend for the run:
	// the driver installs it on the cluster before staging the input (so
	// the tensor itself ships through the backend's data plane) and
	// restores the cluster's previous backend on return. Backends — e.g.
	// the multi-process socket engine of internal/mrproc — may change
	// wall-clock time and transport statistics, never output bytes.
	Backend mr.Backend
}

// installBackend installs opt.Backend on c for the duration of a run.
// It returns the restore function drivers defer; a nil Backend makes
// both directions no-ops.
func installBackend(c *mr.Cluster, opt Options) func() {
	if opt.Backend == nil {
		return func() {}
	}
	prev := c.Backend()
	c.SetBackend(opt.Backend)
	return func() { c.SetBackend(prev) }
}

func (o Options) withDefaults() Options {
	if o.MaxIters <= 0 {
		o.MaxIters = 20
	}
	if o.Tol <= 0 {
		o.Tol = 1e-4
	}
	return o
}

// ParafacResult is the outcome of a PARAFAC-ALS run.
type ParafacResult struct {
	// Model holds λ and the unit-column factor matrices.
	Model *tensor.Kruskal
	// Iters is the number of completed outer iterations.
	Iters int
	// Fits holds the fit after each iteration when Options.TrackFit is
	// set (fit = 1 − ‖𝒳−𝒳̂‖_F/‖𝒳‖_F).
	Fits []float64
	// Converged reports whether the Tol criterion stopped the run
	// before MaxIters.
	Converged bool
}

// ParafacALS runs the 3-way PARAFAC-ALS of Algorithm 1 with the
// bottleneck 𝒳₍ₙ₎(C⊙B) computed on the cluster by the selected HaTen2
// plan. The input tensor is staged to the cluster's DFS once; factor
// matrices live in driver memory (they are I×R with small R) and are
// staged per job, exactly as the Hadoop implementation keeps them on
// HDFS between jobs.
func ParafacALS(c *mr.Cluster, x *tensor.Tensor, rank int, opt Options) (*ParafacResult, error) {
	if rank <= 0 {
		return nil, fmt.Errorf("core: rank must be positive, got %d", rank)
	}
	opt = opt.withDefaults()
	defer installBackend(c, opt)()
	s, err := Stage(c, tmpName(c, "parafac", "X"), x)
	if err != nil {
		return nil, err
	}
	defer s.cleanup([]string{s.Name})
	return parafacALSStaged(s, x, rank, opt)
}

// parafacALSStaged runs ALS against an already-staged tensor. x is the
// in-memory copy used only for fit evaluation.
func parafacALSStaged(s *Staged, x *tensor.Tensor, rank int, opt Options) (*ParafacResult, error) {
	s.SetCodec(opt.Codec)
	tr := s.cluster.Tracer()
	defer tr.End(tr.Begin("run", "parafac-als/"+opt.Variant.String()))
	rng := rand.New(rand.NewSource(opt.Seed))
	factors := make([]*matrix.Matrix, 3)
	lambda := make([]float64, rank)
	if ws := opt.WarmStart; ws != nil {
		if ws.Rank() != rank || len(ws.Factors) != 3 {
			return nil, fmt.Errorf("core: warm start has rank %d / %d factors, want rank %d / 3", ws.Rank(), len(ws.Factors), rank)
		}
		for m := 0; m < 3; m++ {
			if int64(ws.Factors[m].Rows) != s.Dims[m] {
				return nil, fmt.Errorf("core: warm-start factor %d has %d rows, tensor mode has %d", m, ws.Factors[m].Rows, s.Dims[m])
			}
			factors[m] = ws.Factors[m].Clone()
		}
		copy(lambda, ws.Lambda)
		// Fold λ into the first factor so the sweep's renormalization
		// starts from the same model.
		factors[0].ScaleColumns(lambda)
	} else {
		for m := 0; m < 3; m++ {
			factors[m] = matrix.Random(int(s.Dims[m]), rank, rng)
		}
		for r := range lambda {
			lambda[r] = 1
		}
	}
	res := &ParafacResult{}
	prevFit := math.Inf(-1)
	prevLambda := make([]float64, rank)
	startIter := 0
	if opt.Checkpoint != "" {
		ck, ckIter, err := loadParafacCheckpoint(s.cluster, opt.Checkpoint)
		if err != nil {
			return nil, err
		}
		if ck != nil {
			if len(ck.factors) != 3 || ck.factors[0].Cols != rank {
				return nil, fmt.Errorf("core: checkpoint %q has rank %d, want %d",
					opt.Checkpoint, ck.factors[0].Cols, rank)
			}
			for m := range factors {
				factors[m] = ck.factors[m].Clone()
			}
			copy(lambda, ck.lambda)
			copy(prevLambda, ck.prevLambda)
			prevFit = ck.prevFit
			res.Fits = append([]float64(nil), ck.fits...)
			res.Iters = ckIter
			startIter = ckIter
			if ck.converged {
				res.Converged = true
				res.Model = &tensor.Kruskal{Lambda: lambda, Factors: factors}
				return res, nil
			}
		}
	}
	for it := startIter; it < opt.MaxIters; it++ {
		iterSpan := tr.Begin("iter", fmt.Sprintf("iter%02d", it))
		copy(prevLambda, lambda)
		// Randomness inside the sweep (dead-component reinit) is keyed
		// to (Seed, it) so a checkpoint-resumed run draws identically.
		sweepRNG := rand.New(rand.NewSource(iterSeed(opt.Seed, it)))
		if err := parafacSweep(s, factors, lambda, sweepRNG, opt.Variant); err != nil {
			return nil, err
		}
		res.Iters = it + 1
		converged := false
		if !opt.TrackFit && it > 0 {
			// Cheap convergence criterion when fit tracking is off:
			// stop when the component weights stabilize.
			maxRel := 0.0
			for r := range lambda {
				rel := math.Abs(lambda[r]-prevLambda[r]) / math.Max(1, math.Abs(lambda[r]))
				if rel > maxRel {
					maxRel = rel
				}
			}
			if maxRel < opt.Tol {
				converged = true
			}
		}
		if opt.TrackFit {
			model := &tensor.Kruskal{Lambda: append([]float64(nil), lambda...), Factors: factors}
			fit := model.Fit(x)
			res.Fits = append(res.Fits, fit)
			if fit-prevFit >= 0 && fit-prevFit < opt.Tol {
				converged = true
			} else {
				prevFit = fit
			}
		}
		if opt.Checkpoint != "" {
			if err := saveParafacCheckpoint(s.cluster, opt.Checkpoint, it+1,
				factors, lambda, prevLambda, prevFit, res.Fits, converged); err != nil {
				return nil, err
			}
		}
		tr.End(iterSpan)
		if converged {
			res.Converged = true
			break
		}
	}
	res.Model = &tensor.Kruskal{Lambda: lambda, Factors: factors}
	return res, nil
}

// parafacSweep performs one outer ALS iteration (all three mode
// updates, Algorithm 1 lines 3–8) in place on factors and lambda.
func parafacSweep(s *Staged, factors []*matrix.Matrix, lambda []float64, rng *rand.Rand, variant Variant) error {
	tr := s.cluster.Tracer()
	for n := 0; n < 3; n++ {
		modeSpan := tr.Begin("mode", fmt.Sprintf("mode%d", n))
		m1, m2 := otherModes(n)
		// 𝒴 ← 𝒳₍ₙ₎ (A⁽ᵐ²⁾ ⊙ A⁽ᵐ¹⁾) on the cluster.
		y, err := ParafacContract(s, n, factors[m1], factors[m2], variant)
		if err != nil {
			return err
		}
		// A⁽ⁿ⁾ ← 𝒴 (A⁽ᵐ²⁾ᵀA⁽ᵐ²⁾ ∗ A⁽ᵐ¹⁾ᵀA⁽ᵐ¹⁾)† locally: the Gram
		// matrices are R×R.
		gram := matrix.Hadamard(matrix.Gram(factors[m1]), matrix.Gram(factors[m2]))
		a := matrix.Mul(y, matrix.PseudoInverse(gram))
		norms := a.NormalizeColumns()
		for r, nv := range norms {
			if nv == 0 {
				// A dead component: reinitialize its column so ALS can
				// recover rather than propagate zeros.
				for i := 0; i < a.Rows; i++ {
					a.Set(i, r, rng.Float64())
				}
				a.NormalizeColumns()
				nv = 1
			}
			lambda[r] = nv
		}
		factors[n] = a
		tr.End(modeSpan)
	}
	return nil
}
