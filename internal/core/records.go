// Package core implements HaTen2, the paper's contribution: distributed
// MapReduce plans for the bottleneck operations of Tucker and PARAFAC
// decomposition — the n-mode matrix product chain 𝒳 ×₂Bᵀ ×₃Cᵀ and the
// matricized-tensor Khatri-Rao product 𝒳₍₁₎(C⊙B) — in four variants of
// increasing refinement (Table II of the paper):
//
//	Naive  one broadcast-style job per n-mode vector product (Alg. 3, 4)
//	DNN    decoupled Hadamard-and-Merge steps (Alg. 5, 6)
//	DRN    dependency removal via CrossMerge / PairwiseMerge (Alg. 7, 8)
//	DRI    job integration via IMHP: exactly two jobs (Alg. 9, 10)
//
// On top of the plans, ParafacALS (Algorithm 1) and TuckerALS
// (Algorithm 2) run full alternating-least-squares decompositions on a
// simulated cluster, and the package also provides the paper's stated
// future-work extensions (nonnegative and masked PARAFAC).
package core

import (
	"fmt"

	"github.com/haten2/haten2/internal/matrix"
	"github.com/haten2/haten2/internal/mr"
	"github.com/haten2/haten2/internal/tensor"
)

// Entry is one nonzero of a 3-way tensor as staged on the DFS:
// ⟨i, j, k, 𝒳(i,j,k)⟩ in the paper's notation.
type Entry struct {
	Idx [3]int64
	Val float64
}

// MatEntry is one cell of a factor matrix: ⟨row, col, value⟩.
type MatEntry struct {
	Row int64
	Col int32
	Val float64
}

// HEntry is one nonzero of a Hadamard-product intermediate (𝒯′ or 𝒯″):
// the original tensor coordinate plus the appended factor-column index
// (Definition 5: the result of ∗ₙ has one extra mode).
type HEntry struct {
	Idx [3]int64
	Col int32
	Val float64
}

// YEntry is one entry of a contracted result: for Tucker, 𝒴(i, q, r);
// for PARAFAC, 𝒴(i, r) with Q == R.
type YEntry struct {
	I    int64
	Q, R int32
	Val  float64
}

// On-disk record sizes in bytes, used for all DFS and shuffle accounting.
// They correspond to the plain binary encodings of the structs above.
const (
	entryBytes    = 32 // 3×int64 + float64
	matEntryBytes = 20 // int64 + int32 + float64
	hEntryBytes   = 36 // 3×int64 + int32 + float64
	yEntryBytes   = 24 // int64 + 2×int32 + float64
)

// Package-level size functions for the record types above. Every job a
// plan runs passes these as its KVSize/OutSize callbacks; hoisting them
// here (instead of building a fresh closure at each call site) keeps
// the per-record accounting calls allocation-free and lets all jobs of
// an ALS run share the same function values.
func entrySize(Entry) int64       { return entryBytes }
func matEntrySize(MatEntry) int64 { return matEntryBytes }
func hEntrySize(HEntry) int64     { return hEntryBytes }
func yEntrySize(YEntry) int64     { return yEntryBytes }

// sval is the single shuffle value type every HaTen2 job uses, tagged by
// which input the record came from.
type sval struct {
	tag uint8 // tagTensor, tagMat, tagT1, tagT2
	idx [3]int64
	col int32
	val float64
}

const (
	tagTensor = uint8(iota)
	tagMat
	tagT1
	tagT2
)

// Staged is an input tensor written to a cluster's DFS together with the
// metadata the job planners need (shape, nnz, and — for the Naive
// variant's broadcast emulation — the distinct fiber keys per mode).
type Staged struct {
	Name string
	Dims [3]int64
	NNZ  int64

	cluster *mr.Cluster
	// fibers[m] caches the distinct coordinate pairs of modes ≠ m, i.e.
	// the reducer keys of the Naive plan's broadcast for mode m.
	fibers [3][][2]int64
	// codec selects the shuffle wire format of the jobs run against this
	// tensor (CodecColumnar unless overridden via SetCodec).
	codec Codec
}

// SetCodec selects the shuffle codec for subsequent jobs run against
// this staged tensor. The codec only changes shuffle byte accounting
// (and hence trace/exhaustion behavior), never results: plans, routing
// and reduce orders are codec-independent.
func (s *Staged) SetCodec(c Codec) { s.codec = c }

// Stage writes a coalesced 3-way tensor to the cluster DFS under name
// and returns its handle. Decomposition drivers and benchmarks stage the
// tensor once and run many jobs against it.
func Stage(c *mr.Cluster, name string, x *tensor.Tensor) (*Staged, error) {
	if x.Order() != 3 {
		return nil, fmt.Errorf("core: Stage requires a 3-way tensor, got order %d", x.Order())
	}
	x.Coalesce()
	entries := make([]Entry, x.NNZ())
	for p := range entries {
		idx := x.Index(p)
		entries[p] = Entry{Idx: [3]int64{idx[0], idx[1], idx[2]}, Val: x.Value(p)}
	}
	if err := mr.WriteFile(c, name, entries, entrySize); err != nil {
		return nil, err
	}
	d := x.Dims()
	return &Staged{
		Name:    name,
		Dims:    [3]int64{d[0], d[1], d[2]},
		NNZ:     int64(x.NNZ()),
		cluster: c,
	}, nil
}

// Cluster returns the cluster the tensor is staged on.
func (s *Staged) Cluster() *mr.Cluster { return s.cluster }

// otherModes returns the two modes ≠ n in ascending order.
func otherModes(n int) (int, int) {
	switch n {
	case 0:
		return 1, 2
	case 1:
		return 0, 2
	case 2:
		return 0, 1
	}
	panic(fmt.Sprintf("core: invalid mode %d for 3-way tensor", n))
}

// fiberKeys returns the distinct (a, b) coordinate pairs over the modes
// other than m present in the staged tensor, reading the staged file
// once. The Naive plan broadcasts the factor vector to these keys.
func (s *Staged) fiberKeys(m int) ([][2]int64, error) {
	if s.fibers[m] != nil {
		return s.fibers[m], nil
	}
	entries, err := mr.ReadFile[Entry](s.cluster, s.Name)
	if err != nil {
		return nil, err
	}
	m1, m2 := otherModes(m)
	seen := make(map[[2]int64]struct{})
	var keys [][2]int64
	for _, e := range entries {
		k := [2]int64{e.Idx[m1], e.Idx[m2]}
		if _, ok := seen[k]; !ok {
			seen[k] = struct{}{}
			keys = append(keys, k)
		}
	}
	s.fibers[m] = keys
	return keys, nil
}

// stageMatrix writes a factor matrix to the DFS as per-cell records,
// replacing any previous file of the same name (the per-iteration factor
// update pattern).
func stageMatrix(c *mr.Cluster, name string, m *matrix.Matrix) error {
	cells := make([]MatEntry, 0, m.Rows*m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			cells = append(cells, MatEntry{Row: int64(i), Col: int32(j), Val: v})
		}
	}
	return mr.WriteFile(c, name, cells, matEntrySize)
}

// stageColumn writes one column of a factor matrix (the per-column jobs
// of the Naive, DNN and DRN variants read single columns).
func stageColumn(c *mr.Cluster, name string, m *matrix.Matrix, col int) error {
	cells := make([]MatEntry, 0, m.Rows)
	for i := 0; i < m.Rows; i++ {
		cells = append(cells, MatEntry{Row: int64(i), Col: int32(col), Val: m.At(i, col)})
	}
	return mr.WriteFile(c, name, cells, matEntrySize)
}
