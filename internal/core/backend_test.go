package core

import (
	"math"
	"testing"

	"github.com/haten2/haten2/internal/gen"
	"github.com/haten2/haten2/internal/mr"
)

// TestOptionsBackendSelection pins the Options.Backend seam: a run with
// a backend installed produces bit-identical factors to the in-process
// run, and the driver restores the cluster's previous backend when it
// returns.
func TestOptionsBackendSelection(t *testing.T) {
	x := gen.Random(9, [3]int64{8, 7, 6}, 80)
	opt := Options{Variant: DRI, MaxIters: 2, Tol: 1e-12, Seed: 3}
	base, err := ParafacALS(mr.NewCluster(mr.Config{Machines: 2, SlotsPerMachine: 2}), x, 2, opt)
	if err != nil {
		t.Fatal(err)
	}
	c := mr.NewCluster(mr.Config{Machines: 2, SlotsPerMachine: 2})
	opt.Backend = mr.NewLoopback()
	got, err := ParafacALS(c, x, 2, opt)
	if err != nil {
		t.Fatal(err)
	}
	if c.Backend() != nil {
		t.Fatal("driver did not restore the cluster's previous backend")
	}
	if len(base.Model.Lambda) != len(got.Model.Lambda) {
		t.Fatalf("rank mismatch: %d vs %d", len(base.Model.Lambda), len(got.Model.Lambda))
	}
	for r := range base.Model.Lambda {
		if math.Float64bits(base.Model.Lambda[r]) != math.Float64bits(got.Model.Lambda[r]) {
			t.Fatalf("lambda[%d] differs: %v vs %v", r, base.Model.Lambda[r], got.Model.Lambda[r])
		}
	}
	for m := range base.Model.Factors {
		a, b := base.Model.Factors[m], got.Model.Factors[m]
		for i := range a.Data {
			if math.Float64bits(a.Data[i]) != math.Float64bits(b.Data[i]) {
				t.Fatalf("factor %d entry %d differs under backend", m, i)
			}
		}
	}
}
