package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/haten2/haten2/internal/matrix"
	"github.com/haten2/haten2/internal/mr"
	"github.com/haten2/haten2/internal/tensor"
)

// bitsEqual compares two matrices byte-for-byte (float64 bit patterns,
// not a tolerance): the acceptance bar for checkpoint recovery.
func bitsEqual(a, b *matrix.Matrix) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if math.Float64bits(a.Data[i]) != math.Float64bits(b.Data[i]) {
			return false
		}
	}
	return true
}

func assertKruskalBitsEqual(t *testing.T, want, got *tensor.Kruskal) {
	t.Helper()
	if len(want.Lambda) != len(got.Lambda) {
		t.Fatalf("rank differs: %d vs %d", len(want.Lambda), len(got.Lambda))
	}
	for r := range want.Lambda {
		if math.Float64bits(want.Lambda[r]) != math.Float64bits(got.Lambda[r]) {
			t.Fatalf("lambda[%d] differs bitwise: %v vs %v", r, want.Lambda[r], got.Lambda[r])
		}
	}
	for m := range want.Factors {
		if !bitsEqual(want.Factors[m], got.Factors[m]) {
			t.Fatalf("factor %d differs bitwise", m)
		}
	}
}

// TestParafacCheckpointResumeBitIdentical is the issue's acceptance
// scenario end to end: a PARAFAC run under a non-trivial fault plan
// (task failures, stragglers, and a cluster kill mid-run) is resumed
// from its checkpoints on a fresh cluster sharing the surviving DFS,
// and the final model is byte-for-byte identical to an uninterrupted
// fault-free run.
func TestParafacCheckpointResumeBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	x := randomSparse(rng, [3]int64{12, 10, 8}, 80)
	opt := Options{Variant: DRI, MaxIters: 6, Tol: 1e-12, Seed: 17, TrackFit: true}

	// Reference: fault-free, no checkpointing.
	ref, err := ParafacALS(testCluster(), x, 3, opt)
	if err != nil {
		t.Fatal(err)
	}

	// Checkpointing alone must not perturb the result.
	opt.Checkpoint = "models/parafac"
	ckOnly, err := ParafacALS(testCluster(), x, 3, opt)
	if err != nil {
		t.Fatal(err)
	}
	assertKruskalBitsEqual(t, ref.Model, ckOnly.Model)

	// Faulty run: retries and stragglers throughout, and the cluster is
	// killed after enough jobs for roughly half the iterations (DRI runs
	// a handful of jobs per sweep).
	c1 := testCluster()
	c1.InstallFaultPlan(&mr.FaultPlan{
		Seed:          4,
		FailureRate:   0.2,
		StragglerRate: 0.1,
		MaxAttempts:   32,
		KillAfterJobs: 20,
	})
	_, err = ParafacALS(c1, x, 3, opt)
	var ck *mr.ErrClusterKilled
	if !errors.As(err, &ck) {
		t.Fatalf("want ErrClusterKilled mid-run, got %v", err)
	}
	// At least one checkpoint must have been committed before the kill.
	if _, it, err := loadParafacCheckpoint(c1, opt.Checkpoint); err != nil || it == 0 {
		t.Fatalf("no checkpoint survived the kill: it=%d err=%v", it, err)
	}

	// Restart: new cluster (fresh JobTracker), same DFS, still-faulty but
	// unkilled plan. The driver resumes from the checkpoint.
	c2 := mr.NewClusterWithFS(mr.Config{Machines: 4, SlotsPerMachine: 2}, c1.FS())
	c2.InstallFaultPlan(&mr.FaultPlan{
		Seed:          5,
		FailureRate:   0.2,
		StragglerRate: 0.1,
		MaxAttempts:   32,
	})
	resumed, err := ParafacALS(c2, x, 3, opt)
	if err != nil {
		t.Fatal(err)
	}
	assertKruskalBitsEqual(t, ref.Model, resumed.Model)
	if resumed.Iters != ref.Iters {
		t.Fatalf("resumed run iterated %d times, reference %d", resumed.Iters, ref.Iters)
	}
	if len(resumed.Fits) != len(ref.Fits) {
		t.Fatalf("fit history length differs: %d vs %d", len(resumed.Fits), len(ref.Fits))
	}
	for i := range ref.Fits {
		if math.Float64bits(resumed.Fits[i]) != math.Float64bits(ref.Fits[i]) {
			t.Fatalf("fit[%d] differs bitwise: %v vs %v", i, resumed.Fits[i], ref.Fits[i])
		}
	}
	// The faulty clusters actually injected something.
	if c1.Totals().TaskRetries == 0 && c2.Totals().TaskRetries == 0 {
		t.Fatal("fault plans injected no retries; scenario is vacuous")
	}
}

// TestTuckerCheckpointResumeBitIdentical covers the same scenario for
// the Tucker driver: kill mid-run, resume on the surviving DFS, compare
// factors and core bitwise.
func TestTuckerCheckpointResumeBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := randomSparse(rng, [3]int64{10, 9, 8}, 70)
	core := [3]int{3, 2, 2}
	opt := Options{Variant: DRI, MaxIters: 5, Tol: 1e-12, Seed: 23}

	ref, err := TuckerALS(testCluster(), x, core, opt)
	if err != nil {
		t.Fatal(err)
	}

	opt.Checkpoint = "models/tucker"
	c1 := testCluster()
	c1.InstallFaultPlan(&mr.FaultPlan{Seed: 9, FailureRate: 0.15, MaxAttempts: 32, KillAfterJobs: 12})
	_, err = TuckerALS(c1, x, core, opt)
	var ck *mr.ErrClusterKilled
	if !errors.As(err, &ck) {
		t.Fatalf("want ErrClusterKilled mid-run, got %v", err)
	}

	c2 := mr.NewClusterWithFS(mr.Config{Machines: 4, SlotsPerMachine: 2}, c1.FS())
	resumed, err := TuckerALS(c2, x, core, opt)
	if err != nil {
		t.Fatal(err)
	}
	for m := range ref.Model.Factors {
		if !bitsEqual(ref.Model.Factors[m], resumed.Model.Factors[m]) {
			t.Fatalf("Tucker factor %d differs bitwise after resume", m)
		}
	}
	for i := range ref.Model.Core.Data {
		if math.Float64bits(ref.Model.Core.Data[i]) != math.Float64bits(resumed.Model.Core.Data[i]) {
			t.Fatalf("Tucker core entry %d differs bitwise after resume", i)
		}
	}
	if resumed.Iters != ref.Iters || len(resumed.CoreNorms) != len(ref.CoreNorms) {
		t.Fatalf("iteration history differs: %d/%d vs %d/%d",
			resumed.Iters, len(resumed.CoreNorms), ref.Iters, len(ref.CoreNorms))
	}
}

// TestCheckpointPruneAndMismatch covers the maintenance paths: only the
// newest checkpoint is retained, a converged checkpoint short-circuits,
// and shape/type mismatches are reported rather than resumed.
func TestCheckpointPruneAndMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := randomSparse(rng, [3]int64{8, 7, 6}, 40)
	c := testCluster()
	opt := Options{Variant: DRI, MaxIters: 4, Tol: 1e-12, Seed: 1, Checkpoint: "ck/p"}
	res, err := ParafacALS(c, x, 2, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Exactly one checkpoint file remains, at the final iteration.
	var ckpts []string
	for _, n := range c.FS().List() {
		if _, ok := ckptIter("ck/p", n); ok {
			ckpts = append(ckpts, n)
		}
	}
	if len(ckpts) != 1 || ckpts[0] != ckptName("ck/p", res.Iters) {
		t.Fatalf("prune left %v, want just iteration %d", ckpts, res.Iters)
	}

	// Re-running with the finished checkpoint resumes instantly: no new
	// cluster jobs beyond staging.
	before := c.Totals().Jobs
	again, err := ParafacALS(c, x, 2, opt)
	if err != nil {
		t.Fatal(err)
	}
	assertKruskalBitsEqual(t, res.Model, again.Model)
	if c.Totals().Jobs != before {
		t.Fatalf("finished checkpoint still ran %d jobs", c.Totals().Jobs-before)
	}

	// Rank mismatch is an error, not a silent restart.
	if _, err := ParafacALS(c, x, 3, opt); err == nil {
		t.Fatal("rank-mismatched checkpoint resumed silently")
	}
	// Driver-type mismatch too.
	if _, err := TuckerALS(c, x, [3]int{2, 2, 2}, opt); err == nil {
		t.Fatal("Tucker resumed from a PARAFAC checkpoint")
	}
}
