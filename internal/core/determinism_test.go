package core

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"github.com/haten2/haten2/internal/mr"
	"github.com/haten2/haten2/internal/tensor"
)

// TestParafacDRIDeterministicAcrossProcs is the engine's acceptance
// property: full PARAFAC-DRI iterations must produce bit-identical
// model outputs and exact, identical job counters across repeated runs
// and across GOMAXPROCS settings. Reduce input order is fixed by (task,
// emission) order, so floating-point summation order — and therefore
// every factor value — cannot depend on scheduling.
func TestParafacDRIDeterministicAcrossProcs(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	x := randomSparse(rng, [3]int64{40, 30, 20}, 4000)
	type outcome struct {
		model *tensor.Kruskal
		jobs  []mr.JobStats
	}
	run := func(procs int) outcome {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
		c := testCluster()
		res, err := ParafacALS(c, x, 5, Options{Variant: DRI, MaxIters: 2, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		jobs := c.Jobs()
		// The staged tensor gets a fresh temp name each run, which is
		// embedded in job names; blank them so the comparison covers
		// exactly the counters (including SimSeconds, a pure function
		// of the counters).
		for i := range jobs {
			jobs[i].Name = ""
		}
		return outcome{model: res.Model, jobs: jobs}
	}
	base := run(1)
	if len(base.jobs) == 0 {
		t.Fatal("no jobs recorded")
	}
	for _, procs := range []int{1, 2, 4, 8} {
		for rep := 0; rep < 2; rep++ {
			got := run(procs)
			if !reflect.DeepEqual(base.model, got.model) {
				t.Fatalf("GOMAXPROCS=%d rep %d: model differs from baseline", procs, rep)
			}
			if !reflect.DeepEqual(base.jobs, got.jobs) {
				t.Fatalf("GOMAXPROCS=%d rep %d: job counters differ:\nbase %+v\ngot  %+v",
					procs, rep, base.jobs, got.jobs)
			}
		}
	}
}

// TestTuckerDRIDeterministicAcrossProcs covers the CrossMerge side of
// the engine with the same property. CrossMerge reducers accumulate per
// (q, r) cell through maps but walk coordinates and cells in first-seen
// order rather than map order, so Tucker is bit-deterministic too.
func TestTuckerDRIDeterministicAcrossProcs(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	x := randomSparse(rng, [3]int64{18, 14, 10}, 600)
	run := func(procs int) *TuckerResult {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
		c := testCluster()
		res, err := TuckerALS(c, x, [3]int{3, 3, 3}, Options{Variant: DRI, MaxIters: 2, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(1)
	for _, procs := range []int{2, 4} {
		got := run(procs)
		if !reflect.DeepEqual(base.Model, got.Model) {
			t.Fatalf("GOMAXPROCS=%d: Tucker model differs from baseline", procs)
		}
		if !reflect.DeepEqual(base.CoreNorms, got.CoreNorms) {
			t.Fatalf("GOMAXPROCS=%d: core norms differ: %v vs %v", procs, base.CoreNorms, got.CoreNorms)
		}
	}
}
