package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestEncodedSizesMatchAccountingConstants pins the cost model to the
// concrete format: if a record struct grows, the accounting constant
// must be updated with it.
func TestEncodedSizesMatchAccountingConstants(t *testing.T) {
	if got := len(EncodeEntry(nil, Entry{})); got != entryBytes {
		t.Fatalf("Entry encodes to %d bytes, accounting says %d", got, entryBytes)
	}
	if got := len(EncodeMatEntry(nil, MatEntry{})); got != matEntryBytes {
		t.Fatalf("MatEntry encodes to %d bytes, accounting says %d", got, matEntryBytes)
	}
	if got := len(EncodeHEntry(nil, HEntry{})); got != hEntryBytes {
		t.Fatalf("HEntry encodes to %d bytes, accounting says %d", got, hEntryBytes)
	}
	if got := len(EncodeYEntry(nil, YEntry{})); got != yEntryBytes {
		t.Fatalf("YEntry encodes to %d bytes, accounting says %d", got, yEntryBytes)
	}
}

func TestQuickCodecRoundTrips(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(301))}
	f := func(i, j, k int64, col int32, val float64) bool {
		e := Entry{Idx: [3]int64{i, j, k}, Val: val}
		e2, rest, err := DecodeEntry(EncodeEntry(nil, e))
		if err != nil || len(rest) != 0 || e2 != e {
			if !(math.IsNaN(val) && math.IsNaN(e2.Val)) {
				return false
			}
		}
		m := MatEntry{Row: i, Col: col, Val: val}
		m2, _, err := DecodeMatEntry(EncodeMatEntry(nil, m))
		if err != nil || (m2 != m && !math.IsNaN(val)) {
			return false
		}
		h := HEntry{Idx: [3]int64{i, j, k}, Col: col, Val: val}
		h2, _, err := DecodeHEntry(EncodeHEntry(nil, h))
		if err != nil || (h2 != h && !math.IsNaN(val)) {
			return false
		}
		y := YEntry{I: i, Q: col, R: col + 1, Val: val}
		y2, _, err := DecodeYEntry(EncodeYEntry(nil, y))
		if err != nil || (y2 != y && !math.IsNaN(val)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeShortBuffers(t *testing.T) {
	if _, _, err := DecodeEntry(make([]byte, entryBytes-1)); err == nil {
		t.Fatal("short Entry accepted")
	}
	if _, _, err := DecodeMatEntry(make([]byte, matEntryBytes-1)); err == nil {
		t.Fatal("short MatEntry accepted")
	}
	if _, _, err := DecodeHEntry(make([]byte, hEntryBytes-1)); err == nil {
		t.Fatal("short HEntry accepted")
	}
	if _, _, err := DecodeYEntry(make([]byte, yEntryBytes-1)); err == nil {
		t.Fatal("short YEntry accepted")
	}
}

func TestTensorFileRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(302))
	entries := make([]Entry, 50)
	for i := range entries {
		entries[i] = Entry{
			Idx: [3]int64{rng.Int63(), rng.Int63(), rng.Int63()},
			Val: rng.NormFloat64(),
		}
	}
	buf := EncodeTensorFile(entries)
	if len(buf) != 50*entryBytes {
		t.Fatalf("file length %d", len(buf))
	}
	back, err := DecodeTensorFile(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(entries) {
		t.Fatalf("%d entries back", len(back))
	}
	for i := range entries {
		if back[i] != entries[i] {
			t.Fatalf("entry %d differs", i)
		}
	}
	// Truncated file rejected.
	if _, err := DecodeTensorFile(buf[:len(buf)-3]); err == nil {
		t.Fatal("truncated file accepted")
	}
}
