package core

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/haten2/haten2/internal/matrix"
	"github.com/haten2/haten2/internal/mr"
	"github.com/haten2/haten2/internal/tensor"
)

// Iteration checkpointing for the ALS drivers.
//
// When Options.Checkpoint names a DFS base path, the driver persists the
// complete iteration state (factor matrices plus the driver loop's
// convergence variables) after every outer iteration, and a fresh run
// with the same options resumes from the newest checkpoint it finds —
// the Hadoop pattern of an iterative driver surviving a JobTracker
// crash because its per-iteration outputs live on HDFS.
//
// Commit protocol: iteration t's state is written to "<base>.ckpt<t>"
// through the DFS's atomic Create→Close (a checkpoint is invisible
// until fully written, so a crash mid-write exposes nothing), and older
// checkpoints are pruned only after the new one is published. At any
// instant the DFS therefore holds at least one complete checkpoint once
// the first iteration finishes; recovery loads the one with the highest
// iteration number. Resume is bit-identical: the restored state is a
// deep copy of exactly what the original loop held at the iteration
// boundary, and all per-iteration randomness is derived from
// (Options.Seed, iteration), never from a stream whose position depends
// on how many iterations this process ran.

// parafacCkpt is the loop state of parafacALSStaged at the end of an
// iteration. Stored as a single DFS record (the simulator keeps record
// payloads in memory; the record's Size carries the real byte cost).
type parafacCkpt struct {
	factors    []*matrix.Matrix
	lambda     []float64
	prevLambda []float64
	prevFit    float64
	fits       []float64
	converged  bool
}

// tuckerCkpt is the corresponding state of tuckerALSStaged.
type tuckerCkpt struct {
	factors   []*matrix.Matrix
	core      *tensor.Dense
	coreNorms []float64
	fits      []float64
	prevNorm  float64
	converged bool
}

// ckptName returns the DFS name of iteration it's checkpoint. The fixed
// width keeps List's lexical order equal to iteration order.
func ckptName(base string, it int) string {
	return fmt.Sprintf("%s.ckpt%06d", base, it)
}

// ckptIter parses a checkpoint file name, reporting whether name is a
// checkpoint of base.
func ckptIter(base, name string) (int, bool) {
	rest, ok := strings.CutPrefix(name, base+".ckpt")
	if !ok {
		return 0, false
	}
	it, err := strconv.Atoi(rest)
	if err != nil || it < 0 {
		return 0, false
	}
	return it, true
}

// cloneMatrices deep-copies a factor list.
func cloneMatrices(ms []*matrix.Matrix) []*matrix.Matrix {
	out := make([]*matrix.Matrix, len(ms))
	for i, m := range ms {
		out[i] = m.Clone()
	}
	return out
}

// cloneDense deep-copies a dense core tensor.
func cloneDense(d *tensor.Dense) *tensor.Dense {
	out := tensor.NewDense(d.Dims()...)
	copy(out.Data, d.Data)
	return out
}

// matricesBytes is the serialized size charged for a factor list.
func matricesBytes(ms []*matrix.Matrix) int64 {
	var b int64
	for _, m := range ms {
		b += int64(m.Rows) * int64(m.Cols) * 8
	}
	return b
}

// writeCheckpoint atomically publishes iteration it's state under base
// and prunes older checkpoints. A leftover same-name checkpoint from an
// earlier process is replaced (re-running an iteration reproduces the
// identical state, so the replacement is a no-op in content).
func writeCheckpoint(c *mr.Cluster, base string, it int, state any, bytes int64) error {
	fs := c.FS()
	name := ckptName(base, it)
	if fs.Exists(name) {
		if err := fs.Delete(name); err != nil {
			return fmt.Errorf("core: checkpoint %q: %w", name, err)
		}
	}
	w, err := fs.Create(name)
	if err != nil {
		return fmt.Errorf("core: checkpoint %q: %w", name, err)
	}
	w.Append(state, bytes)
	w.Close()
	// The new checkpoint is published; older ones are now redundant.
	for _, n := range fs.List() {
		if old, ok := ckptIter(base, n); ok && old < it {
			if err := fs.Delete(n); err != nil {
				return fmt.Errorf("core: checkpoint prune %q: %w", n, err)
			}
		}
	}
	return nil
}

// loadCheckpoint returns the newest checkpoint payload under base and
// its iteration number, or (nil, 0) when none exists.
func loadCheckpoint(c *mr.Cluster, base string) (any, int, error) {
	fs := c.FS()
	best, bestIter := "", -1
	for _, n := range fs.List() {
		if it, ok := ckptIter(base, n); ok && it > bestIter {
			best, bestIter = n, it
		}
	}
	if bestIter < 0 {
		return nil, 0, nil
	}
	recs, err := fs.ReadAll(best)
	if err != nil {
		return nil, 0, fmt.Errorf("core: checkpoint %q: %w", best, err)
	}
	if len(recs) != 1 {
		return nil, 0, fmt.Errorf("core: checkpoint %q has %d records, want 1", best, len(recs))
	}
	return recs[0].Data, bestIter, nil
}

// saveParafacCheckpoint snapshots the PARAFAC loop state after an
// iteration. Everything is deep-copied: the live loop mutates factors
// and lambda in place on the very next iteration.
func saveParafacCheckpoint(c *mr.Cluster, base string, it int,
	factors []*matrix.Matrix, lambda, prevLambda []float64,
	prevFit float64, fits []float64, converged bool) error {
	ck := &parafacCkpt{
		factors:    cloneMatrices(factors),
		lambda:     append([]float64(nil), lambda...),
		prevLambda: append([]float64(nil), prevLambda...),
		prevFit:    prevFit,
		fits:       append([]float64(nil), fits...),
		converged:  converged,
	}
	bytes := matricesBytes(factors) + int64(len(lambda)+len(prevLambda)+len(fits))*8 + 16
	return writeCheckpoint(c, base, it, ck, bytes)
}

// loadParafacCheckpoint returns the newest PARAFAC checkpoint under
// base, or (nil, 0) when none exists.
func loadParafacCheckpoint(c *mr.Cluster, base string) (*parafacCkpt, int, error) {
	data, it, err := loadCheckpoint(c, base)
	if err != nil || data == nil {
		return nil, 0, err
	}
	ck, ok := data.(*parafacCkpt)
	if !ok {
		return nil, 0, fmt.Errorf("core: checkpoint %q is not a PARAFAC checkpoint", ckptName(base, it))
	}
	return ck, it, nil
}

// saveTuckerCheckpoint snapshots the Tucker loop state after an
// iteration.
func saveTuckerCheckpoint(c *mr.Cluster, base string, it int,
	factors []*matrix.Matrix, core *tensor.Dense,
	coreNorms, fits []float64, prevNorm float64, converged bool) error {
	ck := &tuckerCkpt{
		factors:   cloneMatrices(factors),
		core:      cloneDense(core),
		coreNorms: append([]float64(nil), coreNorms...),
		fits:      append([]float64(nil), fits...),
		prevNorm:  prevNorm,
		converged: converged,
	}
	bytes := matricesBytes(factors) + int64(len(core.Data))*8 +
		int64(len(coreNorms)+len(fits))*8 + 16
	return writeCheckpoint(c, base, it, ck, bytes)
}

// loadTuckerCheckpoint returns the newest Tucker checkpoint under base,
// or (nil, 0) when none exists.
func loadTuckerCheckpoint(c *mr.Cluster, base string) (*tuckerCkpt, int, error) {
	data, it, err := loadCheckpoint(c, base)
	if err != nil || data == nil {
		return nil, 0, err
	}
	ck, ok := data.(*tuckerCkpt)
	if !ok {
		return nil, 0, fmt.Errorf("core: checkpoint %q is not a Tucker checkpoint", ckptName(base, it))
	}
	return ck, it, nil
}

// iterSeed derives the RNG seed of one outer iteration from the run
// seed, so any randomness consumed inside an iteration (dead-component
// reinitialization) is a function of (Seed, iteration) alone — a
// resumed run draws exactly what the original run would have.
func iterSeed(seed int64, it int) int64 {
	h := (uint64(seed) ^ 0x9e3779b97f4a7c15) + (uint64(it)+1)*0xbf58476d1ce4e5b9
	h ^= h >> 30
	h *= 0x94d049bb133111eb
	h ^= h >> 27
	return int64(h)
}
