package dfs

import "testing"

func writeRecords(t *testing.T, fs *FS, name string, n int) {
	t.Helper()
	w, err := fs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		w.Append(i, 8)
	}
	w.Close()
}

// TestSplitRangesBoundaries pins the zero-copy split contract: the
// returned slice aliases file storage and the boundaries cover every
// record contiguously, matching what Splits materializes.
func TestSplitRangesBoundaries(t *testing.T) {
	fs := New(Options{})
	writeRecords(t, fs, "f", 10)
	recs, bounds, err := fs.SplitRanges("f", 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 3, 6, 9, 10}
	if len(bounds) != len(want) {
		t.Fatalf("bounds=%v want %v", bounds, want)
	}
	for i := range want {
		if bounds[i] != want[i] {
			t.Fatalf("bounds=%v want %v", bounds, want)
		}
	}
	if len(recs) != 10 {
		t.Fatalf("got %d records", len(recs))
	}
	// Zero-copy: the same backing array as a plain read.
	all, err := fs.ReadAll("f")
	if err != nil {
		t.Fatal(err)
	}
	if &recs[0] != &all[0] {
		t.Fatal("SplitRanges copied the record slice")
	}
	// The ranges must agree with the materialized Splits view.
	splits, err := fs.Splits("f", 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, sp := range splits {
		if len(sp) != bounds[i+1]-bounds[i] {
			t.Fatalf("split %d has %d records, range says %d", i, len(sp), bounds[i+1]-bounds[i])
		}
		for j := range sp {
			if sp[j].Data != recs[bounds[i]+j].Data {
				t.Fatalf("split %d record %d differs from range view", i, j)
			}
		}
	}
}

// TestSplitRangesChargesOneRead verifies the accounting contract: one
// SplitRanges call costs exactly one full read of the file.
func TestSplitRangesChargesOneRead(t *testing.T) {
	fs := New(Options{})
	writeRecords(t, fs, "f", 10)
	fs.ResetStats()
	if _, _, err := fs.SplitRanges("f", 4); err != nil {
		t.Fatal(err)
	}
	st := fs.Stats()
	if st.BytesRead != 80 || st.RecordsRead != 10 {
		t.Fatalf("one split scan should charge one full read, got %+v", st)
	}
}

// TestSplitRangesSmallAndEmpty covers files with fewer records than
// splits (trailing empty splits) and missing files.
func TestSplitRangesSmallAndEmpty(t *testing.T) {
	fs := New(Options{})
	writeRecords(t, fs, "tiny", 2)
	recs, bounds, err := fs.SplitRanges("tiny", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || len(bounds) != 6 {
		t.Fatalf("recs=%d bounds=%v", len(recs), bounds)
	}
	if bounds[0] != 0 || bounds[len(bounds)-1] != 2 {
		t.Fatalf("bounds must cover the file: %v", bounds)
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] < bounds[i-1] {
			t.Fatalf("bounds must be nondecreasing: %v", bounds)
		}
	}
	// n <= 0 degrades to a single split.
	_, bounds, err = fs.SplitRanges("tiny", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(bounds) != 2 || bounds[1] != 2 {
		t.Fatalf("n=0 should yield one split: %v", bounds)
	}
	if _, _, err := fs.SplitRanges("absent", 3); err == nil {
		t.Fatal("missing file must error")
	}
}
