package dfs

import (
	"testing"
)

func TestBlockWriteAndView(t *testing.T) {
	fs := New(Options{})
	w, err := fs.Create("blk")
	if err != nil {
		t.Fatal(err)
	}
	payload := []int64{10, 20, 30, 40}
	w.AppendBlock(payload, len(payload), 32)
	w.Close()

	got, n, ok, err := fs.BlockView("blk")
	if err != nil || !ok {
		t.Fatalf("BlockView: ok=%v err=%v", ok, err)
	}
	if n != 4 {
		t.Fatalf("count = %d, want 4", n)
	}
	s, isTyped := got.([]int64)
	if !isTyped || len(s) != 4 || s[2] != 30 {
		t.Fatalf("payload = %#v", got)
	}
	if sz, _ := fs.Size("blk"); sz != 32 {
		t.Fatalf("Size = %d, want 32", sz)
	}
	if nr, _ := fs.NumRecords("blk"); nr != 4 {
		t.Fatalf("NumRecords = %d, want 4", nr)
	}
	st := fs.Stats()
	if st.BytesWritten != 32 || st.RecordsWritten != 4 {
		t.Fatalf("write stats = %+v", st)
	}
	if st.BytesRead != 32 || st.RecordsRead != 4 {
		t.Fatalf("read stats = %+v", st)
	}
}

// A block-written file must still serve per-record readers: the boxed
// view is materialized lazily, sizes summing exactly to the block size.
func TestBlockMaterializesForRecordReaders(t *testing.T) {
	fs := New(Options{})
	w, _ := fs.Create("blk")
	w.AppendBlock([]string{"a", "b", "c"}, 3, 10)
	w.Close()

	recs, err := fs.ReadAll("blk")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records", len(recs))
	}
	var total int64
	for _, r := range recs {
		total += r.Size
	}
	if total != 10 {
		t.Fatalf("record sizes sum to %d, want 10", total)
	}
	if recs[1].Data.(string) != "b" {
		t.Fatalf("recs[1] = %#v", recs[1])
	}

	// SplitRanges works off the same materialized view.
	splits, bounds, err := fs.SplitRanges("blk", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 3 || bounds[len(bounds)-1] != 3 {
		t.Fatalf("splits=%d bounds=%v", len(splits), bounds)
	}
}

func TestBlockViewOnRecordFile(t *testing.T) {
	fs := New(Options{})
	w, _ := fs.Create("rec")
	w.Append("x", 4)
	w.Close()
	before := fs.Stats().BytesRead
	_, _, ok, err := fs.BlockView("rec")
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("BlockView reported a per-record file as a block")
	}
	if fs.Stats().BytesRead != before {
		t.Fatal("failed BlockView charged a read")
	}
	if _, _, _, err := fs.BlockView("absent"); err == nil {
		t.Fatal("BlockView on absent file did not error")
	}
}

func TestBlockWriteMixingPanics(t *testing.T) {
	fs := New(Options{})
	w, _ := fs.Create("a")
	w.AppendBlock([]int{1}, 1, 8)
	mustPanic(t, "Append after AppendBlock", func() { w.Append(2, 8) })
	mustPanic(t, "second AppendBlock", func() { w.AppendBlock([]int{2}, 1, 8) })
	w2, _ := fs.Create("b")
	w2.Append(1, 8)
	mustPanic(t, "AppendBlock after Append", func() { w2.AppendBlock([]int{2}, 1, 8) })
	w3, _ := fs.Create("c")
	mustPanic(t, "count mismatch", func() { w3.AppendBlock([]int{1, 2}, 3, 8) })
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	fn()
}
