// Package dfs simulates the distributed file system (HDFS) that HaTen2's
// MapReduce jobs stage their input and output through.
//
// The simulator stores records in memory but performs full bookkeeping of
// what a real HDFS would do to disk: records are packed into fixed-size
// blocks, every written block is charged once per replica, and every job
// that reads a file is charged for all of its bytes again. This makes the
// paper's third optimization axis — "minimize disk accesses" by reading
// the input tensor once instead of twice (§III-B4) — directly observable
// in Stats.
package dfs

import (
	"fmt"
	"reflect"
	"sort"
	"sync"
)

// Record is one item stored in a file: an opaque payload plus the number
// of bytes it would occupy on disk. Sizes are supplied by the writer
// because the simulator never serializes payloads.
type Record struct {
	Data any
	Size int64
}

// Options configures a simulated file system.
type Options struct {
	// BlockSize is the HDFS block size in bytes. Defaults to 64 MiB,
	// Hadoop 1.x's default (the paper's era).
	BlockSize int64
	// Replication is the number of replicas written per block. Defaults
	// to 3, HDFS's default.
	Replication int
	// Machines is the number of simulated datanodes replicas are placed
	// across. Defaults to Replication, the smallest cluster on which
	// every block can keep fully distinct copies.
	Machines int
}

// Stats aggregates the I/O the file system has performed.
type Stats struct {
	BytesWritten   int64 // logical bytes written (before replication)
	BytesReplWrite int64 // physical bytes written including replication
	BytesRead      int64
	RecordsWritten int64
	RecordsRead    int64
	BlocksWritten  int64 // logical blocks
	FilesCreated   int64
	FilesDeleted   int64
	FilesAborted   int64 // staged files discarded before publication

	// Storage-failure accounting (see storage.go). Faults move these
	// counters and simulated time only — never the bytes a reader sees.
	CorruptBlocks  int64 // replica copies whose checksum verification failed
	LostReplicas   int64 // replica copies missing at read/scrub time
	FailoverReads  int64 // reads retried on the next replica after a bad copy
	FailoverBytes  int64 // bytes re-read from further replicas during failover
	ReReplications int64 // replica copies restored to reach the target factor
	ScrubBytes     int64 // bytes copied while re-replicating bad copies
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.BytesWritten += other.BytesWritten
	s.BytesReplWrite += other.BytesReplWrite
	s.BytesRead += other.BytesRead
	s.RecordsWritten += other.RecordsWritten
	s.RecordsRead += other.RecordsRead
	s.BlocksWritten += other.BlocksWritten
	s.FilesCreated += other.FilesCreated
	s.FilesDeleted += other.FilesDeleted
	s.FilesAborted += other.FilesAborted
	s.CorruptBlocks += other.CorruptBlocks
	s.LostReplicas += other.LostReplicas
	s.FailoverReads += other.FailoverReads
	s.FailoverBytes += other.FailoverBytes
	s.ReReplications += other.ReReplications
	s.ScrubBytes += other.ScrubBytes
}

type file struct {
	// records holds the per-record view. For block-written files it is
	// materialized lazily (with boxing) the first time a per-record
	// reader asks for it; typed readers never pay that cost.
	records []Record
	// typed is the payload of a block-written file: a []T slice stored
	// as written, with no per-record boxing. nil for per-record files.
	typed any
	count int
	bytes int64

	// digest is the running splitmix64 fold over the file's write
	// pattern; sums snapshots it once per completed block (plus the
	// trailing partial block at Close), giving each block a checksum
	// computed incrementally at append time — the zero-copy BlockView
	// path verifies against these before lending the payload out.
	digest uint64
	sums   []uint64
	// repl is the replication factor the file was published with.
	repl int
	// healed and detected track per-replica-copy state, indexed
	// block*repl+replica and allocated lazily on the first storage
	// fault. healed marks copies restored by read-repair or Scrub
	// (they verify clean from then on); detected memoizes bad copies
	// so each is counted in Stats exactly once no matter how many
	// times a doomed block is re-read.
	healed   []bool
	detected []bool
}

// fold mixes one append event into the running digest and snapshots a
// checksum for every block the write completed. Called with fs.mu held,
// after f.bytes has been advanced.
func (f *file) fold(evt uint64, blockSize int64) {
	f.digest = storageMix(f.digest ^ storageMix(evt+0x9e3779b97f4a7c15))
	for int64(len(f.sums)) < f.bytes/blockSize {
		f.sums = append(f.sums, f.digest)
	}
}

// blockSpan returns the logical bytes stored in block b.
func (f *file) blockSpan(b int, blockSize int64) int64 {
	if int64(b+1)*blockSize <= f.bytes {
		return blockSize
	}
	return f.bytes - int64(b)*blockSize
}

// materialize builds the boxed per-record view of a block-written file.
// Called with fs.mu held. Per-record sizes are the block's bytes spread
// uniformly (the block never carried per-record sizes), with the
// remainder charged to the last record so the total is exact.
func (f *file) materialize() {
	if f.typed == nil || f.records != nil || f.count == 0 {
		return
	}
	rv := reflect.ValueOf(f.typed)
	n := rv.Len()
	recs := make([]Record, n)
	per := f.bytes / int64(n)
	for i := 0; i < n; i++ {
		recs[i] = Record{Data: rv.Index(i).Interface(), Size: per}
	}
	recs[n-1].Size += f.bytes - per*int64(n)
	f.records = recs
}

// FS is a simulated distributed file system. All methods are safe for
// concurrent use.
type FS struct {
	mu    sync.Mutex
	opts  Options
	files map[string]*file
	// staging holds files between Create and Close. A staged file's name
	// is reserved (a second Create fails) but the file is invisible to
	// every read-side method until Close publishes it — the atomicity a
	// real job gets from writing to a task-attempt directory and renaming
	// into place on commit.
	staging map[string]*file
	stats   Stats
	// faults is the installed storage fault plan; nil runs clean.
	faults *StorageFaults
	// remote, when non-nil, mirrors published files into an external
	// block store (see remote.go). Hooks fire outside fs.mu.
	remote Remote
}

// New returns an empty file system with the given options
// (zero fields take the documented defaults).
func New(opts Options) *FS {
	if opts.BlockSize <= 0 {
		opts.BlockSize = 64 << 20
	}
	if opts.Replication <= 0 {
		opts.Replication = 3
	}
	if opts.Machines <= 0 {
		opts.Machines = opts.Replication
	}
	return &FS{opts: opts, files: make(map[string]*file), staging: make(map[string]*file)}
}

// ErrNotExist is returned when a named file is absent.
type ErrNotExist struct{ Name string }

func (e *ErrNotExist) Error() string { return fmt.Sprintf("dfs: file %q does not exist", e.Name) }

// ErrExist is returned by Create when the file already exists.
type ErrExist struct{ Name string }

func (e *ErrExist) Error() string { return fmt.Sprintf("dfs: file %q already exists", e.Name) }

// Create makes a new empty file and returns a writer for it. Like HDFS,
// files are write-once: Create fails if the name already exists, staged
// or published. The file stays invisible — absent from ReadAll, Exists,
// Size, List, and Delete — until the writer's Close publishes it
// atomically; a writer abandoned by a failed task attempt (Abort, or
// simply never closed) exposes no partial output.
func (fs *FS) Create(name string) (*Writer, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[name]; ok {
		return nil, &ErrExist{Name: name}
	}
	if _, ok := fs.staging[name]; ok {
		return nil, &ErrExist{Name: name}
	}
	f := &file{}
	fs.staging[name] = f
	fs.stats.FilesCreated++
	return &Writer{fs: fs, name: name, f: f}, nil
}

// Writer appends records to a file. It buffers nothing; every Append is
// accounted immediately. Writers are safe for concurrent use. The file
// becomes visible only when Close commits it; Abort discards it.
type Writer struct {
	fs    *FS
	name  string
	f     *file
	state writerState // guarded by fs.mu
}

type writerState uint8

const (
	writerOpen writerState = iota
	writerClosed
	writerAborted
)

// mustBeOpen panics with a precise lifecycle message when the writer has
// already been closed or aborted. Called with fs.mu held.
func (w *Writer) mustBeOpen(op string) {
	switch w.state {
	case writerClosed:
		panic(fmt.Sprintf("dfs: %s on closed writer: file %q was already published", op, w.name))
	case writerAborted:
		panic(fmt.Sprintf("dfs: %s on aborted writer: file %q was discarded", op, w.name))
	}
}

// Append adds one record to the file. Appending to a closed or aborted
// writer panics: the commit protocol forbids mutating published files.
func (w *Writer) Append(data any, size int64) {
	w.fs.mu.Lock()
	defer w.fs.mu.Unlock()
	w.mustBeOpen("Append")
	if w.f.typed != nil {
		panic("dfs: Append on a block-written file")
	}
	w.f.records = append(w.f.records, Record{Data: data, Size: size})
	w.f.count++
	w.f.bytes += size
	w.f.fold(uint64(size), w.fs.opts.BlockSize)
	w.fs.stats.BytesWritten += size
	w.fs.stats.BytesReplWrite += size * int64(w.fs.opts.Replication)
	w.fs.stats.RecordsWritten++
}

// AppendAll adds many records with a single lock acquisition.
func (w *Writer) AppendAll(recs []Record) {
	w.fs.mu.Lock()
	defer w.fs.mu.Unlock()
	w.mustBeOpen("AppendAll")
	if w.f.typed != nil {
		panic("dfs: AppendAll on a block-written file")
	}
	w.f.records = append(w.f.records, recs...)
	w.f.count += len(recs)
	for _, r := range recs {
		w.f.bytes += r.Size
		w.f.fold(uint64(r.Size), w.fs.opts.BlockSize)
		w.fs.stats.BytesWritten += r.Size
		w.fs.stats.BytesReplWrite += r.Size * int64(w.fs.opts.Replication)
	}
	w.fs.stats.RecordsWritten += int64(len(recs))
}

// AppendBlock stores a file's contents as one typed block: payload must
// be a []T slice of count records charging size bytes in total. The
// payload is stored as-is — no per-record boxing — and handed back
// verbatim by BlockView, so ownership transfers to the file system:
// the caller must not mutate (or return to a pool) the slice after the
// call. A file holds at most one block, and block and per-record writes
// cannot be mixed; violating either panics, like the write-once rules.
func (w *Writer) AppendBlock(payload any, count int, size int64) {
	w.fs.mu.Lock()
	defer w.fs.mu.Unlock()
	w.mustBeOpen("AppendBlock")
	if w.f.typed != nil || len(w.f.records) > 0 {
		panic("dfs: AppendBlock on a non-empty file")
	}
	if rv := reflect.ValueOf(payload); rv.Kind() != reflect.Slice || rv.Len() != count {
		panic(fmt.Sprintf("dfs: AppendBlock payload must be a slice of %d records", count))
	}
	w.f.typed = payload
	w.f.count = count
	w.f.bytes += size
	w.f.fold(storageMix(uint64(count))^uint64(size), w.fs.opts.BlockSize)
	w.fs.stats.BytesWritten += size
	w.fs.stats.BytesReplWrite += size * int64(w.fs.opts.Replication)
	w.fs.stats.RecordsWritten += int64(count)
}

// Close atomically publishes the file, finalizes its per-block
// checksums, and charges block-level accounting. The publish happens
// exactly once: a second Close, or Close after Abort, panics — the
// commit protocol treats a double commit as task-attempt corruption.
// When a remote mirror is installed, the newly published file is
// shipped to it after the publish, outside the file-system mutex.
func (w *Writer) Close() {
	remote, payload, count, recs := w.commit()
	if remote != nil {
		remote.Ship(w.name, payload, count, recs)
	}
}

// commit performs the locked portion of Close and returns the remote
// hook to notify (nil when none is installed) together with a snapshot
// of the published content taken under the lock — the payload and
// record storage are append-frozen from publication on, but the record
// slice header itself may later be replaced by lazy materialization,
// so it must be captured here, not read from w.f afterwards.
func (w *Writer) commit() (Remote, any, int, []Record) {
	w.fs.mu.Lock()
	defer w.fs.mu.Unlock()
	switch w.state {
	case writerClosed:
		panic(fmt.Sprintf("dfs: double Close of writer: file %q was already published", w.name))
	case writerAborted:
		panic(fmt.Sprintf("dfs: Close after Abort of writer: file %q was discarded", w.name))
	}
	w.state = writerClosed
	delete(w.fs.staging, w.name)
	w.fs.files[w.name] = w.f
	if w.f.bytes%w.fs.opts.BlockSize != 0 {
		// Checksum the trailing partial block; full blocks were
		// snapshotted as the appends crossed their boundaries.
		w.f.sums = append(w.f.sums, w.f.digest)
	}
	w.f.repl = w.fs.opts.Replication
	w.fs.stats.BlocksWritten += int64(len(w.f.sums))
	return w.fs.remote, w.f.typed, w.f.count, w.f.records
}

// Abort discards a staged file, releasing its name. The bytes already
// appended stay charged in Stats — the physical writes happened before
// the attempt died — but no reader ever observes the partial file.
// Abort after Close (or a second Abort) is a no-op, so cleanup paths
// may abort unconditionally.
func (w *Writer) Abort() {
	w.fs.mu.Lock()
	defer w.fs.mu.Unlock()
	if w.state != writerOpen {
		return
	}
	w.state = writerAborted
	delete(w.fs.staging, w.name)
	w.fs.stats.FilesAborted++
}

// ReadAll returns all records of a file and charges a full read. Every
// block is checksum-verified first, failing over across replicas; a
// block with no good replica fails the read with *ErrDataLoss.
// The returned slice aliases file storage; callers must not mutate it.
func (fs *FS) ReadAll(name string) ([]Record, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		return nil, &ErrNotExist{Name: name}
	}
	if err := fs.verifyRead(name, f); err != nil {
		return nil, err
	}
	f.materialize()
	fs.stats.BytesRead += f.bytes
	fs.stats.RecordsRead += int64(f.count)
	return f.records, nil
}

// BlockView returns the typed payload of a block-written file — the []T
// slice AppendBlock stored, with no per-record boxing — charging one
// full read. ok is false (with no read charged) when the file was
// written per-record; callers then fall back to ReadAll or SplitRanges.
//
// The payload is a borrowed view of file storage: callers must treat it
// as read-only and must not return it to a buffer pool. It stays valid
// until the file is deleted.
func (fs *FS) BlockView(name string) (payload any, count int, ok bool, err error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, exists := fs.files[name]
	if !exists {
		return nil, 0, false, &ErrNotExist{Name: name}
	}
	if f.typed == nil {
		return nil, 0, false, nil
	}
	// Verify against the checksums computed at AppendBlock time before
	// lending the pooled slab out; a bad block must surface here, not
	// as a silent wrong decode downstream.
	if err := fs.verifyRead(name, f); err != nil {
		return nil, 0, false, err
	}
	fs.stats.BytesRead += f.bytes
	fs.stats.RecordsRead += int64(f.count)
	return f.typed, f.count, true, nil
}

// SplitRanges partitions a file into n contiguous input splits without
// copying: it returns the file's record slice (aliasing file storage;
// callers must not mutate it) together with n+1 split boundaries, so
// split i is recs[bounds[i]:bounds[i+1]]. One full read of the file is
// charged, exactly as Splits does. Some splits may be empty when the
// file has fewer records than n.
func (fs *FS) SplitRanges(name string, n int) (recs []Record, bounds []int, err error) {
	if n <= 0 {
		n = 1
	}
	recs, err = fs.ReadAll(name)
	if err != nil {
		return nil, nil, err
	}
	bounds = make([]int, n+1)
	per := (len(recs) + n - 1) / n
	for i := 1; i <= n; i++ {
		hi := i * per
		if hi > len(recs) {
			hi = len(recs)
		}
		bounds[i] = hi
	}
	return recs, bounds, nil
}

// Splits partitions a file's records into n contiguous input splits for
// the MapReduce engine, charging one full read of the file. Some splits
// may be empty when the file has fewer records than n. The splits alias
// file storage; callers needing to avoid the per-split slice headers
// should use SplitRanges instead.
func (fs *FS) Splits(name string, n int) ([][]Record, error) {
	recs, bounds, err := fs.SplitRanges(name, n)
	if err != nil {
		return nil, err
	}
	out := make([][]Record, len(bounds)-1)
	for i := range out {
		out[i] = recs[bounds[i]:bounds[i+1]]
	}
	return out, nil
}

// Size returns the logical byte size of a file.
func (fs *FS) Size(name string) (int64, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		return 0, &ErrNotExist{Name: name}
	}
	return f.bytes, nil
}

// NumRecords returns the record count of a file.
func (fs *FS) NumRecords(name string) (int, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		return 0, &ErrNotExist{Name: name}
	}
	return f.count, nil
}

// Exists reports whether a file is present.
func (fs *FS) Exists(name string) bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	_, ok := fs.files[name]
	return ok
}

// Delete removes a file. Deleting an absent file returns ErrNotExist.
// An installed remote mirror is told to drop its copy, outside the
// file-system mutex.
func (fs *FS) Delete(name string) error {
	fs.mu.Lock()
	if _, ok := fs.files[name]; !ok {
		fs.mu.Unlock()
		return &ErrNotExist{Name: name}
	}
	delete(fs.files, name)
	fs.stats.FilesDeleted++
	remote := fs.remote
	fs.mu.Unlock()
	if remote != nil {
		remote.Drop(name)
	}
	return nil
}

// List returns all file names in lexical order.
func (fs *FS) List() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	names := make([]string, 0, len(fs.files))
	for n := range fs.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Stats returns a snapshot of the accumulated I/O statistics.
func (fs *FS) Stats() Stats {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.stats
}

// ResetStats zeroes the statistics (files are kept).
func (fs *FS) ResetStats() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.stats = Stats{}
}
