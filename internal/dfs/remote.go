package dfs

import "encoding/binary"

// Remote mirrors published files into an external block store — the
// multi-process execution backend's worker processes. The file system
// itself stays the source of truth (reads, checksums, and the storage
// failure model are unchanged); the hooks give a backend a precise,
// race-free view of the namespace so it can keep remote copies in sync:
//
//   - Ship fires after a writer's Close atomically publishes a file
//     (and therefore after WriteFile-style replace patterns re-publish
//     one). Block-written files pass their typed payload; per-record
//     files pass their record slice. Both alias file storage and are
//     immutable from publication on — the hook may read them freely but
//     must not mutate or retain ownership.
//   - Drop fires after Delete removes a file.
//
// Hooks are called outside the file-system mutex, so an implementation
// may perform real I/O (sockets, hashing) without holding up readers.
// They return nothing: a backend that fails to mirror a file simply
// serves a not-found for it later, and the engine falls back to the
// in-process read path — mirroring can change wall-clock time, never
// results.
type Remote interface {
	Ship(name string, payload any, count int, recs []Record)
	Drop(name string)
}

// SetRemote installs (or with nil removes) the remote mirror hook.
// Files published before the hook was installed are not re-shipped;
// install the hook before staging data.
func (fs *FS) SetRemote(r Remote) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.remote = r
}

// HashBytes folds a byte string through the splitmix64 chain the
// file-system checksums use, seeded with the length so strings that
// differ only by trailing zeros hash apart. The multi-process backend
// keys its content-addressed chunk store with it: a chunk's hash is a
// pure function of its bytes, so re-shipping unchanged content is
// detected without moving it.
func HashBytes(b []byte) uint64 {
	h := storageMix(uint64(len(b)) ^ 0x9e3779b97f4a7c15)
	for len(b) >= 8 {
		h = storageMix(h ^ binary.LittleEndian.Uint64(b))
		b = b[8:]
	}
	if len(b) > 0 {
		var tail [8]byte
		copy(tail[:], b)
		h = storageMix(h ^ binary.LittleEndian.Uint64(tail[:]) ^ uint64(len(b)))
	}
	return h
}
