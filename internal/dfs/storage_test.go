package dfs

import (
	"errors"
	"testing"
)

// writeBlocks publishes a per-record file of n records of size each.
func writeBlocks(t *testing.T, fs *FS, name string, n int, size int64) {
	t.Helper()
	w, err := fs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		w.Append(i, size)
	}
	w.Close()
}

func TestChecksumsIncrementalAndDeterministic(t *testing.T) {
	mk := func() *FS {
		fs := New(Options{BlockSize: 10, Replication: 2, Machines: 4})
		writeBlocks(t, fs, "f", 7, 4) // 28 bytes -> blocks of 10: 3 blocks
		return fs
	}
	a, b := mk(), mk()
	sa, err := a.BlockChecksums("f")
	if err != nil {
		t.Fatal(err)
	}
	sb, _ := b.BlockChecksums("f")
	if len(sa) != 3 {
		t.Fatalf("blocks=%d, want 3", len(sa))
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("checksums not deterministic: block %d %x vs %x", i, sa[i], sb[i])
		}
	}
	if a.Stats().BlocksWritten != 3 {
		t.Fatalf("BlocksWritten=%d, want 3", a.Stats().BlocksWritten)
	}
	// A different write pattern must change the trailing checksum.
	c := New(Options{BlockSize: 10})
	writeBlocks(t, c, "f", 14, 2) // same 28 bytes, different record sizes
	sc, _ := c.BlockChecksums("f")
	if sc[2] == sa[2] {
		t.Fatal("different write patterns produced identical checksums")
	}
	// Block-written files are checksummed too (the BlockView path).
	d := New(Options{BlockSize: 10})
	w, _ := d.Create("g")
	w.AppendBlock([]int{1, 2, 3}, 3, 25)
	w.Close()
	sd, _ := d.BlockChecksums("g")
	if len(sd) != 3 {
		t.Fatalf("block-written file: blocks=%d, want 3", len(sd))
	}
}

func TestPlacementDistinctAndDeterministic(t *testing.T) {
	fs := New(Options{BlockSize: 10, Replication: 3, Machines: 8})
	writeBlocks(t, fs, "f", 10, 5) // 50 bytes -> 5 blocks
	p1, err := fs.Placement("f")
	if err != nil {
		t.Fatal(err)
	}
	if len(p1) != 5 {
		t.Fatalf("placement blocks=%d, want 5", len(p1))
	}
	for b, ms := range p1 {
		if len(ms) != 3 {
			t.Fatalf("block %d has %d replicas", b, len(ms))
		}
		seen := map[int]bool{}
		for _, m := range ms {
			if m < 0 || m >= 8 {
				t.Fatalf("block %d placed on machine %d of 8", b, m)
			}
			if seen[m] {
				t.Fatalf("block %d has two replicas on machine %d", b, m)
			}
			seen[m] = true
		}
	}
	// Same file on a fresh FS places identically: placement is a pure
	// hash, not scheduler state.
	fs2 := New(Options{BlockSize: 10, Replication: 3, Machines: 8})
	writeBlocks(t, fs2, "f", 10, 5)
	p2, _ := fs2.Placement("f")
	for b := range p1 {
		for r := range p1[b] {
			if p1[b][r] != p2[b][r] {
				t.Fatalf("placement not deterministic at block %d replica %d", b, r)
			}
		}
	}
	// More replicas than machines: placement wraps instead of failing.
	fs3 := New(Options{BlockSize: 10, Replication: 3, Machines: 2})
	writeBlocks(t, fs3, "f", 2, 5)
	p3, _ := fs3.Placement("f")
	if len(p3[0]) != 3 {
		t.Fatalf("wrapped placement has %d replicas", len(p3[0]))
	}
}

// findSeed scans storage-fault seeds until pred holds on a fresh FS,
// so tests can pin behavior without hardcoding magic seeds.
func findSeed(t *testing.T, pred func(seed int64) bool) int64 {
	t.Helper()
	for seed := int64(0); seed < 500; seed++ {
		if pred(seed) {
			return seed
		}
	}
	t.Fatal("no seed under 500 produced the wanted fault pattern")
	return -1
}

func corruptFS(t *testing.T, seed int64, rate float64, repl int) *FS {
	t.Helper()
	fs := New(Options{BlockSize: 10, Replication: repl, Machines: 4})
	writeBlocks(t, fs, "f", 8, 5) // 40 bytes -> 4 blocks
	fs.InstallFaults(&StorageFaults{Seed: seed, CorruptRate: rate})
	return fs
}

func TestFailoverReadHealsAndMemoizes(t *testing.T) {
	// Find a seed where reads succeed (every block keeps a good copy)
	// but at least one copy is corrupt.
	seed := findSeed(t, func(s int64) bool {
		fs := corruptFS(t, s, 0.3, 3)
		_, err := fs.ReadAll("f")
		return err == nil && fs.Stats().CorruptBlocks > 0
	})
	fs := corruptFS(t, seed, 0.3, 3)
	if _, err := fs.ReadAll("f"); err != nil {
		t.Fatal(err)
	}
	st := fs.Stats()
	if st.CorruptBlocks == 0 || st.FailoverReads != st.CorruptBlocks {
		t.Fatalf("failover accounting: corrupt=%d failover=%d", st.CorruptBlocks, st.FailoverReads)
	}
	if st.FailoverBytes == 0 {
		t.Fatalf("FailoverBytes=0 with %d corrupt copies", st.CorruptBlocks)
	}
	// Read-repair restored the factor: every corrupt copy crossed on
	// the way to a good one was re-replicated.
	if st.ReReplications != st.CorruptBlocks || st.ScrubBytes != st.FailoverBytes {
		t.Fatalf("read-repair accounting: rerepl=%d corrupt=%d scrub=%d failover=%d",
			st.ReReplications, st.CorruptBlocks, st.ScrubBytes, st.FailoverBytes)
	}
	// A second read finds only healed copies: counters must not move.
	if _, err := fs.ReadAll("f"); err != nil {
		t.Fatal(err)
	}
	st2 := fs.Stats()
	st2.BytesRead, st.BytesRead = 0, 0
	st2.RecordsRead, st.RecordsRead = 0, 0
	if st2 != st {
		t.Fatalf("second read moved fault counters: %+v vs %+v", st2, st)
	}
}

func TestDataLossWhenAllReplicasBad(t *testing.T) {
	fs := corruptFS(t, 1, 1.0, 3) // every copy corrupt
	_, err := fs.ReadAll("f")
	var dl *ErrDataLoss
	if !errors.As(err, &dl) {
		t.Fatalf("err=%v, want ErrDataLoss", err)
	}
	if dl.File != "f" || dl.Replicas != 3 {
		t.Fatalf("ErrDataLoss fields: %+v", dl)
	}
	var ec *ErrCorrupt
	if !errors.As(err, &ec) {
		t.Fatalf("ErrDataLoss does not unwrap to ErrCorrupt: %v", err)
	}
	if ec.File != "f" || ec.Block != dl.Block {
		t.Fatalf("ErrCorrupt fields: %+v", ec)
	}
	// BlockView must verify too, before lending the payload.
	w, _ := fs.Create("g")
	w.AppendBlock([]int{1, 2}, 2, 15)
	w.Close()
	if _, _, _, err := fs.BlockView("g"); !errors.As(err, &dl) {
		t.Fatalf("BlockView err=%v, want ErrDataLoss", err)
	}
	// Detection is memoized: re-reading the doomed file must not
	// re-count the same bad copies.
	before := fs.Stats()
	if _, err := fs.ReadAll("f"); err == nil {
		t.Fatal("doomed file became readable")
	}
	if after := fs.Stats(); after != before {
		t.Fatalf("re-reading a lost block moved counters: %+v vs %+v", after, before)
	}
	// No read bytes were charged for failed reads.
	if before.BytesRead != 0 {
		t.Fatalf("BytesRead=%d charged for failed reads", before.BytesRead)
	}
}

func TestReplicaLossSkipsWithoutFailoverCharge(t *testing.T) {
	mk := func(seed int64) *FS {
		fs := New(Options{BlockSize: 10, Replication: 3, Machines: 4})
		writeBlocks(t, fs, "f", 8, 5)
		fs.InstallFaults(&StorageFaults{Seed: seed, LossRate: 0.3})
		return fs
	}
	seed := findSeed(t, func(s int64) bool {
		fs := mk(s)
		_, err := fs.ReadAll("f")
		return err == nil && fs.Stats().LostReplicas > 0
	})
	fs := mk(seed)
	if _, err := fs.ReadAll("f"); err != nil {
		t.Fatal(err)
	}
	st := fs.Stats()
	if st.LostReplicas == 0 {
		t.Fatal("no lost replicas detected")
	}
	// A lost copy is skipped from metadata: no wasted read, but the
	// factor is still restored.
	if st.FailoverReads != 0 || st.FailoverBytes != 0 {
		t.Fatalf("loss charged failover reads: %+v", st)
	}
	if st.ReReplications != st.LostReplicas || st.ScrubBytes == 0 {
		t.Fatalf("loss not re-replicated: %+v", st)
	}
}

func TestScrubHealsEverythingAndReports(t *testing.T) {
	// A scrub examines every copy, so after it even copies "behind"
	// the first good one are healed and a fault-free read follows.
	seed := findSeed(t, func(s int64) bool {
		fs := corruptFS(t, s, 0.3, 3)
		rep, err := fs.Scrub()
		return err == nil && rep.ReplicasRestored > 0
	})
	fs := corruptFS(t, seed, 0.3, 3)
	rep, err := fs.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.FilesScanned != 1 || rep.BlocksScanned != 4 {
		t.Fatalf("scrub report: %+v", rep)
	}
	if rep.ReplicasRestored == 0 || rep.BytesRestored == 0 {
		t.Fatalf("scrub restored nothing: %+v", rep)
	}
	st := fs.Stats()
	if st.ReReplications != rep.ReplicasRestored || st.ScrubBytes != rep.BytesRestored {
		t.Fatalf("scrub report disagrees with stats: %+v vs %+v", rep, st)
	}
	// After the scrub the file reads clean with no further failover.
	if _, err := fs.ReadAll("f"); err != nil {
		t.Fatal(err)
	}
	if st2 := fs.Stats(); st2.FailoverReads != st.FailoverReads || st2.ReReplications != st.ReReplications {
		t.Fatalf("post-scrub read still failed over: %+v", st2)
	}
	// A clean FS scrubs to an empty report.
	clean := New(Options{BlockSize: 10})
	writeBlocks(t, clean, "f", 4, 5)
	rep2, err := clean.Scrub()
	if err != nil || rep2.ReplicasRestored != 0 || rep2.FilesScanned != 1 {
		t.Fatalf("clean scrub: %+v err=%v", rep2, err)
	}
}

func TestVerifyFileReportsDataLoss(t *testing.T) {
	fs := corruptFS(t, 1, 1.0, 2)
	err := fs.VerifyFile("f")
	var dl *ErrDataLoss
	if !errors.As(err, &dl) {
		t.Fatalf("VerifyFile err=%v, want ErrDataLoss", err)
	}
	if err := fs.VerifyFile("missing"); err == nil {
		t.Fatal("VerifyFile on absent file succeeded")
	}
	// Scrub surfaces the same loss after completing its pass.
	if _, err := fs.Scrub(); !errors.As(err, &dl) {
		t.Fatalf("Scrub err=%v, want ErrDataLoss", err)
	}
}

func TestInstallFaultsNilRunsCleanButKeepsHeals(t *testing.T) {
	seed := findSeed(t, func(s int64) bool {
		fs := corruptFS(t, s, 0.3, 3)
		_, err := fs.ReadAll("f")
		return err == nil && fs.Stats().CorruptBlocks > 0
	})
	fs := corruptFS(t, seed, 0.3, 3)
	if _, err := fs.ReadAll("f"); err != nil {
		t.Fatal(err)
	}
	healed := fs.Stats().ReReplications
	fs.InstallFaults(nil)
	if _, err := fs.ReadAll("f"); err != nil {
		t.Fatal(err)
	}
	if st := fs.Stats(); st.ReReplications != healed || st.CorruptBlocks != st.FailoverReads {
		t.Fatalf("clean read after uninstall moved counters: %+v", st)
	}
	// Reinstalling the same plan: healed copies stay healed (repairs
	// were physical), so the read is still clean.
	fs.InstallFaults(&StorageFaults{Seed: seed, CorruptRate: 0.3})
	before := fs.Stats()
	if _, err := fs.ReadAll("f"); err != nil {
		t.Fatal(err)
	}
	after := fs.Stats()
	after.BytesRead, before.BytesRead = 0, 0
	after.RecordsRead, before.RecordsRead = 0, 0
	if after != before {
		t.Fatalf("reinstalled plan re-corrupted healed copies: %+v vs %+v", after, before)
	}
}

func TestStorageFaultsNeverChangeBytes(t *testing.T) {
	read := func(faults *StorageFaults) []Record {
		fs := New(Options{BlockSize: 10, Replication: 3, Machines: 4})
		writeBlocks(t, fs, "f", 8, 5)
		fs.InstallFaults(faults)
		recs, err := fs.ReadAll("f")
		if err != nil {
			return nil
		}
		return recs
	}
	clean := read(nil)
	seed := findSeed(t, func(s int64) bool {
		return read(&StorageFaults{Seed: s, CorruptRate: 0.3, LossRate: 0.2}) != nil
	})
	faulty := read(&StorageFaults{Seed: seed, CorruptRate: 0.3, LossRate: 0.2})
	if len(clean) != len(faulty) {
		t.Fatalf("faults changed record count: %d vs %d", len(clean), len(faulty))
	}
	for i := range clean {
		if clean[i] != faulty[i] {
			t.Fatalf("faults changed record %d: %+v vs %+v", i, clean[i], faulty[i])
		}
	}
}
