// Storage failure model: replicated, checksummed blocks with seeded
// corruption injection, read-path failover, and scrub/re-replication.
//
// Every published file carries one checksum per block, computed
// incrementally while the writer appends (dfs.go). Each block is stored
// as Replication copies placed across the simulated machines by a pure
// hash of (file, block, replica) — no scheduler state — so placement is
// a deterministic property of the file system's contents.
//
// Faults are injected the same way mr.FaultPlan injects task faults:
// whether one replica copy of one block is corrupt or lost is a pure
// splitmix64 hash of (seed, file, block, replica), evaluated lazily at
// read or scrub time. Because the decision never consults scheduling
// state, the set of bad copies is identical at every GOMAXPROCS level
// and across runs. Corruption and loss move simulated time and the
// Stats counters only; payload bytes are never mutated, so a fault can
// change what a read costs but never what it returns — the repo's
// standing invariant, extended to storage.
package dfs

import (
	"fmt"
	"sort"
)

// StorageFaults seeds deterministic storage failures, mirroring the
// compute-side mr.FaultPlan. The zero rate disables a fault class.
type StorageFaults struct {
	// Seed namespaces every hash decision below.
	Seed int64
	// CorruptRate is the probability that one replica copy of one
	// block is silently corrupt on disk: its checksum verification
	// fails at read time and the reader fails over to the next copy.
	CorruptRate float64
	// LossRate is the probability that one replica copy of one block
	// is missing (datanode died after the write): the copy is skipped
	// without a wasted read, but still costs a re-replication.
	LossRate float64
}

// InstallFaults installs (or, with nil, removes) a storage fault plan.
// Copies already healed by read-repair or Scrub stay healed — repairs
// are physical, not plan state.
func (fs *FS) InstallFaults(p *StorageFaults) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if p == nil {
		fs.faults = nil
		return
	}
	q := *p
	fs.faults = &q
}

// ErrCorrupt reports a checksum mismatch on one replica copy of one
// block. Reads fail over past it, so callers only observe ErrCorrupt
// wrapped inside ErrDataLoss, when no copy was left to fail over to.
type ErrCorrupt struct {
	File    string
	Block   int
	Replica int
}

func (e *ErrCorrupt) Error() string {
	return fmt.Sprintf("dfs: file %q block %d replica %d: checksum mismatch", e.File, e.Block, e.Replica)
}

// ErrDataLoss is terminal: every replica copy of one block is corrupt
// or lost, so the file cannot be read. Recovery is above the file
// system — the cluster falls back to checkpoint-resume.
type ErrDataLoss struct {
	File     string
	Block    int
	Replicas int // replication factor the file was written with
	// Cause is the first checksum mismatch observed, nil when every
	// copy was lost outright.
	Cause *ErrCorrupt
}

func (e *ErrDataLoss) Error() string {
	return fmt.Sprintf("dfs: file %q block %d: data loss, all %d replicas bad", e.File, e.Block, e.Replicas)
}

// Unwrap exposes the underlying checksum mismatch to errors.As.
func (e *ErrDataLoss) Unwrap() error {
	if e.Cause == nil {
		return nil
	}
	return e.Cause
}

// storageMix is the splitmix64 finalizer, the same mixer mr.FaultPlan
// uses for task faults.
func storageMix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// nameHash folds a file name into one 64-bit value (FNV-1a, finalized
// through storageMix) so fault and placement decisions can hash it with
// the other coordinates.
func nameHash(name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return storageMix(h)
}

// decision kinds keep the hash streams for loss, corruption, and
// placement disjoint.
const (
	kindLoss uint64 = iota + 1
	kindCorrupt
	kindPlace
)

// storageHash chains the coordinates of one decision through the mixer.
func storageHash(seed uint64, parts ...uint64) uint64 {
	h := storageMix(seed)
	for _, p := range parts {
		h = storageMix(h ^ storageMix(p+0x9e3779b97f4a7c15))
	}
	return h
}

// roll maps a hash to [0, 1).
func roll(h uint64) float64 {
	return float64(h>>11) / float64(1<<53)
}

// Replica copy states, resolved lazily from the fault plan.
const (
	repGood = iota
	repCorrupt
	repLost
)

// copyState resolves the state of replica r of block b. Healed copies
// are good regardless of the plan. Loss is checked before corruption: a
// missing copy cannot also mismatch. Called with fs.mu held.
func (fs *FS) copyState(f *file, nh uint64, b, r int) int {
	if f.healed != nil && f.healed[b*f.repl+r] {
		return repGood
	}
	p := fs.faults
	if p == nil {
		return repGood
	}
	if p.LossRate > 0 && roll(storageHash(uint64(p.Seed), nh, uint64(b), uint64(r), kindLoss)) < p.LossRate {
		return repLost
	}
	if p.CorruptRate > 0 && roll(storageHash(uint64(p.Seed), nh, uint64(b), uint64(r), kindCorrupt)) < p.CorruptRate {
		return repCorrupt
	}
	return repGood
}

// markDetected memoizes the first detection of a bad copy so Stats
// counts it exactly once, and charges the counters for its class.
// Failover bytes are charged here too: the wasted read of a corrupt
// copy happens when it is first tried (a lost copy is skipped from
// metadata and costs no read). Called with fs.mu held.
func (fs *FS) markDetected(f *file, b, r, state int) {
	if f.detected == nil {
		f.detected = make([]bool, len(f.sums)*f.repl)
	}
	idx := b*f.repl + r
	if f.detected[idx] {
		return
	}
	f.detected[idx] = true
	switch state {
	case repCorrupt:
		fs.stats.CorruptBlocks++
		fs.stats.FailoverReads++
		fs.stats.FailoverBytes += f.blockSpan(b, fs.opts.BlockSize)
	case repLost:
		fs.stats.LostReplicas++
	}
}

// heal restores one replica copy to the target factor and charges the
// re-replication: one block span copied from a good replica. Called
// with fs.mu held.
func (fs *FS) heal(f *file, b, r int) {
	if f.healed == nil {
		f.healed = make([]bool, len(f.sums)*f.repl)
	}
	f.healed[b*f.repl+r] = true
	fs.stats.ReReplications++
	fs.stats.ScrubBytes += f.blockSpan(b, fs.opts.BlockSize)
}

// verifyRead checksums every block of a file along the read path: scan
// replicas in placement order, fail over past bad copies to the first
// good one, then scrub (re-replicate) the bad copies just crossed so
// the block is back at its target factor for the next reader. A block
// with no good copy fails the read with *ErrDataLoss. Called with
// fs.mu held.
func (fs *FS) verifyRead(name string, f *file) error {
	if fs.faults == nil {
		return nil
	}
	nh := nameHash(name)
	for b := range f.sums {
		if err := fs.verifyBlockRead(f, name, nh, b); err != nil {
			return err
		}
	}
	return nil
}

// verifyBlockRead runs the failover sequence for one block. Called with
// fs.mu held.
func (fs *FS) verifyBlockRead(f *file, name string, nh uint64, b int) error {
	var bad []int
	var firstBad *ErrCorrupt
	for r := 0; r < f.repl; r++ {
		state := fs.copyState(f, nh, b, r)
		if state == repGood {
			// Read succeeds from this copy; read-repair the bad
			// copies crossed on the way here.
			for _, rb := range bad {
				fs.heal(f, b, rb)
			}
			return nil
		}
		fs.markDetected(f, b, r, state)
		bad = append(bad, r)
		if state == repCorrupt && firstBad == nil {
			firstBad = &ErrCorrupt{File: name, Block: b, Replica: r}
		}
	}
	return &ErrDataLoss{File: name, Block: b, Replicas: f.repl, Cause: firstBad}
}

// verifyFileFull examines every replica copy of every block — the full
// scrub an fsck pass does, not the first-good-copy walk of the read
// path — healing all bad copies of recoverable blocks and reporting
// the first unrecoverable one. Called with fs.mu held.
func (fs *FS) verifyFileFull(name string, f *file) (restored int64, restoredBytes int64, err error) {
	nh := nameHash(name)
	for b := range f.sums {
		good := false
		var bad []int
		var firstBad *ErrCorrupt
		for r := 0; r < f.repl; r++ {
			state := fs.copyState(f, nh, b, r)
			if state == repGood {
				good = true
				continue
			}
			fs.markDetected(f, b, r, state)
			bad = append(bad, r)
			if state == repCorrupt && firstBad == nil {
				firstBad = &ErrCorrupt{File: name, Block: b, Replica: r}
			}
		}
		if !good {
			if err == nil {
				err = &ErrDataLoss{File: name, Block: b, Replicas: f.repl, Cause: firstBad}
			}
			continue
		}
		for _, r := range bad {
			fs.heal(f, b, r)
			restored++
			restoredBytes += f.blockSpan(b, fs.opts.BlockSize)
		}
	}
	return restored, restoredBytes, err
}

// VerifyFile checksums every replica copy of every block of one file,
// re-replicating bad copies back to the target factor. It returns
// *ErrDataLoss when some block has no good copy left (recoverable
// blocks are still healed first).
func (fs *FS) VerifyFile(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		return &ErrNotExist{Name: name}
	}
	_, _, err := fs.verifyFileFull(name, f)
	return err
}

// ScrubReport summarizes one full Scrub pass.
type ScrubReport struct {
	FilesScanned     int64
	BlocksScanned    int64
	ReplicasRestored int64
	BytesRestored    int64
}

// Scrub checksums every replica copy of every block of every file, in
// lexical file order, healing what it can. It returns the first
// *ErrDataLoss found (after completing the pass) so callers learn both
// the damage and the repairs.
func (fs *FS) Scrub() (ScrubReport, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	names := make([]string, 0, len(fs.files))
	for n := range fs.files {
		names = append(names, n)
	}
	sort.Strings(names)
	var rep ScrubReport
	var firstErr error
	for _, n := range names {
		f := fs.files[n]
		rep.FilesScanned++
		rep.BlocksScanned += int64(len(f.sums))
		restored, bytes, err := fs.verifyFileFull(n, f)
		rep.ReplicasRestored += restored
		rep.BytesRestored += bytes
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return rep, firstErr
}

// BlockChecksums returns a copy of a file's per-block checksums, as
// computed incrementally at append time.
func (fs *FS) BlockChecksums(name string) ([]uint64, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		return nil, &ErrNotExist{Name: name}
	}
	sums := make([]uint64, len(f.sums))
	copy(sums, f.sums)
	return sums, nil
}

// Placement returns, for each block of a file, the machines its
// replicas are placed on, in failover order. Placement is a pure hash
// of (file, block, replica): replicas of one block land on distinct
// machines while the cluster has enough of them (machines wrap only
// when Replication exceeds Machines), and the same file always places
// identically, independent of scheduling or fault state.
func (fs *FS) Placement(name string) ([][]int, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		return nil, &ErrNotExist{Name: name}
	}
	nh := nameHash(name)
	out := make([][]int, len(f.sums))
	for b := range out {
		out[b] = placeBlock(nh, b, f.repl, fs.opts.Machines)
	}
	return out, nil
}

// placeBlock picks the machines for one block's replicas: each replica
// draws without replacement from the machines not yet holding a copy,
// refilling the pool only when the factor exceeds the cluster.
func placeBlock(nh uint64, b, repl, machines int) []int {
	out := make([]int, 0, repl)
	var avail []int
	for r := 0; r < repl; r++ {
		if len(avail) == 0 {
			avail = make([]int, machines)
			for m := range avail {
				avail[m] = m
			}
		}
		k := int(storageHash(0, nh, uint64(b), uint64(r), kindPlace) % uint64(len(avail)))
		out = append(out, avail[k])
		avail = append(avail[:k], avail[k+1:]...)
	}
	return out
}
