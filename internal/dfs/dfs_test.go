package dfs

import (
	"errors"
	"strings"
	"sync"
	"testing"
)

func TestCreateWriteRead(t *testing.T) {
	fs := New(Options{})
	w, err := fs.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	w.Append("x", 10)
	w.Append("y", 20)
	w.Close()
	recs, err := fs.ReadAll("a")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Data != "x" || recs[1].Size != 20 {
		t.Fatalf("records = %+v", recs)
	}
}

func TestCreateDuplicate(t *testing.T) {
	fs := New(Options{})
	if _, err := fs.Create("a"); err != nil {
		t.Fatal(err)
	}
	_, err := fs.Create("a")
	var ee *ErrExist
	if !errors.As(err, &ee) || ee.Name != "a" {
		t.Fatalf("want ErrExist, got %v", err)
	}
}

func TestReadMissing(t *testing.T) {
	fs := New(Options{})
	_, err := fs.ReadAll("nope")
	var ne *ErrNotExist
	if !errors.As(err, &ne) {
		t.Fatalf("want ErrNotExist, got %v", err)
	}
}

func TestStatsAccounting(t *testing.T) {
	fs := New(Options{BlockSize: 100, Replication: 3})
	w, _ := fs.Create("f")
	w.Append(1, 150)
	w.Append(2, 60)
	w.Close()
	if _, err := fs.ReadAll("f"); err != nil {
		t.Fatal(err)
	}
	s := fs.Stats()
	if s.BytesWritten != 210 {
		t.Fatalf("BytesWritten=%d", s.BytesWritten)
	}
	if s.BytesReplWrite != 630 {
		t.Fatalf("BytesReplWrite=%d", s.BytesReplWrite)
	}
	if s.BlocksWritten != 3 { // ceil(210/100)
		t.Fatalf("BlocksWritten=%d", s.BlocksWritten)
	}
	if s.BytesRead != 210 || s.RecordsRead != 2 || s.RecordsWritten != 2 {
		t.Fatalf("stats=%+v", s)
	}
	if s.FilesCreated != 1 {
		t.Fatalf("FilesCreated=%d", s.FilesCreated)
	}
}

func TestRereadChargesAgain(t *testing.T) {
	// The DRI optimization (read input once, not twice) must be visible.
	fs := New(Options{})
	w, _ := fs.Create("f")
	w.Append(1, 100)
	w.Close()
	fs.ReadAll("f")
	fs.ReadAll("f")
	if got := fs.Stats().BytesRead; got != 200 {
		t.Fatalf("BytesRead=%d want 200", got)
	}
}

func TestSplits(t *testing.T) {
	fs := New(Options{})
	w, _ := fs.Create("f")
	for i := 0; i < 10; i++ {
		w.Append(i, 1)
	}
	w.Close()
	splits, err := fs.Splits("f", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 3 {
		t.Fatalf("%d splits", len(splits))
	}
	total := 0
	for _, s := range splits {
		total += len(s)
	}
	if total != 10 {
		t.Fatalf("splits lost records: %d", total)
	}
	// More splits than records: trailing splits empty, nothing lost.
	splits, _ = fs.Splits("f", 20)
	total = 0
	for _, s := range splits {
		total += len(s)
	}
	if total != 10 {
		t.Fatalf("over-split lost records: %d", total)
	}
}

func TestDeleteAndList(t *testing.T) {
	fs := New(Options{})
	for _, n := range []string{"b", "a", "c"} {
		w, _ := fs.Create(n)
		w.Close()
	}
	got := fs.List()
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Fatalf("List=%v", got)
	}
	if err := fs.Delete("b"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("b") {
		t.Fatal("deleted file still exists")
	}
	if err := fs.Delete("b"); err == nil {
		t.Fatal("double delete should fail")
	}
	if fs.Stats().FilesDeleted != 1 {
		t.Fatal("FilesDeleted not counted")
	}
}

func TestSizeAndNumRecords(t *testing.T) {
	fs := New(Options{})
	w, _ := fs.Create("f")
	w.AppendAll([]Record{{Data: 1, Size: 5}, {Data: 2, Size: 7}})
	w.Close()
	if sz, _ := fs.Size("f"); sz != 12 {
		t.Fatalf("Size=%d", sz)
	}
	if n, _ := fs.NumRecords("f"); n != 2 {
		t.Fatalf("NumRecords=%d", n)
	}
	if _, err := fs.Size("missing"); err == nil {
		t.Fatal("Size of missing file should fail")
	}
}

func TestResetStats(t *testing.T) {
	fs := New(Options{})
	w, _ := fs.Create("f")
	w.Append(1, 1)
	w.Close()
	fs.ResetStats()
	if s := fs.Stats(); s != (Stats{}) {
		t.Fatalf("stats not reset: %+v", s)
	}
	// File still readable after reset.
	if !fs.Exists("f") {
		t.Fatal("reset dropped files")
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{BytesWritten: 1, BytesRead: 2, RecordsRead: 3}
	a.Add(Stats{BytesWritten: 10, BytesRead: 20, RecordsRead: 30, FilesCreated: 1})
	if a.BytesWritten != 11 || a.BytesRead != 22 || a.RecordsRead != 33 || a.FilesCreated != 1 {
		t.Fatalf("Add=%+v", a)
	}
}

func TestStagedFileInvisibleUntilClose(t *testing.T) {
	// The task-attempt commit protocol: between Create and Close the file
	// must be invisible to every read-side method, so a failed attempt
	// never exposes partial output.
	fs := New(Options{})
	w, err := fs.Create("part")
	if err != nil {
		t.Fatal(err)
	}
	w.Append("half", 10)
	if fs.Exists("part") {
		t.Fatal("staged file visible via Exists")
	}
	if _, err := fs.ReadAll("part"); err == nil {
		t.Fatal("staged file readable")
	}
	if _, err := fs.Size("part"); err == nil {
		t.Fatal("staged file has observable Size")
	}
	if _, err := fs.NumRecords("part"); err == nil {
		t.Fatal("staged file has observable NumRecords")
	}
	for _, n := range fs.List() {
		if n == "part" {
			t.Fatal("staged file listed")
		}
	}
	if err := fs.Delete("part"); err == nil {
		t.Fatal("staged file deletable")
	}
	// The name is reserved while staged: a speculative duplicate attempt
	// racing to the same output must fail, not double-write.
	if _, err := fs.Create("part"); err == nil {
		t.Fatal("staged name not reserved")
	}
	w.Close()
	recs, err := fs.ReadAll("part")
	if err != nil || len(recs) != 1 {
		t.Fatalf("published file unreadable: recs=%v err=%v", recs, err)
	}
}

func TestAbortDiscardsStagedFile(t *testing.T) {
	fs := New(Options{})
	w, err := fs.Create("doomed")
	if err != nil {
		t.Fatal(err)
	}
	w.Append(1, 100)
	w.Abort()
	if fs.Exists("doomed") {
		t.Fatal("aborted file published")
	}
	if fs.Stats().FilesAborted != 1 {
		t.Fatalf("FilesAborted=%d", fs.Stats().FilesAborted)
	}
	// The physical write happened before the attempt died; it stays
	// charged.
	if fs.Stats().BytesWritten != 100 {
		t.Fatalf("BytesWritten=%d", fs.Stats().BytesWritten)
	}
	// The name is released: a retry attempt can recreate and commit.
	w2, err := fs.Create("doomed")
	if err != nil {
		t.Fatal(err)
	}
	w2.Append(2, 50)
	w2.Close()
	recs, err := fs.ReadAll("doomed")
	if err != nil || len(recs) != 1 || recs[0].Data != 2 {
		t.Fatalf("retried file wrong: recs=%v err=%v", recs, err)
	}
	// Abort after Close must not unpublish.
	w2.Abort()
	if !fs.Exists("doomed") {
		t.Fatal("Abort after Close unpublished the file")
	}
}

func TestDoubleClosePanics(t *testing.T) {
	fs := New(Options{BlockSize: 10})
	w, _ := fs.Create("f")
	w.Append(1, 25)
	w.Close()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("double Close did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "double Close") || !strings.Contains(msg, `"f"`) {
			t.Fatalf("double Close panic message unclear: %v", r)
		}
	}()
	w.Close()
}

func TestCloseAfterAbortPanics(t *testing.T) {
	fs := New(Options{})
	w, _ := fs.Create("g")
	w.Abort()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Close after Abort did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "Close after Abort") || !strings.Contains(msg, `"g"`) {
			t.Fatalf("Close-after-Abort panic message unclear: %v", r)
		}
		if fs.Exists("g") {
			t.Fatal("Close after Abort published the file")
		}
	}()
	w.Close()
}

func TestAppendAfterAbortPanics(t *testing.T) {
	fs := New(Options{})
	w, _ := fs.Create("h")
	w.Abort()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Append after Abort did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "aborted writer") || !strings.Contains(msg, `"h"`) {
			t.Fatalf("Append-after-Abort panic message unclear: %v", r)
		}
	}()
	w.Append(1, 1)
}

func TestDoubleAbortNoOp(t *testing.T) {
	fs := New(Options{})
	w, _ := fs.Create("g")
	w.Abort()
	w.Abort()
	if fs.Stats().FilesAborted != 1 {
		t.Fatalf("FilesAborted=%d after double Abort", fs.Stats().FilesAborted)
	}
}

func TestAppendAfterClosePanics(t *testing.T) {
	fs := New(Options{})
	w, _ := fs.Create("f")
	w.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Append after Close did not panic")
		}
	}()
	w.Append(1, 1)
}

func TestConcurrentAppend(t *testing.T) {
	fs := New(Options{})
	w, _ := fs.Create("f")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				w.Append(i, 1)
			}
		}()
	}
	wg.Wait()
	w.Close()
	if n, _ := fs.NumRecords("f"); n != 800 {
		t.Fatalf("lost records under concurrency: %d", n)
	}
	if fs.Stats().BytesWritten != 800 {
		t.Fatalf("bytes=%d", fs.Stats().BytesWritten)
	}
}
