// Package mr is a deterministic MapReduce engine that simulates the
// Hadoop cluster HaTen2 ran on. Jobs execute real map, shuffle, and
// reduce phases over goroutine workers, staging all input and output
// through a simulated distributed file system (package dfs).
//
// Two kinds of measurement come out of every job:
//
//   - exact counters (records and bytes mapped, shuffled, reduced, and
//     materialized between jobs) — these reproduce the cost summaries in
//     Tables III and IV of the paper;
//   - a simulated running time from a calibrated cost model with a fixed
//     per-job startup charge, per-machine parallel work, and per-machine
//     coordination overhead — this reproduces the running-time *shapes*
//     of Figures 1, 7, and 8 (who wins, where methods fail, and how
//     speedup flattens as machines are added).
//
// Wall-clock time is also recorded so the benchmarks can report both.
package mr

import (
	"fmt"
	"sync"

	"github.com/haten2/haten2/internal/dfs"
	"github.com/haten2/haten2/internal/obs"
)

// CostModel holds the calibrated constants of the simulated-time model.
// The defaults approximate a Hadoop-1.x cluster of the paper's era
// (quad-core Xeon machines, 1 GbE, JVM-per-task job latency).
type CostModel struct {
	// JobStartup is the fixed per-job charge in seconds (job scheduling,
	// JVM spawning). This is what HaTen2-DRI's job integration saves.
	JobStartup float64
	// PerMapRecord and PerReduceRecord are seconds of CPU per record,
	// divided across machines.
	PerMapRecord    float64
	PerReduceRecord float64
	// PerShuffleByte is seconds per byte moved through the shuffle,
	// divided across machines (network + spill).
	PerShuffleByte float64
	// PerDFSByte is seconds per byte read from or written to the DFS,
	// divided across machines.
	PerDFSByte float64
	// CoordPerMachine is seconds of per-job coordination overhead added
	// per machine (heartbeats, synchronization); it is what makes the
	// machine-scalability curve in Figure 8 flatten.
	CoordPerMachine float64
	// RetryBackoff is the base scheduler delay in seconds before a
	// failed task attempt is re-launched; attempt a of a task waits
	// RetryBackoff·2^(a-1) (JobTracker heartbeat + re-scheduling
	// latency, growing as Hadoop deprioritizes repeat offenders). Only
	// charged when a FaultPlan injects failures.
	RetryBackoff float64
	// SpeculativeDelay is how many seconds a task must lag before the
	// scheduler launches a speculative backup attempt. Only relevant
	// when a FaultPlan injects stragglers.
	SpeculativeDelay float64
}

// DefaultCostModel returns the calibrated constants used by the
// experiment harness.
func DefaultCostModel() CostModel {
	return CostModel{
		JobStartup:       15.0,
		PerMapRecord:     1.2e-6,
		PerReduceRecord:  1.2e-6,
		PerShuffleByte:   2.5e-8, // ~40 MB/s effective shuffle per machine
		PerDFSByte:       1.0e-8, // ~100 MB/s effective DFS per machine
		CoordPerMachine:  0.05,
		RetryBackoff:     10.0, // one JobTracker heartbeat + JVM respawn
		SpeculativeDelay: 30.0,
	}
}

// JobTime evaluates the model for one job on m machines.
func (c CostModel) JobTime(m int, st JobStats) float64 {
	if m <= 0 {
		m = 1
	}
	mf := float64(m)
	return c.JobStartup +
		float64(st.InputRecords)*c.PerMapRecord/mf +
		float64(st.ShuffleBytes)*c.PerShuffleByte/mf +
		float64(st.ShuffleRecords)*c.PerReduceRecord/mf +
		float64(st.InputBytes+st.OutputBytes)*c.PerDFSByte/mf +
		c.CoordPerMachine*mf
}

// JobStats records what one MapReduce job did.
type JobStats struct {
	Name           string
	MapTasks       int
	ReduceTasks    int
	InputRecords   int64
	InputBytes     int64
	ShuffleRecords int64
	ShuffleBytes   int64
	OutputRecords  int64
	OutputBytes    int64
	// Fault-recovery accounting, populated when a FaultPlan is
	// installed. MapAttempts/ReduceAttempts count every launched attempt
	// (first runs, retries, and speculative backups); without a plan
	// they equal MapTasks/ReduceTasks.
	MapAttempts    int
	ReduceAttempts int
	// TaskRetries counts failed attempts (each forced a retry, or — for
	// the final one — failed the job).
	TaskRetries int
	// SpeculativeTasks counts backup attempts launched for stragglers;
	// SpeculativeWins counts backups that finished before the original.
	SpeculativeTasks int
	SpeculativeWins  int
	// WastedRecords/WastedBytes are the duplicate work of failed and
	// losing-speculative attempts: records reprocessed and intermediate
	// bytes re-emitted that a fault-free run never touches.
	WastedRecords int64
	WastedBytes   int64
	// BlacklistedMachines counts machines this job stopped scheduling on
	// after repeated failures.
	BlacklistedMachines int
	// PenaltySeconds is the simulated recovery time added to SimSeconds:
	// the critical path of re-executions, exponential retry backoff, and
	// straggler lag (net of speculative rescue).
	PenaltySeconds float64
	// Storage-fault accounting, populated when the installed plan's
	// storage section is active: the per-job delta of the dfs.Stats
	// counters of the same names, attributed to the job whose input
	// reads detected the bad copies.
	CorruptBlocks  int64
	LostReplicas   int64
	FailoverReads  int64
	FailoverBytes  int64
	ReReplications int64
	ScrubBytes     int64
	// StorageSeconds is the simulated time of failover re-reads and
	// re-replication scrubs, added to SimSeconds alongside
	// PenaltySeconds.
	StorageSeconds float64
	SimSeconds     float64
}

// Totals aggregates counters across the jobs a cluster has run.
type Totals struct {
	Jobs           int
	InputRecords   int64
	InputBytes     int64
	ShuffleRecords int64
	ShuffleBytes   int64
	OutputRecords  int64
	OutputBytes    int64
	// MaxShuffleRecords and MaxShuffleBytes track the largest single-job
	// shuffle — the paper's "max intermediate data" for in-flight data.
	MaxShuffleRecords int64
	MaxShuffleBytes   int64
	// MaxMaterializedRecords tracks the largest between-jobs dataset
	// written to the DFS — the quantity Tables III/IV bound.
	MaxMaterializedRecords int64
	// Fault-recovery aggregates (see the JobStats fields of the same
	// names).
	TaskRetries      int
	SpeculativeTasks int
	SpeculativeWins  int
	WastedRecords    int64
	WastedBytes      int64
	PenaltySeconds   float64
	// Storage-fault aggregates (see the JobStats fields of the same
	// names).
	CorruptBlocks  int64
	LostReplicas   int64
	FailoverReads  int64
	FailoverBytes  int64
	ReReplications int64
	ScrubBytes     int64
	StorageSeconds float64
	SimSeconds     float64
}

// ErrResourceExhausted reports that a job exceeded the cluster's
// configured shuffle capacity — the simulator's equivalent of a Hadoop
// job dying with out-of-memory or out-of-disk ("o.o.m" in Figures 1
// and 7).
type ErrResourceExhausted struct {
	Job            string
	ShuffleRecords int64
	Limit          int64
}

func (e *ErrResourceExhausted) Error() string {
	return fmt.Sprintf("mr: job %q exhausted cluster resources: %d shuffle records > limit %d",
		e.Job, e.ShuffleRecords, e.Limit)
}

// Config describes a simulated cluster.
type Config struct {
	// Machines is the number of machines (the paper uses 10–40).
	Machines int
	// SlotsPerMachine is the number of concurrent map/reduce tasks per
	// machine (4 for the paper's quad-core nodes).
	SlotsPerMachine int
	// MaxShuffleRecords caps the number of records any single job may
	// shuffle before it is killed with ErrResourceExhausted. Zero means
	// unlimited.
	MaxShuffleRecords int64
	// Cost is the simulated-time model; zero value takes defaults.
	Cost CostModel
	// Backend, when non-nil, is installed on the new cluster as if by
	// SetBackend: an out-of-process backend routes every job's shuffle
	// partitions and inputs through it. nil keeps the in-process data
	// plane.
	Backend Backend
}

// Cluster is a simulated Hadoop cluster: a DFS plus job execution with
// counters. Methods are safe for concurrent use, though jobs are
// typically run sequentially (as Hadoop job chains are).
type Cluster struct {
	cfg Config
	fs  *dfs.FS

	mu     sync.Mutex
	totals Totals
	jobs   []JobStats
	hints  map[string]shuffleHint
	// faults is the installed failure schedule (nil: fault-free), and
	// jobSeq numbers the jobs started since it was installed — the
	// coordinate every fault decision is keyed by.
	faults *FaultPlan
	jobSeq int64
	// tracer, when non-nil, receives a "job" span with phase children
	// for every job this cluster records (see trace.go).
	tracer *obs.Tracer
	// tmpSeq numbers the temporary file names handed out by NextTmp.
	// Scoping the counter to the cluster (rather than a process global)
	// makes the file names — and therefore job names and traces — of a
	// run on a fresh cluster reproducible regardless of what ran before
	// it in the same process.
	tmpSeq int64
	// backend, when non-nil and out-of-process, is the data plane jobs
	// route their shuffle partitions and inputs through (backend.go).
	// nil runs the in-process fast path.
	backend Backend
}

// shuffleHint carries sizing statistics from a completed job to the
// next run of a job with the same name, so the engine can presize its
// map-side buckets, reducer group maps, and output buffers. ALS drivers
// re-run structurally identical jobs every iteration (same name, same
// data shape), which makes the previous run an excellent predictor.
// Hints only ever affect buffer capacities — never grouping or ordering
// — so they cannot perturb determinism.
type shuffleHint struct {
	pairsPerBucket  int64 // shuffle pairs per (map task, reducer) bucket
	pairsPerReducer int64 // shuffle pairs per reduce task (sizes the value arena)
	keysPerReducer  int64 // distinct keys per reduce task
	outPerReducer   int64 // output records per reduce task
}

// NewCluster creates a cluster with cfg and a fresh DFS whose replicas
// are placed across the cluster's machines.
func NewCluster(cfg Config) *Cluster {
	if cfg.Machines <= 0 {
		cfg.Machines = 1
	}
	return NewClusterWithFS(cfg, dfs.New(dfs.Options{Machines: cfg.Machines}))
}

// NewClusterWithFS creates a cluster backed by an existing file system —
// the restart-after-crash pattern: HDFS (replicated blocks) survives a
// JobTracker death, so a cluster brought up on the old cluster's FS can
// resume an iterative computation from the checkpoints it finds there.
func NewClusterWithFS(cfg Config, fs *dfs.FS) *Cluster {
	if cfg.Machines <= 0 {
		cfg.Machines = 1
	}
	if cfg.SlotsPerMachine <= 0 {
		cfg.SlotsPerMachine = 4
	}
	if cfg.Cost == (CostModel{}) {
		cfg.Cost = DefaultCostModel()
	}
	c := &Cluster{cfg: cfg, fs: fs}
	if cfg.Backend != nil {
		c.SetBackend(cfg.Backend)
	}
	return c
}

// InstallFaultPlan installs (or, with nil, removes) a failure schedule
// and restarts the job sequence the plan's decisions are keyed by, so
// the same plan on the same job sequence injects the same faults.
// Deterministic injection assumes jobs are submitted in a deterministic
// order (drivers run job chains sequentially); concurrent Run callers
// race for sequence numbers and get scheduling-dependent faults —
// outputs remain exact either way.
func (c *Cluster) InstallFaultPlan(p *FaultPlan) {
	c.mu.Lock()
	c.jobSeq = 0
	if p == nil {
		c.faults = nil
	} else {
		q := p.withDefaults()
		c.faults = &q
	}
	c.mu.Unlock()
	// Push the plan's storage section down into the DFS. Done outside
	// c.mu: fs.mu is not ordered under the cluster lock.
	if p != nil && (p.BlockCorruptRate > 0 || p.ReplicaLossRate > 0) {
		c.fs.InstallFaults(&dfs.StorageFaults{
			Seed:        p.Seed,
			CorruptRate: p.BlockCorruptRate,
			LossRate:    p.ReplicaLossRate,
		})
	} else {
		c.fs.InstallFaults(nil)
	}
}

// startJob assigns the next job sequence number and returns the
// installed fault plan, or ErrClusterKilled when the plan's kill budget
// is spent.
func (c *Cluster) startJob(name string) (*FaultPlan, int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	seq := c.jobSeq
	c.jobSeq++
	p := c.faults
	if p != nil && p.KillAfterJobs > 0 && seq >= int64(p.KillAfterJobs) {
		return nil, seq, &ErrClusterKilled{Job: name, AfterJobs: p.KillAfterJobs}
	}
	return p, seq, nil
}

// SetTracer attaches a tracer to the cluster (nil detaches). Every job
// recorded from then on emits a "job" span with map/shuffle/reduce
// (and, under faults, recovery) phase children stamped with the cost
// model's simulated time.
func (c *Cluster) SetTracer(tr *obs.Tracer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tracer = tr
}

// Tracer returns the attached tracer, or nil. Drivers use it to open
// their own run/iteration/stage spans around the jobs they submit; the
// obs methods are nil-safe, so callers need no nil check of their own.
func (c *Cluster) Tracer() *obs.Tracer {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tracer
}

// NextTmp returns the next cluster-scoped temporary-file sequence
// number, starting at 1.
func (c *Cluster) NextTmp() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tmpSeq++
	return c.tmpSeq
}

// FS returns the cluster's distributed file system.
func (c *Cluster) FS() *dfs.FS { return c.fs }

// Machines returns the configured machine count.
func (c *Cluster) Machines() int { return c.cfg.Machines }

// Workers returns the total number of task slots.
func (c *Cluster) Workers() int { return c.cfg.Machines * c.cfg.SlotsPerMachine }

// Totals returns a snapshot of the aggregated job counters.
func (c *Cluster) Totals() Totals {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.totals
}

// Jobs returns a copy of the per-job statistics in execution order.
func (c *Cluster) Jobs() []JobStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]JobStats, len(c.jobs))
	copy(out, c.jobs)
	return out
}

// ResetCounters zeroes the cluster totals and job log. DFS contents,
// DFS statistics, and buffer-sizing hints (performance metadata, not
// counters) are left untouched.
func (c *Cluster) ResetCounters() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.totals = Totals{}
	c.jobs = nil
}

// hint returns the sizing statistics recorded by the previous run of a
// job with this name, if any.
func (c *Cluster) hint(name string) (shuffleHint, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	h, ok := c.hints[name]
	return h, ok
}

// setHint stores sizing statistics for the next run of the named job.
func (c *Cluster) setHint(name string, h shuffleHint) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.hints == nil {
		c.hints = make(map[string]shuffleHint)
	}
	c.hints[name] = h
}

// record merges one finished job's stats into the totals.
func (c *Cluster) record(st JobStats) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.jobs = append(c.jobs, st)
	t := &c.totals
	t.Jobs++
	t.InputRecords += st.InputRecords
	t.InputBytes += st.InputBytes
	t.ShuffleRecords += st.ShuffleRecords
	t.ShuffleBytes += st.ShuffleBytes
	t.OutputRecords += st.OutputRecords
	t.OutputBytes += st.OutputBytes
	if st.ShuffleRecords > t.MaxShuffleRecords {
		t.MaxShuffleRecords = st.ShuffleRecords
	}
	if st.ShuffleBytes > t.MaxShuffleBytes {
		t.MaxShuffleBytes = st.ShuffleBytes
	}
	if st.OutputRecords > t.MaxMaterializedRecords {
		t.MaxMaterializedRecords = st.OutputRecords
	}
	t.TaskRetries += st.TaskRetries
	t.SpeculativeTasks += st.SpeculativeTasks
	t.SpeculativeWins += st.SpeculativeWins
	t.WastedRecords += st.WastedRecords
	t.WastedBytes += st.WastedBytes
	t.PenaltySeconds += st.PenaltySeconds
	t.CorruptBlocks += st.CorruptBlocks
	t.LostReplicas += st.LostReplicas
	t.FailoverReads += st.FailoverReads
	t.FailoverBytes += st.FailoverBytes
	t.ReReplications += st.ReReplications
	t.ScrubBytes += st.ScrubBytes
	t.StorageSeconds += st.StorageSeconds
	t.SimSeconds += st.SimSeconds
	if c.tracer != nil {
		// Tracing under c.mu is safe here: obs.Tracer's mu is a leaf lock
		// (the tracer never calls back into mr), Emit is pure in-memory
		// append with no I/O, and record is the single serialization point
		// for job totals, so the trace rows inherit the counters' order.
		//haten2:allow lockscope tracer mu is a leaf lock and Emit is in-memory only, no inversion or I/O under c.mu
		c.traceJob(st)
	}
}
