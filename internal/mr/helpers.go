package mr

import "github.com/haten2/haten2/internal/dfs"

// HashInt64 is a partitioner for int64 keys (Fibonacci hashing, good
// spread for both dense and strided key sets).
func HashInt64(k int64) uint64 {
	return uint64(k) * 0x9E3779B97F4A7C15
}

// HashPair is a partitioner for [2]int64 keys.
func HashPair(k [2]int64) uint64 {
	h := uint64(k[0])*0x9E3779B97F4A7C15 ^ uint64(k[1])*0xC2B2AE3D27D4EB4F
	h ^= h >> 29
	return h * 0xBF58476D1CE4E5B9
}

// WriteFile creates a DFS file containing items, each charged size(item)
// bytes. It replaces any existing file of the same name (delete+create),
// which is the common pattern for per-iteration factor matrices.
func WriteFile[T any](c *Cluster, name string, items []T, size func(T) int64) error {
	if c.fs.Exists(name) {
		if err := c.fs.Delete(name); err != nil {
			return err
		}
	}
	w, err := c.fs.Create(name)
	if err != nil {
		return err
	}
	recs := make([]dfs.Record, len(items))
	for i, it := range items {
		recs[i] = dfs.Record{Data: it, Size: size(it)}
	}
	w.AppendAll(recs)
	w.Close()
	return nil
}

// ReadFile reads back a DFS file written by WriteFile, asserting every
// record to type T.
func ReadFile[T any](c *Cluster, name string) ([]T, error) {
	recs, err := c.fs.ReadAll(name)
	if err != nil {
		return nil, err
	}
	out := make([]T, len(recs))
	for i, r := range recs {
		out[i] = r.Data.(T)
	}
	return out, nil
}

// HashTriple is a partitioner for [3]int64 keys.
func HashTriple(k [3]int64) uint64 {
	h := uint64(k[0])*0x9E3779B97F4A7C15 ^ uint64(k[1])*0xC2B2AE3D27D4EB4F ^ uint64(k[2])*0x165667B19E3779F9
	h ^= h >> 31
	return h * 0xBF58476D1CE4E5B9
}
