package mr

// HashInt64 is a partitioner for int64 keys (Fibonacci hashing, good
// spread for both dense and strided key sets).
func HashInt64(k int64) uint64 {
	return uint64(k) * 0x9E3779B97F4A7C15
}

// Hash64 is a full-avalanche partitioner for int64 keys: a multiply
// followed by the splitmix64 finalizer (mix64, fault.go). Prefer it
// for new jobs whose key distribution is unknown; the existing HaTen2
// plans keep the Fibonacci/mixing helpers above because reducer
// routing feeds output order and their outputs are pinned bit-for-bit.
//
// The reduce-side group table (group.go) probes on the shuffled
// partition hash pushed through the same mix64 finalizer, so a
// partitioner here only has to route well — the engine's one extra mix
// per pair replaces the per-key generic runtime hashing the old
// map[K]int32 grouping paid in both passes.
func Hash64(k int64) uint64 {
	return mix64(uint64(k) * 0x9E3779B97F4A7C15)
}

// HashPair is a partitioner for [2]int64 keys.
func HashPair(k [2]int64) uint64 {
	h := uint64(k[0])*0x9E3779B97F4A7C15 ^ uint64(k[1])*0xC2B2AE3D27D4EB4F
	h ^= h >> 29
	return h * 0xBF58476D1CE4E5B9
}

// WriteFile creates a DFS file containing items, charged size(item)
// bytes each, stored as a single typed block (no per-record boxing).
// It replaces any existing file of the same name (delete+create),
// which is the common pattern for per-iteration factor matrices.
func WriteFile[T any](c *Cluster, name string, items []T, size func(T) int64) error {
	if c.fs.Exists(name) {
		if err := c.fs.Delete(name); err != nil {
			return err
		}
	}
	w, err := c.fs.Create(name)
	if err != nil {
		return err
	}
	var total int64
	for _, it := range items {
		total += size(it)
	}
	// The DFS owns a block payload once appended, so hand it a copy and
	// leave the caller's slice untouched.
	blk := make([]T, len(items))
	copy(blk, items)
	w.AppendBlock(blk, len(blk), total)
	w.Close()
	return nil
}

// WriteFileOwned is WriteFile for a slice the caller hands off: items
// becomes the file's block payload with no defensive copy, and the
// caller must not read or write items afterwards — the DFS owns it.
// Use it when a plan materializes a large intermediate purely to write
// it (IMHP's 𝒯′/𝒯″ splits), where WriteFile's copy would double the
// allocation.
//
// When it replaces an existing block file of the same element type, the
// replaced payload is reclaimed into the engine's buffer pools — the
// per-iteration rewrite cycle (Acquire → fill → WriteFileOwned) then
// reuses two slab generations forever instead of faulting in fresh
// ones. This is only sound because jobs run to completion before the
// driver rewrites their inputs: any zero-copy view of the old block
// (BlockView, MapInput) is dead by the time the file is replaced.
func WriteFileOwned[T any](c *Cluster, name string, items []T, size func(T) int64) error {
	if c.fs.Exists(name) {
		//haten2:allow errcheck-io Exists-guarded view of a file we are about to delete; a non-block file just skips the reclaim
		if payload, _, ok, _ := c.fs.BlockView(name); ok {
			if old, isT := payload.([]T); isT {
				// The one sanctioned pool return of DFS storage: the
				// file is deleted on the next line, and jobs run to
				// completion before the driver rewrites their inputs,
				// so no borrowed view of this payload can be live.
				//haten2:allow dfsborrow reclaiming the payload of the file being replaced; deleted immediately below, no live borrows by the sequential-job contract
				putSlice(old)
			}
		}
		if err := c.fs.Delete(name); err != nil {
			return err
		}
	}
	w, err := c.fs.Create(name)
	if err != nil {
		return err
	}
	var total int64
	for _, it := range items {
		total += size(it)
	}
	w.AppendBlock(items, len(items), total)
	w.Close()
	return nil
}

// ReadFile reads back a DFS file of T records. Block-written files
// (WriteFile, job outputs) are copied straight from the typed payload;
// per-record files are asserted record by record.
func ReadFile[T any](c *Cluster, name string) ([]T, error) {
	payload, n, ok, err := c.fs.BlockView(name)
	if err != nil {
		return nil, err
	}
	if ok {
		if s, isT := payload.([]T); isT {
			out := make([]T, n)
			copy(out, s)
			return out, nil
		}
		// Typed file of another element type: fall through to the boxed
		// view, which asserts per record.
	}
	recs, err := c.fs.ReadAll(name)
	if err != nil {
		return nil, err
	}
	out := make([]T, len(recs))
	for i, r := range recs {
		out[i] = r.Data.(T)
	}
	return out, nil
}

// Recycle hands a slice previously returned by Run (or any slice the
// caller owns outright) back to the engine's typed buffer pools, where
// the next job with the same record type will reuse its backing array.
// The caller must not touch s afterwards. Recycling is optional — an
// un-recycled output is ordinary garbage — but plans that materialize
// multi-million-record outputs and drop them within one step (IMHP's
// tagged stream) should recycle to keep the allocator off the engine's
// critical path.
func Recycle[T any](s []T) {
	putSlice(s)
}

// Acquire returns an empty slice with capacity ≥ n from the engine's
// typed buffer pools — the borrowing counterpart of Recycle. Plans that
// materialize a large intermediate every iteration (IMHP's 𝒯′/𝒯″
// splits) acquire instead of make so the slabs reclaimed by Recycle and
// WriteFileOwned's replace path circulate rather than accumulate as
// garbage.
func Acquire[T any](n int) []T {
	return getSlice[T](n)
}

// HashTriple is a partitioner for [3]int64 keys.
func HashTriple(k [3]int64) uint64 {
	h := uint64(k[0])*0x9E3779B97F4A7C15 ^ uint64(k[1])*0xC2B2AE3D27D4EB4F ^ uint64(k[2])*0x165667B19E3779F9
	h ^= h >> 31
	return h * 0xBF58476D1CE4E5B9
}
