package conformance

import (
	"testing"

	"github.com/haten2/haten2/internal/mr"
)

// TestConformanceInProcess runs the suite against the in-process engine
// itself. This is the suite's self-check: the baseline must pass its
// own battery, or the battery (not a backend) is what drifted.
func TestConformanceInProcess(t *testing.T) {
	RunConformance(t, func(t *testing.T) mr.Backend { return nil })
}

// TestConformanceLoopback runs the suite against the loopback backend:
// the full encode/ship/fetch/decode data plane with in-memory
// transport. A failure here and a pass in-process isolates the wire
// codec or the engine's ship/fetch seam, independent of sockets and
// processes.
func TestConformanceLoopback(t *testing.T) {
	RunConformance(t, func(t *testing.T) mr.Backend { return mr.NewLoopback() })
}
