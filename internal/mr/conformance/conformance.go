// Package conformance holds the cross-backend conformance suite: a
// reusable battery every mr.Backend implementation must pass to claim
// the engine's standing invariant — backends may change wall-clock time
// and transport statistics, never output bytes.
//
// The suite replays the nine golden traces of internal/obs (eight
// method×variant runs plus the storage-fault run) with the backend
// installed and requires byte-identical Chrome traces; sweeps the fault
// matrix (compute faults and storage faults across GOMAXPROCS 1, 4,
// and 16) against an in-process baseline; and runs PARAFAC and Tucker
// differentially, requiring bit-identical factor bytes — not approximate
// equality — between the backend and the in-process engine.
//
// Usage, from any backend's package:
//
//	func TestConformance(t *testing.T) {
//		conformance.RunConformance(t, func(t *testing.T) mr.Backend {
//			return newMyBackend(t)
//		})
//	}
//
// The factory is called once per cluster; the suite closes each backend
// when its sub-test ends. A nil-returning factory runs the suite
// against the in-process engine itself, which pins the suite's baseline
// expectations.
package conformance

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"github.com/haten2/haten2/internal/core"
	"github.com/haten2/haten2/internal/dfs"
	"github.com/haten2/haten2/internal/gen"
	"github.com/haten2/haten2/internal/mr"
	"github.com/haten2/haten2/internal/obs"
	"github.com/haten2/haten2/internal/tensor"
)

// Factory builds a fresh backend for one cluster. It is called once
// per cluster the suite creates (a backend's partition namespace is
// keyed by job name and cluster-scoped sequence number, so clusters
// must not share one). Returning nil selects the in-process engine.
type Factory func(t *testing.T) mr.Backend

// RunConformance executes the full conformance suite against backends
// produced by newBackend.
func RunConformance(t *testing.T, newBackend Factory) {
	t.Run("golden-traces", func(t *testing.T) { goldenTraces(t, newBackend) })
	t.Run("golden-storage-trace", func(t *testing.T) { goldenStorage(t, newBackend) })
	t.Run("fault-matrix", func(t *testing.T) { faultMatrix(t, newBackend) })
	t.Run("differential-parafac", func(t *testing.T) { differentialParafac(t, newBackend) })
	t.Run("differential-tucker", func(t *testing.T) { differentialTucker(t, newBackend) })
}

// install builds a backend for c and registers its teardown. It
// returns c for chaining.
func install(t *testing.T, c *mr.Cluster, newBackend Factory) *mr.Cluster {
	t.Helper()
	b := newBackend(t)
	if b == nil {
		return c
	}
	c.SetBackend(b)
	t.Cleanup(func() {
		if err := b.Close(); err != nil {
			t.Errorf("backend close: %v", err)
		}
	})
	return c
}

// goldenDir resolves internal/obs/testdata relative to this source
// file, so the suite finds the checked-in goldens no matter which
// package's test binary runs it.
func goldenDir(t *testing.T) string {
	t.Helper()
	_, self, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("conformance: cannot locate source directory")
	}
	return filepath.Join(filepath.Dir(self), "..", "..", "obs", "testdata")
}

func readGolden(t *testing.T, name string) []byte {
	t.Helper()
	want, err := os.ReadFile(filepath.Join(goldenDir(t), name))
	if err != nil {
		t.Fatalf("golden fixture: %v (regenerate with `go test ./internal/obs -run Golden -update`)", err)
	}
	return want
}

// goldenTraces replays the eight method×variant golden runs with the
// backend installed. The Chrome trace fingerprints the engine's
// schedule, counters, and cost attribution, so byte-equality here means
// the backend perturbed nothing observable.
func goldenTraces(t *testing.T, newBackend Factory) {
	for _, method := range []string{"parafac", "tucker"} {
		for _, v := range []core.Variant{core.Naive, core.DNN, core.DRN, core.DRI} {
			method, v := method, v
			t.Run(fmt.Sprintf("%s-%v", method, v), func(t *testing.T) {
				x := gen.Random(11, [3]int64{6, 6, 6}, 24)
				c := install(t, mr.NewCluster(mr.Config{Machines: 2, SlotsPerMachine: 2}), newBackend)
				tr := obs.NewTracer()
				c.SetTracer(tr)
				opt := core.Options{Variant: v, MaxIters: 2, Tol: 1e-12, Seed: 7}
				var err error
				switch method {
				case "parafac":
					_, err = core.ParafacALS(c, x, 2, opt)
				case "tucker":
					_, err = core.TuckerALS(c, x, [3]int{2, 2, 2}, opt)
				}
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if err := tr.WriteChromeTrace(&buf); err != nil {
					t.Fatal(err)
				}
				name := fmt.Sprintf("%s-%s.trace.json", method, strings.ToLower(v.String()))
				if want := readGolden(t, name); !bytes.Equal(buf.Bytes(), want) {
					t.Fatalf("trace differs from golden %s (%d vs %d bytes): backend changed observable behavior",
						name, buf.Len(), len(want))
				}
			})
		}
	}
}

// goldenStorage replays the ninth golden: PARAFAC-DRI on a tiny-block,
// replication-3 DFS under the pinned corruption/loss plan. Failover and
// scrub attribution must survive the backend unchanged.
func goldenStorage(t *testing.T, newBackend Factory) {
	x := gen.Random(11, [3]int64{6, 6, 6}, 24)
	c := install(t, mr.NewClusterWithFS(mr.Config{Machines: 2, SlotsPerMachine: 2},
		dfs.New(dfs.Options{BlockSize: 256, Replication: 3, Machines: 3})), newBackend)
	c.InstallFaultPlan(&mr.FaultPlan{Seed: 1, BlockCorruptRate: 0.1, ReplicaLossRate: 0.05})
	tr := obs.NewTracer()
	c.SetTracer(tr)
	if _, err := core.ParafacALS(c, x, 2, core.Options{Variant: core.DRI, MaxIters: 2, Tol: 1e-12, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	if tot := c.Totals(); tot.CorruptBlocks == 0 || tot.LostReplicas == 0 {
		t.Fatalf("pinned storage plan injected nothing: %+v", tot)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if want := readGolden(t, "parafac-dri-storage.trace.json"); !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("storage trace differs from golden (%d vs %d bytes)", buf.Len(), len(want))
	}
}

// faultMatrix sweeps fault plans across GOMAXPROCS settings. For every
// (plan, procs) cell the backend run's model and job counters must
// equal the in-process baseline of the same plan: fault injection is
// decided by pure hashes over the job sequence, so neither host
// scheduling nor the data plane may move a single retry.
func faultMatrix(t *testing.T, newBackend Factory) {
	plans := []struct {
		name string
		plan mr.FaultPlan
	}{
		{"task-faults", mr.FaultPlan{Seed: 1, FailureRate: 0.2, StragglerRate: 0.2}},
		{"storage-faults", mr.FaultPlan{Seed: 1, BlockCorruptRate: 0.1, ReplicaLossRate: 0.05}},
	}
	x := gen.Random(11, [3]int64{6, 6, 6}, 24)
	run := func(t *testing.T, factory Factory, plan mr.FaultPlan) (*tensor.Kruskal, []mr.JobStats) {
		t.Helper()
		c := mr.NewClusterWithFS(mr.Config{Machines: 2, SlotsPerMachine: 2},
			dfs.New(dfs.Options{BlockSize: 256, Replication: 3, Machines: 3}))
		if factory != nil {
			c = install(t, c, factory)
		}
		c.InstallFaultPlan(&plan)
		res, err := core.ParafacALS(c, x, 2, core.Options{Variant: core.DRI, MaxIters: 2, Tol: 1e-12, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		jobs := c.Jobs()
		for i := range jobs {
			// Temp-file numbers embedded in job names are cluster-scoped
			// and already deterministic; blanking them keeps the
			// comparison strictly about counters.
			jobs[i].Name = ""
		}
		return res.Model, jobs
	}
	for _, pc := range plans {
		pc := pc
		t.Run(pc.name, func(t *testing.T) {
			baseModel, baseJobs := run(t, nil, pc.plan)
			for _, procs := range []int{1, 4, 16} {
				procs := procs
				t.Run(fmt.Sprintf("procs-%d", procs), func(t *testing.T) {
					defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
					model, jobs := run(t, newBackend, pc.plan)
					if !modelBitsEqual(baseModel, model) {
						t.Fatal("factor bytes differ from in-process baseline under faults")
					}
					if !reflect.DeepEqual(baseJobs, jobs) {
						t.Fatalf("job counters differ from baseline:\nbase %+v\ngot  %+v", baseJobs, jobs)
					}
				})
			}
		})
	}
}

// differentialParafac runs PARAFAC on a larger tensor than the goldens
// use, on the backend and in process, per variant, and requires
// bit-identical factors, lambdas, and counters.
func differentialParafac(t *testing.T, newBackend Factory) {
	x := gen.Random(42, [3]int64{12, 10, 8}, 240)
	for _, v := range []core.Variant{core.DNN, core.DRI} {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			opt := core.Options{Variant: v, MaxIters: 3, Tol: 1e-12, Seed: 5}
			base := mr.NewCluster(mr.Config{Machines: 3, SlotsPerMachine: 2})
			want, err := core.ParafacALS(base, x, 3, opt)
			if err != nil {
				t.Fatal(err)
			}
			c := install(t, mr.NewCluster(mr.Config{Machines: 3, SlotsPerMachine: 2}), newBackend)
			got, err := core.ParafacALS(c, x, 3, opt)
			if err != nil {
				t.Fatal(err)
			}
			if !modelBitsEqual(want.Model, got.Model) {
				t.Fatal("factor bytes differ from in-process engine")
			}
			if got.Iters != want.Iters || got.Converged != want.Converged {
				t.Fatalf("trajectory differs: iters %d/%d converged %v/%v",
					got.Iters, want.Iters, got.Converged, want.Converged)
			}
			if a, b := base.Totals(), c.Totals(); a != b {
				t.Fatalf("counters differ:\nbase %+v\ngot  %+v", a, b)
			}
		})
	}
}

// differentialTucker is differentialParafac for the Tucker side, which
// exercises the CrossMerge jobs and their distinct shuffle types.
func differentialTucker(t *testing.T, newBackend Factory) {
	x := gen.Random(43, [3]int64{10, 9, 8}, 200)
	opt := core.Options{Variant: core.DRI, MaxIters: 2, Tol: 1e-12, Seed: 5}
	base := mr.NewCluster(mr.Config{Machines: 3, SlotsPerMachine: 2})
	want, err := core.TuckerALS(base, x, [3]int{2, 2, 2}, opt)
	if err != nil {
		t.Fatal(err)
	}
	c := install(t, mr.NewCluster(mr.Config{Machines: 3, SlotsPerMachine: 2}), newBackend)
	got, err := core.TuckerALS(c, x, [3]int{2, 2, 2}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Model, got.Model) {
		t.Fatal("Tucker model differs from in-process engine")
	}
	if !floatsBitsEqual(want.CoreNorms, got.CoreNorms) {
		t.Fatalf("core norms differ: %v vs %v", got.CoreNorms, want.CoreNorms)
	}
	if a, b := base.Totals(), c.Totals(); a != b {
		t.Fatalf("counters differ:\nbase %+v\ngot  %+v", a, b)
	}
}

// modelBitsEqual compares two Kruskal models bit-for-bit — Float64bits
// equality, stricter than ==, which would admit differing NaN payloads
// and conflate ±0.
func modelBitsEqual(a, b *tensor.Kruskal) bool {
	if len(a.Lambda) != len(b.Lambda) || len(a.Factors) != len(b.Factors) {
		return false
	}
	if !floatsBitsEqual(a.Lambda, b.Lambda) {
		return false
	}
	for i := range a.Factors {
		fa, fb := a.Factors[i], b.Factors[i]
		if fa.Rows != fb.Rows || fa.Cols != fb.Cols || !floatsBitsEqual(fa.Data, fb.Data) {
			return false
		}
	}
	return true
}

func floatsBitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}
