package mr

import (
	"errors"
	"testing"
)

// sumJob is a small deterministic job used throughout the fault tests:
// it fans each input record out to a handful of keys and sums per key.
func sumJob(name string) Job[int64, int64, int64] {
	return Job[int64, int64, int64]{
		Name: name,
		Inputs: []Input[int64, int64]{{File: "in", Map: func(r any, emit func(int64, int64)) {
			x := r.(int64)
			for i := int64(0); i < 4; i++ {
				emit((x+i)%16, x)
			}
		}}},
		Reduce: func(k int64, vs []int64, emit func(int64)) {
			var s int64
			for _, v := range vs {
				s += v
			}
			emit(k<<32 | s&0xffffffff)
		},
		Partition: HashInt64,
	}
}

func writeFaultInput(t *testing.T, c *Cluster) {
	t.Helper()
	items := make([]int64, 64)
	for i := range items {
		items[i] = int64(i)
	}
	if err := WriteFile(c, "in", items, func(int64) int64 { return 8 }); err != nil {
		t.Fatal(err)
	}
}

// TestFaultsNeverChangeOutputs pins the subsystem's standing invariant:
// a run under a heavy fault plan produces bit-identical outputs to the
// fault-free run — only simulated time and the recovery counters move.
func TestFaultsNeverChangeOutputs(t *testing.T) {
	c := testCluster(4)
	writeFaultInput(t, c)
	clean, cleanSt, err := Run(c, sumJob("clean"))
	if err != nil {
		t.Fatal(err)
	}

	c2 := testCluster(4)
	writeFaultInput(t, c2)
	c2.InstallFaultPlan(&FaultPlan{
		Seed:          7,
		FailureRate:   0.3,
		StragglerRate: 0.2,
		MaxAttempts:   20, // generous: the job must survive to compare outputs
	})
	faulty, faultySt, err := Run(c2, sumJob("faulty"))
	if err != nil {
		t.Fatal(err)
	}

	if len(clean) != len(faulty) {
		t.Fatalf("fault plan changed output length: %d vs %d", len(clean), len(faulty))
	}
	for i := range clean {
		if clean[i] != faulty[i] {
			t.Fatalf("fault plan changed output[%d]: %d vs %d", i, clean[i], faulty[i])
		}
	}
	if faultySt.TaskRetries == 0 {
		t.Fatal("30% failure rate injected no retries")
	}
	if faultySt.WastedRecords == 0 || faultySt.WastedBytes == 0 {
		t.Fatalf("retries charged no waste: %+v", faultySt)
	}
	if faultySt.PenaltySeconds <= 0 {
		t.Fatalf("retries charged no penalty: %+v", faultySt)
	}
	if faultySt.SimSeconds <= cleanSt.SimSeconds {
		t.Fatalf("faulty run not slower: %v vs %v", faultySt.SimSeconds, cleanSt.SimSeconds)
	}
	if faultySt.MapAttempts+faultySt.ReduceAttempts <= faultySt.MapTasks+faultySt.ReduceTasks {
		t.Fatalf("attempts %d+%d should exceed tasks %d+%d under failures",
			faultySt.MapAttempts, faultySt.ReduceAttempts, faultySt.MapTasks, faultySt.ReduceTasks)
	}
	// Fault-free stats carry the degenerate attempt counts.
	if cleanSt.MapAttempts != cleanSt.MapTasks || cleanSt.ReduceAttempts != cleanSt.ReduceTasks {
		t.Fatalf("fault-free attempts should equal tasks: %+v", cleanSt)
	}
	// The recovery counters roll up into Totals.
	tot := c2.Totals()
	if tot.TaskRetries != faultySt.TaskRetries || tot.WastedRecords != faultySt.WastedRecords ||
		tot.PenaltySeconds != faultySt.PenaltySeconds {
		t.Fatalf("totals disagree with job stats: %+v vs %+v", tot, faultySt)
	}
}

// TestJobFailsAfterMaxAttempts drives the failure rate to 1 so the first
// task exhausts its budget, and checks the terminal *ErrJobFailed plus
// the accounting of every doomed attempt.
func TestJobFailsAfterMaxAttempts(t *testing.T) {
	c := testCluster(4)
	writeFaultInput(t, c)
	c.InstallFaultPlan(&FaultPlan{Seed: 1, FailureRate: 1.0, MaxAttempts: 3})
	out, st, err := Run(c, sumJob("doomed"))
	var jf *ErrJobFailed
	if !errors.As(err, &jf) {
		t.Fatalf("want ErrJobFailed, got %v", err)
	}
	if out != nil {
		t.Fatal("failed job returned outputs")
	}
	if jf.Job != "doomed" || jf.Phase != "map" || jf.Task != 0 || jf.Attempts != 3 {
		t.Fatalf("ErrJobFailed fields: %+v", jf)
	}
	if st.TaskRetries != 3 || st.MapAttempts != 3 {
		t.Fatalf("task 0 should burn exactly MaxAttempts: %+v", st)
	}
	if st.PenaltySeconds <= 0 {
		t.Fatalf("doomed attempts charged no penalty: %+v", st)
	}
	// The failed job is still recorded on the cluster.
	if tot := c.Totals(); tot.Jobs != 1 || tot.TaskRetries != 3 {
		t.Fatalf("failed job not recorded: %+v", tot)
	}
	// Exponential backoff: with MaxAttempts 4 the same task accrues a
	// strictly larger penalty per attempt (backoff doubles).
	c2 := testCluster(4)
	writeFaultInput(t, c2)
	c2.InstallFaultPlan(&FaultPlan{Seed: 1, FailureRate: 1.0, MaxAttempts: 4})
	_, st4, err := Run(c2, sumJob("doomed"))
	if !errors.As(err, &jf) {
		t.Fatalf("want ErrJobFailed, got %v", err)
	}
	base := c.cfg.Cost.RetryBackoff
	// Attempts 1..3 wait 1+2+4 backoffs, attempts 1..4 wait 1+2+4+8.
	if st4.PenaltySeconds-st.PenaltySeconds < 8*base-1e-9 {
		t.Fatalf("backoff not exponential: 3 attempts %.1fs, 4 attempts %.1fs",
			st.PenaltySeconds, st4.PenaltySeconds)
	}
}

// TestSpeculativeExecution checks the straggler model: with speculation
// on, backups launch, some win, and the straggler lag is capped by the
// backup's finish time; with speculation off the full slowdown is paid.
func TestSpeculativeExecution(t *testing.T) {
	// A near-zero SpeculativeDelay means every straggler lags long enough
	// to be flagged, so backups launch even for the test's tiny tasks.
	// (With the default 30s delay the tasks here finish long before the
	// scheduler would notice them — correctly spawning no backups.)
	cost := DefaultCostModel()
	cost.SpeculativeDelay = 1e-9
	cfg := Config{Machines: 4, SlotsPerMachine: 2, Cost: cost}
	plan := FaultPlan{Seed: 3, StragglerRate: 1.0}

	c := NewCluster(cfg)
	writeFaultInput(t, c)
	c.InstallFaultPlan(&plan)
	out, st, err := Run(c, sumJob("straggle"))
	if err != nil {
		t.Fatal(err)
	}
	if st.SpeculativeTasks == 0 || st.SpeculativeWins == 0 {
		t.Fatalf("no speculation under StragglerRate=1: %+v", st)
	}
	if st.WastedRecords == 0 {
		t.Fatalf("losing attempts charged no waste: %+v", st)
	}

	// Same plan, speculation disabled: identical outputs, no backups,
	// strictly larger penalty (the stragglers run to completion).
	c2 := NewCluster(cfg)
	writeFaultInput(t, c2)
	noSpec := plan
	noSpec.DisableSpeculation = true
	c2.InstallFaultPlan(&noSpec)
	out2, st2, err := Run(c2, sumJob("straggle"))
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if out[i] != out2[i] {
			t.Fatal("speculation setting changed outputs")
		}
	}
	if st2.SpeculativeTasks != 0 {
		t.Fatalf("DisableSpeculation launched backups: %+v", st2)
	}
	if st2.PenaltySeconds <= st.PenaltySeconds {
		t.Fatalf("unrescued stragglers should cost more: %v vs %v",
			st2.PenaltySeconds, st.PenaltySeconds)
	}
}

// TestMachineBlacklisting runs a high-failure plan on a small cluster
// and checks that machines get blacklisted but at least one survives
// (the engine never blacklists the last alive machine).
func TestMachineBlacklisting(t *testing.T) {
	c := testCluster(2) // 2 machines
	writeFaultInput(t, c)
	c.InstallFaultPlan(&FaultPlan{
		Seed:           11,
		FailureRate:    0.8,
		MaxAttempts:    64, // survive long streaks: the job must complete
		BlacklistAfter: 3,
	})
	_, st, err := Run(c, sumJob("blacklist"))
	if err != nil {
		t.Fatal(err)
	}
	if st.BlacklistedMachines == 0 {
		t.Fatalf("80%% failures on 2 machines blacklisted nothing: %+v", st)
	}
	if st.BlacklistedMachines >= c.Machines() {
		t.Fatalf("blacklisted all %d machines: %+v", c.Machines(), st)
	}
}

// TestKillAfterJobsAndRestart models the JobTracker crash: jobs run
// until the kill budget is spent, later submissions get *ErrClusterKilled,
// the DFS survives, and a new cluster on the same FS resumes work.
func TestKillAfterJobsAndRestart(t *testing.T) {
	c := testCluster(2)
	writeFaultInput(t, c)
	c.InstallFaultPlan(&FaultPlan{Seed: 5, KillAfterJobs: 2})
	if _, _, err := Run(c, sumJob("j0")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Run(c, sumJob("j1")); err != nil {
		t.Fatal(err)
	}
	_, _, err := Run(c, sumJob("j2"))
	var ck *ErrClusterKilled
	if !errors.As(err, &ck) {
		t.Fatalf("want ErrClusterKilled, got %v", err)
	}
	if ck.Job != "j2" || ck.AfterJobs != 2 {
		t.Fatalf("ErrClusterKilled fields: %+v", ck)
	}
	// Dead stays dead.
	if _, _, err := Run(c, sumJob("j3")); !errors.As(err, &ck) {
		t.Fatalf("killed cluster ran another job: %v", err)
	}
	// HDFS survives the JobTracker: the data is readable and a new
	// cluster on the same FS picks the work back up.
	if !c.FS().Exists("in") {
		t.Fatal("cluster kill destroyed the DFS")
	}
	c2 := NewClusterWithFS(Config{Machines: 2, SlotsPerMachine: 2}, c.FS())
	if _, _, err := Run(c2, sumJob("resumed")); err != nil {
		t.Fatalf("restarted cluster cannot run: %v", err)
	}
	// InstallFaultPlan(nil) also revives a killed cluster.
	c.InstallFaultPlan(nil)
	if _, _, err := Run(c, sumJob("revived")); err != nil {
		t.Fatalf("clearing the plan did not revive the cluster: %v", err)
	}
}
