package mr

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Input binds one DFS file to the map function that processes its
// records, mirroring Hadoop's MultipleInputs: a job may read several
// files with different record types feeding one shuffle. This is how
// HaTen2's IMHP job reads the tensor and both factor matrices at once.
type Input[K comparable, V any] struct {
	// File is the DFS file to read.
	File string
	// Map is called once per record; it may emit any number of
	// intermediate key/value pairs.
	Map func(rec any, emit func(K, V))
}

// Job describes one MapReduce job.
type Job[K comparable, V any, O any] struct {
	// Name labels the job in statistics.
	Name string
	// Inputs are the files and map functions; at least one is required.
	Inputs []Input[K, V]
	// Reduce is called once per distinct key with all of its values.
	// The values slice aliases a pooled arena owned by the engine and is
	// only valid for the duration of the call (Hadoop's contract: the
	// reduce iterator cannot be kept); copy values out to retain them.
	Reduce func(key K, values []V, emit func(O))
	// Combine, when non-nil, merges the values one map task emitted for
	// a key before they are shuffled — Hadoop's combiner. It must be
	// associative and produce values Reduce accepts. Shuffle counters
	// (and therefore resource limits and simulated time) account the
	// post-combine volume, which is the point of using one.
	//
	// The HaTen2 job plans deliberately do not use combiners — the
	// paper's implementation didn't, and Tables III/IV are reproduced
	// against un-combined shuffle volumes — but the engine supports
	// them for the combiner ablation experiment.
	Combine func(key K, values []V) []V
	// Partition routes a key to a reducer as Partition(k) % reducers.
	// It is required; use the Hash* helpers for common key shapes.
	Partition func(K) uint64
	// KVSize reports the serialized size in bytes of one intermediate
	// pair, used for shuffle accounting. Nil means 24 bytes per pair.
	KVSize func(K, V) int64
	// OutSize reports the serialized size of one output record. Nil
	// means 24 bytes.
	OutSize func(O) int64
	// Output, when non-empty, writes the job's output records to this
	// DFS file (the between-jobs materialization Tables III/IV bound).
	Output string
	// Reducers overrides the reduce task count; 0 means one per worker.
	Reducers int
	// ExtraShuffleRecords and ExtraShuffleBytes charge additional
	// intermediate data that a faithful implementation would have
	// shuffled but that the simulator elides for tractability. HaTen2's
	// Naive plan uses this: the paper's mapper copies the factor vector
	// to *every* (i,k) fiber key — I·K copies, nnz+IJK intermediate
	// records — while the simulator only materializes copies for fibers
	// that exist, charging the rest here. The charge counts toward
	// simulated time and the resource-exhaustion limit, so Naive fails
	// exactly where the paper's does.
	ExtraShuffleRecords int64
	ExtraShuffleBytes   int64
}

type pair[K comparable, V any] struct {
	k K
	v V
}

// Run executes the job on the cluster and returns the reduce outputs in
// deterministic order along with the job's statistics. It returns
// ErrResourceExhausted if the shuffle exceeds the cluster's configured
// capacity, emulating the out-of-memory failures of Figures 1 and 7.
func Run[K comparable, V any, O any](c *Cluster, job Job[K, V, O]) ([]O, JobStats, error) {
	if len(job.Inputs) == 0 {
		return nil, JobStats{}, fmt.Errorf("mr: job %q has no inputs", job.Name)
	}
	if job.Reduce == nil {
		return nil, JobStats{}, fmt.Errorf("mr: job %q has no reduce function", job.Name)
	}
	if job.Partition == nil {
		return nil, JobStats{}, fmt.Errorf("mr: job %q has no partition function", job.Name)
	}
	plan, jobSeq, err := c.startJob(job.Name)
	if err != nil {
		return nil, JobStats{Name: job.Name}, err
	}
	kvSize := job.KVSize
	if kvSize == nil {
		kvSize = func(K, V) int64 { return 24 }
	}
	outSize := job.OutSize
	if outSize == nil {
		outSize = func(O) int64 { return 24 }
	}
	reducers := job.Reducers
	if reducers <= 0 {
		reducers = c.Workers()
	}

	st := JobStats{Name: job.Name, ReduceTasks: reducers}
	hint, hasHint := c.hint(job.Name)
	bucketCap := 0
	if hasHint {
		bucketCap = int(hint.pairsPerBucket) + 1
	}

	// --- Map phase -------------------------------------------------------
	// Split every input into one split per worker and run map tasks in a
	// bounded pool. Each task fills private per-reducer buckets; each
	// reducer later walks its buckets in task order so the engine is
	// deterministic regardless of scheduling. Bucket backing arrays come
	// from the typed pools and are presized from the previous run of the
	// same job.
	type taskOut struct {
		buckets [][]pair[K, V]
		records int64
		bytes   int64
	}
	var tasks []func() taskOut
	var taskInputs []int64 // records per map task, for the fault pass
	for _, in := range job.Inputs {
		recs, bounds, err := c.fs.SplitRanges(in.File, c.Workers())
		if err != nil {
			return nil, st, fmt.Errorf("mr: job %q: %w", job.Name, err)
		}
		st.InputRecords += int64(len(recs))
		sz, err := c.fs.Size(in.File)
		if err != nil {
			return nil, st, fmt.Errorf("mr: job %q: %w", job.Name, err)
		}
		st.InputBytes += sz
		for s := 0; s < len(bounds)-1; s++ {
			split := recs[bounds[s]:bounds[s+1]]
			if len(split) == 0 {
				continue
			}
			mapFn := in.Map
			st.MapTasks++
			taskInputs = append(taskInputs, int64(len(split)))
			tasks = append(tasks, func() taskOut {
				out := taskOut{buckets: make([][]pair[K, V], reducers)}
				for r := range out.buckets {
					out.buckets[r] = getSlice[pair[K, V]](bucketCap)
				}
				// Per-pair record/byte accounting is folded into emit so
				// the task walks its buckets exactly once instead of
				// filling them and then re-walking them to count.
				emit := func(k K, v V) {
					r := int(job.Partition(k) % uint64(reducers))
					out.buckets[r] = append(out.buckets[r], pair[K, V]{k, v})
					out.records++
					out.bytes += kvSize(k, v)
				}
				if job.Combine != nil {
					// Shuffle counters account the post-combine volume,
					// so emit only routes and the combine walk (which
					// visits every surviving pair anyway) accounts.
					emit = func(k K, v V) {
						r := int(job.Partition(k) % uint64(reducers))
						out.buckets[r] = append(out.buckets[r], pair[K, V]{k, v})
					}
				}
				for _, rec := range split {
					mapFn(rec.Data, emit)
				}
				if job.Combine != nil {
					scratch := getCombineScratch[K, V]()
					for r, bucket := range out.buckets {
						bucket = combineBucket(bucket, job.Combine, scratch)
						out.buckets[r] = bucket
						out.records += int64(len(bucket))
						for _, p := range bucket {
							out.bytes += kvSize(p.k, p.v)
						}
					}
					putCombineScratch(scratch)
				}
				return out
			})
		}
	}

	// Run the map tasks. The shuffle-capacity limit is enforced
	// deterministically: a task's records count only once every
	// earlier task has completed (a completion frontier in task
	// order), and the limit trips at the first task index where the
	// in-order prefix sum exceeds it. Tasks beyond the tripping index
	// are skipped when possible and never counted, so the recorded
	// ShuffleRecords/ShuffleBytes of an exhausted job are identical
	// run-to-run regardless of scheduling.
	limit := c.cfg.MaxShuffleRecords
	outs := make([]taskOut, len(tasks))
	pool := runtime.GOMAXPROCS(0)
	if w := c.Workers(); w < pool {
		pool = w
	}
	var tripAt atomic.Int64
	tripAt.Store(int64(len(tasks))) // sentinel: limit never tripped
	if limit > 0 && job.ExtraShuffleRecords > limit {
		// The phantom charge alone exhausts the cluster; no map task's
		// output is counted.
		tripAt.Store(-1)
	}
	var (
		frontierMu sync.Mutex
		done       []bool
		frontier   int
		prefix     = job.ExtraShuffleRecords
	)
	if limit > 0 {
		done = make([]bool, len(tasks))
	}
	runPool(pool, len(tasks), func(i int) {
		if int64(i) > tripAt.Load() {
			return
		}
		outs[i] = tasks[i]()
		if limit <= 0 {
			return
		}
		frontierMu.Lock()
		done[i] = true
		for frontier < len(tasks) && done[frontier] {
			prefix += outs[frontier].records
			if prefix > limit && int64(frontier) < tripAt.Load() {
				tripAt.Store(int64(frontier))
			}
			frontier++
		}
		frontierMu.Unlock()
	})
	st.ShuffleRecords += job.ExtraShuffleRecords
	st.ShuffleBytes += job.ExtraShuffleBytes
	counted := len(tasks)
	exhausted := false
	if t := tripAt.Load(); t < int64(len(tasks)) {
		exhausted = true
		counted = int(t) + 1
	}
	for _, o := range outs[:counted] {
		st.ShuffleRecords += o.records
		st.ShuffleBytes += o.bytes
	}
	if exhausted {
		for _, o := range outs {
			for _, bucket := range o.buckets {
				putSlice(bucket)
			}
		}
		st.SimSeconds = c.cfg.Cost.JobTime(c.cfg.Machines, st)
		c.record(st)
		return nil, st, &ErrResourceExhausted{Job: job.Name, ShuffleRecords: st.ShuffleRecords, Limit: limit}
	}

	// --- Map fault pass ---------------------------------------------------
	// Replay the fault plan's attempt history for the completed map tasks.
	// This is a sequential post-pass over pure hashes, so the parallel
	// execution above can never influence which faults fire — faults change
	// counters and simulated time, never outputs.
	var fstate *faultState
	if plan != nil {
		fstate = newFaultState(c.cfg.Machines)
		mtasks := make([]taskCost, len(tasks))
		for i := range tasks {
			mtasks[i] = taskCost{
				records: taskInputs[i],
				bytes:   outs[i].bytes,
				seconds: float64(taskInputs[i])*c.cfg.Cost.PerMapRecord +
					float64(outs[i].bytes)*c.cfg.Cost.PerShuffleByte,
			}
		}
		if ferr := plan.applyPhase(&st, fstate, c.cfg.Cost, job.Name, jobSeq, phaseMap, mtasks); ferr != nil {
			for _, o := range outs {
				for _, bucket := range o.buckets {
					putSlice(bucket)
				}
			}
			st.SimSeconds = c.cfg.Cost.JobTime(c.cfg.Machines, st) + st.PenaltySeconds
			c.record(st)
			return nil, st, ferr
		}
	} else {
		st.MapAttempts = st.MapTasks
	}

	// --- Shuffle + reduce phases ----------------------------------------
	// Every reduce task independently groups its own partition with a
	// pooled two-pass arena (see group.go) — both passes walk the map
	// tasks' buckets in task order, so reduce input order (and therefore
	// floating-point summation order) is deterministic — and immediately
	// reduces it, with Reduce receiving contiguous subslices of the
	// arena instead of per-key heap slices. Reducer partitions are
	// disjoint, so the tasks parallelize with no synchronization beyond
	// the pool itself.
	keyCap, outCap, arenaCap := 0, 0, 0
	if hasHint {
		keyCap = int(hint.keysPerReducer) + 1
		outCap = int(hint.outPerReducer) + 1
		arenaCap = int(hint.pairsPerReducer) + 1
	}
	results := make([][]O, reducers)
	resultBytes := make([]int64, reducers)
	keyCounts := make([]int64, reducers)
	redInputs := make([]int64, reducers) // pairs per reduce task, for the fault pass
	runPool(pool, reducers, func(r int) {
		g := getGroupArena[K, V](keyCap)
		for i := range outs {
			bucket := outs[i].buckets[r]
			redInputs[r] += int64(len(bucket))
			g.count(bucket)
		}
		g.layout(arenaCap)
		for i := range outs {
			bucket := outs[i].buckets[r]
			g.scatter(bucket)
			putSlice(bucket)
			outs[i].buckets[r] = nil
		}
		out := getSlice[O](outCap)
		var bytes int64
		emit := func(o O) {
			out = append(out, o)
			bytes += outSize(o)
		}
		for i, k := range g.keys {
			job.Reduce(k, g.group(i), emit)
		}
		results[r] = out
		resultBytes[r] = bytes
		keyCounts[r] = int64(len(g.keys))
		putGroupArena(g)
	})

	// --- Reduce fault pass ------------------------------------------------
	// Same scheme as the map pass; the blacklist state carries over so a
	// machine that failed map attempts stays blacklisted for reduce.
	if plan != nil {
		rtasks := make([]taskCost, reducers)
		for r := range rtasks {
			rtasks[r] = taskCost{
				records: redInputs[r],
				bytes:   resultBytes[r],
				seconds: float64(redInputs[r])*c.cfg.Cost.PerReduceRecord +
					float64(resultBytes[r])*c.cfg.Cost.PerDFSByte,
			}
		}
		if ferr := plan.applyPhase(&st, fstate, c.cfg.Cost, job.Name, jobSeq, phaseReduce, rtasks); ferr != nil {
			for r, out := range results {
				putSlice(out)
				results[r] = nil
			}
			st.SimSeconds = c.cfg.Cost.JobTime(c.cfg.Machines, st) + st.PenaltySeconds
			c.record(st)
			return nil, st, ferr
		}
	} else {
		st.ReduceAttempts = reducers
	}

	var total int
	for _, out := range results {
		total += len(out)
	}
	all := make([]O, 0, total)
	var distinctKeys int64
	for r, out := range results {
		all = append(all, out...)
		st.OutputRecords += int64(len(out))
		st.OutputBytes += resultBytes[r]
		distinctKeys += keyCounts[r]
		putSlice(out)
		results[r] = nil
	}

	if job.Output != "" {
		w, err := c.fs.Create(job.Output)
		if err != nil {
			return nil, st, fmt.Errorf("mr: job %q: %w", job.Name, err)
		}
		for _, o := range all {
			w.Append(o, outSize(o))
		}
		w.Close()
	}

	st.SimSeconds = c.cfg.Cost.JobTime(c.cfg.Machines, st) + st.PenaltySeconds
	c.record(st)
	if st.MapTasks > 0 {
		shuffled := st.ShuffleRecords - job.ExtraShuffleRecords
		c.setHint(job.Name, shuffleHint{
			pairsPerBucket:  ceilDiv(shuffled, int64(st.MapTasks)*int64(reducers)),
			pairsPerReducer: ceilDiv(shuffled, int64(reducers)),
			keysPerReducer:  ceilDiv(distinctKeys, int64(reducers)),
			outPerReducer:   ceilDiv(st.OutputRecords, int64(reducers)),
		})
	}
	return all, st, nil
}

func ceilDiv(a, b int64) int64 {
	if b <= 0 {
		return 0
	}
	return (a + b - 1) / b
}

// combineScratch is the reusable grouping state of combineBucket. One
// instance serves all of a map task's buckets (and, via the typed
// pools, later tasks of jobs with the same key/value types), so the
// key map and value slices are allocated once instead of per bucket.
type combineScratch[K comparable, V any] struct {
	idx  map[K]int
	keys []K
	vals [][]V
}

func getCombineScratch[K comparable, V any]() *combineScratch[K, V] {
	if v := poolFor[*combineScratch[K, V]]().Get(); v != nil {
		return v.(*combineScratch[K, V])
	}
	return &combineScratch[K, V]{idx: make(map[K]int)}
}

func putCombineScratch[K comparable, V any](s *combineScratch[K, V]) {
	s.reset()
	// Value slices are truncated lazily as keys are registered, so
	// stale values can linger past their length; clear the full
	// retained storage so pooled scratch pins no values.
	for i := range s.vals {
		v := s.vals[i][:cap(s.vals[i])]
		clear(v)
		s.vals[i] = v[:0]
	}
	poolFor[*combineScratch[K, V]]().Put(s)
}

// reset readies the scratch for the next bucket. Value slices are not
// touched here — combineBucket truncates each slot as it re-registers
// it, keeping reset O(keys of the previous bucket).
func (s *combineScratch[K, V]) reset() {
	clear(s.idx)
	clear(s.keys)
	s.keys = s.keys[:0]
}

// combineBucket groups one task's bucket by key (preserving first-seen
// key order), applies the combiner, and flattens back to pairs. The
// combiner may expand a key's values (return more than one); the output
// grows past the original bucket as needed.
func combineBucket[K comparable, V any](bucket []pair[K, V], combine func(K, []V) []V, s *combineScratch[K, V]) []pair[K, V] {
	if len(bucket) == 0 {
		return bucket
	}
	s.reset()
	for _, p := range bucket {
		i, ok := s.idx[p.k]
		if !ok {
			i = len(s.keys)
			s.idx[p.k] = i
			s.keys = append(s.keys, p.k)
			if i < len(s.vals) {
				s.vals[i] = s.vals[i][:0]
			} else {
				s.vals = append(s.vals, nil)
			}
		}
		s.vals[i] = append(s.vals[i], p.v)
	}
	// The grouped values live in scratch storage, so the bucket itself
	// can be rewritten in place.
	out := bucket[:0]
	for i, k := range s.keys {
		for _, v := range combine(k, s.vals[i]) {
			out = append(out, pair[K, V]{k, v})
		}
	}
	return out
}

// runPool executes fn(0..n-1) using at most width concurrent goroutines.
func runPool(width, n int, fn func(i int)) {
	if width > n {
		width = n
	}
	if width <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < width; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
