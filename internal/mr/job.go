package mr

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Input binds one DFS file to the map function that processes its
// records, mirroring Hadoop's MultipleInputs: a job may read several
// files with different record types feeding one shuffle. This is how
// HaTen2's IMHP job reads the tensor and both factor matrices at once.
type Input[K comparable, V any] struct {
	// File is the DFS file to read.
	File string
	// Map is called once per record; it may emit any number of
	// intermediate key/value pairs.
	Map func(rec any, emit func(K, V))
}

// Job describes one MapReduce job.
type Job[K comparable, V any, O any] struct {
	// Name labels the job in statistics.
	Name string
	// Inputs are the files and map functions; at least one is required.
	Inputs []Input[K, V]
	// Reduce is called once per distinct key with all of its values.
	Reduce func(key K, values []V, emit func(O))
	// Combine, when non-nil, merges the values one map task emitted for
	// a key before they are shuffled — Hadoop's combiner. It must be
	// associative and produce values Reduce accepts. Shuffle counters
	// (and therefore resource limits and simulated time) account the
	// post-combine volume, which is the point of using one.
	//
	// The HaTen2 job plans deliberately do not use combiners — the
	// paper's implementation didn't, and Tables III/IV are reproduced
	// against un-combined shuffle volumes — but the engine supports
	// them for the combiner ablation experiment.
	Combine func(key K, values []V) []V
	// Partition routes a key to a reducer as Partition(k) % reducers.
	// It is required; use the Hash* helpers for common key shapes.
	Partition func(K) uint64
	// KVSize reports the serialized size in bytes of one intermediate
	// pair, used for shuffle accounting. Nil means 24 bytes per pair.
	KVSize func(K, V) int64
	// OutSize reports the serialized size of one output record. Nil
	// means 24 bytes.
	OutSize func(O) int64
	// Output, when non-empty, writes the job's output records to this
	// DFS file (the between-jobs materialization Tables III/IV bound).
	Output string
	// Reducers overrides the reduce task count; 0 means one per worker.
	Reducers int
	// ExtraShuffleRecords and ExtraShuffleBytes charge additional
	// intermediate data that a faithful implementation would have
	// shuffled but that the simulator elides for tractability. HaTen2's
	// Naive plan uses this: the paper's mapper copies the factor vector
	// to *every* (i,k) fiber key — I·K copies, nnz+IJK intermediate
	// records — while the simulator only materializes copies for fibers
	// that exist, charging the rest here. The charge counts toward
	// simulated time and the resource-exhaustion limit, so Naive fails
	// exactly where the paper's does.
	ExtraShuffleRecords int64
	ExtraShuffleBytes   int64
}

type pair[K comparable, V any] struct {
	k K
	v V
}

// Run executes the job on the cluster and returns the reduce outputs in
// deterministic order along with the job's statistics. It returns
// ErrResourceExhausted if the shuffle exceeds the cluster's configured
// capacity, emulating the out-of-memory failures of Figures 1 and 7.
func Run[K comparable, V any, O any](c *Cluster, job Job[K, V, O]) ([]O, JobStats, error) {
	if len(job.Inputs) == 0 {
		return nil, JobStats{}, fmt.Errorf("mr: job %q has no inputs", job.Name)
	}
	if job.Reduce == nil {
		return nil, JobStats{}, fmt.Errorf("mr: job %q has no reduce function", job.Name)
	}
	if job.Partition == nil {
		return nil, JobStats{}, fmt.Errorf("mr: job %q has no partition function", job.Name)
	}
	kvSize := job.KVSize
	if kvSize == nil {
		kvSize = func(K, V) int64 { return 24 }
	}
	outSize := job.OutSize
	if outSize == nil {
		outSize = func(O) int64 { return 24 }
	}
	reducers := job.Reducers
	if reducers <= 0 {
		reducers = c.Workers()
	}

	st := JobStats{Name: job.Name, ReduceTasks: reducers}

	// --- Map phase -------------------------------------------------------
	// Split every input into one split per worker and run map tasks in a
	// bounded pool. Each task fills private per-reducer buckets; the
	// buckets are concatenated in task order afterwards so the engine is
	// deterministic regardless of scheduling.
	type taskOut struct {
		buckets [][]pair[K, V]
		records int64
		bytes   int64
	}
	var tasks []func() taskOut
	for _, in := range job.Inputs {
		splits, err := c.fs.Splits(in.File, c.Workers())
		if err != nil {
			return nil, st, fmt.Errorf("mr: job %q: %w", job.Name, err)
		}
		for _, split := range splits {
			if len(split) == 0 {
				continue
			}
			split := split
			mapFn := in.Map
			st.MapTasks++
			st.InputRecords += int64(len(split))
			for _, r := range split {
				st.InputBytes += r.Size
			}
			tasks = append(tasks, func() taskOut {
				out := taskOut{buckets: make([][]pair[K, V], reducers)}
				emit := func(k K, v V) {
					r := int(job.Partition(k) % uint64(reducers))
					out.buckets[r] = append(out.buckets[r], pair[K, V]{k, v})
				}
				for _, rec := range split {
					mapFn(rec.Data, emit)
				}
				if job.Combine != nil {
					for r, bucket := range out.buckets {
						out.buckets[r] = combineBucket(bucket, job.Combine)
					}
				}
				for _, bucket := range out.buckets {
					for _, p := range bucket {
						out.records++
						out.bytes += kvSize(p.k, p.v)
					}
				}
				return out
			})
		}
	}

	limit := c.cfg.MaxShuffleRecords
	var shuffled atomic.Int64
	shuffled.Store(job.ExtraShuffleRecords)
	outs := make([]taskOut, len(tasks))
	pool := runtime.GOMAXPROCS(0)
	if w := c.Workers(); w < pool {
		pool = w
	}
	var exhausted atomic.Bool
	runPool(pool, len(tasks), func(i int) {
		if exhausted.Load() {
			return
		}
		outs[i] = tasks[i]()
		if limit > 0 && shuffled.Add(outs[i].records) > limit {
			exhausted.Store(true)
		}
	})
	st.ShuffleRecords += job.ExtraShuffleRecords
	st.ShuffleBytes += job.ExtraShuffleBytes
	for _, o := range outs {
		st.ShuffleRecords += o.records
		st.ShuffleBytes += o.bytes
	}
	if limit > 0 && st.ShuffleRecords > limit {
		st.SimSeconds = c.cfg.Cost.JobTime(c.cfg.Machines, st)
		c.record(st)
		return nil, st, &ErrResourceExhausted{Job: job.Name, ShuffleRecords: st.ShuffleRecords, Limit: limit}
	}

	// --- Shuffle phase ---------------------------------------------------
	// Group values by key per reducer, preserving task order so reduce
	// input order (and therefore floating-point summation order) is
	// deterministic.
	type group struct {
		keys   []K
		values map[K][]V
	}
	groups := make([]group, reducers)
	for r := range groups {
		groups[r].values = make(map[K][]V)
	}
	for _, o := range outs {
		for r, bucket := range o.buckets {
			g := &groups[r]
			for _, p := range bucket {
				if _, ok := g.values[p.k]; !ok {
					g.keys = append(g.keys, p.k)
				}
				g.values[p.k] = append(g.values[p.k], p.v)
			}
		}
	}

	// --- Reduce phase ------------------------------------------------
	results := make([][]O, reducers)
	resultBytes := make([]int64, reducers)
	runPool(pool, reducers, func(r int) {
		g := &groups[r]
		var out []O
		var bytes int64
		emit := func(o O) {
			out = append(out, o)
			bytes += outSize(o)
		}
		for _, k := range g.keys {
			job.Reduce(k, g.values[k], emit)
		}
		results[r] = out
		resultBytes[r] = bytes
	})
	var all []O
	for r, out := range results {
		all = append(all, out...)
		st.OutputRecords += int64(len(out))
		st.OutputBytes += resultBytes[r]
	}

	if job.Output != "" {
		w, err := c.fs.Create(job.Output)
		if err != nil {
			return nil, st, fmt.Errorf("mr: job %q: %w", job.Name, err)
		}
		for _, o := range all {
			w.Append(o, outSize(o))
		}
		w.Close()
	}

	st.SimSeconds = c.cfg.Cost.JobTime(c.cfg.Machines, st)
	c.record(st)
	return all, st, nil
}

// combineBucket groups one task's bucket by key (preserving first-seen
// key order), applies the combiner, and flattens back to pairs.
func combineBucket[K comparable, V any](bucket []pair[K, V], combine func(K, []V) []V) []pair[K, V] {
	if len(bucket) == 0 {
		return bucket
	}
	var keys []K
	grouped := make(map[K][]V)
	for _, p := range bucket {
		if _, ok := grouped[p.k]; !ok {
			keys = append(keys, p.k)
		}
		grouped[p.k] = append(grouped[p.k], p.v)
	}
	out := bucket[:0]
	for _, k := range keys {
		for _, v := range combine(k, grouped[k]) {
			out = append(out, pair[K, V]{k, v})
		}
	}
	return out
}

// runPool executes fn(0..n-1) using at most width concurrent goroutines.
func runPool(width, n int, fn func(i int)) {
	if width > n {
		width = n
	}
	if width <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < width; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
