package mr

import (
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/haten2/haten2/internal/dfs"
	"github.com/haten2/haten2/internal/mr/wire"
)

// Input binds one DFS file to the map function that processes its
// records, mirroring Hadoop's MultipleInputs: a job may read several
// files with different record types feeding one shuffle. This is how
// HaTen2's IMHP job reads the tensor and both factor matrices at once.
type Input[K comparable, V any] struct {
	// File is the DFS file to read.
	File string
	// Map is called once per record; it may emit any number of
	// intermediate key/value pairs. Every record crosses the interface
	// boxed as `any`; use MapInput to build a typed input that avoids
	// the per-record box and assert.
	Map func(rec any, emit func(K, V))
	// run, when non-nil, is the despecialized fast path built by
	// MapInput: it maps records lo..hi of a typed block payload (a []R
	// borrowed from the DFS) with a single type assertion per split
	// instead of one per record. Inputs whose file was written
	// per-record fall back to Map.
	run func(payload any, lo, hi int, emit func(K, V))
}

// MapInput binds a DFS file to a typed map function. When the file was
// block-written (WriteFile, job outputs), records flow to m straight
// from the file's typed []R payload — no per-record boxing, one type
// assertion per split. For per-record files the returned input behaves
// exactly like a hand-written Input.Map that asserts rec.(R).
func MapInput[R any, K comparable, V any](file string, m func(R, func(K, V))) Input[K, V] {
	return Input[K, V]{
		File: file,
		Map: func(rec any, emit func(K, V)) {
			m(rec.(R), emit)
		},
		run: func(payload any, lo, hi int, emit func(K, V)) {
			for _, r := range payload.([]R)[lo:hi] {
				m(r, emit)
			}
		},
	}
}

// BlockSizer accounts the encoded size of one shuffle partition block
// incrementally, so the engine can charge real columnar-codec bytes at
// emit time without materializing the block. Pair returns the bytes
// record (k, v) adds to a block whose previous record is (prevK,
// prevV); the first record of a block is sized against zero-valued
// prev (delta-from-zero, exactly what the codec writes). Header
// returns the block header size for a block of n > 0 records. A
// partition block's total size is Header(n) + the sum of its n Pair
// calls, and codecs must guarantee their encoders produce exactly that
// many bytes (the columnar invariant tests in internal/core pin this).
type BlockSizer[K comparable, V any] struct {
	Pair   func(prevK K, prevV V, k K, v V) int64
	Header func(n int) int64
}

// Job describes one MapReduce job.
type Job[K comparable, V any, O any] struct {
	// Name labels the job in statistics.
	Name string
	// Inputs are the files and map functions; at least one is required.
	Inputs []Input[K, V]
	// Reduce is called once per distinct key with all of its values.
	// The values slice aliases a pooled arena owned by the engine and is
	// only valid for the duration of the call (Hadoop's contract: the
	// reduce iterator cannot be kept); copy values out to retain them.
	Reduce func(key K, values []V, emit func(O))
	// Combine, when non-nil, merges the values one map task emitted for
	// a key before they are shuffled — Hadoop's combiner. It must be
	// associative and produce values Reduce accepts. Shuffle counters
	// (and therefore resource limits and simulated time) account the
	// post-combine volume, which is the point of using one.
	//
	// The HaTen2 job plans deliberately do not use combiners — the
	// paper's implementation didn't, and Tables III/IV are reproduced
	// against un-combined shuffle volumes — but the engine supports
	// them for the combiner ablation experiment.
	Combine func(key K, values []V) []V
	// Partition routes a key to a reducer as Partition(k) % reducers.
	// It is required; use the Hash* helpers for common key shapes. It
	// must be a pure function of the key: the engine calls it once per
	// pair to route the shuffle and again in the reduce-side grouper,
	// and the two calls must agree.
	Partition func(K) uint64
	// KVSize reports the serialized size in bytes of one intermediate
	// pair, used for shuffle accounting. Nil means 24 bytes per pair.
	// Ignored when BlockKV is set.
	KVSize func(K, V) int64
	// BlockKV, when non-nil, switches shuffle-byte accounting from the
	// per-record KVSize to a block codec: each map task's per-reducer
	// bucket is charged as one contiguous encoded block (header plus
	// delta-encoded records), mirroring how a real Hadoop job compresses
	// each map task's spill per partition. Counters, resource limits and
	// simulated time then reflect the codec's real wire size.
	BlockKV *BlockSizer[K, V]
	// OutSize reports the serialized size of one output record. Nil
	// means 24 bytes.
	OutSize func(O) int64
	// Output, when non-empty, writes the job's output records to this
	// DFS file (the between-jobs materialization Tables III/IV bound).
	Output string
	// Reducers overrides the reduce task count; 0 means one per worker.
	Reducers int
	// ExtraShuffleRecords and ExtraShuffleBytes charge additional
	// intermediate data that a faithful implementation would have
	// shuffled but that the simulator elides for tractability. HaTen2's
	// Naive plan uses this: the paper's mapper copies the factor vector
	// to *every* (i,k) fiber key — I·K copies, nnz+IJK intermediate
	// records — while the simulator only materializes copies for fibers
	// that exist, charging the rest here. The charge counts toward
	// simulated time and the resource-exhaustion limit, so Naive fails
	// exactly where the paper's does.
	ExtraShuffleRecords int64
	ExtraShuffleBytes   int64
}

type pair[K comparable, V any] struct {
	k K
	v V
	// h carries the raw partition hash from emit into the reducer's
	// group table (group.go), whose count pass pushes it through the
	// mix64 finalizer and probes on that (the raw hash's bits correlate
	// with the routing mask, so probing needs the extra mix — but no
	// generic re-hash of the key); count then overwrites h with the
	// key's slot so the scatter pass does no hashing at all.
	h uint64
}

// Run executes the job on the cluster and returns the reduce outputs in
// deterministic order along with the job's statistics. It returns
// ErrResourceExhausted if the shuffle exceeds the cluster's configured
// capacity, emulating the out-of-memory failures of Figures 1 and 7.
func Run[K comparable, V any, O any](c *Cluster, job Job[K, V, O]) ([]O, JobStats, error) {
	if len(job.Inputs) == 0 {
		return nil, JobStats{}, fmt.Errorf("mr: job %q has no inputs", job.Name)
	}
	if job.Reduce == nil {
		return nil, JobStats{}, fmt.Errorf("mr: job %q has no reduce function", job.Name)
	}
	if job.Partition == nil {
		return nil, JobStats{}, fmt.Errorf("mr: job %q has no partition function", job.Name)
	}
	plan, jobSeq, err := c.startJob(job.Name)
	if err != nil {
		return nil, JobStats{Name: job.Name}, err
	}
	kvSize := job.KVSize
	if kvSize == nil {
		kvSize = func(K, V) int64 { return 24 }
	}
	outSize := job.OutSize
	if outSize == nil {
		outSize = func(O) int64 { return 24 }
	}
	reducers := job.Reducers
	if reducers <= 0 {
		reducers = c.Workers()
	}
	// rb is non-nil when an out-of-process backend owns the data plane:
	// inputs are fetched from it when mirrored, and the shuffle always
	// round-trips through it (ship after map, fetch inside reduce).
	rb := c.remote()

	st := JobStats{Name: job.Name, ReduceTasks: reducers}
	// Snapshot the DFS storage-fault counters around the input reads so
	// the job is charged the failovers and scrubs its own reads caused.
	// Attribution assumes jobs run sequentially (the same contract the
	// fault plan's job sequence documents); concurrent Run callers get
	// scheduling-dependent attribution but exact cluster-level totals.
	storageOn := plan != nil && (plan.BlockCorruptRate > 0 || plan.ReplicaLossRate > 0)
	var storageBase dfs.Stats
	if storageOn {
		storageBase = c.fs.Stats()
	}
	hint, hasHint := c.hint(job.Name)
	bucketCap := 0
	if hasHint {
		bucketCap = int(hint.pairsPerBucket) + 1
	}

	// --- Map phase -------------------------------------------------------
	// Split every input into one split per worker and run map tasks in a
	// bounded pool. Each task fills private per-reducer buckets; each
	// reducer later walks its buckets in task order so the engine is
	// deterministic regardless of scheduling. Bucket backing arrays come
	// from the typed pools and are presized from the previous run of the
	// same job.
	//
	// Typed inputs (MapInput) over block-written files read the DFS
	// payload zero-copy: the task maps a borrowed sub-range of the
	// file's []R slice with no per-record boxing. Everything else goes
	// through SplitRanges and the boxed Input.Map.
	type taskOut struct {
		buckets [][]pair[K, V]
		records int64
		bytes   int64
	}

	// Reducer routing is Partition(k) % reducers by contract; when the
	// worker count is a power of two (the common cluster shape) the
	// modulo reduces to a mask with bit-identical routing.
	rmask := uint64(0)
	if reducers&(reducers-1) == 0 {
		rmask = uint64(reducers - 1)
	}
	sizer := job.BlockKV

	// runTask executes one map task: produce drives the input's map
	// function over the task's split. emit only routes — one partition
	// call, one mix, one append per pair. Records and bytes are
	// accounted afterwards in a sequential walk over the filled buckets
	// (post-combine volume for combine jobs): the walk is
	// cache-friendly, and keeping size callbacks out of emit keeps the
	// engine's innermost loop free of indirect calls it doesn't need.
	part := job.Partition
	runTask := func(produce func(emit func(K, V))) taskOut {
		out := taskOut{buckets: make([][]pair[K, V], reducers)}
		buckets := out.buckets
		for r := range buckets {
			buckets[r] = getSlice[pair[K, V]](bucketCap)
		}
		var emit func(k K, v V)
		if rmask != 0 {
			// Reslicing to rmask+1 (the exact reducer count) lets the
			// compiler prove h&rmask is in bounds.
			masked := buckets[:rmask+1]
			emit = func(k K, v V) {
				h := part(k)
				r := h & rmask
				masked[r] = append(masked[r], pair[K, V]{k: k, v: v, h: h})
			}
		} else {
			emit = func(k K, v V) {
				h := part(k)
				r := h % uint64(reducers)
				buckets[r] = append(buckets[r], pair[K, V]{k: k, v: v, h: h})
			}
		}
		produce(emit)
		if job.Combine != nil {
			scratch := getCombineScratch[K, V]()
			for r, bucket := range buckets {
				buckets[r] = combineBucket(bucket, job.Combine, scratch)
			}
			putCombineScratch(scratch)
		}
		for _, bucket := range buckets {
			out.records += int64(len(bucket))
			switch {
			case sizer != nil:
				// One block per non-empty (map task, reducer) bucket —
				// the per-partition spill a real job would encode and
				// ship: header plus consecutive-pair deltas, the first
				// pair sized against zero values.
				if len(bucket) == 0 {
					continue
				}
				var pk K
				var pv V
				for _, p := range bucket {
					out.bytes += sizer.Pair(pk, pv, p.k, p.v)
					pk, pv = p.k, p.v
				}
				out.bytes += sizer.Header(len(bucket))
			case job.KVSize != nil:
				for _, p := range bucket {
					out.bytes += kvSize(p.k, p.v)
				}
			default:
				// Flat default pair size: no per-pair walk needed.
				out.bytes += int64(len(bucket)) * 24
			}
		}
		return out
	}

	var tasks []func() taskOut
	var taskInputs []int64 // records per map task, for the fault pass
	for _, in := range job.Inputs {
		var (
			payload any
			nrec    int
			recs    []dfs.Record
			bounds  []int
		)
		if in.run != nil {
			p, count, ok, err := c.fs.BlockView(in.File)
			if err != nil {
				return nil, st, fmt.Errorf("mr: job %q: %w", job.Name, err)
			}
			if ok {
				payload, nrec = p, count
				bounds = splitBounds(count, c.Workers())
			}
		}
		if payload == nil {
			var err error
			recs, bounds, err = c.fs.SplitRanges(in.File, c.Workers())
			if err != nil {
				return nil, st, fmt.Errorf("mr: job %q: %w", job.Name, err)
			}
			nrec = len(recs)
		}
		// Out-of-process backend: substitute the mirrored copy of the
		// input for the in-process payload when the backend serves one.
		// The local BlockView/SplitRanges calls above still ran — splits,
		// DFS charges, and storage-fault detection are theirs, so
		// counters stay byte-identical across backends — but the records
		// the map tasks consume are the decoded remote bytes. A miss
		// (unmirrored file, decode failure) keeps the in-process copy:
		// the file plane degrades to local, never to wrong.
		if rb != nil {
			if payload != nil {
				if dec, ok := fetchTyped(rb, in.File, payload, nrec); ok {
					payload = dec
				}
			} else if rrecs, ok := fetchRecords(rb, in.File, nrec); ok {
				recs = rrecs
			}
		}
		st.InputRecords += int64(nrec)
		sz, err := c.fs.Size(in.File)
		if err != nil {
			return nil, st, fmt.Errorf("mr: job %q: %w", job.Name, err)
		}
		st.InputBytes += sz
		for s := 0; s < len(bounds)-1; s++ {
			lo, hi := bounds[s], bounds[s+1]
			if lo == hi {
				continue
			}
			st.MapTasks++
			taskInputs = append(taskInputs, int64(hi-lo))
			if payload != nil {
				runFn, blk := in.run, payload
				tasks = append(tasks, func() taskOut {
					return runTask(func(emit func(K, V)) { runFn(blk, lo, hi, emit) })
				})
			} else {
				split := recs[lo:hi]
				mapFn := in.Map
				tasks = append(tasks, func() taskOut {
					return runTask(func(emit func(K, V)) {
						for _, rec := range split {
							mapFn(rec.Data, emit)
						}
					})
				})
			}
		}
	}
	if storageOn {
		// The input reads above are the job's storage-failure surface:
		// any bad replica copies they crossed were detected, failed
		// over past, and re-replicated inside the DFS. Charge the
		// deltas — and the simulated time of the extra I/O — to this
		// job. Like the task fault pass, this moves time and counters
		// only; the records the tasks will map are already fixed.
		now := c.fs.Stats()
		st.CorruptBlocks = now.CorruptBlocks - storageBase.CorruptBlocks
		st.LostReplicas = now.LostReplicas - storageBase.LostReplicas
		st.FailoverReads = now.FailoverReads - storageBase.FailoverReads
		st.FailoverBytes = now.FailoverBytes - storageBase.FailoverBytes
		st.ReReplications = now.ReReplications - storageBase.ReReplications
		st.ScrubBytes = now.ScrubBytes - storageBase.ScrubBytes
		machines := c.cfg.Machines
		if machines <= 0 {
			machines = 1
		}
		st.StorageSeconds = float64(st.FailoverBytes+st.ScrubBytes) *
			c.cfg.Cost.PerDFSByte / float64(machines)
	}

	// Run the map tasks. The shuffle-capacity limit is enforced
	// deterministically: a task's records count only once every
	// earlier task has completed (a completion frontier in task
	// order), and the limit trips at the first task index where the
	// in-order prefix sum exceeds it. Tasks beyond the tripping index
	// are skipped when possible and never counted, so the recorded
	// ShuffleRecords/ShuffleBytes of an exhausted job are identical
	// run-to-run regardless of scheduling.
	limit := c.cfg.MaxShuffleRecords
	outs := make([]taskOut, len(tasks))
	pool := runtime.GOMAXPROCS(0)
	if w := c.Workers(); w < pool {
		pool = w
	}
	var tripAt atomic.Int64
	tripAt.Store(int64(len(tasks))) // sentinel: limit never tripped
	if limit > 0 && job.ExtraShuffleRecords > limit {
		// The phantom charge alone exhausts the cluster; no map task's
		// output is counted.
		tripAt.Store(-1)
	}
	var (
		frontierMu sync.Mutex
		done       []bool
		frontier   int
		prefix     = job.ExtraShuffleRecords
	)
	if limit > 0 {
		done = make([]bool, len(tasks))
	}
	runPool(pool, len(tasks), func(i int) {
		if int64(i) > tripAt.Load() {
			return
		}
		outs[i] = tasks[i]()
		if limit <= 0 {
			return
		}
		frontierMu.Lock()
		done[i] = true
		for frontier < len(tasks) && done[frontier] {
			prefix += outs[frontier].records
			if prefix > limit && int64(frontier) < tripAt.Load() {
				tripAt.Store(int64(frontier))
			}
			frontier++
		}
		frontierMu.Unlock()
	})
	st.ShuffleRecords += job.ExtraShuffleRecords
	st.ShuffleBytes += job.ExtraShuffleBytes
	counted := len(tasks)
	exhausted := false
	if t := tripAt.Load(); t < int64(len(tasks)) {
		exhausted = true
		counted = int(t) + 1
	}
	for _, o := range outs[:counted] {
		st.ShuffleRecords += o.records
		st.ShuffleBytes += o.bytes
	}
	if exhausted {
		for _, o := range outs {
			for _, bucket := range o.buckets {
				putSlice(bucket)
			}
		}
		st.SimSeconds = c.cfg.Cost.JobTime(c.cfg.Machines, st) + st.StorageSeconds
		c.record(st)
		return nil, st, &ErrResourceExhausted{Job: job.Name, ShuffleRecords: st.ShuffleRecords, Limit: limit}
	}

	// --- Map fault pass ---------------------------------------------------
	// Replay the fault plan's attempt history for the completed map tasks.
	// This is a sequential post-pass over pure hashes, so the parallel
	// execution above can never influence which faults fire — faults change
	// counters and simulated time, never outputs.
	var fstate *faultState
	if plan != nil {
		fstate = newFaultState(c.cfg.Machines)
		mtasks := make([]taskCost, len(tasks))
		for i := range tasks {
			mtasks[i] = taskCost{
				records: taskInputs[i],
				bytes:   outs[i].bytes,
				seconds: float64(taskInputs[i])*c.cfg.Cost.PerMapRecord +
					float64(outs[i].bytes)*c.cfg.Cost.PerShuffleByte,
			}
		}
		if ferr := plan.applyPhase(&st, fstate, c.cfg.Cost, job.Name, jobSeq, phaseMap, mtasks); ferr != nil {
			for _, o := range outs {
				for _, bucket := range o.buckets {
					putSlice(bucket)
				}
			}
			st.SimSeconds = c.cfg.Cost.JobTime(c.cfg.Machines, st) + st.PenaltySeconds + st.StorageSeconds
			c.record(st)
			return nil, st, ferr
		}
	} else {
		st.MapAttempts = st.MapTasks
	}

	// --- Backend shuffle ship ---------------------------------------------
	// With an out-of-process backend, every (map task, reducer) bucket
	// leaves the engine's heap here as one encoded partition, keyed by
	// (job, seq, task, reducer); the reduce phase below fetches the
	// partitions back in the same task order, so grouping, reduce input
	// order, and therefore output bytes are identical to the in-process
	// path. Once shipped, the backend is the sole holder of the shuffle:
	// ship and fetch errors fail the job, the way a real cluster fails a
	// job whose map outputs become unreachable.
	var pairType reflect.Type
	if rb != nil {
		defer func() {
			// Best-effort space reclamation; a failed release leaks remote
			// partitions until backend Close, nothing more.
			_ = rb.ReleaseJob(job.Name, jobSeq)
		}()
		pairType = reflect.TypeFor[pair[K, V]]()
		var shipErr error
		for i := range outs {
			for r, bucket := range outs[i].buckets {
				if shipErr == nil && len(bucket) > 0 {
					data, err := wire.EncodeSlice(bucket)
					if err == nil {
						err = rb.ShipPartition(PartKey{Job: job.Name, Seq: jobSeq, Task: i, Reducer: r}, data)
					}
					shipErr = err
				}
				putSlice(bucket)
				outs[i].buckets[r] = nil
			}
		}
		if shipErr != nil {
			st.SimSeconds = c.cfg.Cost.JobTime(c.cfg.Machines, st) + st.PenaltySeconds + st.StorageSeconds
			c.record(st)
			return nil, st, fmt.Errorf("mr: job %q: shuffle ship: %w", job.Name, shipErr)
		}
	}

	// --- Shuffle + reduce phases ----------------------------------------
	// Every reduce task independently groups its own partition with a
	// pooled two-pass arena (see group.go) — both passes walk the map
	// tasks' buckets in task order, so reduce input order (and therefore
	// floating-point summation order) is deterministic — and immediately
	// reduces it, with Reduce receiving contiguous subslices of the
	// arena instead of per-key heap slices. Reducer partitions are
	// disjoint, so the tasks parallelize with no synchronization beyond
	// the pool itself.
	keyCap, outCap, arenaCap := 0, 0, 0
	if hasHint {
		keyCap = int(hint.keysPerReducer) + 1
		outCap = int(hint.outPerReducer) + 1
		arenaCap = int(hint.pairsPerReducer) + 1
	}
	results := make([][]O, reducers)
	resultBytes := make([]int64, reducers)
	keyCounts := make([]int64, reducers)
	redInputs := make([]int64, reducers) // pairs per reduce task, for the fault pass
	var fetchErrs []error
	if rb != nil {
		fetchErrs = make([]error, reducers)
	}
	runPool(pool, reducers, func(r int) {
		// Assemble this reducer's partition in map-task order. In process
		// the buckets alias the map outputs directly; with a backend each
		// one is fetched back and decoded — same order, same pairs, so
		// the group arena sees identical input either way.
		buckets := make([][]pair[K, V], len(outs))
		if rb == nil {
			for i := range outs {
				buckets[i] = outs[i].buckets[r]
			}
		} else {
			for i := range outs {
				data, err := rb.FetchPartition(PartKey{Job: job.Name, Seq: jobSeq, Task: i, Reducer: r})
				if err == nil && len(data) > 0 {
					var dec any
					dec, err = wire.DecodeSlice(pairType, data)
					if err == nil {
						buckets[i] = dec.([]pair[K, V])
					}
				}
				if err != nil {
					fetchErrs[r] = fmt.Errorf("partition task %d reducer %d: %w", i, r, err)
					return
				}
			}
		}
		g := getGroupArena[K, V](keyCap)
		for _, bucket := range buckets {
			redInputs[r] += int64(len(bucket))
			g.count(bucket)
		}
		g.layout(arenaCap)
		for i, bucket := range buckets {
			g.scatter(bucket)
			if rb == nil {
				putSlice(bucket)
				outs[i].buckets[r] = nil
			}
			buckets[i] = nil
		}
		out := getSlice[O](outCap)
		emit := func(o O) {
			out = append(out, o)
		}
		for i, k := range g.keys {
			job.Reduce(k, g.group(i), emit)
		}
		// Size outputs in one walk after the reduce loop rather than per
		// emit, keeping the hot emit closure to a bare append.
		var bytes int64
		if job.OutSize == nil {
			bytes = int64(len(out)) * 24
		} else {
			for i := range out {
				bytes += outSize(out[i])
			}
		}
		results[r] = out
		resultBytes[r] = bytes
		keyCounts[r] = int64(len(g.keys))
		putGroupArena(g)
	})

	if rb != nil {
		for _, ferr := range fetchErrs {
			if ferr == nil {
				continue
			}
			for r, out := range results {
				putSlice(out)
				results[r] = nil
			}
			st.SimSeconds = c.cfg.Cost.JobTime(c.cfg.Machines, st) + st.PenaltySeconds + st.StorageSeconds
			c.record(st)
			return nil, st, fmt.Errorf("mr: job %q: shuffle fetch: %w", job.Name, ferr)
		}
	}

	// --- Reduce fault pass ------------------------------------------------
	// Same scheme as the map pass; the blacklist state carries over so a
	// machine that failed map attempts stays blacklisted for reduce.
	if plan != nil {
		rtasks := make([]taskCost, reducers)
		for r := range rtasks {
			rtasks[r] = taskCost{
				records: redInputs[r],
				bytes:   resultBytes[r],
				seconds: float64(redInputs[r])*c.cfg.Cost.PerReduceRecord +
					float64(resultBytes[r])*c.cfg.Cost.PerDFSByte,
			}
		}
		if ferr := plan.applyPhase(&st, fstate, c.cfg.Cost, job.Name, jobSeq, phaseReduce, rtasks); ferr != nil {
			for r, out := range results {
				putSlice(out)
				results[r] = nil
			}
			st.SimSeconds = c.cfg.Cost.JobTime(c.cfg.Machines, st) + st.PenaltySeconds + st.StorageSeconds
			c.record(st)
			return nil, st, ferr
		}
	} else {
		st.ReduceAttempts = reducers
	}

	var total int
	for _, out := range results {
		total += len(out)
	}
	// The concatenated output comes from the typed pool: big jobs emit
	// hundreds of megabytes here, and cycling fresh slabs through the
	// allocator every job turns into page-fault storms. Callers that
	// drop large outputs quickly can hand the slice back with Recycle.
	all := getSlice[O](total)
	var distinctKeys int64
	for r, out := range results {
		all = append(all, out...)
		st.OutputRecords += int64(len(out))
		st.OutputBytes += resultBytes[r]
		distinctKeys += keyCounts[r]
		putSlice(out)
		results[r] = nil
	}

	if job.Output != "" {
		w, err := c.fs.Create(job.Output)
		if err != nil {
			putSlice(all)
			return nil, st, fmt.Errorf("mr: job %q: %w", job.Name, err)
		}
		// One typed block instead of len(all) boxed records: downstream
		// typed inputs read it back zero-copy. The DFS owns the payload,
		// so it gets a copy and the caller keeps all.
		blk := make([]O, len(all))
		copy(blk, all)
		w.AppendBlock(blk, len(blk), st.OutputBytes)
		w.Close()
	}

	st.SimSeconds = c.cfg.Cost.JobTime(c.cfg.Machines, st) + st.PenaltySeconds + st.StorageSeconds
	c.record(st)
	if st.MapTasks > 0 {
		shuffled := st.ShuffleRecords - job.ExtraShuffleRecords
		c.setHint(job.Name, shuffleHint{
			pairsPerBucket:  ceilDiv(shuffled, int64(st.MapTasks)*int64(reducers)),
			pairsPerReducer: ceilDiv(shuffled, int64(reducers)),
			keysPerReducer:  ceilDiv(distinctKeys, int64(reducers)),
			outPerReducer:   ceilDiv(st.OutputRecords, int64(reducers)),
		})
	}
	return all, st, nil
}

func ceilDiv(a, b int64) int64 {
	if b <= 0 {
		return 0
	}
	return (a + b - 1) / b
}

// splitBounds computes the same n+1 contiguous split boundaries over
// count records that dfs.SplitRanges produces, so the typed block path
// and the boxed record path cut identical map tasks.
func splitBounds(count, n int) []int {
	if n <= 0 {
		n = 1
	}
	bounds := make([]int, n+1)
	per := (count + n - 1) / n
	for i := 1; i <= n; i++ {
		hi := i * per
		if hi > count {
			hi = count
		}
		bounds[i] = hi
	}
	return bounds
}

// combineScratch is the reusable grouping state of combineBucket. One
// instance serves all of a map task's buckets (and, via the typed
// pools, later tasks of jobs with the same key/value types), so the
// key map and value slices are allocated once instead of per bucket.
type combineScratch[K comparable, V any] struct {
	idx  map[K]int
	keys []K
	// hs records each key's raw partition hash (from the first pair
	// seen), so the flattened pairs keep the hash the group table needs.
	hs   []uint64
	vals [][]V
}

func getCombineScratch[K comparable, V any]() *combineScratch[K, V] {
	if v := poolFor[*combineScratch[K, V]]().Get(); v != nil {
		return v.(*combineScratch[K, V])
	}
	return &combineScratch[K, V]{idx: make(map[K]int)}
}

func putCombineScratch[K comparable, V any](s *combineScratch[K, V]) {
	s.reset()
	// Value slices are truncated lazily as keys are registered, so
	// stale values can linger past their length; clear the full
	// retained storage so pooled scratch pins no values.
	for i := range s.vals {
		v := s.vals[i][:cap(s.vals[i])]
		clear(v)
		s.vals[i] = v[:0]
	}
	poolFor[*combineScratch[K, V]]().Put(s)
}

// reset readies the scratch for the next bucket. Value slices are not
// touched here — combineBucket truncates each slot as it re-registers
// it, keeping reset O(keys of the previous bucket).
func (s *combineScratch[K, V]) reset() {
	clear(s.idx)
	clear(s.keys)
	s.keys = s.keys[:0]
	s.hs = s.hs[:0]
}

// combineBucket groups one task's bucket by key (preserving first-seen
// key order), applies the combiner, and flattens back to pairs. The
// combiner may expand a key's values (return more than one); the output
// grows past the original bucket as needed.
func combineBucket[K comparable, V any](bucket []pair[K, V], combine func(K, []V) []V, s *combineScratch[K, V]) []pair[K, V] {
	if len(bucket) == 0 {
		return bucket
	}
	s.reset()
	for _, p := range bucket {
		i, ok := s.idx[p.k]
		if !ok {
			i = len(s.keys)
			s.idx[p.k] = i
			s.keys = append(s.keys, p.k)
			s.hs = append(s.hs, p.h)
			if i < len(s.vals) {
				s.vals[i] = s.vals[i][:0]
			} else {
				s.vals = append(s.vals, nil)
			}
		}
		s.vals[i] = append(s.vals[i], p.v)
	}
	// The grouped values live in scratch storage, so the bucket itself
	// can be rewritten in place.
	out := bucket[:0]
	for i, k := range s.keys {
		for _, v := range combine(k, s.vals[i]) {
			out = append(out, pair[K, V]{k: k, v: v, h: s.hs[i]})
		}
	}
	return out
}

// runPool executes fn(0..n-1) using at most width concurrent goroutines.
func runPool(width, n int, fn func(i int)) {
	if width > n {
		width = n
	}
	if width <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < width; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
