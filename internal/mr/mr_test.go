package mr

import (
	"errors"
	"sort"
	"strings"
	"testing"
)

func testCluster(machines int) *Cluster {
	return NewCluster(Config{Machines: machines, SlotsPerMachine: 2})
}

// wordCount is the canonical smoke test: one input of strings, counts
// per word.
func runWordCount(t *testing.T, c *Cluster, lines []string) map[string]int {
	t.Helper()
	if err := WriteFile(c, "lines", lines, func(s string) int64 { return int64(len(s)) }); err != nil {
		t.Fatal(err)
	}
	type kv struct {
		Word  string
		Count int
	}
	out, _, err := Run(c, Job[string, int, kv]{
		Name: "wordcount",
		Inputs: []Input[string, int]{{
			File: "lines",
			Map: func(rec any, emit func(string, int)) {
				for _, w := range strings.Fields(rec.(string)) {
					emit(w, 1)
				}
			},
		}},
		Reduce: func(k string, vs []int, emit func(kv)) {
			s := 0
			for _, v := range vs {
				s += v
			}
			emit(kv{k, s})
		},
		Partition: func(k string) uint64 {
			var h uint64 = 14695981039346656037
			for i := 0; i < len(k); i++ {
				h = (h ^ uint64(k[i])) * 1099511628211
			}
			return h
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int{}
	for _, o := range out {
		got[o.Word] = o.Count
	}
	return got
}

func TestWordCount(t *testing.T) {
	c := testCluster(4)
	got := runWordCount(t, c, []string{"a b a", "b c", "a"})
	want := map[string]int{"a": 3, "b": 2, "c": 1}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("count[%s]=%d want %d", k, got[k], v)
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	lines := []string{"x y z", "z z y", "x", "w v u t s r q p o n m"}
	c1 := testCluster(3)
	c2 := testCluster(7) // different parallelism must not change results
	a := runWordCount(t, c1, lines)
	b := runWordCount(t, c2, lines)
	if len(a) != len(b) {
		t.Fatalf("different sizes: %v vs %v", a, b)
	}
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("mismatch at %q: %d vs %d", k, v, b[k])
		}
	}
}

func TestJobStatsCounting(t *testing.T) {
	c := testCluster(2)
	if err := WriteFile(c, "nums", []int64{1, 2, 3, 4}, func(int64) int64 { return 8 }); err != nil {
		t.Fatal(err)
	}
	_, st, err := Run(c, Job[int64, int64, int64]{
		Name: "double",
		Inputs: []Input[int64, int64]{{
			File: "nums",
			Map: func(rec any, emit func(int64, int64)) {
				emit(rec.(int64)%2, rec.(int64))
			},
		}},
		Reduce: func(k int64, vs []int64, emit func(int64)) {
			var s int64
			for _, v := range vs {
				s += v
			}
			emit(s)
		},
		Partition: HashInt64,
		KVSize:    func(int64, int64) int64 { return 16 },
		OutSize:   func(int64) int64 { return 8 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.InputRecords != 4 || st.InputBytes != 32 {
		t.Fatalf("input: %+v", st)
	}
	if st.ShuffleRecords != 4 || st.ShuffleBytes != 64 {
		t.Fatalf("shuffle: %+v", st)
	}
	if st.OutputRecords != 2 || st.OutputBytes != 16 {
		t.Fatalf("output: %+v", st)
	}
	if st.SimSeconds <= 0 {
		t.Fatal("no simulated time")
	}
	tot := c.Totals()
	if tot.Jobs != 1 || tot.ShuffleRecords != 4 || tot.MaxShuffleRecords != 4 {
		t.Fatalf("totals: %+v", tot)
	}
}

func TestMultipleInputs(t *testing.T) {
	// Two files with different record types feeding one shuffle — the
	// IMHP pattern.
	c := testCluster(2)
	WriteFile(c, "as", []int64{1, 2}, func(int64) int64 { return 8 })
	WriteFile(c, "bs", []string{"10", "20"}, func(string) int64 { return 2 })
	out, _, err := Run(c, Job[int64, int64, int64]{
		Name: "join",
		Inputs: []Input[int64, int64]{
			{File: "as", Map: func(rec any, emit func(int64, int64)) { emit(0, rec.(int64)) }},
			{File: "bs", Map: func(rec any, emit func(int64, int64)) {
				emit(0, int64(len(rec.(string))))
			}},
		},
		Reduce: func(k int64, vs []int64, emit func(int64)) {
			var s int64
			for _, v := range vs {
				s += v
			}
			emit(s)
		},
		Partition: HashInt64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0] != 1+2+2+2 {
		t.Fatalf("out=%v", out)
	}
}

func TestOutputFileMaterialization(t *testing.T) {
	c := testCluster(2)
	WriteFile(c, "in", []int64{5, 6}, func(int64) int64 { return 8 })
	_, st, err := Run(c, Job[int64, int64, int64]{
		Name:   "pass",
		Inputs: []Input[int64, int64]{{File: "in", Map: func(rec any, emit func(int64, int64)) { emit(rec.(int64), rec.(int64)) }}},
		Reduce: func(k int64, vs []int64, emit func(int64)) {
			for _, v := range vs {
				emit(v)
			}
		},
		Partition: HashInt64,
		Output:    "out",
		OutSize:   func(int64) int64 { return 8 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.OutputRecords != 2 {
		t.Fatalf("stats: %+v", st)
	}
	back, err := ReadFile[int64](c, "out")
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(back, func(i, j int) bool { return back[i] < back[j] })
	if len(back) != 2 || back[0] != 5 || back[1] != 6 {
		t.Fatalf("back=%v", back)
	}
}

func TestResourceExhaustion(t *testing.T) {
	c := NewCluster(Config{Machines: 2, MaxShuffleRecords: 10})
	WriteFile(c, "in", []int64{0, 1, 2, 3}, func(int64) int64 { return 8 })
	_, _, err := Run(c, Job[int64, int64, int64]{
		Name: "explode",
		Inputs: []Input[int64, int64]{{File: "in", Map: func(rec any, emit func(int64, int64)) {
			for i := int64(0); i < 100; i++ {
				emit(i, 1)
			}
		}}},
		Reduce:    func(k int64, vs []int64, emit func(int64)) { emit(0) },
		Partition: HashInt64,
	})
	var re *ErrResourceExhausted
	if !errors.As(err, &re) {
		t.Fatalf("want ErrResourceExhausted, got %v", err)
	}
	if re.Limit != 10 {
		t.Fatalf("limit=%d", re.Limit)
	}
	// The failed job is still recorded (it consumed cluster time).
	if c.Totals().Jobs != 1 {
		t.Fatal("failed job not recorded")
	}
}

func TestJobValidation(t *testing.T) {
	c := testCluster(1)
	if _, _, err := Run(c, Job[int64, int64, int64]{Name: "no-inputs", Reduce: func(int64, []int64, func(int64)) {}, Partition: HashInt64}); err == nil {
		t.Fatal("missing inputs accepted")
	}
	WriteFile(c, "in", []int64{1}, func(int64) int64 { return 8 })
	in := []Input[int64, int64]{{File: "in", Map: func(rec any, emit func(int64, int64)) {}}}
	if _, _, err := Run(c, Job[int64, int64, int64]{Name: "no-reduce", Inputs: in, Partition: HashInt64}); err == nil {
		t.Fatal("missing reduce accepted")
	}
	if _, _, err := Run(c, Job[int64, int64, int64]{Name: "no-part", Inputs: in, Reduce: func(int64, []int64, func(int64)) {}}); err == nil {
		t.Fatal("missing partition accepted")
	}
	if _, _, err := Run(c, Job[int64, int64, int64]{Name: "bad-file", Inputs: []Input[int64, int64]{{File: "zzz", Map: func(any, func(int64, int64)) {}}}, Reduce: func(int64, []int64, func(int64)) {}, Partition: HashInt64}); err == nil {
		t.Fatal("missing input file accepted")
	}
}

func TestCostModelShape(t *testing.T) {
	cm := DefaultCostModel()
	// A Fig.8-scale job: ~10⁸ nnz input, ~10⁹ shuffled records.
	st := JobStats{InputRecords: 1.4e8, ShuffleRecords: 2.9e9, ShuffleBytes: 1e11, InputBytes: 4e9, OutputBytes: 4e9}
	t10 := cm.JobTime(10, st)
	t40 := cm.JobTime(40, st)
	if t40 >= t10 {
		t.Fatalf("more machines should be faster on parallel work: T10=%v T40=%v", t10, t40)
	}
	// Speedup must be sublinear because of startup + coordination.
	if t10/t40 >= 4 {
		t.Fatalf("speedup %v should be sublinear", t10/t40)
	}
	// With enormous machine counts coordination dominates and time grows.
	if cm.JobTime(100000, st) <= cm.JobTime(40, st) {
		t.Fatal("coordination overhead should eventually dominate")
	}
}

func TestClusterDefaults(t *testing.T) {
	c := NewCluster(Config{})
	if c.Machines() != 1 || c.Workers() != 4 {
		t.Fatalf("defaults: machines=%d workers=%d", c.Machines(), c.Workers())
	}
}

func TestResetCounters(t *testing.T) {
	c := testCluster(2)
	runWordCount(t, c, []string{"a"})
	c.ResetCounters()
	if c.Totals().Jobs != 0 || len(c.Jobs()) != 0 {
		t.Fatal("counters not reset")
	}
}

func TestHashSpread(t *testing.T) {
	// Sequential int64 keys must spread across reducers, not collide
	// into one.
	buckets := map[uint64]int{}
	for i := int64(0); i < 1000; i++ {
		buckets[HashInt64(i)%8]++
	}
	for b, n := range buckets {
		if n > 400 {
			t.Fatalf("bucket %d got %d of 1000 keys", b, n)
		}
	}
	pb := map[uint64]int{}
	for i := int64(0); i < 40; i++ {
		for j := int64(0); j < 25; j++ {
			pb[HashPair([2]int64{i, j})%8]++
		}
	}
	for b, n := range pb {
		if n > 400 {
			t.Fatalf("pair bucket %d got %d of 1000 keys", b, n)
		}
	}
}
