package mr

import (
	"errors"
	"testing"

	"github.com/haten2/haten2/internal/dfs"
)

// runStorageChain runs a deterministic two-job chain on a cluster whose
// DFS uses small blocks (so files span several), returning the final
// outputs. Errors (data loss under aggressive plans) are returned, not
// fatal, so seed searches can skip doomed seeds.
func runStorageChain(c *Cluster) ([]int64, error) {
	vals := make([]int64, 64)
	for i := range vals {
		vals[i] = int64(i * 3)
	}
	WriteFile(c, "chain/in", vals, func(int64) int64 { return 16 })
	out1, _, err := Run(c, Job[int64, int64, int64]{
		Name:   "chain-1",
		Inputs: []Input[int64, int64]{MapInput("chain/in", func(v int64, emit func(int64, int64)) { emit(v%7, v) })},
		Reduce: func(k int64, vs []int64, emit func(int64)) {
			var s int64
			for _, v := range vs {
				s += v
			}
			emit(k*1000 + s)
		},
		Partition: HashInt64,
		Output:    "chain/mid",
	})
	if err != nil {
		return nil, err
	}
	Recycle(out1)
	out2, _, err := Run(c, Job[int64, int64, int64]{
		Name:   "chain-2",
		Inputs: []Input[int64, int64]{MapInput("chain/mid", func(v int64, emit func(int64, int64)) { emit(v%5, v) })},
		Reduce: func(k int64, vs []int64, emit func(int64)) {
			var s int64
			for _, v := range vs {
				s += v
			}
			emit(s)
		},
		Partition: HashInt64,
	})
	if err != nil {
		return nil, err
	}
	res := make([]int64, len(out2))
	copy(res, out2)
	Recycle(out2)
	return res, nil
}

func storageCluster(repl int) *Cluster {
	return NewClusterWithFS(Config{Machines: 4},
		dfs.New(dfs.Options{BlockSize: 128, Replication: repl, Machines: 4}))
}

// TestStorageFaultsMoveTimeAndCountersNotOutputs is the headline
// invariant at the engine level: a seeded corruption/loss plan changes
// JobStats counters and SimSeconds, never the bytes a job chain
// produces.
func TestStorageFaultsMoveTimeAndCountersNotOutputs(t *testing.T) {
	clean, err := runStorageChain(storageCluster(3))
	if err != nil {
		t.Fatal(err)
	}

	plan := func(s int64) *FaultPlan {
		return &FaultPlan{Seed: s, BlockCorruptRate: 0.25, ReplicaLossRate: 0.15}
	}
	var seed int64 = -1
	for s := int64(0); s < 200; s++ {
		c := storageCluster(3)
		c.InstallFaultPlan(plan(s))
		got, err := runStorageChain(c)
		if err != nil {
			var dl *dfs.ErrDataLoss
			if !errors.As(err, &dl) {
				t.Fatalf("seed %d: unexpected error class: %v", s, err)
			}
			continue
		}
		tot := c.Totals()
		if tot.CorruptBlocks == 0 || tot.LostReplicas == 0 {
			continue
		}
		if len(got) != len(clean) {
			t.Fatalf("seed %d: storage faults changed output count", s)
		}
		for i := range clean {
			if got[i] != clean[i] {
				t.Fatalf("seed %d: storage faults changed output %d: %d vs %d", s, i, got[i], clean[i])
			}
		}
		seed = s
		break
	}
	if seed < 0 {
		t.Fatal("no seed under 200 survived with both corruption and loss detected")
	}

	c := storageCluster(3)
	c.InstallFaultPlan(plan(seed))
	if _, err := runStorageChain(c); err != nil {
		t.Fatal(err)
	}
	tot := c.Totals()
	if tot.FailoverReads == 0 || tot.FailoverBytes == 0 {
		t.Fatalf("corruption detected but no failover charged: %+v", tot)
	}
	if tot.ReReplications != tot.CorruptBlocks+tot.LostReplicas {
		t.Fatalf("read-repair did not restore every bad copy: %+v", tot)
	}
	if tot.StorageSeconds <= 0 {
		t.Fatalf("storage faults charged no simulated time: %+v", tot)
	}
	cc := storageCluster(3)
	if _, err := runStorageChain(cc); err != nil {
		t.Fatal(err)
	}
	if cleanTot := cc.Totals(); tot.SimSeconds <= cleanTot.SimSeconds {
		t.Fatalf("faulty run not slower: %.3f vs %.3f", tot.SimSeconds, cleanTot.SimSeconds)
	}
	// The job-level deltas must tile the FS-level counters exactly.
	fst := c.FS().Stats()
	if tot.CorruptBlocks != fst.CorruptBlocks || tot.ScrubBytes != fst.ScrubBytes ||
		tot.FailoverBytes != fst.FailoverBytes || tot.LostReplicas != fst.LostReplicas {
		t.Fatalf("job deltas disagree with dfs.Stats: %+v vs %+v", tot, fst)
	}
}

// TestStorageCountersDeterministic pins that two identical faulty runs
// produce identical totals — the storage decisions are pure hashes,
// independent of scheduling.
func TestStorageCountersDeterministic(t *testing.T) {
	run := func() Totals {
		c := storageCluster(2)
		c.InstallFaultPlan(&FaultPlan{Seed: 11, BlockCorruptRate: 0.1, ReplicaLossRate: 0.1})
		if _, err := runStorageChain(c); err != nil {
			var dl *dfs.ErrDataLoss
			if !errors.As(err, &dl) {
				t.Fatalf("unexpected error class: %v", err)
			}
		}
		return c.Totals()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("storage totals not deterministic:\n%+v\n%+v", a, b)
	}
}

// TestStorageReplicationFactorInvariant runs the same chain at
// replication 1, 2, and 3 with no faults: outputs must be identical —
// replication buys durability, not different answers — while the
// physical write amplification scales with the factor.
func TestStorageReplicationFactorInvariant(t *testing.T) {
	r1 := storageCluster(1)
	base, err := runStorageChain(r1)
	if err != nil {
		t.Fatal(err)
	}
	var s3 dfs.Stats
	for _, repl := range []int{2, 3} {
		c := storageCluster(repl)
		got, err := runStorageChain(c)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(base) {
			t.Fatalf("replication %d changed output count: %d vs %d", repl, len(got), len(base))
		}
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("replication %d changed output %d", repl, i)
			}
		}
		if repl == 3 {
			s3 = c.FS().Stats()
		}
	}
	s1 := r1.FS().Stats()
	if s3.BytesReplWrite != 3*s1.BytesReplWrite {
		t.Fatalf("replication 3 wrote %d physical bytes, want 3x %d", s3.BytesReplWrite, s1.BytesReplWrite)
	}
	if s1.BytesWritten != s3.BytesWritten {
		t.Fatalf("logical bytes differ across replication: %d vs %d", s1.BytesWritten, s3.BytesWritten)
	}
}
