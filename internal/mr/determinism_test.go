package mr

import (
	"bytes"
	"errors"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"github.com/haten2/haten2/internal/obs"
)

// TestExhaustionStatsDeterministic pins the deterministic
// resource-limit accounting: when MaxShuffleRecords trips, the recorded
// ShuffleRecords/ShuffleBytes must be the in-order prefix through the
// tripping map task — identical run-to-run and across GOMAXPROCS
// settings, even though tasks complete in scheduler order.
func TestExhaustionStatsDeterministic(t *testing.T) {
	run := func(procs int) (int64, int64) {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
		// 8 workers → 8 map tasks of 8 records each; every record fans
		// out ×20, so tasks contribute 160 records apiece and the
		// prefix 160, 320, 480, 640 crosses the 500-record limit at
		// task index 3.
		c := NewCluster(Config{Machines: 4, SlotsPerMachine: 2, MaxShuffleRecords: 500})
		items := make([]int64, 64)
		for i := range items {
			items[i] = int64(i)
		}
		if err := WriteFile(c, "in", items, func(int64) int64 { return 8 }); err != nil {
			t.Fatal(err)
		}
		_, st, err := Run(c, Job[int64, int64, int64]{
			Name: "explode",
			Inputs: []Input[int64, int64]{{File: "in", Map: func(r any, emit func(int64, int64)) {
				for i := int64(0); i < 20; i++ {
					emit(r.(int64)*20+i, 1)
				}
			}}},
			Reduce:    func(k int64, vs []int64, emit func(int64)) { emit(k) },
			Partition: HashInt64,
		})
		var re *ErrResourceExhausted
		if !errors.As(err, &re) {
			t.Fatalf("want ErrResourceExhausted, got %v", err)
		}
		return st.ShuffleRecords, st.ShuffleBytes
	}
	wantRecords, wantBytes := run(1)
	if wantRecords != 640 {
		t.Fatalf("prefix through the tripping task should count 4 tasks x 160 records, got %d", wantRecords)
	}
	for _, procs := range []int{1, 2, 4, 8} {
		for rep := 0; rep < 5; rep++ {
			gotRecords, gotBytes := run(procs)
			if gotRecords != wantRecords || gotBytes != wantBytes {
				t.Fatalf("GOMAXPROCS=%d rep %d: stats %d/%d differ from %d/%d",
					procs, rep, gotRecords, gotBytes, wantRecords, wantBytes)
			}
		}
	}
}

// TestExhaustionByPhantomChargeOnly covers the corner where
// ExtraShuffleRecords alone exceeds the limit: no map task output is
// counted, so the recorded shuffle is exactly the phantom charge.
func TestExhaustionByPhantomChargeOnly(t *testing.T) {
	c := NewCluster(Config{Machines: 2, MaxShuffleRecords: 50})
	WriteFile(c, "in", []int64{1, 2}, func(int64) int64 { return 8 })
	_, st, err := Run(c, Job[int64, int64, int64]{
		Name:                "phantom-only",
		Inputs:              []Input[int64, int64]{{File: "in", Map: func(r any, emit func(int64, int64)) { emit(0, 1) }}},
		Reduce:              func(k int64, vs []int64, emit func(int64)) { emit(k) },
		Partition:           HashInt64,
		ExtraShuffleRecords: 200,
		ExtraShuffleBytes:   1600,
	})
	var re *ErrResourceExhausted
	if !errors.As(err, &re) {
		t.Fatalf("want ErrResourceExhausted, got %v", err)
	}
	if st.ShuffleRecords != 200 || st.ShuffleBytes != 1600 {
		t.Fatalf("phantom-only exhaustion should count just the charge: %+v", st)
	}
}

// TestCombinerExpandsValues covers a combiner that returns more than
// one value per key — the output legitimately grows past the original
// bucket.
func TestCombinerExpandsValues(t *testing.T) {
	c := NewCluster(Config{Machines: 1, SlotsPerMachine: 1})
	WriteFile(c, "in", []int64{0}, func(int64) int64 { return 8 })
	out, st, err := Run(c, Job[int64, int64, int64]{
		Name: "expand",
		Inputs: []Input[int64, int64]{{File: "in", Map: func(r any, emit func(int64, int64)) {
			for k := int64(0); k < 4; k++ {
				emit(k, 5)
			}
		}}},
		// Split each key's single value into three parts: 4 pairs in,
		// 12 pairs out of the map task.
		Combine: func(k int64, vs []int64) []int64 {
			var s int64
			for _, v := range vs {
				s += v
			}
			return []int64{s - 2, 1, 1}
		},
		Reduce: func(k int64, vs []int64, emit func(int64)) {
			var s int64
			for _, v := range vs {
				s += v
			}
			emit(s)
		},
		Partition: HashInt64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.ShuffleRecords != 12 {
		t.Fatalf("expanding combiner should shuffle 12 records, got %d", st.ShuffleRecords)
	}
	if len(out) != 4 {
		t.Fatalf("out=%v", out)
	}
	for _, o := range out {
		if o != 5 {
			t.Fatalf("expansion must preserve per-key totals: %v", out)
		}
	}
}

// TestCombinerScratchReuseAcrossBuckets runs a combiner job whose map
// task fills many reducer buckets, so the shared per-task scratch is
// exercised across consecutive buckets with different key sets.
func TestCombinerScratchReuseAcrossBuckets(t *testing.T) {
	c := NewCluster(Config{Machines: 4, SlotsPerMachine: 4})
	items := make([]int64, 256)
	for i := range items {
		items[i] = int64(i)
	}
	WriteFile(c, "in", items, func(int64) int64 { return 8 })
	out, _, err := Run(c, Job[int64, int64, int64]{
		Name: "scratch",
		Inputs: []Input[int64, int64]{{File: "in", Map: func(r any, emit func(int64, int64)) {
			emit(r.(int64)%32, 1)
		}}},
		Combine: func(k int64, vs []int64) []int64 {
			var s int64
			for _, v := range vs {
				s += v
			}
			return []int64{s}
		},
		Reduce: func(k int64, vs []int64, emit func(int64)) {
			var s int64
			for _, v := range vs {
				s += v
			}
			emit(s)
		},
		Partition: HashInt64,
	})
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, o := range out {
		total += o
	}
	if len(out) != 32 || total != 256 {
		t.Fatalf("len=%d total=%d", len(out), total)
	}
}

// TestConcurrentRunsAndSnapshots exercises ResetCounters, Jobs, and
// Totals while jobs run concurrently (run under -race in CI). Jobs must
// return an isolated copy, and the final log must reflect exactly the
// jobs recorded after the last reset.
func TestConcurrentRunsAndSnapshots(t *testing.T) {
	c := testCluster(2)
	WriteFile(c, "in", []int64{1, 2, 3, 4}, func(int64) int64 { return 8 })
	job := func(name string) Job[int64, int64, int64] {
		return Job[int64, int64, int64]{
			Name:   name,
			Inputs: []Input[int64, int64]{{File: "in", Map: func(r any, emit func(int64, int64)) { emit(r.(int64), 1) }}},
			Reduce: func(k int64, vs []int64, emit func(int64)) {
				var s int64
				for _, v := range vs {
					s += v
				}
				emit(s)
			},
			Partition: HashInt64,
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if _, _, err := Run(c, job("concurrent")); err != nil {
					t.Error(err)
					return
				}
				// Snapshots taken mid-flight must be internally
				// consistent and safe to mutate.
				jobs := c.Jobs()
				for _, j := range jobs {
					if j.Name != "concurrent" {
						t.Errorf("foreign job in log: %q", j.Name)
						return
					}
				}
				if len(jobs) > 0 {
					jobs[0].Name = "mutated"
					if got := c.Jobs(); len(got) > 0 && got[0].Name == "mutated" {
						t.Error("Jobs() returned an aliased slice")
						return
					}
				}
				_ = c.Totals()
				if i == 3 {
					c.ResetCounters()
				}
			}
		}()
	}
	wg.Wait()
	// Quiesced: the job log and totals must agree with each other.
	jobs := c.Jobs()
	tot := c.Totals()
	if len(jobs) != tot.Jobs {
		t.Fatalf("job log has %d entries, totals say %d", len(jobs), tot.Jobs)
	}
	c.ResetCounters()
	if len(c.Jobs()) != 0 || c.Totals().Jobs != 0 {
		t.Fatal("reset did not clear counters")
	}
	// The engine still works after resets, and hints survive them.
	if _, st, err := Run(c, job("concurrent")); err != nil || st.OutputRecords != 4 {
		t.Fatalf("post-reset run: st=%+v err=%v", st, err)
	}
}

// TestFaultDeterminismAcrossProcs runs the same seeded FaultPlan at
// GOMAXPROCS ∈ {1, 4, 16} and asserts the whole observable surface is
// bit-identical: outputs, the per-job stats log in order (including
// every retry/speculation/waste counter and the float-valued penalty),
// and the cluster totals. Fault decisions are pure hashes applied in a
// sequential post-pass, so scheduling must never leak in.
func TestFaultDeterminismAcrossProcs(t *testing.T) {
	type snapshot struct {
		out    []int64
		jobs   []JobStats
		totals Totals
	}
	run := func(procs int) snapshot {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
		// Near-zero SpeculativeDelay so the test's sub-second tasks can
		// trigger speculative backups at all.
		cost := DefaultCostModel()
		cost.SpeculativeDelay = 1e-9
		c := NewCluster(Config{Machines: 8, SlotsPerMachine: 2, Cost: cost})
		items := make([]int64, 128)
		for i := range items {
			items[i] = int64(i)
		}
		if err := WriteFile(c, "in", items, func(int64) int64 { return 8 }); err != nil {
			t.Fatal(err)
		}
		c.InstallFaultPlan(&FaultPlan{
			Seed:          42,
			FailureRate:   0.25,
			StragglerRate: 0.15,
			MaxAttempts:   32,
		})
		job := Job[int64, int64, int64]{
			Name: "fault-sweep",
			Inputs: []Input[int64, int64]{{File: "in", Map: func(r any, emit func(int64, int64)) {
				x := r.(int64)
				for i := int64(0); i < 3; i++ {
					emit((x*7+i)%64, x+i)
				}
			}}},
			Reduce: func(k int64, vs []int64, emit func(int64)) {
				var s int64
				for _, v := range vs {
					s += v
				}
				emit(k<<20 ^ s)
			},
			Partition: HashInt64,
		}
		var out []int64
		for rep := 0; rep < 3; rep++ { // several jobs → several jobSeq values
			o, _, err := Run(c, job)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, o...)
		}
		return snapshot{out: out, jobs: c.Jobs(), totals: c.Totals()}
	}
	want := run(1)
	if want.totals.TaskRetries == 0 || want.totals.SpeculativeTasks == 0 {
		t.Fatalf("plan injected nothing to check: %+v", want.totals)
	}
	for _, procs := range []int{1, 4, 16} {
		for rep := 0; rep < 3; rep++ {
			got := run(procs)
			if !reflect.DeepEqual(got.out, want.out) {
				t.Fatalf("GOMAXPROCS=%d rep %d: outputs differ", procs, rep)
			}
			if !reflect.DeepEqual(got.jobs, want.jobs) {
				t.Fatalf("GOMAXPROCS=%d rep %d: job stats differ:\n%+v\nvs\n%+v",
					procs, rep, got.jobs, want.jobs)
			}
			if got.totals != want.totals {
				t.Fatalf("GOMAXPROCS=%d rep %d: totals differ:\n%+v\nvs\n%+v",
					procs, rep, got.totals, want.totals)
			}
		}
	}
}

// TestTraceBytesDeterministicAcrossProcs runs the same faulty job
// chain with a tracer attached at GOMAXPROCS ∈ {1, 4, 16} and requires
// the exported Chrome trace to be byte-identical — span order, integer
// microsecond timestamps, phase durations, and every recovery counter.
// This is the engine-level half of the golden-trace guarantee (the
// ALS-level half lives in internal/obs).
func TestTraceBytesDeterministicAcrossProcs(t *testing.T) {
	run := func(procs int) []byte {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
		cost := DefaultCostModel()
		cost.SpeculativeDelay = 1e-9
		c := NewCluster(Config{Machines: 8, SlotsPerMachine: 2, Cost: cost})
		tr := obs.NewTracer()
		c.SetTracer(tr)
		items := make([]int64, 96)
		for i := range items {
			items[i] = int64(i)
		}
		if err := WriteFile(c, "in", items, func(int64) int64 { return 8 }); err != nil {
			t.Fatal(err)
		}
		c.InstallFaultPlan(&FaultPlan{Seed: 7, FailureRate: 0.2, StragglerRate: 0.1, MaxAttempts: 32})
		job := Job[int64, int64, int64]{
			Name: "traced",
			Inputs: []Input[int64, int64]{{File: "in", Map: func(r any, emit func(int64, int64)) {
				emit(r.(int64)%32, 1)
			}}},
			Reduce: func(k int64, vs []int64, emit func(int64)) {
				var s int64
				for _, v := range vs {
					s += v
				}
				emit(s)
			},
			Partition: HashInt64,
		}
		for rep := 0; rep < 3; rep++ {
			if _, _, err := Run(c, job); err != nil {
				t.Fatal(err)
			}
		}
		var buf bytes.Buffer
		if err := tr.WriteChromeTrace(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	want := run(1)
	if !bytes.Contains(want, []byte(`"recover"`)) {
		t.Fatal("plan injected no recovery phases; the test would not cover them")
	}
	for _, procs := range []int{1, 4, 16} {
		for rep := 0; rep < 3; rep++ {
			if got := run(procs); !bytes.Equal(got, want) {
				t.Fatalf("GOMAXPROCS=%d rep %d: trace bytes differ (%d vs %d bytes)",
					procs, rep, len(got), len(want))
			}
		}
	}
}

// TestHintsPresizeSecondRun re-runs the same-named job and checks the
// results are identical — the hint path must be invisible apart from
// buffer capacities.
func TestHintsPresizeSecondRun(t *testing.T) {
	c := testCluster(2)
	lines := []string{"a b c d", "b c d e", "c d e f", "g h", "a a a a a"}
	first := runWordCount(t, c, lines)
	if err := c.FS().Delete("lines"); err != nil {
		t.Fatal(err)
	}
	second := runWordCount(t, c, lines)
	if len(first) != len(second) {
		t.Fatalf("hinted rerun changed results: %v vs %v", first, second)
	}
	for k, v := range first {
		if second[k] != v {
			t.Fatalf("hinted rerun changed count[%q]: %d vs %d", k, v, second[k])
		}
	}
}
