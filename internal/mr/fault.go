package mr

import "fmt"

// FaultPlan is a seeded, fully deterministic failure schedule for a
// cluster — the simulator's stand-in for the flaky disks, dying
// JVMs, and slow machines a real Hadoop deployment absorbs with task
// re-execution and speculative attempts. Every decision the plan makes
// (does attempt a of task t of the j-th job fail? does task t
// straggle? which machine ran the failed attempt?) is a pure hash of
// (Seed, job sequence, phase, task, attempt): no wall clock, no global
// RNG, no scheduling dependence. Faults therefore change *simulated
// time* and the retry/waste counters, but never outputs — a faulty run
// is bit-identical to a fault-free run, which is the engine's standing
// determinism invariant.
//
// Install a plan with Cluster.InstallFaultPlan. The zero value of every
// rate disables that fault class, so FaultPlan{KillAfterJobs: 10} kills
// the cluster without injecting any task failures.
type FaultPlan struct {
	// Seed drives every fault decision. Two clusters with the same plan
	// and the same job sequence inject exactly the same faults.
	Seed int64
	// FailureRate is the probability in [0,1] that one task attempt
	// fails (map or reduce). Failed attempts are retried with
	// exponential backoff up to MaxAttempts.
	FailureRate float64
	// StragglerRate is the probability that a task's winning attempt
	// runs StragglerFactor× slower than normal — the condition
	// speculative execution exists for.
	StragglerRate float64
	// StragglerFactor is the slowdown multiplier of a straggling
	// attempt. Values ≤ 1 take the default of 8.
	StragglerFactor float64
	// MaxAttempts bounds attempts per task, like Hadoop's
	// mapred.map.max.attempts. When a task fails MaxAttempts times the
	// job dies with *ErrJobFailed. Zero takes the Hadoop default of 4.
	MaxAttempts int
	// DisableSpeculation turns speculative execution off, so stragglers
	// run to completion at their slowed pace (Hadoop's
	// mapred.map.tasks.speculative.execution=false).
	DisableSpeculation bool
	// BlacklistAfter is the number of task failures on one machine
	// before the job stops scheduling attempts there (Hadoop's per-job
	// tracker blacklist). Zero takes the default of 3. The last alive
	// machine is never blacklisted.
	BlacklistAfter int
	// KillAfterJobs, when positive, kills the whole cluster once that
	// many jobs have started: every later Run returns *ErrClusterKilled.
	// This models a JobTracker crash mid-iteration; the DFS survives
	// (HDFS replicates blocks), so a new cluster built on the same FS
	// can resume from checkpoints.
	KillAfterJobs int

	// Storage section: faults injected below the compute layer, into
	// the cluster's DFS (see dfs.StorageFaults). Decisions hash the
	// same Seed over (file, block, replica), so they are independent of
	// scheduling and of the compute faults above.

	// BlockCorruptRate is the probability that one replica copy of one
	// DFS block is silently corrupt: its checksum fails at read time
	// and the read fails over to the next copy, charging the re-read
	// and a re-replication scrub to the cost model. A block with no
	// good copy left fails the job with *dfs.ErrDataLoss.
	BlockCorruptRate float64
	// ReplicaLossRate is the probability that one replica copy of one
	// DFS block is missing (a datanode died after the write): the copy
	// is skipped from metadata without a wasted read, but still costs
	// a re-replication.
	ReplicaLossRate float64
}

// withDefaults resolves the documented zero-value defaults.
func (p FaultPlan) withDefaults() FaultPlan {
	if p.StragglerFactor <= 1 {
		p.StragglerFactor = 8
	}
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BlacklistAfter <= 0 {
		p.BlacklistAfter = 3
	}
	return p
}

// ErrJobFailed reports that a task exhausted its attempt budget, which
// fails the whole job — Hadoop's terminal "Task attempt_… failed 4
// times" outcome. The job's counters (including every failed attempt's
// wasted work) are still recorded on the cluster.
type ErrJobFailed struct {
	Job      string
	Phase    string // "map" or "reduce"
	Task     int
	Attempts int
}

func (e *ErrJobFailed) Error() string {
	return fmt.Sprintf("mr: job %q failed: %s task %d failed %d attempts",
		e.Job, e.Phase, e.Task, e.Attempts)
}

// ErrClusterKilled reports that the installed FaultPlan's KillAfterJobs
// budget is spent: the simulated JobTracker is dead and no further jobs
// run. The cluster's DFS remains readable, mirroring HDFS surviving a
// JobTracker crash.
type ErrClusterKilled struct {
	Job       string // the job whose submission found the cluster dead
	AfterJobs int
}

func (e *ErrClusterKilled) Error() string {
	return fmt.Sprintf("mr: job %q rejected: cluster killed after %d jobs (fault plan)",
		e.Job, e.AfterJobs)
}

// fault-decision channels, so the failure, straggler, and machine
// choices of one (job, task, attempt) are independent hashes.
const (
	phaseMap = uint64(iota + 1)
	phaseReduce
)

const (
	kindFail = uint64(iota + 1)
	kindStraggle
	kindMachine
)

// mix64 is the splitmix64 finalizer — the same integer mixer the
// engine's partitioners use, here stretching the plan seed over
// (job, phase, task, attempt) coordinates.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hash folds the plan seed with the given coordinates.
func (p *FaultPlan) hash(parts ...uint64) uint64 {
	h := mix64(uint64(p.Seed) ^ 0x9e3779b97f4a7c15)
	for _, q := range parts {
		h = mix64(h ^ q)
	}
	return h
}

// roll returns a uniform float in [0,1) for the given coordinates.
func (p *FaultPlan) roll(parts ...uint64) float64 {
	return float64(p.hash(parts...)>>11) / float64(uint64(1)<<53)
}

// taskCost describes one executed task to the fault pass: the records a
// re-execution would reprocess, the bytes it would re-emit, and the
// single-machine seconds one attempt costs (a task runs on one machine,
// so this is not divided by the cluster size).
type taskCost struct {
	records int64
	bytes   int64
	seconds float64
}

// faultState is the per-job recovery bookkeeping shared by the map and
// reduce fault passes: which machines the job has blacklisted.
type faultState struct {
	alive      []bool
	aliveCount int
	failures   []int
}

func newFaultState(machines int) *faultState {
	if machines <= 0 {
		machines = 1
	}
	s := &faultState{alive: make([]bool, machines), aliveCount: machines, failures: make([]int, machines)}
	for i := range s.alive {
		s.alive[i] = true
	}
	return s
}

// pickAlive deterministically maps h to one of the still-alive
// machines.
func (s *faultState) pickAlive(h uint64) int {
	k := int(h % uint64(s.aliveCount))
	for m := range s.alive {
		if !s.alive[m] {
			continue
		}
		if k == 0 {
			return m
		}
		k--
	}
	return 0 // unreachable: aliveCount > 0 by construction
}

// applyPhase replays the plan's attempt history for one phase's tasks,
// in task order (a pure post-pass — task execution itself already
// happened, and outputs are unaffected by construction). It mutates st's
// attempt/retry/waste counters and PenaltySeconds and returns a
// *ErrJobFailed when some task exhausts its attempts.
//
// The time model: a failed attempt costs its full execution time plus
// an exponential scheduler backoff (RetryBackoff · 2^(attempt-1)), and
// these serialize on the task they belong to, so the job-level penalty
// is the maximum per-task penalty — the critical path. Stragglers
// finish at StragglerFactor× their normal time unless a speculative
// attempt (launched once the task lags by SpeculativeDelay) finishes
// first; the losing attempt's work is charged as waste either way,
// exactly like Hadoop killing the slower of two attempts.
func (p *FaultPlan) applyPhase(st *JobStats, state *faultState, cost CostModel, job string, jobSeq int64, phase uint64, tasks []taskCost) *ErrJobFailed {
	phaseName := "map"
	attempts := &st.MapAttempts
	if phase == phaseReduce {
		phaseName = "reduce"
		attempts = &st.ReduceAttempts
	}
	maxPenalty := 0.0
	for t, tc := range tasks {
		penalty := 0.0
		attempt := 1
		for {
			*attempts++
			if p.roll(uint64(jobSeq), phase, uint64(t), kindFail, uint64(attempt)) >= p.FailureRate {
				break // this attempt succeeds
			}
			machine := state.pickAlive(p.hash(uint64(jobSeq), phase, uint64(t), kindMachine, uint64(attempt)))
			state.failures[machine]++
			if state.failures[machine] == p.BlacklistAfter && state.aliveCount > 1 {
				state.alive[machine] = false
				state.aliveCount--
				st.BlacklistedMachines++
			}
			st.TaskRetries++
			st.WastedRecords += tc.records
			st.WastedBytes += tc.bytes
			penalty += tc.seconds + cost.RetryBackoff*float64(int64(1)<<(attempt-1))
			if attempt == p.MaxAttempts {
				if penalty > maxPenalty {
					maxPenalty = penalty
				}
				st.PenaltySeconds += maxPenalty
				return &ErrJobFailed{Job: job, Phase: phaseName, Task: t, Attempts: attempt}
			}
			attempt++
		}
		// The winning attempt may straggle.
		if p.StragglerRate > 0 && p.roll(uint64(jobSeq), phase, uint64(t), kindStraggle) < p.StragglerRate {
			slowFinish := p.StragglerFactor * tc.seconds
			switch {
			case p.DisableSpeculation || slowFinish <= cost.SpeculativeDelay:
				// No backup: speculation is off, or the task finishes
				// before it would be flagged as lagging.
				penalty += slowFinish - tc.seconds
			default:
				*attempts++
				st.SpeculativeTasks++
				st.WastedRecords += tc.records
				st.WastedBytes += tc.bytes
				backupFinish := cost.SpeculativeDelay + tc.seconds
				finish := slowFinish
				if backupFinish < slowFinish {
					finish = backupFinish
					st.SpeculativeWins++
				}
				penalty += finish - tc.seconds
			}
		}
		if penalty > maxPenalty {
			maxPenalty = penalty
		}
	}
	st.PenaltySeconds += maxPenalty
	return nil
}
