// Allocation-regression tests for the shuffle hot path. The arena
// grouper (group.go) exists so a fiber-keyed job — one distinct key per
// nonzero fiber, the dominant shape in the HaTen2 plans — performs no
// per-key allocations once the typed pools are warm. These tests pin
// that property with testing.AllocsPerRun: reintroducing per-key churn
// (a map[K][]V group, unpooled buffers, per-key value slices) pushes
// allocations per record from well under the budget to ~0.5 and fails
// loudly.
package mr_test

import (
	"testing"

	"github.com/haten2/haten2/internal/mr"
)

// allocBudgetPerRecord is deliberately loose: steady state measures
// ~0.002 allocs/record (fixed per-task and per-job overhead only), the
// pre-arena grouper measured ~0.4, and the budget sits well clear of
// both so pool evictions by a mid-measurement GC cannot flake the test.
const allocBudgetPerRecord = 0.05

// shuffleAllocJob is a fiber-keyed shuffle: every input record fans out
// to 4 pairs over a 16Ki key space, values are summed per key.
func shuffleAllocJob(c *mr.Cluster, name string) (mr.Job[int64, int64, int64], int64) {
	const records = 20_000
	items := make([]int64, records)
	for i := range items {
		items[i] = int64(i)
	}
	if err := mr.WriteFile(c, "in-"+name, items, func(int64) int64 { return 8 }); err != nil {
		panic(err)
	}
	job := mr.Job[int64, int64, int64]{
		Name: name,
		Inputs: []mr.Input[int64, int64]{mr.MapInput("in-"+name, func(v int64, emit func(int64, int64)) {
			for j := int64(0); j < 4; j++ {
				emit((v*4+j)%16384, v)
			}
		})},
		Reduce: func(k int64, vs []int64, emit func(int64)) {
			var s int64
			for _, v := range vs {
				s += v
			}
			emit(s)
		},
		Partition: mr.HashInt64,
	}
	return job, records * 4
}

func TestShuffleAllocsPerRecord(t *testing.T) {
	c := mr.NewCluster(mr.Config{Machines: 8, SlotsPerMachine: 4})
	job, pairs := shuffleAllocJob(c, "alloc-shuffle")
	// Two warm-up runs: the first populates the cluster's shuffle hints,
	// the second fills the pools with hint-sized buffers.
	for i := 0; i < 2; i++ {
		if _, _, err := mr.Run(c, job); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(5, func() {
		if _, _, err := mr.Run(c, job); err != nil {
			t.Fatal(err)
		}
	})
	perRecord := avg / float64(pairs)
	t.Logf("allocs/run = %.0f over %d shuffled pairs (%.4f allocs/record)", avg, pairs, perRecord)
	if perRecord > allocBudgetPerRecord {
		t.Errorf("shuffle hot path allocates %.4f allocs/record (budget %.2f): per-key allocation churn is back",
			perRecord, allocBudgetPerRecord)
	}
}

// TestShuffleAllocsPerRecordCombine pins the combiner path's budget.
// The combiner itself sums in place and returns a subslice of its
// input, so every allocation measured here belongs to the engine: the
// pooled combine scratch and the arena must keep the path as flat as
// the combiner-less one.
func TestShuffleAllocsPerRecordCombine(t *testing.T) {
	c := mr.NewCluster(mr.Config{Machines: 8, SlotsPerMachine: 4})
	job, pairs := shuffleAllocJob(c, "alloc-combine")
	job.Combine = func(k int64, vs []int64) []int64 {
		var s int64
		for _, v := range vs {
			s += v
		}
		vs[0] = s
		return vs[:1]
	}
	for i := 0; i < 2; i++ {
		if _, _, err := mr.Run(c, job); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(5, func() {
		if _, _, err := mr.Run(c, job); err != nil {
			t.Fatal(err)
		}
	})
	perRecord := avg / float64(pairs)
	t.Logf("allocs/run = %.0f over %d pairs (%.4f allocs/record)", avg, pairs, perRecord)
	if perRecord > allocBudgetPerRecord {
		t.Errorf("combine shuffle path allocates %.4f allocs/record (budget %.2f): per-key allocation churn is back",
			perRecord, allocBudgetPerRecord)
	}
}
