package mr

import (
	"reflect"
	"strings"
	"testing"
)

// TestLoopbackWordCount pins the backend seam at its smallest scale:
// the same job on the in-process engine and on the loopback backend
// (full encode/ship/fetch/decode of inputs and shuffle partitions)
// must produce identical outputs and identical counters.
func TestLoopbackWordCount(t *testing.T) {
	lines := []string{"a b a", "b c", "a", "d e f g h i j k"}
	plain := testCluster(4)
	got := runWordCount(t, plain, lines)

	loop := testCluster(4)
	loop.SetBackend(NewLoopback())
	defer func() {
		if err := loop.Backend().Close(); err != nil {
			t.Fatal(err)
		}
	}()
	gotLoop := runWordCount(t, loop, lines)

	if !reflect.DeepEqual(got, gotLoop) {
		t.Fatalf("loopback output differs: %v vs %v", gotLoop, got)
	}
	a, b := plain.Totals(), loop.Totals()
	if a != b {
		t.Fatalf("loopback counters differ:\n in-process %+v\n loopback   %+v", a, b)
	}
	// After the job every partition must have been released.
	lb := loop.Backend().(*Loopback)
	lb.mu.Lock()
	nparts := len(lb.parts)
	lb.mu.Unlock()
	if nparts != 0 {
		t.Fatalf("%d partitions leaked after job completion", nparts)
	}
}

// TestLoopbackOutputOrder pins that output *order*, not just content,
// survives the seam: a multi-reducer job's concatenated output must be
// byte-for-byte the in-process engine's.
func TestLoopbackOutputOrder(t *testing.T) {
	lines := []string{"q w e r t y u i o p", "a s d f g h j k l", "z x c v b n m"}
	run := func(c *Cluster) []string {
		if err := WriteFile(c, "lines", lines, func(s string) int64 { return int64(len(s)) }); err != nil {
			t.Fatal(err)
		}
		out, _, err := Run(c, Job[string, int, string]{
			Name: "order",
			Inputs: []Input[string, int]{{
				File: "lines",
				Map: func(rec any, emit func(string, int)) {
					for _, w := range strings.Fields(rec.(string)) {
						emit(w, len(w))
					}
				},
			}},
			Reduce: func(k string, vs []int, emit func(string)) {
				emit(k)
			},
			Partition: func(k string) uint64 {
				var h uint64 = 14695981039346656037
				for i := 0; i < len(k); i++ {
					h = (h ^ uint64(k[i])) * 1099511628211
				}
				return h
			},
			Reducers: 5,
			Output:   "out",
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := run(testCluster(4))
	loop := testCluster(4)
	loop.SetBackend(NewLoopback())
	if got := run(loop); !reflect.DeepEqual(got, want) {
		t.Fatalf("order differs:\n got  %v\n want %v", got, want)
	}
}

// TestBackendRemovedRestoresFastPath pins SetBackend(nil) semantics.
func TestBackendRemovedRestoresFastPath(t *testing.T) {
	c := testCluster(2)
	c.SetBackend(NewLoopback())
	if c.remote() == nil {
		t.Fatal("loopback backend not seen as out-of-process")
	}
	c.SetBackend(nil)
	if c.remote() != nil {
		t.Fatal("removed backend still routing")
	}
	got := runWordCount(t, c, []string{"x y", "y"})
	if got["y"] != 2 {
		t.Fatalf("fast path broken after backend removal: %v", got)
	}
}
