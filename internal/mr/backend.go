package mr

import (
	"fmt"
	"reflect"
	"sync"

	"github.com/haten2/haten2/internal/dfs"
	"github.com/haten2/haten2/internal/mr/wire"
)

// Backend is the engine's pluggable data plane. A job's computation —
// the map, combine, and reduce closures — always runs in the engine's
// process (closures cannot cross a process boundary), but everything
// the computation consumes and produces as *data* can be routed
// elsewhere: the shuffle partitions each map task emits for each
// reducer, and the DFS blocks jobs read as input and drivers write
// between jobs. A Backend moves those bytes.
//
// Two implementations ship with the engine: the in-process backend
// (the zero value of a cluster — no Backend at all, data never leaves
// the heap) and Loopback, which runs the full encode→ship→fetch→decode
// cycle against in-memory storage, pinning the serialization seam
// without processes. Package mrproc adds the real one: worker
// processes serving partitions and blocks over local sockets.
//
// The standing invariant of the whole engine carries over verbatim:
// backends may change wall-clock time and transport statistics, never
// output bytes. The conformance suite (internal/mr/conformance) holds
// every implementation to it — golden traces, the fault matrix, and
// factor matrices must be bit-identical to the in-process engine.
//
// Error semantics: ShipFile/FetchFile are best-effort mirrors — a
// fetch that fails (file never shipped, encode unsupported, worker
// lost beyond replication) makes the engine fall back to its
// in-process read of the same bytes, so file-plane failures degrade
// throughput, never correctness. The shuffle plane is authoritative:
// partitions exist only in the backend once shipped, so
// ShipPartition/FetchPartition errors fail the job, exactly as a real
// cluster fails a job whose map outputs become unreachable.
type Backend interface {
	// Name identifies the backend in reports ("local", "loopback",
	// "proc").
	Name() string
	// InProcess reports that the data plane lives in engine memory, in
	// which case the engine skips the encode/ship cycle entirely and
	// runs its zero-copy fast path.
	InProcess() bool
	// ShipPartition hands the backend one map task's encoded shuffle
	// partition for one reducer. The data slice is owned by the backend
	// after the call.
	ShipPartition(k PartKey, data []byte) error
	// FetchPartition returns a previously shipped partition, or
	// (nil, nil) when no partition was shipped for k (an empty bucket).
	FetchPartition(k PartKey) ([]byte, error)
	// ReleaseJob frees every partition of the named job run.
	ReleaseJob(job string, seq int64) error
	// ShipFile mirrors the encoded content of a published DFS file.
	ShipFile(name string, data []byte) error
	// FetchFile returns the encoded content of a mirrored file.
	FetchFile(name string) ([]byte, error)
	// DropFile removes a mirrored file. Dropping an absent file is a
	// no-op.
	DropFile(name string) error
	// Close releases the backend's resources (for mrproc: drains and
	// stops the worker processes). The backend must not be used after.
	Close() error
}

// PartKey identifies one map task's shuffle output for one reducer
// within one job run. Seq is the cluster's job sequence number, which
// distinguishes reruns of same-named jobs.
type PartKey struct {
	Job     string
	Seq     int64
	Task    int
	Reducer int
}

// ErrNoPartition reports a fetch of a partition the backend never
// received — distinct from an empty partition, which fetches as
// (nil, nil).
type ErrNoPartition struct{ Key PartKey }

func (e *ErrNoPartition) Error() string {
	return fmt.Sprintf("mr: no partition shipped for %s/%d task %d reducer %d",
		e.Key.Job, e.Key.Seq, e.Key.Task, e.Key.Reducer)
}

// ErrNoRemoteFile reports a fetch of a file the backend does not
// mirror; the engine falls back to the in-process read path.
type ErrNoRemoteFile struct{ Name string }

func (e *ErrNoRemoteFile) Error() string {
	return fmt.Sprintf("mr: file %q is not mirrored by the backend", e.Name)
}

// --- Loopback ----------------------------------------------------------

// Loopback is a Backend that stores shipped bytes in process memory.
// It exists to pin the serialization seam: with Loopback installed the
// engine runs the exact code path of a multi-process backend — every
// shuffle partition and every job input is encoded, shipped, fetched,
// and decoded — without sockets or subprocesses. The conformance suite
// runs it as the bridge case between the in-process engine and mrproc.
type Loopback struct {
	mu    sync.Mutex
	parts map[PartKey][]byte
	files map[string][]byte
}

// NewLoopback returns an empty loopback backend.
func NewLoopback() *Loopback {
	return &Loopback{parts: make(map[PartKey][]byte), files: make(map[string][]byte)}
}

func (l *Loopback) Name() string    { return "loopback" }
func (l *Loopback) InProcess() bool { return false }

func (l *Loopback) ShipPartition(k PartKey, data []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.parts[k] = data
	return nil
}

func (l *Loopback) FetchPartition(k PartKey) ([]byte, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.parts[k], nil
}

func (l *Loopback) ReleaseJob(job string, seq int64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for k := range l.parts {
		if k.Job == job && k.Seq == seq {
			delete(l.parts, k)
		}
	}
	return nil
}

func (l *Loopback) ShipFile(name string, data []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.files[name] = data
	return nil
}

func (l *Loopback) FetchFile(name string) ([]byte, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	data, ok := l.files[name]
	if !ok {
		return nil, &ErrNoRemoteFile{Name: name}
	}
	return data, nil
}

func (l *Loopback) DropFile(name string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.files, name)
	return nil
}

func (l *Loopback) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.parts, l.files = make(map[PartKey][]byte), make(map[string][]byte)
	return nil
}

// --- cluster wiring ----------------------------------------------------

// SetBackend installs (or with nil removes) the cluster's execution
// backend and, for an out-of-process backend, wires the DFS's remote
// mirror hook to it so every file published from now on is shipped.
// Install the backend before staging data: files published earlier are
// not mirrored (the engine falls back to in-process reads for them).
func (c *Cluster) SetBackend(b Backend) {
	c.mu.Lock()
	c.backend = b
	c.mu.Unlock()
	if b != nil && !b.InProcess() {
		c.fs.SetRemote(&remoteAdapter{b: b})
	} else {
		c.fs.SetRemote(nil)
	}
}

// Backend returns the installed backend, or nil for the in-process
// engine.
func (c *Cluster) Backend() Backend {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.backend
}

// remote returns the backend when it routes data out of the engine's
// heap, nil otherwise — the single switch the engine's data-plane
// code branches on.
func (c *Cluster) remote() Backend {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.backend != nil && !c.backend.InProcess() {
		return c.backend
	}
	return nil
}

// remoteAdapter bridges the DFS's publish/delete hooks to a Backend:
// published files are encoded with the wire codec and shipped; files
// whose payload type the codec cannot express (or whose ship fails)
// are simply not mirrored, and reads of them fall back in-process.
type remoteAdapter struct{ b Backend }

func (a *remoteAdapter) Ship(name string, payload any, count int, recs []dfs.Record) {
	var data []byte
	var err error
	if payload != nil {
		data, err = wire.EncodeSlice(payload)
	} else {
		data, err = wire.EncodeRecords(recs)
	}
	if err != nil {
		// Unsupported payload (unregistered boxed type, map-valued
		// record, ...): leave the file unmirrored. Correctness is
		// untouched — the engine reads it in-process.
		return
	}
	//haten2:allow errcheck-io best-effort mirror: a failed ship leaves the file unmirrored and reads fall back in-process
	_ = a.b.ShipFile(name, data)
}

func (a *remoteAdapter) Drop(name string) {
	//haten2:allow errcheck-io best-effort mirror: dropping an absent remote copy is harmless
	_ = a.b.DropFile(name)
}

// fetchTyped fetches the mirrored encoding of a block-written file and
// decodes it to the same element type as the in-process payload it
// shadows. ok is false when the backend does not mirror the file (or
// the fetched bytes fail to decode), in which case the caller uses the
// in-process payload.
func fetchTyped(b Backend, name string, local any, want int) (payload any, ok bool) {
	data, err := b.FetchFile(name)
	if err != nil {
		return nil, false
	}
	decoded, err := wire.DecodeSlice(reflect.TypeOf(local).Elem(), data)
	if err != nil || reflect.ValueOf(decoded).Len() != want {
		return nil, false
	}
	return decoded, true
}

// fetchRecords is fetchTyped for per-record files.
func fetchRecords(b Backend, name string, want int) ([]dfs.Record, bool) {
	data, err := b.FetchFile(name)
	if err != nil {
		return nil, false
	}
	recs, err := wire.DecodeRecords(data)
	if err != nil || len(recs) != want {
		return nil, false
	}
	return recs, true
}
