package mr

import (
	"errors"
	"testing"
)

func TestEmptyInputFileProducesNoOutput(t *testing.T) {
	c := testCluster(2)
	w, _ := c.FS().Create("empty")
	w.Close()
	out, st, err := Run(c, Job[int64, int64, int64]{
		Name:      "empty",
		Inputs:    []Input[int64, int64]{{File: "empty", Map: func(any, func(int64, int64)) { t.Fatal("map called") }}},
		Reduce:    func(k int64, vs []int64, emit func(int64)) { emit(k) },
		Partition: HashInt64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 || st.MapTasks != 0 || st.ShuffleRecords != 0 {
		t.Fatalf("out=%v st=%+v", out, st)
	}
}

func TestMapEmitsNothing(t *testing.T) {
	c := testCluster(2)
	WriteFile(c, "in", []int64{1, 2, 3}, func(int64) int64 { return 8 })
	out, st, err := Run(c, Job[int64, int64, int64]{
		Name:      "silent",
		Inputs:    []Input[int64, int64]{{File: "in", Map: func(any, func(int64, int64)) {}}},
		Reduce:    func(k int64, vs []int64, emit func(int64)) { emit(k) },
		Partition: HashInt64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("out=%v", out)
	}
	if st.InputRecords != 3 {
		t.Fatalf("input records %d", st.InputRecords)
	}
}

func TestReducersOption(t *testing.T) {
	c := testCluster(4)
	WriteFile(c, "in", []int64{0, 1, 2, 3, 4, 5, 6, 7}, func(int64) int64 { return 8 })
	_, st, err := Run(c, Job[int64, int64, int64]{
		Name:      "reducers",
		Inputs:    []Input[int64, int64]{{File: "in", Map: func(r any, emit func(int64, int64)) { emit(r.(int64), 1) }}},
		Reduce:    func(k int64, vs []int64, emit func(int64)) { emit(k) },
		Partition: HashInt64,
		Reducers:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.ReduceTasks != 2 {
		t.Fatalf("reduce tasks %d", st.ReduceTasks)
	}
	if st.OutputRecords != 8 {
		t.Fatalf("output records %d", st.OutputRecords)
	}
}

func TestExtraShuffleAloneTripsLimit(t *testing.T) {
	c := NewCluster(Config{Machines: 1, MaxShuffleRecords: 100})
	WriteFile(c, "in", []int64{1}, func(int64) int64 { return 8 })
	_, _, err := Run(c, Job[int64, int64, int64]{
		Name:                "phantom",
		Inputs:              []Input[int64, int64]{{File: "in", Map: func(r any, emit func(int64, int64)) { emit(0, 1) }}},
		Reduce:              func(k int64, vs []int64, emit func(int64)) { emit(k) },
		Partition:           HashInt64,
		ExtraShuffleRecords: 1000,
		ExtraShuffleBytes:   8000,
	})
	var re *ErrResourceExhausted
	if !errors.As(err, &re) {
		t.Fatalf("want exhaustion from phantom charge, got %v", err)
	}
	if re.ShuffleRecords < 1000 {
		t.Fatalf("phantom records not counted: %d", re.ShuffleRecords)
	}
}

func TestExtraShuffleCountsTowardSimTime(t *testing.T) {
	run := func(extra int64) float64 {
		c := testCluster(2)
		WriteFile(c, "in", []int64{1}, func(int64) int64 { return 8 })
		_, st, err := Run(c, Job[int64, int64, int64]{
			Name:                "timed",
			Inputs:              []Input[int64, int64]{{File: "in", Map: func(r any, emit func(int64, int64)) { emit(0, 1) }}},
			Reduce:              func(k int64, vs []int64, emit func(int64)) { emit(k) },
			Partition:           HashInt64,
			ExtraShuffleRecords: extra,
			ExtraShuffleBytes:   extra * 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		return st.SimSeconds
	}
	if run(10_000_000) <= run(0) {
		t.Fatal("phantom shuffle should increase simulated time")
	}
}

func TestDuplicateOutputFileFails(t *testing.T) {
	c := testCluster(1)
	WriteFile(c, "in", []int64{1}, func(int64) int64 { return 8 })
	job := Job[int64, int64, int64]{
		Name:      "dup",
		Inputs:    []Input[int64, int64]{{File: "in", Map: func(r any, emit func(int64, int64)) { emit(0, 1) }}},
		Reduce:    func(k int64, vs []int64, emit func(int64)) { emit(k) },
		Partition: HashInt64,
		Output:    "out",
	}
	if _, _, err := Run(c, job); err != nil {
		t.Fatal(err)
	}
	// HDFS files are write-once: a second job writing the same path
	// must fail loudly rather than silently overwrite.
	if _, _, err := Run(c, job); err == nil {
		t.Fatal("second write to same output accepted")
	}
}

func TestValuesGroupedPerKeyInTaskOrder(t *testing.T) {
	// Values for one key must arrive in deterministic (task, emission)
	// order so float summation is reproducible.
	c := NewCluster(Config{Machines: 1, SlotsPerMachine: 1})
	WriteFile(c, "in", []int64{10, 20, 30}, func(int64) int64 { return 8 })
	out, _, err := Run(c, Job[int64, int64, []int64]{
		Name:   "order",
		Inputs: []Input[int64, int64]{{File: "in", Map: func(r any, emit func(int64, int64)) { emit(0, r.(int64)) }}},
		Reduce: func(k int64, vs []int64, emit func([]int64)) {
			emit(append([]int64(nil), vs...))
		},
		Partition: HashInt64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || len(out[0]) != 3 {
		t.Fatalf("out=%v", out)
	}
	if out[0][0] != 10 || out[0][1] != 20 || out[0][2] != 30 {
		t.Fatalf("values out of order: %v", out[0])
	}
}

func TestJobsLogPreservesOrder(t *testing.T) {
	c := testCluster(1)
	WriteFile(c, "in", []int64{1}, func(int64) int64 { return 8 })
	for _, name := range []string{"first", "second", "third"} {
		_, _, err := Run(c, Job[int64, int64, int64]{
			Name:      name,
			Inputs:    []Input[int64, int64]{{File: "in", Map: func(r any, emit func(int64, int64)) { emit(0, 1) }}},
			Reduce:    func(k int64, vs []int64, emit func(int64)) { emit(k) },
			Partition: HashInt64,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	jobs := c.Jobs()
	if len(jobs) != 3 || jobs[0].Name != "first" || jobs[2].Name != "third" {
		t.Fatalf("job log %+v", jobs)
	}
}

func TestCombinerReducesShuffle(t *testing.T) {
	// One map task emits 100 values for one key; the combiner pre-sums
	// them so only one record is shuffled.
	run := func(withCombiner bool) (int64, int64) {
		c := NewCluster(Config{Machines: 1, SlotsPerMachine: 1})
		WriteFile(c, "in", []int64{1}, func(int64) int64 { return 8 })
		job := Job[int64, int64, int64]{
			Name: "combine",
			Inputs: []Input[int64, int64]{{File: "in", Map: func(r any, emit func(int64, int64)) {
				for i := int64(0); i < 100; i++ {
					emit(0, 1)
				}
			}}},
			Reduce: func(k int64, vs []int64, emit func(int64)) {
				var s int64
				for _, v := range vs {
					s += v
				}
				emit(s)
			},
			Partition: HashInt64,
		}
		if withCombiner {
			job.Combine = func(k int64, vs []int64) []int64 {
				var s int64
				for _, v := range vs {
					s += v
				}
				return []int64{s}
			}
		}
		out, st, err := Run(c, job)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 1 || out[0] != 100 {
			t.Fatalf("wrong result with combiner=%v: %v", withCombiner, out)
		}
		return st.ShuffleRecords, st.ShuffleBytes
	}
	without, _ := run(false)
	with, _ := run(true)
	if without != 100 || with != 1 {
		t.Fatalf("shuffle records without=%d with=%d", without, with)
	}
}

func TestCombinerPreservesResultAcrossSplits(t *testing.T) {
	// Multiple map tasks each combine locally; the reducer still sees
	// the full total.
	c := NewCluster(Config{Machines: 4, SlotsPerMachine: 2})
	var items []int64
	for i := int64(0); i < 64; i++ {
		items = append(items, i)
	}
	WriteFile(c, "in", items, func(int64) int64 { return 8 })
	out, st, err := Run(c, Job[int64, int64, int64]{
		Name: "multcombine",
		Inputs: []Input[int64, int64]{{File: "in", Map: func(r any, emit func(int64, int64)) {
			emit(r.(int64)%4, 1)
		}}},
		Combine: func(k int64, vs []int64) []int64 {
			var s int64
			for _, v := range vs {
				s += v
			}
			return []int64{s}
		},
		Reduce: func(k int64, vs []int64, emit func(int64)) {
			var s int64
			for _, v := range vs {
				s += v
			}
			emit(s)
		},
		Partition: HashInt64,
	})
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, o := range out {
		total += o
	}
	if total != 64 {
		t.Fatalf("total %d", total)
	}
	if st.ShuffleRecords >= 64 {
		t.Fatalf("combiner did not reduce shuffle: %d", st.ShuffleRecords)
	}
}
