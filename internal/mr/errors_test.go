package mr

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"github.com/haten2/haten2/internal/dfs"
)

// TestTypedErrorsSurviveWrapping pins the error-path contract: every
// terminal job error is a typed struct that callers can match with
// errors.As even after arbitrary %w wrapping, and carries the job name.
func TestTypedErrorsSurviveWrapping(t *testing.T) {
	wrap := func(err error) error {
		return fmt.Errorf("driver: iteration 3: %w", fmt.Errorf("stage: %w", err))
	}

	re := &ErrResourceExhausted{Job: "imhp", ShuffleRecords: 10, Limit: 5}
	var gotRE *ErrResourceExhausted
	if !errors.As(wrap(re), &gotRE) || gotRE.Job != "imhp" {
		t.Fatalf("ErrResourceExhausted lost through wrapping: %v", wrap(re))
	}

	jf := &ErrJobFailed{Job: "imhp", Phase: "reduce", Task: 7, Attempts: 4}
	var gotJF *ErrJobFailed
	if !errors.As(wrap(jf), &gotJF) || gotJF.Job != "imhp" || gotJF.Attempts != 4 {
		t.Fatalf("ErrJobFailed lost through wrapping: %v", wrap(jf))
	}

	ck := &ErrClusterKilled{Job: "imhp", AfterJobs: 9}
	var gotCK *ErrClusterKilled
	if !errors.As(wrap(ck), &gotCK) || gotCK.AfterJobs != 9 {
		t.Fatalf("ErrClusterKilled lost through wrapping: %v", wrap(ck))
	}

	for _, err := range []error{re, jf, ck} {
		if !strings.Contains(err.Error(), `"imhp"`) {
			t.Fatalf("job name missing from %T message: %v", err, err)
		}
	}

	// Storage errors from the DFS layer survive the same wrapping, and
	// ErrDataLoss additionally unwraps to the checksum mismatch that
	// exhausted the replicas.
	dl := &dfs.ErrDataLoss{File: "fac/h", Block: 2, Replicas: 3,
		Cause: &dfs.ErrCorrupt{File: "fac/h", Block: 2, Replica: 1}}
	var gotDL *dfs.ErrDataLoss
	if !errors.As(wrap(dl), &gotDL) || gotDL.File != "fac/h" || gotDL.Replicas != 3 {
		t.Fatalf("ErrDataLoss lost through wrapping: %v", wrap(dl))
	}
	var gotEC *dfs.ErrCorrupt
	if !errors.As(wrap(dl), &gotEC) || gotEC.Block != 2 || gotEC.Replica != 1 {
		t.Fatalf("ErrCorrupt lost through ErrDataLoss wrapping: %v", wrap(dl))
	}
}

// TestTypedErrorsStorageDataLoss drives a real job into a block with no
// good replica and checks the dfs error types flow through mr's
// job-name wrapper end-to-end.
func TestTypedErrorsStorageDataLoss(t *testing.T) {
	c := NewClusterWithFS(Config{Machines: 2},
		dfs.New(dfs.Options{BlockSize: 64, Replication: 1, Machines: 2}))
	WriteFile(c, "in", []int64{1, 2, 3, 4}, func(int64) int64 { return 40 })
	// Replication 1 with certain corruption: the first read finds every
	// (single) replica bad.
	c.InstallFaultPlan(&FaultPlan{Seed: 7, BlockCorruptRate: 1})
	_, _, err := Run(c, Job[int64, int64, int64]{
		Name:      "doomed",
		Inputs:    []Input[int64, int64]{{File: "in", Map: func(r any, emit func(int64, int64)) { emit(r.(int64), 1) }}},
		Reduce:    func(k int64, vs []int64, emit func(int64)) { emit(k) },
		Partition: HashInt64,
	})
	var dl *dfs.ErrDataLoss
	if !errors.As(err, &dl) || dl.File != "in" || dl.Replicas != 1 {
		t.Fatalf("job error does not carry ErrDataLoss: %v", err)
	}
	var ec *dfs.ErrCorrupt
	if !errors.As(err, &ec) || ec.File != "in" {
		t.Fatalf("job error does not unwrap to ErrCorrupt: %v", err)
	}
	if !strings.Contains(err.Error(), `"doomed"`) {
		t.Fatalf("storage error does not name the job: %v", err)
	}
}

// TestRunErrorsCarryJobName audits Run's own error paths: validation
// failures name the job, and wrapped DFS errors stay matchable.
func TestRunErrorsCarryJobName(t *testing.T) {
	c := testCluster(1)
	reduce := func(k int64, vs []int64, emit func(int64)) { emit(k) }
	mapper := func(r any, emit func(int64, int64)) { emit(0, 1) }
	in := []Input[int64, int64]{{File: "in", Map: mapper}}

	cases := []struct {
		name string
		job  Job[int64, int64, int64]
	}{
		{"no inputs", Job[int64, int64, int64]{Name: "noin", Reduce: reduce, Partition: HashInt64}},
		{"no reduce", Job[int64, int64, int64]{Name: "nored", Inputs: in, Partition: HashInt64}},
		{"no partition", Job[int64, int64, int64]{Name: "nopart", Inputs: in, Reduce: reduce}},
	}
	for _, tc := range cases {
		_, _, err := Run(c, tc.job)
		if err == nil || !strings.Contains(err.Error(), fmt.Sprintf("%q", tc.job.Name)) {
			t.Fatalf("%s: error does not name the job: %v", tc.name, err)
		}
	}

	// A missing input file surfaces the underlying *dfs.ErrNotExist
	// through the job-name wrapper.
	_, _, err := Run(c, Job[int64, int64, int64]{
		Name: "missing-input", Inputs: in, Reduce: reduce, Partition: HashInt64,
	})
	var ne *dfs.ErrNotExist
	if !errors.As(err, &ne) || ne.Name != "in" {
		t.Fatalf("dfs error lost through wrapping: %v", err)
	}
	if !strings.Contains(err.Error(), `"missing-input"`) {
		t.Fatalf("wrapped dfs error does not name the job: %v", err)
	}

	// An output-file collision likewise: *dfs.ErrExist plus the job name.
	WriteFile(c, "in", []int64{1}, func(int64) int64 { return 8 })
	WriteFile(c, "out", []int64{1}, func(int64) int64 { return 8 })
	_, _, err = Run(c, Job[int64, int64, int64]{
		Name: "clobber", Inputs: in, Reduce: reduce, Partition: HashInt64, Output: "out",
	})
	var ee *dfs.ErrExist
	if !errors.As(err, &ee) || ee.Name != "out" {
		t.Fatalf("output collision error lost: %v", err)
	}
	if !strings.Contains(err.Error(), `"clobber"`) {
		t.Fatalf("output collision error does not name the job: %v", err)
	}
}
