package mr

import (
	"math/rand"
	"reflect"
	"testing"
)

// refGroup is the straightforward map-based grouping the arena
// replaced; the arena must reproduce its key order and value runs
// exactly on any bucket sequence.
func refGroup(buckets [][]pair[string, int]) ([]string, map[string][]int) {
	var keys []string
	vals := make(map[string][]int)
	for _, b := range buckets {
		for _, p := range b {
			if _, ok := vals[p.k]; !ok {
				keys = append(keys, p.k)
			}
			vals[p.k] = append(vals[p.k], p.v)
		}
	}
	return keys, vals
}

func runArena(buckets [][]pair[string, int], keyCap, arenaCap int) ([]string, map[string][]int) {
	g := getGroupArena[string, int](keyCap)
	for _, b := range buckets {
		g.count(b)
	}
	g.layout(arenaCap)
	for _, b := range buckets {
		g.scatter(b)
	}
	keys := append([]string(nil), g.keys...)
	vals := make(map[string][]int, len(keys))
	for i, k := range keys {
		vals[k] = append([]int(nil), g.group(i)...)
	}
	putGroupArena(g)
	return keys, vals
}

func TestGroupArenaMatchesMapGrouping(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	alphabet := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for trial := 0; trial < 50; trial++ {
		buckets := make([][]pair[string, int], rng.Intn(5))
		for i := range buckets {
			n := rng.Intn(20)
			for j := 0; j < n; j++ {
				buckets[i] = append(buckets[i], pair[string, int]{k: alphabet[rng.Intn(len(alphabet))], v: rng.Int()})
			}
		}
		wantKeys, wantVals := refGroup(buckets)
		gotKeys, gotVals := runArena(buckets, rng.Intn(4), rng.Intn(64))
		if !reflect.DeepEqual(wantKeys, gotKeys) {
			t.Fatalf("trial %d: key order %v, want %v", trial, gotKeys, wantKeys)
		}
		if !reflect.DeepEqual(wantVals, gotVals) {
			t.Fatalf("trial %d: groups %v, want %v", trial, gotVals, wantVals)
		}
	}
}

func TestGroupArenaEmpty(t *testing.T) {
	keys, vals := runArena(nil, 0, 0)
	if len(keys) != 0 || len(vals) != 0 {
		t.Fatalf("empty partition grouped to %v / %v", keys, vals)
	}
}

// TestGroupArenaAppendSafe pins the capacity-limiting of group(): a
// reducer appending to its values slice must reallocate, never
// overwrite the next key's run in the shared arena.
func TestGroupArenaAppendSafe(t *testing.T) {
	buckets := [][]pair[string, int]{{
		{k: "x", v: 1}, {k: "x", v: 2}, {k: "y", v: 3}, {k: "y", v: 4},
	}}
	g := getGroupArena[string, int](0)
	for _, b := range buckets {
		g.count(b)
	}
	g.layout(0)
	for _, b := range buckets {
		g.scatter(b)
	}
	defer putGroupArena(g)
	x := g.group(0)
	_ = append(x, 99)
	if got := g.group(1); got[0] != 3 || got[1] != 4 {
		t.Fatalf("append to group 0 clobbered group 1: %v", got)
	}
}

// TestGroupArenaReuseIsClean pins that a pooled grouper carries no
// state between jobs: keys, counts, and arena contents from a previous
// use must not leak into the next grouping.
func TestGroupArenaReuseIsClean(t *testing.T) {
	first := [][]pair[string, int]{{{k: "stale", v: 7}, {k: "stale", v: 8}, {k: "old", v: 9}}}
	_, _ = runArena(first, 0, 0)
	second := [][]pair[string, int]{{{k: "fresh", v: 1}}}
	keys, vals := runArena(second, 0, 0)
	if !reflect.DeepEqual(keys, []string{"fresh"}) {
		t.Fatalf("stale keys survived pooling: %v", keys)
	}
	if !reflect.DeepEqual(vals["fresh"], []int{1}) {
		t.Fatalf("stale values survived pooling: %v", vals)
	}
}

// TestGroupArenaTaskOrder pins the determinism contract: values of a
// key arrive in (bucket index, position) order even when the key is
// scattered across buckets.
func TestGroupArenaTaskOrder(t *testing.T) {
	buckets := [][]pair[string, int]{
		{{k: "k", v: 0}, {k: "j", v: 100}, {k: "k", v: 1}},
		{},
		{{k: "j", v: 101}, {k: "k", v: 2}},
		{{k: "k", v: 3}},
	}
	keys, vals := runArena(buckets, 0, 0)
	if !reflect.DeepEqual(keys, []string{"k", "j"}) {
		t.Fatalf("first-seen key order broken: %v", keys)
	}
	if !reflect.DeepEqual(vals["k"], []int{0, 1, 2, 3}) {
		t.Fatalf("task-order value run broken: %v", vals["k"])
	}
	if !reflect.DeepEqual(vals["j"], []int{100, 101}) {
		t.Fatalf("task-order value run broken: %v", vals["j"])
	}
}
