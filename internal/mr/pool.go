package mr

import (
	"reflect"
	"sync"
)

// The engine recycles its per-job scratch memory — map-side pair
// buckets, reducer group arenas (group.go), and reduce output buffers —
// across Run calls. ALS drivers run thousands of structurally identical
// jobs in a loop, so without reuse every iteration reallocates (and the
// GC retires) hundreds of megabytes of short-lived buffers. Run is
// generic, so the pools are keyed by concrete element type in a
// package-level registry: every instantiation of Run with the same
// key/value types shares one pool.

var typedPools sync.Map // reflect.Type -> *sync.Pool

func poolFor[T any]() *sync.Pool {
	t := reflect.TypeFor[T]()
	if p, ok := typedPools.Load(t); ok {
		return p.(*sync.Pool)
	}
	p, _ := typedPools.LoadOrStore(t, &sync.Pool{})
	return p.(*sync.Pool)
}

// getSlice returns an empty slice with capacity ≥ want from the pool
// for []T, or a freshly made one. want may be 0, in which case a pooled
// buffer of any capacity (or nil) is returned and append grows it.
func getSlice[T any](want int) []T {
	if v := poolFor[[]T]().Get(); v != nil {
		s := *v.(*[]T)
		if cap(s) >= want {
			return s[:0]
		}
	}
	if want <= 0 {
		return nil
	}
	return make([]T, 0, want)
}

// putSlice clears the used portion of s when T contains pointers (so
// pooled memory pins no values) and returns its backing array to the
// pool for []T. Pointer-free buffers — the engine's dominant case,
// e.g. fiber-keyed pair buckets and float value arenas — skip the
// clear: stale numeric bytes pin nothing and every slot is overwritten
// before its next read.
func putSlice[T any](s []T) {
	if cap(s) == 0 {
		return
	}
	if hasPointers[T]() {
		clear(s)
	}
	s = s[:0]
	poolFor[[]T]().Put(&s)
}

var pointerFreeTypes sync.Map // reflect.Type -> bool

// hasPointers reports whether T contains any pointer-typed memory the
// GC could trace (cached per concrete type).
func hasPointers[T any]() bool {
	t := reflect.TypeFor[T]()
	if v, ok := pointerFreeTypes.Load(t); ok {
		return !v.(bool)
	}
	free := pointerFree(t)
	pointerFreeTypes.Store(t, free)
	return !free
}

func pointerFree(t reflect.Type) bool {
	switch t.Kind() {
	case reflect.Bool,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr,
		reflect.Float32, reflect.Float64, reflect.Complex64, reflect.Complex128:
		return true
	case reflect.Array:
		return pointerFree(t.Elem())
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			if !pointerFree(t.Field(i).Type) {
				return false
			}
		}
		return true
	default:
		return false
	}
}
