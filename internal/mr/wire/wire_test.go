package wire

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"github.com/haten2/haten2/internal/dfs"
)

// podPair mirrors the engine's shuffle pair shape: unexported fields,
// internal padding (bool next to int64), a nested array key.
type podPair struct {
	k [3]int64
	v podVal
	h uint64
}

type podVal struct {
	tag uint8
	idx [3]int64
	col int32
	val float64
}

func TestPODRoundTrip(t *testing.T) {
	in := []podPair{
		{k: [3]int64{1, -2, 3}, v: podVal{tag: 2, idx: [3]int64{9, 8, 7}, col: -5, val: math.Pi}, h: 0xdeadbeef},
		{k: [3]int64{0, 0, 0}, v: podVal{val: math.Inf(-1)}, h: 0},
		{k: [3]int64{math.MaxInt64, math.MinInt64, -1}, v: podVal{tag: 255, col: math.MaxInt32, val: math.NaN()}, h: ^uint64(0)},
	}
	enc, err := EncodeSlice(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeSlice(reflect.TypeFor[podPair](), enc)
	if err != nil {
		t.Fatal(err)
	}
	got := out.([]podPair)
	if len(got) != len(in) {
		t.Fatalf("len %d, want %d", len(got), len(in))
	}
	for i := range in {
		// NaN: compare bit patterns, not values.
		if in[i].k != got[i].k || in[i].h != got[i].h ||
			in[i].v.tag != got[i].v.tag || in[i].v.idx != got[i].v.idx || in[i].v.col != got[i].v.col ||
			math.Float64bits(in[i].v.val) != math.Float64bits(got[i].v.val) {
			t.Fatalf("pair %d: got %+v, want %+v", i, got[i], in[i])
		}
	}
}

// TestEncodeDeterministic pins that padding bytes never reach the wire:
// two equal values built through different memory must encode
// identically.
func TestEncodeDeterministic(t *testing.T) {
	type padded struct {
		a uint8
		b int64
		c uint8
	}
	mk := func(scratch []byte) []byte {
		// Build the value inside reused dirty memory so any padding
		// leak would differ between calls.
		v := []padded{{a: 1, b: -7, c: 9}}
		enc, err := EncodeSlice(v)
		if err != nil {
			t.Fatal(err)
		}
		_ = scratch
		return enc
	}
	if got, want := mk(bytes.Repeat([]byte{0xff}, 64)), mk(nil); !bytes.Equal(got, want) {
		t.Fatalf("encodings differ: %x vs %x", got, want)
	}
	if sz := int(reflect.TypeFor[padded]().Size()); sz == 10 {
		t.Fatalf("expected padding in test struct, got size %d", sz)
	}
	enc, _ := EncodeSlice([]padded{{a: 1, b: 2, c: 3}})
	if len(enc) != 1+10 {
		t.Fatalf("encoded length %d, want 11 (uvarint count + 10 payload bytes, no padding)", len(enc))
	}
}

func TestStringsSlicesPointers(t *testing.T) {
	type inner struct {
		Name string
		Vals []float64
	}
	type outer struct {
		ptr  *inner
		nilp *inner
		list []inner
		s    string
	}
	in := outer{
		ptr:  &inner{Name: "α/β", Vals: []float64{1.5, -2.25}},
		list: []inner{{Name: "", Vals: nil}, {Name: "x", Vals: []float64{0}}},
		s:    "hello",
	}
	enc, err := EncodeValue(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeValue(reflect.TypeFor[outer](), enc)
	if err != nil {
		t.Fatal(err)
	}
	got := out.(outer)
	if got.nilp != nil || got.ptr == nil || got.ptr.Name != in.ptr.Name ||
		!reflect.DeepEqual(got.ptr.Vals, in.ptr.Vals) || got.s != in.s ||
		len(got.list) != 2 || got.list[1].Name != "x" {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestTruncationAndTrailingBytesError(t *testing.T) {
	enc, err := EncodeSlice([]podPair{{k: [3]int64{1, 2, 3}}})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodeSlice(reflect.TypeFor[podPair](), enc[:cut]); err == nil {
			t.Fatalf("truncation at %d bytes decoded without error", cut)
		}
	}
	if _, err := DecodeSlice(reflect.TypeFor[podPair](), append(append([]byte{}, enc...), 0)); err == nil {
		t.Fatal("trailing byte decoded without error")
	}
	// A corrupt huge length must error, not allocate.
	if _, err := DecodeSlice(reflect.TypeFor[podPair](), []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}); err == nil {
		t.Fatal("oversized length decoded without error")
	}
}

func TestUnsupportedKinds(t *testing.T) {
	if _, err := EncodeValue(map[string]int{"a": 1}); err == nil {
		t.Fatal("map encoded without error")
	}
	if _, err := EncodeValue(func() {}); err == nil {
		t.Fatal("func encoded without error")
	}
}

type regPayload struct {
	ID   int64
	Tags []string
}

func TestRecordsRegistry(t *testing.T) {
	Register[regPayload]()
	Register[regPayload]() // idempotent
	recs := []dfs.Record{
		{Data: regPayload{ID: 7, Tags: []string{"a", "b"}}, Size: 40},
		{Data: nil, Size: 0},
		{Data: regPayload{ID: -1}, Size: 8},
	}
	enc, err := EncodeRecords(recs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRecords(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("records mismatch:\n got %+v\nwant %+v", got, recs)
	}
	// An unregistered payload type must fail the encode with an error.
	type unreg struct{ X int }
	if _, err := EncodeRecords([]dfs.Record{{Data: unreg{X: 1}, Size: 8}}); err == nil {
		t.Fatal("unregistered payload encoded without error")
	}
}

func TestSliceOfSlices(t *testing.T) {
	in := [][]int32{{1, 2}, nil, {3}}
	enc, err := EncodeSlice(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeSlice(reflect.TypeFor[[]int32](), enc)
	if err != nil {
		t.Fatal(err)
	}
	got := out.([][]int32)
	// nil and empty both decode to empty; compare contents.
	if len(got) != 3 || !reflect.DeepEqual(got[0], []int32{1, 2}) || len(got[1]) != 0 || !reflect.DeepEqual(got[2], []int32{3}) {
		t.Fatalf("mismatch: %v", got)
	}
}
