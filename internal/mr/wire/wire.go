// Package wire is the binary serialization layer of the pluggable
// execution backends: it turns the engine's typed in-memory data —
// shuffle pair buckets, block-written DFS payloads, and boxed DFS
// records — into deterministic byte strings that can cross a process
// boundary and decode back bit-identically.
//
// The encoding is compiled once per concrete type from its reflect
// layout: every field is written at a fixed offset walk in declaration
// order, fixed-width little-endian for numeric kinds, so padding bytes
// never leak into the stream and float64 values round-trip through
// math.Float64bits exactly. Unexported fields are included — the
// engine's shuffle pairs and the drivers' checkpoint records are
// unexported structs — by reading and writing through unsafe offsets
// rather than reflect's access-checked Value API.
//
// Determinism contract: for a fixed type, encode is a pure function of
// the value (no map iteration, no pointers-as-identity, no wall
// clock), and decode∘encode is the identity on every supported value.
// The cross-backend conformance suite rests on this: a shuffle
// partition that detours through a worker process must reduce to the
// same bytes as one that never left the engine's heap.
//
// Supported kinds: bool, all fixed-width ints and uints, int/uint
// (always 8 bytes on the wire), float32/64, arrays, structs, strings,
// slices, pointers, and — via Register — interface values of
// registered dynamic types. Maps, channels, and funcs are rejected
// with an error at compile time (codecFor), never mid-stream.
package wire

import (
	"encoding/binary"
	"fmt"
	"reflect"
	"sync"
	"unsafe"
)

// Codec encodes and decodes values of one concrete type.
type Codec struct {
	t   reflect.Type
	enc func(p unsafe.Pointer, b []byte) []byte
	dec func(p unsafe.Pointer, r *reader) error
}

// codecCache memoizes compiled codecs per type. Compilation of
// recursive types (a struct reachable from itself through a pointer or
// slice) is handled by inserting an indirection before descending.
var codecCache sync.Map // reflect.Type -> *Codec

// For returns the codec for t, compiling and caching it on first use.
func For(t reflect.Type) (*Codec, error) {
	if c, ok := codecCache.Load(t); ok {
		return c.(*Codec), nil
	}
	c := &Codec{t: t}
	// Publish the shell before compiling the body so recursive types
	// resolve to the in-flight codec instead of recursing forever.
	actual, loaded := codecCache.LoadOrStore(t, c)
	if loaded {
		return actual.(*Codec), nil
	}
	enc, dec, err := compile(t)
	if err != nil {
		codecCache.Delete(t)
		return nil, err
	}
	c.enc, c.dec = enc, dec
	return c, nil
}

// reader is a bounds-checked cursor over an encoded buffer. All decode
// paths go through it so truncated or corrupt input surfaces as an
// error, never a panic or an over-read.
type reader struct {
	data []byte
	off  int
}

// ErrTruncated reports an encoded buffer that ended mid-value.
type ErrTruncated struct{ Need, Have int }

func (e *ErrTruncated) Error() string {
	return fmt.Sprintf("wire: truncated input: need %d bytes, have %d", e.Need, e.Have)
}

func (r *reader) take(n int) ([]byte, error) {
	if n < 0 || r.off+n > len(r.data) || r.off+n < r.off {
		return nil, &ErrTruncated{Need: n, Have: len(r.data) - r.off}
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("wire: bad uvarint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

// maxLen caps decoded string/slice lengths so a corrupt length prefix
// cannot drive an allocation bomb; real payloads are far below it and
// a longer claim necessarily overruns the buffer anyway.
const maxLen = 1 << 31

// compile builds the encode and decode functions for t.
func compile(t reflect.Type) (func(unsafe.Pointer, []byte) []byte, func(unsafe.Pointer, *reader) error, error) {
	switch t.Kind() {
	case reflect.Bool:
		return func(p unsafe.Pointer, b []byte) []byte {
				if *(*bool)(p) {
					return append(b, 1)
				}
				return append(b, 0)
			}, func(p unsafe.Pointer, r *reader) error {
				v, err := r.take(1)
				if err != nil {
					return err
				}
				*(*bool)(p) = v[0] != 0
				return nil
			}, nil
	case reflect.Int8, reflect.Uint8:
		return func(p unsafe.Pointer, b []byte) []byte {
				return append(b, *(*uint8)(p))
			}, func(p unsafe.Pointer, r *reader) error {
				v, err := r.take(1)
				if err != nil {
					return err
				}
				*(*uint8)(p) = v[0]
				return nil
			}, nil
	case reflect.Int16, reflect.Uint16:
		return func(p unsafe.Pointer, b []byte) []byte {
				return binary.LittleEndian.AppendUint16(b, *(*uint16)(p))
			}, func(p unsafe.Pointer, r *reader) error {
				v, err := r.take(2)
				if err != nil {
					return err
				}
				*(*uint16)(p) = binary.LittleEndian.Uint16(v)
				return nil
			}, nil
	case reflect.Int32, reflect.Uint32, reflect.Float32:
		return func(p unsafe.Pointer, b []byte) []byte {
				return binary.LittleEndian.AppendUint32(b, *(*uint32)(p))
			}, func(p unsafe.Pointer, r *reader) error {
				v, err := r.take(4)
				if err != nil {
					return err
				}
				*(*uint32)(p) = binary.LittleEndian.Uint32(v)
				return nil
			}, nil
	case reflect.Int64, reflect.Uint64, reflect.Float64, reflect.Int, reflect.Uint, reflect.Uintptr:
		if t.Size() != 8 {
			return nil, nil, fmt.Errorf("wire: %v has size %d, want 8 (32-bit platforms unsupported)", t, t.Size())
		}
		return func(p unsafe.Pointer, b []byte) []byte {
				return binary.LittleEndian.AppendUint64(b, *(*uint64)(p))
			}, func(p unsafe.Pointer, r *reader) error {
				v, err := r.take(8)
				if err != nil {
					return err
				}
				*(*uint64)(p) = binary.LittleEndian.Uint64(v)
				return nil
			}, nil
	case reflect.Array:
		ec, err := For(t.Elem())
		if err != nil {
			return nil, nil, err
		}
		n, sz := t.Len(), t.Elem().Size()
		return func(p unsafe.Pointer, b []byte) []byte {
				for i := 0; i < n; i++ {
					b = ec.enc(unsafe.Add(p, uintptr(i)*sz), b)
				}
				return b
			}, func(p unsafe.Pointer, r *reader) error {
				for i := 0; i < n; i++ {
					if err := ec.dec(unsafe.Add(p, uintptr(i)*sz), r); err != nil {
						return err
					}
				}
				return nil
			}, nil
	case reflect.Struct:
		type fieldCodec struct {
			off uintptr
			c   *Codec
		}
		fields := make([]fieldCodec, 0, t.NumField())
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			fc, err := For(f.Type)
			if err != nil {
				return nil, nil, fmt.Errorf("wire: %v field %s: %w", t, f.Name, err)
			}
			fields = append(fields, fieldCodec{off: f.Offset, c: fc})
		}
		return func(p unsafe.Pointer, b []byte) []byte {
				for _, f := range fields {
					b = f.c.enc(unsafe.Add(p, f.off), b)
				}
				return b
			}, func(p unsafe.Pointer, r *reader) error {
				for _, f := range fields {
					if err := f.c.dec(unsafe.Add(p, f.off), r); err != nil {
						return err
					}
				}
				return nil
			}, nil
	case reflect.String:
		return func(p unsafe.Pointer, b []byte) []byte {
				s := *(*string)(p)
				b = binary.AppendUvarint(b, uint64(len(s)))
				return append(b, s...)
			}, func(p unsafe.Pointer, r *reader) error {
				n, err := r.uvarint()
				if err != nil {
					return err
				}
				if n > maxLen {
					return fmt.Errorf("wire: string length %d exceeds limit", n)
				}
				v, err := r.take(int(n))
				if err != nil {
					return err
				}
				*(*string)(p) = string(v)
				return nil
			}, nil
	case reflect.Slice:
		ec, err := For(t.Elem())
		if err != nil {
			return nil, nil, err
		}
		st, sz := t, t.Elem().Size()
		return func(p unsafe.Pointer, b []byte) []byte {
				v := reflect.NewAt(st, p).Elem()
				n := v.Len()
				b = binary.AppendUvarint(b, uint64(n))
				if n > 0 {
					base := v.Index(0).Addr().UnsafePointer()
					for i := 0; i < n; i++ {
						b = ec.enc(unsafe.Add(base, uintptr(i)*sz), b)
					}
				}
				return b
			}, func(p unsafe.Pointer, r *reader) error {
				n, err := r.uvarint()
				if err != nil {
					return err
				}
				if n > maxLen {
					return fmt.Errorf("wire: slice length %d exceeds limit", n)
				}
				// Bound the allocation by what the remaining input could
				// possibly hold: every element costs at least one byte.
				if int(n) > len(r.data)-r.off {
					return &ErrTruncated{Need: int(n), Have: len(r.data) - r.off}
				}
				if n == 0 {
					// Canonical: zero-length decodes to nil (nil and empty
					// encode identically).
					reflect.NewAt(st, p).Elem().Set(reflect.Zero(st))
					return nil
				}
				s := reflect.MakeSlice(st, int(n), int(n))
				if n > 0 {
					base := s.Index(0).Addr().UnsafePointer()
					for i := 0; i < int(n); i++ {
						if err := ec.dec(unsafe.Add(base, uintptr(i)*sz), r); err != nil {
							return err
						}
					}
				}
				reflect.NewAt(st, p).Elem().Set(s)
				return nil
			}, nil
	case reflect.Pointer:
		et := t.Elem()
		ec, err := For(et)
		if err != nil {
			return nil, nil, err
		}
		return func(p unsafe.Pointer, b []byte) []byte {
				q := *(*unsafe.Pointer)(p)
				if q == nil {
					return append(b, 0)
				}
				b = append(b, 1)
				return ec.enc(q, b)
			}, func(p unsafe.Pointer, r *reader) error {
				flag, err := r.take(1)
				if err != nil {
					return err
				}
				if flag[0] == 0 {
					*(*unsafe.Pointer)(p) = nil
					return nil
				}
				if flag[0] != 1 {
					return fmt.Errorf("wire: bad pointer flag %d", flag[0])
				}
				v := reflect.New(et)
				if err := ec.dec(v.UnsafePointer(), r); err != nil {
					return err
				}
				reflect.NewAt(t, p).Elem().Set(v)
				return nil
			}, nil
	case reflect.Interface:
		if t.NumMethod() != 0 {
			return nil, nil, fmt.Errorf("wire: non-empty interface %v unsupported", t)
		}
		return encodeAny, decodeAny, nil
	default:
		return nil, nil, fmt.Errorf("wire: unsupported kind %v", t.Kind())
	}
}

// --- interface payloads (registered dynamic types) ----------------------

// registry maps the stable wire id of a registered dynamic type — the
// splitmix64-chained hash of its full reflect string — to the type.
// Both processes of a backend run the same binary, so ids agree by
// construction; a decode in a binary that never registered the type
// fails cleanly.
var (
	regMu    sync.Mutex
	registry = map[uint64]reflect.Type{}
)

// Register makes T encodable as the dynamic payload of an interface
// value (dfs.Record.Data, checkpoint records). Registering the same
// type twice is a no-op; two distinct types hashing to the same id
// panics at registration, never at decode.
func Register[T any]() {
	RegisterType(reflect.TypeFor[T]())
}

// RegisterType is Register for a reflect.Type held at runtime.
func RegisterType(t reflect.Type) {
	id := typeID(t)
	regMu.Lock()
	defer regMu.Unlock()
	if prev, ok := registry[id]; ok {
		if prev != t {
			panic(fmt.Sprintf("wire: type id collision: %v and %v", prev, t))
		}
		return
	}
	registry[id] = t
}

func lookupType(id uint64) (reflect.Type, bool) {
	regMu.Lock()
	defer regMu.Unlock()
	t, ok := registry[id]
	return t, ok
}

// typeID hashes a type's full name with the same splitmix64 chain the
// DFS checksum layer uses.
func typeID(t reflect.Type) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, c := range []byte(t.String()) {
		h = mix64(h ^ uint64(c))
	}
	// PkgPath disambiguates same-named types from different packages
	// beyond what String() (which shortens the package) includes.
	for _, c := range []byte(t.PkgPath()) {
		h = mix64(h ^ uint64(c))
	}
	return mix64(h)
}

// mix64 is the splitmix64 finalizer (the repo's standard mixer).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func encodeAny(p unsafe.Pointer, b []byte) []byte {
	v := *(*any)(p)
	if v == nil {
		return binary.LittleEndian.AppendUint64(b, 0)
	}
	t := reflect.TypeOf(v)
	id := typeID(t)
	if _, ok := lookupType(id); !ok {
		// Unregistered payloads cannot be encoded; surface as a panic
		// converted to an error by EncodeRecords' recover. Interface
		// encode has no error return because the fixed-width fast paths
		// share its signature.
		panic(&unregisteredError{t: t})
	}
	c, err := For(t)
	if err != nil {
		panic(&unregisteredError{t: t, cause: err})
	}
	b = binary.LittleEndian.AppendUint64(b, id)
	// Copy the value out of the interface so we have an addressable,
	// writable instance to encode from.
	inst := reflect.New(t)
	inst.Elem().Set(reflect.ValueOf(v))
	return c.enc(inst.UnsafePointer(), b)
}

func decodeAny(p unsafe.Pointer, r *reader) error {
	raw, err := r.take(8)
	if err != nil {
		return err
	}
	id := binary.LittleEndian.Uint64(raw)
	if id == 0 {
		*(*any)(p) = nil
		return nil
	}
	t, ok := lookupType(id)
	if !ok {
		return fmt.Errorf("wire: unregistered type id %#x", id)
	}
	c, err := For(t)
	if err != nil {
		return err
	}
	inst := reflect.New(t)
	if err := c.dec(inst.UnsafePointer(), r); err != nil {
		return err
	}
	*(*any)(p) = inst.Elem().Interface()
	return nil
}

// unregisteredError carries an encode-side unregistered dynamic type
// out of the offset-compiled encoder (which has no error return) to
// the recover in the public entry points.
type unregisteredError struct {
	t     reflect.Type
	cause error
}

func (e *unregisteredError) Error() string {
	if e.cause != nil {
		return fmt.Sprintf("wire: cannot encode dynamic type %v: %v", e.t, e.cause)
	}
	return fmt.Sprintf("wire: dynamic type %v is not registered (wire.Register)", e.t)
}

// catch converts an unregisteredError panic raised inside the compiled
// encoder into the returned error; any other panic propagates.
func catch(err *error) {
	if r := recover(); r != nil {
		if ue, ok := r.(*unregisteredError); ok {
			*err = ue
			return
		}
		panic(r)
	}
}

// --- public entry points ------------------------------------------------

// EncodeSlice encodes s, which must be a slice, as a count followed by
// its elements. The element type is compiled on first use.
func EncodeSlice(s any) (out []byte, err error) {
	defer catch(&err)
	v := reflect.ValueOf(s)
	if v.Kind() != reflect.Slice {
		return nil, fmt.Errorf("wire: EncodeSlice wants a slice, got %T", s)
	}
	ec, err := For(v.Type().Elem())
	if err != nil {
		return nil, err
	}
	n := v.Len()
	b := binary.AppendUvarint(make([]byte, 0, 16+n*int(v.Type().Elem().Size())), uint64(n))
	sz := v.Type().Elem().Size()
	if n > 0 {
		base := v.Index(0).Addr().UnsafePointer()
		for i := 0; i < n; i++ {
			b = ec.enc(unsafe.Add(base, uintptr(i)*sz), b)
		}
	}
	return b, nil
}

// DecodeSlice decodes data produced by EncodeSlice back into a []elem
// slice, returned as any. The whole buffer must be consumed: trailing
// bytes indicate corruption and fail the decode.
func DecodeSlice(elem reflect.Type, data []byte) (any, error) {
	ec, err := For(elem)
	if err != nil {
		return nil, err
	}
	r := &reader{data: data}
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > maxLen {
		return nil, fmt.Errorf("wire: slice length %d exceeds limit", n)
	}
	if int(n) > len(data) && n > 0 {
		return nil, &ErrTruncated{Need: int(n), Have: len(data)}
	}
	s := reflect.MakeSlice(reflect.SliceOf(elem), int(n), int(n))
	sz := elem.Size()
	if n > 0 {
		base := s.Index(0).Addr().UnsafePointer()
		for i := 0; i < int(n); i++ {
			if err := ec.dec(unsafe.Add(base, uintptr(i)*sz), r); err != nil {
				return nil, err
			}
		}
	}
	if r.off != len(data) {
		return nil, fmt.Errorf("wire: %d trailing bytes after slice", len(data)-r.off)
	}
	return s.Interface(), nil
}

// EncodeValue encodes one value of any supported type (used for boxed
// record payloads and unit tests).
func EncodeValue(v any) (out []byte, err error) {
	defer catch(&err)
	t := reflect.TypeOf(v)
	if t == nil {
		return nil, fmt.Errorf("wire: cannot encode untyped nil")
	}
	c, err := For(t)
	if err != nil {
		return nil, err
	}
	inst := reflect.New(t)
	inst.Elem().Set(reflect.ValueOf(v))
	return c.enc(inst.UnsafePointer(), nil), nil
}

// DecodeValue decodes one value of type t from data, consuming it
// fully.
func DecodeValue(t reflect.Type, data []byte) (any, error) {
	c, err := For(t)
	if err != nil {
		return nil, err
	}
	r := &reader{data: data}
	inst := reflect.New(t)
	if err := c.dec(inst.UnsafePointer(), r); err != nil {
		return nil, err
	}
	if r.off != len(data) {
		return nil, fmt.Errorf("wire: %d trailing bytes after value", len(data)-r.off)
	}
	return inst.Elem().Interface(), nil
}
