package wire

import (
	"encoding/binary"
	"fmt"
	"unsafe"

	"github.com/haten2/haten2/internal/dfs"
)

// ptrOfAny exposes the address of an interface slot to the compiled
// interface codec.
func ptrOfAny(p *any) unsafe.Pointer { return unsafe.Pointer(p) }

// Per-record DFS files box each payload as `any`, so shipping one
// requires the dynamic types to be registered (wire.Register). The
// encoding is: uvarint count, then per record a zigzag-free varint
// size and the interface-encoded payload. Encode failure (an
// unregistered payload type) is an error, not a panic — backends treat
// such files as local-only and fall back to in-process reads.

// EncodeRecords encodes a per-record file's contents.
func EncodeRecords(recs []dfs.Record) (out []byte, err error) {
	defer catch(&err)
	b := binary.AppendUvarint(nil, uint64(len(recs)))
	for i := range recs {
		b = binary.AppendUvarint(b, uint64(recs[i].Size))
		b = encodeAny(ptrOfAny(&recs[i].Data), b)
	}
	return b, nil
}

// DecodeRecords decodes an EncodeRecords buffer, consuming it fully.
func DecodeRecords(data []byte) ([]dfs.Record, error) {
	r := &reader{data: data}
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > maxLen {
		return nil, fmt.Errorf("wire: record count %d exceeds limit", n)
	}
	if int(n) > len(data) && n > 0 {
		return nil, &ErrTruncated{Need: int(n), Have: len(data)}
	}
	recs := make([]dfs.Record, n)
	for i := range recs {
		sz, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		recs[i].Size = int64(sz)
		if err := decodeAny(ptrOfAny(&recs[i].Data), r); err != nil {
			return nil, err
		}
	}
	if r.off != len(data) {
		return nil, fmt.Errorf("wire: %d trailing bytes after records", len(data)-r.off)
	}
	return recs, nil
}
