package mr

import "math/bits"

// The reducer's grouping stage is the engine's allocation and hashing
// hot spot. The original implementation grouped each reduce partition
// into a map[K][]V, growing one heap-allocated value slice per distinct
// key — and HaTen2's dominant job shape (the fiber-keyed DNN/DRN/DRI
// plans) has one distinct key per nonzero fiber, so every job performed
// millions of small allocations and an ALS run performed thousands of
// such jobs. groupArena replaces that with a two-pass counting scheme
// over a single flat value arena:
//
//	pass 1 (count):   walk the partition's buckets in task order,
//	                  assigning each first-seen key the next slot via a
//	                  pooled open-addressed table and counting its
//	                  values;
//	pass 2 (scatter): prefix-sum the counts into per-slot offsets, then
//	                  walk the buckets again, writing each value into
//	                  its key's contiguous run of one pooled []V arena.
//
// Reduce then receives vals[start:end] subslices of the arena instead
// of individually allocated slices — zero per-key allocations once the
// pools are warm. Hashing is amortized across the whole shuffle: emit
// stores the raw partition hash in each pair (job.go), the count pass
// pushes it through the mix64 finalizer and probes the table on that
// (the raw hash's bits correlate with the reducer routing mask, so one
// extra mix keeps probe chains short — but no generic re-hash of the
// key is needed) and memoizes the resolved slot back into the pair,
// and the scatter pass reads the memoized slot — zero hash work in
// pass 2.
// Both passes walk buckets in task order and slots are assigned in
// first-seen key order, so reduce input order (and therefore
// floating-point summation order and every byte of output) is
// identical to the map-based grouping this replaces.
//
// Offsets are int32: a single reduce partition beyond 2³¹ pairs is far
// outside the simulator's scale (the experiment harness caps whole
// jobs at millions of shuffle records).
type groupArena[K comparable, V any] struct {
	// keys holds the distinct keys in slot order.
	keys []K
	// hashes holds each slot's stored pair hash, used to re-probe when
	// the table grows.
	hashes []uint64
	// next is, per slot, the value count after the count pass and the
	// next write cursor during the scatter pass (a cursor that ends at
	// the slot's end offset).
	next []int32
	// ends is the exclusive end offset of each slot's run in vals; slot
	// i's run is vals[ends[i-1]:ends[i]] (slot 0 starts at 0), because
	// runs are laid out in slot order.
	ends []int32
	// vals is the flat value arena, acquired from the []V pool at
	// layout time and released by putGroupArena.
	vals []V
	// table is the open-addressed (linear probing) slot index: entries
	// hold slot+1, 0 means empty. Always a power of two; mask is
	// len(table)-1. Pooled with the struct and cleared on release.
	table []int32
	mask  uint64
}

// tableSize returns the power-of-two table length for keyCap distinct
// keys at a load factor of at most ½.
func tableSize(keyCap int) int {
	if keyCap < 8 {
		keyCap = 8
	}
	return 1 << bits.Len(uint(keyCap)*2-1)
}

// getGroupArena returns an empty grouper from the pool for the key and
// value types, presized to keyCap distinct keys when freshly allocated.
func getGroupArena[K comparable, V any](keyCap int) *groupArena[K, V] {
	if v := poolFor[*groupArena[K, V]]().Get(); v != nil {
		return v.(*groupArena[K, V])
	}
	if keyCap < 0 {
		keyCap = 0
	}
	n := tableSize(keyCap)
	return &groupArena[K, V]{
		keys:   make([]K, 0, keyCap),
		hashes: make([]uint64, 0, keyCap),
		next:   make([]int32, 0, keyCap),
		ends:   make([]int32, 0, keyCap),
		table:  make([]int32, n),
		mask:   uint64(n - 1),
	}
}

// putGroupArena releases the arena storage (clearing it so pooled
// memory pins no values) and returns the grouper to its pool.
func putGroupArena[K comparable, V any](g *groupArena[K, V]) {
	putSlice(g.vals)
	g.vals = nil
	clear(g.keys) // keys may hold pointers; zero before truncating
	g.keys = g.keys[:0]
	g.hashes = g.hashes[:0]
	g.next = g.next[:0]
	g.ends = g.ends[:0]
	clear(g.table)
	poolFor[*groupArena[K, V]]().Put(g)
}

// count is pass 1: register bucket's keys in first-seen order and tally
// their values. Buckets must be offered in task order. Each pair's h
// (the raw partition hash, finalized here) seeds the table probe and
// is overwritten with the key's slot for the scatter pass.
func (g *groupArena[K, V]) count(bucket []pair[K, V]) {
	// table/mask/keys are reloaded after register, which may grow the
	// table; between registrations they stay in registers.
	table, mask, keys := g.table, g.mask, g.keys
	for i := range bucket {
		p := &bucket[i]
		h := mix64(p.h)
		idx := h & mask
		var s int32
		for {
			t := table[idx]
			if t == 0 {
				s = g.register(h, p.k, idx)
				table, mask, keys = g.table, g.mask, g.keys
				break
			}
			if keys[t-1] == p.k {
				s = t - 1
				break
			}
			idx = (idx + 1) & mask
		}
		p.h = uint64(s)
		g.next[s]++
	}
}

// register assigns the next slot to key k (stored hash h) at the free
// table index idx, growing the table when it passes ½ load. The table
// therefore runs at ¼–½ load, trading a little cache footprint for
// mostly collision-free (and so branch-predictable) probes.
func (g *groupArena[K, V]) register(h uint64, k K, idx uint64) int32 {
	s := int32(len(g.keys))
	g.keys = append(g.keys, k)
	g.hashes = append(g.hashes, h)
	g.next = append(g.next, 0)
	g.ends = append(g.ends, 0)
	g.table[idx] = s + 1
	if uint64(len(g.keys))*2 >= uint64(len(g.table)) {
		g.grow()
	}
	return s
}

// grow doubles the table and re-probes every slot from its stored hash.
func (g *groupArena[K, V]) grow() {
	nt := make([]int32, 2*len(g.table))
	mask := uint64(len(nt) - 1)
	for s, h := range g.hashes {
		idx := h & mask
		for nt[idx] != 0 {
			idx = (idx + 1) & mask
		}
		nt[idx] = int32(s) + 1
	}
	g.table = nt
	g.mask = mask
}

// layout turns the counts into offsets and acquires the value arena,
// presized to at least arenaCap (the shuffle hint from the previous run
// of the job) so steady-state ALS iterations never regrow it.
func (g *groupArena[K, V]) layout(arenaCap int) {
	total := int32(0)
	for i, c := range g.next {
		g.next[i] = total
		total += c
		g.ends[i] = total
	}
	if n := int(total); n > arenaCap {
		arenaCap = n
	}
	g.vals = getSlice[V](arenaCap)[:total]
}

// scatter is pass 2: write bucket's values into their keys' runs, using
// the slot count memoized into each pair's h. Buckets must be offered
// in the same task order as count, which makes each run's internal
// order (map task index, emission order) — exactly the reduce input
// order of the map-based grouping.
func (g *groupArena[K, V]) scatter(bucket []pair[K, V]) {
	vals, next := g.vals, g.next
	for i := range bucket {
		s := bucket[i].h
		vals[next[s]] = bucket[i].v
		next[s]++
	}
}

// group returns slot i's values. The subslice is capacity-limited to
// its run, so a reducer that appends to it reallocates instead of
// overwriting its neighbor; it aliases pooled storage and is only valid
// until putGroupArena.
func (g *groupArena[K, V]) group(i int) []V {
	start := int32(0)
	if i > 0 {
		start = g.ends[i-1]
	}
	return g.vals[start:g.ends[i]:g.ends[i]]
}
