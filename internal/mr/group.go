package mr

// The reducer's grouping stage is the engine's allocation hot spot. The
// original implementation grouped each reduce partition into a
// map[K][]V, growing one heap-allocated value slice per distinct key —
// and HaTen2's dominant job shape (the fiber-keyed DNN/DRN/DRI plans)
// has one distinct key per nonzero fiber, so every job performed
// millions of small allocations and an ALS run performed thousands of
// such jobs. groupArena replaces that with a two-pass counting scheme
// over a single flat value arena:
//
//	pass 1 (count):   walk the partition's buckets in task order,
//	                  assigning each first-seen key the next slot in a
//	                  pooled map[K]int32 index and counting its values;
//	pass 2 (scatter): prefix-sum the counts into per-slot offsets, then
//	                  walk the buckets again, writing each value into
//	                  its key's contiguous run of one pooled []V arena.
//
// Reduce then receives vals[start:end] subslices of the arena instead
// of individually allocated slices — zero per-key allocations once the
// pools are warm. Both passes walk buckets in task order and slots are
// assigned in first-seen key order, so reduce input order (and
// therefore floating-point summation order and every byte of output)
// is identical to the map-based grouping it replaces.
//
// Offsets are int32: a single reduce partition beyond 2³¹ pairs is far
// outside the simulator's scale (the experiment harness caps whole
// jobs at millions of shuffle records).
type groupArena[K comparable, V any] struct {
	// idx maps a key to its slot, assigned in first-seen order. The map
	// (the expensive-to-rebuild part) is pooled with the struct.
	idx map[K]int32
	// keys holds the distinct keys in slot order.
	keys []K
	// next is, per slot, the value count after the count pass and the
	// next write cursor during the scatter pass (a cursor that ends at
	// the slot's end offset).
	next []int32
	// ends is the exclusive end offset of each slot's run in vals; slot
	// i's run is vals[ends[i-1]:ends[i]] (slot 0 starts at 0), because
	// runs are laid out in slot order.
	ends []int32
	// vals is the flat value arena, acquired from the []V pool at
	// layout time and released by putGroupArena.
	vals []V
}

// getGroupArena returns an empty grouper from the pool for the key and
// value types, presized to keyCap distinct keys when freshly allocated.
func getGroupArena[K comparable, V any](keyCap int) *groupArena[K, V] {
	if v := poolFor[*groupArena[K, V]]().Get(); v != nil {
		return v.(*groupArena[K, V])
	}
	if keyCap < 0 {
		keyCap = 0
	}
	return &groupArena[K, V]{
		idx:  make(map[K]int32, keyCap),
		keys: make([]K, 0, keyCap),
		next: make([]int32, 0, keyCap),
		ends: make([]int32, 0, keyCap),
	}
}

// putGroupArena releases the arena storage (clearing it so pooled
// memory pins no values) and returns the grouper to its pool.
func putGroupArena[K comparable, V any](g *groupArena[K, V]) {
	putSlice(g.vals)
	g.vals = nil
	clear(g.idx)
	clear(g.keys) // keys may hold pointers; zero before truncating
	g.keys = g.keys[:0]
	g.next = g.next[:0]
	g.ends = g.ends[:0]
	poolFor[*groupArena[K, V]]().Put(g)
}

// count is pass 1: register bucket's keys in first-seen order and tally
// their values. Buckets must be offered in task order.
func (g *groupArena[K, V]) count(bucket []pair[K, V]) {
	for _, p := range bucket {
		s, ok := g.idx[p.k]
		if !ok {
			s = int32(len(g.keys))
			g.idx[p.k] = s
			g.keys = append(g.keys, p.k)
			g.next = append(g.next, 0)
			g.ends = append(g.ends, 0)
		}
		g.next[s]++
	}
}

// layout turns the counts into offsets and acquires the value arena,
// presized to at least arenaCap (the shuffle hint from the previous run
// of the job) so steady-state ALS iterations never regrow it.
func (g *groupArena[K, V]) layout(arenaCap int) {
	total := int32(0)
	for i, c := range g.next {
		g.next[i] = total
		total += c
		g.ends[i] = total
	}
	if n := int(total); n > arenaCap {
		arenaCap = n
	}
	g.vals = getSlice[V](arenaCap)[:total]
}

// scatter is pass 2: write bucket's values into their keys' runs.
// Buckets must be offered in the same task order as count, which makes
// each run's internal order (map task index, emission order) — exactly
// the reduce input order of the map-based grouping.
func (g *groupArena[K, V]) scatter(bucket []pair[K, V]) {
	for _, p := range bucket {
		s := g.idx[p.k]
		g.vals[g.next[s]] = p.v
		g.next[s]++
	}
}

// group returns slot i's values. The subslice is capacity-limited to
// its run, so a reducer that appends to it reallocates instead of
// overwriting its neighbor; it aliases pooled storage and is only valid
// until putGroupArena.
func (g *groupArena[K, V]) group(i int) []V {
	start := int32(0)
	if i > 0 {
		start = g.ends[i-1]
	}
	return g.vals[start:g.ends[i]:g.ends[i]]
}
