package mr

import (
	"slices"
	"testing"
)

// FuzzArenaGrouping differential-tests the pooled two-pass groupArena
// against the obvious map[K][]V grouping it replaced. For any bucket
// contents and any bucket split, the arena must produce the same
// distinct keys in the same first-seen order and, per key, the same
// values in the same order — the property that makes the arena
// invisible to reducers (and to floating-point summation order).
func FuzzArenaGrouping(f *testing.F) {
	f.Add(uint8(1), []byte{})
	f.Add(uint8(3), []byte{1, 10, 2, 20, 1, 30, 3, 40, 2, 50})
	f.Add(uint8(8), []byte{0, 0, 0, 1, 0, 2, 0, 3, 0, 4, 0, 5, 0, 6, 0, 7})
	f.Add(uint8(2), []byte{31, 1, 31, 2, 31, 3, 0, 4, 15, 5, 15, 6})
	f.Fuzz(func(t *testing.T, nb uint8, data []byte) {
		nbuckets := int(nb%8) + 1
		buckets := make([][]pair[int64, int64], nbuckets)
		for i := 0; i+1 < len(data); i += 2 {
			p := pair[int64, int64]{k: int64(data[i] % 32), v: int64(data[i+1])}
			b := (i / 2) % nbuckets
			buckets[b] = append(buckets[b], p)
		}
		// Reference: per-key slices in a map, keys in first-seen order
		// across buckets walked in task order.
		ref := map[int64][]int64{}
		var order []int64
		for _, b := range buckets {
			for _, p := range b {
				if _, ok := ref[p.k]; !ok {
					order = append(order, p.k)
				}
				ref[p.k] = append(ref[p.k], p.v)
			}
		}
		g := getGroupArena[int64, int64](4)
		defer putGroupArena(g)
		for _, b := range buckets {
			g.count(b)
		}
		g.layout(0)
		for _, b := range buckets {
			g.scatter(b)
		}
		if len(g.keys) != len(order) {
			t.Fatalf("arena found %d keys, reference %d", len(g.keys), len(order))
		}
		for i, k := range g.keys {
			if k != order[i] {
				t.Fatalf("slot %d: key %d, want %d (first-seen order broken)", i, k, order[i])
			}
			if vs := g.group(i); !slices.Equal(vs, ref[k]) {
				t.Fatalf("key %d: values %v, want %v", k, vs, ref[k])
			}
		}
	})
}
