// Benchmarks for the engine's hot path. They live in package mr_test so
// the headline benchmark can drive mr.Run through the real HaTen2 plans
// in internal/core without an import cycle.
//
// The acceptance benchmark for the parallel shuffle path is
// BenchmarkParafacDRIIteration: one full PARAFAC-DRI iteration (all
// three mode contractions) over a 1M-nnz tensor. Compare cores with
//
//	go test -run - -bench ParafacDRIIteration -cpu 1,4 ./internal/mr
//
// On ≥ 4 cores the wall-clock per iteration must be ≥ 2× faster at
// -cpu 4 than at -cpu 1 (the simulated SimSeconds are identical by
// construction — real parallelism never changes the cost model).
//
// All benchmarks report allocations (-benchmem implied): the arena
// grouper's allocs/op numbers are the acceptance figures recorded in
// EXPERIMENTS.md, and alloc_test.go pins them against regression.
package mr_test

import (
	"math/rand"
	"testing"

	"github.com/haten2/haten2/internal/core"
	"github.com/haten2/haten2/internal/gen"
	"github.com/haten2/haten2/internal/matrix"
	"github.com/haten2/haten2/internal/mr"
	"github.com/haten2/haten2/internal/obs"
)

// benchCluster is sized so the engine has ample task-level parallelism
// (32 slots) and no shuffle cap: DRI's PairwiseMerge legitimately
// shuffles 2·nnz·R records, which must not trip a limit mid-benchmark.
func benchCluster() *mr.Cluster {
	return mr.NewCluster(mr.Config{Machines: 8, SlotsPerMachine: 4})
}

// BenchmarkParafacDRIIteration measures one full PARAFAC-DRI iteration
// (mode-0, mode-1, mode-2 contractions) on a 1M-nnz random tensor at
// rank 4 — the workload the ISSUE's ≥2×-on-4-cores criterion is pinned
// on. Staging the tensor is setup, not measured; the measured region is
// exactly the MapReduce work an ALS iteration performs.
func BenchmarkParafacDRIIteration(b *testing.B) {
	const (
		dim  = 300
		nnz  = 1_000_000
		rank = 4
	)
	x := gen.Random(7, [3]int64{dim, dim, dim}, nnz)
	c := benchCluster()
	s, err := core.Stage(c, "X", x)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	factors := make([]*matrix.Matrix, 3)
	for m := 0; m < 3; m++ {
		factors[m] = matrix.Random(dim, rank, rng)
	}
	other := [3][2]int{{1, 2}, {0, 2}, {0, 1}}
	b.SetBytes(int64(nnz))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for n := 0; n < 3; n++ {
			o := other[n]
			if _, err := core.ParafacContract(s, n, factors[o[0]], factors[o[1]], core.DRI); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkEngineShuffleCodecs drives the engine through one real
// PARAFAC-DRI contraction under each shuffle wire format — the CI
// bench-smoke for the codec switch. Beyond timing, each sub-benchmark
// verifies the codec contract and fails (not just regresses) when it
// breaks: the columnar run must charge strictly fewer shuffle bytes
// than the fixed-width run, and an encode→decode round trip of a
// columnar block must succeed (a decode error is a bug in the wire
// format, never a perf matter).
func BenchmarkEngineShuffleCodecs(b *testing.B) {
	const (
		dim  = 150
		nnz  = 150_000
		rank = 4
	)
	x := gen.Random(7, [3]int64{dim, dim, dim}, nnz)
	probe := []core.Entry{
		{Idx: [3]int64{0, 1, 2}, Val: 0.5},
		{Idx: [3]int64{3, 1, 2}, Val: -4.25},
		{Idx: [3]int64{3, 5, 0}, Val: 1e-9},
	}
	bytesPerOp := map[string]float64{}
	for _, codec := range []core.Codec{core.CodecFixed, core.CodecColumnar} {
		b.Run(codec.String(), func(b *testing.B) {
			if enc := core.AppendEntryBlock(nil, probe); true {
				dec, rest, err := core.DecodeEntryBlock(enc)
				if err != nil || len(rest) != 0 || len(dec) != len(probe) {
					b.Fatalf("columnar round trip failed: %v (%d trailing, %d records)", err, len(rest), len(dec))
				}
			}
			c := benchCluster()
			s, err := core.Stage(c, "X", x)
			if err != nil {
				b.Fatal(err)
			}
			s.SetCodec(codec)
			rng := rand.New(rand.NewSource(7))
			u1 := matrix.Random(dim, rank, rng)
			u2 := matrix.Random(dim, rank, rng)
			c.ResetCounters()
			b.SetBytes(int64(nnz))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.ParafacContract(s, 0, u1, u2, core.DRI); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			perOp := float64(c.Totals().ShuffleBytes) / float64(b.N)
			b.ReportMetric(perOp, "shuffle-B/op")
			bytesPerOp[codec.String()] = perOp
			if f, ok := bytesPerOp["fixed"]; ok && codec == core.CodecColumnar && perOp >= f {
				b.Fatalf("columnar shuffle bytes %.0f not strictly below fixed %.0f", perOp, f)
			}
		})
	}
}

// BenchmarkEngineShuffle isolates mr.Run itself: a 1M-pair job with a
// fan-in key space, no combiner, trivial reduce. This is the pure
// map → shuffle-group → reduce path with none of core's arithmetic.
func BenchmarkEngineShuffle(b *testing.B) {
	const records = 250_000
	c := benchCluster()
	items := make([]int64, records)
	for i := range items {
		items[i] = int64(i)
	}
	if err := mr.WriteFile(c, "in", items, func(int64) int64 { return 8 }); err != nil {
		b.Fatal(err)
	}
	job := mr.Job[int64, int64, int64]{
		Name: "shuffle-bench",
		Inputs: []mr.Input[int64, int64]{mr.MapInput("in", func(v int64, emit func(int64, int64)) {
			for j := int64(0); j < 4; j++ {
				emit((v*4+j)%65536, v)
			}
		})},
		Reduce: func(k int64, vs []int64, emit func(int64)) {
			var s int64
			for _, v := range vs {
				s += v
			}
			emit(s)
		},
		Partition: mr.HashInt64,
	}
	b.SetBytes(records * 4 * 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := mr.Run(c, job); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineShuffleTraced is BenchmarkEngineShuffle with a tracer
// attached, measuring the cost of span recording on the engine's hot
// path. The acceptance criterion runs the other way: compare this
// against BenchmarkEngineShuffle to see the tracing cost, and compare
// BenchmarkEngineShuffle against the pre-tracing baseline to confirm
// the nil-tracer path (one pointer check per job under the stats lock)
// costs < 2%:
//
//	go test -run - -bench EngineShuffle -count 10 ./internal/mr
func BenchmarkEngineShuffleTraced(b *testing.B) {
	const records = 250_000
	c := benchCluster()
	c.SetTracer(obs.NewTracer())
	items := make([]int64, records)
	for i := range items {
		items[i] = int64(i)
	}
	if err := mr.WriteFile(c, "in", items, func(int64) int64 { return 8 }); err != nil {
		b.Fatal(err)
	}
	job := mr.Job[int64, int64, int64]{
		Name: "shuffle-bench-traced",
		Inputs: []mr.Input[int64, int64]{mr.MapInput("in", func(v int64, emit func(int64, int64)) {
			for j := int64(0); j < 4; j++ {
				emit((v*4+j)%65536, v)
			}
		})},
		Reduce: func(k int64, vs []int64, emit func(int64)) {
			var s int64
			for _, v := range vs {
				s += v
			}
			emit(s)
		},
		Partition: mr.HashInt64,
	}
	b.SetBytes(records * 4 * 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := mr.Run(c, job); err != nil {
			b.Fatal(err)
		}
		if i%64 == 63 {
			// Keep the span log from growing without bound across b.N.
			c.Tracer().Reset()
		}
	}
}

// BenchmarkEngineShuffleCombine is BenchmarkEngineShuffle with a
// summing combiner, exercising the pooled per-task combine scratch.
func BenchmarkEngineShuffleCombine(b *testing.B) {
	const records = 250_000
	c := benchCluster()
	items := make([]int64, records)
	for i := range items {
		items[i] = int64(i)
	}
	if err := mr.WriteFile(c, "in", items, func(int64) int64 { return 8 }); err != nil {
		b.Fatal(err)
	}
	job := mr.Job[int64, int64, int64]{
		Name: "shuffle-bench-combine",
		Inputs: []mr.Input[int64, int64]{mr.MapInput("in", func(v int64, emit func(int64, int64)) {
			for j := int64(0); j < 4; j++ {
				emit((v*4+j)%4096, 1)
			}
		})},
		Combine: func(k int64, vs []int64) []int64 {
			var s int64
			for _, v := range vs {
				s += v
			}
			return []int64{s}
		},
		Reduce: func(k int64, vs []int64, emit func(int64)) {
			var s int64
			for _, v := range vs {
				s += v
			}
			emit(s)
		},
		Partition: mr.HashInt64,
	}
	b.SetBytes(records * 4 * 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := mr.Run(c, job); err != nil {
			b.Fatal(err)
		}
	}
}
