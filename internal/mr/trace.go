package mr

import "github.com/haten2/haten2/internal/obs"

// traceJob emits one "job" span with phase children for a finished
// (or failed) job. Called from record with c.mu held and c.tracer
// non-nil, so it reads fields directly.
//
// The phase durations re-partition the cost model's terms by the
// Hadoop phase that incurs them:
//
//	map      = JobStartup + InputRecords·PerMapRecord/m + InputBytes·PerDFSByte/m
//	shuffle  = ShuffleBytes·PerShuffleByte/m
//	reduce   = ShuffleRecords·PerReduceRecord/m + OutputBytes·PerDFSByte/m + Coord·m
//	recover  = PenaltySeconds (retry backoff, re-execution, straggler lag)
//	failover = FailoverBytes·PerDFSByte/m (re-reads past corrupt replica copies)
//	scrub    = ScrubBytes·PerDFSByte/m (re-replication back to the target factor)
//
// so the phases sum to the job's SimSeconds and the job span's
// duration — set by End from the simulated clock its children advanced
// — equals the sum of its phases by construction. Every quantity is
// derived from the deterministic JobStats counters, never from the
// wall clock, which is what keeps traces byte-identical across runs
// and GOMAXPROCS settings.
func (c *Cluster) traceJob(st JobStats) {
	tr := c.tracer
	cost := c.cfg.Cost
	m := float64(c.cfg.Machines)
	job := tr.Begin("job", st.Name)
	tr.Emit("phase", "map",
		cost.JobStartup+
			float64(st.InputRecords)*cost.PerMapRecord/m+
			float64(st.InputBytes)*cost.PerDFSByte/m,
		obs.Counter{Key: "tasks", Val: int64(st.MapTasks)},
		obs.Counter{Key: "attempts", Val: int64(st.MapAttempts)},
		obs.Counter{Key: "input.records", Val: st.InputRecords},
		obs.Counter{Key: "input.bytes", Val: st.InputBytes},
	)
	tr.Emit("phase", "shuffle",
		float64(st.ShuffleBytes)*cost.PerShuffleByte/m,
		obs.Counter{Key: "shuffle.records", Val: st.ShuffleRecords},
		obs.Counter{Key: "shuffle.bytes", Val: st.ShuffleBytes},
	)
	tr.Emit("phase", "reduce",
		float64(st.ShuffleRecords)*cost.PerReduceRecord/m+
			float64(st.OutputBytes)*cost.PerDFSByte/m+
			cost.CoordPerMachine*m,
		obs.Counter{Key: "tasks", Val: int64(st.ReduceTasks)},
		obs.Counter{Key: "attempts", Val: int64(st.ReduceAttempts)},
		obs.Counter{Key: "output.records", Val: st.OutputRecords},
		obs.Counter{Key: "output.bytes", Val: st.OutputBytes},
	)
	if st.PenaltySeconds > 0 || st.TaskRetries > 0 || st.SpeculativeTasks > 0 {
		tr.Emit("phase", "recover", st.PenaltySeconds,
			obs.Counter{Key: "retries", Val: int64(st.TaskRetries)},
			obs.Counter{Key: "spec.tasks", Val: int64(st.SpeculativeTasks)},
			obs.Counter{Key: "spec.wins", Val: int64(st.SpeculativeWins)},
			obs.Counter{Key: "waste.records", Val: st.WastedRecords},
			obs.Counter{Key: "waste.bytes", Val: st.WastedBytes},
			obs.Counter{Key: "blacklisted", Val: int64(st.BlacklistedMachines)},
		)
	}
	if st.CorruptBlocks > 0 || st.LostReplicas > 0 || st.ReReplications > 0 {
		tr.Emit("phase", "failover",
			float64(st.FailoverBytes)*cost.PerDFSByte/m,
			obs.Counter{Key: "corrupt.blocks", Val: st.CorruptBlocks},
			obs.Counter{Key: "lost.replicas", Val: st.LostReplicas},
			obs.Counter{Key: "failover.reads", Val: st.FailoverReads},
			obs.Counter{Key: "failover.bytes", Val: st.FailoverBytes},
		)
		tr.Emit("phase", "scrub",
			float64(st.ScrubBytes)*cost.PerDFSByte/m,
			obs.Counter{Key: "rereplications", Val: st.ReReplications},
			obs.Counter{Key: "scrub.bytes", Val: st.ScrubBytes},
		)
	}
	tr.End(job,
		obs.Counter{Key: "input.records", Val: st.InputRecords},
		obs.Counter{Key: "input.bytes", Val: st.InputBytes},
		obs.Counter{Key: "shuffle.records", Val: st.ShuffleRecords},
		obs.Counter{Key: "shuffle.bytes", Val: st.ShuffleBytes},
		obs.Counter{Key: "output.records", Val: st.OutputRecords},
		obs.Counter{Key: "output.bytes", Val: st.OutputBytes},
		obs.Counter{Key: "retries", Val: int64(st.TaskRetries)},
		obs.Counter{Key: "waste.records", Val: st.WastedRecords},
	)
}
