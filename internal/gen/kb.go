package gen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/haten2/haten2/internal/tensor"
)

// Triple is one (subject, object, predicate) fact of a knowledge base.
type Triple struct {
	Subject, Object, Predicate int64
}

// Concept is a planted latent concept: a block of subjects, objects and
// predicates that co-occur, which a correct decomposition should recover
// as one component (Tables VI–VIII).
type Concept struct {
	Name       string
	Subjects   []int64
	Objects    []int64
	Predicates []int64
}

// KB is a generated knowledge-base tensor with its vocabulary and
// planted ground truth.
type KB struct {
	Triples    []Triple
	Subjects   []string // index → label
	Objects    []string
	Predicates []string
	Concepts   []Concept
}

// KBConfig controls knowledge-base generation.
type KBConfig struct {
	Seed int64
	// Theme prefixes entity labels (e.g. "music" for the Freebase-music
	// stand-in).
	Theme string
	// ConceptNames label the planted concepts; one concept per name.
	ConceptNames []string
	// EntitiesPerConcept is the number of subjects (and objects, and
	// predicates/4+1) dedicated to each concept.
	EntitiesPerConcept int
	// TriplesPerConcept is the number of facts sampled inside each
	// concept block.
	TriplesPerConcept int
	// NoiseTriples is the number of uniformly random facts added across
	// the whole vocabulary — the crawl noise the paper's preprocessing
	// fights.
	NoiseTriples int
}

func (c KBConfig) withDefaults() KBConfig {
	if c.Theme == "" {
		c.Theme = "kb"
	}
	if len(c.ConceptNames) == 0 {
		c.ConceptNames = []string{"concept-a", "concept-b", "concept-c"}
	}
	if c.EntitiesPerConcept <= 0 {
		c.EntitiesPerConcept = 8
	}
	if c.TriplesPerConcept <= 0 {
		c.TriplesPerConcept = 120
	}
	return c
}

// FreebaseMusicNames are concept labels echoing the paper's Freebase-
// music discoveries (Table VI).
var FreebaseMusicNames = []string{
	"classic-album", "pop-rock", "instrumentalist",
	"record-label", "concert", "songwriter",
}

// NELLNames are concept labels for the NELL stand-in.
var NELLNames = []string{"sports", "geography", "companies", "academia"}

// NewKB generates a knowledge base with planted concepts. Each concept
// owns a disjoint block of subject, object and predicate ids; facts are
// sampled inside blocks, then uniform noise is sprinkled on top.
func NewKB(cfg KBConfig) *KB {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	kb := &KB{}
	e := cfg.EntitiesPerConcept
	preds := e/4 + 1
	for ci, name := range cfg.ConceptNames {
		con := Concept{Name: name}
		for i := 0; i < e; i++ {
			con.Subjects = append(con.Subjects, int64(len(kb.Subjects)))
			kb.Subjects = append(kb.Subjects, fmt.Sprintf("%s/%s/subject-%d", cfg.Theme, name, i))
			con.Objects = append(con.Objects, int64(len(kb.Objects)))
			kb.Objects = append(kb.Objects, fmt.Sprintf("%s/%s/object-%d", cfg.Theme, name, i))
		}
		for i := 0; i < preds; i++ {
			con.Predicates = append(con.Predicates, int64(len(kb.Predicates)))
			kb.Predicates = append(kb.Predicates, fmt.Sprintf("ns:%s.%s.rel-%d", cfg.Theme, name, i))
		}
		kb.Concepts = append(kb.Concepts, con)
		for t := 0; t < cfg.TriplesPerConcept; t++ {
			kb.Triples = append(kb.Triples, Triple{
				Subject:   con.Subjects[rng.Intn(len(con.Subjects))],
				Object:    con.Objects[rng.Intn(len(con.Objects))],
				Predicate: con.Predicates[rng.Intn(len(con.Predicates))],
			})
		}
		_ = ci
	}
	for t := 0; t < cfg.NoiseTriples; t++ {
		kb.Triples = append(kb.Triples, Triple{
			Subject:   int64(rng.Intn(len(kb.Subjects))),
			Object:    int64(rng.Intn(len(kb.Objects))),
			Predicate: int64(rng.Intn(len(kb.Predicates))),
		})
	}
	return kb
}

// FilterScarcePredicates drops triples whose predicate appears at most
// minCount times — the paper's "remove too scarce triples whose
// predicates appear only once" with minCount = 1.
func (kb *KB) FilterScarcePredicates(minCount int) *KB {
	counts := map[int64]int{}
	for _, t := range kb.Triples {
		counts[t.Predicate]++
	}
	out := *kb
	out.Triples = nil
	for _, t := range kb.Triples {
		if counts[t.Predicate] > minCount {
			out.Triples = append(out.Triples, t)
		}
	}
	return &out
}

// FilterFrequentPredicates drops triples of the topK most frequent
// predicates — the paper's "as well as too frequent triples".
func (kb *KB) FilterFrequentPredicates(topK int) *KB {
	if topK <= 0 {
		return kb
	}
	counts := map[int64]int{}
	for _, t := range kb.Triples {
		counts[t.Predicate]++
	}
	type pc struct {
		p int64
		c int
	}
	var order []pc
	for p, c := range counts {
		order = append(order, pc{p, c})
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].c != order[j].c {
			return order[i].c > order[j].c
		}
		return order[i].p < order[j].p
	})
	drop := map[int64]bool{}
	for i := 0; i < topK && i < len(order); i++ {
		drop[order[i].p] = true
	}
	out := *kb
	out.Triples = nil
	for _, t := range kb.Triples {
		if !drop[t.Predicate] {
			out.Triples = append(out.Triples, t)
		}
	}
	return &out
}

// Tensor converts the knowledge base into a reweighted 3-way tensor
// following §IV-C: the entry for triple (x, y, z) is 1 + log(α/links(z)),
// where α is the count of the most frequent predicate and links(z) the
// count of predicate z — TF-IDF style damping of dominant predicates.
func (kb *KB) Tensor() *tensor.Tensor {
	links := map[int64]int{}
	alpha := 0
	for _, t := range kb.Triples {
		links[t.Predicate]++
		if links[t.Predicate] > alpha {
			alpha = links[t.Predicate]
		}
	}
	x := tensor.New(int64(len(kb.Subjects)), int64(len(kb.Objects)), int64(len(kb.Predicates)))
	seen := map[Triple]bool{}
	for _, t := range kb.Triples {
		if seen[t] {
			continue // duplicate facts carry no extra weight
		}
		seen[t] = true
		w := 1 + math.Log(float64(alpha)/float64(links[t.Predicate]))
		x.Append(w, t.Subject, t.Object, t.Predicate)
	}
	x.Coalesce()
	return x
}
