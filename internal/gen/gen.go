// Package gen produces the synthetic datasets the experiment harness
// decomposes: uniform random sparse tensors (the paper's scalability
// workloads), planted-concept knowledge-base tensors standing in for the
// Freebase-music and NELL crawls (offline substitutes with checkable
// ground truth), and network-intrusion logs (the paper's motivating
// introduction example).
//
// Everything is seeded and deterministic.
package gen

import (
	"fmt"
	"math/rand"

	"github.com/haten2/haten2/internal/tensor"
)

// Random returns a 3-way tensor of the given shape with approximately
// nnz distinct nonzero entries drawn uniformly (exactly nnz when the
// shape has at least nnz cells and the space is sparse enough to sample
// without excessive rejection). Values are drawn from [1, 2) so that no
// entry cancels or binarizes away.
func Random(seed int64, dims [3]int64, nnz int) *tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	t := tensor.New(dims[0], dims[1], dims[2])
	total := float64(dims[0]) * float64(dims[1]) * float64(dims[2])
	if float64(nnz) > total {
		nnz = int(total)
	}
	seen := make(map[[3]int64]struct{}, nnz)
	attempts := 0
	maxAttempts := nnz * 20
	for len(seen) < nnz && attempts < maxAttempts {
		attempts++
		c := [3]int64{rng.Int63n(dims[0]), rng.Int63n(dims[1]), rng.Int63n(dims[2])}
		if _, dup := seen[c]; dup {
			continue
		}
		seen[c] = struct{}{}
		t.Append(1+rng.Float64(), c[0], c[1], c[2])
	}
	t.Coalesce()
	return t
}

// RandomWithDensity returns an I×I×I tensor with the given density —
// the paper's Fig. 1(b)/7(b) axis. Density is clamped to (0, 1].
func RandomWithDensity(seed int64, dim int64, density float64) *tensor.Tensor {
	if density <= 0 {
		density = 1e-9
	}
	if density > 1 {
		density = 1
	}
	nnz := int(density * float64(dim) * float64(dim) * float64(dim))
	if nnz < 1 {
		nnz = 1
	}
	return Random(seed, [3]int64{dim, dim, dim}, nnz)
}

// DatasetInfo summarizes a generated dataset for Table V.
type DatasetInfo struct {
	Name    string
	I, J, K int64
	NNZ     int64
}

// Describe builds a DatasetInfo for a tensor.
func Describe(name string, t *tensor.Tensor) DatasetInfo {
	d := t.Dims()
	return DatasetInfo{Name: name, I: d[0], J: d[1], K: d[2], NNZ: int64(t.NNZ())}
}

// Human renders a count the way Table V does (B/M/K suffixes).
func Human(n int64) string {
	switch {
	case n >= 1_000_000_000:
		return fmt.Sprintf("%.1fB", float64(n)/1e9)
	case n >= 1_000_000:
		return fmt.Sprintf("%.1fM", float64(n)/1e6)
	case n >= 1_000:
		return fmt.Sprintf("%.1fK", float64(n)/1e3)
	}
	return fmt.Sprintf("%d", n)
}

// SplitHoldout partitions a tensor's entries into a training tensor and
// a held-out coordinate list (with true values), for use with
// MaskedParafacALS-style completion and cross-validation. frac is the
// held-out fraction in (0, 1); the split is seeded and deterministic.
func SplitHoldout(x *tensor.Tensor, frac float64, seed int64) (train *tensor.Tensor, heldIdx [][3]int64, heldVal []float64) {
	if x.Order() != 3 {
		panic("gen: SplitHoldout requires a 3-way tensor")
	}
	if frac <= 0 || frac >= 1 {
		panic(fmt.Sprintf("gen: holdout fraction %v outside (0,1)", frac))
	}
	rng := rand.New(rand.NewSource(seed))
	train = tensor.New(x.Dims()...)
	for p := 0; p < x.NNZ(); p++ {
		idx := x.Index(p)
		v := x.Value(p)
		if rng.Float64() < frac {
			heldIdx = append(heldIdx, [3]int64{idx[0], idx[1], idx[2]})
			heldVal = append(heldVal, v)
		} else {
			train.Append(v, idx[0], idx[1], idx[2])
		}
	}
	train.Coalesce()
	return train, heldIdx, heldVal
}
