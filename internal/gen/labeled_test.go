package gen

import (
	"strings"
	"testing"
)

func TestReadLabeledCOO(t *testing.T) {
	in := `# subject 0 music/alpha/s0
# object 1 music/alpha/o1
# predicate 0 ns:music.alpha.rel-0
# tensor 2 2 1
0 1 0 2.5
`
	x, v, err := ReadLabeledCOO(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if x.NNZ() != 1 {
		t.Fatalf("nnz %d", x.NNZ())
	}
	if v.Label(0, 0) != "music/alpha/s0" {
		t.Fatalf("subject label %q", v.Label(0, 0))
	}
	if v.Label(1, 1) != "music/alpha/o1" {
		t.Fatalf("object label %q", v.Label(1, 1))
	}
	// Unknown ids fall back to #id.
	if v.Label(2, 9) != "#9" {
		t.Fatalf("fallback label %q", v.Label(2, 9))
	}
	// Labels materializes the dense slice with fallbacks interleaved.
	labels := v.Labels(1, 2)
	if labels[0] != "#0" || labels[1] != "music/alpha/o1" {
		t.Fatalf("labels %v", labels)
	}
}

func TestReadLabeledCOOBadTensor(t *testing.T) {
	if _, _, err := ReadLabeledCOO(strings.NewReader("not a tensor line\n")); err == nil {
		t.Fatal("garbage accepted")
	}
}
