package gen

import (
	"fmt"
	"math/rand"

	"github.com/haten2/haten2/internal/tensor"
)

// IntrusionConfig controls the network-intrusion-log generator — the
// paper's motivating example: "(source-ip, target-ip, port-number,
// timestamp)" connection logs in which decomposition should expose
// attack structure. The generator is 3-way (source, target, port), with
// timestamps aggregated into connection counts.
type IntrusionConfig struct {
	Seed    int64
	Sources int64
	Targets int64
	Ports   int64
	// Background is the number of benign connections: web-like traffic
	// concentrated on a few common ports.
	Background int
	// ScanSources is the number of compromised hosts performing a port
	// scan: each touches ScanPorts ports on ScanTargets targets,
	// creating a dense anomalous block.
	ScanSources int
	ScanTargets int
	ScanPorts   int
}

func (c IntrusionConfig) withDefaults() IntrusionConfig {
	if c.Sources <= 0 {
		c.Sources = 60
	}
	if c.Targets <= 0 {
		c.Targets = 60
	}
	if c.Ports <= 0 {
		c.Ports = 40
	}
	if c.Background <= 0 {
		c.Background = 800
	}
	if c.ScanSources <= 0 {
		c.ScanSources = 3
	}
	if c.ScanTargets <= 0 {
		c.ScanTargets = 12
	}
	if c.ScanPorts <= 0 {
		c.ScanPorts = 15
	}
	return c
}

// Intrusion is a generated connection-log tensor with ground truth.
type Intrusion struct {
	Tensor *tensor.Tensor
	// ScanSources, ScanTargets, ScanPorts are the planted attacker
	// coordinates a correct analysis should surface.
	ScanSources []int64
	ScanTargets []int64
	ScanPorts   []int64
	// CommonPorts carry the benign traffic.
	CommonPorts []int64
}

// Label renders a synthetic address for reporting.
func (g *Intrusion) Label(kind string, id int64) string {
	switch kind {
	case "source", "target":
		return fmt.Sprintf("10.%d.%d.%d", id/65536%256, id/256%256, id%256)
	default:
		return fmt.Sprintf("port-%d", 1000+id)
	}
}

// NewIntrusion generates the log tensor: benign traffic spread over a
// handful of service ports, plus a planted port-scan block.
func NewIntrusion(cfg IntrusionConfig) *Intrusion {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := &Intrusion{}
	x := tensor.New(cfg.Sources, cfg.Targets, cfg.Ports)
	// Benign traffic: ~5 service ports receive almost everything.
	nCommon := int64(5)
	if nCommon > cfg.Ports {
		nCommon = cfg.Ports
	}
	for p := int64(0); p < nCommon; p++ {
		out.CommonPorts = append(out.CommonPorts, p)
	}
	for i := 0; i < cfg.Background; i++ {
		x.Append(1,
			rng.Int63n(cfg.Sources),
			rng.Int63n(cfg.Targets),
			out.CommonPorts[rng.Intn(len(out.CommonPorts))])
	}
	// The scan block: a few sources sweep many ports on many targets.
	for s := 0; s < cfg.ScanSources; s++ {
		src := cfg.Sources - 1 - int64(s) // park attackers at the top ids
		out.ScanSources = append(out.ScanSources, src)
	}
	for t := 0; t < cfg.ScanTargets; t++ {
		out.ScanTargets = append(out.ScanTargets, rng.Int63n(cfg.Targets))
	}
	for p := 0; p < cfg.ScanPorts; p++ {
		port := nCommon + int64(rng.Intn(int(cfg.Ports-nCommon)))
		out.ScanPorts = append(out.ScanPorts, port)
	}
	for _, src := range out.ScanSources {
		for _, tgt := range out.ScanTargets {
			for _, port := range out.ScanPorts {
				x.Append(1, src, tgt, port)
			}
		}
	}
	x.Coalesce()
	out.Tensor = x
	return out
}

// Intrusion4D is a 4-way connection-log tensor — the paper's motivating
// example verbatim: (source-ip, target-ip, port-number, timestamp).
type Intrusion4D struct {
	Tensor      *tensor.Tensor
	ScanSources []int64
	ScanWindow  [2]int64 // [start, end) hours of the attack
	CommonPorts []int64
}

// NewIntrusion4D generates the 4-way log: benign diurnal traffic on
// service ports across all hours, plus a port scan confined to a short
// time window — the temporal mode is what the 3-way projection loses.
func NewIntrusion4D(cfg IntrusionConfig, hours int64) *Intrusion4D {
	cfg = cfg.withDefaults()
	if hours <= 0 {
		hours = 24
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := &Intrusion4D{}
	x := tensor.New(cfg.Sources, cfg.Targets, cfg.Ports, hours)
	nCommon := int64(5)
	if nCommon > cfg.Ports {
		nCommon = cfg.Ports
	}
	for p := int64(0); p < nCommon; p++ {
		out.CommonPorts = append(out.CommonPorts, p)
	}
	for i := 0; i < cfg.Background; i++ {
		// Diurnal shape: business hours are busier.
		h := rng.Int63n(hours)
		if rng.Float64() < 0.6 {
			h = 8 + rng.Int63n(10)
			if h >= hours {
				h = hours - 1
			}
		}
		x.Append(1,
			rng.Int63n(cfg.Sources),
			rng.Int63n(cfg.Targets),
			out.CommonPorts[rng.Intn(len(out.CommonPorts))],
			h)
	}
	// The scan: a burst in a 3-hour window.
	start := hours / 3
	out.ScanWindow = [2]int64{start, start + 3}
	for s := 0; s < cfg.ScanSources; s++ {
		src := cfg.Sources - 1 - int64(s)
		out.ScanSources = append(out.ScanSources, src)
	}
	for _, src := range out.ScanSources {
		for t := 0; t < cfg.ScanTargets; t++ {
			tgt := rng.Int63n(cfg.Targets)
			for p := 0; p < cfg.ScanPorts; p++ {
				port := nCommon + int64(rng.Intn(int(cfg.Ports-nCommon)))
				h := out.ScanWindow[0] + rng.Int63n(out.ScanWindow[1]-out.ScanWindow[0])
				x.Append(1, src, tgt, port, h)
			}
		}
	}
	x.Coalesce()
	out.Tensor = x
	return out
}
