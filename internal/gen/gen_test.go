package gen

import (
	"strings"
	"testing"

	"github.com/haten2/haten2/internal/tensor"
)

func TestRandomShapeAndNNZ(t *testing.T) {
	x := Random(1, [3]int64{20, 30, 40}, 100)
	d := x.Dims()
	if d[0] != 20 || d[1] != 30 || d[2] != 40 {
		t.Fatalf("dims %v", d)
	}
	if x.NNZ() != 100 {
		t.Fatalf("nnz %d", x.NNZ())
	}
	for p := 0; p < x.NNZ(); p++ {
		if v := x.Value(p); v < 1 || v >= 2 {
			t.Fatalf("value %v outside [1,2)", v)
		}
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(7, [3]int64{10, 10, 10}, 50)
	b := Random(7, [3]int64{10, 10, 10}, 50)
	if !tensor.Equal(a, b, 0) {
		t.Fatal("same seed produced different tensors")
	}
	c := Random(8, [3]int64{10, 10, 10}, 50)
	if tensor.Equal(a, c, 0) {
		t.Fatal("different seeds produced identical tensors")
	}
}

func TestRandomClampsOversizedNNZ(t *testing.T) {
	x := Random(1, [3]int64{2, 2, 2}, 100)
	if x.NNZ() > 8 {
		t.Fatalf("nnz %d exceeds cell count", x.NNZ())
	}
}

func TestRandomWithDensity(t *testing.T) {
	x := RandomWithDensity(3, 30, 1e-3)
	want := int(1e-3 * 27000)
	if x.NNZ() < want-2 || x.NNZ() > want+2 {
		t.Fatalf("nnz %d, want ≈%d", x.NNZ(), want)
	}
	// Degenerate density still yields at least one entry.
	if RandomWithDensity(3, 5, 0).NNZ() < 1 {
		t.Fatal("zero density produced empty tensor")
	}
}

func TestDescribeAndHuman(t *testing.T) {
	x := Random(1, [3]int64{5, 6, 7}, 10)
	info := Describe("test", x)
	if info.I != 5 || info.J != 6 || info.K != 7 || info.NNZ != 10 {
		t.Fatalf("info %+v", info)
	}
	cases := map[int64]string{
		12:            "12",
		2_300:         "2.3K",
		99_000_000:    "99.0M",
		1_500_000_000: "1.5B",
	}
	for n, want := range cases {
		if got := Human(n); got != want {
			t.Fatalf("Human(%d)=%q want %q", n, got, want)
		}
	}
}

func TestNewKBStructure(t *testing.T) {
	kb := NewKB(KBConfig{Seed: 1, Theme: "music", ConceptNames: FreebaseMusicNames, EntitiesPerConcept: 6, TriplesPerConcept: 50, NoiseTriples: 30})
	if len(kb.Concepts) != len(FreebaseMusicNames) {
		t.Fatalf("%d concepts", len(kb.Concepts))
	}
	if len(kb.Subjects) != 6*len(FreebaseMusicNames) {
		t.Fatalf("%d subjects", len(kb.Subjects))
	}
	if len(kb.Triples) != 50*len(FreebaseMusicNames)+30 {
		t.Fatalf("%d triples", len(kb.Triples))
	}
	// Concept blocks are disjoint.
	seen := map[int64]bool{}
	for _, c := range kb.Concepts {
		for _, s := range c.Subjects {
			if seen[s] {
				t.Fatal("overlapping concept subjects")
			}
			seen[s] = true
		}
	}
	// Labels carry the theme and concept name.
	if !strings.Contains(kb.Subjects[0], "music/classic-album") {
		t.Fatalf("label %q", kb.Subjects[0])
	}
	if !strings.HasPrefix(kb.Predicates[0], "ns:music.") {
		t.Fatalf("predicate label %q", kb.Predicates[0])
	}
}

func TestKBTensorWeights(t *testing.T) {
	kb := NewKB(KBConfig{Seed: 2, TriplesPerConcept: 40})
	x := kb.Tensor()
	if x.Order() != 3 {
		t.Fatal("not 3-way")
	}
	// All weights ≥ 1 (the most frequent predicate gets exactly 1).
	minW, maxW := 1e18, 0.0
	for p := 0; p < x.NNZ(); p++ {
		v := x.Value(p)
		if v < minW {
			minW = v
		}
		if v > maxW {
			maxW = v
		}
	}
	if minW < 1-1e-12 {
		t.Fatalf("min weight %v < 1", minW)
	}
	if maxW <= minW {
		t.Fatal("reweighting had no effect")
	}
}

func TestFilterScarcePredicates(t *testing.T) {
	kb := &KB{
		Subjects:   []string{"s"},
		Objects:    []string{"o"},
		Predicates: []string{"p0", "p1"},
		Triples: []Triple{
			{0, 0, 0}, {0, 0, 0}, // p0 twice
			{0, 0, 1}, // p1 once: dropped
		},
	}
	got := kb.FilterScarcePredicates(1)
	if len(got.Triples) != 2 {
		t.Fatalf("%d triples survive", len(got.Triples))
	}
	for _, tr := range got.Triples {
		if tr.Predicate != 0 {
			t.Fatal("scarce predicate survived")
		}
	}
}

func TestFilterFrequentPredicates(t *testing.T) {
	kb := &KB{
		Predicates: []string{"p0", "p1"},
		Triples: []Triple{
			{0, 0, 0}, {0, 0, 0}, {0, 0, 0},
			{0, 0, 1},
		},
	}
	got := kb.FilterFrequentPredicates(1)
	if len(got.Triples) != 1 || got.Triples[0].Predicate != 1 {
		t.Fatalf("top predicate not dropped: %+v", got.Triples)
	}
	if same := kb.FilterFrequentPredicates(0); len(same.Triples) != 4 {
		t.Fatal("topK=0 should be a no-op")
	}
}

func TestNewIntrusionGroundTruth(t *testing.T) {
	g := NewIntrusion(IntrusionConfig{Seed: 3})
	if g.Tensor.Order() != 3 {
		t.Fatal("not 3-way")
	}
	if len(g.ScanSources) == 0 || len(g.ScanPorts) == 0 {
		t.Fatal("no planted scan")
	}
	// The scan block must exist in the tensor.
	hits := 0
	for _, s := range g.ScanSources {
		for _, tg := range g.ScanTargets {
			for _, p := range g.ScanPorts {
				if g.Tensor.At(s, tg, p) > 0 {
					hits++
				}
			}
		}
	}
	if hits == 0 {
		t.Fatal("planted scan not present in tensor")
	}
	// Labels render.
	if !strings.HasPrefix(g.Label("source", 5), "10.") {
		t.Fatalf("label %q", g.Label("source", 5))
	}
	if !strings.HasPrefix(g.Label("port", 5), "port-") {
		t.Fatalf("label %q", g.Label("port", 5))
	}
}

func TestIntrusionDeterministic(t *testing.T) {
	a := NewIntrusion(IntrusionConfig{Seed: 9})
	b := NewIntrusion(IntrusionConfig{Seed: 9})
	if !tensor.Equal(a.Tensor, b.Tensor, 0) {
		t.Fatal("same seed produced different logs")
	}
}

func TestNewIntrusion4D(t *testing.T) {
	g := NewIntrusion4D(IntrusionConfig{Seed: 4}, 24)
	if g.Tensor.Order() != 4 {
		t.Fatalf("order %d", g.Tensor.Order())
	}
	if g.Tensor.Dim(3) != 24 {
		t.Fatalf("hours dim %d", g.Tensor.Dim(3))
	}
	if g.ScanWindow[1] <= g.ScanWindow[0] {
		t.Fatalf("window %v", g.ScanWindow)
	}
	// Scan traffic exists inside the window for a planted source.
	found := false
	src := g.ScanSources[0]
	for p := 0; p < g.Tensor.NNZ(); p++ {
		idx := g.Tensor.Index(p)
		if idx[0] == src && idx[3] >= g.ScanWindow[0] && idx[3] < g.ScanWindow[1] {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no scan traffic in window")
	}
	// Determinism.
	h := NewIntrusion4D(IntrusionConfig{Seed: 4}, 24)
	if !tensor.Equal(g.Tensor, h.Tensor, 0) {
		t.Fatal("not deterministic")
	}
}

func TestSplitHoldout(t *testing.T) {
	x := Random(11, [3]int64{20, 20, 20}, 500)
	train, idx, vals := SplitHoldout(x, 0.2, 1)
	if len(idx) != len(vals) {
		t.Fatalf("idx/vals length mismatch: %d vs %d", len(idx), len(vals))
	}
	if train.NNZ()+len(idx) != x.NNZ() {
		t.Fatalf("split lost entries: %d + %d != %d", train.NNZ(), len(idx), x.NNZ())
	}
	// Roughly the requested fraction.
	frac := float64(len(idx)) / float64(x.NNZ())
	if frac < 0.1 || frac > 0.3 {
		t.Fatalf("holdout fraction %v", frac)
	}
	// Held-out values match the original tensor, and are absent from train.
	for i, c := range idx {
		if x.At(c[0], c[1], c[2]) != vals[i] {
			t.Fatal("held-out value mismatch")
		}
		if train.At(c[0], c[1], c[2]) != 0 {
			t.Fatal("held-out entry present in train")
		}
	}
	// Deterministic.
	_, idx2, _ := SplitHoldout(x, 0.2, 1)
	if len(idx2) != len(idx) {
		t.Fatal("split not deterministic")
	}
	// Invalid fractions panic.
	for _, f := range []float64{0, 1, -0.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("fraction %v accepted", f)
				}
			}()
			SplitHoldout(x, f, 1)
		}()
	}
}
