package gen

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/haten2/haten2/internal/tensor"
)

// Vocab holds the per-mode entity labels parsed from the "# subject/
// object/predicate <id> <label>" comments tensorgen emits alongside a
// knowledge-base tensor. Both cmd/conceptminer and cmd/haten2serve
// read tensors through it.
type Vocab struct {
	Subjects, Objects, Predicates map[int64]string
}

// Label returns the label of one entity, or "#<id>" when the file
// carried no label for it. Mode 0 is subjects, 1 objects, 2 predicates.
func (v *Vocab) Label(mode int, id int64) string {
	var m map[int64]string
	switch mode {
	case 0:
		m = v.Subjects
	case 1:
		m = v.Objects
	default:
		m = v.Predicates
	}
	if l, ok := m[id]; ok {
		return l
	}
	return fmt.Sprintf("#%d", id)
}

// Labels materializes a dense label slice for ids [0, n) of one mode.
func (v *Vocab) Labels(mode int, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = v.Label(mode, int64(i))
	}
	return out
}

// ReadLabeledCOO reads a COO tensor and its vocabulary comments in one
// pass. Unrecognized comment lines are passed through to the tensor
// reader, which ignores them.
func ReadLabeledCOO(r io.Reader) (*tensor.Tensor, *Vocab, error) {
	v := &Vocab{
		Subjects:   map[int64]string{},
		Objects:    map[int64]string{},
		Predicates: map[int64]string{},
	}
	var tensorText strings.Builder
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "#") {
			fields := strings.Fields(strings.TrimPrefix(trimmed, "#"))
			if len(fields) >= 3 {
				switch fields[0] {
				case "subject", "object", "predicate":
					id, err := strconv.ParseInt(fields[1], 10, 64)
					if err == nil {
						label := strings.Join(fields[2:], " ")
						switch fields[0] {
						case "subject":
							v.Subjects[id] = label
						case "object":
							v.Objects[id] = label
						default:
							v.Predicates[id] = label
						}
						continue
					}
				}
			}
		}
		tensorText.WriteString(line)
		tensorText.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	x, err := tensor.ReadCOO(strings.NewReader(tensorText.String()))
	if err != nil {
		return nil, nil, err
	}
	return x, v, nil
}
