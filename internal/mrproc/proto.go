package mrproc

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/haten2/haten2/internal/mr"
)

// proto.go marshals the frame payloads. Everything is little-endian
// with uvarint lengths; strings and byte blobs are length-prefixed.
// Decoders validate every length against the remaining buffer before
// allocating, so a corrupt payload (the frame CRC already makes that
// improbable) errors instead of over-allocating.

var errShortPayload = errors.New("mrproc: truncated message payload")

// chunkSize is the content-addressed transfer granularity for files.
// Factor matrices in the paper's configurations are a few hundred KB,
// so a 64 KiB chunk gives real dedupe opportunities (an unchanged
// chunk of a re-shipped checkpoint is recognized by hash and skipped)
// without bloating manifests.
const chunkSize = 64 << 10

// chunkRef names one chunk of a file: content hash plus exact size
// (the last chunk is short).
type chunkRef struct {
	hash uint64
	size uint32
}

type protoWriter struct{ b []byte }

func (w *protoWriter) uvarint(v uint64) { w.b = binary.AppendUvarint(w.b, v) }
func (w *protoWriter) varint(v int64)   { w.b = binary.AppendVarint(w.b, v) }
func (w *protoWriter) u64(v uint64)     { w.b = binary.LittleEndian.AppendUint64(w.b, v) }
func (w *protoWriter) str(s string) {
	w.uvarint(uint64(len(s)))
	w.b = append(w.b, s...)
}
func (w *protoWriter) bytes(p []byte) {
	w.uvarint(uint64(len(p)))
	w.b = append(w.b, p...)
}

type protoReader struct{ b []byte }

func (r *protoReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		return 0, errShortPayload
	}
	r.b = r.b[n:]
	return v, nil
}

func (r *protoReader) varint() (int64, error) {
	v, n := binary.Varint(r.b)
	if n <= 0 {
		return 0, errShortPayload
	}
	r.b = r.b[n:]
	return v, nil
}

func (r *protoReader) u64() (uint64, error) {
	if len(r.b) < 8 {
		return 0, errShortPayload
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v, nil
}

func (r *protoReader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil || n > uint64(len(r.b)) {
		return "", errShortPayload
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s, nil
}

// bytes returns a length-prefixed blob aliasing the payload buffer.
func (r *protoReader) bytes() ([]byte, error) {
	n, err := r.uvarint()
	if err != nil || n > uint64(len(r.b)) {
		return nil, errShortPayload
	}
	p := r.b[:n:n]
	r.b = r.b[n:]
	return p, nil
}

func (r *protoReader) done() error {
	if len(r.b) != 0 {
		return fmt.Errorf("mrproc: %d trailing payload bytes", len(r.b))
	}
	return nil
}

// --- message shapes ----------------------------------------------------

func encPartKey(w *protoWriter, k mr.PartKey) {
	w.str(k.Job)
	w.varint(k.Seq)
	w.uvarint(uint64(k.Task))
	w.uvarint(uint64(k.Reducer))
}

func decPartKey(r *protoReader) (mr.PartKey, error) {
	var k mr.PartKey
	var err error
	if k.Job, err = r.str(); err != nil {
		return k, err
	}
	if k.Seq, err = r.varint(); err != nil {
		return k, err
	}
	task, err := r.uvarint()
	if err != nil {
		return k, err
	}
	red, err := r.uvarint()
	if err != nil {
		return k, err
	}
	k.Task, k.Reducer = int(task), int(red)
	return k, nil
}

// ship-partition request: key + data.
func encShipPart(k mr.PartKey, data []byte) []byte {
	var w protoWriter
	encPartKey(&w, k)
	w.bytes(data)
	return w.b
}

func decShipPart(p []byte) (mr.PartKey, []byte, error) {
	r := protoReader{b: p}
	k, err := decPartKey(&r)
	if err != nil {
		return k, nil, err
	}
	data, err := r.bytes()
	if err != nil {
		return k, nil, err
	}
	return k, data, r.done()
}

// fetch-partition request / release-job request reuse the key shape.
func encPartKeyMsg(k mr.PartKey) []byte {
	var w protoWriter
	encPartKey(&w, k)
	return w.b
}

func decPartKeyMsg(p []byte) (mr.PartKey, error) {
	r := protoReader{b: p}
	k, err := decPartKey(&r)
	if err != nil {
		return k, err
	}
	return k, r.done()
}

func encReleaseJob(job string, seq int64) []byte {
	var w protoWriter
	w.str(job)
	w.varint(seq)
	return w.b
}

func decReleaseJob(p []byte) (string, int64, error) {
	r := protoReader{b: p}
	job, err := r.str()
	if err != nil {
		return "", 0, err
	}
	seq, err := r.varint()
	if err != nil {
		return "", 0, err
	}
	return job, seq, r.done()
}

// ship-file request: name + manifest (per-chunk hash and size). The
// worker answers with the indices of chunks it does not hold.
func encManifest(name string, chunks []chunkRef) []byte {
	var w protoWriter
	w.str(name)
	w.uvarint(uint64(len(chunks)))
	for _, c := range chunks {
		w.u64(c.hash)
		w.uvarint(uint64(c.size))
	}
	return w.b
}

func decManifest(p []byte) (string, []chunkRef, error) {
	r := protoReader{b: p}
	name, err := r.str()
	if err != nil {
		return "", nil, err
	}
	n, err := r.uvarint()
	if err != nil || n > uint64(len(r.b)) { // ≥1 byte per chunk entry
		return "", nil, errShortPayload
	}
	chunks := make([]chunkRef, n)
	for i := range chunks {
		if chunks[i].hash, err = r.u64(); err != nil {
			return "", nil, err
		}
		sz, err := r.uvarint()
		if err != nil || sz > chunkSize {
			return "", nil, errShortPayload
		}
		chunks[i].size = uint32(sz)
	}
	return name, chunks, r.done()
}

// need-chunks response: indices into the manifest.
func encNeed(idx []uint32) []byte {
	var w protoWriter
	w.uvarint(uint64(len(idx)))
	for _, i := range idx {
		w.uvarint(uint64(i))
	}
	return w.b
}

func decNeed(p []byte, nchunks int) ([]uint32, error) {
	r := protoReader{b: p}
	n, err := r.uvarint()
	if err != nil || n > uint64(nchunks) {
		return nil, errShortPayload
	}
	idx := make([]uint32, n)
	for i := range idx {
		v, err := r.uvarint()
		if err != nil || v >= uint64(nchunks) {
			return nil, errShortPayload
		}
		idx[i] = uint32(v)
	}
	return idx, r.done()
}

// chunk-data message: manifest index + bytes.
func encChunk(idx uint32, data []byte) []byte {
	var w protoWriter
	w.uvarint(uint64(idx))
	w.bytes(data)
	return w.b
}

func decChunk(p []byte) (uint32, []byte, error) {
	r := protoReader{b: p}
	idx, err := r.uvarint()
	if err != nil {
		return 0, nil, err
	}
	data, err := r.bytes()
	if err != nil {
		return 0, nil, err
	}
	return uint32(idx), data, r.done()
}

func encName(name string) []byte {
	var w protoWriter
	w.str(name)
	return w.b
}

func decName(p []byte) (string, error) {
	r := protoReader{b: p}
	name, err := r.str()
	if err != nil {
		return "", err
	}
	return name, r.done()
}

func encHello(id int) []byte {
	var w protoWriter
	w.uvarint(uint64(id))
	return w.b
}

func decHello(p []byte) (int, error) {
	r := protoReader{b: p}
	id, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	return int(id), r.done()
}

// splitChunks cuts data into chunkSize pieces and hashes each with the
// DFS checksum chain. Chunk boundaries are fixed offsets, so an
// unchanged prefix or suffix of a re-shipped file keeps its hashes and
// is never moved again.
func splitChunks(data []byte) []chunkRef {
	chunks := make([]chunkRef, 0, (len(data)+chunkSize-1)/chunkSize)
	for off := 0; off < len(data); off += chunkSize {
		end := off + chunkSize
		if end > len(data) {
			end = len(data)
		}
		chunks = append(chunks, chunkRef{hash: hashChunk(data[off:end]), size: uint32(end - off)})
	}
	return chunks
}
