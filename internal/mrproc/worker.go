package mrproc

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"

	"github.com/haten2/haten2/internal/dfs"
	"github.com/haten2/haten2/internal/mr"
)

// Environment hook: a process started with these variables set is a
// worker, not whatever its binary normally is. The master re-execs its
// own executable with them; MaybeWorker, called first thing from main
// (or TestMain), diverts the child into the worker loop before any of
// the binary's real behavior runs.
const (
	envMaster = "HATEN2_MRPROC_MASTER"
	envID     = "HATEN2_MRPROC_ID"
)

// MaybeWorker turns the current process into an mrproc worker when the
// spawn environment variables are set, and never returns in that case
// (the process exits when the master drains it or its connection
// drops). In a normal process invocation it is a no-op. Every binary
// that can host a proc backend — cmd/haten2, cmd/haten2bench, and the
// TestMain of any test package running proc conformance — must call it
// before doing anything else.
func MaybeWorker() {
	addr := os.Getenv(envMaster)
	if addr == "" {
		return
	}
	id, err := strconv.Atoi(os.Getenv(envID))
	if err != nil {
		fmt.Fprintf(os.Stderr, "mrproc worker: bad %s: %v\n", envID, err)
		os.Exit(2)
	}
	if err := RunWorker(addr, id); err != nil {
		fmt.Fprintf(os.Stderr, "mrproc worker %d: %v\n", id, err)
		os.Exit(1)
	}
	os.Exit(0)
}

// hashChunk is the content hash of the chunk store: the DFS checksum
// chain (splitmix64) over the chunk's bytes. Sharing the machinery with
// the file system keeps one hash discipline across the whole data path.
func hashChunk(b []byte) uint64 { return dfs.HashBytes(b) }

// workerStore is a worker process's in-memory state: shuffle partitions
// by key, and files as manifests over a reference-counted,
// content-addressed chunk store. Two files (or two generations of one
// file) sharing identical chunks store them once; the ship protocol
// only ever transfers chunks the store lacks.
type workerStore struct {
	parts  map[mr.PartKey][]byte
	files  map[string][]chunkRef
	chunks map[uint64][]byte
	refs   map[uint64]int
}

func newWorkerStore() *workerStore {
	return &workerStore{
		parts:  make(map[mr.PartKey][]byte),
		files:  make(map[string][]chunkRef),
		chunks: make(map[uint64][]byte),
		refs:   make(map[uint64]int),
	}
}

// retain bumps a chunk's refcount, returning whether the store already
// held it.
func (s *workerStore) retain(h uint64) bool {
	_, ok := s.chunks[h]
	if ok {
		s.refs[h]++
	}
	return ok
}

// dropFile forgets a file and releases its chunks.
func (s *workerStore) dropFile(name string) {
	refs, ok := s.files[name]
	if !ok {
		return
	}
	delete(s.files, name)
	for _, c := range refs {
		if s.refs[c.hash]--; s.refs[c.hash] <= 0 {
			delete(s.refs, c.hash)
			delete(s.chunks, c.hash)
		}
	}
}

// assemble concatenates a file's chunks. The bool is false when the
// store does not hold the file.
func (s *workerStore) assemble(name string) ([]byte, bool) {
	refs, ok := s.files[name]
	if !ok {
		return nil, false
	}
	var total int
	for _, c := range refs {
		total += int(c.size)
	}
	out := make([]byte, 0, total)
	for _, c := range refs {
		out = append(out, s.chunks[c.hash]...)
	}
	return out, true
}

// RunWorker dials the master, registers as worker id, and serves
// requests until the master drains the connection or closes it. This is
// the whole worker process: single connection, sequential requests (the
// master serializes per-worker traffic), memory-only storage.
func RunWorker(addr string, id int) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("dial master: %w", err)
	}
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 64<<10)
	bw := bufio.NewWriterSize(conn, 64<<10)
	if err := writeFrame(bw, ftHello, encHello(id)); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	t, _, err := readFrame(br)
	if err != nil {
		return fmt.Errorf("registration: %w", err)
	}
	if t != ftHelloOK {
		return fmt.Errorf("registration rejected: frame type %d", t)
	}
	return serve(br, bw, newWorkerStore())
}

// serve is the worker request loop. It returns nil on an orderly end:
// a drain handshake, or the master closing the connection at a frame
// boundary. The drain path is deliberately one-sided: the worker sends
// ftDrainOK, flushes it, and then *keeps reading until the master
// closes the socket* instead of closing its own end. Closing first
// would race the master's final read — an ECONNRESET if the kernel
// turns our close into an RST while the DrainOK bytes are still in
// flight — which is exactly the shutdown flakiness the drain handshake
// exists to prevent.
func serve(br *bufio.Reader, bw *bufio.Writer, store *workerStore) error {
	reply := func(t frameType, payload []byte) error {
		if err := writeFrame(bw, t, payload); err != nil {
			return err
		}
		return bw.Flush()
	}
	fail := func(err error) error { return reply(ftError, []byte(err.Error())) }
	for {
		t, payload, err := readFrame(br)
		if err == io.EOF {
			return nil // master closed between frames
		}
		if err != nil {
			return err
		}
		switch t {
		case ftPing:
			if err := reply(ftPong, nil); err != nil {
				return err
			}
		case ftShipPart:
			k, data, err := decShipPart(payload)
			if err != nil {
				return err
			}
			store.parts[k] = data
			if err := reply(ftOK, nil); err != nil {
				return err
			}
		case ftFetchPart:
			k, err := decPartKeyMsg(payload)
			if err != nil {
				return err
			}
			data, ok := store.parts[k]
			if !ok {
				if err := reply(ftPartAbsent, nil); err != nil {
					return err
				}
				break
			}
			if err := reply(ftPartData, data); err != nil {
				return err
			}
		case ftReleaseJob:
			job, seq, err := decReleaseJob(payload)
			if err != nil {
				return err
			}
			for k := range store.parts {
				if k.Job == job && k.Seq == seq {
					delete(store.parts, k)
				}
			}
			if err := reply(ftOK, nil); err != nil {
				return err
			}
		case ftShipFile:
			if err := receiveFile(br, bw, store, payload); err != nil {
				return err
			}
		case ftFetchFile:
			name, err := decName(payload)
			if err != nil {
				return err
			}
			data, ok := store.assemble(name)
			if !ok {
				if err := reply(ftFileAbsent, nil); err != nil {
					return err
				}
				break
			}
			if err := reply(ftFileData, data); err != nil {
				return err
			}
		case ftDropFile:
			name, err := decName(payload)
			if err != nil {
				return err
			}
			store.dropFile(name)
			if err := reply(ftOK, nil); err != nil {
				return err
			}
		case ftDrain:
			if err := reply(ftDrainOK, nil); err != nil {
				return err
			}
			// Wait for the master to close; see the function comment.
			for {
				if _, _, err := readFrame(br); err != nil {
					if err == io.EOF || err == io.ErrUnexpectedEOF {
						return nil
					}
					return err
				}
			}
		default:
			if err := fail(fmt.Errorf("mrproc: unexpected frame type %d", t)); err != nil {
				return err
			}
		}
	}
}

// receiveFile runs the worker side of the incremental file transfer:
// read the manifest, claim the chunks already in the content store,
// request the rest, verify each arriving chunk against its declared
// hash, and only then publish the new manifest (atomically replacing
// any previous generation of the file).
func receiveFile(br *bufio.Reader, bw *bufio.Writer, store *workerStore, payload []byte) error {
	name, chunks, err := decManifest(payload)
	if err != nil {
		return err
	}
	var need []uint32
	for i, c := range chunks {
		if !store.retain(c.hash) {
			need = append(need, uint32(i))
		}
	}
	// Claimed refcounts must be rolled back if the transfer dies midway,
	// or aborted transfers would leak pinned chunks.
	claimed := len(chunks) - len(need)
	rollback := func() {
		for _, c := range chunks {
			if claimed == 0 {
				break
			}
			if _, ok := store.chunks[c.hash]; ok {
				store.refs[c.hash]--
				claimed--
			}
		}
	}
	if err := writeFrame(bw, ftNeedChunks, encNeed(need)); err != nil {
		rollback()
		return err
	}
	if err := bw.Flush(); err != nil {
		rollback()
		return err
	}
	got := make(map[uint32][]byte, len(need))
	for range need {
		t, p, err := readFrame(br)
		if err != nil {
			rollback()
			return err
		}
		if t != ftChunkData {
			rollback()
			return fmt.Errorf("mrproc: want chunk frame, got type %d", t)
		}
		idx, data, err := decChunk(p)
		if err != nil {
			rollback()
			return err
		}
		if int(idx) >= len(chunks) || hashChunk(data) != chunks[idx].hash || uint32(len(data)) != chunks[idx].size {
			rollback()
			if err := writeFrame(bw, ftError, []byte("mrproc: chunk hash mismatch")); err != nil {
				return err
			}
			return bw.Flush()
		}
		got[idx] = data
	}
	// All chunks verified: install them, then swap the manifest in.
	for idx, data := range got {
		h := chunks[idx].hash
		if _, ok := store.chunks[h]; !ok {
			store.chunks[h] = data
		}
		store.refs[h]++
	}
	store.dropFile(name)
	store.files[name] = chunks
	if err := writeFrame(bw, ftFileOK, nil); err != nil {
		return err
	}
	return bw.Flush()
}
