package mrproc

import (
	"bytes"
	"errors"
	"os"
	"runtime"
	"testing"
	"time"

	"github.com/haten2/haten2/internal/mr"
	"github.com/haten2/haten2/internal/mr/conformance"
)

// TestMain diverts re-exec'd copies of this test binary into the worker
// loop: the proc backend spawns workers by running its own executable
// with the mrproc environment hook set.
func TestMain(m *testing.M) {
	MaybeWorker()
	os.Exit(m.Run())
}

func newMaster(t *testing.T, opt Options) *Master {
	t.Helper()
	m, err := New(opt)
	if err != nil {
		t.Fatalf("mrproc.New: %v", err)
	}
	return m
}

// TestConformanceProc is the package's headline test: the multi-process
// backend must pass the full cross-backend suite — nine golden traces
// byte-identical, fault matrix across GOMAXPROCS, and bit-identical
// PARAFAC/Tucker factors — with every shuffle partition and mirrored
// file round-tripping through real worker processes.
func TestConformanceProc(t *testing.T) {
	conformance.RunConformance(t, func(t *testing.T) mr.Backend {
		return newMaster(t, Options{Workers: 2})
	})
}

func TestPartitionRoundTrip(t *testing.T) {
	m := newMaster(t, Options{Workers: 2, HeartbeatInterval: -1})
	defer m.Close()
	k := mr.PartKey{Job: "grid", Seq: 1, Task: 0, Reducer: 3}
	if data, err := m.FetchPartition(k); err != nil || data != nil {
		t.Fatalf("fetch before ship: %v %v", data, err)
	}
	if err := m.ShipPartition(k, []byte("bucket bytes")); err != nil {
		t.Fatal(err)
	}
	other := mr.PartKey{Job: "grid", Seq: 2, Task: 1, Reducer: 0}
	if err := m.ShipPartition(other, []byte("other run")); err != nil {
		t.Fatal(err)
	}
	if data, err := m.FetchPartition(k); err != nil || string(data) != "bucket bytes" {
		t.Fatalf("fetch: %q %v", data, err)
	}
	// Releasing (job, seq) must drop exactly that run's partitions.
	if err := m.ReleaseJob("grid", 1); err != nil {
		t.Fatal(err)
	}
	if data, err := m.FetchPartition(k); err != nil || data != nil {
		t.Fatalf("fetch after release: %q %v", data, err)
	}
	if data, err := m.FetchPartition(other); err != nil || string(data) != "other run" {
		t.Fatalf("other run lost by release: %q %v", data, err)
	}
	s := m.Stats()
	if s.PartitionsShipped != 2 || s.PartitionsFetched != 2 {
		t.Fatalf("stats: %+v", s)
	}
}

// TestIncrementalFileTransfer pins the content-hashed transfer: a
// re-ship of unchanged content moves zero chunks, and a one-byte edit
// moves exactly the chunk containing it.
func TestIncrementalFileTransfer(t *testing.T) {
	m := newMaster(t, Options{Workers: 2, Replication: 2, HeartbeatInterval: -1})
	defer m.Close()
	data := make([]byte, 3*chunkSize+100) // four chunks, last one partial
	for i := range data {
		data[i] = byte(i * 7)
	}
	if err := m.ShipFile("stage/checkpoint", data); err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if s.ChunksShipped != 8 || s.ChunkBytesShipped != 2*int64(len(data)) || s.ChunksDeduped != 0 {
		t.Fatalf("first ship (4 chunks x 2 replicas): %+v", s)
	}
	if got, err := m.FetchFile("stage/checkpoint"); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("fetch: %d bytes, %v", len(got), err)
	}
	// Identical content: everything dedupes, nothing moves.
	if err := m.ShipFile("stage/checkpoint", data); err != nil {
		t.Fatal(err)
	}
	s = m.Stats()
	if s.ChunksShipped != 8 || s.ChunksDeduped != 8 || s.ChunkBytesDeduped != 2*int64(len(data)) {
		t.Fatalf("identical re-ship: %+v", s)
	}
	// A one-byte edit in the last chunk: only that chunk transfers.
	data2 := append([]byte{}, data...)
	data2[len(data2)-1] ^= 0xff
	if err := m.ShipFile("stage/checkpoint", data2); err != nil {
		t.Fatal(err)
	}
	s = m.Stats()
	if s.ChunksShipped != 10 || s.ChunksDeduped != 14 {
		t.Fatalf("edited re-ship: %+v", s)
	}
	if got, err := m.FetchFile("stage/checkpoint"); err != nil || !bytes.Equal(got, data2) {
		t.Fatalf("fetch after edit: %d bytes, %v", len(got), err)
	}
	if err := m.DropFile("stage/checkpoint"); err != nil {
		t.Fatal(err)
	}
	var missing *mr.ErrNoRemoteFile
	if _, err := m.FetchFile("stage/checkpoint"); !errors.As(err, &missing) {
		t.Fatalf("fetch after drop: %v", err)
	}
}

// TestMembershipLifecycle walks the state machine: live after New, dead
// after a kill is noticed by the heartbeat, exited after Close — and a
// surviving replica keeps the file plane available throughout.
func TestMembershipLifecycle(t *testing.T) {
	m := newMaster(t, Options{Workers: 2, Replication: 2, HeartbeatInterval: 25 * time.Millisecond})
	defer m.Close()
	for id, s := range m.States() {
		if s != StateLive {
			t.Fatalf("worker %d after New: %v", id, s)
		}
	}
	if err := m.ShipFile("survivor", []byte("replicated twice")); err != nil {
		t.Fatal(err)
	}
	if err := m.KillWorker(1); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for m.States()[1] != StateDead {
		if time.Now().After(deadline) {
			t.Fatalf("heartbeat never marked killed worker dead: %v", m.States())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if s := m.Stats(); s.Heartbeats == 0 || s.HeartbeatMisses == 0 {
		t.Fatalf("heartbeat counters: %+v", s)
	}
	if m.States()[0] != StateLive {
		t.Fatalf("worker 0 should be unaffected: %v", m.States())
	}
	// File plane degrades, not fails: the surviving replica serves reads
	// and absorbs writes.
	if got, err := m.FetchFile("survivor"); err != nil || string(got) != "replicated twice" {
		t.Fatalf("fetch with one replica dead: %q %v", got, err)
	}
	if err := m.ShipFile("survivor2", []byte("one live replica left")); err != nil {
		t.Fatalf("ship with one replica dead: %v", err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("close with a dead worker: %v", err)
	}
	for id, s := range m.States() {
		if s != StateExited {
			t.Fatalf("worker %d after Close: %v", id, s)
		}
	}
}

// TestDrainShutdownClean is the regression pin for the shutdown race:
// traffic immediately before Close must never surface an ECONNRESET —
// the drain handshake has the worker hold its socket open until the
// master closes first.
func TestDrainShutdownClean(t *testing.T) {
	for i := 0; i < 10; i++ {
		m := newMaster(t, Options{Workers: 2, HeartbeatInterval: -1})
		for j := 0; j < 4; j++ {
			k := mr.PartKey{Job: "drain", Seq: int64(i), Task: j}
			if err := m.ShipPartition(k, bytes.Repeat([]byte{byte(j)}, 4096)); err != nil {
				t.Fatalf("iteration %d: ship: %v", i, err)
			}
		}
		if err := m.ShipFile("drain/file", bytes.Repeat([]byte("x"), 3*chunkSize)); err != nil {
			t.Fatalf("iteration %d: ship file: %v", i, err)
		}
		if err := m.Close(); err != nil {
			t.Fatalf("iteration %d: close: %v", i, err)
		}
		for id, s := range m.States() {
			if s != StateExited {
				t.Fatalf("iteration %d: worker %d state %v after Close", i, id, s)
			}
		}
	}
}

// TestStartStopGoroutineClean pins that Close joins everything the
// master started: repeated start/stop cycles (heartbeat enabled) leave
// the goroutine count where it began.
func TestStartStopGoroutineClean(t *testing.T) {
	cycle := func() {
		m := newMaster(t, Options{Workers: 2, HeartbeatInterval: 10 * time.Millisecond})
		if err := m.ShipPartition(mr.PartKey{Job: "leak", Seq: 1}, []byte("payload")); err != nil {
			t.Fatal(err)
		}
		if err := m.ShipFile("leak/file", []byte("mirror")); err != nil {
			t.Fatal(err)
		}
		if err := m.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
	}
	cycle() // warm up lazy runtime machinery before taking the baseline
	before := runtime.NumGoroutine()
	for i := 0; i < 8; i++ {
		cycle()
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d -> %d\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
