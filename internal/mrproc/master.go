package mrproc

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"sync"
	"sync/atomic"
	"time"

	"github.com/haten2/haten2/internal/dfs"
	"github.com/haten2/haten2/internal/mr"
)

// WorkerState is one node of the membership state machine the master
// drives for each worker process:
//
//	Spawned ──register──▶ Live ──drain──▶ Draining ──exit──▶ Exited
//	   │                   │
//	   └───timeout──▶ Dead ◀──heartbeat miss / RPC error
//
// Dead is terminal short of Exited: the master never reconnects a dead
// worker (its partitions are gone; jobs holding shuffle there fail and
// the caller decides what to do). Exited is the orderly end of Close.
type WorkerState int32

const (
	StateSpawned WorkerState = iota
	StateLive
	StateDraining
	StateDead
	StateExited
)

func (s WorkerState) String() string {
	switch s {
	case StateSpawned:
		return "spawned"
	case StateLive:
		return "live"
	case StateDraining:
		return "draining"
	case StateDead:
		return "dead"
	case StateExited:
		return "exited"
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// Options configures a proc backend.
type Options struct {
	// Workers is the number of worker processes (default 2).
	Workers int
	// Replication is how many workers hold each shipped file (default
	// min(2, Workers)). Shuffle partitions are not replicated: they are
	// transient per-job state, and losing one fails the job just as a
	// lost map output does on Hadoop.
	Replication int
	// HeartbeatInterval is the membership probe period (default 500ms).
	// Zero takes the default; negative disables the heartbeat loop
	// (liveness is then detected on use).
	HeartbeatInterval time.Duration
	// IOTimeout bounds each socket round trip (default 10s).
	IOTimeout time.Duration
	// SpawnTimeout bounds how long New waits for all workers to
	// register (default 10s).
	SpawnTimeout time.Duration
	// Command, when non-empty, is the argv of the worker binary
	// (cmd/haten2worker) to spawn. Empty re-execs the current
	// executable, relying on an early MaybeWorker call in its main or
	// TestMain.
	Command []string
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.Replication <= 0 {
		o.Replication = 2
	}
	if o.Replication > o.Workers {
		o.Replication = o.Workers
	}
	if o.HeartbeatInterval == 0 {
		o.HeartbeatInterval = 500 * time.Millisecond
	}
	if o.IOTimeout <= 0 {
		o.IOTimeout = 10 * time.Second
	}
	if o.SpawnTimeout <= 0 {
		o.SpawnTimeout = 10 * time.Second
	}
	return o
}

// Stats counts the backend's transport work. Pure observability: none
// of these feed the engine's counters or simulated time.
type Stats struct {
	PartitionsShipped int64
	PartitionBytes    int64
	PartitionsFetched int64
	FilesShipped      int64
	FileBytes         int64
	ChunksShipped     int64
	ChunkBytesShipped int64
	// ChunksDeduped/ChunkBytesDeduped count manifest chunks a target
	// worker already held — content the incremental transfer never
	// moved.
	ChunksDeduped     int64
	ChunkBytesDeduped int64
	Heartbeats        int64
	HeartbeatMisses   int64
}

// worker is the master's handle on one worker process: the connection
// (serialized by mu — the protocol is strictly request/response per
// worker), the process, and the membership state.
type worker struct {
	id    int
	cmd   *exec.Cmd
	state atomic.Int32

	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
}

func (w *worker) getState() WorkerState  { return WorkerState(w.state.Load()) }
func (w *worker) setState(s WorkerState) { w.state.Store(int32(s)) }

// errWorkerDown reports an operation against a worker that is not live.
type errWorkerDown struct {
	id    int
	state WorkerState
}

func (e *errWorkerDown) Error() string {
	return fmt.Sprintf("mrproc: worker %d is %s", e.id, e.state)
}

// Master is the multi-process backend: it implements mr.Backend by
// routing shuffle partitions and mirrored files to worker processes
// over local TCP sockets.
type Master struct {
	opt     Options
	workers []*worker

	stats struct {
		partsShipped, partBytes, partsFetched atomic.Int64
		filesShipped, fileBytes               atomic.Int64
		chunksShipped, chunkBytesShipped      atomic.Int64
		chunksDeduped, chunkBytesDeduped      atomic.Int64
		heartbeats, heartbeatMisses           atomic.Int64
	}

	hbStop chan struct{}
	hbDone chan struct{}

	closeOnce sync.Once
	closeErr  error
}

// New spawns opt.Workers worker processes, waits for all of them to
// register, and starts the membership heartbeat. The returned Master is
// ready to install with (*mr.Cluster).SetBackend.
func New(opt Options) (*Master, error) {
	opt = opt.withDefaults()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("mrproc: listen: %w", err)
	}
	defer ln.Close() // registration only; all later traffic uses accepted conns
	m := &Master{opt: opt, hbStop: make(chan struct{}), hbDone: make(chan struct{})}
	for id := 0; id < opt.Workers; id++ {
		w := &worker{id: id}
		w.setState(StateSpawned)
		cmd, err := spawnWorker(opt, ln.Addr().String(), id)
		if err != nil {
			m.killSpawned()
			return nil, err
		}
		w.cmd = cmd
		m.workers = append(m.workers, w)
	}
	deadline := time.Now().Add(opt.SpawnTimeout)
	for registered := 0; registered < opt.Workers; registered++ {
		if err := m.acceptOne(ln, deadline); err != nil {
			m.killSpawned()
			return nil, err
		}
	}
	if opt.HeartbeatInterval > 0 {
		//haten2:allow goleak heartbeat loop is the master's persistent daemon; Close closes hbStop and blocks on hbDone to join it
		go m.heartbeatLoop()
	} else {
		close(m.hbDone)
	}
	return m, nil
}

// spawnWorker starts one worker process, either the configured worker
// binary or a re-exec of the current executable with the environment
// hook set.
func spawnWorker(opt Options, addr string, id int) (*exec.Cmd, error) {
	var cmd *exec.Cmd
	if len(opt.Command) > 0 {
		cmd = exec.Command(opt.Command[0], opt.Command[1:]...)
	} else {
		exe, err := os.Executable()
		if err != nil {
			return nil, fmt.Errorf("mrproc: locate executable: %w", err)
		}
		cmd = exec.Command(exe)
	}
	cmd.Env = append(os.Environ(),
		envMaster+"="+addr,
		envID+"="+fmt.Sprint(id),
	)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("mrproc: spawn worker %d: %w", id, err)
	}
	return cmd, nil
}

// acceptOne accepts one registration, validates the hello, and moves
// that worker to Live.
func (m *Master) acceptOne(ln net.Listener, deadline time.Time) error {
	if tl, ok := ln.(*net.TCPListener); ok {
		if err := tl.SetDeadline(deadline); err != nil {
			return err
		}
	}
	conn, err := ln.Accept()
	if err != nil {
		return fmt.Errorf("mrproc: worker registration: %w", err)
	}
	if err := conn.SetDeadline(deadline); err != nil {
		conn.Close()
		return err
	}
	br := bufio.NewReaderSize(conn, 64<<10)
	t, payload, err := readFrame(br)
	if err != nil || t != ftHello {
		conn.Close()
		return fmt.Errorf("mrproc: bad registration frame (type %d): %v", t, err)
	}
	id, err := decHello(payload)
	if err != nil || id < 0 || id >= len(m.workers) {
		conn.Close()
		return fmt.Errorf("mrproc: registration with invalid worker id %d: %v", id, err)
	}
	w := m.workers[id]
	if w.getState() != StateSpawned {
		conn.Close()
		return fmt.Errorf("mrproc: duplicate registration for worker %d", id)
	}
	bw := bufio.NewWriterSize(conn, 64<<10)
	if err := writeFrame(bw, ftHelloOK, nil); err != nil {
		conn.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		conn.Close()
		return err
	}
	// Clear the registration deadline; per-operation deadlines take over.
	if err := conn.SetDeadline(time.Time{}); err != nil {
		conn.Close()
		return err
	}
	w.conn, w.br, w.bw = conn, br, bw
	w.setState(StateLive)
	return nil
}

// killSpawned is New's failure cleanup: terminate any processes already
// started.
func (m *Master) killSpawned() {
	for _, w := range m.workers {
		if w.cmd != nil && w.cmd.Process != nil {
			_ = w.cmd.Process.Kill()
			_ = w.cmd.Wait()
		}
	}
}

// heartbeatLoop pings every worker once per interval until Close stops
// it. A failed ping marks the worker dead (and the rpc path closes the
// connection); liveness decisions affect wall-clock behavior only.
func (m *Master) heartbeatLoop() {
	defer close(m.hbDone)
	tick := time.NewTicker(m.opt.HeartbeatInterval)
	defer tick.Stop()
	for {
		select {
		case <-m.hbStop:
			return
		case <-tick.C:
			for _, w := range m.workers {
				if w.getState() != StateLive {
					continue
				}
				m.stats.heartbeats.Add(1)
				if _, _, err := m.call(w, ftPing, nil, ftPong); err != nil {
					m.stats.heartbeatMisses.Add(1)
				}
			}
		}
	}
}

// markDown transitions a worker to Dead and closes its connection.
// Called with w.mu held.
func (w *worker) markDownLocked() {
	if w.getState() == StateLive {
		w.setState(StateDead)
	}
	if w.conn != nil {
		w.conn.Close()
	}
}

// call performs one request/response round with a worker. Any
// transport error, unexpected frame type, or worker-reported ftError
// marks the worker dead (a desynchronized request/response stream
// cannot be trusted again) and is returned.
func (m *Master) call(w *worker, t frameType, payload []byte, want ...frameType) (frameType, []byte, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return m.callLocked(w, t, payload, want...)
}

func (m *Master) callLocked(w *worker, t frameType, payload []byte, want ...frameType) (frameType, []byte, error) {
	if s := w.getState(); s != StateLive {
		return ftInvalid, nil, &errWorkerDown{id: w.id, state: s}
	}
	if err := w.conn.SetDeadline(time.Now().Add(m.opt.IOTimeout)); err != nil {
		w.markDownLocked()
		return ftInvalid, nil, err
	}
	if err := writeFrame(w.bw, t, payload); err != nil {
		w.markDownLocked()
		return ftInvalid, nil, err
	}
	if err := w.bw.Flush(); err != nil {
		w.markDownLocked()
		return ftInvalid, nil, err
	}
	return m.recvLocked(w, want...)
}

// recvLocked reads one response frame and validates its type. Called
// with w.mu held, after a request has been written.
func (m *Master) recvLocked(w *worker, want ...frameType) (frameType, []byte, error) {
	rt, rp, err := readFrame(w.br)
	if err != nil {
		w.markDownLocked()
		return ftInvalid, nil, fmt.Errorf("mrproc: worker %d: %w", w.id, err)
	}
	if rt == ftError {
		w.markDownLocked()
		return ftInvalid, nil, fmt.Errorf("mrproc: worker %d: %s", w.id, rp)
	}
	for _, wt := range want {
		if rt == wt {
			return rt, rp, nil
		}
	}
	w.markDownLocked()
	return ftInvalid, nil, fmt.Errorf("mrproc: worker %d: unexpected frame type %d", w.id, rt)
}

// --- placement ---------------------------------------------------------

// partWorker places a shuffle partition on a worker by hashing its key.
func (m *Master) partWorker(k mr.PartKey) *worker {
	h := dfs.HashBytes(encPartKeyMsg(k))
	return m.workers[int(h%uint64(len(m.workers)))]
}

// fileWorkers returns the replication-many workers holding a file, in
// placement order: primary first, then successive ring neighbors.
func (m *Master) fileWorkers(name string) []*worker {
	h := dfs.HashBytes([]byte(name))
	n := len(m.workers)
	out := make([]*worker, 0, m.opt.Replication)
	for i := 0; i < m.opt.Replication; i++ {
		out = append(out, m.workers[(int(h%uint64(n))+i)%n])
	}
	return out
}

// --- mr.Backend --------------------------------------------------------

// Name identifies the backend in reports.
func (m *Master) Name() string { return "proc" }

// InProcess reports that this backend's data plane leaves the engine's
// process.
func (m *Master) InProcess() bool { return false }

// ShipPartition stores one encoded shuffle partition on its placed
// worker. Partition loss fails jobs, so a down worker is an error, not
// a fallback.
func (m *Master) ShipPartition(k mr.PartKey, data []byte) error {
	w := m.partWorker(k)
	if _, _, err := m.call(w, ftShipPart, encShipPart(k, data), ftOK); err != nil {
		return err
	}
	m.stats.partsShipped.Add(1)
	m.stats.partBytes.Add(int64(len(data)))
	return nil
}

// FetchPartition reads a partition back from its placed worker.
// (nil, nil) means no partition was shipped for k.
func (m *Master) FetchPartition(k mr.PartKey) ([]byte, error) {
	w := m.partWorker(k)
	t, p, err := m.call(w, ftFetchPart, encPartKeyMsg(k), ftPartData, ftPartAbsent)
	if err != nil {
		return nil, err
	}
	if t == ftPartAbsent {
		return nil, nil
	}
	m.stats.partsFetched.Add(1)
	return p, nil
}

// ReleaseJob drops a job run's partitions on every live worker.
func (m *Master) ReleaseJob(job string, seq int64) error {
	var firstErr error
	for _, w := range m.workers {
		if w.getState() != StateLive {
			continue
		}
		if _, _, err := m.call(w, ftReleaseJob, encReleaseJob(job, seq), ftOK); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// ShipFile mirrors a file to its replication set using the incremental
// chunk protocol: each target answers the manifest with the chunk
// indices it lacks, and only those move. A file counts as shipped when
// at least one replica holds it.
func (m *Master) ShipFile(name string, data []byte) error {
	chunks := splitChunks(data)
	manifest := encManifest(name, chunks)
	var stored int
	var firstErr error
	for _, w := range m.fileWorkers(name) {
		if err := m.shipFileTo(w, name, manifest, chunks, data); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		stored++
	}
	if stored == 0 {
		return firstErr
	}
	m.stats.filesShipped.Add(1)
	m.stats.fileBytes.Add(int64(len(data)))
	return nil
}

// shipFileTo runs the master side of the incremental transfer with one
// worker: manifest → needed indices → chunk data → file commit. The
// whole conversation holds the worker's lock; the protocol is
// request/response per worker, and interleaving another request inside
// the transfer would desynchronize the stream.
func (m *Master) shipFileTo(w *worker, name string, manifest []byte, chunks []chunkRef, data []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	_, needRaw, err := m.callLocked(w, ftShipFile, manifest, ftNeedChunks)
	if err != nil {
		return err
	}
	need, err := decNeed(needRaw, len(chunks))
	if err != nil {
		w.markDownLocked()
		return err
	}
	var shippedBytes int64
	for _, idx := range need {
		off := int(idx) * chunkSize
		chunk := data[off : off+int(chunks[idx].size)]
		if err := writeFrame(w.bw, ftChunkData, encChunk(idx, chunk)); err != nil {
			w.markDownLocked()
			return err
		}
		shippedBytes += int64(len(chunk))
	}
	if err := w.bw.Flush(); err != nil {
		w.markDownLocked()
		return err
	}
	if _, _, err := m.recvLocked(w, ftFileOK); err != nil {
		return err
	}
	m.stats.chunksShipped.Add(int64(len(need)))
	m.stats.chunkBytesShipped.Add(shippedBytes)
	m.stats.chunksDeduped.Add(int64(len(chunks) - len(need)))
	m.stats.chunkBytesDeduped.Add(int64(len(data)) - shippedBytes)
	return nil
}

// FetchFile reads a mirrored file from the first live replica that
// holds it.
func (m *Master) FetchFile(name string) ([]byte, error) {
	var firstErr error
	for _, w := range m.fileWorkers(name) {
		t, p, err := m.call(w, ftFetchFile, encName(name), ftFileData, ftFileAbsent)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if t == ftFileData {
			return p, nil
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return nil, &mr.ErrNoRemoteFile{Name: name}
}

// DropFile forgets a file on its replication set.
func (m *Master) DropFile(name string) error {
	var firstErr error
	for _, w := range m.fileWorkers(name) {
		if w.getState() != StateLive {
			continue
		}
		if _, _, err := m.call(w, ftDropFile, encName(name), ftOK); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Close drains and stops every worker: stop the heartbeat, send each
// live worker a drain (it finishes in-flight work, acknowledges, and
// waits for us to close the socket — see serve in worker.go for why
// that order kills the shutdown race), close the connections, and reap
// the processes.
func (m *Master) Close() error {
	m.closeOnce.Do(func() {
		close(m.hbStop)
		<-m.hbDone
		var errs []error
		for _, w := range m.workers {
			if w.getState() == StateLive {
				if _, _, err := m.call(w, ftDrain, nil, ftDrainOK); err != nil {
					errs = append(errs, err)
				} else {
					w.setState(StateDraining)
				}
			}
			w.mu.Lock()
			if w.conn != nil {
				w.conn.Close()
			}
			w.mu.Unlock()
			if w.cmd != nil {
				if err := w.cmd.Wait(); err != nil && w.getState() == StateDraining {
					errs = append(errs, fmt.Errorf("mrproc: worker %d exit: %w", w.id, err))
				}
			}
			w.setState(StateExited)
		}
		m.closeErr = errors.Join(errs...)
	})
	return m.closeErr
}

// KillWorker forcibly terminates a worker process without a drain —
// the chaos hook for membership tests and fault experiments. The
// heartbeat (or the next RPC routed to the worker) observes the death
// and marks the worker Dead.
func (m *Master) KillWorker(id int) error {
	if id < 0 || id >= len(m.workers) {
		return fmt.Errorf("mrproc: no worker %d", id)
	}
	w := m.workers[id]
	if w.cmd == nil || w.cmd.Process == nil {
		return fmt.Errorf("mrproc: worker %d has no process", id)
	}
	return w.cmd.Process.Kill()
}

// States snapshots the membership state of every worker, indexed by
// worker id.
func (m *Master) States() []WorkerState {
	out := make([]WorkerState, len(m.workers))
	for i, w := range m.workers {
		out[i] = w.getState()
	}
	return out
}

// Stats snapshots the transport counters.
func (m *Master) Stats() Stats {
	return Stats{
		PartitionsShipped: m.stats.partsShipped.Load(),
		PartitionBytes:    m.stats.partBytes.Load(),
		PartitionsFetched: m.stats.partsFetched.Load(),
		FilesShipped:      m.stats.filesShipped.Load(),
		FileBytes:         m.stats.fileBytes.Load(),
		ChunksShipped:     m.stats.chunksShipped.Load(),
		ChunkBytesShipped: m.stats.chunkBytesShipped.Load(),
		ChunksDeduped:     m.stats.chunksDeduped.Load(),
		ChunkBytesDeduped: m.stats.chunkBytesDeduped.Load(),
		Heartbeats:        m.stats.heartbeats.Load(),
		HeartbeatMisses:   m.stats.heartbeatMisses.Load(),
	}
}
