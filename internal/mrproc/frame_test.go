package mrproc

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xab}, 70000)}
	for _, p := range payloads {
		for _, ft := range []frameType{ftPing, ftShipPart, ftFileData, ftDrainOK} {
			enc := encodeFrame(nil, ft, p)
			gt, gp, n, err := decodeFrame(enc)
			if err != nil || gt != ft || !bytes.Equal(gp, p) || n != len(enc) {
				t.Fatalf("decode(%d,%d bytes): type %d payload %d consumed %d err %v",
					ft, len(p), gt, len(gp), n, err)
			}
			rt, rp, err := readFrame(bytes.NewReader(enc))
			if err != nil || rt != ft || !bytes.Equal(rp, p) {
				t.Fatalf("readFrame(%d,%d bytes): type %d err %v", ft, len(p), rt, err)
			}
		}
	}
}

// TestFrameTruncation: every proper prefix of a valid frame must error,
// in both the buffer and the stream decoder.
func TestFrameTruncation(t *testing.T) {
	enc := encodeFrame(nil, ftShipPart, []byte("partition bytes"))
	for cut := 0; cut < len(enc); cut++ {
		if _, _, _, err := decodeFrame(enc[:cut]); err == nil {
			t.Fatalf("decodeFrame accepted %d/%d bytes", cut, len(enc))
		}
		if _, _, err := readFrame(bytes.NewReader(enc[:cut])); err == nil {
			t.Fatalf("readFrame accepted %d/%d bytes", cut, len(enc))
		}
	}
	// A cut before any byte is a clean EOF to the stream reader — the
	// orderly-close signal — but anything mid-frame is not.
	if _, _, err := readFrame(bytes.NewReader(nil)); err != io.EOF {
		t.Fatalf("empty stream: want io.EOF, got %v", err)
	}
	if _, _, err := readFrame(bytes.NewReader(enc[:5])); err != io.ErrUnexpectedEOF {
		t.Fatalf("mid-header cut: want ErrUnexpectedEOF, got %v", err)
	}
}

// TestFrameCorruption: flipping any single byte of a valid frame must
// produce an error (bad magic, bad CRC, oversized, or truncation —
// never a silent wrong decode, never a panic).
func TestFrameCorruption(t *testing.T) {
	enc := encodeFrame(nil, ftChunkData, []byte("chunk payload with some length"))
	for i := 0; i < len(enc); i++ {
		mut := append([]byte{}, enc...)
		mut[i] ^= 0x40
		if _, _, _, err := decodeFrame(mut); err == nil {
			t.Fatalf("byte %d flip decoded without error", i)
		}
		if _, _, err := readFrame(bytes.NewReader(mut)); err == nil {
			t.Fatalf("byte %d flip read without error", i)
		}
	}
}

// TestFrameOversizedLength: a declared length beyond the cap must error
// before any allocation of that size.
func TestFrameOversizedLength(t *testing.T) {
	enc := encodeFrame(nil, ftPing, nil)
	binary.LittleEndian.PutUint32(enc[5:], maxFramePayload+1)
	if _, _, _, err := decodeFrame(enc); err != ErrOversized {
		t.Fatalf("want ErrOversized, got %v", err)
	}
	if _, _, err := readFrame(bytes.NewReader(enc)); err != ErrOversized {
		t.Fatalf("readFrame: want ErrOversized, got %v", err)
	}
}

// FuzzWireFraming is the frame codec's robustness pin: for arbitrary
// input bytes, the buffer decoder and the stream reader must agree,
// must never panic, and anything either accepts must re-encode to a
// decodable frame with identical content. Truncations, CRC flips, and
// oversized lengths (all present in the seed corpus) must error.
func FuzzWireFraming(f *testing.F) {
	valid := encodeFrame(nil, ftShipPart, []byte("seed partition payload"))
	f.Add(valid)
	f.Add(encodeFrame(nil, ftPing, nil))
	f.Add(valid[:len(valid)-3]) // truncated mid-trailer
	crcFlip := append([]byte{}, valid...)
	crcFlip[len(crcFlip)-1] ^= 0xff
	f.Add(crcFlip)
	over := encodeFrame(nil, ftFileData, []byte("x"))
	binary.LittleEndian.PutUint32(over[5:], maxFramePayload+7)
	f.Add(over)
	f.Add([]byte("garbage that is not a frame at all"))
	f.Fuzz(func(t *testing.T, b []byte) {
		ft1, p1, n, err := decodeFrame(b)
		rt, rp, rerr := readFrame(bytes.NewReader(b))
		if err == nil {
			if n > len(b) || n < frameHeaderLen+frameTrailerLen {
				t.Fatalf("consumed %d of %d", n, len(b))
			}
			if rerr != nil {
				t.Fatalf("stream rejected what buffer accepted: %v", rerr)
			}
			if rt != ft1 || !bytes.Equal(rp, p1) {
				t.Fatal("stream and buffer decode disagree")
			}
			re := encodeFrame(nil, ft1, p1)
			ft2, p2, n2, err2 := decodeFrame(re)
			if err2 != nil || ft2 != ft1 || !bytes.Equal(p2, p1) || n2 != len(re) {
				t.Fatalf("re-encode round trip failed: %v", err2)
			}
		} else if rerr == nil {
			t.Fatal("stream accepted what buffer rejected")
		}
	})
}
