// Package mrproc is the multi-process execution backend: worker
// processes that serve shuffle partitions and DFS file blocks to the
// engine over local sockets. The engine's computation (map, combine,
// reduce closures) stays in the master process — closures cannot cross
// a process boundary — but every byte the computation consumes and
// produces round-trips through real worker processes, exactly the
// data-plane shape of the Hadoop cluster the simulator models.
//
// The package has three layers:
//
//   - frame.go: a length-prefixed, CRC-guarded frame codec. Every
//     message on a socket is one frame: magic, type, payload length,
//     payload, CRC-32C over type+length+payload. Truncation, bit flips,
//     and oversized lengths are errors, never panics or allocations
//     (FuzzWireFraming pins this).
//   - proto.go + worker.go: the request/response protocol and the
//     worker process serving it — a content-addressed chunk store for
//     files (splitmix64-chained hashes via dfs.HashBytes, so
//     re-replication and checkpoint shipping move only changed chunks)
//     and a plain partition store for shuffle data.
//   - master.go: the mr.Backend implementation — spawns workers,
//     tracks membership (register → live → draining → exited, dead on
//     heartbeat miss), places partitions and files by hash, and drains
//     workers before shutdown.
package mrproc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Frame layout, little-endian:
//
//	offset 0: magic   uint32  "2TH\x50" (frameMagic)
//	offset 4: type    uint8
//	offset 5: length  uint32  payload bytes, ≤ maxFramePayload
//	offset 9: payload [length]byte
//	then:     crc     uint32  CRC-32C over bytes [4, 9+length)
//
// The CRC covers type and length as well as the payload, so a flipped
// length byte fails the checksum instead of desynchronizing the stream.
const (
	frameMagic      = uint32(0x50485432) // "2TH\x50" when read LE
	frameHeaderLen  = 9
	frameTrailerLen = 4
	maxFramePayload = 1 << 30
)

// frameType tags what a frame's payload means. The wire values are
// part of the protocol; add new types at the end only.
type frameType uint8

const (
	ftInvalid    frameType = iota
	ftHello                // worker → master: register (payload: worker id)
	ftHelloOK              // master → worker: registration accepted
	ftPing                 // master → worker: heartbeat probe
	ftPong                 // worker → master: heartbeat reply
	ftShipPart             // master → worker: store a shuffle partition
	ftFetchPart            // master → worker: read a shuffle partition
	ftPartData             // worker → master: partition bytes
	ftPartAbsent           // worker → master: no such partition
	ftReleaseJob           // master → worker: drop a job run's partitions
	ftShipFile             // master → worker: file manifest (chunk hashes)
	ftNeedChunks           // worker → master: chunk indices it lacks
	ftChunkData            // master → worker: one chunk's bytes
	ftFileOK               // worker → master: file assembled and stored
	ftFetchFile            // master → worker: read a file
	ftFileData             // worker → master: file bytes
	ftFileAbsent           // worker → master: no such file
	ftDropFile             // master → worker: forget a file
	ftOK                   // generic success
	ftError                // generic failure (payload: message)
	ftDrain                // master → worker: finish in-flight work and stop
	ftDrainOK              // worker → master: drained, about to exit
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Frame codec errors. ReadFrame and DecodeFrame never panic on hostile
// input; they return one of these (or an io error) and never allocate
// more than the declared payload length, which is capped.
var (
	ErrBadMagic  = errors.New("mrproc: bad frame magic")
	ErrBadCRC    = errors.New("mrproc: frame CRC mismatch")
	ErrOversized = errors.New("mrproc: frame payload exceeds limit")
	// errTruncatedFrame reports a buffer that ends mid-frame; the
	// streaming reader maps it to io.ErrUnexpectedEOF.
	errTruncatedFrame = errors.New("mrproc: truncated frame")
)

// encodeFrame appends one complete frame for (t, payload) to dst and
// returns the extended slice.
func encodeFrame(dst []byte, t frameType, payload []byte) []byte {
	if len(payload) > maxFramePayload {
		// Callers never build oversized payloads (partitions and chunks
		// are bounded well below the cap); treat it as a programmer
		// error rather than silently corrupting the stream.
		panic(fmt.Sprintf("mrproc: encodeFrame payload %d exceeds %d", len(payload), maxFramePayload))
	}
	start := len(dst)
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], frameMagic)
	hdr[4] = byte(t)
	binary.LittleEndian.PutUint32(hdr[5:], uint32(len(payload)))
	dst = append(dst, hdr[:]...)
	dst = append(dst, payload...)
	crc := crc32.Checksum(dst[start+4:], crcTable)
	var tr [frameTrailerLen]byte
	binary.LittleEndian.PutUint32(tr[:], crc)
	return append(dst, tr[:]...)
}

// decodeFrame parses one frame from the front of b. It returns the
// frame type, the payload (aliasing b), and the total encoded size
// consumed. A buffer that ends mid-frame returns errTruncatedFrame; a
// corrupt one returns ErrBadMagic, ErrOversized, or ErrBadCRC. The
// declared length is validated against both the cap and the buffer
// before any use, so hostile lengths cannot trigger huge allocations
// or out-of-range reads.
func decodeFrame(b []byte) (frameType, []byte, int, error) {
	if len(b) < frameHeaderLen {
		return ftInvalid, nil, 0, errTruncatedFrame
	}
	if binary.LittleEndian.Uint32(b[0:]) != frameMagic {
		return ftInvalid, nil, 0, ErrBadMagic
	}
	n := binary.LittleEndian.Uint32(b[5:])
	if n > maxFramePayload {
		return ftInvalid, nil, 0, ErrOversized
	}
	total := frameHeaderLen + int(n) + frameTrailerLen
	if len(b) < total {
		return ftInvalid, nil, 0, errTruncatedFrame
	}
	body := b[4 : frameHeaderLen+int(n)]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(b[frameHeaderLen+int(n):]) {
		return ftInvalid, nil, 0, ErrBadCRC
	}
	return frameType(b[4]), b[frameHeaderLen : frameHeaderLen+int(n)], total, nil
}

// writeFrame writes one frame to w.
func writeFrame(w io.Writer, t frameType, payload []byte) error {
	buf := encodeFrame(make([]byte, 0, frameHeaderLen+len(payload)+frameTrailerLen), t, payload)
	_, err := w.Write(buf)
	return err
}

// readFrame reads one frame from r. The payload is freshly allocated
// (bounded by the validated length) and owned by the caller. Truncated
// streams return io.ErrUnexpectedEOF, except a clean EOF before any
// header byte, which returns io.EOF so callers can distinguish an
// orderly close from a mid-frame cut.
func readFrame(r io.Reader) (frameType, []byte, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		if err == io.ErrUnexpectedEOF {
			err = io.EOF
		}
		return ftInvalid, nil, err
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return ftInvalid, nil, unexpected(err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != frameMagic {
		return ftInvalid, nil, ErrBadMagic
	}
	n := binary.LittleEndian.Uint32(hdr[5:])
	if n > maxFramePayload {
		return ftInvalid, nil, ErrOversized
	}
	rest := make([]byte, int(n)+frameTrailerLen)
	if _, err := io.ReadFull(r, rest); err != nil {
		return ftInvalid, nil, unexpected(err)
	}
	crc := crc32.Update(crc32.Checksum(hdr[4:], crcTable), crcTable, rest[:n])
	if crc != binary.LittleEndian.Uint32(rest[n:]) {
		return ftInvalid, nil, ErrBadCRC
	}
	return frameType(hdr[4]), rest[:n:n], nil
}

func unexpected(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
