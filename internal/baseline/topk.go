package baseline

import (
	"sort"

	"github.com/haten2/haten2/internal/matrix"
	"github.com/haten2/haten2/internal/tensor"
)

// TopKResult is one ranked answer from the reference scorer.
type TopKResult struct {
	Index int64
	Score float64
}

// ParafacTopKObjects is the single-threaded reference for the serving
// layer's (subject, predicate) → top objects query over a PARAFAC
// model: score every object with a plain dot product, sort fully, keep
// k. It deliberately shares the served path's exact floating-point
// evaluation order — q_r = λ_r·A(s,r)·C(p,r) then Σ_r q_r·B(o,r) with
// r ascending — and its total order (higher score first, ties to the
// lower index), so internal/serve's sharded, batched, cached answers
// must be bit-identical to this one. It is also the "naive scorer" leg
// of the serve benchmark: a full O(J log J) sort and fresh allocations
// per query, no cache, no batching.
func ParafacTopKObjects(lambda []float64, factors [3]*matrix.Matrix, subject, predicate int64, k int) []TopKResult {
	rank := len(lambda)
	srow := factors[0].Row(int(subject))
	prow := factors[2].Row(int(predicate))
	q := make([]float64, rank)
	for r := 0; r < rank; r++ {
		q[r] = lambda[r] * srow[r] * prow[r]
	}
	return scoreAndSort(factors[1], q, k)
}

// TuckerTopKObjects is the Tucker reference: the query vector is the
// core contracted with the subject and predicate factor rows
// (q_j = Σ_a Σ_c 𝒢(a,j,c)·A(s,a)·C(p,c), a outer and c inner), then
// the same object scoring and ordering as the PARAFAC reference.
func TuckerTopKObjects(core *tensor.Dense, factors [3]*matrix.Matrix, subject, predicate int64, k int) []TopKResult {
	srow := factors[0].Row(int(subject))
	prow := factors[2].Row(int(predicate))
	d := core.Dims()
	q := make([]float64, d[1])
	for j := range q {
		var sum float64
		for a := int64(0); a < d[0]; a++ {
			sv := srow[a]
			for c := int64(0); c < d[2]; c++ {
				sum += core.At(a, int64(j), c) * sv * prow[c]
			}
		}
		q[j] = sum
	}
	return scoreAndSort(factors[1], q, k)
}

func scoreAndSort(obj *matrix.Matrix, q []float64, k int) []TopKResult {
	out := make([]TopKResult, obj.Rows)
	for o := 0; o < obj.Rows; o++ {
		row := obj.Row(o)
		var s float64
		for r, qv := range q {
			s += qv * row[r]
		}
		out[o] = TopKResult{Index: int64(o), Score: s}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Index < out[j].Index
	})
	if k < 0 {
		k = 0
	}
	if k > len(out) {
		k = len(out)
	}
	return out[:k]
}
