package baseline

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/haten2/haten2/internal/matrix"
	"github.com/haten2/haten2/internal/tensor"
)

func planted(rng *rand.Rand, dims [3]int64, rank int) *tensor.Tensor {
	k := &tensor.Kruskal{Lambda: make([]float64, rank)}
	for m := 0; m < 3; m++ {
		f := matrix.Random(int(dims[m]), rank, rng)
		f.NormalizeColumns()
		k.Factors = append(k.Factors, f)
	}
	for r := range k.Lambda {
		k.Lambda[r] = 2 + rng.Float64()
	}
	return k.Full(dims[0], dims[1], dims[2]).ToSparse()
}

func TestParafacALSFitsPlantedModel(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	x := planted(rng, [3]int64{8, 7, 6}, 2)
	tb := New(Config{})
	res, err := tb.ParafacALS(x, 2, Options{MaxIters: 300, Seed: 1, TrackFit: true, Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if fit := res.Model.Fit(x); fit < 0.99 {
		t.Fatalf("fit %v after %d iters", fit, res.Iters)
	}
	if res.ModeledSeconds <= 0 || res.PeakBytes <= 0 {
		t.Fatalf("missing cost accounting: %+v", res)
	}
}

func TestTuckerALSFitsLowRankTensor(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	x := planted(rng, [3]int64{8, 7, 6}, 2)
	tb := New(Config{})
	res, err := tb.TuckerALS(x, [3]int{2, 2, 2}, Options{MaxIters: 30, Seed: 2, Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if fit := res.Model.Fit(x); fit < 0.99 {
		t.Fatalf("fit %v, core norms %v", fit, res.CoreNorms)
	}
	for m, f := range res.Model.Factors {
		if !matrix.Gram(f).Equal(matrix.Identity(f.Cols), 1e-8) {
			t.Fatalf("factor %d not orthonormal", m)
		}
	}
}

func TestOutOfMemoryOnBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	x := planted(rng, [3]int64{20, 20, 20}, 3)
	tb := New(Config{MemoryBudget: 1024}) // absurdly small
	_, err := tb.ParafacALS(x, 3, Options{MaxIters: 2, Seed: 1})
	var oom *ErrOutOfMemory
	if !errors.As(err, &oom) {
		t.Fatalf("want ErrOutOfMemory, got %v", err)
	}
	_, err = tb.TuckerALS(x, [3]int{3, 3, 3}, Options{MaxIters: 2, Seed: 1})
	if !errors.As(err, &oom) {
		t.Fatalf("want ErrOutOfMemory for Tucker, got %v", err)
	}
}

func TestTuckerOOMScalesWithCoreSize(t *testing.T) {
	// The MET intermediate grows with Q, so a budget that fits a small
	// core must fail on a larger one — the Fig. 1(c) effect.
	rng := rand.New(rand.NewSource(64))
	x := planted(rng, [3]int64{30, 30, 30}, 2)
	// Budget: enough for core 2³ but not 20³ (the intermediate grows ×Q).
	small, err := New(Config{MemoryBudget: 8 << 20}).TuckerALS(x, [3]int{2, 2, 2}, Options{MaxIters: 2, Seed: 1})
	if err != nil {
		t.Fatalf("small core should fit: %v", err)
	}
	if small.PeakBytes <= 0 {
		t.Fatal("no peak recorded")
	}
	_, err = New(Config{MemoryBudget: 8 << 20}).TuckerALS(x, [3]int{20, 20, 20}, Options{MaxIters: 2, Seed: 1})
	var oom *ErrOutOfMemory
	if !errors.As(err, &oom) {
		t.Fatalf("large core should exhaust the budget, got %v", err)
	}
}

func TestValidation(t *testing.T) {
	tb := New(Config{})
	x2 := tensor.New(2, 2)
	x2.Append(1, 0, 0)
	if _, err := tb.ParafacALS(x2, 1, Options{}); err == nil {
		t.Fatal("2-way tensor accepted by ParafacALS")
	}
	if _, err := tb.TuckerALS(x2, [3]int{1, 1, 1}, Options{}); err == nil {
		t.Fatal("2-way tensor accepted by TuckerALS")
	}
	x3 := tensor.New(2, 2, 2)
	x3.Append(1, 0, 0, 0)
	if _, err := tb.ParafacALS(x3, 0, Options{}); err == nil {
		t.Fatal("rank 0 accepted")
	}
	if _, err := tb.TuckerALS(x3, [3]int{5, 1, 1}, Options{}); err == nil {
		t.Fatal("oversized core accepted")
	}
}

func TestModeledTimeGrowsWithWork(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	small := planted(rng, [3]int64{6, 6, 6}, 2)
	big := planted(rng, [3]int64{14, 14, 14}, 2)
	tb := New(Config{})
	rs, err := tb.ParafacALS(small, 2, Options{MaxIters: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := tb.ParafacALS(big, 2, Options{MaxIters: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rb.ModeledSeconds <= rs.ModeledSeconds {
		t.Fatalf("bigger tensor should model slower: %v vs %v", rb.ModeledSeconds, rs.ModeledSeconds)
	}
}

func TestMETSlicingMatchesFullPath(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	x := planted(rng, [3]int64{12, 11, 10}, 2)
	full := New(Config{})
	res1, err := full.TuckerALS(x, [3]int{3, 3, 3}, Options{MaxIters: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Budget below the full intermediate but above the sliced one, with
	// slicing enabled: must succeed with identical core norms.
	inter := int64(x.NNZ()) * 3 * 32
	budget := int64(x.NNZ())*32 + inter/3 + 12*9*8 + (12+11+10)*3*8 + 4096
	met := New(Config{MemoryBudget: budget, METSlicing: true})
	res2, err := met.TuckerALS(x, [3]int{3, 3, 3}, Options{MaxIters: 4, Seed: 5})
	if err != nil {
		t.Fatalf("MET path failed: %v", err)
	}
	for i := range res1.CoreNorms {
		if d := res1.CoreNorms[i] - res2.CoreNorms[i]; d > 1e-9 || d < -1e-9 {
			t.Fatalf("core norms diverge at iter %d: %v vs %v", i, res1.CoreNorms, res2.CoreNorms)
		}
	}
	// Without slicing the same budget must fail.
	strict := New(Config{MemoryBudget: budget})
	if _, err := strict.TuckerALS(x, [3]int{3, 3, 3}, Options{MaxIters: 4, Seed: 5}); err == nil {
		t.Fatal("full path should exceed the budget")
	}
	// MET pays more modeled time (extra passes).
	if res2.ModeledSeconds <= res1.ModeledSeconds {
		t.Fatalf("MET should trade time for memory: %v vs %v", res2.ModeledSeconds, res1.ModeledSeconds)
	}
}
