// Package baseline implements the single-machine comparator the paper
// benchmarks HaTen2 against: the MATLAB Tensor Toolbox running MET
// (Memory-Efficient Tucker) and sparse MTTKRP-based PARAFAC-ALS.
//
// The decompositions run in memory (no cluster), which makes them fast
// on small tensors, but every step charges its working set against an
// explicit memory budget; when the peak exceeds the budget the run fails
// with ErrOutOfMemory — the "o.o.m" markers of Figures 1 and 7. A
// calibrated single-machine cost model produces modeled seconds
// comparable with the cluster simulator's, so the harness can plot both
// families on one axis.
package baseline

import (
	"fmt"
	"math/rand"

	"github.com/haten2/haten2/internal/matrix"
	"github.com/haten2/haten2/internal/tensor"
)

// ErrOutOfMemory reports that a step's working set exceeded the
// configured memory budget.
type ErrOutOfMemory struct {
	Step   string
	Needed int64
	Budget int64
}

func (e *ErrOutOfMemory) Error() string {
	return fmt.Sprintf("baseline: out of memory in %s: needs %d bytes, budget %d", e.Step, e.Needed, e.Budget)
}

// Config describes the simulated single machine.
type Config struct {
	// MemoryBudget is the usable RAM in bytes. Zero means 32 GiB, the
	// paper's per-machine RAM.
	MemoryBudget int64
	// SecondsPerOp is the modeled cost of one scalar multiply-add in the
	// sparse kernels. Zero means 5e-9 (vectorized MATLAB on the paper's
	// 3.3 GHz Xeon).
	SecondsPerOp float64
	// METSlicing enables MET's (Kolda & Sun [20]) memory/time trade in
	// TuckerALS: when the full n-mode-product intermediate does not fit
	// the budget, it is computed one factor column at a time, shrinking
	// the working set by the core dimension at the cost of re-streaming
	// the tensor per column. The paper's comparison figures run with
	// this off (the Toolbox defaults they benchmarked), so the
	// experiment calibration is unchanged.
	METSlicing bool
}

func (c Config) withDefaults() Config {
	if c.MemoryBudget <= 0 {
		c.MemoryBudget = 32 << 30
	}
	if c.SecondsPerOp <= 0 {
		c.SecondsPerOp = 5e-9
	}
	return c
}

// Toolbox is a simulated single-machine tensor package.
type Toolbox struct {
	cfg Config
}

// New returns a Toolbox with the given configuration.
func New(cfg Config) *Toolbox {
	return &Toolbox{cfg: cfg.withDefaults()}
}

// Options mirrors the iteration controls of the distributed drivers.
type Options struct {
	MaxIters int
	Tol      float64
	Seed     int64
	TrackFit bool
}

func (o Options) withDefaults() Options {
	if o.MaxIters <= 0 {
		o.MaxIters = 20
	}
	if o.Tol <= 0 {
		o.Tol = 1e-4
	}
	return o
}

// ParafacResult is the outcome of a single-machine PARAFAC run.
type ParafacResult struct {
	Model          *tensor.Kruskal
	Iters          int
	Fits           []float64
	ModeledSeconds float64
	PeakBytes      int64
}

// TuckerResult is the outcome of a single-machine Tucker run.
type TuckerResult struct {
	Model          *tensor.TuckerModel
	Iters          int
	CoreNorms      []float64
	ModeledSeconds float64
	PeakBytes      int64
}

// charge tracks modeled time and peak memory, failing when the budget is
// exceeded.
type charge struct {
	cfg     Config
	seconds float64
	peak    int64
}

func (c *charge) ops(n int64) { c.seconds += float64(n) * c.cfg.SecondsPerOp }

func (c *charge) mem(step string, bytes int64) error {
	if bytes > c.peak {
		c.peak = bytes
	}
	if bytes > c.cfg.MemoryBudget {
		return &ErrOutOfMemory{Step: step, Needed: bytes, Budget: c.cfg.MemoryBudget}
	}
	return nil
}

// baseFootprint is the resident cost of the tensor and factors.
func baseFootprint(x *tensor.Tensor, cols []int) int64 {
	// COO storage: order×8 bytes of indices + 8 of value per nonzero.
	b := int64(x.NNZ()) * int64(x.Order()*8+8)
	for m, c := range cols {
		b += x.Dim(m) * int64(c) * 8
	}
	return b
}

// ParafacALS runs in-memory PARAFAC-ALS (Algorithm 1) with sparse
// MTTKRP, the Tensor Toolbox's approach [26].
func (tb *Toolbox) ParafacALS(x *tensor.Tensor, rank int, opt Options) (*ParafacResult, error) {
	if x.Order() != 3 {
		return nil, fmt.Errorf("baseline: ParafacALS requires a 3-way tensor")
	}
	if rank <= 0 {
		return nil, fmt.Errorf("baseline: rank must be positive")
	}
	opt = opt.withDefaults()
	ch := &charge{cfg: tb.cfg}
	cols := []int{rank, rank, rank}
	if err := ch.mem("load", baseFootprint(x, cols)); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	factors := make([]*matrix.Matrix, 3)
	for m := 0; m < 3; m++ {
		factors[m] = matrix.Random(int(x.Dim(m)), rank, rng)
	}
	lambda := make([]float64, rank)
	res := &ParafacResult{}
	prevFit := -1.0
	for it := 0; it < opt.MaxIters; it++ {
		for n := 0; n < 3; n++ {
			// MTTKRP working set: the result matrix plus the resident
			// footprint.
			need := baseFootprint(x, cols) + x.Dim(n)*int64(rank)*8
			if err := ch.mem("mttkrp", need); err != nil {
				return nil, err
			}
			m := tensor.MTTKRP(x, factors, n)
			ch.ops(int64(x.NNZ()) * int64(rank) * 3)
			m1, m2 := other(n)
			gram := matrix.Hadamard(matrix.Gram(factors[m1]), matrix.Gram(factors[m2]))
			ch.ops(int64(factors[m1].Rows+factors[m2].Rows) * int64(rank*rank))
			a := matrix.Mul(m, matrix.PseudoInverse(gram))
			ch.ops(x.Dim(n) * int64(rank*rank))
			norms := a.NormalizeColumns()
			for r, nv := range norms {
				if nv == 0 {
					for i := 0; i < a.Rows; i++ {
						a.Set(i, r, rng.Float64())
					}
					a.NormalizeColumns()
					nv = 1
				}
				lambda[r] = nv
			}
			factors[n] = a
		}
		res.Iters = it + 1
		if opt.TrackFit {
			model := &tensor.Kruskal{Lambda: lambda, Factors: factors}
			fit := model.Fit(x)
			ch.ops(int64(x.NNZ()) * int64(rank))
			res.Fits = append(res.Fits, fit)
			if d := fit - prevFit; d >= 0 && d < opt.Tol {
				break
			}
			prevFit = fit
		}
	}
	res.Model = &tensor.Kruskal{Lambda: lambda, Factors: factors}
	res.ModeledSeconds = ch.seconds
	res.PeakBytes = ch.peak
	return res, nil
}

// TuckerALS runs in-memory Tucker-ALS (Algorithm 2) in the style of MET
// [20]: n-mode products are computed sparsely, but the intermediate
// 𝒯 = 𝒳 ×ₐ Uᵀ (≈ nnz·Q nonzeros by Lemma 3) and the matricized 𝒴 must
// both fit in memory — the constraint that makes the Toolbox the first
// method to fall over as tensors grow.
func (tb *Toolbox) TuckerALS(x *tensor.Tensor, core [3]int, opt Options) (*TuckerResult, error) {
	if x.Order() != 3 {
		return nil, fmt.Errorf("baseline: TuckerALS requires a 3-way tensor")
	}
	for m, p := range core {
		if p <= 0 || int64(p) > x.Dim(m) {
			return nil, fmt.Errorf("baseline: invalid core dimension %d for mode %d", p, m)
		}
	}
	opt = opt.withDefaults()
	ch := &charge{cfg: tb.cfg}
	cols := core[:]
	if err := ch.mem("load", baseFootprint(x, cols)); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	factors := make([]*matrix.Matrix, 3)
	for m := 0; m < 3; m++ {
		q, _ := matrix.QR(matrix.Random(int(x.Dim(m)), core[m], rng))
		factors[m] = q
	}
	res := &TuckerResult{}
	prevNorm := 0.0
	var lastY *tensor.Tensor
	for it := 0; it < opt.MaxIters; it++ {
		for n := 0; n < 3; n++ {
			m1, m2 := other(n)
			// Memory: first TTM intermediate ≈ nnz·Q entries of 4
			// coordinates, second ≈ I_n·Q1·Q2 dense, plus residents.
			inter := int64(x.NNZ()) * int64(core[m1]) * 32
			dense := x.Dim(n) * int64(core[m1]*core[m2]) * 8
			full := baseFootprint(x, cols) + inter + dense
			var y *tensor.Tensor
			if full <= tb.cfg.MemoryBudget || !tb.cfg.METSlicing {
				if err := ch.mem("ttm", full); err != nil {
					return nil, err
				}
				t1 := tensor.ModeMatrixProduct(x, m1, factors[m1].T())
				ch.ops(int64(x.NNZ()) * int64(core[m1]))
				y = tensor.ModeMatrixProduct(t1, m2, factors[m2].T())
				ch.ops(int64(t1.NNZ()) * int64(core[m2]))
			} else {
				// MET slicing: one column of U_{m1} at a time; the
				// intermediate shrinks by core[m1], the tensor is
				// re-streamed per column.
				sliced := baseFootprint(x, cols) + inter/int64(core[m1]) + dense
				if err := ch.mem("ttm-met", sliced); err != nil {
					return nil, err
				}
				var err error
				y, err = metProduct(x, m1, m2, factors[m1], factors[m2], ch)
				if err != nil {
					return nil, err
				}
			}
			ym := tensor.Matricize(y, n)
			factors[n] = matrix.LeadingLeftSingularVectors(ym, core[n])
			ch.ops(int64(ym.Rows) * int64(ym.Cols) * int64(ym.Cols))
			if n == 2 {
				lastY = y
			}
		}
		// 𝒢 ← 𝒴 ×₃ Cᵀ from the final mode's intermediate.
		g := tensor.NewDense(int64(core[0]), int64(core[1]), int64(core[2]))
		cf := factors[2]
		for p := 0; p < lastY.NNZ(); p++ {
			idx := lastY.Index(p)
			v := lastY.Value(p)
			for r := 0; r < core[2]; r++ {
				cv := cf.At(int(idx[2]), r)
				if cv != 0 {
					g.Add(v*cv, idx[0], idx[1], int64(r))
				}
			}
		}
		ch.ops(int64(lastY.NNZ()) * int64(core[2]))
		norm := g.Norm()
		res.CoreNorms = append(res.CoreNorms, norm)
		res.Iters = it + 1
		res.Model = &tensor.TuckerModel{Core: g, Factors: append([]*matrix.Matrix(nil), factors...)}
		if it > 0 && norm-prevNorm < opt.Tol*max1(prevNorm) {
			break
		}
		prevNorm = norm
	}
	res.ModeledSeconds = ch.seconds
	res.PeakBytes = ch.peak
	return res, nil
}

func other(n int) (int, int) {
	switch n {
	case 0:
		return 1, 2
	case 1:
		return 0, 2
	default:
		return 0, 1
	}
}

func max1(v float64) float64 {
	if v < 1 {
		return 1
	}
	return v
}

// metProduct computes 𝒴 = 𝒳 ×_{m1} U1ᵀ ×_{m2} U2ᵀ one column of U1 at a
// time (MET's slicing), so only a 1/Q1 slice of the intermediate is live
// at once. Results are identical to the full-intermediate path; only the
// memory profile and the op accounting (the extra passes over 𝒳) differ.
func metProduct(x *tensor.Tensor, m1, m2 int, u1, u2 *matrix.Matrix, ch *charge) (*tensor.Tensor, error) {
	dims := x.Dims()
	dims[m1] = int64(u1.Cols)
	dims[m2] = int64(u2.Cols)
	out := tensor.New(dims...)
	// Contracting mode m1 drops it from the tensor; m2's index shifts
	// down when it followed m1.
	m2after := m2
	if m2 > m1 {
		m2after = m2 - 1
	}
	for q := 0; q < u1.Cols; q++ {
		slice := tensor.ModeVectorProduct(x, m1, u1.Col(q))
		ch.ops(int64(x.NNZ()))
		contracted := tensor.ModeMatrixProduct(slice, m2after, u2.T())
		ch.ops(int64(slice.NNZ()) * int64(u2.Cols))
		// Re-insert mode m1 with coordinate q.
		for p := 0; p < contracted.NNZ(); p++ {
			idx := contracted.Index(p)
			var full [3]int64
			w := 0
			for m := 0; m < 3; m++ {
				if m == m1 {
					full[m] = int64(q)
					continue
				}
				full[m] = idx[w]
				w++
			}
			out.Append(contracted.Value(p), full[0], full[1], full[2])
		}
	}
	out.Coalesce()
	return out, nil
}
