package matrix

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewShapeAndZero(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("New(3,4) = %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("entry %d not zero: %v", i, v)
		}
	}
}

func TestNewPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative shape")
		}
	}()
	New(-1, 2)
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows != 3 || m.Cols != 2 {
		t.Fatalf("shape %dx%d", m.Rows, m.Cols)
	}
	if m.At(2, 1) != 6 || m.At(0, 0) != 1 {
		t.Fatalf("wrong entries: %v", m.Data)
	}
}

func TestFromRowsEmpty(t *testing.T) {
	m := FromRows(nil)
	if m.Rows != 0 || m.Cols != 0 {
		t.Fatalf("empty FromRows shape %dx%d", m.Rows, m.Cols)
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestSetAtRowCol(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatal("Set/At mismatch")
	}
	r := m.Row(1)
	r[0] = 5 // Row aliases storage.
	if m.At(1, 0) != 5 {
		t.Fatal("Row does not alias storage")
	}
	c := m.Col(2)
	if c[0] != 0 || c[1] != 7 {
		t.Fatalf("Col(2) = %v", c)
	}
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("transpose shape %dx%d", tr.Rows, tr.Cols)
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("transpose mismatch at %d,%d", i, j)
			}
		}
	}
}

func TestAddSubScale(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	sum := a.Add(b)
	if sum.At(1, 1) != 12 {
		t.Fatalf("Add wrong: %v", sum)
	}
	diff := b.Sub(a)
	if diff.At(0, 0) != 4 {
		t.Fatalf("Sub wrong: %v", diff)
	}
	sc := a.Clone().Scale(2)
	if sc.At(1, 0) != 6 {
		t.Fatalf("Scale wrong: %v", sc)
	}
	// Original untouched by Clone+Scale.
	if a.At(1, 0) != 3 {
		t.Fatal("Clone did not deep-copy")
	}
}

func TestMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	p := Mul(a, b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if !p.Equal(want, 1e-12) {
		t.Fatalf("Mul = %v", p)
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := Random(4, 4, rng)
	if !Mul(a, Identity(4)).Equal(a, 1e-12) {
		t.Fatal("a·I != a")
	}
	if !Mul(Identity(4), a).Equal(a, 1e-12) {
		t.Fatal("I·a != a")
	}
}

func TestGramMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := Random(7, 3, rng)
	if !Gram(a).Equal(Mul(a.T(), a), 1e-10) {
		t.Fatal("Gram(a) != aᵀa")
	}
}

func TestHadamard(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{2, 0}, {1, -1}})
	h := Hadamard(a, b)
	want := FromRows([][]float64{{2, 0}, {3, -4}})
	if !h.Equal(want, 0) {
		t.Fatalf("Hadamard = %v", h)
	}
}

func TestKhatriRao(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}, {9, 10}})
	kr := KhatriRao(a, b)
	if kr.Rows != 6 || kr.Cols != 2 {
		t.Fatalf("shape %dx%d", kr.Rows, kr.Cols)
	}
	// Column r is a_r ⊗ b_r.
	if kr.At(0, 0) != 5 || kr.At(2, 0) != 9 || kr.At(3, 0) != 15 {
		t.Fatalf("KhatriRao values wrong: %v", kr.Data)
	}
	if kr.At(5, 1) != 4*10 {
		t.Fatalf("KhatriRao last entry = %v", kr.At(5, 1))
	}
}

func TestKroneckerAgainstKhatriRao(t *testing.T) {
	// Khatri-Rao columns must equal Kronecker of the individual columns.
	rng := rand.New(rand.NewSource(3))
	a := Random(3, 2, rng)
	b := Random(4, 2, rng)
	kr := KhatriRao(a, b)
	for r := 0; r < 2; r++ {
		ca := New(3, 1)
		cb := New(4, 1)
		for i := 0; i < 3; i++ {
			ca.Set(i, 0, a.At(i, r))
		}
		for i := 0; i < 4; i++ {
			cb.Set(i, 0, b.At(i, r))
		}
		kron := Kronecker(ca, cb)
		for i := 0; i < 12; i++ {
			if math.Abs(kron.At(i, 0)-kr.At(i, r)) > 1e-12 {
				t.Fatalf("column %d mismatch at %d", r, i)
			}
		}
	}
}

func TestKroneckerShapeAndValues(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := FromRows([][]float64{{0, 3}, {4, 0}})
	k := Kronecker(a, b)
	if k.Rows != 2 || k.Cols != 4 {
		t.Fatalf("shape %dx%d", k.Rows, k.Cols)
	}
	want := FromRows([][]float64{{0, 3, 0, 6}, {4, 0, 8, 0}})
	if !k.Equal(want, 0) {
		t.Fatalf("Kronecker = %v", k)
	}
}

func TestMulVecAndDot(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	y := MulVec(a, []float64{1, 0, -1})
	if y[0] != -2 || y[1] != -2 {
		t.Fatalf("MulVec = %v", y)
	}
	if Dot([]float64{1, 2}, []float64{3, 4}) != 11 {
		t.Fatal("Dot wrong")
	}
}

func TestNormalizeColumns(t *testing.T) {
	m := FromRows([][]float64{{3, 0}, {4, 0}})
	norms := m.NormalizeColumns()
	if math.Abs(norms[0]-5) > 1e-12 || norms[1] != 0 {
		t.Fatalf("norms = %v", norms)
	}
	if math.Abs(m.At(0, 0)-0.6) > 1e-12 || math.Abs(m.At(1, 0)-0.8) > 1e-12 {
		t.Fatalf("normalized col = %v %v", m.At(0, 0), m.At(1, 0))
	}
}

func TestScaleColumns(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	m.ScaleColumns([]float64{2, 10})
	want := FromRows([][]float64{{2, 20}, {6, 40}})
	if !m.Equal(want, 0) {
		t.Fatalf("ScaleColumns = %v", m)
	}
}

func TestQRReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, shape := range [][2]int{{5, 3}, {3, 3}, {3, 5}, {8, 1}} {
		a := Random(shape[0], shape[1], rng)
		q, r := QR(a)
		if !Mul(q, r).Equal(a, 1e-10) {
			t.Fatalf("QR does not reconstruct for %v", shape)
		}
		// Q has orthonormal columns.
		g := Gram(q)
		if !g.Equal(Identity(g.Rows), 1e-10) {
			t.Fatalf("QᵀQ != I for shape %v: %v", shape, g)
		}
	}
}

func TestJacobiEigenDiagonal(t *testing.T) {
	a := FromRows([][]float64{{2, 0}, {0, 5}})
	vals, vecs := JacobiEigen(a)
	if math.Abs(vals[0]-5) > 1e-12 || math.Abs(vals[1]-2) > 1e-12 {
		t.Fatalf("eigenvalues = %v", vals)
	}
	if math.Abs(math.Abs(vecs.At(1, 0))-1) > 1e-10 {
		t.Fatalf("eigenvector for λ=5 should be e2: %v", vecs)
	}
}

func TestJacobiEigenReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	b := Random(6, 6, rng)
	a := Mul(b, b.T()) // symmetric PSD
	vals, vecs := JacobiEigen(a)
	// Reconstruct V Λ Vᵀ.
	lam := New(6, 6)
	for i, v := range vals {
		lam.Set(i, i, v)
	}
	rec := Mul(Mul(vecs, lam), vecs.T())
	if !rec.Equal(a, 1e-8) {
		t.Fatal("VΛVᵀ != A")
	}
	// Eigenvalues sorted descending.
	for i := 1; i < len(vals); i++ {
		if vals[i] > vals[i-1]+1e-12 {
			t.Fatalf("eigenvalues not sorted: %v", vals)
		}
	}
}

func TestPseudoInverseOfInvertible(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	b := Random(4, 4, rng)
	a := Mul(b, b.T())
	for i := 0; i < 4; i++ {
		a.Set(i, i, a.At(i, i)+1) // well conditioned
	}
	pinv := PseudoInverse(a)
	if !Mul(a, pinv).Equal(Identity(4), 1e-8) {
		t.Fatal("a·a⁺ != I for invertible a")
	}
}

func TestPseudoInverseRankDeficient(t *testing.T) {
	// a = vvᵀ has rank 1; the Penrose conditions must still hold.
	v := FromRows([][]float64{{1}, {2}, {3}})
	a := Mul(v, v.T())
	p := PseudoInverse(a)
	// a p a == a
	if !Mul(Mul(a, p), a).Equal(a, 1e-8) {
		t.Fatal("a·a⁺·a != a")
	}
	// p a p == p
	if !Mul(Mul(p, a), p).Equal(p, 1e-8) {
		t.Fatal("a⁺·a·a⁺ != a⁺")
	}
}

func TestSVDThinReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := Random(9, 4, rng)
	u, s, v := SVDThin(a)
	sm := New(4, 4)
	for i, x := range s {
		sm.Set(i, i, x)
	}
	rec := Mul(Mul(u, sm), v.T())
	if !rec.Equal(a, 1e-8) {
		t.Fatal("UΣVᵀ != A")
	}
	// Singular values nonnegative, descending.
	for i := 1; i < len(s); i++ {
		if s[i] > s[i-1]+1e-12 || s[i] < 0 {
			t.Fatalf("bad singular values %v", s)
		}
	}
}

func TestLeadingLeftSingularVectorsOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := Random(10, 6, rng)
	u := LeadingLeftSingularVectors(a, 3)
	if u.Rows != 10 || u.Cols != 3 {
		t.Fatalf("shape %dx%d", u.Rows, u.Cols)
	}
	if !Gram(u).Equal(Identity(3), 1e-9) {
		t.Fatal("UᵀU != I")
	}
}

func TestLeadingLeftSingularVectorsRankDeficient(t *testing.T) {
	// Rank-1 matrix but ask for 3 vectors: completion must keep the frame
	// orthonormal.
	v := FromRows([][]float64{{1}, {1}, {1}, {1}})
	a := Mul(v, FromRows([][]float64{{1, 2, 3}}))
	u := LeadingLeftSingularVectors(a, 3)
	if !Gram(u).Equal(Identity(3), 1e-9) {
		t.Fatal("completed frame not orthonormal")
	}
}

func TestSolve(t *testing.T) {
	a := FromRows([][]float64{{2, 1}, {1, 3}})
	x, err := Solve(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-10 || math.Abs(x[1]-3) > 1e-10 {
		t.Fatalf("Solve = %v", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(a, []float64{1, 2}); err != ErrSingular {
		t.Fatalf("want ErrSingular, got %v", err)
	}
}

func TestSolveWithPivoting(t *testing.T) {
	// Leading zero forces a row swap.
	a := FromRows([][]float64{{0, 1}, {1, 0}})
	x, err := Solve(a, []float64{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 7 || x[1] != 3 {
		t.Fatalf("Solve = %v", x)
	}
}

func TestNormAndMaxAbs(t *testing.T) {
	m := FromRows([][]float64{{3, -4}})
	if math.Abs(m.Norm()-5) > 1e-12 {
		t.Fatalf("Norm = %v", m.Norm())
	}
	if m.MaxAbs() != 4 {
		t.Fatalf("MaxAbs = %v", m.MaxAbs())
	}
}

func TestStringElides(t *testing.T) {
	m := New(20, 20)
	s := m.String()
	if len(s) == 0 || s[0] != 'M' {
		t.Fatalf("String = %q", s)
	}
}

func TestMulBTIntoMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// Spread sizes across the tile boundary (tile = 8 rows of b).
	for _, dims := range [][3]int{{1, 1, 1}, {3, 7, 4}, {8, 8, 8}, {5, 17, 9}, {2, 33, 1}} {
		m, n, r := dims[0], dims[1], dims[2]
		a := Random(m, r, rng)
		b := Random(n, r, rng)
		dst := New(m, n)
		MulBTInto(dst, a, b)
		want := Mul(a, b.T())
		for i := range dst.Data {
			if math.Float64bits(dst.Data[i]) != math.Float64bits(want.Data[i]) {
				t.Fatalf("%v: element %d: %v != %v", dims, i, dst.Data[i], want.Data[i])
			}
		}
	}
}

func TestMulBTIntoPanicsOnShape(t *testing.T) {
	for _, tc := range []struct {
		name      string
		a, b, dst *Matrix
	}{
		{"inner mismatch", New(2, 3), New(4, 2), New(2, 4)},
		{"dst shape", New(2, 3), New(4, 3), New(2, 3)},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", tc.name)
				}
			}()
			MulBTInto(tc.dst, tc.a, tc.b)
		}()
	}
}
