package matrix

import "fmt"

// Mul returns the standard matrix product a·b.
// It panics if a.Cols != b.Rows.
func Mul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("matrix: Mul shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// Gram returns AᵀA, the Gram matrix of a's columns. For an I×R input the
// result is R×R; this is the small matrix PARAFAC-ALS inverts each sweep.
func Gram(a *Matrix) *Matrix {
	out := New(a.Cols, a.Cols)
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		for p, vp := range row {
			if vp == 0 {
				continue
			}
			orow := out.Row(p)
			for q, vq := range row {
				orow[q] += vp * vq
			}
		}
	}
	return out
}

// Hadamard returns the element-wise product a∗b. It panics on shape
// mismatch.
func Hadamard(a, b *Matrix) *Matrix {
	a.mustSameShape(b, "Hadamard")
	out := New(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] * b.Data[i]
	}
	return out
}

// KhatriRao returns the column-wise Kronecker (Khatri-Rao) product a⊙b.
// Inputs must have the same number of columns R; the result is
// (a.Rows·b.Rows)×R with column r equal to a_r ⊗ b_r.
func KhatriRao(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("matrix: KhatriRao column mismatch %d vs %d", a.Cols, b.Cols))
	}
	out := New(a.Rows*b.Rows, a.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			orow := out.Row(i*b.Rows + j)
			for r := range orow {
				orow[r] = arow[r] * brow[r]
			}
		}
	}
	return out
}

// Kronecker returns the Kronecker product a⊗b of size
// (a.Rows·b.Rows)×(a.Cols·b.Cols).
func Kronecker(a, b *Matrix) *Matrix {
	out := New(a.Rows*b.Rows, a.Cols*b.Cols)
	for ia := 0; ia < a.Rows; ia++ {
		for ja := 0; ja < a.Cols; ja++ {
			av := a.At(ia, ja)
			if av == 0 {
				continue
			}
			for ib := 0; ib < b.Rows; ib++ {
				dst := out.Row(ia*b.Rows + ib)
				src := b.Row(ib)
				off := ja * b.Cols
				for jb, bv := range src {
					dst[off+jb] += av * bv
				}
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product a·x.
// It panics if len(x) != a.Cols.
func MulVec(a *Matrix, x []float64) []float64 {
	if len(x) != a.Cols {
		panic(fmt.Sprintf("matrix: MulVec shape mismatch %dx%d · %d", a.Rows, a.Cols, len(x)))
	}
	out := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// MulBTInto computes dst = a·bᵀ into a preshaped dst (a is M×R, b is
// N×R, dst must be M×N). It is the serving layer's batched scoring
// kernel: a holds a batch of query vectors, b a shard of the object
// factor, and dst(i,j) is query i's score for object j. The loop is
// tiled over b's rows so one tile of object rows stays cache-resident
// across the whole query batch, but each dst element is still a single
// dot product accumulated in ascending r — tiling and sharding change
// memory traffic, never the floating-point result (DESIGN.md §3h).
func MulBTInto(dst, a, b *Matrix) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("matrix: MulBTInto inner mismatch %dx%d · (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("matrix: MulBTInto dst is %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Rows))
	}
	const tile = 8
	for j0 := 0; j0 < b.Rows; j0 += tile {
		j1 := min(j0+tile, b.Rows)
		for i := 0; i < a.Rows; i++ {
			arow := a.Row(i)
			drow := dst.Row(i)
			for j := j0; j < j1; j++ {
				brow := b.Row(j)
				var s float64
				for r, av := range arow {
					s += av * brow[r]
				}
				drow[j] = s
			}
		}
	}
}

// Dot returns the inner product of two equal-length vectors.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("matrix: Dot length mismatch %d vs %d", len(x), len(y)))
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}
