package matrix

import (
	"math"
	"sort"
)

// QR computes the thin Householder QR factorization a = q·r where q is
// a.Rows×k with orthonormal columns, r is k×a.Cols upper triangular, and
// k = min(a.Rows, a.Cols).
func QR(a *Matrix) (q, r *Matrix) {
	m, n := a.Rows, a.Cols
	k := m
	if n < k {
		k = n
	}
	// Work on a copy; accumulate the Householder vectors in-place below
	// the diagonal, as in LAPACK's geqrf.
	w := a.Clone()
	tau := make([]float64, k)
	for j := 0; j < k; j++ {
		// Compute the Householder reflector for column j.
		var normx float64
		for i := j; i < m; i++ {
			v := w.At(i, j)
			normx += v * v
		}
		normx = math.Sqrt(normx)
		if normx == 0 {
			tau[j] = 0
			continue
		}
		alpha := w.At(j, j)
		beta := -math.Copysign(normx, alpha)
		tau[j] = (beta - alpha) / beta
		scale := 1 / (alpha - beta)
		for i := j + 1; i < m; i++ {
			w.Set(i, j, w.At(i, j)*scale)
		}
		w.Set(j, j, beta)
		// Apply the reflector to the trailing columns.
		for c := j + 1; c < n; c++ {
			s := w.At(j, c)
			for i := j + 1; i < m; i++ {
				s += w.At(i, j) * w.At(i, c)
			}
			s *= tau[j]
			w.Set(j, c, w.At(j, c)-s)
			for i := j + 1; i < m; i++ {
				w.Set(i, c, w.At(i, c)-s*w.At(i, j))
			}
		}
	}
	r = New(k, n)
	for i := 0; i < k; i++ {
		for j := i; j < n; j++ {
			r.Set(i, j, w.At(i, j))
		}
	}
	// Form thin Q by applying the reflectors to the first k columns of I.
	q = New(m, k)
	for i := 0; i < k; i++ {
		q.Set(i, i, 1)
	}
	for j := k - 1; j >= 0; j-- {
		if tau[j] == 0 {
			continue
		}
		for c := 0; c < k; c++ {
			s := q.At(j, c)
			for i := j + 1; i < m; i++ {
				s += w.At(i, j) * q.At(i, c)
			}
			s *= tau[j]
			q.Set(j, c, q.At(j, c)-s)
			for i := j + 1; i < m; i++ {
				q.Set(i, c, q.At(i, c)-s*w.At(i, j))
			}
		}
	}
	return q, r
}

// JacobiEigen computes the eigendecomposition of a symmetric matrix using
// the cyclic Jacobi method. It returns the eigenvalues in descending order
// and a matrix whose columns are the corresponding orthonormal
// eigenvectors. The input must be square and symmetric; only the values on
// and above the diagonal are read.
func JacobiEigen(a *Matrix) (vals []float64, vecs *Matrix) {
	n := a.Rows
	if a.Cols != n {
		panic("matrix: JacobiEigen requires a square matrix")
	}
	w := a.Clone()
	// Symmetrize defensively so tiny asymmetries from accumulated
	// floating point error do not break convergence.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			s := (w.At(i, j) + w.At(j, i)) / 2
			w.Set(i, j, s)
			w.Set(j, i, s)
		}
	}
	v := Identity(n)
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w.At(i, j) * w.At(i, j)
			}
		}
		if off < 1e-28*float64(n*n) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if apq == 0 {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				// Apply the rotation G(p,q,θ) on both sides of w
				// and accumulate it into v.
				for k := 0; k < n; k++ {
					akp, akq := w.At(k, p), w.At(k, q)
					w.Set(k, p, c*akp-s*akq)
					w.Set(k, q, s*akp+c*akq)
				}
				for k := 0; k < n; k++ {
					apk, aqk := w.At(p, k), w.At(q, k)
					w.Set(p, k, c*apk-s*aqk)
					w.Set(q, k, s*apk+c*aqk)
				}
				for k := 0; k < n; k++ {
					vkp, vkq := v.At(k, p), v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}
	vals = make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = w.At(i, i)
	}
	// Sort eigenpairs by descending eigenvalue.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool { return vals[order[x]] > vals[order[y]] })
	sortedVals := make([]float64, n)
	sortedVecs := New(n, n)
	for c, idx := range order {
		sortedVals[c] = vals[idx]
		for r := 0; r < n; r++ {
			sortedVecs.Set(r, c, v.At(r, idx))
		}
	}
	return sortedVals, sortedVecs
}

// PseudoInverse returns the Moore-Penrose pseudo-inverse of a symmetric
// positive semi-definite matrix (such as the Gram/Hadamard products that
// PARAFAC-ALS inverts, e.g. CᵀC ∗ BᵀB in Algorithm 1). Eigenvalues below
// a relative tolerance are treated as zero.
func PseudoInverse(a *Matrix) *Matrix {
	vals, vecs := JacobiEigen(a)
	n := a.Rows
	tol := 1e-12
	if len(vals) > 0 && vals[0] > 0 {
		tol = vals[0] * 1e-12 * float64(n)
	}
	out := New(n, n)
	for k, lam := range vals {
		if lam <= tol {
			continue
		}
		inv := 1 / lam
		for i := 0; i < n; i++ {
			vik := vecs.At(i, k)
			if vik == 0 {
				continue
			}
			row := out.Row(i)
			w := inv * vik
			for j := 0; j < n; j++ {
				row[j] += w * vecs.At(j, k)
			}
		}
	}
	return out
}

// SVDThin computes the thin singular value decomposition a = u·diag(s)·vᵀ
// via the eigendecomposition of the small Gram matrix aᵀa. It is intended
// for tall-skinny matrices where a.Cols is small (the shape of every
// matricized intermediate tensor in Tucker-ALS: I×QR with QR ≤ 80²).
// u is a.Rows×k, s has length k, v is a.Cols×k where k = a.Cols.
func SVDThin(a *Matrix) (u *Matrix, s []float64, v *Matrix) {
	g := Gram(a)
	vals, vecs := JacobiEigen(g)
	k := a.Cols
	s = make([]float64, k)
	for i, lam := range vals {
		if lam > 0 {
			s[i] = math.Sqrt(lam)
		}
	}
	v = vecs
	u = Mul(a, vecs) // columns are a·v_i = σ_i·u_i
	for j := 0; j < k; j++ {
		if s[j] > 1e-300 {
			inv := 1 / s[j]
			for i := 0; i < u.Rows; i++ {
				u.Data[i*u.Cols+j] *= inv
			}
		}
	}
	return u, s, v
}

// LeadingLeftSingularVectors returns the p leading left singular vectors
// of a as the columns of an a.Rows×p matrix with orthonormal columns.
// This is the factor update step in Tucker-ALS (Algorithm 2 lines 4/6/8).
//
// If a has rank below p, the remaining columns are completed with an
// arbitrary orthonormal basis of the complement so the returned factor is
// always a valid orthonormal frame.
func LeadingLeftSingularVectors(a *Matrix, p int) *Matrix {
	if p > a.Rows {
		p = a.Rows
	}
	u, s, _ := SVDThin(a)
	out := New(a.Rows, p)
	tol := 0.0
	if len(s) > 0 {
		tol = s[0] * 1e-10
	}
	have := 0
	for j := 0; j < u.Cols && have < p; j++ {
		if s[j] <= tol {
			break
		}
		for i := 0; i < a.Rows; i++ {
			out.Set(i, have, u.At(i, j))
		}
		have++
	}
	completeOrthonormal(out, have)
	return out
}

// completeOrthonormal fills columns [have, out.Cols) of out with unit
// vectors orthogonal to the existing columns using Gram-Schmidt against
// the canonical basis.
func completeOrthonormal(out *Matrix, have int) {
	n := out.Rows
	next := 0
	for c := have; c < out.Cols; c++ {
		for ; next <= n; next++ {
			// Candidate: canonical basis vector e_next.
			v := make([]float64, n)
			if next < n {
				v[next] = 1
			} else {
				// Degenerate fallback; cannot happen when p <= n.
				v[0] = 1
			}
			// Orthogonalize against all previous columns (twice for
			// numerical safety).
			for pass := 0; pass < 2; pass++ {
				for k := 0; k < c; k++ {
					var dot float64
					for i := 0; i < n; i++ {
						dot += v[i] * out.At(i, k)
					}
					for i := 0; i < n; i++ {
						v[i] -= dot * out.At(i, k)
					}
				}
			}
			var norm float64
			for _, x := range v {
				norm += x * x
			}
			norm = math.Sqrt(norm)
			if norm > 1e-8 {
				inv := 1 / norm
				for i := 0; i < n; i++ {
					out.Set(i, c, v[i]*inv)
				}
				next++
				break
			}
		}
	}
}

// Solve solves the linear system a·x = b for square a using Gaussian
// elimination with partial pivoting. It returns ErrSingular when a is
// singular to working precision.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	n := a.Rows
	if a.Cols != n || len(b) != n {
		panic("matrix: Solve requires square a and matching b")
	}
	w := a.Clone()
	x := make([]float64, n)
	copy(x, b)
	for col := 0; col < n; col++ {
		// Partial pivot.
		piv := col
		mx := math.Abs(w.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(w.At(r, col)); v > mx {
				mx, piv = v, r
			}
		}
		if mx < 1e-300 {
			return nil, ErrSingular
		}
		if piv != col {
			for c := 0; c < n; c++ {
				w.Data[col*n+c], w.Data[piv*n+c] = w.Data[piv*n+c], w.Data[col*n+c]
			}
			x[col], x[piv] = x[piv], x[col]
		}
		inv := 1 / w.At(col, col)
		for r := col + 1; r < n; r++ {
			f := w.At(r, col) * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				w.Set(r, c, w.At(r, c)-f*w.At(col, c))
			}
			x[r] -= f * x[col]
		}
	}
	for r := n - 1; r >= 0; r-- {
		s := x[r]
		for c := r + 1; c < n; c++ {
			s -= w.At(r, c) * x[c]
		}
		x[r] = s / w.At(r, r)
	}
	return x, nil
}
