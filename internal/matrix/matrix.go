// Package matrix provides the dense linear algebra needed by the HaTen2
// tensor decomposition algorithms: row-major matrices with the standard,
// Hadamard, Khatri-Rao and Kronecker products, Householder QR, symmetric
// Jacobi eigendecomposition, Moore-Penrose pseudo-inverse, and extraction
// of leading left singular vectors.
//
// All matrices are small in HaTen2 (factor matrices are I×R with R ≤ ~100,
// and the matrices that get decomposed are Gram matrices of size at most
// (QR)×(QR)), so the package favours clarity and numerical robustness over
// blocked performance tricks.
package matrix

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// Matrix is a dense, row-major matrix of float64 values.
// The zero value is an empty 0×0 matrix ready to use.
type Matrix struct {
	Rows, Cols int
	// Data holds the entries in row-major order: element (i,j) is
	// Data[i*Cols+j]. len(Data) == Rows*Cols.
	Data []float64
}

// New returns a zero-initialized matrix with the given shape.
// It panics if rows or cols is negative.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("matrix: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows.
// It panics if the rows are ragged.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	cols := len(rows[0])
	m := New(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic(fmt.Sprintf("matrix: ragged row %d: got %d values, want %d", i, len(r), cols))
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// Random returns a rows×cols matrix with entries drawn uniformly from
// [0, 1) using rng. A seeded rng makes factor initialization reproducible.
func Random(rows, cols int, rng *rand.Rand) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.Float64()
	}
	return m
}

// At returns element (i, j). Bounds are checked by the slice access.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
// Mutating the returned slice mutates the matrix.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.Data[i*m.Cols+j]
	}
	return out
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Equal reports whether m and o have the same shape and entries
// within the absolute tolerance tol.
func (m *Matrix) Equal(o *Matrix, tol float64) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	for i := range m.Data {
		if math.Abs(m.Data[i]-o.Data[i]) > tol {
			return false
		}
	}
	return true
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	t := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.Data[j*t.Cols+i] = v
		}
	}
	return t
}

// Scale multiplies every entry by s in place and returns m.
func (m *Matrix) Scale(s float64) *Matrix {
	for i := range m.Data {
		m.Data[i] *= s
	}
	return m
}

// Add returns m + o. It panics on shape mismatch.
func (m *Matrix) Add(o *Matrix) *Matrix {
	m.mustSameShape(o, "Add")
	out := New(m.Rows, m.Cols)
	for i := range m.Data {
		out.Data[i] = m.Data[i] + o.Data[i]
	}
	return out
}

// Sub returns m - o. It panics on shape mismatch.
func (m *Matrix) Sub(o *Matrix) *Matrix {
	m.mustSameShape(o, "Sub")
	out := New(m.Rows, m.Cols)
	for i := range m.Data {
		out.Data[i] = m.Data[i] - o.Data[i]
	}
	return out
}

// Norm returns the Frobenius norm of m.
func (m *Matrix) Norm() float64 {
	var ss float64
	for _, v := range m.Data {
		ss += v * v
	}
	return math.Sqrt(ss)
}

// MaxAbs returns the largest absolute entry of m (0 for an empty matrix).
func (m *Matrix) MaxAbs() float64 {
	var mx float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// String renders the matrix for debugging; large matrices are elided.
func (m *Matrix) String() string {
	const maxShow = 8
	var b strings.Builder
	fmt.Fprintf(&b, "Matrix(%dx%d)[", m.Rows, m.Cols)
	for i := 0; i < m.Rows && i < maxShow; i++ {
		if i > 0 {
			b.WriteString("; ")
		}
		for j := 0; j < m.Cols && j < maxShow; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%.4g", m.At(i, j))
		}
		if m.Cols > maxShow {
			b.WriteString(" …")
		}
	}
	if m.Rows > maxShow {
		b.WriteString("; …")
	}
	b.WriteByte(']')
	return b.String()
}

func (m *Matrix) mustSameShape(o *Matrix, op string) {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		panic(fmt.Sprintf("matrix: %s shape mismatch %dx%d vs %dx%d", op, m.Rows, m.Cols, o.Rows, o.Cols))
	}
}

// ErrSingular is returned by Solve when the system matrix is singular to
// working precision.
var ErrSingular = errors.New("matrix: singular system")

// NormalizeColumns scales each column of m to unit Euclidean norm in place
// and returns the original column norms. Zero columns are left untouched
// and report norm 0; callers treat a zero norm as weight 0 for that
// component, matching the λ bookkeeping in PARAFAC-ALS (Algorithm 1).
func (m *Matrix) NormalizeColumns() []float64 {
	norms := make([]float64, m.Cols)
	for j := 0; j < m.Cols; j++ {
		var ss float64
		for i := 0; i < m.Rows; i++ {
			v := m.Data[i*m.Cols+j]
			ss += v * v
		}
		n := math.Sqrt(ss)
		norms[j] = n
		if n == 0 {
			continue
		}
		inv := 1 / n
		for i := 0; i < m.Rows; i++ {
			m.Data[i*m.Cols+j] *= inv
		}
	}
	return norms
}

// ScaleColumns multiplies column j of m by s[j] in place.
// It panics if len(s) != m.Cols.
func (m *Matrix) ScaleColumns(s []float64) {
	if len(s) != m.Cols {
		panic(fmt.Sprintf("matrix: ScaleColumns got %d scales for %d columns", len(s), m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] *= s[j]
		}
	}
}
