package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomSmall draws a matrix with bounded shape and entries so that
// property tests stay numerically well-behaved.
func randomSmall(rng *rand.Rand, maxDim int) *Matrix {
	r := 1 + rng.Intn(maxDim)
	c := 1 + rng.Intn(maxDim)
	m := New(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func quickCfg(seed int64) *quick.Config {
	return &quick.Config{
		MaxCount: 50,
		Rand:     rand.New(rand.NewSource(seed)),
	}
}

func TestQuickTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomSmall(rng, 6)
		return m.T().T().Equal(m, 0)
	}
	if err := quick.Check(f, quickCfg(11)); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMulAssociative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		a, b, c := New(n, n), New(n, n), New(n, n)
		for _, m := range []*Matrix{a, b, c} {
			for i := range m.Data {
				m.Data[i] = rng.NormFloat64()
			}
		}
		l := Mul(Mul(a, b), c)
		r := Mul(a, Mul(b, c))
		return l.Equal(r, 1e-8*math.Max(1, l.MaxAbs()))
	}
	if err := quick.Check(f, quickCfg(12)); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMulTransposeRule(t *testing.T) {
	// (ab)ᵀ == bᵀaᵀ
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomSmall(rng, 6)
		b := New(a.Cols, 1+rng.Intn(6))
		for i := range b.Data {
			b.Data[i] = rng.NormFloat64()
		}
		return Mul(a, b).T().Equal(Mul(b.T(), a.T()), 1e-9)
	}
	if err := quick.Check(f, quickCfg(13)); err != nil {
		t.Fatal(err)
	}
}

func TestQuickKhatriRaoGramIdentity(t *testing.T) {
	// (A⊙B)ᵀ(A⊙B) == AᵀA ∗ BᵀB — the identity PARAFAC-ALS exploits to
	// avoid forming the Khatri-Rao product explicitly.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 1 + rng.Intn(4)
		a := New(1+rng.Intn(6), r)
		b := New(1+rng.Intn(6), r)
		for _, m := range []*Matrix{a, b} {
			for i := range m.Data {
				m.Data[i] = rng.NormFloat64()
			}
		}
		left := Gram(KhatriRao(a, b))
		right := Hadamard(Gram(a), Gram(b))
		return left.Equal(right, 1e-8)
	}
	if err := quick.Check(f, quickCfg(14)); err != nil {
		t.Fatal(err)
	}
}

func TestQuickQRProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomSmall(rng, 7)
		q, r := QR(a)
		if !Mul(q, r).Equal(a, 1e-8) {
			return false
		}
		return Gram(q).Equal(Identity(q.Cols), 1e-8)
	}
	if err := quick.Check(f, quickCfg(15)); err != nil {
		t.Fatal(err)
	}
}

func TestQuickEigenTrace(t *testing.T) {
	// Sum of eigenvalues equals the trace for symmetric matrices.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		b := New(n, n)
		for i := range b.Data {
			b.Data[i] = rng.NormFloat64()
		}
		a := Mul(b, b.T())
		vals, _ := JacobiEigen(a)
		var sum, trace float64
		for i := 0; i < n; i++ {
			trace += a.At(i, i)
			sum += vals[i]
		}
		return math.Abs(sum-trace) < 1e-8*math.Max(1, math.Abs(trace))
	}
	if err := quick.Check(f, quickCfg(16)); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPseudoInversePenrose(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		b := New(n, 1+rng.Intn(n))
		for i := range b.Data {
			b.Data[i] = rng.NormFloat64()
		}
		a := Mul(b, b.T()) // possibly rank deficient PSD
		p := PseudoInverse(a)
		scale := math.Max(1, a.MaxAbs())
		return Mul(Mul(a, p), a).Equal(a, 1e-7*scale) &&
			Mul(Mul(p, a), p).Equal(p, 1e-7*math.Max(1, p.MaxAbs()))
	}
	if err := quick.Check(f, quickCfg(17)); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSolveRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		b := New(n, n)
		for i := range b.Data {
			b.Data[i] = rng.NormFloat64()
		}
		a := Mul(b, b.T())
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+1) // ensure invertible
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		rhs := MulVec(a, x)
		got, err := Solve(a, rhs)
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(got[i]-x[i]) > 1e-7*math.Max(1, math.Abs(x[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg(18)); err != nil {
		t.Fatal(err)
	}
}
