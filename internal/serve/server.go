package serve

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/haten2/haten2/internal/matrix"
)

// Config sizes the serving engine. The zero value of any field selects
// a sensible default; see New.
type Config struct {
	// Shards is the number of row-wise shards of the object factor,
	// each owned by one persistent worker goroutine.
	Shards int
	// CacheSize is the per-stripe LRU capacity (stripe count equals
	// Shards). Zero disables caching entirely.
	CacheSize int
	// MaxBatch caps how many concurrent queries one dispatch merges
	// into a single blocked matrix kernel call.
	MaxBatch int
	// QueueDepth is the request channel capacity between callers and
	// the dispatcher.
	QueueDepth int
	// NoCache disables the result cache (CacheSize is ignored). The
	// load benchmark uses it to separate batching wins from cache wins.
	NoCache bool
}

// inFlightBatches is the dispatch pipeline depth: one batch being
// scored by the workers while the dispatcher assembles the next.
const inFlightBatches = 2

// request is one query traveling through the dispatcher. Requests are
// pooled; results is a reusable buffer the completing worker fills.
type request struct {
	subject   int64
	predicate int64
	k         int
	results   []Result
	err       error
	done      chan struct{}
}

// batch is one dispatch unit: up to MaxBatch requests scored together.
// All of its buffers are reused across dispatches, so the steady state
// allocates nothing.
type batch struct {
	reqs []*request
	// q is the B×R query block; row i is request i's query vector.
	q matrix.Matrix
	// partials[i*shards+sh] is request i's top-k within shard sh.
	partials [][]Result
	// mergeParts/heads/pos are MergeTopK scratch.
	mergeParts [][]Result
	heads, pos []int
	// remaining counts workers still scoring this batch; the worker
	// that decrements it to zero merges and completes the requests.
	remaining int32
}

// shardWorker owns one contiguous row range [lo, hi) of the object
// factor and a reusable score panel for it.
type shardWorker struct {
	id     int
	lo, hi int
	rows   matrix.Matrix // row-slice view of the object factor
	scores matrix.Matrix // B×(hi-lo) panel, data reused
	in     chan *batch
	srv    *Server
}

// Server answers top-k factor queries at high throughput: queries are
// batched by a dispatcher, scored shard-parallel with a blocked
// matrix kernel, merged on a k-way heap, and cached in striped LRUs
// with single-flight coalescing (DESIGN.md §3h). All rankings are
// bit-identical to internal/baseline's single-threaded scorer
// regardless of Shards, MaxBatch, or GOMAXPROCS.
type Server struct {
	model   *Model
	cfg     Config
	stripes []*stripe
	workers []*shardWorker

	queue       chan *request
	freeBatches chan *batch
	wg          sync.WaitGroup

	reqPool   sync.Pool
	scorePool sync.Pool // *[]float64 scratch for the unsharded paths

	queries     atomic.Uint64
	batches     atomic.Uint64
	batchedReqs atomic.Uint64
}

// New builds a Server over the model and starts its dispatcher and
// shard workers. The caller must Close it to join them. Zero config
// fields default to Shards 4 (clamped to the object count), CacheSize
// 1024 per stripe, MaxBatch 32, QueueDepth 4×MaxBatch.
func New(model *Model, cfg Config) (*Server, error) {
	if model == nil {
		return nil, fmt.Errorf("serve: nil model")
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 4
	}
	if cfg.Shards > model.Objects() {
		cfg.Shards = model.Objects()
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1 // empty object mode still gets one worker
	}
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 1024
	}
	if cfg.NoCache {
		cfg.CacheSize = 0
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 32
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.MaxBatch
	}

	s := &Server{
		model:       model,
		cfg:         cfg,
		stripes:     make([]*stripe, cfg.Shards),
		workers:     make([]*shardWorker, cfg.Shards),
		queue:       make(chan *request, cfg.QueueDepth),
		freeBatches: make(chan *batch, inFlightBatches),
	}
	for i := range s.stripes {
		s.stripes[i] = &stripe{
			lru:     newLRU(cfg.CacheSize),
			flights: make(map[qkey]*flight),
		}
	}
	s.reqPool.New = func() any {
		return &request{done: make(chan struct{}, 1)}
	}
	s.scorePool.New = func() any {
		buf := make([]float64, 0)
		return &buf
	}

	obj := model.Factor(1)
	r := model.QueryDim()
	for i := 0; i < cfg.Shards; i++ {
		lo := i * obj.Rows / cfg.Shards
		hi := (i + 1) * obj.Rows / cfg.Shards
		w := &shardWorker{
			id: i,
			lo: lo,
			hi: hi,
			rows: matrix.Matrix{
				Rows: hi - lo,
				Cols: r,
				Data: obj.Data[lo*r : hi*r],
			},
			in:  make(chan *batch, inFlightBatches),
			srv: s,
		}
		s.workers[i] = w
	}
	for b := 0; b < inFlightBatches; b++ {
		s.freeBatches <- &batch{
			partials:   make([][]Result, cfg.MaxBatch*cfg.Shards),
			mergeParts: make([][]Result, 0, cfg.Shards),
			q:          matrix.Matrix{Cols: r},
		}
	}

	s.wg.Add(1 + len(s.workers))
	//haten2:allow goleak dispatcher is a persistent daemon; Close closes s.queue and s.wg.Wait joins it
	go s.dispatch()
	for _, w := range s.workers {
		//haten2:allow goleak shard workers are persistent daemons; the dispatcher closes their channels on shutdown and Close's s.wg.Wait joins them
		go w.run()
	}
	return s, nil
}

// Close shuts the dispatcher and workers down and joins them. Queries
// must have drained before Close; querying a closed server panics.
func (s *Server) Close() {
	close(s.queue)
	s.wg.Wait()
}

// dispatch is the batching loop: it blocks for the first request, then
// drains whatever else is already queued (up to MaxBatch) without
// waiting — adaptive batching with no timers, so the serving layer
// stays wall-clock-free. Under load batches fill up; an idle server
// degenerates to batch size 1 with no added latency.
func (s *Server) dispatch() {
	defer s.wg.Done()
	for {
		req, ok := <-s.queue
		if !ok {
			for _, w := range s.workers {
				close(w.in)
			}
			return
		}
		b := <-s.freeBatches
		b.reqs = append(b.reqs[:0], req)
	fill:
		for len(b.reqs) < s.cfg.MaxBatch {
			select {
			case more, open := <-s.queue:
				if !open {
					// Dispatch what we have; the outer receive
					// observes the close on the next iteration.
					break fill
				}
				b.reqs = append(b.reqs, more)
			default:
				break fill
			}
		}
		s.batches.Add(1)
		s.batchedReqs.Add(uint64(len(b.reqs)))

		// Build the query block: row i is request i's query vector.
		n := len(b.reqs) * b.q.Cols
		if cap(b.q.Data) < n {
			b.q.Data = make([]float64, n)
		}
		b.q.Data = b.q.Data[:n]
		b.q.Rows = len(b.reqs)
		for i, r := range b.reqs {
			s.model.queryVecInto(b.q.Row(i), r.subject, r.predicate)
		}

		atomic.StoreInt32(&b.remaining, int32(len(s.workers)))
		for _, w := range s.workers {
			w.in <- b
		}
	}
}

// run is a shard worker's loop: score every request in the batch over
// this shard's rows with one blocked kernel call, select the per-shard
// top-k, and — if this worker is the last to finish the batch — merge
// the shards and complete the requests.
func (w *shardWorker) run() {
	defer w.srv.wg.Done()
	for b := range w.in {
		nb := len(b.reqs)
		n := nb * w.rows.Rows
		if cap(w.scores.Data) < n {
			w.scores.Data = make([]float64, n)
		}
		w.scores.Data = w.scores.Data[:n]
		w.scores.Rows = nb
		w.scores.Cols = w.rows.Rows
		matrix.MulBTInto(&w.scores, &b.q, &w.rows)

		shards := len(w.srv.workers)
		for i, req := range b.reqs {
			slot := i*shards + w.id
			b.partials[slot] = SelectTopK(b.partials[slot][:0], w.scores.Row(i), int64(w.lo), req.k)
		}
		if atomic.AddInt32(&b.remaining, -1) == 0 {
			w.srv.complete(b)
		}
	}
}

// complete merges each request's per-shard partials into its final
// ranking and wakes the caller. Runs on whichever worker finished the
// batch last; the dispatcher has already moved on to the next batch.
func (s *Server) complete(b *batch) {
	shards := len(s.workers)
	for i, req := range b.reqs {
		b.mergeParts = b.mergeParts[:0]
		for sh := 0; sh < shards; sh++ {
			b.mergeParts = append(b.mergeParts, b.partials[i*shards+sh])
		}
		req.results, b.heads, b.pos = MergeTopK(req.results[:0], b.mergeParts, req.k, b.heads, b.pos)
		req.err = nil
		req.done <- struct{}{}
	}
	s.freeBatches <- b
}

// TopKObjects ranks the k strongest objects for a (subject, predicate)
// pair — the model's answer to "which objects complete this triple".
// Results are appended to dst (pass a reused buffer with cap ≥ k for a
// zero-allocation hit path) best first, ties broken by lower index.
func (s *Server) TopKObjects(subject, predicate int64, k int, dst []Result) ([]Result, error) {
	if err := s.model.validQuery(subject, predicate); err != nil {
		return dst[:0], err
	}
	if k > s.model.Objects() {
		k = s.model.Objects()
	}
	if k <= 0 {
		return dst[:0], nil
	}
	s.queries.Add(1)
	key := qkey{subject: subject, predicate: predicate, k: k}
	st := s.stripes[key.hash()%uint64(len(s.stripes))]

	res, cached, fl, leader := st.lookup(key, dst)
	if cached {
		return res, nil
	}
	if !leader {
		<-fl.done
		if fl.err != nil {
			return dst[:0], fl.err
		}
		return append(dst[:0], fl.results...), nil
	}

	req := s.reqPool.Get().(*request)
	req.subject, req.predicate, req.k = subject, predicate, k
	s.queue <- req
	<-req.done
	dst = append(dst[:0], req.results...)
	err := req.err
	st.finish(key, fl, req.results, err)
	s.reqPool.Put(req)
	if err != nil {
		return dst[:0], err
	}
	return dst, nil
}

// Membership ranks the k latent components an entity loads most
// heavily on — the concept-membership lookup of the paper's knowledge
// base application. Scores are absolute factor loadings; the ranking
// is unaffected by the §IV-C row normalization (a per-row constant)
// and needs no sharding at rank-sized cost.
func (s *Server) Membership(entity int64, k int, dst []Result) ([]Result, error) {
	obj := s.model.Factor(1)
	if entity < 0 || entity >= int64(obj.Rows) {
		return dst[:0], fmt.Errorf("serve: entity %d out of range [0, %d)", entity, obj.Rows)
	}
	row := obj.Row(int(entity))
	bufp := s.scorePool.Get().(*[]float64)
	buf := *bufp
	if cap(buf) < len(row) {
		buf = make([]float64, len(row))
	}
	buf = buf[:len(row)]
	for i, v := range row {
		if v < 0 {
			v = -v
		}
		buf[i] = v
	}
	dst = SelectTopK(dst[:0], buf, 0, k)
	*bufp = buf
	s.scorePool.Put(bufp)
	return dst, nil
}

// ConceptMembers ranks the k entities that load most heavily on one
// latent component, normalized per row against dominant entities
// exactly as the paper's discovery tables are (§IV-C). This is the
// inverse of Membership and what the end-to-end test checks against
// internal/gen's planted concepts.
func (s *Server) ConceptMembers(component int, k int, dst []Result) ([]Result, error) {
	obj := s.model.Factor(1)
	if component < 0 || component >= obj.Cols {
		return dst[:0], fmt.Errorf("serve: component %d out of range [0, %d)", component, obj.Cols)
	}
	bufp := s.scorePool.Get().(*[]float64)
	var res []Result
	res, *bufp = ColumnTopK(dst[:0], obj, component, s.model.RowTotals(1), k, *bufp)
	s.scorePool.Put(bufp)
	return res, nil
}

// Stats is a snapshot of the server's traffic counters. Counters are
// about observability, never behavior: the determinism invariant lets
// them vary run to run while rankings stay bit-identical.
type Stats struct {
	Queries     uint64 // TopKObjects calls admitted
	CacheHits   uint64 // served from an LRU stripe
	CacheMisses uint64 // computed as a single-flight leader
	Coalesced   uint64 // followers that waited on a leader's flight
	Batches     uint64 // dispatches to the shard workers
	BatchedReqs uint64 // requests carried by those dispatches

	Shards    int
	CacheSize int // per-stripe LRU capacity
	MaxBatch  int
}

// BatchOccupancy is the mean number of requests per dispatched batch.
func (st Stats) BatchOccupancy() float64 {
	if st.Batches == 0 {
		return 0
	}
	return float64(st.BatchedReqs) / float64(st.Batches)
}

// HitRate is the fraction of admitted queries served from cache.
func (st Stats) HitRate() float64 {
	if st.Queries == 0 {
		return 0
	}
	return float64(st.CacheHits) / float64(st.Queries)
}

// Stats returns a snapshot of the traffic counters.
func (s *Server) Stats() Stats {
	st := Stats{
		Queries:     s.queries.Load(),
		Batches:     s.batches.Load(),
		BatchedReqs: s.batchedReqs.Load(),
		Shards:      s.cfg.Shards,
		CacheSize:   s.cfg.CacheSize,
		MaxBatch:    s.cfg.MaxBatch,
	}
	for _, sp := range s.stripes {
		h, m, c := sp.stats()
		st.CacheHits += h
		st.CacheMisses += m
		st.Coalesced += c
	}
	return st
}
