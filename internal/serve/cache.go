package serve

import (
	"sync"
)

// qkey identifies a top-k query for caching: the (subject, predicate)
// pair and the k requested. Different k values are distinct cache
// entries — a k=5 hit must not serve a truncated k=10 answer or
// vice versa.
type qkey struct {
	subject   int64
	predicate int64
	k         int
}

// hash mixes the key into a stripe selector with the same splitmix64
// finalizer the storage layer uses for placement — cheap, stateless,
// and well-spread for sequential IDs.
func (q qkey) hash() uint64 {
	z := uint64(q.subject)*0x9e3779b97f4a7c15 ^ uint64(q.predicate)<<21 ^ uint64(q.k)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ z>>31
}

// flight is one in-progress computation of a query that followers wait
// on. done is closed (outside the stripe lock — lockscope) once results
// is filled; err reports a failed leader so followers don't serve a
// zero-value ranking.
type flight struct {
	done    chan struct{}
	waiters int // followers registered before finish, under the stripe lock
	results []Result
	err     error
}

// entry is one cached ranking. Entries are reused on eviction: the
// results slice is truncated, not freed, so a warm cache stops
// allocating once every slot has been filled at the high-water k.
type entry struct {
	key     qkey
	results []Result
	prev    int32
	next    int32
}

// lruCache is a fixed-capacity LRU over a slice of entries with an
// index map and intrusive doubly-linked recency list. It is not
// self-locking: the owning stripe serializes access.
type lruCache struct {
	cap     int
	entries []entry
	index   map[qkey]int32
	head    int32 // most recently used; -1 when empty
	tail    int32 // least recently used; -1 when empty
}

func newLRU(capacity int) *lruCache {
	return &lruCache{
		cap:     capacity,
		entries: make([]entry, 0, capacity),
		index:   make(map[qkey]int32, capacity),
		head:    -1,
		tail:    -1,
	}
}

// get returns the cached ranking for key and promotes it to most
// recently used.
func (c *lruCache) get(key qkey) ([]Result, bool) {
	i, ok := c.index[key]
	if !ok {
		return nil, false
	}
	c.unlink(i)
	c.pushFront(i)
	return c.entries[i].results, true
}

// put stores a ranking under key, evicting the least recently used
// entry when full. The results are copied into the entry's reusable
// buffer so the caller's scratch can be recycled immediately.
func (c *lruCache) put(key qkey, results []Result) {
	if c.cap <= 0 {
		return
	}
	if i, ok := c.index[key]; ok {
		// A follower raced the leader through the miss path; refresh.
		c.entries[i].results = append(c.entries[i].results[:0], results...)
		c.unlink(i)
		c.pushFront(i)
		return
	}
	var i int32
	if len(c.entries) < c.cap {
		c.entries = append(c.entries, entry{})
		i = int32(len(c.entries) - 1)
	} else {
		i = c.tail
		c.unlink(i)
		delete(c.index, c.entries[i].key)
	}
	e := &c.entries[i]
	e.key = key
	e.results = append(e.results[:0], results...)
	c.index[key] = i
	c.pushFront(i)
}

func (c *lruCache) unlink(i int32) {
	e := &c.entries[i]
	if e.prev >= 0 {
		c.entries[e.prev].next = e.next
	} else if c.head == i {
		c.head = e.next
	}
	if e.next >= 0 {
		c.entries[e.next].prev = e.prev
	} else if c.tail == i {
		c.tail = e.prev
	}
	e.prev, e.next = -1, -1
}

func (c *lruCache) pushFront(i int32) {
	e := &c.entries[i]
	e.prev = -1
	e.next = c.head
	if c.head >= 0 {
		c.entries[c.head].prev = i
	}
	c.head = i
	if c.tail < 0 {
		c.tail = i
	}
}

// stripe is one lock domain of the result cache: an LRU plus the
// single-flight table for queries currently being computed. Queries
// hash to stripes, so unrelated traffic never contends on one mutex.
type stripe struct {
	mu      sync.Mutex
	lru     *lruCache
	flights map[qkey]*flight

	hits   uint64
	misses uint64
	shared uint64 // followers coalesced onto another query's flight
}

// lookup is the cache front door. It returns, in order of preference:
// a cached ranking (cached=true, dst filled); a flight to wait on
// (fl non-nil, leader=false); or leadership of a new flight (fl
// non-nil, leader=true) — the caller must compute the ranking and call
// finish. dst receives a copy of cached results under the lock so the
// entry can't be evicted out from under the caller.
func (s *stripe) lookup(key qkey, dst []Result) (res []Result, cached bool, fl *flight, leader bool) {
	s.mu.Lock()
	if r, ok := s.lru.get(key); ok {
		s.hits++
		dst = append(dst[:0], r...)
		s.mu.Unlock()
		return dst, true, nil, false
	}
	if f, ok := s.flights[key]; ok {
		s.shared++
		f.waiters++
		s.mu.Unlock()
		return dst, false, f, false
	}
	s.misses++
	f := &flight{done: make(chan struct{})}
	s.flights[key] = f
	s.mu.Unlock()
	return dst, false, f, true
}

// finish publishes a leader's ranking: results are copied into the LRU
// (on success), the flight is removed from the table, and — after the
// lock is released — done is closed to release the followers. The
// flight gets its own copy of the results only when followers are
// actually waiting, because the leader's buffer is pooled scratch that
// is recycled as soon as finish returns.
func (s *stripe) finish(key qkey, fl *flight, results []Result, err error) {
	fl.err = err
	s.mu.Lock()
	if err == nil {
		s.lru.put(key, results)
	}
	if fl.waiters > 0 && err == nil {
		fl.results = append([]Result(nil), results...)
	}
	delete(s.flights, key)
	s.mu.Unlock()
	close(fl.done)
}

// cacheStats is a snapshot of one stripe's counters.
func (s *stripe) stats() (hits, misses, shared uint64) {
	s.mu.Lock()
	hits, misses, shared = s.hits, s.misses, s.shared
	s.mu.Unlock()
	return
}
