package serve

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"github.com/haten2/haten2/internal/baseline"
	"github.com/haten2/haten2/internal/matrix"
	"github.com/haten2/haten2/internal/tensor"
)

// testParafac builds a small seeded PARAFAC model plus the raw pieces
// the baseline scorer consumes.
func testParafac(seed int64, subjects, objects, predicates, rank int) ([]float64, [3]*matrix.Matrix, *Model) {
	rng := rand.New(rand.NewSource(seed))
	factors := [3]*matrix.Matrix{
		matrix.Random(subjects, rank, rng),
		matrix.Random(objects, rank, rng),
		matrix.Random(predicates, rank, rng),
	}
	lambda := make([]float64, rank)
	for r := range lambda {
		lambda[r] = 0.5 + rng.Float64()*3
	}
	m, err := NewParafacModel(lambda, factors)
	if err != nil {
		panic(err)
	}
	return lambda, factors, m
}

func testTucker(seed int64, subjects, objects, predicates int, dims [3]int) (*tensor.Dense, [3]*matrix.Matrix, *Model) {
	rng := rand.New(rand.NewSource(seed))
	factors := [3]*matrix.Matrix{
		matrix.Random(subjects, dims[0], rng),
		matrix.Random(objects, dims[1], rng),
		matrix.Random(predicates, dims[2], rng),
	}
	core := tensor.NewDense(int64(dims[0]), int64(dims[1]), int64(dims[2]))
	for i := range core.Data {
		core.Data[i] = rng.NormFloat64()
	}
	m, err := NewTuckerModel(core, factors)
	if err != nil {
		panic(err)
	}
	return core, factors, m
}

func sameAsBaseline(t *testing.T, got []Result, want []baseline.TopKResult, ctx string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d results, want %d", ctx, len(got), len(want))
	}
	for i := range got {
		if got[i].Index != want[i].Index ||
			math.Float64bits(got[i].Score) != math.Float64bits(want[i].Score) {
			t.Fatalf("%s: rank %d diverged: got (%d, %x) want (%d, %x)",
				ctx, i, got[i].Index, math.Float64bits(got[i].Score),
				want[i].Index, math.Float64bits(want[i].Score))
		}
	}
}

// TestServedRankingsBitIdenticalParafac is the acceptance-criteria
// matrix: rankings must be bit-identical to the single-threaded
// baseline scorer across GOMAXPROCS {1,4,16} × shard counts {1,4,16},
// with batching active and every query issued twice so the second pass
// is served from cache.
func TestServedRankingsBitIdenticalParafac(t *testing.T) {
	const (
		subjects, objects, predicates = 37, 211, 11
		rank                          = 7
		k                             = 9
	)
	lambda, factors, model := testParafac(42, subjects, objects, predicates, rank)

	type query struct{ s, p int64 }
	rng := rand.New(rand.NewSource(7))
	queries := make([]query, 300)
	for i := range queries {
		queries[i] = query{int64(rng.Intn(subjects)), int64(rng.Intn(predicates))}
	}
	want := make([][]baseline.TopKResult, len(queries))
	for i, q := range queries {
		want[i] = baseline.ParafacTopKObjects(lambda, factors, q.s, q.p, k)
	}

	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, procs := range []int{1, 4, 16} {
		runtime.GOMAXPROCS(procs)
		for _, shards := range []int{1, 4, 16} {
			srv, err := New(model, Config{Shards: shards, CacheSize: 64, MaxBatch: 8})
			if err != nil {
				t.Fatal(err)
			}
			for pass := 0; pass < 2; pass++ {
				got := make([][]Result, len(queries))
				var wg sync.WaitGroup
				const clients = 7
				wg.Add(clients)
				for c := 0; c < clients; c++ {
					go func(c int) {
						defer wg.Done()
						for i := c; i < len(queries); i += clients {
							res, err := srv.TopKObjects(queries[i].s, queries[i].p, k, nil)
							if err != nil {
								t.Error(err)
								return
							}
							got[i] = res
						}
					}(c)
				}
				wg.Wait()
				for i := range queries {
					sameAsBaseline(t, got[i], want[i], "parafac")
				}
			}
			st := srv.Stats()
			if st.CacheHits == 0 {
				t.Errorf("procs=%d shards=%d: second pass produced no cache hits", procs, shards)
			}
			srv.Close()
		}
	}
}

func TestServedRankingsBitIdenticalTucker(t *testing.T) {
	const (
		subjects, objects, predicates = 19, 83, 9
		k                             = 6
	)
	core, factors, model := testTucker(99, subjects, objects, predicates, [3]int{4, 5, 3})
	srv, err := New(model, Config{Shards: 4, MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var dst []Result
	for s := int64(0); s < subjects; s++ {
		for p := int64(0); p < predicates; p++ {
			dst, err = srv.TopKObjects(s, p, k, dst)
			if err != nil {
				t.Fatal(err)
			}
			sameAsBaseline(t, dst, baseline.TuckerTopKObjects(core, factors, s, p, k), "tucker")
		}
	}
}

func TestServerValidation(t *testing.T) {
	_, _, model := testParafac(1, 5, 7, 3, 2)
	srv, err := New(model, Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := srv.TopKObjects(5, 0, 3, nil); err == nil {
		t.Error("out-of-range subject accepted")
	}
	if _, err := srv.TopKObjects(0, -1, 3, nil); err == nil {
		t.Error("out-of-range predicate accepted")
	}
	if res, err := srv.TopKObjects(0, 0, 0, nil); err != nil || len(res) != 0 {
		t.Errorf("k=0: %v, %v", res, err)
	}
	// k beyond the object universe is clamped, not an error.
	res, err := srv.TopKObjects(0, 0, 100, nil)
	if err != nil || len(res) != 7 {
		t.Errorf("clamped k: %d results, err %v", len(res), err)
	}
	if _, err := srv.Membership(99, 3, nil); err == nil {
		t.Error("out-of-range entity accepted")
	}
	if _, err := srv.ConceptMembers(-1, 3, nil); err == nil {
		t.Error("out-of-range component accepted")
	}
	if _, err := New(nil, Config{}); err == nil {
		t.Error("nil model accepted")
	}
}

func TestMembershipMatchesFactorRow(t *testing.T) {
	_, factors, model := testParafac(3, 6, 9, 4, 5)
	srv, err := New(model, Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	obj := factors[1]
	for e := int64(0); e < int64(obj.Rows); e++ {
		got, err := srv.Membership(e, 3, nil)
		if err != nil {
			t.Fatal(err)
		}
		scores := make([]float64, obj.Cols)
		for r := 0; r < obj.Cols; r++ {
			scores[r] = math.Abs(obj.At(int(e), r))
		}
		want := sortTopK(scores, 0, 3)
		if !resultsEqual(got, want) {
			t.Fatalf("entity %d: got %v want %v", e, got, want)
		}
	}
}

// TestSingleFlight pins the coalescing semantics: many concurrent
// identical queries on a cold cache must produce exactly one miss, with
// the rest either coalesced onto the leader's flight or served from the
// cache the leader filled.
func TestSingleFlight(t *testing.T) {
	_, _, model := testParafac(5, 11, 301, 7, 6)
	srv, err := New(model, Config{Shards: 4, CacheSize: 16, MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	const clients = 32
	var wg sync.WaitGroup
	wg.Add(clients)
	for c := 0; c < clients; c++ {
		go func() {
			defer wg.Done()
			if _, err := srv.TopKObjects(3, 2, 5, nil); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	st := srv.Stats()
	if st.CacheMisses != 1 {
		t.Errorf("misses = %d, want exactly 1 (single flight)", st.CacheMisses)
	}
	if st.CacheHits+st.Coalesced != clients-1 {
		t.Errorf("hits %d + coalesced %d ≠ %d", st.CacheHits, st.Coalesced, clients-1)
	}
	if got := st.HitRate(); got < 0 || got > 1 {
		t.Errorf("hit rate %f out of range", got)
	}
}

func TestLRUEvicts(t *testing.T) {
	c := newLRU(2)
	c.put(qkey{1, 0, 3}, []Result{{Index: 1}})
	c.put(qkey{2, 0, 3}, []Result{{Index: 2}})
	if _, ok := c.get(qkey{1, 0, 3}); !ok {
		t.Fatal("entry 1 missing")
	}
	// 2 is now LRU; inserting 3 must evict it.
	c.put(qkey{3, 0, 3}, []Result{{Index: 3}})
	if _, ok := c.get(qkey{2, 0, 3}); ok {
		t.Fatal("entry 2 not evicted")
	}
	for _, want := range []int64{1, 3} {
		if r, ok := c.get(qkey{want, 0, 3}); !ok || r[0].Index != want {
			t.Fatalf("entry %d lost", want)
		}
	}
	// Re-putting an existing key refreshes in place.
	c.put(qkey{1, 0, 3}, []Result{{Index: 10}})
	if r, _ := c.get(qkey{1, 0, 3}); r[0].Index != 10 {
		t.Fatal("refresh failed")
	}
}

// TestSteadyStateAllocs pins the acceptance criterion: the warm query
// path must do ≤ 0.1 allocations per query. With the result cached and
// the caller reusing its destination buffer, a query is a hash, one
// stripe lock, and a copy — nothing allocates.
func TestSteadyStateAllocs(t *testing.T) {
	_, _, model := testParafac(8, 23, 501, 13, 8)
	srv, err := New(model, Config{Shards: 4, CacheSize: 64, MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	const k = 10
	dst := make([]Result, 0, k)
	// Warm up: populate the cache and the request pool.
	for i := 0; i < 3; i++ {
		if dst, err = srv.TopKObjects(5, 7, k, dst); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		dst, _ = srv.TopKObjects(5, 7, k, dst)
	})
	if avg > 0.1 {
		t.Errorf("steady-state allocs/query = %.3f, want ≤ 0.1", avg)
	}

	// The cold path is allowed its single-flight bookkeeping (one
	// flight struct + channel per miss) but must stay bounded — the
	// batch, score panels, and request are all pooled.
	var s int64
	missSrv, err := New(model, Config{Shards: 4, MaxBatch: 8, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	defer missSrv.Close()
	for i := 0; i < 5; i++ {
		if dst, err = missSrv.TopKObjects(s, 3, k, dst); err != nil {
			t.Fatal(err)
		}
	}
	avg = testing.AllocsPerRun(200, func() {
		s = (s + 1) % 23
		dst, _ = missSrv.TopKObjects(s, 3, k, dst)
	})
	if avg > 8 {
		t.Errorf("miss-path allocs/query = %.1f, want small and bounded", avg)
	}
}

func BenchmarkServeCachedQuery(b *testing.B) {
	_, _, model := testParafac(8, 100, 5000, 20, 10)
	srv, err := New(model, Config{Shards: 4, CacheSize: 256, MaxBatch: 16})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	const k = 10
	dst := make([]Result, 0, k)
	if dst, err = srv.TopKObjects(1, 2, k, dst); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, _ = srv.TopKObjects(1, 2, k, dst)
	}
}

func BenchmarkServeUncachedQuery(b *testing.B) {
	lambda, factors, model := testParafac(8, 100, 5000, 20, 10)
	const k = 10
	b.Run("served", func(b *testing.B) {
		srv, err := New(model, Config{Shards: 4, MaxBatch: 16, NoCache: true})
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		dst := make([]Result, 0, k)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dst, _ = srv.TopKObjects(int64(i%100), int64(i%20), k, dst)
		}
	})
	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			baseline.ParafacTopKObjects(lambda, factors, int64(i%100), int64(i%20), k)
		}
	})
}
