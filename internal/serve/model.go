package serve

import (
	"fmt"
	"math"

	"github.com/haten2/haten2/internal/matrix"
	"github.com/haten2/haten2/internal/tensor"
)

// Model is a decomposition in serving layout: the three factor matrices
// plus the coupling — λ weights for PARAFAC, the dense core for Tucker.
// Both reduce a (subject, predicate) query to one query vector q such
// that the object scores are the matrix–vector product Object·q, which
// is what lets PARAFAC and Tucker share the sharded serving kernel.
type Model struct {
	subject   *matrix.Matrix
	object    *matrix.Matrix
	predicate *matrix.Matrix
	lambda    []float64     // PARAFAC component weights; nil for Tucker
	core      *tensor.Dense // Tucker core; nil for PARAFAC

	// rowTotals[mode] holds per-row sums of absolute values, the §IV-C
	// normalizer for membership and entity rankings.
	rowTotals [3][]float64
}

// NewParafacModel builds a serving model from a PARAFAC decomposition
// 𝒳 ≈ Σ_r λ_r a_r∘b_r∘c_r with factors (subject, object, predicate).
func NewParafacModel(lambda []float64, factors [3]*matrix.Matrix) (*Model, error) {
	for m, f := range factors {
		if f == nil {
			return nil, fmt.Errorf("serve: nil factor for mode %d", m)
		}
		if f.Cols != len(lambda) {
			return nil, fmt.Errorf("serve: factor %d has %d columns, want rank %d", m, f.Cols, len(lambda))
		}
	}
	mo := &Model{subject: factors[0], object: factors[1], predicate: factors[2], lambda: lambda}
	mo.fillTotals()
	return mo, nil
}

// NewTuckerModel builds a serving model from a Tucker decomposition
// 𝒳 ≈ 𝒢 ×₁A ×₂B ×₃C with factors (subject, object, predicate).
func NewTuckerModel(core *tensor.Dense, factors [3]*matrix.Matrix) (*Model, error) {
	if core == nil || core.Order() != 3 {
		return nil, fmt.Errorf("serve: Tucker model needs a 3-way core")
	}
	for m, f := range factors {
		if f == nil {
			return nil, fmt.Errorf("serve: nil factor for mode %d", m)
		}
		if int64(f.Cols) != core.Dim(m) {
			return nil, fmt.Errorf("serve: factor %d has %d columns, core mode has %d", m, f.Cols, core.Dim(m))
		}
	}
	mo := &Model{subject: factors[0], object: factors[1], predicate: factors[2], core: core}
	mo.fillTotals()
	return mo, nil
}

func (m *Model) fillTotals() {
	for mode, f := range [3]*matrix.Matrix{m.subject, m.object, m.predicate} {
		totals := make([]float64, f.Rows)
		for i := 0; i < f.Rows; i++ {
			var s float64
			for _, v := range f.Row(i) {
				s += math.Abs(v)
			}
			totals[i] = s
		}
		m.rowTotals[mode] = totals
	}
}

// Factor returns the factor matrix of one mode (0 subjects, 1 objects,
// 2 predicates).
func (m *Model) Factor(mode int) *matrix.Matrix {
	return [3]*matrix.Matrix{m.subject, m.object, m.predicate}[mode]
}

// RowTotals returns the per-row absolute sums of one mode's factor.
func (m *Model) RowTotals(mode int) []float64 { return m.rowTotals[mode] }

// Objects returns the size of the object mode — the universe a
// (subject, predicate) query ranks.
func (m *Model) Objects() int { return m.object.Rows }

// Components returns the number of latent components (the rank, or the
// object-mode core dimension for Tucker).
func (m *Model) Components() int { return m.object.Cols }

// QueryDim is the length of the query vector — equal to Components.
func (m *Model) QueryDim() int { return m.object.Cols }

// queryVecInto fills dst (length QueryDim) with the query vector of a
// (subject, predicate) pair.
//
// PARAFAC: q_r = λ_r·A(s,r)·C(p,r), so Object·q scores every object o
// as Σ_r λ_r·A(s,r)·B(o,r)·C(p,r) — the model's predicted value at
// (s, o, p). Tucker: q_j = Σ_a Σ_c 𝒢(a,j,c)·A(s,a)·C(p,c), the core
// contracted with the subject and predicate rows.
//
// The evaluation order (left-to-right products, a-outer c-inner
// accumulation) is pinned: internal/baseline's reference scorer uses
// the same order, which is what makes served scores bit-identical to
// the single-threaded reference.
func (m *Model) queryVecInto(dst []float64, subject, predicate int64) {
	srow := m.subject.Row(int(subject))
	prow := m.predicate.Row(int(predicate))
	if m.core == nil {
		for r := range dst {
			dst[r] = m.lambda[r] * srow[r] * prow[r]
		}
		return
	}
	d := m.core.Dims()
	for j := range dst {
		var sum float64
		for a := int64(0); a < d[0]; a++ {
			sv := srow[a]
			for c := int64(0); c < d[2]; c++ {
				sum += m.core.At(a, int64(j), c) * sv * prow[c]
			}
		}
		dst[j] = sum
	}
}

// validQuery reports whether the query coordinates are inside the
// model's vocabulary.
func (m *Model) validQuery(subject, predicate int64) error {
	if subject < 0 || subject >= int64(m.subject.Rows) {
		return fmt.Errorf("serve: subject %d out of range [0, %d)", subject, m.subject.Rows)
	}
	if predicate < 0 || predicate >= int64(m.predicate.Rows) {
		return fmt.Errorf("serve: predicate %d out of range [0, %d)", predicate, m.predicate.Rows)
	}
	return nil
}
