package serve

import (
	"testing"

	"github.com/haten2/haten2/internal/core"
	"github.com/haten2/haten2/internal/gen"
	"github.com/haten2/haten2/internal/matrix"
	"github.com/haten2/haten2/internal/mr"
)

// TestServedConceptRecovery is the end-to-end correctness test: build
// the seeded Freebase-music stand-in with planted concepts, decompose
// it on the simulated cluster, serve the factors, and require the
// served rankings to recover the planted structure — concept-membership
// top-k dominated by one planted concept's entities, and triple
// completion returning objects from the right concept.
func TestServedConceptRecovery(t *testing.T) {
	kb := gen.NewKB(gen.KBConfig{
		Seed:               17,
		Theme:              "music",
		ConceptNames:       gen.FreebaseMusicNames,
		EntitiesPerConcept: 10,
		TriplesPerConcept:  300,
		NoiseTriples:       100,
	}).FilterScarcePredicates(1)
	x := kb.Tensor()
	rank := len(kb.Concepts)

	c := mr.NewCluster(mr.Config{Machines: 8, SlotsPerMachine: 2})
	res, err := core.ParafacALS(c, x, rank, core.Options{
		Variant: core.DRI, MaxIters: 30, Seed: 61, TrackFit: true, Tol: 1e-7,
	})
	if err != nil {
		t.Fatal(err)
	}
	factors := [3]*matrix.Matrix{res.Model.Factors[0], res.Model.Factors[1], res.Model.Factors[2]}
	model, err := NewParafacModel(res.Model.Lambda, factors)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(model, Config{Shards: 4, CacheSize: 64, MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conceptOfObject := map[int64]int{}
	for ci, con := range kb.Concepts {
		for _, id := range con.Objects {
			conceptOfObject[id] = ci
		}
	}

	// Concept membership: each component's top objects must come
	// predominantly from one planted concept (precision@k floor).
	const k = 5
	matched := make([]int, rank) // component → majority concept
	var meanPurity float64
	for r := 0; r < rank; r++ {
		top, err := srv.ConceptMembers(r, k, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(top) != k {
			t.Fatalf("component %d: got %d members", r, len(top))
		}
		counts := map[int]int{}
		for _, m := range top {
			if ci, ok := conceptOfObject[m.Index]; ok {
				counts[ci]++
			}
		}
		best, bestN := -1, 0
		for ci, n := range counts {
			if n > bestN || (n == bestN && ci < best) {
				best, bestN = ci, n
			}
		}
		matched[r] = best
		purity := float64(bestN) / float64(k)
		meanPurity += purity / float64(rank)
		t.Logf("component %d → concept %d (%s), purity %.2f", r, best, conceptName(kb, best), purity)
	}
	if meanPurity < 0.6 {
		t.Errorf("mean membership precision@%d = %.2f, want ≥ 0.6", k, meanPurity)
	}

	// Every planted concept should be matched by some component —
	// the decomposition's components and the planted concepts are in
	// bijection when recovery works.
	seen := map[int]bool{}
	for _, ci := range matched {
		seen[ci] = true
	}
	if len(seen) < rank-1 {
		t.Errorf("only %d of %d planted concepts recovered: %v", len(seen), rank, matched)
	}

	// Triple completion: querying (subject, predicate) from a planted
	// concept must rank that concept's objects highly.
	var meanPrec float64
	var asked int
	for ci, con := range kb.Concepts {
		if len(con.Subjects) == 0 || len(con.Predicates) == 0 {
			continue
		}
		top, err := srv.TopKObjects(con.Subjects[0], con.Predicates[0], k, nil)
		if err != nil {
			t.Fatal(err)
		}
		hits := 0
		for _, m := range top {
			if got, ok := conceptOfObject[m.Index]; ok && got == ci {
				hits++
			}
		}
		meanPrec += float64(hits) / float64(k)
		asked++
	}
	if asked == 0 {
		t.Fatal("no planted concepts to query")
	}
	meanPrec /= float64(asked)
	t.Logf("triple-completion precision@%d = %.2f over %d concepts", k, meanPrec, asked)
	if meanPrec < 0.5 {
		t.Errorf("triple-completion precision@%d = %.2f, want ≥ 0.5", k, meanPrec)
	}
}

func conceptName(kb *gen.KB, ci int) string {
	if ci < 0 || ci >= len(kb.Concepts) {
		return "?"
	}
	return kb.Concepts[ci].Name
}
