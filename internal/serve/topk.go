// Package serve is the factor-serving layer: it loads the factor
// matrices a decomposition produced and answers top-k queries over them
// under heavy traffic. The paper's motivating applications — concept
// discovery in knowledge bases, intrusion detection in network logs
// (§IV-C) — are exactly this workload: given a (subject, predicate)
// pair, rank objects by the model's predicted strength; given an
// entity, rank the concepts it belongs to.
//
// The performance architecture (DESIGN.md §3h): the object factor
// matrix is sharded row-wise across persistent worker goroutines, each
// shard selects a partial top-k with a bounded heap, and partials are
// merged on a k-way heap; results are cached in per-shard LRU stripes
// with single-flight coalescing of duplicate in-flight queries; and a
// dispatcher batches concurrent queries so the rank-R dot products are
// amortized over a blocked matrix–matrix kernel. The steady-state query
// path performs no allocations (pinned by AllocsPerRun tests).
//
// The engine's standing invariant carries over: sharding, batching and
// caching may change wall-clock time and counters, never the returned
// rankings. Every top-k path uses one total order — higher score first,
// equal scores broken by lower index — so results are bit-identical
// across GOMAXPROCS and shard counts, and identical to the
// single-threaded reference scorer in internal/baseline.
package serve

import (
	"math"

	"github.com/haten2/haten2/internal/matrix"
)

// Result is one ranked answer: the row (entity or component) index and
// its score.
type Result struct {
	Index int64
	Score float64
}

// better reports whether a ranks strictly ahead of b. This is the one
// total order every top-k path in the repository uses: higher score
// first, equal scores broken by lower index (DESIGN.md §3h). The
// index tie-break is what makes cross-shard merges and the
// GOMAXPROCS × shard-count bit-identity tests deterministic.
func better(a, b Result) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.Index < b.Index
}

// SelectTopK appends the k best entries of scores to dst (usually
// dst[:0] of a reused buffer) and returns it, best first. Entry i gets
// index base+i, so a shard selecting over its row slice reports global
// indexes. The selection keeps a bounded worst-at-root heap of size k —
// O(n log k), no allocation beyond dst's growth — and heap-sorts it
// into descending rank order at the end.
func SelectTopK(dst []Result, scores []float64, base int64, k int) []Result {
	if k > len(scores) {
		k = len(scores)
	}
	if k <= 0 {
		return dst
	}
	h := dst[:0]
	for i, s := range scores {
		r := Result{Index: base + int64(i), Score: s}
		if len(h) < k {
			h = append(h, r)
			siftUp(h, len(h)-1)
			continue
		}
		if better(r, h[0]) {
			h[0] = r
			siftDown(h, 0, len(h))
		}
	}
	// Heap-sort in place: repeatedly swap the worst root to the end.
	for end := len(h) - 1; end > 0; end-- {
		h[0], h[end] = h[end], h[0]
		siftDown(h, 0, end)
	}
	return h
}

// siftUp restores the worst-at-root property after appending at i.
func siftUp(h []Result, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !better(h[parent], h[i]) {
			return
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

// siftDown restores the worst-at-root property for h[:end] after
// replacing the root.
func siftDown(h []Result, i, end int) {
	for {
		worst := i
		if l := 2*i + 1; l < end && better(h[worst], h[l]) {
			worst = l
		}
		if r := 2*i + 2; r < end && better(h[worst], h[r]) {
			worst = r
		}
		if worst == i {
			return
		}
		h[i], h[worst] = h[worst], h[i]
		i = worst
	}
}

// MergeTopK merges per-shard partial top-k lists (each sorted best
// first, as SelectTopK returns them) into the global top-k, appended to
// dst. The merge runs a k-way heap over the shard heads: heap entries
// are shard numbers ordered by their current head result, so each of
// the k output steps costs O(log shards). Shards cover disjoint index
// ranges, so the index tie-break in better makes the merge a total
// order and the output independent of the shard count.
//
// heads and pos are caller-provided scratch (grown as needed) so the
// steady-state merge allocates nothing; pass nil for one-off calls.
func MergeTopK(dst []Result, parts [][]Result, k int, heads, pos []int) ([]Result, []int, []int) {
	if len(parts) == 1 {
		// Single shard: its partial already is the answer.
		n := k
		if n > len(parts[0]) {
			n = len(parts[0])
		}
		return append(dst, parts[0][:n]...), heads, pos
	}
	if cap(heads) < len(parts) {
		heads = make([]int, 0, len(parts))
		pos = make([]int, len(parts))
	}
	heads = heads[:0]
	pos = pos[:len(parts)]
	head := func(sh int) Result { return parts[sh][pos[sh]] }
	for sh := range parts {
		pos[sh] = 0
		if len(parts[sh]) == 0 {
			continue
		}
		heads = append(heads, sh)
		// Sift up under best-at-root ordering.
		for i := len(heads) - 1; i > 0; {
			parent := (i - 1) / 2
			if !better(head(heads[i]), head(heads[parent])) {
				break
			}
			heads[i], heads[parent] = heads[parent], heads[i]
			i = parent
		}
	}
	for k > 0 && len(heads) > 0 {
		sh := heads[0]
		dst = append(dst, head(sh))
		k--
		pos[sh]++
		if pos[sh] >= len(parts[sh]) {
			heads[0] = heads[len(heads)-1]
			heads = heads[:len(heads)-1]
		}
		// Sift down under best-at-root ordering.
		for i := 0; ; {
			best := i
			if l := 2*i + 1; l < len(heads) && better(head(heads[l]), head(heads[best])) {
				best = l
			}
			if r := 2*i + 2; r < len(heads) && better(head(heads[r]), head(heads[best])) {
				best = r
			}
			if best == i {
				break
			}
			heads[i], heads[best] = heads[best], heads[i]
			i = best
		}
	}
	return dst, heads, pos
}

// ColumnTopK ranks the rows of one factor-matrix column by normalized
// magnitude |m(i,col)|/totals[i] — the §IV-C presentation used by the
// discovery tables — and appends the top k to dst via the shared
// selection kernel. totals may be nil to skip normalization; scratch is
// a reusable score buffer (pass nil for one-off calls).
func ColumnTopK(dst []Result, m *matrix.Matrix, col int, totals []float64, k int, scratch []float64) ([]Result, []float64) {
	if cap(scratch) < m.Rows {
		scratch = make([]float64, m.Rows)
	}
	scratch = scratch[:m.Rows]
	for i := 0; i < m.Rows; i++ {
		v := math.Abs(m.At(i, col))
		if totals != nil && totals[i] > 0 {
			v /= totals[i]
		}
		scratch[i] = v
	}
	return SelectTopK(dst, scratch, 0, k), scratch
}

// TopEntities returns the labels of the k best rows of one factor
// column, normalized by per-row totals — the presentation of Tables VI
// and VII ("mitigate the effects of dominant terms", §IV-C). It is the
// label-returning convenience over the same selection kernel the server
// and the discovery tables use.
func TopEntities(labels []string, col []float64, rowTotals []float64, k int) []string {
	scores := make([]float64, len(col))
	for i, v := range col {
		nv := math.Abs(v)
		if rowTotals != nil && rowTotals[i] > 0 {
			nv /= rowTotals[i]
		}
		scores[i] = nv
	}
	top := SelectTopK(nil, scores, 0, k)
	out := make([]string, len(top))
	for i, r := range top {
		out[i] = labels[r.Index]
	}
	return out
}
