package serve

import (
	"encoding/binary"
	"math"
	"sort"
	"testing"

	"github.com/haten2/haten2/internal/matrix"
)

// sortTopK is the obviously-correct reference the selection and merge
// kernels are checked against: score everything, full sort under the
// repo-wide total order, truncate.
func sortTopK(scores []float64, base int64, k int) []Result {
	all := make([]Result, len(scores))
	for i, s := range scores {
		all[i] = Result{Index: base + int64(i), Score: s}
	}
	sort.Slice(all, func(i, j int) bool { return better(all[i], all[j]) })
	if k > len(all) {
		k = len(all)
	}
	if k < 0 {
		k = 0
	}
	return all[:k]
}

func resultsEqual(a, b []Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Index != b[i].Index ||
			math.Float64bits(a[i].Score) != math.Float64bits(b[i].Score) {
			return false
		}
	}
	return true
}

func TestSelectTopKMatchesSort(t *testing.T) {
	cases := []struct {
		name   string
		scores []float64
		k      int
	}{
		{"basic", []float64{0.5, 2, -1, 2, 0.5, 3}, 3},
		{"all ties", []float64{1, 1, 1, 1}, 2},
		{"k larger than input", []float64{3, 1, 2}, 10},
		{"k zero", []float64{3, 1, 2}, 0},
		{"empty", nil, 4},
		{"negatives and zero", []float64{-1, 0, -0.5, -2, 0}, 4},
		{"single", []float64{7}, 1},
	}
	for _, tc := range cases {
		got := SelectTopK(nil, tc.scores, 100, tc.k)
		want := sortTopK(tc.scores, 100, tc.k)
		if !resultsEqual(got, want) {
			t.Errorf("%s: SelectTopK = %v, want %v", tc.name, got, want)
		}
	}
}

func TestSelectTopKTieBreakIsIndexOrder(t *testing.T) {
	got := SelectTopK(nil, []float64{5, 5, 5, 5, 5}, 0, 3)
	for i, r := range got {
		if r.Index != int64(i) {
			t.Fatalf("tie at rank %d went to index %d, want %d", i, r.Index, i)
		}
	}
}

func TestSelectTopKReusesDst(t *testing.T) {
	buf := make([]Result, 0, 8)
	got := SelectTopK(buf, []float64{1, 3, 2}, 0, 2)
	if &got[:1][0] != &buf[:1][0] {
		t.Fatal("SelectTopK did not reuse the provided buffer")
	}
	if got[0].Index != 1 || got[1].Index != 2 {
		t.Fatalf("got %v", got)
	}
}

// shardAndMerge splits scores into n contiguous shards, selects each
// shard's top-k, and merges — the server's exact dataflow.
func shardAndMerge(scores []float64, shards, k int) []Result {
	parts := make([][]Result, shards)
	for sh := 0; sh < shards; sh++ {
		lo := sh * len(scores) / shards
		hi := (sh + 1) * len(scores) / shards
		parts[sh] = SelectTopK(nil, scores[lo:hi], int64(lo), k)
	}
	out, _, _ := MergeTopK(nil, parts, k, nil, nil)
	return out
}

func TestMergeTopKMatchesSort(t *testing.T) {
	scores := []float64{0.3, 9, -2, 9, 4, 4, 0, 7, 7, 7, -5, 1, 2, 9}
	for shards := 1; shards <= 6; shards++ {
		for k := 0; k <= len(scores)+1; k++ {
			got := shardAndMerge(scores, shards, k)
			want := sortTopK(scores, 0, k)
			if !resultsEqual(got, want) {
				t.Fatalf("shards=%d k=%d: got %v want %v", shards, k, got, want)
			}
		}
	}
}

func TestMergeTopKEmptyShards(t *testing.T) {
	parts := [][]Result{nil, {{Index: 3, Score: 1}}, nil}
	got, _, _ := MergeTopK(nil, parts, 5, nil, nil)
	if len(got) != 1 || got[0].Index != 3 {
		t.Fatalf("got %v", got)
	}
	got, _, _ = MergeTopK(nil, [][]Result{nil, nil}, 2, nil, nil)
	if len(got) != 0 {
		t.Fatalf("all-empty merge returned %v", got)
	}
}

func TestMergeTopKScratchReuse(t *testing.T) {
	scores := []float64{5, 1, 8, 2, 9, 0, 3, 7}
	parts := make([][]Result, 4)
	for sh := 0; sh < 4; sh++ {
		lo, hi := sh*2, sh*2+2
		parts[sh] = SelectTopK(nil, scores[lo:hi], int64(lo), 3)
	}
	var heads, pos []int
	var dst []Result
	for i := 0; i < 3; i++ {
		dst, heads, pos = MergeTopK(dst[:0], parts, 3, heads, pos)
		want := sortTopK(scores, 0, 3)
		if !resultsEqual(dst, want) {
			t.Fatalf("pass %d: got %v want %v", i, dst, want)
		}
	}
}

func TestColumnTopKNormalizes(t *testing.T) {
	m := matrix.FromRows([][]float64{{0.1}, {-0.9}, {0.5}, {0.2}})
	top, _ := ColumnTopK(nil, m, 0, nil, 2, nil)
	if top[0].Index != 1 || top[1].Index != 2 {
		t.Fatalf("unnormalized top = %v", top)
	}
	// A tiny row total makes row 0 dominate after normalization.
	totals := []float64{0.1, 10, 10, 10}
	top, _ = ColumnTopK(nil, m, 0, totals, 1, nil)
	if top[0].Index != 0 {
		t.Fatalf("normalized top = %v", top)
	}
}

// TestTopEntities pins the behavior gen.TopEntities had before it moved
// here onto the shared selection kernel.
func TestTopEntities(t *testing.T) {
	labels := []string{"a", "b", "c", "d"}
	col := []float64{0.1, -0.9, 0.5, 0.2}
	got := TopEntities(labels, col, nil, 2)
	if got[0] != "b" || got[1] != "c" {
		t.Fatalf("top = %v", got)
	}
	totals := []float64{0.1, 10, 10, 10}
	got = TopEntities(labels, col, totals, 1)
	if got[0] != "a" {
		t.Fatalf("normalized top = %v", got)
	}
	if n := len(TopEntities(labels, col, nil, 99)); n != 4 {
		t.Fatalf("clamp failed: %d", n)
	}
}

// FuzzShardMerge drives arbitrary score vectors, shard counts, and k
// through the shard-select-merge pipeline and requires the result to
// match the sort-based reference exactly — the merge heap must be a
// total-order selection no matter how scores collide or shards split.
func FuzzShardMerge(f *testing.F) {
	f.Add([]byte{3, 2, 0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 1, 1})
	f.Add([]byte{1, 1})
	f.Add([]byte{10, 5, 0x3f, 0xf0, 0, 0, 0, 0, 0, 0, 0x3f, 0xf0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		k := int(data[0] % 12)
		shards := int(data[1]%6) + 1
		data = data[2:]
		scores := make([]float64, 0, len(data)/8)
		for len(data) >= 8 {
			v := math.Float64frombits(binary.LittleEndian.Uint64(data[:8]))
			if math.IsNaN(v) {
				v = 0 // NaN has no place in a total order; the scorers never produce it
			}
			scores = append(scores, v)
			data = data[8:]
		}
		if shards > len(scores) && len(scores) > 0 {
			shards = len(scores)
		}
		if len(scores) == 0 {
			shards = 1
		}
		got := shardAndMerge(scores, shards, k)
		want := sortTopK(scores, 0, k)
		if !resultsEqual(got, want) {
			t.Fatalf("k=%d shards=%d scores=%v:\n got %v\nwant %v", k, shards, scores, got, want)
		}
	})
}
