package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SharedCapture flags data races hiding in goroutine closures: a `go
// func` literal that writes to a variable captured by reference from
// the enclosing function mutates state the spawner (or a sibling
// worker) may touch concurrently. The engine's sanctioned patterns are
// the two that are actually safe: guarding the write with a mutex held
// on every path to it, and per-index slice partitioning (each worker
// writes results[i] for its own i), which runPool's workers rely on.
//
// For each spawned literal the analyzer walks the body's CFG with a
// forward must-analysis of held locks (Lock gens, Unlock kills —
// must-held, because a lock held on only some paths guards nothing) and
// flags every write whose target resolves to a captured variable:
// assignments, compound assignments, and ++/--. Writes through a slice
// or array index are exempt — that is the partitioning pattern, and
// per-element aliasing is beyond a lint's reach — but writes into a
// captured map are flagged (concurrent map writes fault regardless of
// key). Reads are never flagged: flow-insensitive read/write pairing
// produces more noise than signal, and the race detector covers reads
// in tier-1.
var SharedCapture = &Analyzer{
	Name: "sharedcapture",
	Doc:  "goroutines do not write captured variables without a lock held on every path (slice-index partitioning exempt)",
	Flow: true,
	Run:  runSharedCapture,
}

func runSharedCapture(p *Pass) {
	for _, file := range p.Pkg.Files {
		for _, fb := range funcBodies(file) {
			inspectShallow(fb.body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
					checkSharedCapture(p, lit)
				}
				return true
			})
		}
	}
}

func checkSharedCapture(p *Pass, lit *ast.FuncLit) {
	cfg := BuildCFG(lit.Body)
	sol := (&Flow{
		CFG: cfg,
		Lat: MustSetLattice[string]{},
		Transfer: func(n ast.Node, f Fact) Fact {
			s := f.(MustSet[string])
			switch n := n.(type) {
			case *DeferRun:
				if key := mutexLockKey(p, n.Defer.Call, false); key != "" {
					s = mustDel(s, key)
				}
				return s
			case *ast.DeferStmt:
				return s
			case *CaseBind, *RangeHead:
				return s
			}
			inspectShallow(n, func(x ast.Node) bool {
				call, ok := x.(*ast.CallExpr)
				if !ok {
					return true
				}
				if key := mutexLockKey(p, call, true); key != "" {
					s = mustAdd(s, key)
				} else if key := mutexLockKey(p, call, false); key != "" {
					s = mustDel(s, key)
				}
				return true
			})
			return s
		},
		Boundary: MustSet[string]{M: map[string]bool{}},
	}).Solve()
	for _, blk := range cfg.Reachable() {
		sol.Replay(blk, func(n ast.Node, f Fact) {
			held := f.(MustSet[string])
			guarded := !held.Top && len(held.M) > 0
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					reportCapturedWrite(p, lit, lhs, guarded)
				}
			case *ast.IncDecStmt:
				reportCapturedWrite(p, lit, n.X, guarded)
			}
		})
	}
}

// reportCapturedWrite flags one write target when it resolves to a
// by-reference capture and no lock is must-held.
func reportCapturedWrite(p *Pass, lit *ast.FuncLit, lhs ast.Expr, guarded bool) {
	if guarded {
		return
	}
	obj, via := writeTarget(p, lhs)
	if obj == nil || !capturedBy(lit, obj) {
		return
	}
	p.Reportf(lhs.Pos(),
		"goroutine writes captured %s%s without a lock held on every path: concurrent writes race (guard with a mutex or partition by slice index)",
		obj.Name(), via)
}

// writeTarget resolves a write's base variable, skipping the exempt
// slice/array-index partitioning shape. The second result annotates the
// access path for the diagnostic ("", " through a field", " through a
// map index").
func writeTarget(p *Pass, lhs ast.Expr) (types.Object, string) {
	switch e := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if e.Name == "_" {
			return nil, ""
		}
		obj := p.Pkg.Info.Uses[e]
		if obj == nil {
			obj = p.Pkg.Info.Defs[e]
		}
		if v, ok := obj.(*types.Var); ok {
			return v, ""
		}
		return nil, ""
	case *ast.SelectorExpr:
		obj, _ := writeTarget(p, e.X)
		return obj, " through a field"
	case *ast.StarExpr:
		obj, _ := writeTarget(p, e.X)
		return obj, " through a pointer"
	case *ast.IndexExpr:
		t := p.TypeOf(e.X)
		if t != nil {
			switch t.Underlying().(type) {
			case *types.Slice, *types.Array, *types.Pointer:
				// Per-index partitioning: each worker owns its element.
				return nil, ""
			case *types.Map:
				obj, _ := writeTarget(p, e.X)
				return obj, " through a map index"
			}
		}
		return nil, ""
	}
	return nil, ""
}

// capturedBy reports whether the variable is declared outside the
// literal: a package-level variable or one of the enclosing function's
// locals, either way shared with code outside this goroutine.
func capturedBy(lit *ast.FuncLit, obj types.Object) bool {
	if obj.Pos() == token.NoPos {
		return true // predeclared or synthetic: not the literal's own
	}
	return obj.Pos() < lit.Pos() || obj.Pos() >= lit.End()
}
