package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// PoolReturn keeps the engine's typed buffer pools balanced. A pooled
// buffer that is acquired but never returned silently degrades the
// pools back to plain allocation — thousands of ALS jobs then rebuild
// their bucket and group storage from scratch and the reuse PR 1 bought
// evaporates without any test failing. The check applies to the
// packages that own pools (mr, and obs's exporter buffers) and is
// flow-insensitive: a value bound from a pool acquisition (getSlice,
// getGroupArena, getCombineScratch, getBuf, or a raw sync.Pool Get)
// must, somewhere in the same outermost function, be passed to the
// matching return call, be returned to the caller, or escape into
// another location (whose owner then carries the obligation). The
// shuffle-v2 codec pools widened the surface: core's per-reduce scratch
// maps come from a raw sync.Pool behind a type assertion, and plans
// borrow engine slabs through the exported mr.Acquire/mr.Recycle pair,
// so both shapes are tracked here too.
var PoolReturn = &Analyzer{
	Name: "poolreturn",
	Doc:  "every pool acquisition in internal/mr and internal/obs has a matching return",
	Run:  runPoolReturn,
}

// poolKinds maps acquisition helpers to the call that must give the
// buffer back.
var poolKinds = map[string]string{
	"getSlice":          "putSlice",
	"getMap":            "putMap",
	"getGroupArena":     "putGroupArena",
	"getCombineScratch": "putCombineScratch",
	"getBuf":            "putBuf",
}

// crossPoolKinds maps mr's exported pool API, usable from any package.
var crossPoolKinds = map[string]string{
	"Acquire": "Recycle",
}

// poolPackages are the package names holding (or borrowing) pooled
// buffers: the engine, the trace exporter, and core's codec scratch.
var poolPackages = map[string]bool{"mr": true, "obs": true, "core": true}

func runPoolReturn(p *Pass) {
	if !poolPackages[p.Pkg.Pkg.Name()] {
		return
	}
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkPoolBalance(p, fd)
		}
	}
}

// acquisition is one pool Get bound to a local identifier.
type acquisition struct {
	obj  types.Object
	put  string // required matching call: putSlice, putMap, …, or "Put"
	call *ast.CallExpr
}

func checkPoolBalance(p *Pass, fd *ast.FuncDecl) {
	var acqs []acquisition
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		rhs := ast.Unparen(as.Rhs[0])
		// A raw sync.Pool acquisition is idiomatically type-asserted in
		// the same expression: p.Get().(T).
		if ta, ok := rhs.(*ast.TypeAssertExpr); ok {
			rhs = ast.Unparen(ta.X)
		}
		call, ok := rhs.(*ast.CallExpr)
		if !ok {
			return true
		}
		put := acquisitionPut(p, call)
		if put == "" {
			return true
		}
		obj := p.Pkg.Info.Defs[id]
		if obj == nil {
			obj = p.Pkg.Info.Uses[id]
		}
		if obj != nil {
			acqs = append(acqs, acquisition{obj: obj, put: put, call: call})
		}
		return true
	})
	for _, acq := range acqs {
		if !poolObligationMet(p, fd, acq) {
			p.Reportf(acq.call.Pos(),
				"pooled buffer %s is acquired but never returned with %s (and does not escape this function): the pool degrades to plain allocation",
				acq.obj.Name(), acq.put)
		}
	}
}

// acquisitionPut classifies a call as a pool acquisition, returning the
// name of the required release call ("" when it is not one).
func acquisitionPut(p *Pass, call *ast.CallExpr) string {
	if fn := p.FuncFor(call); fn != nil {
		if put, ok := poolKinds[fn.Name()]; ok && fn.Pkg() == p.Pkg.Pkg {
			return put
		}
		if put, ok := crossPoolKinds[fn.Name()]; ok && fn.Pkg() != nil && fn.Pkg().Name() == "mr" {
			return put
		}
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Get" {
		if isSyncPool(p.TypeOf(sel.X)) {
			return "Put"
		}
	}
	return ""
}

// poolObligationMet reports whether the acquired value is released,
// returned, or stored beyond the local variable within fd.
func poolObligationMet(p *Pass, fd *ast.FuncDecl, acq acquisition) bool {
	met := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if met {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if isReleaseCall(p, n, acq.put) && exprMentions(p, n.Args, acq.obj) {
				met = true
			}
		case *ast.ReturnStmt:
			if exprMentions(p, n.Results, acq.obj) {
				met = true
			}
		case *ast.AssignStmt:
			// The value escaping into another variable, field, slice
			// element, or struct literal transfers the obligation.
			// Compound assignments (+=, …) are reads, not escapes.
			if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
				return true
			}
			for i, rhs := range n.Rhs {
				if ast.Unparen(rhs) == acq.call {
					continue // the acquisition itself
				}
				if !escapesVia(p, rhs, acq.obj) {
					continue
				}
				lhs := n.Lhs[min(i, len(n.Lhs)-1)]
				if id, ok := lhs.(*ast.Ident); ok {
					if p.Pkg.Info.Uses[id] == acq.obj || p.Pkg.Info.Defs[id] == acq.obj {
						continue // x = append(x, …) is not an escape
					}
				}
				met = true
			}
		}
		return !met
	})
	return met
}

// escapesVia reports whether assigning rhs can transfer ownership of
// obj's value: the identifier itself, an alias of it (address, slice,
// dereferenced type assertion), a composite literal holding it, or a
// call that receives it. Plain reads (indexing, arithmetic, len/cap) do
// not transfer the release obligation.
func escapesVia(p *Pass, rhs ast.Expr, obj types.Object) bool {
	switch e := ast.Unparen(rhs).(type) {
	case *ast.Ident:
		return p.Pkg.Info.Uses[e] == obj
	case *ast.UnaryExpr:
		return escapesVia(p, e.X, obj)
	case *ast.StarExpr:
		return escapesVia(p, e.X, obj)
	case *ast.TypeAssertExpr:
		return escapesVia(p, e.X, obj)
	case *ast.SliceExpr:
		return escapesVia(p, e.X, obj)
	case *ast.CompositeLit:
		return exprMentions(p, e.Elts, obj)
	case *ast.CallExpr:
		if fn, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && (fn.Name == "len" || fn.Name == "cap") {
			if _, builtin := p.Pkg.Info.Uses[fn].(*types.Builtin); builtin {
				return false
			}
		}
		return exprMentions(p, e.Args, obj)
	}
	return false
}

// isReleaseCall reports whether call is the named release: one of the
// put helpers, or a Put method on a sync.Pool when put is "Put".
func isReleaseCall(p *Pass, call *ast.CallExpr, put string) bool {
	if put == "Put" {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		return ok && sel.Sel.Name == "Put" && isSyncPool(p.TypeOf(sel.X))
	}
	fn := p.FuncFor(call)
	if fn == nil || fn.Name() != put {
		return false
	}
	if _, cross := crossPoolKinds["Acquire"]; cross && put == "Recycle" {
		return fn.Pkg() != nil && fn.Pkg().Name() == "mr"
	}
	return fn.Pkg() == p.Pkg.Pkg
}

// exprMentions reports whether any expression references obj.
func exprMentions(p *Pass, exprs []ast.Expr, obj types.Object) bool {
	found := false
	for _, e := range exprs {
		if e == nil {
			continue
		}
		ast.Inspect(e, func(n ast.Node) bool {
			if found {
				return false
			}
			if id, ok := n.(*ast.Ident); ok && p.Pkg.Info.Uses[id] == obj {
				found = true
			}
			return !found
		})
	}
	return found
}

// isSyncPool matches sync.Pool and *sync.Pool.
func isSyncPool(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Pool" && obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), "sync")
}
