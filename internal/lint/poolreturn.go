package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// PoolReturn keeps the engine's typed buffer pools balanced. A pooled
// buffer that is acquired but never returned silently degrades the
// pools back to plain allocation — thousands of ALS jobs then rebuild
// their bucket and group storage from scratch and the reuse PR 1 bought
// evaporates without any test failing. The check applies to the
// packages that own pools (mr, and obs's exporter buffers) and is
// path-sensitive: a value bound from a pool acquisition (getSlice,
// getGroupArena, getCombineScratch, getBuf, or a raw sync.Pool Get)
// must, on every path that reaches the function's exit, be passed to
// the matching return call, be returned to the caller, or escape into
// another location (whose owner then carries the obligation). The
// analysis runs a forward may-analysis over the function's CFG: the
// fact is the set of outstanding acquisitions, releases and escapes
// discharge them, and whatever survives at the exit block leaks. The
// flow-insensitive predecessor accepted a release anywhere in the
// function, so a release guarded by one branch of an if satisfied it
// even though the other branch leaked; here the leaking path keeps the
// obligation alive to the exit and is reported. Paths ending in panic
// or os.Exit have no edge to the exit block and are deliberately not
// charged. The shuffle-v2 codec pools widened the surface: core's
// per-reduce scratch maps come from a raw sync.Pool behind a type
// assertion, and plans borrow engine slabs through the exported
// mr.Acquire/mr.Recycle pair, so both shapes are tracked here too.
var PoolReturn = &Analyzer{
	Name: "poolreturn",
	Doc:  "every pool acquisition in the pool-owning packages (mr, obs, core, serve) has a matching return on every path",
	Flow: true,
	Run:  runPoolReturn,
}

// poolKinds maps acquisition helpers to the call that must give the
// buffer back.
var poolKinds = map[string]string{
	"getSlice":          "putSlice",
	"getMap":            "putMap",
	"getGroupArena":     "putGroupArena",
	"getCombineScratch": "putCombineScratch",
	"getBuf":            "putBuf",
}

// crossPoolKinds maps mr's exported pool API, usable from any package.
var crossPoolKinds = map[string]string{
	"Acquire": "Recycle",
}

// poolPackages are the package names holding (or borrowing) pooled
// buffers: the engine, the trace exporter, core's codec scratch, and
// the serving layer's request/score scratch pools.
var poolPackages = map[string]bool{"mr": true, "obs": true, "core": true, "serve": true}

func runPoolReturn(p *Pass) {
	if !poolPackages[p.Pkg.Pkg.Name()] {
		return
	}
	for _, file := range p.Pkg.Files {
		for _, fb := range funcBodies(file) {
			checkPoolBalance(p, fb.body)
		}
	}
}

// acquisition is one pool Get bound to a local identifier.
type acquisition struct {
	obj  types.Object
	put  string // required matching call: putSlice, putMap, …, or "Put"
	call *ast.CallExpr
}

// poolFlow is the per-function must-release problem: facts are sets of
// outstanding acquisition indexes (into acqs), gens maps each binding
// statement to the acquisitions it introduces.
type poolFlow struct {
	p    *Pass
	acqs []acquisition
	gens map[ast.Node][]int
}

func checkPoolBalance(p *Pass, body *ast.BlockStmt) {
	pf := &poolFlow{p: p, gens: map[ast.Node][]int{}}
	inspectShallow(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		rhs := ast.Unparen(as.Rhs[0])
		// A raw sync.Pool acquisition is idiomatically type-asserted in
		// the same expression: p.Get().(T).
		if ta, ok := rhs.(*ast.TypeAssertExpr); ok {
			rhs = ast.Unparen(ta.X)
		}
		call, ok := rhs.(*ast.CallExpr)
		if !ok {
			return true
		}
		put := acquisitionPut(p, call)
		if put == "" {
			return true
		}
		obj := p.Pkg.Info.Defs[id]
		if obj == nil {
			obj = p.Pkg.Info.Uses[id]
		}
		if obj != nil {
			pf.gens[as] = append(pf.gens[as], len(pf.acqs))
			pf.acqs = append(pf.acqs, acquisition{obj: obj, put: put, call: call})
		}
		return true
	})
	if len(pf.acqs) == 0 {
		return
	}
	cfg := BuildCFG(body)
	sol := (&Flow{
		CFG:      cfg,
		Lat:      SetLattice[int]{},
		Transfer: pf.transfer,
		Boundary: map[int]bool(nil),
	}).Solve()
	// An acquisition still outstanding when the exit block has run all
	// deferred calls leaks on at least one path. Distinguish total leaks
	// (no path discharges — the old syntactic check caught these) from
	// branch leaks (some path releases, another does not — only the
	// path-sensitive analysis sees those).
	leaked := sol.Out[cfg.Exit].(map[int]bool)
	if len(leaked) == 0 {
		return
	}
	discharged := make([]bool, len(pf.acqs))
	for _, blk := range cfg.Reachable() {
		sol.Replay(blk, func(n ast.Node, f Fact) {
			for id := range f.(map[int]bool) {
				if pf.discharges(n, pf.acqs[id]) {
					discharged[id] = true
				}
			}
		})
	}
	ids := make([]int, 0, len(leaked))
	for id := range leaked {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		acq := pf.acqs[id]
		if discharged[id] {
			// A raw sync.Pool Get returns `any` and may be nil; the getter
			// idiom `if v := pool.Get(); v != nil { return v.(T) }` settles
			// the obligation on the non-nil path and owes nothing on the
			// nil one. The CFG carries no branch-condition facts, so a
			// nil-tested raw Get that discharges somewhere is taken to leak
			// only on the nil path and is not reported. An unguarded or
			// never-released Get is still flagged below.
			if acq.put == "Put" && nilTested(p, body, acq.obj) {
				continue
			}
			p.Reportf(acq.call.Pos(),
				"pooled buffer %s is returned with %s on some paths but leaks on others: the pool degrades to plain allocation on the leaking path",
				acq.obj.Name(), acq.put)
		} else {
			p.Reportf(acq.call.Pos(),
				"pooled buffer %s is acquired but never returned with %s (and does not escape this function): the pool degrades to plain allocation",
				acq.obj.Name(), acq.put)
		}
	}
}

// transfer discharges obligations the node settles, then adds the ones
// it opens.
func (pf *poolFlow) transfer(n ast.Node, f Fact) Fact {
	m := f.(map[int]bool)
	for id := range m {
		if pf.discharges(n, pf.acqs[id]) {
			m = setDel(m, id)
		}
	}
	for _, id := range pf.gens[n] {
		m = setAdd(m, id)
	}
	return m
}

// discharges reports whether executing n settles the acquisition's
// obligation: the matching release, a return of the value, an escape
// into another location, or capture by a function literal that
// releases it (the literal then owns the buffer).
func (pf *poolFlow) discharges(n ast.Node, acq acquisition) bool {
	p := pf.p
	switch n := n.(type) {
	case *DeferRun:
		// The registration statement already discharged; running the
		// defer at exit settles nothing new.
		return false
	case *CaseBind, *RangeHead:
		// Headers evaluate expressions only; the release calls are void
		// and cannot appear there.
		return false
	case *ast.ReturnStmt:
		return exprMentions(p, n.Results, acq.obj)
	case *ast.AssignStmt:
		if n.Tok == token.ASSIGN || n.Tok == token.DEFINE {
			// The value escaping into another variable, field, slice
			// element, or struct literal transfers the obligation.
			// Compound assignments (+=, …) are reads, not escapes.
			for i, rhs := range n.Rhs {
				if isAcquisitionExpr(p, rhs) {
					continue // binding a fresh acquisition, not an escape
				}
				if !escapesVia(p, rhs, acq.obj) {
					continue
				}
				lhs := n.Lhs[min(i, len(n.Lhs)-1)]
				if id, ok := lhs.(*ast.Ident); ok {
					if p.Pkg.Info.Uses[id] == acq.obj || p.Pkg.Info.Defs[id] == acq.obj {
						continue // x = append(x, …) is not an escape
					}
				}
				return true
			}
		}
	}
	return releasesIn(p, n, acq.put, acq.obj)
}

// nilTested reports whether the body compares obj against nil.
func nilTested(p *Pass, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		sides := [2][2]ast.Expr{{be.X, be.Y}, {be.Y, be.X}}
		for _, pair := range sides {
			id, ok := ast.Unparen(pair[0]).(*ast.Ident)
			if !ok || p.Pkg.Info.Uses[id] != obj {
				continue
			}
			if other, ok := ast.Unparen(pair[1]).(*ast.Ident); ok && other.Name == "nil" {
				found = true
			}
		}
		return !found
	})
	return found
}

// releasesIn reports whether n contains a call to the named release
// with the object among its arguments — directly, or inside a nested
// function literal (a deferred or spawned closure returning the buffer,
// or a stored callback that then owns it).
func releasesIn(p *Pass, n ast.Node, put string, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if found {
			return false
		}
		if call, ok := x.(*ast.CallExpr); ok {
			if isReleaseCall(p, call, put) && exprMentions(p, call.Args, obj) {
				found = true
			}
		}
		return !found
	})
	return found
}

// isAcquisitionExpr reports whether rhs is itself a pool acquisition
// (optionally behind a type assertion), which binds a fresh buffer
// rather than escaping an existing one.
func isAcquisitionExpr(p *Pass, rhs ast.Expr) bool {
	e := ast.Unparen(rhs)
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ast.Unparen(ta.X)
	}
	call, ok := e.(*ast.CallExpr)
	return ok && acquisitionPut(p, call) != ""
}

// inspectShallow walks root like ast.Inspect but does not descend into
// nested function literals: each literal body is a separate funcBody
// with its own CFG and analysis.
func inspectShallow(root ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	})
}

// acquisitionPut classifies a call as a pool acquisition, returning the
// name of the required release call ("" when it is not one).
func acquisitionPut(p *Pass, call *ast.CallExpr) string {
	if fn := p.FuncFor(call); fn != nil {
		if put, ok := poolKinds[fn.Name()]; ok && fn.Pkg() == p.Pkg.Pkg {
			return put
		}
		if put, ok := crossPoolKinds[fn.Name()]; ok && fn.Pkg() != nil && fn.Pkg().Name() == "mr" {
			return put
		}
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Get" {
		if isSyncPool(p.TypeOf(sel.X)) {
			return "Put"
		}
	}
	return ""
}

// escapesVia reports whether assigning rhs can transfer ownership of
// obj's value: the identifier itself, an alias of it (address, slice,
// dereferenced type assertion), a composite literal holding it, or a
// call that receives it. Plain reads (indexing, arithmetic, len/cap) do
// not transfer the release obligation.
func escapesVia(p *Pass, rhs ast.Expr, obj types.Object) bool {
	switch e := ast.Unparen(rhs).(type) {
	case *ast.Ident:
		return p.Pkg.Info.Uses[e] == obj
	case *ast.UnaryExpr:
		return escapesVia(p, e.X, obj)
	case *ast.StarExpr:
		return escapesVia(p, e.X, obj)
	case *ast.TypeAssertExpr:
		return escapesVia(p, e.X, obj)
	case *ast.SliceExpr:
		return escapesVia(p, e.X, obj)
	case *ast.CompositeLit:
		return exprMentions(p, e.Elts, obj)
	case *ast.CallExpr:
		if fn, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && (fn.Name == "len" || fn.Name == "cap") {
			if _, builtin := p.Pkg.Info.Uses[fn].(*types.Builtin); builtin {
				return false
			}
		}
		return exprMentions(p, e.Args, obj)
	}
	return false
}

// isReleaseCall reports whether call is the named release: one of the
// put helpers, or a Put method on a sync.Pool when put is "Put".
func isReleaseCall(p *Pass, call *ast.CallExpr, put string) bool {
	if put == "Put" {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		return ok && sel.Sel.Name == "Put" && isSyncPool(p.TypeOf(sel.X))
	}
	fn := p.FuncFor(call)
	if fn == nil || fn.Name() != put {
		return false
	}
	if _, cross := crossPoolKinds["Acquire"]; cross && put == "Recycle" {
		return fn.Pkg() != nil && fn.Pkg().Name() == "mr"
	}
	return fn.Pkg() == p.Pkg.Pkg
}

// exprMentions reports whether any expression references obj.
func exprMentions(p *Pass, exprs []ast.Expr, obj types.Object) bool {
	found := false
	for _, e := range exprs {
		if e == nil {
			continue
		}
		ast.Inspect(e, func(n ast.Node) bool {
			if found {
				return false
			}
			if id, ok := n.(*ast.Ident); ok && p.Pkg.Info.Uses[id] == obj {
				found = true
			}
			return !found
		})
	}
	return found
}

// isSyncPool matches sync.Pool and *sync.Pool.
func isSyncPool(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Pool" && obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), "sync")
}
