package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
)

// ErrcheckIO forbids discarding error returns from the simulated DFS
// (package internal/dfs) and the model persistence layer (persist.go).
// Those errors are the job plans' only signal that a stage failed —
// a missing intermediate file, a write refused by the write-once rule,
// a truncated model, a block whose every replica failed its checksum
// (VerifyFile/Scrub return *ErrDataLoss) — and a dropped one silently
// corrupts the counters the paper's tables are reproduced from.
// Flagged forms: a call used as a bare statement, a call under
// go/defer, and an error result assigned to the blank identifier.
var ErrcheckIO = &Analyzer{
	Name: "errcheck-io",
	Doc:  "no discarded error returns from internal/dfs and persist.go APIs",
	Run:  runErrcheckIO,
}

func runErrcheckIO(p *Pass) {
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				p.checkDiscardedCall(n.X, "call used as a statement")
			case *ast.GoStmt:
				p.checkDiscardedCall(n.Call, "call under go discards its error")
			case *ast.DeferStmt:
				p.checkDiscardedCall(n.Call, "deferred call discards its error")
			case *ast.AssignStmt:
				p.checkBlankAssign(n)
			}
			return true
		})
	}
}

// checkDiscardedCall flags e when it is a watched call whose results
// (error included) are thrown away wholesale.
func (p *Pass) checkDiscardedCall(e ast.Expr, how string) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return
	}
	fn := p.FuncFor(call)
	if fn == nil || !watchedIOFunc(p, fn) || len(errorResultIndices(fn)) == 0 {
		return
	}
	p.Reportf(call.Pos(), "error from %s.%s is discarded (%s); check it or annotate with //haten2:allow errcheck-io <reason>",
		fn.Pkg().Name(), fn.Name(), how)
}

// checkBlankAssign flags watched calls whose error result lands in the
// blank identifier.
func (p *Pass) checkBlankAssign(as *ast.AssignStmt) {
	report := func(call *ast.CallExpr, fn *types.Func) {
		p.Reportf(call.Pos(), "error from %s.%s is assigned to _; check it or annotate with //haten2:allow errcheck-io <reason>",
			fn.Pkg().Name(), fn.Name())
	}
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		// x, err := f(): one multi-valued call.
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		fn := p.FuncFor(call)
		if fn == nil || !watchedIOFunc(p, fn) {
			return
		}
		for _, i := range errorResultIndices(fn) {
			if i < len(as.Lhs) && isBlank(as.Lhs[i]) {
				report(call, fn)
				return
			}
		}
		return
	}
	for i, rhs := range as.Rhs {
		if i >= len(as.Lhs) || !isBlank(as.Lhs[i]) {
			continue
		}
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			continue
		}
		fn := p.FuncFor(call)
		if fn != nil && watchedIOFunc(p, fn) && len(errorResultIndices(fn)) > 0 {
			report(call, fn)
		}
	}
}

// watchedIOFunc reports whether fn belongs to the guarded I/O surface:
// any function or method of a package named dfs, or one declared in a
// file named persist.go.
func watchedIOFunc(p *Pass, fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Name() == "dfs" {
		return true
	}
	if !fn.Pos().IsValid() {
		return false
	}
	return filepath.Base(p.Pkg.Fset.Position(fn.Pos()).Filename) == "persist.go"
}

// errorResultIndices returns the positions of error-typed results.
func errorResultIndices(fn *types.Func) []int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var idx []int
	res := sig.Results()
	errType := types.Universe.Lookup("error").Type()
	for i := 0; i < res.Len(); i++ {
		if types.Identical(res.At(i).Type(), errType) {
			idx = append(idx, i)
		}
	}
	return idx
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
