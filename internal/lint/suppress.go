package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression comments take the form
//
//	//haten2:allow <check> <reason>
//
// and silence findings of the named check inside the statement or
// declaration the comment anchors to:
//
//   - a trailing comment anchors to the statement sharing its line,
//     even when that statement spans several lines;
//   - a comment on its own line anchors to the next statement,
//     declaration, or spec below it, skipping blank and comment-only
//     lines — so allows for different checks stack above one statement;
//   - a comment on or above a func declaration anchors to the whole
//     function, giving a function-level allow.
//
// The reason is required: the suite exists because "the reviewer knew
// why" does not survive contributor turnover, so neither does a bare
// allow.

const allowPrefix = "haten2:allow"

// allow is one parsed, well-formed suppression comment, resolved to the
// line span of its anchor.
type allow struct {
	file      string
	startLine int
	endLine   int
	check     string
}

// collectAllows parses every suppression comment of a package. Malformed
// comments (missing check name, unknown check name, or missing reason)
// are returned as diagnostics of the pseudo-check "allow", which cannot
// itself be suppressed.
func collectAllows(pkg *Package, valid map[string]bool) ([]allow, []Diagnostic) {
	var allows []allow
	var bad []Diagnostic
	for _, file := range pkg.Files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				text, ok := allowText(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(text)
				switch {
				case len(fields) == 0:
					bad = append(bad, Diagnostic{
						File: pos.Filename, Line: pos.Line, Col: pos.Column,
						Check:   "allow",
						Message: "malformed suppression: want //haten2:allow <check> <reason>",
					})
				case !valid[fields[0]]:
					bad = append(bad, Diagnostic{
						File: pos.Filename, Line: pos.Line, Col: pos.Column,
						Check:   "allow",
						Message: "unknown check \"" + fields[0] + "\" in suppression comment",
					})
				case len(fields) == 1:
					bad = append(bad, Diagnostic{
						File: pos.Filename, Line: pos.Line, Col: pos.Column,
						Check:   "allow",
						Message: "suppression of " + fields[0] + " needs a reason: //haten2:allow " + fields[0] + " <reason>",
					})
				default:
					start, end := anchorSpan(pkg.Fset, file, c)
					allows = append(allows, allow{
						file: pos.Filename, startLine: start, endLine: end, check: fields[0],
					})
				}
			}
		}
	}
	return allows, bad
}

// anchorSpan resolves the line range an allow comment covers. Trailing
// comments anchor to the innermost statement with a token on the
// comment's line; comments on their own line anchor to the next
// statement, declaration, or spec in source order. A FuncDecl anchor
// spans the whole function. An allow with nothing to anchor to covers
// only its own line.
func anchorSpan(fset *token.FileSet, file *ast.File, c *ast.Comment) (int, int) {
	line := fset.Position(c.Pos()).Line
	var trailing, next ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		switch n.(type) {
		case ast.Stmt, ast.Decl, ast.Spec:
		default:
			return true
		}
		if n.Pos() < c.Pos() {
			// A candidate starting or ending on the comment's line means
			// the comment trails code; prefer the innermost such node so
			// `x := f() // allow` covers the assignment, not the whole
			// enclosing block.
			if fset.Position(n.Pos()).Line == line || fset.Position(n.End()).Line == line {
				if trailing == nil || n.Pos() > trailing.Pos() {
					trailing = n
				}
			}
		} else if next == nil || n.Pos() < next.Pos() {
			next = n
		}
		return true
	})
	anchor := trailing
	if anchor == nil {
		anchor = next
	}
	if anchor == nil {
		return line, line
	}
	return fset.Position(anchor.Pos()).Line, fset.Position(anchor.End()).Line
}

// allowText extracts the payload after //haten2:allow, or reports that
// the comment is not a suppression.
func allowText(comment string) (string, bool) {
	body, ok := strings.CutPrefix(comment, "//")
	if !ok {
		return "", false // block comments are not suppression carriers
	}
	body = strings.TrimSpace(body)
	rest, ok := strings.CutPrefix(body, allowPrefix)
	if !ok {
		return "", false
	}
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false // e.g. haten2:allowance
	}
	return strings.TrimSpace(rest), true
}

// filterAllowed drops diagnostics that fall inside the anchored span of
// a suppression of their check in the same file.
func filterAllowed(diags []Diagnostic, allows []allow) []Diagnostic {
	if len(allows) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		if d.Check != "allow" && suppressed(d, allows) {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}

func suppressed(d Diagnostic, allows []allow) bool {
	for _, a := range allows {
		if a.check == d.Check && a.file == d.File && a.startLine <= d.Line && d.Line <= a.endLine {
			return true
		}
	}
	return false
}
