package lint

import (
	"strings"
)

// Suppression comments take the form
//
//	//haten2:allow <check> <reason>
//
// and silence findings of the named check on the comment's own line and
// on the line directly below it — covering both trailing comments and a
// comment placed above the offending statement. The reason is required:
// the suite exists because "the reviewer knew why" does not survive
// contributor turnover, so neither does a bare allow.

const allowPrefix = "haten2:allow"

// allow is one parsed, well-formed suppression comment.
type allow struct {
	file  string
	line  int
	check string
}

// collectAllows parses every suppression comment of a package. Malformed
// comments (missing check name, unknown check name, or missing reason)
// are returned as diagnostics of the pseudo-check "allow", which cannot
// itself be suppressed.
func collectAllows(pkg *Package, valid map[string]bool) ([]allow, []Diagnostic) {
	var allows []allow
	var bad []Diagnostic
	for _, file := range pkg.Files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				text, ok := allowText(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(text)
				switch {
				case len(fields) == 0:
					bad = append(bad, Diagnostic{
						File: pos.Filename, Line: pos.Line, Col: pos.Column,
						Check:   "allow",
						Message: "malformed suppression: want //haten2:allow <check> <reason>",
					})
				case !valid[fields[0]]:
					bad = append(bad, Diagnostic{
						File: pos.Filename, Line: pos.Line, Col: pos.Column,
						Check:   "allow",
						Message: "unknown check \"" + fields[0] + "\" in suppression comment",
					})
				case len(fields) == 1:
					bad = append(bad, Diagnostic{
						File: pos.Filename, Line: pos.Line, Col: pos.Column,
						Check:   "allow",
						Message: "suppression of " + fields[0] + " needs a reason: //haten2:allow " + fields[0] + " <reason>",
					})
				default:
					allows = append(allows, allow{file: pos.Filename, line: pos.Line, check: fields[0]})
				}
			}
		}
	}
	return allows, bad
}

// allowText extracts the payload after //haten2:allow, or reports that
// the comment is not a suppression.
func allowText(comment string) (string, bool) {
	body, ok := strings.CutPrefix(comment, "//")
	if !ok {
		return "", false // block comments are not suppression carriers
	}
	body = strings.TrimSpace(body)
	rest, ok := strings.CutPrefix(body, allowPrefix)
	if !ok {
		return "", false
	}
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false // e.g. haten2:allowance
	}
	return strings.TrimSpace(rest), true
}

// filterAllowed drops diagnostics covered by a suppression of their
// check in the same file on the same line or the line above.
func filterAllowed(diags []Diagnostic, allows []allow) []Diagnostic {
	if len(allows) == 0 {
		return diags
	}
	type key struct {
		file  string
		line  int
		check string
	}
	covered := make(map[key]bool, len(allows)*2)
	for _, a := range allows {
		covered[key{a.file, a.line, a.check}] = true
		covered[key{a.file, a.line + 1, a.check}] = true
	}
	kept := diags[:0]
	for _, d := range diags {
		if d.Check != "allow" && covered[key{d.File, d.Line, d.Check}] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}
