package lint

import (
	"go/ast"
	"go/token"
	"testing"
)

// The solver tests run over hand-built CFGs, so they pin the engine's
// contract independently of the statement-level builder: block facts,
// join behavior at merges, loop convergence, backward direction, and
// the boundary fact.

// litNode makes a distinguishable CFG node: a BasicLit whose Value is
// the "instruction" the test transfer functions interpret.
func litNode(v string) ast.Node {
	return &ast.BasicLit{Kind: token.STRING, Value: v}
}

// handCFG wires blocks into a CFG. edges[i] lists the successor
// indexes of block i. Block 0 is entry, block 1 exit.
func handCFG(nodes [][]ast.Node, edges [][]int) *CFG {
	cfg := &CFG{}
	for i, ns := range nodes {
		cfg.Blocks = append(cfg.Blocks, &Block{Index: i, Nodes: ns})
	}
	cfg.Entry = cfg.Blocks[0]
	cfg.Exit = cfg.Blocks[1]
	for i, succs := range edges {
		for _, j := range succs {
			from, to := cfg.Blocks[i], cfg.Blocks[j]
			from.Succs = append(from.Succs, to)
			to.Preds = append(to.Preds, from)
		}
	}
	return cfg
}

// genKill interprets "gen X" and "kill X" instructions over a string
// set fact.
func genKill(n ast.Node, f Fact) Fact {
	m := f.(map[string]bool)
	lit, ok := n.(*ast.BasicLit)
	if !ok {
		return m
	}
	switch {
	case len(lit.Value) > 4 && lit.Value[:4] == "gen ":
		return setAdd(m, lit.Value[4:])
	case len(lit.Value) > 5 && lit.Value[:5] == "kill ":
		return setDel(m, lit.Value[5:])
	}
	return m
}

// TestSolveForwardDiamond: a diamond where one arm gens a fact and the
// other kills it; the union join must carry it to the merge.
//
//	0 ── 2(gen x) ──┐
//	 └── 3(kill x) ─┴─ 4 ── 1(exit)
func TestSolveForwardDiamond(t *testing.T) {
	cfg := handCFG(
		[][]ast.Node{
			0: {litNode("gen seed")},
			1: {},
			2: {litNode("gen x")},
			3: {litNode("kill x")},
			4: {},
		},
		[][]int{
			0: {2, 3},
			2: {4},
			3: {4},
			4: {1},
		},
	)
	sol := (&Flow{
		CFG:      cfg,
		Lat:      SetLattice[string]{},
		Transfer: genKill,
		Boundary: map[string]bool(nil),
	}).Solve()
	merge := sol.In[cfg.Blocks[4]].(map[string]bool)
	if !merge["x"] {
		t.Errorf("may-analysis dropped a fact generated on one arm: %v", merge)
	}
	if !merge["seed"] {
		t.Errorf("fact generated before the branch missing at merge: %v", merge)
	}
	exit := sol.In[cfg.Exit].(map[string]bool)
	if !exit["x"] || !exit["seed"] {
		t.Errorf("exit facts = %v, want x and seed", exit)
	}
}

// TestSolveForwardMustDiamond: the must-set dual — a fact established
// on only one arm must NOT survive the intersection join.
func TestSolveForwardMustDiamond(t *testing.T) {
	must := func(n ast.Node, f Fact) Fact {
		s := f.(MustSet[string])
		lit, ok := n.(*ast.BasicLit)
		if !ok {
			return s
		}
		switch {
		case len(lit.Value) > 4 && lit.Value[:4] == "gen ":
			return mustAdd(s, lit.Value[4:])
		case len(lit.Value) > 5 && lit.Value[:5] == "kill ":
			return mustDel(s, lit.Value[5:])
		}
		return s
	}
	cfg := handCFG(
		[][]ast.Node{
			0: {litNode("gen both")},
			1: {},
			2: {litNode("gen x")},
			3: {},
			4: {},
		},
		[][]int{
			0: {2, 3},
			2: {4},
			3: {4},
			4: {1},
		},
	)
	sol := (&Flow{
		CFG:      cfg,
		Lat:      MustSetLattice[string]{},
		Transfer: must,
		Boundary: MustSet[string]{M: map[string]bool{}},
	}).Solve()
	merge := sol.In[cfg.Blocks[4]].(MustSet[string])
	if merge.Has("x") {
		t.Errorf("must-analysis kept a fact established on only one arm")
	}
	if !merge.Has("both") {
		t.Errorf("must-analysis dropped a fact established on every arm")
	}
}

// TestSolveLoopConvergence: a fact generated inside a loop must reach
// the loop head through the back edge, and the solver must terminate.
//
//	0 ── 2(head) ── 3(gen x) ──┐
//	      │   ^────────────────┘
//	      └── 1(exit)
func TestSolveLoopConvergence(t *testing.T) {
	cfg := handCFG(
		[][]ast.Node{
			0: {},
			1: {},
			2: {},
			3: {litNode("gen x")},
		},
		[][]int{
			0: {2},
			2: {3, 1},
			3: {2},
		},
	)
	sol := (&Flow{
		CFG:      cfg,
		Lat:      SetLattice[string]{},
		Transfer: genKill,
		Boundary: map[string]bool(nil),
	}).Solve()
	head := sol.In[cfg.Blocks[2]].(map[string]bool)
	if !head["x"] {
		t.Errorf("loop-generated fact never reached the head via the back edge: %v", head)
	}
	exit := sol.In[cfg.Exit].(map[string]bool)
	if !exit["x"] {
		t.Errorf("loop-generated fact missing at exit: %v", exit)
	}
}

// TestSolveBackwardMust: liveness-style backward must-analysis with the
// bool lattice: "every path from here hits a 'join' instruction". A
// branch where only one arm joins must report false before the branch.
func TestSolveBackwardMust(t *testing.T) {
	joins := func(n ast.Node, f Fact) Fact {
		lit, ok := n.(*ast.BasicLit)
		if ok && lit.Value == "join" {
			return true
		}
		return f
	}
	cfg := handCFG(
		[][]ast.Node{
			0: {litNode("spawn")},
			1: {},
			2: {litNode("join")},
			3: {litNode("noop")},
			4: {},
		},
		[][]int{
			0: {2, 3},
			2: {4},
			3: {4},
			4: {1},
		},
	)
	sol := (&Flow{
		CFG:      cfg,
		Lat:      BoolLattice{All: true},
		Transfer: joins,
		Backward: true,
		Boundary: false,
	}).Solve()
	if sol.In[cfg.Blocks[2]].(bool) != true {
		t.Errorf("path through the joining arm not recognized")
	}
	if sol.In[cfg.Blocks[0]].(bool) != false {
		t.Errorf("must-join reported true although one arm never joins")
	}
	// With both arms joining, the spawn point must see true.
	cfg2 := handCFG(
		[][]ast.Node{
			0: {litNode("spawn")},
			1: {},
			2: {litNode("join")},
			3: {litNode("join")},
			4: {},
		},
		[][]int{
			0: {2, 3},
			2: {4},
			3: {4},
			4: {1},
		},
	)
	sol2 := (&Flow{
		CFG:      cfg2,
		Lat:      BoolLattice{All: true},
		Transfer: joins,
		Backward: true,
		Boundary: false,
	}).Solve()
	if sol2.In[cfg2.Blocks[0]].(bool) != true {
		t.Errorf("must-join false although every arm joins")
	}
}

// TestReplayFacts: Replay must hand the per-node fact matching a
// manual walk of the solved block.
func TestReplayFacts(t *testing.T) {
	cfg := handCFG(
		[][]ast.Node{
			0: {litNode("gen a"), litNode("gen b"), litNode("kill a")},
			1: {},
		},
		[][]int{0: {1}},
	)
	fl := &Flow{
		CFG:      cfg,
		Lat:      SetLattice[string]{},
		Transfer: genKill,
		Boundary: map[string]bool(nil),
	}
	sol := fl.Solve()
	var got []int
	sol.Replay(cfg.Entry, func(n ast.Node, f Fact) {
		got = append(got, len(f.(map[string]bool)))
	})
	// Before "gen a": {}; before "gen b": {a}; before "kill a": {a,b}.
	want := []int{0, 1, 2}
	if len(got) != len(want) {
		t.Fatalf("replay visited %d nodes, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("fact size before node %d = %d, want %d", i, got[i], want[i])
		}
	}
	out := sol.Out[cfg.Entry].(map[string]bool)
	if len(out) != 1 || !out["b"] {
		t.Errorf("block out-fact = %v, want {b}", out)
	}
}

// TestSolveUnreachableStaysBottom: facts must not leak into blocks with
// no path from the entry.
func TestSolveUnreachableStaysBottom(t *testing.T) {
	cfg := handCFG(
		[][]ast.Node{
			0: {litNode("gen x")},
			1: {},
			2: {litNode("gen dead")}, // no incoming edge
		},
		[][]int{
			0: {1},
			2: {1},
		},
	)
	sol := (&Flow{
		CFG:      cfg,
		Lat:      SetLattice[string]{},
		Transfer: genKill,
		Boundary: map[string]bool(nil),
	}).Solve()
	if f := sol.In[cfg.Blocks[2]].(map[string]bool); len(f) != 0 {
		t.Errorf("unreachable block carries facts: %v", f)
	}
	if f := sol.Out[cfg.Blocks[2]].(map[string]bool); len(f) != 0 {
		t.Errorf("unreachable block transferred facts: %v", f)
	}
}
