package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatSum guards the floating-point leg of the determinism guarantee.
// Float addition is not associative, so a sum accumulated while ranging
// over a map picks up the map's randomized iteration order and the
// total differs in the last bits from run to run — which the engine's
// byte-exact counter and fit comparisons then amplify into visible
// divergence. The check flags float32/float64 accumulation
// (+=, -=, x = x + …, x = x - …) lexically inside the body of a range
// statement whose operand is a map, anywhere in non-test code; the fix
// is the same as maporder's: iterate sorted keys or a first-seen-order
// key slice.
var FloatSum = &Analyzer{
	Name: "floatsum",
	Doc:  "no float accumulation in map-iteration order (summation-order nondeterminism)",
	Run:  runFloatSum,
}

func runFloatSum(p *Pass) {
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if _, isMap := p.TypeOf(rs.X).(*types.Map); !isMap {
				return true
			}
			ast.Inspect(rs.Body, func(m ast.Node) bool {
				as, ok := m.(*ast.AssignStmt)
				if !ok || !isFloatAccum(p, as) {
					return true
				}
				p.Reportf(as.Pos(),
					"floating-point accumulation while ranging over a map: the summation order (and so the result's last bits) changes run to run")
				return true
			})
			return true
		})
	}
}

// isFloatAccum reports whether as accumulates into a float lvalue:
// x += v, x -= v, or the spelled-out x = x ± v.
func isFloatAccum(p *Pass, as *ast.AssignStmt) bool {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	if !isFloat(p.TypeOf(as.Lhs[0])) {
		return false
	}
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN:
		return true
	case token.ASSIGN:
		bin, ok := ast.Unparen(as.Rhs[0]).(*ast.BinaryExpr)
		if !ok || (bin.Op != token.ADD && bin.Op != token.SUB) {
			return false
		}
		return sameExpr(as.Lhs[0], bin.X)
	}
	return false
}

// isFloat reports whether t's core type is a floating-point scalar.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// sameExpr conservatively matches the x = x + v pattern: it compares
// plain identifiers and single-level selector/index chains of
// identifiers by name.
func sameExpr(a, b ast.Expr) bool {
	a, b = ast.Unparen(a), ast.Unparen(b)
	switch av := a.(type) {
	case *ast.Ident:
		bv, ok := b.(*ast.Ident)
		return ok && av.Name == bv.Name
	case *ast.SelectorExpr:
		bv, ok := b.(*ast.SelectorExpr)
		return ok && av.Sel.Name == bv.Sel.Name && sameExpr(av.X, bv.X)
	case *ast.IndexExpr:
		bv, ok := b.(*ast.IndexExpr)
		return ok && sameExpr(av.X, bv.X) && sameExpr(av.Index, bv.Index)
	}
	return false
}
